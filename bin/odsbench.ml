(* odsbench: run any experiment of the reproduction from the command line.

   Every sub-command prints a small table to stdout.  --records scales the
   per-driver record count down from the paper's 32 000 for quick runs. *)

open Cmdliner
open Simkit
open Workloads

let records_arg default =
  let doc = "Records inserted per driver (paper: 32000)." in
  Arg.(value & opt int default & info [ "records" ] ~docv:"N" ~doc)

let mode_to_string = function
  | Tp.System.Disk_audit -> "disk"
  | Tp.System.Pm_audit -> "pm"

let hr () = print_endline (String.make 72 '-')

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let json_arg =
  let doc = "Emit the table as a JSON document on stdout instead of text." in
  Cmdliner.Arg.(value & flag & info [ "json" ] ~doc)

(* Shared cell setup for the hot-stock/metrics/trace/timeline commands:
   derive a config from mode+device, build a system, run the mix —
   optionally under an observability context with a telemetry sampler
   running from build to workload end. *)
let run_hot_stock_cell ?obs ?sample_interval ?(device = "npmu") ?(seed = 0xF19L) ~mode
    ~drivers ~boxcar ~records () =
  let base =
    if device = "pmp" then
      { Tp.System.pm_config with Tp.System.pm_device_kind = Tp.System.Prototype_pmp }
    else Tp.System.default_config
  in
  let cfg =
    match mode with
    | Tp.System.Disk_audit -> { base with Tp.System.log_mode = Tp.System.Disk_audit }
    | Tp.System.Pm_audit ->
        { base with Tp.System.log_mode = Tp.System.Pm_audit; txn_state_in_pm = true }
  in
  let sim = Sim.create ~seed () in
  let out = ref None in
  let ts = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"cell" (fun () ->
        let system = Tp.System.build ?obs sim cfg in
        (match (sample_interval, obs) with
        | Some interval, Some o ->
            let t = Timeseries.create ~sim ~metrics:(Obs.metrics o) ~interval () in
            Timeseries.start t;
            ts := Some t
        | _ -> ());
        let params =
          { Hot_stock.drivers; records_per_driver = records; record_bytes = 4096;
            inserts_per_txn = boxcar }
        in
        let result = Hot_stock.run system params in
        (match !ts with Some t -> Timeseries.stop t | None -> ());
        out := Some (system, result))
  in
  Sim.run sim;
  match !out with
  | Some (system, result) ->
      (system, { Figures.mode; drivers; inserts_per_txn = boxcar; result }, !ts)
  | None -> failwith "cell incomplete"

let parse_mode = function "pm" -> Tp.System.Pm_audit | _ -> Tp.System.Disk_audit

(* --- fig1 --- *)

let fig1_json points =
  Json.List
    (List.map
       (fun p ->
         Json.Obj
           [
             ("drivers", Json.Int p.Figures.f1_drivers);
             ("boxcar", Json.Int p.Figures.f1_boxcar);
             ("txn_size", Json.String p.Figures.txn_size);
             ("rt_disk_us", Json.Float p.Figures.rt_disk_us);
             ("rt_pm_us", Json.Float p.Figures.rt_pm_us);
             ("speedup", Json.Float p.Figures.speedup);
           ])
       points)

let fig1 records json =
  let points = Figures.figure1 ~records_per_driver:records () in
  if json then print_endline (Json.to_string (fig1_json points))
  else begin
  Printf.printf "FIGURE 1: response-time speedup with PM vs transaction size\n";
  Printf.printf "(paper: up to 3.5x, best at small boxcars and 1-2 drivers)\n";
  hr ();
  Printf.printf "%8s %8s %12s %12s %10s\n" "drivers" "txnsize" "disk RT(ms)" "PM RT(ms)" "speedup";
  List.iter
    (fun p ->
      Printf.printf "%8d %8s %12.2f %12.2f %10.2f\n" p.Figures.f1_drivers p.Figures.txn_size
        (p.Figures.rt_disk_us /. 1e3) (p.Figures.rt_pm_us /. 1e3) p.Figures.speedup)
    points;
  hr ()
  end

let fig1_cmd =
  Cmd.v
    (Cmd.info "fig1" ~doc:"Reproduce Figure 1 (response-time speedup vs boxcarring)")
    Term.(const fig1 $ records_arg 32_000 $ json_arg)

(* --- fig2 --- *)

let fig2_json points =
  Json.List
    (List.map
       (fun p ->
         Json.Obj
           [
             ("drivers", Json.Int p.Figures.f2_drivers);
             ("boxcar", Json.Int p.Figures.f2_boxcar);
             ("txn_size", Json.String p.Figures.f2_txn_size);
             ("elapsed_disk_s", Json.Float p.Figures.elapsed_disk_s);
             ("elapsed_pm_s", Json.Float p.Figures.elapsed_pm_s);
           ])
       points)

let fig2 records json =
  let points = Figures.figure2 ~records_per_driver:records () in
  if json then print_endline (Json.to_string (fig2_json points))
  else begin
  Printf.printf "FIGURE 2: elapsed time vs transaction size (PM eliminates boxcarring)\n";
  Printf.printf "(paper: no-PM rises sharply as boxcarring shrinks; PM nearly flat)\n";
  hr ();
  Printf.printf "%8s %8s %16s %14s\n" "drivers" "txnsize" "disk elapsed(s)" "PM elapsed(s)";
  List.iter
    (fun p ->
      Printf.printf "%8d %8s %16.2f %14.2f\n" p.Figures.f2_drivers p.Figures.f2_txn_size
        p.Figures.elapsed_disk_s p.Figures.elapsed_pm_s)
    points;
  hr ()
  end

let fig2_cmd =
  Cmd.v
    (Cmd.info "fig2" ~doc:"Reproduce Figure 2 (elapsed time vs boxcarring)")
    Term.(const fig2 $ records_arg 32_000 $ json_arg)

(* --- breakdown: machine-readable commit-latency attribution --- *)

let breakdown_json b =
  let mode_json m =
    Json.Obj
      [
        ("mode", Json.String (mode_to_string m.Figures.b_mode));
        ("commits", Json.Int m.Figures.b_commits);
        ("rt_mean_ns", Json.Float m.Figures.b_rt_ns);
        ("flush_share", Json.Float m.Figures.b_flush_share);
        ( "stages",
          Json.List
            (List.map
               (fun st ->
                 Json.Obj
                   [
                     ("stage", Json.String st.Figures.stage_name);
                     ("mean_ns", Json.Float st.Figures.stage_ns);
                     ("share", Json.Float st.Figures.stage_share);
                   ])
               m.Figures.b_stages) );
      ]
  in
  Json.Obj
    [
      ("drivers", Json.Int b.Figures.bd_drivers);
      ("boxcar", Json.Int b.Figures.bd_boxcar);
      ("disk", mode_json b.Figures.bd_disk);
      ("pm", mode_json b.Figures.bd_pm);
      ("disk_flush_share", Json.Float b.Figures.bd_disk_flush_share);
      ("pm_flush_share", Json.Float b.Figures.bd_pm_flush_share);
    ]

let breakdown records drivers boxcar json =
  let b = Figures.breakdown ~records_per_driver:records ~drivers ~boxcar () in
  if json then print_endline (Json.to_string (breakdown_json b))
  else begin
    Printf.printf "Commit-latency breakdown (%d drivers, boxcar %d, %d records/driver)\n"
      b.Figures.bd_drivers b.Figures.bd_boxcar records;
    Printf.printf "(where a committed transaction's response time goes, per the registry)\n";
    let one m =
      hr ();
      Printf.printf "mode=%s  commits=%d  mean RT=%.2f ms  flush share=%.0f%%\n"
        (mode_to_string m.Figures.b_mode) m.Figures.b_commits (m.Figures.b_rt_ns /. 1e6)
        (m.Figures.b_flush_share *. 100.);
      List.iter
        (fun st ->
          Printf.printf "  %-40s %10.3f ms %6.1f%%\n" st.Figures.stage_name
            (st.Figures.stage_ns /. 1e6)
            (st.Figures.stage_share *. 100.))
        m.Figures.b_stages
    in
    one b.Figures.bd_disk;
    one b.Figures.bd_pm;
    hr ()
  end

let breakdown_cmd =
  let drivers = Arg.(value & opt int 1 & info [ "drivers" ] ~docv:"N" ~doc:"Driver count.") in
  let boxcar =
    Arg.(value & opt int 8 & info [ "boxcar" ] ~docv:"N" ~doc:"Inserts per transaction.")
  in
  Cmd.v
    (Cmd.info "breakdown"
       ~doc:"Attribute commit latency to pipeline stages, disk vs PM audit")
    Term.(const breakdown $ records_arg 2_000 $ drivers $ boxcar $ json_arg)

(* --- trace: span capture to a Chrome/Perfetto trace file --- *)

let trace mode drivers boxcar records out =
  let mode = parse_mode mode in
  let obs = Obs.create () in
  Span.enable (Obs.spans obs);
  let _system, (_ : Figures.cell), _ts =
    run_hot_stock_cell ~obs ~mode ~drivers ~boxcar ~records ()
  in
  let spans = Obs.spans obs in
  let oc = open_out out in
  output_string oc (Span.to_chrome_json spans);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %d spans to %s (%d dropped)\n" (Span.count spans) out
    (Span.dropped spans);
  Printf.printf "open in a Chromium browser at chrome://tracing, or https://ui.perfetto.dev\n"

let trace_cmd =
  let mode =
    Arg.(value & opt string "disk" & info [ "mode" ] ~docv:"disk|pm" ~doc:"Audit backend.")
  in
  let drivers = Arg.(value & opt int 1 & info [ "drivers" ] ~docv:"N" ~doc:"Driver count.") in
  let boxcar =
    Arg.(value & opt int 8 & info [ "boxcar" ] ~docv:"N" ~doc:"Inserts per transaction.")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a hot-stock cell with span tracing on and write a Chrome trace file")
    Term.(const trace $ mode $ drivers $ boxcar $ records_arg 200 $ out)

(* --- metrics: dump the full registry for one cell --- *)

let metrics_dump mode drivers boxcar records json =
  let mode = parse_mode mode in
  let obs = Obs.create () in
  let _system, (_ : Figures.cell), _ts =
    run_hot_stock_cell ~obs ~mode ~drivers ~boxcar ~records ()
  in
  let m = Obs.metrics obs in
  if json then print_endline (Metrics.to_json m)
  else Format.printf "%a@?" Metrics.pp_table m

let metrics_cmd =
  let mode =
    Arg.(value & opt string "disk" & info [ "mode" ] ~docv:"disk|pm" ~doc:"Audit backend.")
  in
  let drivers = Arg.(value & opt int 2 & info [ "drivers" ] ~docv:"N" ~doc:"Driver count.") in
  let boxcar =
    Arg.(value & opt int 8 & info [ "boxcar" ] ~docv:"N" ~doc:"Inserts per transaction.")
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Run a hot-stock cell and dump the whole metrics registry")
    Term.(const metrics_dump $ mode $ drivers $ boxcar $ records_arg 1_000 $ json_arg)

(* --- single cell --- *)

let cell mode device drivers boxcar records verbose =
  let mode = parse_mode mode in
  let system, c, _ts = run_hot_stock_cell ~device ~mode ~drivers ~boxcar ~records () in
  if verbose then Format.printf "%a" Tp.System.report system;
  let r = c.Figures.result in
  Printf.printf "hot-stock: mode=%s drivers=%d boxcar=%d records=%d\n" (mode_to_string mode)
    drivers boxcar records;
  hr ();
  Printf.printf "elapsed          %.3f s\n" (Time.to_sec r.Hot_stock.elapsed);
  Printf.printf "transactions     %d (committed %d)\n" r.Hot_stock.txns r.Hot_stock.committed;
  Printf.printf "throughput       %.1f txn/s\n" r.Hot_stock.throughput_tps;
  Printf.printf "response mean    %.2f ms\n" (r.Hot_stock.response.Stat.mean /. 1e6);
  Printf.printf "response p50     %.2f ms\n" (r.Hot_stock.response.Stat.p50 /. 1e6);
  Printf.printf "response p99     %.2f ms\n" (r.Hot_stock.response.Stat.p99 /. 1e6);
  Printf.printf "audit bytes      %d\n" r.Hot_stock.audit_bytes;
  Printf.printf "checkpoint bytes %d\n" r.Hot_stock.checkpoint_bytes;
  hr ()

let cell_cmd =
  let mode =
    Arg.(value & opt string "disk" & info [ "mode" ] ~docv:"disk|pm" ~doc:"Audit backend.")
  in
  let device =
    Arg.(
      value & opt string "npmu"
      & info [ "device" ] ~docv:"npmu|pmp" ~doc:"PM device kind (hardware NPMU or prototype PMP).")
  in
  let drivers = Arg.(value & opt int 2 & info [ "drivers" ] ~docv:"N" ~doc:"Driver count.") in
  let boxcar =
    Arg.(value & opt int 8 & info [ "boxcar" ] ~docv:"N" ~doc:"Inserts per transaction.")
  in
  let verbose =
    Arg.(value & flag & info [ "report" ] ~doc:"Print the per-subsystem operator report.")
  in
  Cmd.v
    (Cmd.info "hot-stock" ~doc:"Run one hot-stock configuration and print details")
    Term.(const cell $ mode $ device $ drivers $ boxcar $ records_arg 4_000 $ verbose)

(* --- E3 latency sweep --- *)

let sweep_latency records =
  Printf.printf "E3: PM write-latency sweep (1 driver, boxcar 8)\n";
  Printf.printf "(the PM advantage should die as the device approaches disk speed)\n";
  hr ();
  Printf.printf "%14s %12s %18s\n" "penalty" "RT (ms)" "speedup vs disk";
  List.iter
    (fun p ->
      Printf.printf "%14s %12.2f %18.2f\n" (Time.to_string p.Figures.penalty)
        (p.Figures.rt_us /. 1e3) p.Figures.speedup_vs_disk)
    (Figures.latency_sweep ~records_per_driver:records ());
  hr ()

let sweep_latency_cmd =
  Cmd.v
    (Cmd.info "sweep-latency" ~doc:"E3: sweep extra PM device write latency")
    Term.(const sweep_latency $ records_arg 4_000)

(* --- E4 mirror ablation --- *)

let sweep_mirror records =
  Printf.printf "E4: mirrored vs unmirrored PM writes (2 drivers, boxcar 8)\n";
  hr ();
  Printf.printf "%10s %12s %14s\n" "mirrored" "RT (ms)" "elapsed (s)";
  List.iter
    (fun p ->
      Printf.printf "%10b %12.2f %14.2f\n" p.Figures.mirrored (p.Figures.rt_us /. 1e3)
        p.Figures.elapsed_s)
    (Figures.mirror_ablation ~records_per_driver:records ());
  hr ()

let sweep_mirror_cmd =
  Cmd.v
    (Cmd.info "sweep-mirror" ~doc:"E4: mirroring-cost ablation")
    Term.(const sweep_mirror $ records_arg 4_000)

(* Recovery failures must reach the operator: message on stderr, exit
   non-zero — not a line lost in a table on stdout. *)
let or_die f =
  try f ()
  with Failure msg ->
    prerr_endline ("odsbench: " ^ msg);
    exit 1

(* --- E5 MTTR --- *)

let mttr records =
  or_die @@ fun () ->
  Printf.printf "E5: crash-recovery time (MTTR), disk scan vs PM fine-grained state\n";
  hr ();
  List.iter
    (fun p ->
      Printf.printf "%-5s %s\n" (mode_to_string p.Figures.m_mode)
        (Format.asprintf "%a" Tp.Recovery.pp_report p.Figures.report))
    (Figures.mttr ~records_per_driver:records ());
  hr ()

let mttr_cmd =
  Cmd.v (Cmd.info "mttr" ~doc:"E5: MTTR comparison") Term.(const mttr $ records_arg 2_000)

(* --- E6 ADP scaling --- *)

let scale_adp records =
  Printf.printf "E6: audit throughput vs ADPs per node (4 drivers, boxcar 8)\n";
  hr ();
  Printf.printf "%6s %6s %12s\n" "adps" "mode" "txn/s";
  List.iter
    (fun p ->
      Printf.printf "%6d %6s %12.1f\n" p.Figures.adps (mode_to_string p.Figures.a_mode)
        p.Figures.tps)
    (Figures.adp_scaling ~records_per_driver:records ());
  hr ()

let scale_adp_cmd =
  Cmd.v
    (Cmd.info "scale-adp" ~doc:"E6: multiple ADPs per node")
    Term.(const scale_adp $ records_arg 4_000)

(* --- E7 failover --- *)

let failover records =
  or_die @@ fun () ->
  Printf.printf "E7: ADP process-pair failover under load (disk mode)\n";
  hr ();
  let r = Figures.failover_under_load ~records_per_driver:records () in
  Printf.printf "committed before failure  %d\n" r.Figures.committed_before;
  Printf.printf "committed total           %d\n" r.Figures.committed_total;
  Printf.printf "ADP takeovers             %d\n" r.Figures.adp_takeovers;
  Printf.printf "takeover delay            %s\n" (Time.to_string r.Figures.outage);
  Printf.printf "lost transactions         %d\n" r.Figures.lost_transactions;
  hr ()

let failover_cmd =
  Cmd.v
    (Cmd.info "failover" ~doc:"E7: process-pair takeover under load")
    Term.(const failover $ records_arg 400)

(* --- drill: fault schedule + durability audit --- *)

(* Every drill report names its seed and plan at top level so a CI
   artifact is self-describing without knowing which command wrote it. *)
let drill_json ~plan (r : Tp.Drill.report) =
  let a = r.Tp.Drill.availability in
  Json.Obj
    [
      ("mode", Json.String (mode_to_string r.Tp.Drill.mode));
      ("plan", Json.String plan);
      ("seed", Json.String (Printf.sprintf "0x%Lx" r.Tp.Drill.seed));
      ("elapsed_s", Json.Float (Time.to_sec r.Tp.Drill.elapsed));
      ( "faults",
        Json.List
          (List.map
             (fun (t, desc) ->
               Json.Obj [ ("at_ms", Json.Float (Time.to_ms t)); ("fault", Json.String desc) ])
             r.Tp.Drill.faults) );
      ("attempted_txns", Json.Int r.Tp.Drill.attempted_txns);
      ("committed", Json.Int r.Tp.Drill.committed);
      ("failed_txns", Json.Int r.Tp.Drill.failed_txns);
      ("acked_rows", Json.Int r.Tp.Drill.acked_rows);
      ("recovered_rows", Json.Int r.Tp.Drill.recovered_rows);
      ("lost_rows", Json.Int r.Tp.Drill.lost_rows);
      ("in_doubt_after", Json.Int r.Tp.Drill.in_doubt_after);
      ("orphaned_locks", Json.Int r.Tp.Drill.orphaned_locks);
      ("fence_checks", Json.Int r.Tp.Drill.fence_checks);
      ("fence_failures", Json.Int r.Tp.Drill.fence_failures);
      ("zero_loss", Json.Bool (Tp.Drill.zero_loss r));
      ("oracle", Tp.Drill.Oracle.to_json (Tp.Drill.Oracle.of_report r));
      ( "integrity",
        match r.Tp.Drill.integrity with
        | None -> Json.Null
        | Some i ->
            Json.Obj
              [
                ("decay_injected", Json.Int i.Tp.Drill.decay_injected);
                ("torn_injected", Json.Int i.Tp.Drill.torn_injected);
                ("scrub_chunks", Json.Int i.Tp.Drill.scrub_chunks);
                ("scrub_repairs", Json.Int i.Tp.Drill.scrub_repairs);
                ("scrub_quarantined", Json.Int i.Tp.Drill.scrub_quarantined);
                ("read_repairs", Json.Int i.Tp.Drill.read_repairs);
                ("verify_unrepaired", Json.Int i.Tp.Drill.verify_unrepaired);
                ("unrepaired_divergence", Json.Int i.Tp.Drill.unrepaired_divergence);
                ("clean", Json.Bool (Tp.Drill.integrity_clean r));
              ] );
      ( "response_ms",
        Json.Obj
          [
            ("mean", Json.Float (r.Tp.Drill.response.Stat.mean /. 1e6));
            ("p50", Json.Float (r.Tp.Drill.response.Stat.p50 /. 1e6));
            ("p99", Json.Float (r.Tp.Drill.response.Stat.p99 /. 1e6));
          ] );
      ( "availability",
        Json.Obj
          [
            ( "takeovers",
              Json.Obj
                [
                  ("adp", Json.Int a.Tp.Drill.adp_takeovers);
                  ("dp2", Json.Int a.Tp.Drill.dp2_takeovers);
                  ("tmf", Json.Int a.Tp.Drill.tmf_takeovers);
                  ("pmm", Json.Int a.Tp.Drill.pmm_takeovers);
                ] );
            ("outage_ms", Json.Float (Time.to_ms a.Tp.Drill.outage));
            ("degraded_writes", Json.Int a.Tp.Drill.degraded_writes);
            ("pm_write_retries", Json.Int a.Tp.Drill.pm_write_retries);
            ("packet_retries", Json.Int a.Tp.Drill.packet_retries);
          ] );
      ( "recovery",
        Json.Obj
          [
            ("mttr_ms", Json.Float (Time.to_ms r.Tp.Drill.recovery.Tp.Recovery.mttr));
            ( "outcome_source",
              Json.String
                (match r.Tp.Drill.recovery.Tp.Recovery.outcome_source with
                | Tp.Recovery.Mat_scan -> "mat_scan"
                | Tp.Recovery.Pm_txn_table -> "pm_txn_table") );
            ("committed_txns", Json.Int r.Tp.Drill.recovery.Tp.Recovery.committed_txns);
            ("in_doubt_txns", Json.Int r.Tp.Drill.recovery.Tp.Recovery.in_doubt_txns);
            ("resolved_commit", Json.Int r.Tp.Drill.recovery.Tp.Recovery.resolved_commit);
            ("resolved_abort", Json.Int r.Tp.Drill.recovery.Tp.Recovery.resolved_abort);
            ("rows_rebuilt", Json.Int r.Tp.Drill.recovery.Tp.Recovery.rows_rebuilt);
          ] );
      ( "timeline",
        match r.Tp.Drill.timeline with
        | Some ts ->
            Json.Obj
              [
                ("samples", Json.Int (Timeseries.sample_count ts));
                ("evicted", Json.Int (Timeseries.evicted ts));
                ("series", Timeseries.json ts);
                ("bottlenecks", Timeseries.attribution_json ts);
              ]
        | None -> Json.Null );
    ]

(* Event-aligned availability overlay: the sampled commit/failure gauges
   interleaved, in time order, with the fault injections as marks. *)
let drill_overlay (ts : Timeseries.t) =
  Printf.printf "availability overlay (sampled every %s, %d samples, %d evicted):\n"
    (Time.to_string (Timeseries.interval ts))
    (Timeseries.sample_count ts) (Timeseries.evicted ts);
  Printf.printf "%12s %10s %8s\n" "t(ms)" "committed" "failed";
  let value s key =
    match List.assoc_opt key s.Timeseries.s_values with Some v -> v | None -> 0.0
  in
  let rec go samples marks =
    match (samples, marks) with
    | [], [] -> ()
    | _, (mt, label) :: ms
      when (match samples with
           | [] -> true
           | s :: _ -> mt <= s.Timeseries.s_time) ->
        Printf.printf "%12.1f  >> fault: %s\n" (Time.to_ms mt) label;
        go samples ms
    | s :: ss, _ ->
        Printf.printf "%12.1f %10.0f %8.0f\n"
          (Time.to_ms s.Timeseries.s_time)
          (value s "drill.committed") (value s "drill.failed");
        go ss marks
    | [], _ :: _ -> ()
  in
  go (Timeseries.samples ts) (Timeseries.marks ts)

let drill_text (r : Tp.Drill.report) =
  let a = r.Tp.Drill.availability in
  Printf.printf "drill: mode=%s seed=0x%Lx — hot-stock load under a fault schedule\n"
    (mode_to_string r.Tp.Drill.mode) r.Tp.Drill.seed;
  hr ();
  List.iter
    (fun (t, desc) -> Printf.printf "%10.1f ms  %s\n" (Time.to_ms t) desc)
    r.Tp.Drill.faults;
  hr ();
  Printf.printf "load elapsed       %.3f s\n" (Time.to_sec r.Tp.Drill.elapsed);
  Printf.printf "transactions       %d attempted, %d acked, %d failed\n"
    r.Tp.Drill.attempted_txns r.Tp.Drill.committed r.Tp.Drill.failed_txns;
  Printf.printf "response mean/p99  %.2f / %.2f ms\n"
    (r.Tp.Drill.response.Stat.mean /. 1e6)
    (r.Tp.Drill.response.Stat.p99 /. 1e6);
  Printf.printf "takeovers          adp=%d dp2=%d tmf=%d pmm=%d (outage %s)\n"
    a.Tp.Drill.adp_takeovers a.Tp.Drill.dp2_takeovers a.Tp.Drill.tmf_takeovers
    a.Tp.Drill.pmm_takeovers
    (Time.to_string a.Tp.Drill.outage);
  Printf.printf "degraded PM writes %d (retried %d, packet retries %d)\n"
    a.Tp.Drill.degraded_writes a.Tp.Drill.pm_write_retries a.Tp.Drill.packet_retries;
  Printf.printf "recovery           MTTR %s, %d committed txns, %d rows\n"
    (Time.to_string r.Tp.Drill.recovery.Tp.Recovery.mttr)
    r.Tp.Drill.recovery.Tp.Recovery.committed_txns
    r.Tp.Drill.recovery.Tp.Recovery.rows_rebuilt;
  Printf.printf "durability         %d acked rows, %d recovered, %d LOST — %s\n"
    r.Tp.Drill.acked_rows r.Tp.Drill.recovered_rows r.Tp.Drill.lost_rows
    (if Tp.Drill.zero_loss r then "zero loss" else "DATA LOSS");
  (match r.Tp.Drill.integrity with
  | None -> ()
  | Some i ->
      Printf.printf "corruption         %d decay, %d torn injected\n"
        i.Tp.Drill.decay_injected i.Tp.Drill.torn_injected;
      Printf.printf "scrubber           %d chunks scanned, %d repaired, %d quarantined\n"
        i.Tp.Drill.scrub_chunks i.Tp.Drill.scrub_repairs i.Tp.Drill.scrub_quarantined;
      Printf.printf "verified reads     %d repaired, %d unrepaired\n"
        i.Tp.Drill.read_repairs i.Tp.Drill.verify_unrepaired;
      Printf.printf "integrity audit    %d divergent chunks left — %s\n"
        i.Tp.Drill.unrepaired_divergence
        (if i.Tp.Drill.unrepaired_divergence = 0 then "clean" else "SILENT CORRUPTION"));
  hr ();
  match r.Tp.Drill.timeline with
  | Some ts ->
      drill_overlay ts;
      hr ();
      Printf.printf "bottleneck attribution (load phase):\n";
      Format.printf "%a@?" Timeseries.pp_attribution ts;
      hr ()
  | None -> ()

let cluster_drill_json ~plan (r : Tp.Drill.cluster_report) =
  Json.Obj
    [
      ("mode", Json.String "cluster");
      ("plan", Json.String plan);
      ("seed", Json.String (Printf.sprintf "0x%Lx" r.Tp.Drill.c_seed));
      ("nodes", Json.Int r.Tp.Drill.c_nodes);
      ("elapsed_s", Json.Float (Time.to_sec r.Tp.Drill.c_elapsed));
      ( "faults",
        Json.List
          (List.map
             (fun (t, desc) ->
               Json.Obj [ ("at_ms", Json.Float (Time.to_ms t)); ("fault", Json.String desc) ])
             r.Tp.Drill.c_faults) );
      ("attempted_txns", Json.Int r.Tp.Drill.c_attempted);
      ("committed", Json.Int r.Tp.Drill.c_committed);
      ("failed_txns", Json.Int r.Tp.Drill.c_failed);
      ("acked_rows", Json.Int r.Tp.Drill.c_acked_rows);
      ("lost_rows", Json.Int r.Tp.Drill.c_lost_rows);
      ("in_doubt_before", Json.Int r.Tp.Drill.c_in_doubt_before);
      ("resolved_commit", Json.Int r.Tp.Drill.c_resolved_commit);
      ("resolved_abort", Json.Int r.Tp.Drill.c_resolved_abort);
      ("in_doubt_after", Json.Int r.Tp.Drill.c_in_doubt_after);
      ("orphaned_locks", Json.Int r.Tp.Drill.c_orphaned_locks);
      ("fence_checks", Json.Int r.Tp.Drill.c_fence_checks);
      ("fence_failures", Json.Int r.Tp.Drill.c_fence_failures);
      ("fenced_writes", Json.Int r.Tp.Drill.c_fenced_writes);
      ("zero_loss", Json.Bool (Tp.Drill.cluster_zero_loss r));
      ("oracle", Tp.Drill.Oracle.to_json (Tp.Drill.Oracle.of_cluster r));
      ( "response_ms",
        Json.Obj
          [
            ("mean", Json.Float (r.Tp.Drill.c_response.Stat.mean /. 1e6));
            ("p50", Json.Float (r.Tp.Drill.c_response.Stat.p50 /. 1e6));
            ("p99", Json.Float (r.Tp.Drill.c_response.Stat.p99 /. 1e6));
          ] );
      ( "recoveries",
        Json.List
          (List.map
             (fun (rr : Tp.Recovery.report) ->
               Json.Obj
                 [
                   ("mttr_ms", Json.Float (Time.to_ms rr.Tp.Recovery.mttr));
                   ("committed_txns", Json.Int rr.Tp.Recovery.committed_txns);
                   ("in_doubt_txns", Json.Int rr.Tp.Recovery.in_doubt_txns);
                   ("resolved_commit", Json.Int rr.Tp.Recovery.resolved_commit);
                   ("resolved_abort", Json.Int rr.Tp.Recovery.resolved_abort);
                   ("rows_rebuilt", Json.Int rr.Tp.Recovery.rows_rebuilt);
                 ])
             r.Tp.Drill.c_recoveries) );
    ]

let cluster_drill_text (r : Tp.Drill.cluster_report) =
  Printf.printf
    "drill: mode=cluster nodes=%d seed=0x%Lx — distributed hot-stock load under a WAN \
     partition\n"
    r.Tp.Drill.c_nodes r.Tp.Drill.c_seed;
  hr ();
  List.iter
    (fun (t, desc) -> Printf.printf "%10.1f ms  %s\n" (Time.to_ms t) desc)
    r.Tp.Drill.c_faults;
  hr ();
  Printf.printf "load elapsed       %.3f s\n" (Time.to_sec r.Tp.Drill.c_elapsed);
  Printf.printf "transactions       %d attempted, %d acked, %d failed\n"
    r.Tp.Drill.c_attempted r.Tp.Drill.c_committed r.Tp.Drill.c_failed;
  Printf.printf "response mean/p99  %.2f / %.2f ms\n"
    (r.Tp.Drill.c_response.Stat.mean /. 1e6)
    (r.Tp.Drill.c_response.Stat.p99 /. 1e6);
  Printf.printf "in-doubt window    %d entering recovery, %d resolved commit, %d resolved \
                 abort, %d left\n"
    r.Tp.Drill.c_in_doubt_before r.Tp.Drill.c_resolved_commit r.Tp.Drill.c_resolved_abort
    r.Tp.Drill.c_in_doubt_after;
  Printf.printf "epoch fence        %d checks, %d failures, %d stale writes rejected\n"
    r.Tp.Drill.c_fence_checks r.Tp.Drill.c_fence_failures r.Tp.Drill.c_fenced_writes;
  Printf.printf "orphaned locks     %d\n" r.Tp.Drill.c_orphaned_locks;
  List.iteri
    (fun i (rr : Tp.Recovery.report) ->
      Printf.printf "recovery node %d    MTTR %s, %d committed txns, %d rows\n" i
        (Time.to_string rr.Tp.Recovery.mttr)
        rr.Tp.Recovery.committed_txns rr.Tp.Recovery.rows_rebuilt)
    r.Tp.Drill.c_recoveries;
  Printf.printf "durability         %d acked rows, %d LOST — %s\n" r.Tp.Drill.c_acked_rows
    r.Tp.Drill.c_lost_rows
    (if Tp.Drill.cluster_zero_loss r then "zero loss" else "INVARIANT VIOLATED");
  hr ()

let gray_drill_json (g : Tp.Drill.gray_report) =
  Json.Obj
    [
      ("mode", Json.String "pm");
      ("plan", Json.String "grayfail");
      ("seed", Json.String (Printf.sprintf "0x%Lx" g.Tp.Drill.g_seed));
      ("defended", Json.Bool g.Tp.Drill.g_defended);
      ( "latency_ms",
        Json.Obj
          [
            ("healthy_p99", Json.Float (g.Tp.Drill.g_healthy.Tp.Drill.response.Stat.p99 /. 1e6));
            ( "degraded_p99",
              Json.Float (g.Tp.Drill.g_degraded.Tp.Drill.response.Stat.p99 /. 1e6) );
            ("p99_ratio", Json.Float g.Tp.Drill.g_p99_ratio);
            ("p99_limit", Json.Float g.Tp.Drill.g_p99_limit);
          ] );
      ( "mitigation",
        Json.Obj
          [
            ("demotions", Json.Int g.Tp.Drill.g_demotions);
            ("readmissions", Json.Int g.Tp.Drill.g_readmissions);
            ("mirror_active", Json.Bool g.Tp.Drill.g_mirror_active);
            ("monitor_probes", Json.Int g.Tp.Drill.g_monitor_probes);
            ("slow_suspects", Json.Int g.Tp.Drill.g_slow_suspects);
            ("hedged_reads", Json.Int g.Tp.Drill.g_hedged_reads);
            ("hedge_wins", Json.Int g.Tp.Drill.g_hedge_wins);
            ("single_copy_writes", Json.Int g.Tp.Drill.g_single_copy_writes);
          ] );
      ("zero_loss", Json.Bool (Tp.Drill.zero_loss g.Tp.Drill.g_degraded));
      ("pass", Json.Bool (Tp.Drill.gray_pass g));
      ("oracle", Tp.Drill.Oracle.to_json (Tp.Drill.Oracle.of_gray g));
      ("healthy", drill_json ~plan:"grayfail" g.Tp.Drill.g_healthy);
      ("degraded", drill_json ~plan:"grayfail" g.Tp.Drill.g_degraded);
    ]

let gray_drill_text (g : Tp.Drill.gray_report) =
  Printf.printf
    "drill: mode=pm plan=grayfail seed=0x%Lx defenses=%s — fail-slow hardware under \
     hot-stock load\n"
    g.Tp.Drill.g_seed
    (if g.Tp.Drill.g_defended then "on" else "OFF (negative control)");
  hr ();
  List.iter
    (fun (t, desc) -> Printf.printf "%10.1f ms  %s\n" (Time.to_ms t) desc)
    g.Tp.Drill.g_degraded.Tp.Drill.faults;
  hr ();
  let h = g.Tp.Drill.g_healthy and d = g.Tp.Drill.g_degraded in
  Printf.printf "healthy baseline   %d commits, mean/p99 %.2f / %.2f ms\n"
    h.Tp.Drill.committed
    (h.Tp.Drill.response.Stat.mean /. 1e6)
    (h.Tp.Drill.response.Stat.p99 /. 1e6);
  Printf.printf "degraded run       %d commits, mean/p99 %.2f / %.2f ms\n"
    d.Tp.Drill.committed
    (d.Tp.Drill.response.Stat.mean /. 1e6)
    (d.Tp.Drill.response.Stat.p99 /. 1e6);
  Printf.printf "p99 ratio          %.2fx (gate: <= %.1fx) — %s\n" g.Tp.Drill.g_p99_ratio
    g.Tp.Drill.g_p99_limit
    (if g.Tp.Drill.g_p99_ratio <= g.Tp.Drill.g_p99_limit then "bounded"
     else "LATENCY COLLAPSE");
  Printf.printf "mirror health      %d probes, %d demotions, %d readmissions, mirror %s\n"
    g.Tp.Drill.g_monitor_probes g.Tp.Drill.g_demotions g.Tp.Drill.g_readmissions
    (if g.Tp.Drill.g_mirror_active then "active" else "DEMOTED");
  Printf.printf "client defenses    %d slow suspects, %d hedged reads (%d won), %d \
                 single-copy writes\n"
    g.Tp.Drill.g_slow_suspects g.Tp.Drill.g_hedged_reads g.Tp.Drill.g_hedge_wins
    g.Tp.Drill.g_single_copy_writes;
  Printf.printf "durability         %d acked rows, %d LOST — %s\n" d.Tp.Drill.acked_rows
    d.Tp.Drill.lost_rows
    (if Tp.Drill.zero_loss d then "zero loss" else "DATA LOSS");
  Printf.printf "verdict            %s\n"
    (if Tp.Drill.gray_pass g then "PASS" else "FAIL");
  hr ()

let overload_drill_json (r : Tp.Drill.overload_report) =
  Json.Obj
    [
      ("mode", Json.String "pm");
      ("plan", Json.String "overload");
      ("seed", Json.String (Printf.sprintf "0x%Lx" r.Tp.Drill.v_seed));
      ("defended", Json.Bool r.Tp.Drill.v_defended);
      ("arrivals", Json.Int r.Tp.Drill.v_arrivals);
      ("committed", Json.Int r.Tp.Drill.v_committed);
      ("rejected", Json.Int r.Tp.Drill.v_rejected);
      ("failed", Json.Int r.Tp.Drill.v_failed);
      ("client_timeouts", Json.Int r.Tp.Drill.v_timeouts);
      ( "admission",
        Json.Obj
          [
            ("admitted", Json.Int r.Tp.Drill.v_admitted);
            ("rejected", Json.Int r.Tp.Drill.v_tmf_rejected);
            ("expired", Json.Int r.Tp.Drill.v_tmf_expired);
            ("adp_shed_expired", Json.Int r.Tp.Drill.v_adp_shed);
          ] );
      ( "containment",
        Json.Obj
          [
            ("retry_denied", Json.Int r.Tp.Drill.v_retry_denied);
            ("breaker_trips", Json.Int r.Tp.Drill.v_breaker_trips);
          ] );
      ( "goodput_tps",
        Json.Obj
          [
            ("warmup", Json.Float r.Tp.Drill.v_warmup_goodput);
            ("spike", Json.Float r.Tp.Drill.v_spike_goodput);
            ("cooldown", Json.Float r.Tp.Drill.v_cooldown_goodput);
            ("spike_floor", Json.Float r.Tp.Drill.v_spike_floor);
            ("recovery_frac", Json.Float r.Tp.Drill.v_recovery_frac);
          ] );
      ( "recovery_ms",
        match r.Tp.Drill.v_recovery_time with
        | Some t -> Json.Float (Time.to_ms t)
        | None -> Json.Null );
      ("recovery_limit_ms", Json.Float (Time.to_ms r.Tp.Drill.v_recovery_limit));
      ( "goodput_windows",
        Json.List
          (List.map
             (fun (t, d) ->
               Json.Obj [ ("t_ms", Json.Float (Time.to_ms t)); ("committed", Json.Int d) ])
             r.Tp.Drill.v_goodput) );
      ("acked_rows", Json.Int r.Tp.Drill.v_acked_rows);
      ("lost_rows", Json.Int r.Tp.Drill.v_lost_rows);
      ("zero_loss", Json.Bool (r.Tp.Drill.v_lost_rows = 0));
      ("elapsed_s", Json.Float (Time.to_sec r.Tp.Drill.v_elapsed));
      ( "response_ms",
        Json.Obj
          [
            ("mean", Json.Float (r.Tp.Drill.v_response.Stat.mean /. 1e6));
            ("p50", Json.Float (r.Tp.Drill.v_response.Stat.p50 /. 1e6));
            ("p99", Json.Float (r.Tp.Drill.v_response.Stat.p99 /. 1e6));
          ] );
      ( "faults",
        Json.List
          (List.map
             (fun (t, desc) ->
               Json.Obj [ ("at_ms", Json.Float (Time.to_ms t)); ("fault", Json.String desc) ])
             r.Tp.Drill.v_faults) );
      ( "recovery",
        Json.Obj
          [
            ("mttr_ms", Json.Float (Time.to_ms r.Tp.Drill.v_recovery.Tp.Recovery.mttr));
            ("committed_txns", Json.Int r.Tp.Drill.v_recovery.Tp.Recovery.committed_txns);
            ("rows_rebuilt", Json.Int r.Tp.Drill.v_recovery.Tp.Recovery.rows_rebuilt);
          ] );
      ("pass", Json.Bool (Tp.Drill.overload_pass r));
      ("oracle", Tp.Drill.Oracle.to_json (Tp.Drill.Oracle.of_overload r));
      ( "timeline",
        match r.Tp.Drill.v_timeline with
        | Some ts ->
            Json.Obj
              [
                ("samples", Json.Int (Timeseries.sample_count ts));
                ("evicted", Json.Int (Timeseries.evicted ts));
                ("series", Timeseries.json ts);
              ]
        | None -> Json.Null );
    ]

let overload_drill_text (r : Tp.Drill.overload_report) =
  Printf.printf
    "drill: mode=pm plan=overload seed=0x%Lx defenses=%s — open-loop flash crowd \
     against impatient clients\n"
    r.Tp.Drill.v_seed
    (if r.Tp.Drill.v_defended then "on" else "OFF (negative control)");
  hr ();
  List.iter
    (fun (t, desc) -> Printf.printf "%10.1f ms  %s\n" (Time.to_ms t) desc)
    r.Tp.Drill.v_faults;
  hr ();
  Printf.printf "offered load       %d arrivals over %.3f s\n" r.Tp.Drill.v_arrivals
    (Time.to_sec r.Tp.Drill.v_elapsed);
  Printf.printf "outcomes           %d committed, %d rejected (backpressure), %d failed\n"
    r.Tp.Drill.v_committed r.Tp.Drill.v_rejected r.Tp.Drill.v_failed;
  Printf.printf "client impatience  %d call timeouts\n" r.Tp.Drill.v_timeouts;
  Printf.printf "admission          %d admitted, %d rejected at begin, %d expired at \
                 commit, %d flush waits shed\n"
    r.Tp.Drill.v_admitted r.Tp.Drill.v_tmf_rejected r.Tp.Drill.v_tmf_expired
    r.Tp.Drill.v_adp_shed;
  Printf.printf "containment        %d resends denied by budget, %d breaker trips\n"
    r.Tp.Drill.v_retry_denied r.Tp.Drill.v_breaker_trips;
  Printf.printf "response mean/p99  %.2f / %.2f ms\n"
    (r.Tp.Drill.v_response.Stat.mean /. 1e6)
    (r.Tp.Drill.v_response.Stat.p99 /. 1e6);
  Printf.printf "goodput            warmup %.1f tps, spike %.1f tps (floor %.1f), \
                 cooldown %.1f tps\n"
    r.Tp.Drill.v_warmup_goodput r.Tp.Drill.v_spike_goodput
    (r.Tp.Drill.v_spike_floor *. r.Tp.Drill.v_warmup_goodput)
    r.Tp.Drill.v_cooldown_goodput;
  Printf.printf "recovery           %s (limit %s after spike end)\n"
    (match r.Tp.Drill.v_recovery_time with
    | Some t -> Time.to_string t
    | None -> "NEVER — stayed collapsed under base load (metastable)")
    (Time.to_string r.Tp.Drill.v_recovery_limit);
  Printf.printf "goodput over time (%d windows):\n" (List.length r.Tp.Drill.v_goodput);
  Printf.printf "%12s %10s\n" "t(ms)" "committed";
  List.iter
    (fun (t, d) -> Printf.printf "%12.1f %10d\n" (Time.to_ms t) d)
    r.Tp.Drill.v_goodput;
  Printf.printf "durability         %d acked rows, %d LOST — %s\n" r.Tp.Drill.v_acked_rows
    r.Tp.Drill.v_lost_rows
    (if r.Tp.Drill.v_lost_rows = 0 then "rejected is not lost" else "DATA LOSS");
  Printf.printf "verdict            %s\n"
    (if Tp.Drill.overload_pass r then "PASS" else "FAIL");
  hr ()

let drill_fail json e =
  if json then print_endline (Json.to_string (Json.Obj [ ("error", Json.String e) ]));
  prerr_endline ("odsbench drill: " ^ e);
  exit 1

let cluster_drill plan_name drivers seed interval_ms flight json =
  if interval_ms > 0 then begin
    prerr_endline "odsbench drill: --interval-ms is not supported in cluster mode";
    exit 2
  end;
  let plan =
    match plan_name with
    | "partition" | "standard" -> Tp.Drill.partition_plan
    | "none" -> []
    | other ->
        Printf.eprintf "odsbench drill: unknown cluster plan '%s' (%s)\n" other
          (String.concat "|" Tp.Drill.cluster_plan_names);
        exit 2
  in
  let params = { Tp.Drill.cluster_params with Tp.Drill.drivers } in
  let plan_label = match plan_name with "standard" -> "partition" | other -> other in
  match Tp.Drill.run_cluster ~seed:(Int64.of_int seed) ~params ?flight ~plan () with
  | Error e -> drill_fail json e
  | Ok r ->
      if json then print_endline (Json.to_string (cluster_drill_json ~plan:plan_label r))
      else cluster_drill_text r;
      if not (Tp.Drill.cluster_zero_loss r) then begin
        Printf.eprintf
          "odsbench drill: invariant violated (lost=%d in-doubt=%d orphaned-locks=%d \
           fence-failures=%d)\n"
          r.Tp.Drill.c_lost_rows r.Tp.Drill.c_in_doubt_after r.Tp.Drill.c_orphaned_locks
          r.Tp.Drill.c_fence_failures;
        exit 1
      end

(* --plan-file: replay a schedule from disk.  A full repro document
   (schema "odsbench-repro", as written by the explorer) pins the
   platform, seed and defenses, so the replay is bit-for-bit; a bare
   JSON array is just a fault plan, run under --mode with the
   command-line seed and sizing. *)
let drill_plan_file path mode_str drivers boxcar records seed flight json =
  let doc =
    match Json.parse (read_whole_file path) with
    | Ok d -> d
    | Error e ->
        Printf.eprintf "odsbench drill: %s: %s\n" path e;
        exit 2
  in
  match doc with
  | Json.List _ -> (
      match Tp.Faultplan.of_json doc with
      | Error e ->
          Printf.eprintf "odsbench drill: %s: %s\n" path e;
          exit 2
      | Ok plan -> (
          if mode_str <> "disk" && mode_str <> "pm" then begin
            prerr_endline
              "odsbench drill: a bare plan array needs --mode disk or pm (wrap cluster \
               or overload schedules in a repro document)";
            exit 2
          end;
          let mode = parse_mode mode_str in
          let params =
            {
              Tp.Drill.default_params with
              Tp.Drill.drivers;
              records_per_driver = records;
              inserts_per_txn = boxcar;
            }
          in
          match
            Tp.Drill.run ~seed:(Int64.of_int seed) ~params ?flight ~mode ~plan ()
          with
          | Error e -> drill_fail json e
          | Ok r ->
              if json then print_endline (Json.to_string (drill_json ~plan:path r))
              else drill_text r;
              if not (Tp.Drill.zero_loss r) then begin
                Printf.eprintf
                  "odsbench drill: %d acknowledged rows lost after recovery\n"
                  r.Tp.Drill.lost_rows;
                exit 1
              end))
  | _ -> (
      match Tp.Explorer.repro_of_json doc with
      | Error e ->
          Printf.eprintf "odsbench drill: %s: %s\n" path e;
          exit 2
      | Ok repro -> (
          match Tp.Explorer.replay ?flight repro with
          | Error e -> drill_fail json e
          | Ok result ->
              let verdict = Tp.Explorer.replay_verdict result in
              (match result with
              | Tp.Explorer.Single r ->
                  if json then print_endline (Json.to_string (drill_json ~plan:path r))
                  else drill_text r
              | Tp.Explorer.Clustered r ->
                  if json then
                    print_endline (Json.to_string (cluster_drill_json ~plan:path r))
                  else cluster_drill_text r
              | Tp.Explorer.Overloaded r ->
                  if json then print_endline (Json.to_string (overload_drill_json r))
                  else overload_drill_text r);
              if not (Tp.Drill.Oracle.pass verdict) then begin
                Printf.eprintf "odsbench drill: oracle violated — %s\n"
                  (Tp.Drill.Oracle.summary verdict);
                exit 1
              end))

let drill mode plan_name plan_file drivers boxcar records seed interval_ms flight
    list_plans no_defenses json =
  if list_plans then
    let names =
      match mode with
      | "cluster" -> Tp.Drill.cluster_plan_names
      | "disk" -> Tp.Drill.plan_names Tp.System.Disk_audit
      | _ -> Tp.Drill.plan_names Tp.System.Pm_audit
    in
    List.iter print_endline names
  else
    match plan_file with
    | Some path -> drill_plan_file path mode drivers boxcar records seed flight json
    | None ->
  if mode = "cluster" then
    cluster_drill plan_name drivers seed interval_ms flight json
  else begin
    let mode = if mode = "disk" then Tp.System.Disk_audit else Tp.System.Pm_audit in
    if
      no_defenses && plan_name <> "corruption" && plan_name <> "grayfail"
      && plan_name <> "overload"
    then begin
      prerr_endline
        "odsbench drill: --no-defenses only applies to --plan corruption, grayfail or \
         overload";
      exit 2
    end;
    let params =
      {
        Tp.Drill.default_params with
        Tp.Drill.drivers;
        records_per_driver = records;
        inserts_per_txn = boxcar;
      }
    in
    let obs, sample_interval =
      if interval_ms > 0 then (Some (Obs.create ()), Some (Time.ms interval_ms))
      else (None, None)
    in
    if plan_name = "overload" then begin
      (* The overload drill owns its load shape entirely — an open-loop
         flash-crowd arrival schedule is the experiment — so it ignores
         --records, --boxcar and --drivers and goes through its
         dedicated entry point.  The gate is goodput under and after the
         spike, not just row durability. *)
      if mode <> Tp.System.Pm_audit then begin
        prerr_endline "odsbench drill: plan 'overload' requires --mode pm";
        exit 2
      end;
      match
        Tp.Drill.run_overload ~seed:(Int64.of_int seed) ?obs ?sample_interval
          ~defenses:(not no_defenses) ?flight ()
      with
      | Error e -> drill_fail json e
      | Ok r ->
          if json then print_endline (Json.to_string (overload_drill_json r))
          else overload_drill_text r;
          if not (Tp.Drill.overload_pass r) then begin
            Printf.eprintf
              "odsbench drill: overload gate violated (lost=%d warmup=%.1f tps \
               spike=%.1f tps recovery=%s rejected=%d)\n"
              r.Tp.Drill.v_lost_rows r.Tp.Drill.v_warmup_goodput
              r.Tp.Drill.v_spike_goodput
              (match r.Tp.Drill.v_recovery_time with
              | Some t -> Time.to_string t
              | None -> "never")
              r.Tp.Drill.v_rejected;
            exit 1
          end
    end
    else if plan_name = "grayfail" then begin
      (* The gray-failure drill owns its load shape (the p99 gate needs
         a known sample count) and runs twice — healthy baseline, then
         the staged fail-slow schedule — so it ignores --records and
         --boxcar and goes through its dedicated entry point. *)
      if mode <> Tp.System.Pm_audit then begin
        prerr_endline "odsbench drill: plan 'grayfail' requires --mode pm";
        exit 2
      end;
      let params = { Tp.Drill.gray_params with Tp.Drill.drivers } in
      match
        Tp.Drill.run_gray ~seed:(Int64.of_int seed) ?obs ?sample_interval ~params
          ~defenses:(not no_defenses) ?flight ()
      with
      | Error e -> drill_fail json e
      | Ok g ->
          if json then print_endline (Json.to_string (gray_drill_json g))
          else gray_drill_text g;
          if not (Tp.Drill.gray_pass g) then begin
            Printf.eprintf
              "odsbench drill: gray-failure gate violated (lost=%d p99-ratio=%.2f \
               demotions=%d readmissions=%d)\n"
              g.Tp.Drill.g_degraded.Tp.Drill.lost_rows g.Tp.Drill.g_p99_ratio
              g.Tp.Drill.g_demotions g.Tp.Drill.g_readmissions;
            exit 1
          end
    end
    else if plan_name = "corruption" then begin
      (* The storage-integrity drill has its own config (scrubber +
         verified reads) and crash-time decay, so it goes through its
         dedicated entry point; the exit gate is the integrity audit,
         not just row durability. *)
      if mode <> Tp.System.Pm_audit then begin
        prerr_endline "odsbench drill: plan 'corruption' requires --mode pm";
        exit 2
      end;
      match
        Tp.Drill.run_corruption ~seed:(Int64.of_int seed) ?obs ?sample_interval ~params
          ~defenses:(not no_defenses) ?flight ()
      with
      | Error e -> drill_fail json e
      | Ok r ->
          if json then
            print_endline (Json.to_string (drill_json ~plan:"corruption" r))
          else drill_text r;
          if not (Tp.Drill.integrity_clean r) then begin
            let div =
              match r.Tp.Drill.integrity with
              | Some i -> i.Tp.Drill.unrepaired_divergence
              | None -> 0
            in
            Printf.eprintf
              "odsbench drill: integrity violated (%d rows lost, %d divergent chunks \
               unrepaired)\n"
              r.Tp.Drill.lost_rows div;
            exit 1
          end
    end
    else begin
      let plan =
        match plan_name with
        | "standard" -> Tp.Drill.standard_plan mode
        | "kills" ->
            (* Process-pair decapitations only. *)
            List.filter
              (fun ev ->
                match ev.Tp.Faultplan.action with
                | Tp.Faultplan.Kill_primary _ -> true
                | _ -> false)
              (Tp.Drill.standard_plan mode)
        | "none" -> []
        | other ->
            Printf.eprintf "odsbench drill: unknown plan '%s' (%s)\n" other
              (String.concat "|" (Tp.Drill.plan_names mode));
            exit 2
      in
      match
        Tp.Drill.run ~seed:(Int64.of_int seed) ?obs ?sample_interval ~params ?flight ~mode
          ~plan ()
      with
      | Error e -> drill_fail json e
      | Ok r ->
          if json then
            print_endline (Json.to_string (drill_json ~plan:plan_name r))
          else drill_text r;
          if not (Tp.Drill.zero_loss r) then begin
            Printf.eprintf "odsbench drill: %d acknowledged rows lost after recovery\n"
              r.Tp.Drill.lost_rows;
            exit 1
          end
    end
  end

let drill_cmd =
  let mode =
    Arg.(
      value & opt string "pm"
      & info [ "mode" ] ~docv:"disk|pm|cluster"
          ~doc:
            "Audit backend, or $(b,cluster) for the multi-node partition drill \
             (distributed 2PC load, WAN partition, in-doubt resolution, epoch-fence \
             audit).")
  in
  let plan =
    Arg.(
      value & opt string "standard"
      & info [ "plan" ] ~docv:"standard|kills|corruption|grayfail|overload|none|partition"
          ~doc:
            "Fault schedule: $(b,standard) is the full drill (PM: PMM kill, NPMU \
             power-cycle, rail flap, CRC noise, resync), $(b,kills) keeps only the \
             process-pair kills, $(b,corruption) (PM mode) injects silent media decay \
             and torn stores with the scrubber and verified reads armed and audits \
             storage integrity, $(b,grayfail) (PM mode) degrades the mirror NPMU, a \
             fabric rail and a data spindle fail-slow with the latency health monitor, \
             hedged reads and slow-mirror demotion armed, gating on bounded commit p99 \
             and a completed demotion/re-admission cycle (it owns its load shape: \
             --records and --boxcar are ignored), $(b,overload) (PM mode) offers an \
             open-loop flash crowd (5x the base rate) to impatient clients with \
             admission control, deadlines, retry budgets and breakers armed, gating on \
             spike goodput above a floor and bounded recovery after the spike (it owns \
             its load shape: --records, --boxcar and --drivers are ignored), $(b,none) \
             runs faultless.  In cluster mode, \
             $(b,partition) (the default) severs the inter-node link mid-2PC, kills the \
             coordinator, heals, takes over the PM manager and probes the epoch fence.  \
             $(b,--list-plans) prints the names valid for the selected mode.")
  in
  let list_plans =
    Arg.(
      value & flag
      & info [ "list-plans" ]
          ~doc:"Print the $(b,--plan) names valid for the selected mode and exit.")
  in
  let plan_file =
    Arg.(
      value & opt (some string) None
      & info [ "plan-file" ] ~docv:"FILE"
          ~doc:
            "Replay a schedule from $(docv) instead of a named $(b,--plan).  A repro \
             document written by $(b,odsbench explore) pins the platform, seed and \
             defenses, so the drill replays bit-for-bit and is gated by the shared \
             invariant oracle; a bare JSON array of actions runs under $(b,--mode) with \
             the command-line seed and sizing.")
  in
  let no_defenses =
    Arg.(
      value & flag
      & info [ "no-defenses" ]
          ~doc:
            "Corruption, grayfail and overload plans only: run the same fault schedule \
             with the defenses disabled (corruption: scrubber and verified reads; \
             grayfail: health monitor, hedged reads, demotion and adaptive backoff; \
             overload: admission control, deadlines, retry budgets and breakers) — the \
             negative control that shows what the faults cost undefended (expect a \
             non-zero exit).")
  in
  let drivers = Arg.(value & opt int 2 & info [ "drivers" ] ~docv:"N" ~doc:"Driver count.") in
  let boxcar =
    Arg.(value & opt int 8 & info [ "boxcar" ] ~docv:"N" ~doc:"Inserts per transaction.")
  in
  let seed =
    Arg.(value & opt int 0xD5177 & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.")
  in
  let interval_ms =
    Arg.(
      value & opt int 0
      & info [ "interval-ms" ] ~docv:"MS"
          ~doc:
            "Record a telemetry timeline on this cadence and print the event-aligned \
             availability overlay (0 disables sampling).")
  in
  let flight =
    Arg.(
      value & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Arm the failure flight recorder: keep a bounded ring of the most recent \
             commit-path spans plus every fault-injection mark, and dump it to $(docv) \
             as JSON automatically if the drill's gate fails — the last moments before \
             the failure, already collected.")
  in
  Cmd.v
    (Cmd.info "drill"
       ~doc:
         "Run hot-stock load under a fault schedule, crash, recover, and audit that no \
          acknowledged commit was lost")
    Term.(
      const drill $ mode $ plan $ plan_file $ drivers $ boxcar $ records_arg 400 $ seed
      $ interval_ms $ flight $ list_plans $ no_defenses $ json_arg)

(* --- explore: adversarial fault-schedule search --- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let explore_text (r : Tp.Explorer.report) =
  Printf.printf "explore: budget=%d seed=%d defenses=%s\n" r.Tp.Explorer.x_budget
    r.Tp.Explorer.x_seed
    (if r.Tp.Explorer.x_defenses then "on" else "OFF (weakened platform)");
  hr ();
  let count k =
    List.length (List.filter (fun s -> s.Tp.Explorer.s_kind = k) r.Tp.Explorer.x_schedules)
  in
  Printf.printf "schedules   %d (pm %d, disk %d, cluster %d, overload %d)\n"
    (List.length r.Tp.Explorer.x_schedules)
    (count Tp.Explorer.Pm) (count Tp.Explorer.Disk) (count Tp.Explorer.Cluster)
    (count Tp.Explorer.Overload);
  Printf.printf "drills      %d (shrink replays included)\n" r.Tp.Explorer.x_drills;
  let uniq f =
    List.length (List.sort_uniq compare (List.map f r.Tp.Explorer.x_coverage))
  in
  Printf.printf "coverage    %d families x %d phases x %d layers (%d cells hit)\n"
    (uniq (fun ((f, _, _), _) -> f))
    (uniq (fun ((_, p, _), _) -> p))
    (uniq (fun ((_, _, l), _) -> l))
    (List.length r.Tp.Explorer.x_coverage);
  hr ();
  Printf.printf "%-18s %-9s %-10s %6s\n" "family" "phase" "layer" "events";
  List.iter
    (fun ((family, phase, layer), n) ->
      Printf.printf "%-18s %-9s %-10s %6d\n" family phase layer n)
    r.Tp.Explorer.x_coverage;
  hr ();
  if r.Tp.Explorer.x_violations = [] then
    Printf.printf "violations  none — every schedule satisfied the oracle\n"
  else
    List.iter
      (fun (v : Tp.Explorer.violation) ->
        Printf.printf
          "VIOLATION   schedule %d (%s, seed 0x%Lx): %d actions shrunk to %d in %d \
           replays\n"
          v.Tp.Explorer.vi_index
          (Tp.Explorer.kind_name v.Tp.Explorer.vi_kind)
          v.Tp.Explorer.vi_seed v.Tp.Explorer.vi_actions v.Tp.Explorer.vi_shrunk_actions
          v.Tp.Explorer.vi_replays;
        List.iter
          (fun ev ->
            Printf.printf "              +%s %s\n"
              (Time.to_string ev.Tp.Faultplan.after)
              (Tp.Faultplan.describe ev.Tp.Faultplan.action))
          v.Tp.Explorer.vi_schedule.Tp.Explorer.s_plan;
        List.iter
          (fun ev ->
            Printf.printf "              recovery+%s %s\n"
              (Time.to_string ev.Tp.Faultplan.after)
              (Tp.Faultplan.describe ev.Tp.Faultplan.action))
          v.Tp.Explorer.vi_schedule.Tp.Explorer.s_recovery;
        (match v.Tp.Explorer.vi_verdict with
        | Tp.Explorer.Verdict verdict ->
            Printf.printf "              oracle: %s\n" (Tp.Drill.Oracle.summary verdict)
        | Tp.Explorer.Harness_error e -> Printf.printf "              error: %s\n" e);
        (match v.Tp.Explorer.vi_repro with
        | Some p -> Printf.printf "              repro: %s\n" p
        | None -> ());
        match v.Tp.Explorer.vi_flight with
        | Some p -> Printf.printf "              flight: %s\n" p
        | None -> ())
      r.Tp.Explorer.x_violations;
  hr ()

let explore budget seed out_dir max_replays no_defenses corpus_only json =
  if corpus_only then
    print_endline (Json.to_string (Tp.Explorer.corpus_json ~seed ~budget))
  else begin
    Option.iter mkdir_p out_dir;
    let progress index violated =
      if violated then
        Printf.eprintf "odsbench explore: schedule %d violated the oracle — shrinking\n%!"
          index
    in
    let r =
      Tp.Explorer.run ~defenses:(not no_defenses) ?out_dir ~max_replays ~progress
        ~budget ~seed ()
    in
    if json then print_endline (Json.to_string (Tp.Explorer.to_json r))
    else explore_text r;
    if Tp.Explorer.found r then begin
      Printf.eprintf "odsbench explore: %d schedule(s) violated the invariant oracle\n"
        (List.length r.Tp.Explorer.x_violations);
      exit 1
    end
  end

let explore_cmd =
  let budget =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~docv:"N" ~doc:"Schedules to generate and run.")
  in
  let seed =
    Arg.(
      value & opt int 0xE5EED
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Corpus seed.  The whole corpus is a pure function of the seed: the same \
             seed generates byte-identical schedules.")
  in
  let out_dir =
    Arg.(
      value & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:
            "Write a replayable repro_NNNN.json (for $(b,odsbench drill --plan-file)) \
             and a flight_NNNN.json black-box dump for every violation (created if \
             missing).")
  in
  let max_replays =
    Arg.(
      value & opt int 150
      & info [ "max-replays" ] ~docv:"N"
          ~doc:"Drill replays the shrinker may spend per violation.")
  in
  let no_defenses =
    Arg.(
      value & flag
      & info [ "no-defenses" ]
          ~doc:
            "Run the same corpus on the weakened platform (PM integrity and overload \
             defenses off) — the negative control: the explorer must find the known \
             failures and shrink them (expect a non-zero exit).")
  in
  let corpus_only =
    Arg.(
      value & flag
      & info [ "corpus-only" ]
          ~doc:
            "Generate and print the schedule corpus as JSON without running any drill — \
             the determinism witness.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Adversarial fault-schedule search: generate seeded composite chaos schedules \
          over the whole fault vocabulary (phase-aware: during load, mid-2PC, during \
          recovery, mid-resync), run each as a drill judged by the shared invariant \
          oracle, and delta-debug any violation to a minimal schedule emitted as a \
          bit-for-bit replayable repro file")
    Term.(
      const explore $ budget $ seed $ out_dir $ max_replays $ no_defenses $ corpus_only
      $ json_arg)

(* --- timeline: continuous telemetry + bottleneck attribution --- *)

(* When both modes run against one --csv path, insert the mode name
   before the extension: out.csv -> out-disk.csv / out-pm.csv. *)
let mode_csv_path path mode_str =
  let ext = Filename.extension path in
  if ext = "" then path ^ "-" ^ mode_str
  else Filename.remove_extension path ^ "-" ^ mode_str ^ ext

let timeline mode_str device drivers boxcar records interval_ms csv json =
  let modes =
    match mode_str with
    | "disk" -> [ Tp.System.Disk_audit ]
    | "pm" -> [ Tp.System.Pm_audit ]
    | "both" -> [ Tp.System.Disk_audit; Tp.System.Pm_audit ]
    | other ->
        prerr_endline ("odsbench timeline: unknown mode '" ^ other ^ "' (disk|pm|both)");
        exit 2
  in
  if interval_ms < 1 then begin
    prerr_endline "odsbench timeline: --interval-ms must be at least 1";
    exit 2
  end;
  let interval = Time.ms interval_ms in
  let results =
    List.map
      (fun mode ->
        let obs = Obs.create () in
        let _system, c, ts =
          run_hot_stock_cell ~obs ~sample_interval:interval ~device ~mode ~drivers ~boxcar
            ~records ()
        in
        let ts = match ts with Some t -> t | None -> assert false in
        (mode, c, ts))
      modes
  in
  let both = List.length results > 1 in
  (match csv with
  | Some path ->
      List.iter
        (fun (mode, _, ts) ->
          let p = if both then mode_csv_path path (mode_to_string mode) else path in
          let oc = open_out p in
          output_string oc (Timeseries.to_csv ts);
          close_out oc;
          if not json then
            Printf.printf "wrote %s (%d samples, %d columns)\n" p
              (Timeseries.sample_count ts)
              (List.length (Timeseries.paths ts)))
        results
  | None -> ());
  if json then
    print_endline
      (Json.to_string
         (Json.Obj
            (List.map
               (fun (mode, c, ts) ->
                 let r = c.Figures.result in
                 ( mode_to_string mode,
                   Json.Obj
                     [
                       ("elapsed_s", Json.Float (Time.to_sec r.Hot_stock.elapsed));
                       ("committed", Json.Int r.Hot_stock.committed);
                       ("throughput_tps", Json.Float r.Hot_stock.throughput_tps);
                       ("timeline", Timeseries.json ts);
                       ("bottlenecks", Timeseries.attribution_json ts);
                     ] ))
               results)))
  else
    List.iter
      (fun (mode, c, ts) ->
        let r = c.Figures.result in
        Printf.printf
          "timeline: mode=%s drivers=%d boxcar=%d records=%d interval=%d ms\n"
          (mode_to_string mode) drivers boxcar records interval_ms;
        hr ();
        Printf.printf "samples      %d (%d columns, %d evicted)\n"
          (Timeseries.sample_count ts)
          (List.length (Timeseries.paths ts))
          (Timeseries.evicted ts);
        Printf.printf "elapsed      %.3f s   committed %d   throughput %.1f txn/s\n"
          (Time.to_sec r.Hot_stock.elapsed)
          r.Hot_stock.committed r.Hot_stock.throughput_tps;
        hr ();
        Printf.printf "bottleneck attribution (where the time went):\n";
        Format.printf "%a@?" Timeseries.pp_attribution ts;
        hr ())
      results

let timeline_cmd =
  let mode =
    Arg.(
      value & opt string "both"
      & info [ "mode" ] ~docv:"disk|pm|both" ~doc:"Audit backend(s) to sample.")
  in
  let device =
    Arg.(
      value & opt string "npmu"
      & info [ "device" ] ~docv:"npmu|pmp"
          ~doc:"PM device kind (hardware NPMU or prototype PMP).")
  in
  let drivers = Arg.(value & opt int 2 & info [ "drivers" ] ~docv:"N" ~doc:"Driver count.") in
  let boxcar =
    Arg.(value & opt int 8 & info [ "boxcar" ] ~docv:"N" ~doc:"Inserts per transaction.")
  in
  let interval_ms =
    Arg.(
      value & opt int 10
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Sampling interval in sim milliseconds.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:
            "Write the full series as CSV.  With --mode both, the mode name is inserted \
             before the extension (out.csv -> out-disk.csv, out-pm.csv).")
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Run a hot-stock cell with the continuous-telemetry sampler on and print the \
          bottleneck-attribution report (CSV/JSON export of the full series)")
    Term.(
      const timeline $ mode $ device $ drivers $ boxcar $ records_arg 2_000 $ interval_ms
      $ csv $ json_arg)

(* --- critpath: causal tracing + critical-path attribution --- *)

let write_text_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let critpath_mode_json (r : Causal.mode_run) =
  Json.Obj
    [
      ("mode", Json.String (mode_to_string r.Causal.cp_mode));
      ("committed", Json.Int r.Causal.cp_committed);
      ("elapsed_s", Json.Float (Time.to_sec r.Causal.cp_elapsed));
      ("critpath", Critpath.to_json r.Causal.cp);
    ]

let critpath_mode_text (r : Causal.mode_run) =
  Printf.printf
    "critpath: mode=%s — causal commit tracing, critical-path attribution\n"
    (mode_to_string r.Causal.cp_mode);
  hr ();
  Printf.printf "committed    %d txns in %.3f s\n" r.Causal.cp_committed
    (Time.to_sec r.Causal.cp_elapsed);
  Format.printf "%a@?" Critpath.pp r.Causal.cp;
  hr ()

let critpath_cluster_json (r : Causal.cluster_run) =
  Json.Obj
    [
      ("mode", Json.String "cluster");
      ("nodes", Json.Int r.Causal.cl_nodes);
      ("committed", Json.Int r.Causal.cl_committed);
      ("failed_txns", Json.Int r.Causal.cl_failed);
      ("elapsed_s", Json.Float (Time.to_sec r.Causal.cl_elapsed));
      ("critpath", Critpath.to_json r.Causal.cl_cp);
    ]

let critpath_cluster_text (r : Causal.cluster_run) =
  Printf.printf
    "critpath: mode=cluster nodes=%d — cross-node 2PC commit tracing\n"
    r.Causal.cl_nodes;
  hr ();
  Printf.printf "committed    %d txns (%d failed) in %.3f s\n" r.Causal.cl_committed
    r.Causal.cl_failed
    (Time.to_sec r.Causal.cl_elapsed);
  Format.printf "%a@?" Critpath.pp r.Causal.cl_cp;
  hr ()

let critpath mode_str drivers boxcar records nodes txns seed chrome json =
  let chrome_path m =
    match chrome with
    | None -> None
    | Some path -> Some (if mode_str = "both" then mode_csv_path path m else path)
  in
  let dump_chrome path_opt doc_opt =
    match (path_opt, doc_opt) with
    | Some p, Some doc ->
        write_text_file p doc;
        if not json then Printf.printf "wrote %s\n" p
    | _ -> ()
  in
  let run_one mode =
    let r =
      Causal.run_mode ~seed:(Int64.of_int seed) ~drivers ~inserts_per_txn:boxcar
        ~records_per_driver:records ~chrome:(chrome <> None) ~mode ()
    in
    dump_chrome (chrome_path (mode_to_string mode)) r.Causal.cp_chrome;
    r
  in
  match mode_str with
  | "cluster" ->
      let r =
        Causal.run_cluster ~seed:(Int64.of_int seed) ~nodes ~drivers ~txns_per_driver:txns
          ~inserts_per_txn:boxcar ~chrome:(chrome <> None) ()
      in
      dump_chrome chrome r.Causal.cl_chrome;
      if json then print_endline (Json.to_string (critpath_cluster_json r))
      else critpath_cluster_text r
  | "disk" | "pm" ->
      let r = run_one (parse_mode mode_str) in
      if json then print_endline (Json.to_string (critpath_mode_json r))
      else critpath_mode_text r
  | "both" ->
      let d = run_one Tp.System.Disk_audit in
      let p = run_one Tp.System.Pm_audit in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj [ ("disk", critpath_mode_json d); ("pm", critpath_mode_json p) ]))
      else begin
        critpath_mode_text d;
        print_newline ();
        critpath_mode_text p
      end
  | other ->
      prerr_endline
        ("odsbench critpath: unknown mode '" ^ other ^ "' (disk|pm|both|cluster)");
      exit 2

let critpath_cmd =
  let mode =
    Arg.(
      value & opt string "both"
      & info [ "mode" ] ~docv:"disk|pm|both|cluster"
          ~doc:
            "What to trace: a single-node hot-stock cell on the disk or PM audit \
             backend ($(b,both) runs one of each for comparison), or $(b,cluster), a \
             multi-node 2PC load whose prepare/decide hops cross the interconnect.")
  in
  let drivers = Arg.(value & opt int 2 & info [ "drivers" ] ~docv:"N" ~doc:"Driver count.") in
  let boxcar =
    Arg.(value & opt int 8 & info [ "boxcar" ] ~docv:"N" ~doc:"Inserts per transaction.")
  in
  let nodes =
    Arg.(
      value & opt int 2
      & info [ "nodes" ] ~docv:"N" ~doc:"Cluster mode: node count (at least 2).")
  in
  let txns =
    Arg.(
      value & opt int 60
      & info [ "txns" ] ~docv:"N" ~doc:"Cluster mode: transactions per driver.")
  in
  let seed =
    Arg.(value & opt int 0xCA75A & info [ "seed" ] ~docv:"N" ~doc:"Simulation seed.")
  in
  let chrome =
    Arg.(
      value & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Also export the full span collection as a Chrome trace-event document \
             (load it at chrome://tracing or ui.perfetto.dev; flow arrows link caller \
             to callee across tracks).  With --mode both, the mode name is inserted \
             before the extension (out.json -> out-disk.json, out-pm.json).")
  in
  Cmd.v
    (Cmd.info "critpath"
       ~doc:
         "Trace every committed transaction's cross-node span DAG and print the \
          critical-path report: per-hop queue/service attribution, ranked, with full \
          DAGs kept for the slowest transactions (each exemplar's hop durations sum \
          exactly to its measured ack latency)")
    Term.(
      const critpath $ mode $ drivers $ boxcar $ records_arg 500 $ nodes $ txns $ seed
      $ chrome $ json_arg)

(* --- domain workloads --- *)

let run_in_system cfg seed f =
  let sim = Sim.create ~seed () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = Tp.System.build sim cfg in
        out := Some (f system))
  in
  Sim.run sim;
  match !out with Some v -> v | None -> failwith "run did not complete"

let cfg_of_mode = function
  | "pm" -> Tp.System.pm_config
  | _ -> Tp.System.default_config

let telco mode records rate =
  let params =
    { Telco_cdr.default_params with
      Telco_cdr.cdrs_per_switch = records;
      arrival = (if rate > 0.0 then Telco_cdr.Open_poisson rate else Telco_cdr.Closed) }
  in
  let r = run_in_system (cfg_of_mode mode) 0x7E1C0L (fun s -> Telco_cdr.run s params) in
  Printf.printf "telco CDR ingest: mode=%s switches=%d cdrs/switch=%d\n" mode
    params.Telco_cdr.switches records;
  hr ();
  Printf.printf "elapsed        %.3f s\n" (Time.to_sec r.Telco_cdr.elapsed);
  Printf.printf "ingest rate    %.0f CDR/s\n" r.Telco_cdr.cdrs_per_sec;
  Printf.printf "txn p50        %.2f ms\n" (r.Telco_cdr.txn_response.Stat.p50 /. 1e6);
  Printf.printf "txn p99        %.2f ms\n" (r.Telco_cdr.txn_response.Stat.p99 /. 1e6);
  Printf.printf "fraud lookups  %d (%d hits)\n" r.Telco_cdr.lookups r.Telco_cdr.lookup_hits;
  hr ()

let telco_cmd =
  let mode =
    Arg.(value & opt string "disk" & info [ "mode" ] ~docv:"disk|pm" ~doc:"Audit backend.")
  in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"CDR/s" ~doc:"Open-loop offered load (0 = closed loop).")
  in
  Cmd.v
    (Cmd.info "telco" ~doc:"Telco CDR ingest workload (paper section 1)")
    Term.(const telco $ mode $ records_arg 1_000 $ rate)

let orders mode trades =
  let params = { Order_match.default_params with Order_match.trades_per_stream = trades } in
  let r = run_in_system (cfg_of_mode mode) 0x570CL (fun s -> Order_match.run s params) in
  Printf.printf "order matching: mode=%s streams=%d trades/stream=%d hot-share=%.0f%%\n" mode
    params.Order_match.streams trades (params.Order_match.hot_symbol_share *. 100.);
  hr ();
  Printf.printf "elapsed        %.3f s\n" (Time.to_sec r.Order_match.elapsed);
  Printf.printf "hot symbol     %.1f trades/s (%d trades)\n" r.Order_match.hot_tps
    r.Order_match.hot_trades;
  Printf.printf "cold symbols   %.1f trades/s\n" r.Order_match.cold_tps;
  Printf.printf "trade RT p50   %.2f ms\n" (r.Order_match.trade_response.Stat.p50 /. 1e6);
  Printf.printf "lock conflicts %d\n" r.Order_match.lock_waits;
  hr ()

let orders_cmd =
  let mode =
    Arg.(value & opt string "disk" & info [ "mode" ] ~docv:"disk|pm" ~doc:"Audit backend.")
  in
  let trades =
    Arg.(value & opt int 500 & info [ "trades" ] ~docv:"N" ~doc:"Trades per stream.")
  in
  Cmd.v
    (Cmd.info "orders" ~doc:"Hot-stock order matching workload (paper section 2)")
    Term.(const orders $ mode $ trades)

let dtx_cmd_impl transfers =
  Printf.printf "E10: cross-node transfers under two-phase commit (2 nodes)\n";
  hr ();
  Printf.printf "%6s %14s %14s %16s\n" "mode" "local RT(ms)" "2PC RT(ms)" "protocol(ms)";
  List.iter
    (fun p ->
      Printf.printf "%6s %14.2f %14.2f %16.2f\n"
        (mode_to_string p.Figures.d_mode) p.Figures.local_rt_ms p.Figures.dtx_rt_ms
        p.Figures.protocol_overhead_ms)
    (Figures.dtx_latency ~transfers ());
  hr ()

let dtx_cmd =
  let transfers =
    Arg.(value & opt int 20 & info [ "transfers" ] ~docv:"N" ~doc:"Transfers to average over.")
  in
  Cmd.v (Cmd.info "dtx" ~doc:"E10: distributed-commit latency") Term.(const dtx_cmd_impl $ transfers)

let ckpt_traffic records =
  Printf.printf "E9: process-pair checkpoint traffic (2 drivers, boxcar 8)\n";
  hr ();
  List.iter
    (fun p ->
      Printf.printf "%-5s txns=%-6d audit=%-10d B  checkpoints=%-10d B  (%.0f B/txn)\n"
        (mode_to_string p.Figures.c_mode) p.Figures.committed_txns p.Figures.audit_bytes
        p.Figures.checkpoint_bytes p.Figures.ckpt_bytes_per_txn)
    (Figures.checkpoint_traffic ~records_per_driver:records ());
  hr ()

let ckpt_traffic_cmd =
  Cmd.v
    (Cmd.info "ckpt-traffic" ~doc:"E9: checkpoint traffic, disk vs PM")
    Term.(const ckpt_traffic $ records_arg 2_000)

let scaleout records =
  Printf.printf "E8: shared-nothing scale-out (2 drivers/node, boxcar 8)\n";
  hr ();
  Printf.printf "%6s %6s %16s %14s\n" "nodes" "mode" "aggregate txn/s" "per-node txn/s";
  List.iter
    (fun p ->
      Printf.printf "%6d %6s %16.1f %14.1f\n" p.Figures.s_nodes
        (mode_to_string p.Figures.s_mode) p.Figures.aggregate_tps p.Figures.per_node_tps)
    (Figures.scaleout ~records_per_driver:records ());
  hr ()

let scaleout_cmd =
  Cmd.v
    (Cmd.info "scale-out" ~doc:"E8: aggregate throughput vs node count")
    Term.(const scaleout $ records_arg 2_000)

let bank mode txns =
  let params = { Bank.default_params with Bank.txns_per_client = txns } in
  let r = run_in_system (cfg_of_mode mode) 0xBA22L (fun s -> Bank.run s params) in
  Printf.printf "bank (TPC-B-style): mode=%s clients=%d txns/client=%d\n" mode
    params.Bank.clients txns;
  hr ();
  Printf.printf "elapsed          %.3f s\n" (Time.to_sec r.Bank.elapsed);
  Printf.printf "throughput       %.1f txn/s\n" r.Bank.tps;
  Printf.printf "response p50     %.2f ms\n" (r.Bank.response.Stat.p50 /. 1e6);
  Printf.printf "response p99     %.2f ms\n" (r.Bank.response.Stat.p99 /. 1e6);
  Printf.printf "branch conflicts %d\n" r.Bank.branch_conflicts;
  hr ()

let bank_cmd =
  let mode =
    Arg.(value & opt string "disk" & info [ "mode" ] ~docv:"disk|pm" ~doc:"Audit backend.")
  in
  let txns =
    Arg.(value & opt int 250 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per client.")
  in
  Cmd.v
    (Cmd.info "bank" ~doc:"TPC-B-style update-heavy banking workload")
    Term.(const bank $ mode $ txns)

(* --- perf: the simulator performance observatory --- *)

let perf_text (r : Perf.report) =
  Printf.printf "perf: self-profiled workload matrix (%d records/driver, schema v%d)\n"
    r.Perf.p_records Perf.schema_version;
  hr ();
  Printf.printf "%-15s %10s %11s %14s %11s %9s\n" "workload" "events" "events/s"
    "wall ms/sim s" "minor w/ev" "heap hwm";
  List.iter
    (fun (w : Perf.run_report) ->
      Printf.printf "%-15s %10d %11.0f %14.2f %11.1f %9d\n" w.Perf.r_name w.Perf.r_events
        w.Perf.r_events_per_sec w.Perf.r_wall_ms_per_sim_s w.Perf.r_minor_words_per_event
        w.Perf.r_heap_depth_hwm)
    r.Perf.p_runs;
  hr ();
  List.iter
    (fun (w : Perf.run_report) ->
      Printf.printf "%s: committed=%d envelopes=%d packets=%d pm-writes=%d\n" w.Perf.r_name
        w.Perf.r_committed w.Perf.r_envelopes w.Perf.r_packets w.Perf.r_pm_writes;
      List.iter
        (fun (l : Perf.layer_share) ->
          Printf.printf "  %-8s %8d sections %10.3f ms %5.1f%% wall %14.0f minor words%s\n"
            l.Perf.ls_layer l.Perf.ls_events (l.Perf.ls_wall_s *. 1e3)
            (l.Perf.ls_wall_share *. 100.) l.Perf.ls_minor_words
            (if l.Perf.ls_discarded > 0 then
               Printf.sprintf " (%d discarded)" l.Perf.ls_discarded
             else ""))
        w.Perf.r_layers)
    r.Perf.p_runs;
  hr ();
  let o = r.Perf.p_overhead in
  Printf.printf "telemetry overhead (%s, no profiler installed):\n" o.Perf.o_workload;
  Printf.printf "  wall   enabled %.3f s / disabled %.3f s  (%+.1f%%)\n"
    o.Perf.o_enabled_wall_s o.Perf.o_disabled_wall_s o.Perf.o_overhead_pct;
  Printf.printf "  alloc  enabled %.0f / disabled %.0f minor words  (%+.1f%%)\n"
    o.Perf.o_enabled_minor_words o.Perf.o_disabled_minor_words o.Perf.o_alloc_overhead_pct;
  Printf.printf "  results invariant: sim elapsed %s, committed %s\n"
    (if o.Perf.o_sim_elapsed_equal then "equal" else "DIVERGED")
    (if o.Perf.o_committed_equal then "equal" else "DIVERGED");
  hr ()

let perf_verdicts verdicts regress_pct =
  List.iter
    (fun (v : Perf.verdict) ->
      Printf.eprintf "perf %-15s %11.0f ev/s vs baseline %11.0f — %s\n" v.Perf.v_workload
        v.Perf.v_current v.Perf.v_baseline
        (if v.Perf.v_ok then "ok" else Printf.sprintf "REGRESSION (>%.0f%%)" regress_pct))
    verdicts

let perf records list_workloads baseline regress_pct json =
  if list_workloads then List.iter print_endline Perf.workload_names
  else begin
    let report = or_die (fun () -> Perf.run ~records ()) in
    let doc = Perf.to_json report in
    if json then print_endline (Json.to_string doc) else perf_text report;
    match baseline with
    | None -> ()
    | Some path ->
        let base =
          match Json.parse (read_whole_file path) with
          | Ok b -> b
          | Error e ->
              Printf.eprintf "odsbench perf: baseline %s: %s\n" path e;
              exit 2
        in
        (match Perf.compare_baseline ~baseline:base ~current:doc ~regress_pct with
        | Error e ->
            Printf.eprintf "odsbench perf: %s\n" e;
            exit 2
        | Ok verdicts ->
            perf_verdicts verdicts regress_pct;
            if not (Perf.all_ok verdicts) then begin
              prerr_endline "odsbench perf: events/sec regressed past the baseline gate";
              exit 1
            end)
  end

let perf_cmd =
  let list_workloads =
    Arg.(
      value & flag
      & info [ "list-workloads" ] ~doc:"Print the fixed workload-matrix names and exit.")
  in
  let baseline =
    Arg.(
      value & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Compare events/sec per workload against a committed BENCH_*.json and exit \
             non-zero if any regresses past $(b,--regress-pct).  Verdicts go to stderr so \
             $(b,--json) output stays clean.")
  in
  let regress_pct =
    Arg.(
      value & opt float 25.0
      & info [ "regress-pct" ] ~docv:"PCT"
          ~doc:"Allowed events/sec regression vs the baseline, percent.")
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Self-profile the simulator on a fixed seed-deterministic workload matrix: \
          per-layer wall/alloc attribution, event-loop vitals, telemetry-overhead \
          delta, and an optional baseline regression gate")
    Term.(const perf $ records_arg 300 $ list_workloads $ baseline $ regress_pct $ json_arg)

(* --- everything at a glance --- *)

let all records =
  Printf.printf "pmods: full experiment sweep at %d records/driver\n\n" records;
  fig1 records false;
  print_newline ();
  fig2 records false;
  print_newline ();
  sweep_latency (min records 4_000);
  print_newline ();
  sweep_mirror (min records 4_000);
  print_newline ();
  mttr (min records 2_000);
  print_newline ();
  scale_adp (min records 4_000);
  print_newline ();
  ckpt_traffic (min records 2_000);
  print_newline ();
  scaleout (min records 1_000);
  print_newline ();
  dtx_cmd_impl 20;
  print_newline ();
  failover 400;
  print_newline ();
  perf (min records 300) false None 25.0 false

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at reduced scale and print the summary")
    Term.(const all $ records_arg 2_000)

let main_cmd =
  let doc = "Reproduction experiments for 'Fast and Flexible Persistence' (IPDPS 2004)" in
  Cmd.group (Cmd.info "odsbench" ~version:"1.0" ~doc)
    [
      all_cmd;
      fig1_cmd;
      fig2_cmd;
      breakdown_cmd;
      trace_cmd;
      metrics_cmd;
      timeline_cmd;
      cell_cmd;
      sweep_latency_cmd;
      sweep_mirror_cmd;
      mttr_cmd;
      scale_adp_cmd;
      failover_cmd;
      drill_cmd;
      explore_cmd;
      critpath_cmd;
      perf_cmd;
      telco_cmd;
      orders_cmd;
      bank_cmd;
      scaleout_cmd;
      ckpt_traffic_cmd;
      dtx_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
