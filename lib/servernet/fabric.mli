open Simkit

(** Simulated ServerNet: a dual-rail, RDMA-capable system-area network.

    Endpoints attach to the fabric with a byte store and an {!Avt.t}.
    Initiators perform host-initiated RDMA read/write against a target's
    network virtual addresses; packets are CRC-protected and acknowledged
    in hardware, so a completed operation guarantees the data arrived
    intact at the remote NIC (paper §4.1).  Timing follows a simple
    serialization model: per-operation software latency, per-packet
    overhead, and payload time at link bandwidth, with the initiator and
    target NICs each busy for the transfer's duration. *)

type error =
  | Unreachable  (** target endpoint is dead or unknown *)
  | No_path  (** every rail between the endpoints is down *)
  | Avt_error of Avt.error  (** target NIC rejected the address or rights *)
  | Crc_failure  (** retries exhausted on a corrupted link *)

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

type config = {
  sw_latency : Time.span;
      (** one-way software+hardware latency per operation; the paper
          reports 10-20 µs for ServerNet *)
  bytes_per_ns : float;  (** link bandwidth *)
  packet_bytes : int;  (** maximum payload carried per packet *)
  per_packet_overhead : Time.span;
  crc_error_rate : float;  (** per-packet corruption probability *)
  max_retries : int;  (** per-packet retransmissions before giving up *)
  rails : int;  (** redundant fabrics; NonStop uses X and Y *)
}

val default_config : config
(** ServerNet II-class: 12 µs, 125 MB/s links, 512-byte packets, 2 rails,
    no corruption. *)

(** A device's memory as seen from its NIC.  {!byte_store} gives a plain
    RAM-backed store; the persistent-memory library wraps stores to model
    non-volatility. *)
type store = {
  size : int;
  read : off:int -> len:int -> Bytes.t;
  write : off:int -> data:Bytes.t -> unit;
}

val byte_store : int -> store

type t

type endpoint

val create : Sim.t -> ?config:config -> unit -> t

val set_obs : t -> Obs.t -> unit
(** Observe the fabric: operation durations feed [fabric.xfer_ns], each
    RDMA op gets a span on track ["fabric"] (parented under the caller's
    [?span]), the cumulative counters below double as gauges
    ([fabric.rdma_writes], [fabric.bytes_written], ...), a [fabric.rail]
    probe tracks in-flight RDMA operations, and [fabric.retries] counts
    CRC retransmissions as a counter the sampler can turn into a rate. *)

val set_endpoint_probe : endpoint -> Probe.t -> unit
(** Account RDMA operations {e targeting} this endpoint (outstanding ops
    and target-observed service time) to [p] — used by NPMUs to expose
    outstanding persistent-memory operations. *)

val config : t -> config

val attach : t -> name:string -> store:store -> endpoint
(** Attach an endpoint; it starts alive, with an empty AVT. *)

val id : endpoint -> int

val name : endpoint -> string

val avt : endpoint -> Avt.t

val endpoint_store : endpoint -> store

val find : t -> int -> endpoint option

val set_alive : endpoint -> bool -> unit
(** Dead endpoints fail all RDMA directed at them with [Unreachable]. *)

val is_alive : endpoint -> bool

val set_rail : t -> int -> bool -> unit
(** Bring a rail up or down.  Operations in flight on a rail that goes
    down are retried on a surviving rail at completion time. *)

val rail_is_up : t -> int -> bool

(** {1 Gray-failure (fail-slow) injection}

    A degraded endpoint or rail answers late instead of never: every
    transfer touching it is stretched by the multiplier, plus uniform
    seeded jitter so the tail is noisy rather than a clean multiple.
    Healthy paths (factor 1.0, no jitter) never sample the RNG, so
    enabling the machinery costs nothing when unused. *)

val set_endpoint_slow : endpoint -> factor:float -> jitter:Time.span -> unit
(** Degrade an endpoint: transfers to or from it take [factor]x as long
    ([factor >= 1.0]) plus up to [jitter] extra per transfer. *)

val clear_endpoint_slow : endpoint -> unit
(** Restore full speed (factor 1.0, no jitter). *)

val endpoint_slow : endpoint -> float
(** The latency multiplier currently in force (1.0 when healthy). *)

val set_rail_slow : t -> int -> float -> unit
(** Degrade a rail: every transfer routed over it is stretched by the
    factor ([>= 1.0]; 1.0 restores full speed). *)

val rail_slow : t -> int -> float

val set_crc_error_rate : t -> float -> unit
(** Change the per-packet corruption probability at runtime — fault
    plans use this to model a noisy-link window ([Crc_noise_burst]).
    Starts at the config's [crc_error_rate].  Raises [Invalid_argument]
    outside [0, 1). *)

val crc_error_rate : t -> float
(** The corruption probability currently in force. *)

(** {1 RDMA operations}

    Both calls block the calling process for the operation's duration and
    must run in process context. *)

val rdma_write :
  ?span:Span.span ->
  ?epoch:int ->
  t ->
  src:endpoint ->
  dst:int ->
  addr:int ->
  data:Bytes.t ->
  (unit, error) result
(** [?epoch] stamps the write descriptor with the initiator's view of
    the target volume's epoch; the target AVT rejects it with
    [Avt_error Stale_epoch] if the volume has since been fenced to a
    newer epoch (takeover/resync). *)

val rdma_read :
  ?span:Span.span ->
  t ->
  src:endpoint ->
  dst:int ->
  addr:int ->
  len:int ->
  (Bytes.t, error) result

val transfer_time : t -> bytes:int -> Time.span
(** Nominal duration of a transfer of [bytes], without queueing or
    retries.  Used by the message system for datagram delivery. *)

(** {1 Statistics} *)

type stats = {
  writes : int;
  reads : int;
  bytes_written : int;
  bytes_read : int;
  packet_retries : int;
  failures : int;
}

val stats : t -> stats
