open Simkit

type error = Unreachable | No_path | Avt_error of Avt.error | Crc_failure

let pp_error ppf = function
  | Unreachable -> Format.pp_print_string ppf "target endpoint unreachable"
  | No_path -> Format.pp_print_string ppf "no rail up between endpoints"
  | Avt_error e -> Format.fprintf ppf "AVT: %a" Avt.pp_error e
  | Crc_failure -> Format.pp_print_string ppf "CRC retries exhausted"

let error_to_string e = Format.asprintf "%a" pp_error e

type config = {
  sw_latency : Time.span;
  bytes_per_ns : float;
  packet_bytes : int;
  per_packet_overhead : Time.span;
  crc_error_rate : float;
  max_retries : int;
  rails : int;
}

let default_config =
  {
    sw_latency = Time.us 12;
    bytes_per_ns = 0.125 (* 125 MB/s *);
    packet_bytes = 512;
    per_packet_overhead = Time.ns 200;
    crc_error_rate = 0.0;
    max_retries = 8;
    rails = 2;
  }

type store = {
  size : int;
  read : off:int -> len:int -> Bytes.t;
  write : off:int -> data:Bytes.t -> unit;
}

let byte_store size =
  let mem = Bytes.make size '\000' in
  {
    size;
    read = (fun ~off ~len -> Bytes.sub mem off len);
    write = (fun ~off ~data -> Bytes.blit data 0 mem off (Bytes.length data));
  }

type endpoint = {
  ep_id : int;
  ep_name : string;
  ep_store : store;
  ep_avt : Avt.t;
  mutable ep_alive : bool;
  mutable nic_free_at : Time.t;
  mutable ep_probe : Probe.t option;
  mutable ep_slow : float;  (** fail-slow latency multiplier, >= 1.0 *)
  mutable ep_jitter : Time.span;  (** max extra seeded jitter per transfer *)
}

type stats = {
  writes : int;
  reads : int;
  bytes_written : int;
  bytes_read : int;
  packet_retries : int;
  failures : int;
}

type t = {
  sim : Sim.t;
  cfg : config;
  rng : Rng.t;
  mutable endpoints : endpoint list;
  mutable next_id : int;
  rail_up : bool array;
  rail_slow : float array;  (** per-rail latency multiplier, >= 1.0 *)
  mutable crc_rate : float;
  mutable st_writes : int;
  mutable st_reads : int;
  mutable st_bytes_written : int;
  mutable st_bytes_read : int;
  mutable st_retries : int;
  mutable st_failures : int;
  mutable obs : Obs.t option;
  mutable xfer_stat : Stat.t option;
  mutable rail_probe : Probe.t option;
  mutable retry_counter : Stat.Counter.t option;
}

let create sim ?(config = default_config) () =
  if config.rails <= 0 then invalid_arg "Fabric.create: need at least one rail";
  {
    sim;
    cfg = config;
    rng = Rng.split (Sim.rng sim);
    endpoints = [];
    next_id = 0;
    rail_up = Array.make config.rails true;
    rail_slow = Array.make config.rails 1.0;
    crc_rate = config.crc_error_rate;
    st_writes = 0;
    st_reads = 0;
    st_bytes_written = 0;
    st_bytes_read = 0;
    st_retries = 0;
    st_failures = 0;
    obs = None;
    xfer_stat = None;
    rail_probe = None;
    retry_counter = None;
  }

let set_obs t obs =
  t.obs <- Some obs;
  let m = Obs.metrics obs in
  t.xfer_stat <- Some (Metrics.stat m "fabric.xfer_ns");
  Metrics.register_gauge m "fabric.rdma_writes" (fun () -> float_of_int t.st_writes);
  Metrics.register_gauge m "fabric.rdma_reads" (fun () -> float_of_int t.st_reads);
  Metrics.register_gauge m "fabric.bytes_written" (fun () ->
      float_of_int t.st_bytes_written);
  Metrics.register_gauge m "fabric.bytes_read" (fun () -> float_of_int t.st_bytes_read);
  Metrics.register_gauge m "fabric.packet_retries" (fun () -> float_of_int t.st_retries);
  Metrics.register_gauge m "fabric.failures" (fun () -> float_of_int t.st_failures);
  (* In-flight RDMA operations across the whole fabric; busy time is the
     initiator-observed duration, so an aggregate util above 1.0 means
     concurrent transfers. *)
  let p = Metrics.probe m "fabric.rail" in
  Probe.set_clock p (fun () -> Sim.now t.sim);
  t.rail_probe <- Some p;
  t.retry_counter <- Some (Metrics.counter m "fabric.retries")

let set_endpoint_probe ep p = ep.ep_probe <- Some p

let start_span t ?parent name ~bytes =
  match t.obs with
  | None -> Span.null
  | Some o ->
      let sp = Span.start (Obs.spans o) ~track:"fabric" ?parent name in
      if not (Span.is_null sp) then
        Span.annotate sp ~key:"bytes" (string_of_int bytes);
      sp

let op_begin t = match t.rail_probe with Some p -> Probe.enqueue p | None -> ()

let finish_op t sp ~t0 =
  let dt = Sim.now t.sim - t0 in
  (match t.xfer_stat with
  | Some st when Level.counters_on () -> Stat.add_span st dt
  | _ -> ());
  (match t.rail_probe with
  | Some p ->
      Probe.busy_span p dt;
      Probe.dequeue p
  | None -> ());
  match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ()

let target_probe_begin target =
  match target.ep_probe with Some p -> Probe.enqueue p | None -> ()

let target_probe_end t target ~t0 =
  match target.ep_probe with
  | Some p ->
      Probe.busy_span p (Sim.now t.sim - t0);
      Probe.dequeue p
  | None -> ()

let config t = t.cfg

let attach t ~name ~store =
  let ep =
    {
      ep_id = t.next_id;
      ep_name = name;
      ep_store = store;
      ep_avt = Avt.create ();
      ep_alive = true;
      nic_free_at = Time.zero;
      ep_probe = None;
      ep_slow = 1.0;
      ep_jitter = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.endpoints <- ep :: t.endpoints;
  ep

let id ep = ep.ep_id

let name ep = ep.ep_name

let avt ep = ep.ep_avt

let endpoint_store ep = ep.ep_store

let find t i = List.find_opt (fun ep -> ep.ep_id = i) t.endpoints

let set_alive ep alive = ep.ep_alive <- alive

let is_alive ep = ep.ep_alive

let set_rail t rail up =
  if rail < 0 || rail >= Array.length t.rail_up then invalid_arg "Fabric.set_rail: bad rail";
  t.rail_up.(rail) <- up

let rail_is_up t rail = t.rail_up.(rail)

let set_endpoint_slow ep ~factor ~jitter =
  if factor < 1.0 then invalid_arg "Fabric.set_endpoint_slow: factor >= 1.0";
  if jitter < 0 then invalid_arg "Fabric.set_endpoint_slow: negative jitter";
  ep.ep_slow <- factor;
  ep.ep_jitter <- jitter

let clear_endpoint_slow ep =
  ep.ep_slow <- 1.0;
  ep.ep_jitter <- 0

let endpoint_slow ep = ep.ep_slow

let set_rail_slow t rail factor =
  if rail < 0 || rail >= Array.length t.rail_slow then
    invalid_arg "Fabric.set_rail_slow: bad rail";
  if factor < 1.0 then invalid_arg "Fabric.set_rail_slow: factor >= 1.0";
  t.rail_slow.(rail) <- factor

let rail_slow t rail = t.rail_slow.(rail)

let set_crc_error_rate t rate =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Fabric.set_crc_error_rate: rate in [0,1)";
  t.crc_rate <- rate

let crc_error_rate t = t.crc_rate

let pick_rail t =
  let n = Array.length t.rail_up in
  let rec go i = if i >= n then None else if t.rail_up.(i) then Some i else go (i + 1) in
  go 0

let packets_of t len = max 1 ((len + t.cfg.packet_bytes - 1) / t.cfg.packet_bytes)

let transfer_time t ~bytes =
  let packets = packets_of t bytes in
  t.cfg.sw_latency
  + (packets * t.cfg.per_packet_overhead)
  + int_of_float (float_of_int bytes /. t.cfg.bytes_per_ns)

(* Sample the number of CRC retransmissions needed for [packets] packets;
   [None] means some packet exceeded max_retries. *)
let sample_retries t packets =
  if t.crc_rate <= 0.0 then Some 0
  else
    let total = ref 0 in
    let failed = ref false in
    for _ = 1 to packets do
      let tries = ref 0 in
      while (not !failed) && Rng.bool t.rng t.crc_rate do
        incr tries;
        if !tries > t.cfg.max_retries then failed := true
      done;
      total := !total + !tries
    done;
    if !failed then None else Some !total

(* Occupy both NICs and advance simulated time for one attempt over a rail;
   returns the chosen rail, or None if no rail was up. *)
let do_transfer t src dst bytes =
  match pick_rail t with
  | None -> Error No_path
  | Some rail ->
      let sect = Prof.section_begin () in
      let start = max (Sim.now t.sim) (max src.nic_free_at dst.nic_free_at) in
      let packets = packets_of t bytes in
      Prof.bump_packets packets;
      let retries = sample_retries t packets in
      let retry_count, ok =
        match retries with Some r -> (r, true) | None -> (t.cfg.max_retries, false)
      in
      t.st_retries <- t.st_retries + retry_count;
      (match t.retry_counter with
      | Some c when Level.counters_on () -> Stat.Counter.add c retry_count
      | _ -> ());
      let duration =
        transfer_time t ~bytes
        + (retry_count * (t.cfg.per_packet_overhead + Time.ns 4096))
      in
      (* Gray-failure injection: a degraded endpoint or rail stretches
         the whole attempt, plus seeded jitter so tails are noisy rather
         than a clean multiple.  The healthy path (all factors 1.0, no
         jitter) never touches the RNG, keeping event streams stable.
         A fail-slow *far end* stretches only the completion: the
         initiator's NIC issued the op and is free to pipeline others
         (hedged reads depend on this), while a slow rail or a slow
         local NIC holds the initiator for the whole attempt. *)
      let slow_src = src.ep_slow *. t.rail_slow.(rail) in
      let slow = slow_src *. dst.ep_slow in
      let src_hold =
        if slow_src > 1.0 then int_of_float (float_of_int duration *. slow_src) else duration
      in
      let duration =
        if slow > 1.0 then int_of_float (float_of_int duration *. slow) else duration
      in
      let jmax = src.ep_jitter + dst.ep_jitter in
      let duration = if jmax > 0 then duration + Rng.uniform_span t.rng jmax else duration in
      let finish = start + duration in
      src.nic_free_at <- start + src_hold;
      dst.nic_free_at <- finish;
      (* The section ends before the wait: [Sim.wait_until] suspends, and
         a section crossing an event boundary would be discarded. *)
      Prof.section_end sect "fabric";
      Sim.wait_until finish;
      if not ok then Error Crc_failure
      else if not (rail_is_up t rail) then
        (* The rail failed mid-transfer: hardware acks never arrived. *)
        Error No_path
      else Ok rail

let rec transfer_with_failover t src dst bytes ~attempts =
  match do_transfer t src dst bytes with
  | Ok _ -> Ok ()
  | Error No_path when attempts > 0 && pick_rail t <> None ->
      (* Another rail is up: the NIC retries the operation on it. *)
      transfer_with_failover t src dst bytes ~attempts:(attempts - 1)
  | Error e -> Error e

let fail t e =
  t.st_failures <- t.st_failures + 1;
  Error e

let resolve_target t dst =
  match find t dst with
  | None -> Error Unreachable
  | Some ep -> if ep.ep_alive then Ok ep else Error Unreachable

let rdma_write ?span ?epoch t ~src ~dst ~addr ~data =
  let len = Bytes.length data in
  let t0 = Sim.now t.sim in
  let sp = start_span t ?parent:span "fabric.rdma_write" ~bytes:len in
  op_begin t;
  let result =
    match resolve_target t dst with
    | Error e -> fail t e
    | Ok target ->
        target_probe_begin target;
        let r =
          if not src.ep_alive then fail t Unreachable
          else
            match transfer_with_failover t src target len ~attempts:t.cfg.rails with
            | Error e -> fail t e
            | Ok () -> (
                let sect = Prof.section_begin () in
                (* Address validation happens in the target NIC on arrival. *)
                match
                  Avt.translate ?epoch target.ep_avt ~initiator:src.ep_id ~op:`Write
                    ~addr ~len
                with
                | Error e ->
                    Prof.section_end sect "fabric";
                    fail t (Avt_error e)
                | Ok phys ->
                    target.ep_store.write ~off:phys ~data;
                    t.st_writes <- t.st_writes + 1;
                    t.st_bytes_written <- t.st_bytes_written + len;
                    Prof.section_end sect "fabric";
                    Ok ())
        in
        target_probe_end t target ~t0;
        r
  in
  (match result with
  | Ok () -> ()
  | Error e ->
      if not (Span.is_null sp) then Span.annotate sp ~key:"error" (error_to_string e));
  finish_op t sp ~t0;
  result

let rdma_read ?span t ~src ~dst ~addr ~len =
  let t0 = Sim.now t.sim in
  let sp = start_span t ?parent:span "fabric.rdma_read" ~bytes:len in
  op_begin t;
  let result =
    match resolve_target t dst with
    | Error e -> fail t e
    | Ok target ->
        target_probe_begin target;
        let r =
          if not src.ep_alive then fail t Unreachable
          else
            match
              Avt.translate target.ep_avt ~initiator:src.ep_id ~op:`Read ~addr ~len
            with
            | Error e -> fail t (Avt_error e)
            | Ok phys -> (
                match transfer_with_failover t src target len ~attempts:t.cfg.rails with
                | Error e -> fail t e
                | Ok () ->
                    let data = target.ep_store.read ~off:phys ~len in
                    t.st_reads <- t.st_reads + 1;
                    t.st_bytes_read <- t.st_bytes_read + len;
                    Ok data)
        in
        target_probe_end t target ~t0;
        r
  in
  (match result with
  | Ok _ -> ()
  | Error e ->
      if not (Span.is_null sp) then Span.annotate sp ~key:"error" (error_to_string e));
  finish_op t sp ~t0;
  result

let stats t =
  {
    writes = t.st_writes;
    reads = t.st_reads;
    bytes_written = t.st_bytes_written;
    bytes_read = t.st_bytes_read;
    packet_retries = t.st_retries;
    failures = t.st_failures;
  }
