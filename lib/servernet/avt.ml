type initiator = int

type who = Any_initiator | Initiators of initiator list

type access = { readers : who; writers : who }

let read_write who = { readers = who; writers = who }

let read_only who = { readers = who; writers = Initiators [] }

type error = Unmapped | Access_denied | Crosses_window | Stale_epoch

let pp_error ppf = function
  | Unmapped -> Format.pp_print_string ppf "unmapped address"
  | Access_denied -> Format.pp_print_string ppf "access denied"
  | Crosses_window -> Format.pp_print_string ppf "access crosses window boundary"
  | Stale_epoch -> Format.pp_print_string ppf "stale volume epoch (fenced)"

type window = { net_base : int; length : int; phys_base : int; mutable access : access }

type t = {
  mutable windows : window list; (* sorted by net_base *)
  mutable current_epoch : int;
  mutable fenced : int;
}

let address_space_bits = 32

let space_limit = 1 lsl address_space_bits

let create () = { windows = []; current_epoch = 0; fenced = 0 }

let epoch t = t.current_epoch

let set_epoch t e =
  if e < t.current_epoch then invalid_arg "Avt.set_epoch: epoch must not decrease";
  t.current_epoch <- e

let fenced t = t.fenced

let overlaps a b =
  a.net_base < b.net_base + b.length && b.net_base < a.net_base + a.length

let map t ~net_base ~length ~phys_base ~access =
  if length <= 0 then Error "window length must be positive"
  else if net_base < 0 || net_base + length > space_limit then
    Error "window outside 32-bit network virtual address space"
  else if phys_base < 0 then Error "negative physical base"
  else
    let w = { net_base; length; phys_base; access } in
    if List.exists (overlaps w) t.windows then Error "window overlaps an existing mapping"
    else begin
      t.windows <-
        List.sort (fun a b -> compare a.net_base b.net_base) (w :: t.windows);
      Ok ()
    end

let unmap t ~net_base =
  let before = List.length t.windows in
  t.windows <- List.filter (fun w -> w.net_base <> net_base) t.windows;
  List.length t.windows < before

let find t net_base = List.find_opt (fun w -> w.net_base = net_base) t.windows

let set_access t ~net_base access =
  match find t net_base with
  | None -> false
  | Some w ->
      w.access <- access;
      true

let allowed who initiator =
  match who with Any_initiator -> true | Initiators l -> List.mem initiator l

let translate ?epoch t ~initiator ~op ~addr ~len =
  match List.find_opt (fun w -> addr >= w.net_base && addr < w.net_base + w.length) t.windows with
  | None -> Error Unmapped
  | Some w ->
      if addr + len > w.net_base + w.length then Error Crosses_window
      else
        (* Fencing applies to mutations only: a stale reader is harmless,
           a stale writer can corrupt state owned by the new primary. *)
        let stale =
          match (op, epoch) with
          | `Write, Some e when e < t.current_epoch -> true
          | _ -> false
        in
        if stale then begin
          t.fenced <- t.fenced + 1;
          Error Stale_epoch
        end
        else
          let who = match op with `Read -> w.access.readers | `Write -> w.access.writers in
          if allowed who initiator then Ok (w.phys_base + (addr - w.net_base))
          else Error Access_denied

let windows t = List.map (fun w -> (w.net_base, w.length)) t.windows
