(** Address Validation and Translation table.

    Each ServerNet endpoint presents a 32-bit {e network virtual address}
    space to initiators on the fabric (paper §4).  An AVT maps windows of
    that space onto the endpoint's physical store and enforces a limited
    form of access control: which initiating endpoints may read or write
    each window.  The Persistent Memory Manager programs these windows
    when a client opens a region. *)

type initiator = int
(** Fabric endpoint id of the node initiating an RDMA operation. *)

type who =
  | Any_initiator
  | Initiators of initiator list

type access = { readers : who; writers : who }

val read_write : who -> access
(** Window readable and writable by the same set. *)

val read_only : who -> access
(** Window readable by the set, writable by nobody. *)

type error =
  | Unmapped  (** no window covers the address *)
  | Access_denied  (** window exists but the initiator lacks the right *)
  | Crosses_window  (** the access runs past the end of its window *)
  | Stale_epoch  (** write carried an epoch older than the table's current one *)

val pp_error : Format.formatter -> error -> unit

type t

val address_space_bits : int
(** 32: network virtual addresses must fit in 32 bits. *)

val create : unit -> t

val map :
  t -> net_base:int -> length:int -> phys_base:int -> access:access -> (unit, string) result
(** Program a window.  Fails if the window leaves the 32-bit space, has
    non-positive length, or overlaps an existing window. *)

val unmap : t -> net_base:int -> bool
(** Remove the window starting exactly at [net_base]; [false] if none. *)

val set_access : t -> net_base:int -> access -> bool
(** Reprogram permissions of an existing window. *)

val translate :
  ?epoch:int ->
  t -> initiator:initiator -> op:[ `Read | `Write ] -> addr:int -> len:int ->
  (int, error) result
(** Validate an access of [len] bytes at network virtual address [addr]
    and return the physical base offset on success.  A write carrying
    [?epoch] older than {!epoch} is rejected with [Stale_epoch] before
    the access check; reads and epoch-less writes are never fenced. *)

val epoch : t -> int
(** Current volume epoch enforced against write descriptors; 0 initially. *)

val set_epoch : t -> int -> unit
(** Advance the fencing epoch (monotone; raises on decrease).  Writes
    stamped with an older epoch are rejected from then on. *)

val fenced : t -> int
(** Number of writes rejected with [Stale_epoch] since creation. *)

val windows : t -> (int * int) list
(** [(net_base, length)] of every programmed window, ascending. *)
