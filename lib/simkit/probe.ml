type t = {
  probe_name : string;
  mutable clock : (unit -> Time.t) option;
  mutable depth : int;
  mutable max_depth : int;
  mutable enqueued : int;
  mutable dequeued : int;
  mutable busy : Time.span;
  mutable integral : float;  (** accumulated depth x time, ns-items *)
  mutable last_change : Time.t;
}

let create ?clock ~name () =
  {
    probe_name = name;
    clock;
    depth = 0;
    max_depth = 0;
    enqueued = 0;
    dequeued = 0;
    busy = 0;
    integral = 0.0;
    last_change = Time.zero;
  }

let name t = t.probe_name

let set_clock t clock =
  t.clock <- Some clock;
  (* Restart the depth integral at the clock's current reading, so a
     clock attached mid-run does not retroactively charge the pre-clock
     era at the current depth. *)
  t.last_change <- clock ()

let now t = match t.clock with Some f -> f () | None -> t.last_change

let advance t =
  let n = now t in
  if n > t.last_change then begin
    t.integral <- t.integral +. (float_of_int t.depth *. float_of_int (n - t.last_change));
    t.last_change <- n
  end

let enqueue t =
  if Level.counters_on () then begin
    advance t;
    t.depth <- t.depth + 1;
    t.enqueued <- t.enqueued + 1;
    if t.depth > t.max_depth then t.max_depth <- t.depth
  end

let dequeue t =
  if Level.counters_on () then begin
    advance t;
    if t.depth > 0 then t.depth <- t.depth - 1;
    t.dequeued <- t.dequeued + 1
  end

let busy_span t span =
  if span > 0 && Level.counters_on () then t.busy <- t.busy + span

let depth t = t.depth

let max_depth t = t.max_depth

let enqueued t = t.enqueued

let dequeued t = t.dequeued

let busy_total t = t.busy

let depth_integral ?at t =
  let n = match at with Some n -> n | None -> now t in
  if n > t.last_change then
    t.integral +. (float_of_int t.depth *. float_of_int (n - t.last_change))
  else t.integral
