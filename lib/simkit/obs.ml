type t = { obs_metrics : Metrics.t; obs_spans : Span.t }

let create ?metrics ?spans () =
  {
    obs_metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    obs_spans = (match spans with Some s -> s | None -> Span.create ());
  }

let metrics t = t.obs_metrics

let spans t = t.obs_spans

let set_clock t clock = Span.set_clock t.obs_spans clock

(* Global telemetry level, re-exported so users configure observability
   through one module. *)

type level = Level.t = Off | Counters | Spans

let set_level = Level.set

let level = Level.get

let spans_on = Level.spans_on

let counters_on = Level.counters_on
