(** Failure flight recorder.

    Two bounded rings — the most recent finished spans and a sequence of
    fault marks (injections, detections, gate trips) — that together are
    the black box a failed drill dumps: the window of causal history
    that explains what the system was doing when a safety gate tripped.
    Memory is fixed at creation; a recorder can run armed for the whole
    drill at ring-buffer cost. *)

type t

val create : ?spans:int -> ?marks:int -> unit -> t
(** Ring capacities: [spans] (default 2048) finished span records,
    [marks] (default 256) fault marks. *)

val observe : t -> Span.record -> unit
(** Feed one finished span (overwrites the oldest once full). *)

val attach : t -> Span.t -> unit
(** Stream a collector into the recorder via {!Span.set_consumer}. *)

val mark : t -> time:Time.t -> string -> unit
(** Record a fault event — an injection firing, a detection, a gate
    verdict — at simulated [time]. *)

val span_count : t -> int
(** Spans ever observed (not just those still in the ring). *)

val mark_count : t -> int

val recent_spans : t -> Span.record list
(** Ring contents, oldest first. *)

val recent_marks : t -> (Time.t * string) list
(** Ring contents, oldest first. *)

val to_json : t -> Json.t
(** [{spans_seen, marks_seen, marks:[{time_ns,label}], spans:[...]}] —
    the dump a failed drill writes next to its report. *)
