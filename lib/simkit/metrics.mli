(** Process-wide metrics registry.

    Any subsystem can register or look up named instruments under a
    hierarchical dotted path — e.g. [adp.flush_latency],
    [fabric.rdma_writes], [disk.rotational_miss_ns] — and the whole
    registry dumps as a text table or a JSON document.  The find-or-create
    accessors ({!stat}, {!counter}, {!histogram}) return the {e same}
    instrument for the same path, so independent components (say, four
    ADPs) naturally share one aggregate instrument. *)

type instrument =
  | Stat of Stat.t
  | Counter of Stat.Counter.t
  | Histogram of Stat.Histogram.t
  | Gauge of (unit -> float)
      (** Sampled at dump time — register a closure over an existing
          mutable counter instead of double-counting. *)
  | Probe of Probe.t
      (** Busy-time / queue-depth accounting; the time-series sampler
          derives per-interval utilization and mean queue length from
          its cumulative totals. *)

type t

val create : unit -> t

val stat : t -> string -> Stat.t
(** Find-or-create.  Raises [Invalid_argument] if the path is already
    registered as a different kind. *)

val counter : t -> string -> Stat.Counter.t
val histogram : t -> string -> Stat.Histogram.t

val probe : t -> string -> Probe.t
(** Find-or-create, like {!stat}.  The caller is responsible for
    attaching a clock ({!Probe.set_clock}) so the depth integral
    advances against simulated time. *)

val register : t -> string -> instrument -> unit
(** Register (or replace) an existing instrument under [path]. *)

val register_stat : t -> string -> Stat.t -> unit
val register_counter : t -> string -> Stat.Counter.t -> unit
val register_histogram : t -> string -> Stat.Histogram.t -> unit
val register_gauge : t -> string -> (unit -> float) -> unit
val register_probe : t -> string -> Probe.t -> unit

val find : t -> string -> instrument option

val stat_total : t -> string -> float
(** Total of the stat at [path]; 0 if absent or not a stat. *)

val instruments : t -> (string * instrument) list
(** Sorted by path. *)

val paths : t -> string list

val pp_table : Format.formatter -> t -> unit
(** One row per instrument; never raises, even on empty instruments. *)

val to_json : t -> string
