type t = {
  cap : float;
  refill : float;
  mutable tokens : float;
  mutable spent : int;
  mutable denied : int;
}

let create ?(capacity = 10.) ?(refill = 0.1) () =
  let cap = Float.max 0. capacity in
  { cap; refill = Float.max 0. refill; tokens = cap; spent = 0; denied = 0 }

let try_spend t =
  if t.tokens >= 1. then begin
    t.tokens <- t.tokens -. 1.;
    t.spent <- t.spent + 1;
    true
  end
  else begin
    t.denied <- t.denied + 1;
    false
  end

let success t = t.tokens <- Float.min t.cap (t.tokens +. t.refill)

let tokens t = t.tokens
let capacity t = t.cap
let spent t = t.spent
let denied t = t.denied
