(** Sim-clock time-series recorder.

    Periodically snapshots every instrument in a {!Metrics.t} registry
    into a bounded ring of samples, deriving {e per-interval} views from
    cumulative sources: counters become deltas and rates, stats become
    interval count/mean/p50/p99, probes ({!Probe.t}) become utilization
    and mean queue length.  Gauges are read as-is.

    The sampler is a plain {!Sim.at} callback that re-arms itself — not a
    green process — so it never keeps {!Sim.run} alive past {!stop}, and
    it only {e reads} instruments, so enabling it cannot change workload
    results.

    Column naming, per instrument kind (for CSV headers and JSON keys):
    - gauge [p] → [p]
    - counter [p] → [p.delta], [p.rate] (per second)
    - stat [p] → [p.n], [p.mean], [p.p50], [p.p99] (interval slice; zero
      when the interval recorded nothing)
    - histogram [p] → [p.delta]
    - probe [p] → [p.util], [p.qlen], [p.depth], [p.rate] *)

type sample = {
  s_time : Time.t;  (** sim time of this sample *)
  s_dt : Time.span;  (** interval covered, [s_time - previous sample] *)
  s_values : (string * float) list;  (** sorted by column name *)
}

(** One row of the bottleneck-attribution report: a probe's share of the
    sampled window. *)
type attribution = {
  at_resource : string;
  at_utilization : float;  (** busy time / window length *)
  at_qlen : float;  (** time-weighted mean queue depth *)
  at_busy : Time.span;  (** absolute busy time in the window *)
  at_busy_share : float;  (** busy / total busy across all probes *)
}

type t

val create :
  ?capacity:int -> sim:Sim.t -> metrics:Metrics.t -> interval:Time.span -> unit -> t
(** [capacity] bounds the ring (default 4096 rows; oldest evicted).
    Raises [Invalid_argument] on a non-positive interval or capacity. *)

val start : t -> unit
(** Baseline all cumulative readings at the current sim time and arm the
    periodic tick.  Idempotent; a stopped recorder cannot be restarted. *)

val stop : t -> unit
(** Disarm the tick and take one final sample, so even a run shorter
    than one interval yields a row. *)

val sample_now : t -> unit
(** Force an extra sample at the current sim time (no-op if no time has
    passed since the last one). *)

val mark : t -> time:Time.t -> string -> unit
(** Annotate the series with a labelled event (e.g. a fault injection);
    rendered as [# mark] comment lines in CSV and a [marks] array in
    JSON. *)

val interval : t -> Time.span
val sample_count : t -> int
val evicted : t -> int
(** Rows dropped from the ring head due to the capacity bound. *)

val samples : t -> sample list
val marks : t -> (Time.t * string) list
(** Sorted by time. *)

val paths : t -> string list
(** All column names appearing in any retained sample, sorted. *)

val attribution : t -> attribution list
(** Where the time went: one entry per registered probe, ranked by
    utilization descending (mean queue length, then path, break ties).
    Computed over the retained rows, so it stays exact under ring
    eviction.  Empty before the first sample. *)

val to_csv : t -> string
(** [# mark] comment lines, then a header row ([time_ns,dt_ns,<cols>]),
    then one row per sample.  Cells for columns a row lacks are empty;
    embedded commas/quotes are RFC-4180 quoted. *)

val json : t -> Json.t
val attribution_json : t -> Json.t

val pp_attribution : Format.formatter -> t -> unit
(** Ranked "where the time went" table. *)
