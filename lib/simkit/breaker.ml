type state = Closed | Open | Half_open

type t = {
  threshold : int;
  cooldown : Time.span;
  mutable st : state;
  mutable failures : int;  (* consecutive, while Closed *)
  mutable open_until : Time.t;
  mutable probing : bool;  (* Half_open probe outstanding *)
  mutable trips : int;
  mutable rejected : int;
}

let create ?(failure_threshold = 5) ?(cooldown = Time.ms 100) () =
  {
    threshold = max 1 failure_threshold;
    cooldown;
    st = Closed;
    failures = 0;
    open_until = 0;
    probing = false;
    trips = 0;
    rejected = 0;
  }

let trip t ~now =
  t.st <- Open;
  t.open_until <- now + t.cooldown;
  t.probing <- false;
  t.trips <- t.trips + 1

let allow t ~now =
  match t.st with
  | Closed -> true
  | Open ->
      if now >= t.open_until then begin
        t.st <- Half_open;
        t.probing <- true;
        true
      end
      else begin
        t.rejected <- t.rejected + 1;
        false
      end
  | Half_open ->
      if t.probing then begin
        t.rejected <- t.rejected + 1;
        false
      end
      else begin
        t.probing <- true;
        true
      end

let record_success t =
  t.failures <- 0;
  match t.st with
  | Half_open ->
      t.st <- Closed;
      t.probing <- false
  | Closed | Open -> ()

let record_failure t ~now =
  match t.st with
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.threshold then trip t ~now
  | Half_open -> trip t ~now
  | Open -> ()

let state t = t.st
let trips t = t.trips
let rejected t = t.rejected
