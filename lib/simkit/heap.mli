(** Binary min-heap keyed by [(time, sequence)] pairs.

    The sequence number breaks ties so that events scheduled for the same
    instant fire in insertion order, which keeps runs deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> key:int -> seq:int -> 'a -> unit

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum element as [(key, seq, value)]. *)

val peek_key : 'a t -> int option
(** Key of the minimum element, without removing it. *)

val pop_le : 'a t -> max:int -> (int * int * 'a) option
(** Like {!pop}, but leaves the heap untouched and returns [None] when
    the minimum key exceeds [max].  Lets a bounded event loop pop in one
    heap access instead of a peek-then-pop pair. *)

val filter : 'a t -> ('a -> bool) -> unit
(** Drop every element whose value fails the predicate and re-heapify
    in place (O(n)).  Survivors keep their [(key, seq)] pairs, so pop
    order among them is unchanged — used to compact lazily-cancelled
    timer events without disturbing determinism. *)
