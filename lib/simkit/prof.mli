(** Self-profiler for the simulator: where does {e host} time and
    allocation go while simulated time advances?

    A profiler installs dispatch hooks on one {!Sim.t} (see
    {!Sim.set_dispatch_hooks}) and accumulates, per dispatched event,
    wall-clock time and GC minor/major word deltas, plus the event-queue
    depth high-water mark.  Layers (msgsys, fabric, diskio, pm, adp)
    additionally bracket their non-blocking hot sections with
    {!section_begin}/{!section_end} to attribute those costs by name.

    Sections must not span a suspension: with effect-based processes,
    any blocking call returns control to the event loop, so a section
    crossing it would absorb unrelated handlers.  The profiler detects
    this deterministically — the dispatched-event count changed between
    begin and end — and discards the sample, counting the discard.

    At most one profiler is installed process-wide at a time.  When none
    is installed every entry point here is a single check with no
    allocation, so instrumentation can stay in hot code permanently.

    Determinism: event counts, section counts and minor-word deltas are
    exact functions of the workload and seed, so tests can compare them
    across identical runs — minor words from the second run in a process
    on, since one-time lazy initialisation lands in the first.  Major/promoted words depend on minor-GC
    timing and are reported but not comparable; wall times are
    measurement, never fed back into the simulation. *)

type t

val create : unit -> t

val install : t -> Sim.t -> unit
(** Install dispatch hooks and start the wall-clock epoch.  Raises
    [Invalid_argument] if any profiler is already installed. *)

val uninstall : t -> unit
(** Remove the hooks; accumulated data remains readable. *)

val enabled : unit -> bool

(** {1 Hot-path instrumentation} *)

type section

val section_begin : unit -> section
(** Snapshot wall/alloc marks.  Returns a shared sentinel (no
    allocation) when no profiler is installed. *)

val section_end : section -> string -> unit
(** Charge the deltas since [section_begin] to the named layer, or
    discard the sample if an event boundary was crossed. *)

val bump_envelope : unit -> unit
(** Count one msgsys envelope allocation. *)

val bump_packets : int -> unit
(** Count fabric packets for one transfer. *)

val bump_pm_write : unit -> unit
(** Count one PM client write. *)

(** {1 Report} *)

val events : t -> int
(** Total events dispatched while installed. *)

val wall_total : t -> float
(** Seconds spent inside event handlers (sum of per-event deltas). *)

val minor_words : t -> float

val major_words : t -> float

val wall_elapsed : t -> float
(** Seconds since {!install} — the denominator for events/sec. *)

val heap_depth_hwm : t -> int

val envelope_count : t -> int

val packet_count : t -> int

val pm_write_count : t -> int

type layer_row = {
  l_name : string;
  l_events : int;  (** completed sections *)
  l_wall : float;
  l_minor : float;
  l_major : float;
  l_discarded : int;  (** sections dropped for crossing an event boundary *)
}

val layer_rows : t -> layer_row list
(** Per-layer attribution, sorted by descending wall time. *)

val now_s : unit -> float
(** The profiler's wall clock ([Unix.gettimeofday]), exposed so
    benchmark harnesses measure with the same clock. *)
