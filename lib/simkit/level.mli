(** Process-wide telemetry level: the single global flag hot paths check
    before doing any observability work that allocates.

    Instrumented code costs three tiers:

    - [Spans] (the default): everything — span records, annotation
      strings, per-layer stats, probes, time-series sampling.
    - [Counters]: counters, stats, probes and sampling stay live, but
      {!Span.start} returns the null span before allocating anything, so
      callers guarding on {!Span.is_null} (or {!spans_on}) skip label
      formatting entirely.
    - [Off]: the true zero-cost path.  Span starts, hot-path stat/probe
      updates and time-series samples are all skipped behind this one
      flag check; a run at [Off] performs no telemetry allocation on the
      hot paths.

    The level is deliberately global (the simulator is single-threaded):
    threading it through every constructor would put an option deref on
    the paths this gate exists to make free.  Toggling mid-run is
    supported but skews cumulative instruments (a probe enqueue seen at
    [Counters] may miss its dequeue at [Off]); measurement harnesses
    should set the level before building a system and restore it after.

    {!Span.enable} raises the level back to [Spans] — enabling a span
    collector is an explicit request for span data. *)

type t = Off | Counters | Spans

val set : t -> unit

val get : unit -> t

val spans_on : unit -> bool
(** [get () = Spans]. *)

val counters_on : unit -> bool
(** [get () <> Off]. *)

val raise_to_spans : unit -> unit
(** Used by {!Span.enable}; idempotent. *)
