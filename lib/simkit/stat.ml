type t = {
  stat_name : string;
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
  mutable samples : float array;
  mutable sorted : bool;
}

type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let create ?(name = "") () =
  {
    stat_name = name;
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min = infinity;
    max = neg_infinity;
    total = 0.0;
    samples = [||];
    sorted = true;
  }

let name t = t.stat_name

let add (t : t) x =
  let cap = Array.length t.samples in
  if t.n = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let na = Array.make ncap 0.0 in
    Array.blit t.samples 0 na 0 t.n;
    t.samples <- na
  end;
  t.samples.(t.n) <- x;
  t.n <- t.n + 1;
  t.sorted <- false;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_span t span = add t (float_of_int span)

let count (t : t) = t.n

let mean (t : t) = t.mean

let total (t : t) = t.total

let ensure_sorted (t : t) =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.n in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.n;
    t.sorted <- true
  end

let percentile (t : t) p =
  if t.n = 0 then Float.nan
  else begin
  ensure_sorted t;
  let rank = int_of_float (Float.round (p *. float_of_int (t.n - 1))) in
  t.samples.(rank)
  end

let stdev (t : t) = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

let samples_from (t : t) from =
  let from = max 0 (min from t.n) in
  Array.sub t.samples from (t.n - from)

let summary (t : t) =
  if t.n = 0 then
    { n = 0; mean = 0.; stdev = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0.; p99 = 0. }
  else
    {
      n = t.n;
      mean = t.mean;
      stdev = stdev t;
      min = t.min;
      max = t.max;
      p50 = percentile t 0.50;
      p90 = percentile t 0.90;
      p99 = percentile t 0.99;
    }

let pp_summary ppf t =
  let s = summary t in
  Format.fprintf ppf "%s: n=%d mean=%a p50=%a p90=%a p99=%a max=%a" t.stat_name s.n Time.pp
    (int_of_float s.mean) Time.pp (int_of_float s.p50) Time.pp (int_of_float s.p90) Time.pp
    (int_of_float s.p99) Time.pp (int_of_float s.max)

module Counter = struct
  type t = { counter_name : string; mutable v : int }

  let create ?(name = "") () = { counter_name = name; v = 0 }
  let incr t = t.v <- t.v + 1
  let add t x = t.v <- t.v + x
  let get t = t.v
  let name t = t.counter_name
end

module Histogram = struct
  type t = { mutable counts : int array }

  let nbuckets = 64

  let create () = { counts = Array.make nbuckets 0 }

  let bucket_of x =
    if x <= 0 then 0
    else
      let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
      min (nbuckets - 1) (log2 0 x + 1)

  let add t x =
    let b = bucket_of x in
    t.counts.(b) <- t.counts.(b) + 1

  let buckets t =
    let out = ref [] in
    for b = nbuckets - 1 downto 0 do
      if t.counts.(b) > 0 then out := (1 lsl b, t.counts.(b)) :: !out
    done;
    !out

  let total t = Array.fold_left ( + ) 0 t.counts

  let max_bucket t =
    let best = ref None in
    Array.iteri
      (fun b c ->
        if c > 0 then
          match !best with
          | Some (_, bc) when bc >= c -> ()  (* ties go to the smaller bucket *)
          | _ -> best := Some (1 lsl b, c))
      t.counts;
    !best

  let pp ppf t =
    let n = total t in
    if n = 0 then Format.pp_print_string ppf "empty"
    else begin
      Format.fprintf ppf "n=%d" n;
      (match max_bucket t with
      | Some (ub, c) -> Format.fprintf ppf " mode<=%d (%d)" ub c
      | None -> ());
      Format.fprintf ppf " [";
      List.iteri
        (fun i (ub, c) -> Format.fprintf ppf "%s%d:%d" (if i = 0 then "" else " ") ub c)
        (buckets t);
      Format.fprintf ppf "]"
    end
end
