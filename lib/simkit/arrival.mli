(** Open-loop arrival schedules.

    A schedule is a sequence of phases, each offering load at a fixed
    mean rate for a fixed duration.  [run] dispatches one callback per
    arrival at the scheduled instants — the caller decides what an
    arrival does (typically spawn a transaction worker).  Crucially the
    schedule never waits for the work it dispatched: offered load is
    independent of service capacity, so queues can actually explode.

    All draws come from the caller's [Rng.t]; equal seeds give
    bit-equal arrival sequences. *)

type process =
  | Poisson  (** exponential inter-arrival gaps (memoryless) *)
  | Uniform  (** evenly spaced arrivals at exactly the phase rate *)
  | Burst of int
      (** arrivals delivered [n] at a time, with gaps scaled so the
          mean rate still matches the phase rate *)

type phase = {
  rate : float;  (** mean arrivals per second; [<= 0.] idles the phase *)
  duration : Time.span;
  process : process;
}

type schedule = phase list

val phase : ?process:process -> rate:float -> duration:Time.span -> unit -> phase
(** One phase; [process] defaults to [Poisson]. *)

val constant :
  ?process:process -> rate:float -> duration:Time.span -> unit -> schedule
(** Single-phase schedule at a constant mean rate. *)

val ramp :
  ?process:process ->
  ?steps:int ->
  from_rate:float ->
  to_rate:float ->
  duration:Time.span ->
  unit ->
  schedule
(** Linear ramp approximated by [steps] (default 8) equal-duration
    phases with interpolated rates.  Composable: append to any other
    schedule. *)

val flash_crowd :
  ?process:process ->
  base:float ->
  spike:float ->
  cool:float ->
  warmup:Time.span ->
  spike_for:Time.span ->
  cooldown:Time.span ->
  unit ->
  schedule
(** The metastability shape: [base] rate during [warmup], then a
    [spike]-rate flash crowd for [spike_for], then back down to [cool]
    for [cooldown].  A healthy system recovers during the cool phase;
    a metastable one stays collapsed even though [cool] is below
    capacity. *)

val total_duration : schedule -> Time.span
(** Sum of phase durations. *)

val run : rng:Rng.t -> schedule -> f:(int -> unit) -> int
(** [run ~rng schedule ~f] must be called from inside a simulation
    process.  Walks the schedule, sleeping each inter-arrival gap and
    calling [f index] at each arrival (indices are 0-based and global
    across phases).  [f] must not block the schedule — spawn work,
    don't do it inline.  Returns the total number of arrivals. *)
