(** Hierarchical spans over simulated time.

    A collector records [(track, name, start, end, args)] spans so that a
    single logical operation — one transaction commit, say — can be
    decomposed into the stages it spent its microseconds in, across every
    subsystem it touched.  Collectors are disabled by default: {!start}
    returns a shared null span and {!finish} is a no-op, so instrumented
    hot paths cost one flag check when tracing is off.

    Spans on the same track nest by time containment; spans caused by a
    request from another track carry an explicit parent id, exported as a
    flow arrow.  {!to_chrome_json} renders everything in the Chrome
    trace-event format, loadable by [chrome://tracing] and Perfetto. *)

type t
(** A span collector. *)

type span
(** An open (or finished) span.  Cheap to pass around; a null span (from
    a disabled collector) absorbs {!annotate} and {!finish} silently. *)

type record = {
  r_id : int;
  r_parent : int option;
  r_trace : int;  (** correlation id threaded from the root span; -1 = none *)
  r_track : string;
  r_name : string;
  r_start : Time.t;
  r_end : Time.t;
  r_args : (string * string) list;
}

val create : ?clock:(unit -> Time.t) -> ?capacity:int -> unit -> t
(** Disabled collector retaining at most [capacity] finished spans
    (default 1M); later spans are counted in {!dropped}.  [clock] supplies
    timestamps — typically [fun () -> Sim.now sim]. *)

val set_clock : t -> (unit -> Time.t) -> unit

val enable : t -> unit
(** Also raises the global {!Level} to [Spans] — an enabled collector is
    an explicit request for span data. *)

val disable : t -> unit
val enabled : t -> bool

val attach_trace : t -> Trace.t -> unit
(** Mirror span begin/end into a {!Trace} ring buffer (tag ["span"]). *)

val new_trace : t -> int
(** Fresh trace (correlation) id, e.g. one per transaction. *)

val start : t -> ?track:string -> ?parent:span -> ?trace:int -> string -> span
(** Open a span named [name] on [track] (default ["main"]).  [parent]
    links the span under another one, possibly on a different track.
    The span's trace id is [trace] when given, else inherited from
    [parent] — so a context threaded through message envelopes carries
    the root transaction's trace across every hop.  Returns {!null} —
    allocating nothing — unless the collector is enabled {e and} the
    global {!Level} is [Spans]; hot callers should check {!is_null}
    before formatting annotation strings. *)

val root : t -> ?track:string -> string -> span
(** {!start} with a fresh trace id from {!new_trace} — the head of a new
    causal DAG (one per transaction).  Mints no trace id (and allocates
    nothing) when the collector or global level is off. *)

val annotate : span -> key:string -> string -> unit
(** Attach a key:value pair; no-op once finished or on a null span. *)

val link : span -> span -> unit
(** [link sp target] records a causal, non-parent edge: [sp] depended on
    [target]'s work — the group-commit flush a transaction piggybacked
    on, the lock holder a waiter blocked behind.  Stored as a ["link"]
    annotation carrying [target]'s span id; no-op when either side is
    null or [sp] is finished. *)

val note_queue : span -> Time.span -> unit
(** The request this span serves sat queued for [dt] {e before} the span
    opened (inbox residency): extend the span's start back over the wait
    and record a ["queue_ns"] annotation, so the span's interval covers
    queue + service and {!Critpath} can split the hop.  No-op on
    null/finished spans or [dt <= 0]. *)

val mark_queue : span -> Time.span -> unit
(** Like {!note_queue} for waits the span's interval {e already} covers
    (lock waits, group-commit parking): annotate the ["queue_ns"] prefix
    without moving the start. *)

val finish : t -> span -> unit
(** Close the span at the collector's current clock and record it.
    Double-finish is a no-op. *)

val with_span : t -> ?track:string -> ?parent:span -> string -> (span -> 'a) -> 'a
(** Run the thunk inside a span, finishing it even on exceptions. *)

val null : span
(** The shared no-op span: useful as a default before any context is
    known.  Annotating or finishing it does nothing. *)

val id : span -> int
val is_null : span -> bool

val trace_of : span -> int
(** The span's trace (correlation) id, -1 when untraced. *)

val start_time : span -> Time.t

val count : t -> int
val dropped : t -> int
val clear : t -> unit

val set_consumer : t -> (record -> unit) option -> unit
(** Stream finished spans to [f] instead of retaining them: {!records}
    stays empty and memory is bounded by whatever the consumer keeps —
    how {!Critpath} and the flight recorder attach.  [None] restores
    the retaining default. *)

val records : t -> record list
(** Finished spans, ordered by start time then id. *)

val to_chrome_json : t -> string
(** The whole collector as one Chrome trace-event JSON document.
    Cross-track parent/child edges and ["link"] annotations are emitted
    as flow arrows ([ph:"s"]/[ph:"f"]), so Perfetto draws the causal
    DAG across tracks; each complete event also carries its trace id. *)
