(** Hierarchical spans over simulated time.

    A collector records [(track, name, start, end, args)] spans so that a
    single logical operation — one transaction commit, say — can be
    decomposed into the stages it spent its microseconds in, across every
    subsystem it touched.  Collectors are disabled by default: {!start}
    returns a shared null span and {!finish} is a no-op, so instrumented
    hot paths cost one flag check when tracing is off.

    Spans on the same track nest by time containment; spans caused by a
    request from another track carry an explicit parent id, exported as a
    flow arrow.  {!to_chrome_json} renders everything in the Chrome
    trace-event format, loadable by [chrome://tracing] and Perfetto. *)

type t
(** A span collector. *)

type span
(** An open (or finished) span.  Cheap to pass around; a null span (from
    a disabled collector) absorbs {!annotate} and {!finish} silently. *)

type record = {
  r_id : int;
  r_parent : int option;
  r_track : string;
  r_name : string;
  r_start : Time.t;
  r_end : Time.t;
  r_args : (string * string) list;
}

val create : ?clock:(unit -> Time.t) -> ?capacity:int -> unit -> t
(** Disabled collector retaining at most [capacity] finished spans
    (default 1M); later spans are counted in {!dropped}.  [clock] supplies
    timestamps — typically [fun () -> Sim.now sim]. *)

val set_clock : t -> (unit -> Time.t) -> unit

val enable : t -> unit
(** Also raises the global {!Level} to [Spans] — an enabled collector is
    an explicit request for span data. *)

val disable : t -> unit
val enabled : t -> bool

val attach_trace : t -> Trace.t -> unit
(** Mirror span begin/end into a {!Trace} ring buffer (tag ["span"]). *)

val new_trace : t -> int
(** Fresh trace (correlation) id, e.g. one per transaction. *)

val start : t -> ?track:string -> ?parent:span -> string -> span
(** Open a span named [name] on [track] (default ["main"]).  [parent]
    links the span under another one, possibly on a different track.
    Returns {!null} — allocating nothing — unless the collector is
    enabled {e and} the global {!Level} is [Spans]; hot callers should
    check {!is_null} before formatting annotation strings. *)

val annotate : span -> key:string -> string -> unit
(** Attach a key:value pair; no-op once finished or on a null span. *)

val finish : t -> span -> unit
(** Close the span at the collector's current clock and record it.
    Double-finish is a no-op. *)

val with_span : t -> ?track:string -> ?parent:span -> string -> (span -> 'a) -> 'a
(** Run the thunk inside a span, finishing it even on exceptions. *)

val null : span
(** The shared no-op span: useful as a default before any context is
    known.  Annotating or finishing it does nothing. *)

val id : span -> int
val is_null : span -> bool

val count : t -> int
val dropped : t -> int
val clear : t -> unit

val records : t -> record list
(** Finished spans, ordered by start time then id. *)

val to_chrome_json : t -> string
(** The whole collector as one Chrome trace-event JSON document. *)
