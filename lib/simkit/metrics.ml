type instrument =
  | Stat of Stat.t
  | Counter of Stat.Counter.t
  | Histogram of Stat.Histogram.t
  | Gauge of (unit -> float)
  | Probe of Probe.t

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function
  | Stat _ -> "stat"
  | Counter _ -> "counter"
  | Histogram _ -> "histogram"
  | Gauge _ -> "gauge"
  | Probe _ -> "probe"

let register t path instrument = Hashtbl.replace t.tbl path instrument

let register_stat t path s = register t path (Stat s)
let register_counter t path c = register t path (Counter c)
let register_histogram t path h = register t path (Histogram h)
let register_gauge t path fn = register t path (Gauge fn)
let register_probe t path p = register t path (Probe p)

let wrong_kind path found want =
  invalid_arg
    (Printf.sprintf "Metrics.%s: %s is already registered as a %s" want path
       (kind_name found))

let stat t path =
  match Hashtbl.find_opt t.tbl path with
  | Some (Stat s) -> s
  | Some other -> wrong_kind path other "stat"
  | None ->
      let s = Stat.create ~name:path () in
      register t path (Stat s);
      s

let counter t path =
  match Hashtbl.find_opt t.tbl path with
  | Some (Counter c) -> c
  | Some other -> wrong_kind path other "counter"
  | None ->
      let c = Stat.Counter.create ~name:path () in
      register t path (Counter c);
      c

let histogram t path =
  match Hashtbl.find_opt t.tbl path with
  | Some (Histogram h) -> h
  | Some other -> wrong_kind path other "histogram"
  | None ->
      let h = Stat.Histogram.create () in
      register t path (Histogram h);
      h

let probe t path =
  match Hashtbl.find_opt t.tbl path with
  | Some (Probe p) -> p
  | Some other -> wrong_kind path other "probe"
  | None ->
      let p = Probe.create ~name:path () in
      register t path (Probe p);
      p

let find t path = Hashtbl.find_opt t.tbl path

let stat_total t path =
  match find t path with Some (Stat s) -> Stat.total s | _ -> 0.0

let instruments t =
  Hashtbl.fold (fun path i acc -> (path, i) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let paths t = List.map fst (instruments t)

let pp_table ppf t =
  Format.fprintf ppf "%-36s %-9s %12s %12s %12s %8s@." "instrument" "kind" "value"
    "mean" "p99" "n";
  List.iter
    (fun (path, i) ->
      match i with
      | Stat s ->
          let sm = Stat.summary s in
          Format.fprintf ppf "%-36s %-9s %12.0f %12.1f %12.1f %8d@." path "stat" sm.Stat.max
            sm.Stat.mean sm.Stat.p99 sm.Stat.n
      | Counter c ->
          Format.fprintf ppf "%-36s %-9s %12d %12s %12s %8s@." path "counter"
            (Stat.Counter.get c) "-" "-" "-"
      | Gauge fn ->
          Format.fprintf ppf "%-36s %-9s %12.0f %12s %12s %8s@." path "gauge" (fn ()) "-" "-"
            "-"
      | Probe p ->
          (* value = current depth, mean = cumulative busy (ms), n = completions *)
          Format.fprintf ppf "%-36s %-9s %12d %12.1f %12s %8d@." path "probe" (Probe.depth p)
            (float_of_int (Probe.busy_total p) /. 1e6)
            "-" (Probe.dequeued p)
      | Histogram h ->
          let mode =
            match Stat.Histogram.max_bucket h with
            | Some (ub, _) -> Printf.sprintf "<=%d" ub
            | None -> "-"
          in
          Format.fprintf ppf "%-36s %-9s %12s %12s %12s %8d@." path "histogram" mode "-" "-"
            (Stat.Histogram.total h))
    (instruments t)

let to_json t =
  let entry (path, i) =
    let body =
      match i with
      | Stat s ->
          let sm = Stat.summary s in
          [
            ("kind", Json.String "stat");
            ("n", Json.Int sm.Stat.n);
            ("total", Json.Float (Stat.total s));
            ("mean", Json.Float sm.Stat.mean);
            ("stdev", Json.Float sm.Stat.stdev);
            ("min", Json.Float sm.Stat.min);
            ("max", Json.Float sm.Stat.max);
            ("p50", Json.Float sm.Stat.p50);
            ("p90", Json.Float sm.Stat.p90);
            ("p99", Json.Float sm.Stat.p99);
          ]
      | Counter c -> [ ("kind", Json.String "counter"); ("value", Json.Int (Stat.Counter.get c)) ]
      | Gauge fn -> [ ("kind", Json.String "gauge"); ("value", Json.Float (fn ())) ]
      | Probe p ->
          [
            ("kind", Json.String "probe");
            ("depth", Json.Int (Probe.depth p));
            ("max_depth", Json.Int (Probe.max_depth p));
            ("enqueued", Json.Int (Probe.enqueued p));
            ("dequeued", Json.Int (Probe.dequeued p));
            ("busy_ns", Json.Int (Probe.busy_total p));
          ]
      | Histogram h ->
          [
            ("kind", Json.String "histogram");
            ( "buckets",
              Json.List
                (List.map
                   (fun (ub, c) -> Json.List [ Json.Int ub; Json.Int c ])
                   (Stat.Histogram.buckets h)) );
          ]
    in
    (path, Json.Obj body)
  in
  Json.to_string (Json.Obj (List.map entry (instruments t)))
