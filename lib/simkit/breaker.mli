(** Per-destination circuit breaker with half-open probing.

    Closed passes traffic and counts consecutive failures; at the
    threshold it trips Open and rejects everything for a cooldown;
    after the cooldown it goes Half-open and admits exactly one probe
    — probe success re-closes, probe failure re-opens for another
    cooldown.  Rejecting locally is what keeps a struggling server
    from being hammered by the very clients it is failing.

    Time is passed in explicitly ([~now]) so the breaker stays
    deterministic and clock-agnostic. *)

type t

type state = Closed | Open | Half_open

val create : ?failure_threshold:int -> ?cooldown:Time.span -> unit -> t
(** [failure_threshold] (default 5) consecutive failures trip the
    breaker; [cooldown] (default 100ms) is how long it stays Open. *)

val allow : t -> now:Time.t -> bool
(** May a request be sent now?  Closed: yes.  Open: no, until the
    cooldown elapses (which moves to Half-open).  Half-open: yes for
    the single probe, no while that probe is outstanding. *)

val record_success : t -> unit
(** Report a request outcome.  Resets the failure streak; a successful
    half-open probe re-closes the breaker. *)

val record_failure : t -> now:Time.t -> unit
(** Report a failed request.  May trip Closed→Open, and always returns
    a Half-open breaker to Open for a fresh cooldown. *)

val state : t -> state

val trips : t -> int
(** Closed/Half-open → Open transitions. *)

val rejected : t -> int
(** Requests refused by [allow]. *)
