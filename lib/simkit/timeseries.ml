type sample = { s_time : Time.t; s_dt : Time.span; s_values : (string * float) list }

type attribution = {
  at_resource : string;
  at_utilization : float;
  at_qlen : float;
  at_busy : Time.span;
  at_busy_share : float;
}

type t = {
  sim : Sim.t;
  metrics : Metrics.t;
  ts_interval : Time.span;
  capacity : int;
  ring : sample Queue.t;
  mutable n_evicted : int;
  mutable running : bool;
  mutable started : bool;
  mutable started_at : Time.t;
  mutable last_time : Time.t;
  mutable ts_marks : (Time.t * string) list;  (** newest first *)
  (* Cumulative readings at the previous sample, keyed by
     [path ^ "#" ^ facet], so deltas turn counters into rates and probe
     totals into per-interval utilization. *)
  last : (string, float) Hashtbl.t;
}

let create ?(capacity = 4096) ~sim ~metrics ~interval () =
  if interval <= 0 then invalid_arg "Timeseries.create: interval must be positive";
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  {
    sim;
    metrics;
    ts_interval = interval;
    capacity;
    ring = Queue.create ();
    n_evicted = 0;
    running = false;
    started = false;
    started_at = Time.zero;
    last_time = Time.zero;
    ts_marks = [];
    last = Hashtbl.create 128;
  }

let interval t = t.ts_interval

let evicted t = t.n_evicted

let sample_count t = Queue.length t.ring

let samples t = List.of_seq (Queue.to_seq t.ring)

let mark t ~time label = t.ts_marks <- (time, label) :: t.ts_marks

let marks t = List.sort compare (List.rev t.ts_marks)

let delta t key current =
  let prev = match Hashtbl.find_opt t.last key with Some v -> v | None -> 0.0 in
  Hashtbl.replace t.last key current;
  current -. prev

(* Columns derived from one instrument for one interval of length [dt_s]
   seconds.  Cumulative sources (counters, stat totals, probe busy and
   depth integrals) are differenced against the previous sample, so each
   row describes the interval, not the run so far. *)
let columns_of t ~dt_s ~dt_ns (path, instrument) =
  match instrument with
  | Metrics.Gauge fn -> [ (path, fn ()) ]
  | Metrics.Counter c ->
      let d = delta t (path ^ "#count") (float_of_int (Stat.Counter.get c)) in
      [ (path ^ ".delta", d); (path ^ ".rate", d /. dt_s) ]
  | Metrics.Histogram h ->
      let d = delta t (path ^ "#total") (float_of_int (Stat.Histogram.total h)) in
      [ (path ^ ".delta", d) ]
  | Metrics.Stat s ->
      let n = Stat.count s in
      let prev_n =
        match Hashtbl.find_opt t.last (path ^ "#n") with
        | Some v -> int_of_float v
        | None -> 0
      in
      let dn = delta t (path ^ "#n") (float_of_int n) in
      let dtotal = delta t (path ^ "#total") (Stat.total s) in
      let mean = if dn > 0.0 then dtotal /. dn else 0.0 in
      let p50, p99 =
        if n > prev_n then begin
          let slice = Stat.samples_from s prev_n in
          Array.sort compare slice;
          let pick p =
            let rank =
              int_of_float (Float.round (p *. float_of_int (Array.length slice - 1)))
            in
            slice.(rank)
          in
          (pick 0.50, pick 0.99)
        end
        else (0.0, 0.0)
      in
      [
        (path ^ ".n", dn);
        (path ^ ".mean", mean);
        (path ^ ".p50", p50);
        (path ^ ".p99", p99);
      ]
  | Metrics.Probe p ->
      let busy = delta t (path ^ "#busy") (float_of_int (Probe.busy_total p)) in
      let integral = delta t (path ^ "#integral") (Probe.depth_integral ~at:(Sim.now t.sim) p) in
      let deq = delta t (path ^ "#deq") (float_of_int (Probe.dequeued p)) in
      [
        (path ^ ".util", busy /. dt_ns);
        (path ^ ".qlen", integral /. dt_ns);
        (path ^ ".depth", float_of_int (Probe.depth p));
        (path ^ ".rate", deq /. dt_s);
      ]

let take_sample t =
  if not (Level.counters_on ()) then ()
  else
  let now = Sim.now t.sim in
  if now > t.last_time then begin
    let dt = now - t.last_time in
    let dt_ns = float_of_int dt in
    let dt_s = dt_ns /. 1e9 in
    let values =
      List.concat_map (columns_of t ~dt_s ~dt_ns) (Metrics.instruments t.metrics)
      |> List.sort compare
    in
    if Queue.length t.ring >= t.capacity then begin
      ignore (Queue.pop t.ring);
      t.n_evicted <- t.n_evicted + 1
    end;
    Queue.push { s_time = now; s_dt = dt; s_values = values } t.ring;
    t.last_time <- now
  end

let sample_now t = take_sample t

let rec tick t () =
  if t.running then begin
    take_sample t;
    Sim.at t.sim ~after:t.ts_interval (tick t)
  end

let start t =
  if not t.started then begin
    t.started <- true;
    t.running <- true;
    t.started_at <- Sim.now t.sim;
    t.last_time <- t.started_at;
    (* Baseline every cumulative reading so the first interval's deltas
       measure the sampled window, not everything since time zero. *)
    List.iter
      (fun col -> ignore (columns_of t ~dt_s:1.0 ~dt_ns:1.0 col))
      (Metrics.instruments t.metrics);
    Sim.at t.sim ~after:t.ts_interval (tick t)
  end

let stop t =
  if t.running then begin
    t.running <- false;
    (* One final sample so runs shorter than an interval still produce a
       row, and the tail of longer runs is not silently dropped. *)
    take_sample t
  end

let paths t =
  let seen = Hashtbl.create 64 in
  Queue.iter
    (fun s -> List.iter (fun (k, _) -> Hashtbl.replace seen k ()) s.s_values)
    t.ring;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

(* --- attribution --- *)

(* Where the time went: every probe's busy time and depth integral over
   the sampled window [started_at, last sample], as utilization and mean
   queue length.  Ranked by utilization (queue length breaks ties): the
   resource the run spent the most wall-clock actually serving is the
   bottleneck candidate. *)
let attribution t =
  (* Window = the retained rows' combined span, so utilization stays
     exact even after ring eviction drops the oldest rows. *)
  let window = Queue.fold (fun acc s -> acc + s.s_dt) 0 t.ring in
  if window <= 0 then []
  else begin
    let w = float_of_int window in
    let entries =
      List.filter_map
        (fun (path, instrument) ->
          match instrument with
          | Metrics.Probe _ ->
              (* Reconstructed from sampled per-interval rates rather
                 than raw probe totals: with a bounded ring the evicted
                 head is lost either way, and summing rate x dt over the
                 retained rows stays consistent with what the exported
                 series shows. *)
              let busy = ref 0.0 and integral = ref 0.0 in
              Queue.iter
                (fun s ->
                  let dt = float_of_int s.s_dt in
                  (match List.assoc_opt (path ^ ".util") s.s_values with
                  | Some u -> busy := !busy +. (u *. dt)
                  | None -> ());
                  match List.assoc_opt (path ^ ".qlen") s.s_values with
                  | Some q -> integral := !integral +. (q *. dt)
                  | None -> ())
                t.ring;
              Some (path, !busy, !integral)
          | _ -> None)
        (Metrics.instruments t.metrics)
    in
    let total_busy = List.fold_left (fun acc (_, b, _) -> acc +. b) 0.0 entries in
    let ranked =
      List.map
        (fun (path, busy, integral) ->
          {
            at_resource = path;
            at_utilization = busy /. w;
            at_qlen = integral /. w;
            at_busy = int_of_float busy;
            at_busy_share = (if total_busy > 0.0 then busy /. total_busy else 0.0);
          })
        entries
    in
    List.sort
      (fun a b ->
        match compare b.at_utilization a.at_utilization with
        | 0 -> (
            match compare b.at_qlen a.at_qlen with
            | 0 -> compare a.at_resource b.at_resource
            | c -> c)
        | c -> c)
      ranked
  end

(* --- export --- *)

let csv_escape s =
  if
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let float_cell v =
  if Float.is_nan v || Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_csv t =
  let cols = paths t in
  let b = Buffer.create 4096 in
  List.iter
    (fun (tm, label) ->
      Buffer.add_string b (Printf.sprintf "# mark,%d,%s\n" tm (csv_escape label)))
    (marks t);
  Buffer.add_string b "time_ns,dt_ns";
  List.iter
    (fun c ->
      Buffer.add_char b ',';
      Buffer.add_string b (csv_escape c))
    cols;
  Buffer.add_char b '\n';
  Queue.iter
    (fun s ->
      Buffer.add_string b (string_of_int s.s_time);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int s.s_dt);
      List.iter
        (fun c ->
          Buffer.add_char b ',';
          match List.assoc_opt c s.s_values with
          | Some v -> Buffer.add_string b (float_cell v)
          | None -> ())
        cols;
      Buffer.add_char b '\n')
    t.ring;
  Buffer.contents b

let json t =
  Json.Obj
    [
      ("interval_ns", Json.Int t.ts_interval);
      ("evicted", Json.Int t.n_evicted);
      ("columns", Json.List (List.map (fun c -> Json.String c) (paths t)));
      ( "marks",
        Json.List
          (List.map
             (fun (tm, label) ->
               Json.Obj [ ("t_ns", Json.Int tm); ("label", Json.String label) ])
             (marks t)) );
      ( "samples",
        Json.List
          (List.of_seq
             (Seq.map
                (fun s ->
                  Json.Obj
                    [
                      ("t_ns", Json.Int s.s_time);
                      ("dt_ns", Json.Int s.s_dt);
                      ( "values",
                        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.s_values)
                      );
                    ])
                (Queue.to_seq t.ring))) );
    ]

let attribution_json t =
  Json.List
    (List.map
       (fun a ->
         Json.Obj
           [
             ("resource", Json.String a.at_resource);
             ("utilization", Json.Float a.at_utilization);
             ("mean_qlen", Json.Float a.at_qlen);
             ("busy_ns", Json.Int a.at_busy);
             ("busy_share", Json.Float a.at_busy_share);
           ])
       (attribution t))

let pp_attribution ppf t =
  let ranked = attribution t in
  Format.fprintf ppf "%4s %-28s %7s %7s %12s %7s@." "rank" "resource" "util%" "qlen"
    "busy(ms)" "share%";
  List.iteri
    (fun i a ->
      Format.fprintf ppf "%4d %-28s %7.1f %7.2f %12.1f %7.1f@." (i + 1) a.at_resource
        (a.at_utilization *. 100.) a.at_qlen
        (float_of_int a.at_busy /. 1e6)
        (a.at_busy_share *. 100.))
    ranked
