type 'a t = { mutable value : 'a option; mutable waiters : (unit -> unit) list }

let create () = { value = None; waiters = [] }

let wake_all t =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (fun w -> w ()) ws

let try_fill t v =
  match t.value with
  | Some _ -> false
  | None ->
      t.value <- Some v;
      wake_all t;
      true

let fill t v = if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"

let is_filled t = Option.is_some t.value

let peek t = t.value

let rec read t =
  match t.value with
  | Some v -> v
  | None ->
      Sim.suspend (fun waker -> t.waiters <- waker :: t.waiters);
      read t

let read_timeout t span =
  let sim = Sim.current () in
  let deadline = Sim.now sim + span in
  let rec loop () =
    match t.value with
    | Some v -> Some v
    | None ->
        if Sim.now sim >= deadline then None
        else begin
          let cancel = ref ignore in
          let me = ref ignore in
          Sim.suspend (fun waker ->
              me := waker;
              t.waiters <- waker :: t.waiters;
              cancel := Sim.at_time_cancel sim ~time:deadline waker);
          (* Whichever side woke us, retire the other: drop the deadline
             event from the heap and our spent waker from the list. *)
          !cancel ();
          t.waiters <- List.filter (fun w -> w != !me) t.waiters;
          loop ()
        end
  in
  loop ()
