(** Online statistics for latency and throughput measurements.

    A [Stat.t] keeps Welford running moments plus every sample (as a
    growable float array) so that exact percentiles can be reported at the
    end of a run.  Simulation scales here are small enough (≤ millions of
    samples) that keeping samples is cheap and exactness beats sketching. *)

type t

type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val create : ?name:string -> unit -> t

val name : t -> string

val add : t -> float -> unit

val add_span : t -> Time.span -> unit
(** Record a time span, stored in nanoseconds. *)

val count : t -> int

val mean : t -> float

val total : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] is the exact 99th percentile of the samples seen
    so far (nearest-rank).  Total: returns [nan] if no samples, so a
    metrics dump over instruments that recorded nothing never aborts. *)

val samples_from : t -> int -> float array
(** [samples_from t i] copies samples [i..count-1] in insertion order —
    the slice a periodic sampler needs to compute interval percentiles.
    Caveat: a {!percentile} call sorts the backing array in place, so a
    mid-run percentile read scrambles insertion order; the slice then
    still holds [count - i] of the recorded values, just not necessarily
    the latest ones. *)

val summary : t -> summary

val pp_summary : Format.formatter -> t -> unit

(** Monotonically increasing named counters. *)
module Counter : sig
  type t

  val create : ?name:string -> unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val name : t -> string
end

(** Log-scale latency histogram (powers of two in nanoseconds), useful to
    eyeball multi-modal service-time distributions in traces. *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val buckets : t -> (int * int) list
  (** [(upper_bound_ns, count)] for each non-empty bucket, ascending. *)

  val total : t -> int
  (** Total count across every bucket. *)

  val max_bucket : t -> (int * int) option
  (** [(upper_bound, count)] of the fullest bucket — the distribution's
      mode.  Ties go to the smallest bucket; [None] when empty. *)

  val pp : Format.formatter -> t -> unit
  (** ["n=12 mode<=4096 (7) [2048:5 4096:7]"], or ["empty"]. *)
end
