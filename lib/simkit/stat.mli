(** Online statistics for latency and throughput measurements.

    A [Stat.t] keeps Welford running moments plus every sample (as a
    growable float array) so that exact percentiles can be reported at the
    end of a run.  Simulation scales here are small enough (≤ millions of
    samples) that keeping samples is cheap and exactness beats sketching. *)

type t

type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val create : ?name:string -> unit -> t

val name : t -> string

val add : t -> float -> unit

val add_span : t -> Time.span -> unit
(** Record a time span, stored in nanoseconds. *)

val count : t -> int

val mean : t -> float

val total : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] is the exact 99th percentile of the samples seen
    so far (nearest-rank).  Total: returns [nan] if no samples, so a
    metrics dump over instruments that recorded nothing never aborts. *)

val summary : t -> summary

val pp_summary : Format.formatter -> t -> unit

(** Monotonically increasing named counters. *)
module Counter : sig
  type t

  val create : ?name:string -> unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val name : t -> string
end

(** Log-scale latency histogram (powers of two in nanoseconds), useful to
    eyeball multi-modal service-time distributions in traces. *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val buckets : t -> (int * int) list
  (** [(upper_bound_ns, count)] for each non-empty bucket, ascending. *)
end
