type t = Off | Counters | Spans

(* Default [Spans]: every existing call path behaves exactly as before
   the global gate existed.  Lowering the level is an explicit act by a
   measurement harness. *)
let current = ref Spans

let set l = current := l

let get () = !current

let spans_on () = match !current with Spans -> true | _ -> false

let counters_on () = match !current with Off -> false | _ -> true

let raise_to_spans () = current := Spans
