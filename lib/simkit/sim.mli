(** Deterministic discrete-event simulation with green processes.

    A simulation owns a virtual clock and an event queue.  Code runs
    either as plain scheduled callbacks ({!at}) or as {e processes}:
    OCaml-5 effect-based fibers that can block ({!sleep}, {!suspend},
    {!Mailbox.recv}, {!Ivar.read}) without tying up the host thread.
    Events at equal timestamps fire in scheduling order, so a run is a
    pure function of its inputs and seed. *)

type t

type pid = private int
(** Process identifier, unique within one simulation. *)

type exit_reason =
  | Normal  (** the process body returned *)
  | Killed  (** {!kill} was called, e.g. by fault injection *)
  | Crashed of exn  (** the body raised *)

val create : ?seed:int64 -> ?on_crash:[ `Raise | `Record ] -> unit -> t
(** Fresh simulation at time 0.  [on_crash] selects whether an uncaught
    exception in a process aborts the run (default) or is only recorded
    (see {!crashed}). *)

val now : t -> Time.t

val rng : t -> Rng.t
(** The simulation's root PRNG.  Subsystems should {!Rng.split} it. *)

val at : t -> after:Time.span -> (unit -> unit) -> unit
(** Schedule a plain callback [after] nanoseconds from now.  The callback
    must not block; use {!spawn} for blocking code. *)

val at_time : t -> time:Time.t -> (unit -> unit) -> unit

val at_time_cancel : t -> time:Time.t -> (unit -> unit) -> unit -> unit
(** Like {!at_time}, but returns a cancel thunk.  Cancelling an event
    that already fired (or was already cancelled) is a no-op.  Cancelled
    entries are deleted lazily; once they dominate the heap a compaction
    sweep drops them, so heavy timeout use cannot bloat the event queue.
    This is the primitive under {!Ivar.read_timeout} and
    {!Mailbox.recv_timeout}. *)

(** {1 Processes} *)

val spawn : t -> name:string -> (unit -> unit) -> pid
(** Start a process.  Its body begins at the current simulated time, after
    already-queued events for this instant. *)

val kill : t -> pid -> unit
(** Terminate a process.  Exit hooks run immediately with {!Killed}; if
    the victim is parked on a suspension its resumption is dropped.
    Killing a dead process is a no-op. *)

val on_exit : t -> pid -> (exit_reason -> unit) -> unit
(** Register a hook called when the process terminates for any reason.
    If it is already dead the hook runs immediately with its reason. *)

val is_alive : t -> pid -> bool

val process_name : t -> pid -> string

val crashed : t -> (pid * string * exn) list
(** Processes that died from uncaught exceptions (only populated with
    [~on_crash:`Record]). *)

(** {1 Running} *)

val run : ?until:Time.t -> t -> unit
(** Execute events until the queue drains, [until] is reached, or
    {!stop}.  Returns with [now t] at the last executed event (or at
    [until]).  Blocked processes do not keep the run alive. *)

val stop : t -> unit
(** Make {!run} return after the current event. *)

val live_processes : t -> int

val queue_depth : t -> int
(** Number of live (non-cancelled) pending events in the queue. *)

val heap_size : t -> int
(** Physical size of the event heap, including cancelled entries not
    yet compacted away — for diagnostics and regression tests. *)

(** {1 Dispatch hooks}

    A profiler (see {!Prof}) can observe every event the loop executes.
    [before] receives the queue depth after the event was popped;
    [after] runs once the thunk returns (to completion or suspension —
    with effect-based processes every blocking operation returns control
    to the loop, so the pair brackets exactly one execution slice).
    At most one hook pair is installed; installing replaces the previous
    one.  The unhooked loop pays a single mutable-field check. *)

val set_dispatch_hooks : t -> before:(int -> unit) -> after:(unit -> unit) -> unit

val clear_dispatch_hooks : t -> unit

(** {1 Inside a process}

    These operations perform effects and must be called from process
    context (inside a {!spawn}ed body), otherwise they raise
    [Not_in_process]. *)

exception Not_in_process

val self : unit -> pid

val current : unit -> t
(** The simulation the calling process belongs to. *)

val sleep : Time.span -> unit

val wait_until : Time.t -> unit
(** Sleep until an absolute time (no-op if already past). *)

val yield : unit -> unit
(** Let other events scheduled for this instant run first. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process and calls
    [register waker].  Calling [waker] (once; later calls are ignored)
    schedules the process to resume at the then-current simulated time.
    This is the primitive under mailboxes, I/O completions and timers. *)
