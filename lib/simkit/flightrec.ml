(* Failure flight recorder: a bounded ring of the most recent finished
   spans plus a ring of fault marks (injections, detections, gate
   trips), dumpable as one JSON document when a drill fails.  The point
   is the black box: always-on while armed, cheap, and holding exactly
   the window of history that explains what the system was doing when
   things went wrong. *)

type mark = { m_time : Time.t; m_label : string }

type t = {
  span_cap : int;
  mark_cap : int;
  spans : Span.record array option ref;  (* lazily allocated ring *)
  mutable span_next : int;  (* next write slot *)
  mutable span_n : int;  (* total spans ever observed *)
  marks : mark option array;
  mutable mark_next : int;
  mutable mark_n : int;
}

let create ?(spans = 2048) ?(marks = 256) () =
  if spans <= 0 || marks <= 0 then invalid_arg "Flightrec.create: caps must be positive";
  {
    span_cap = spans;
    mark_cap = marks;
    spans = ref None;
    span_next = 0;
    span_n = 0;
    marks = Array.make marks None;
    mark_next = 0;
    mark_n = 0;
  }

let observe t (r : Span.record) =
  let ring =
    match !(t.spans) with
    | Some a -> a
    | None ->
        (* First record seeds the ring; the array holds copies of this
           record until overwritten, masked out by [span_n] on dump. *)
        let a = Array.make t.span_cap r in
        t.spans := Some a;
        a
  in
  ring.(t.span_next) <- r;
  t.span_next <- (t.span_next + 1) mod t.span_cap;
  t.span_n <- t.span_n + 1

let mark t ~time label =
  t.marks.(t.mark_next) <- Some { m_time = time; m_label = label };
  t.mark_next <- (t.mark_next + 1) mod t.mark_cap;
  t.mark_n <- t.mark_n + 1

let attach t spans = Span.set_consumer spans (Some (observe t))

let span_count t = t.span_n

let mark_count t = t.mark_n

(* Ring contents oldest-first. *)
let recent_spans t =
  match !(t.spans) with
  | None -> []
  | Some a ->
      let kept = min t.span_n t.span_cap in
      let first = (t.span_next - kept + t.span_cap * 2) mod t.span_cap in
      List.init kept (fun i -> a.((first + i) mod t.span_cap))

let recent_marks t =
  let kept = min t.mark_n t.mark_cap in
  let first = (t.mark_next - kept + t.mark_cap * 2) mod t.mark_cap in
  List.filter_map (fun i -> t.marks.((first + i) mod t.mark_cap)) (List.init kept Fun.id)
  |> List.map (fun m -> (m.m_time, m.m_label))

let record_json (r : Span.record) =
  Json.Obj
    ([
       ("id", Json.Int r.Span.r_id);
       ("track", Json.String r.Span.r_track);
       ("name", Json.String r.Span.r_name);
       ("start_ns", Json.Int r.Span.r_start);
       ("end_ns", Json.Int r.Span.r_end);
     ]
    @ (match r.Span.r_parent with Some p -> [ ("parent", Json.Int p) ] | None -> [])
    @ (if r.Span.r_trace >= 0 then [ ("trace", Json.Int r.Span.r_trace) ] else [])
    @
    if r.Span.r_args = [] then []
    else
      [
        ( "args",
          Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) r.Span.r_args) );
      ])

let to_json t =
  Json.Obj
    [
      ("spans_seen", Json.Int t.span_n);
      ("marks_seen", Json.Int t.mark_n);
      ( "marks",
        Json.List
          (List.map
             (fun (time, label) ->
               Json.Obj
                 [ ("time_ns", Json.Int time); ("label", Json.String label) ])
             (recent_marks t)) );
      ("spans", Json.List (List.map record_json (recent_spans t)));
    ]
