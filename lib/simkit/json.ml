type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  (* JSON has no NaN or infinity literals. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | String s -> add_escaped b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          add b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  add b v;
  Buffer.contents b

let add_to_buffer = add

(* --- parsing --- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v = ref 0 in
  for i = st.pos to st.pos + 3 do
    let d =
      match st.src.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | Some '"' -> Buffer.add_char b '"'; st.pos <- st.pos + 1
        | Some '\\' -> Buffer.add_char b '\\'; st.pos <- st.pos + 1
        | Some '/' -> Buffer.add_char b '/'; st.pos <- st.pos + 1
        | Some 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1
        | Some 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1
        | Some 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1
        | Some 'b' -> Buffer.add_char b '\b'; st.pos <- st.pos + 1
        | Some 'f' -> Buffer.add_char b '\012'; st.pos <- st.pos + 1
        | Some 'u' ->
            st.pos <- st.pos + 1;
            add_utf8 b (hex4 st)
        | _ -> fail st "bad escape");
        go ()
    | Some c ->
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume () = st.pos <- st.pos + 1 in
  (match peek st with Some '-' -> consume () | _ -> ());
  let rec digits () =
    match peek st with Some '0' .. '9' -> consume (); digits () | _ -> ()
  in
  digits ();
  (match peek st with
  | Some '.' ->
      is_float := true;
      consume ();
      digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      consume ();
      (match peek st with Some ('+' | '-') -> consume () | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* Integer literal too large for native int. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin st.pos <- st.pos + 1; Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; members ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin st.pos <- st.pos + 1; List [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; elements ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_list_opt = function List items -> Some items | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
