type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  (* JSON has no NaN or infinity literals. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | String s -> add_escaped b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          add b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  add b v;
  Buffer.contents b

let add_to_buffer = add
