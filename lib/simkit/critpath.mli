(** Critical-path attribution over causal span DAGs.

    Consumes finished span records (streaming, via {!attach} /
    {!Span.set_consumer}) and, whenever a trace's root span arrives —
    the root of a transaction finishes last — walks its DAG backwards
    from the ack.  Every nanosecond of the root's interval is attributed
    to exactly one span (the deepest one covering it, with explicit
    ["link"] edges — group-commit flushes, lock holders — resolved like
    children), split into queue and service time from the ["queue_ns"]
    annotations.  The tiling is exact: a trace's hop durations sum to
    its measured ack latency, nanosecond for nanosecond.

    Memory is bounded everywhere: unfinalized traces are capped (oldest
    evicted, counted), link resolution uses a sliding window of recent
    records, and only the slowest [exemplars] transactions keep their
    full DAGs. *)

type t

type hop = {
  h_name : string;  (** ["track:name"] *)
  h_count : int;  (** critical-path appearances across finalized traces *)
  h_queue : int;  (** summed queue ns attributed to this hop *)
  h_service : int;  (** summed service ns *)
}

type ex_hop = { xh_name : string; xh_queue : int; xh_service : int }

type exemplar = {
  ex_trace : int;
  ex_root : string;
  ex_ack : int;  (** root duration = measured ack latency, ns *)
  ex_hops : ex_hop list;  (** this txn's critical path, heaviest hop first *)
  ex_records : Span.record list;
      (** the full DAG: every trace record plus walk-reachable links *)
}

val create : ?exemplars:int -> ?max_pending:int -> ?recent:int -> unit -> t
(** [exemplars] (default 32) slowest transactions keep full DAGs;
    [max_pending] (default 100k) caps records buffered for unfinalized
    traces; [recent] (default 8192) sizes the link-resolution window. *)

val observe : t -> Span.record -> unit
(** Feed one finished span.  Untraced records only enter the link
    window; a traced parentless record is a root and finalizes its
    trace. *)

val attach : t -> Span.t -> unit
(** [Span.set_consumer spans (Some (observe t))]: stream the collector
    into this analyzer, retaining nothing in the collector itself. *)

val txns : t -> int
(** Traces finalized. *)

val evicted : t -> int
(** Unfinalized traces dropped by the [max_pending] cap. *)

val pending_traces : t -> int

val latency : t -> Stat.t
(** Distribution of root (ack) latencies across finalized traces. *)

val hops : t -> hop list
(** Aggregate attribution, ranked by total (queue + service) descending. *)

val exemplars : t -> exemplar list
(** Slowest transactions, slowest first. *)

val to_json : t -> Json.t
(** [{txns, evicted_traces, ack_latency:{...}, hops:[...],
    exemplars:[{trace, root, ack_ns, hop_sum_ns, spans, hops:[...]}]}] —
    each exemplar's [hop_sum_ns] equals its [ack_ns] by construction. *)

val pp : Format.formatter -> t -> unit
(** Ranked text table with queue/service columns and share. *)
