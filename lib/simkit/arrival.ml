type process = Poisson | Uniform | Burst of int

type phase = { rate : float; duration : Time.span; process : process }

type schedule = phase list

let phase ?(process = Poisson) ~rate ~duration () = { rate; duration; process }

let constant ?process ~rate ~duration () = [ phase ?process ~rate ~duration () ]

let ramp ?process ?(steps = 8) ~from_rate ~to_rate ~duration () =
  let steps = max 1 steps in
  let slice = max 1 (duration / steps) in
  List.init steps (fun i ->
      let frac = float_of_int i /. float_of_int (max 1 (steps - 1)) in
      let rate =
        if steps = 1 then to_rate
        else from_rate +. ((to_rate -. from_rate) *. frac)
      in
      phase ?process ~rate ~duration:slice ())

let flash_crowd ?process ~base ~spike ~cool ~warmup ~spike_for ~cooldown () =
  [
    phase ?process ~rate:base ~duration:warmup ();
    phase ?process ~rate:spike ~duration:spike_for ();
    phase ?process ~rate:cool ~duration:cooldown ();
  ]

let total_duration schedule =
  List.fold_left (fun acc p -> acc + p.duration) 0 schedule

(* Gaps are clamped to >= 1 ns so the dispatch loop always advances
   virtual time, whatever the rate. *)
let span_of_ns ns = Time.ns (max 1 (int_of_float ns))

let run ~rng schedule ~f =
  let count = ref 0 in
  List.iter
    (fun p ->
      if p.duration > 0 then
        if p.rate <= 0. then Sim.sleep p.duration
        else begin
          let sim = Sim.current () in
          let phase_end = Sim.now sim + p.duration in
          let interval_ns = 1e9 /. p.rate in
          let rec loop () =
            if Sim.now sim < phase_end then begin
              (match p.process with
              | Poisson ->
                  f !count;
                  incr count;
                  Sim.sleep (span_of_ns (Rng.exponential rng ~mean:interval_ns))
              | Uniform ->
                  f !count;
                  incr count;
                  Sim.sleep (span_of_ns interval_ns)
              | Burst n ->
                  let n = max 1 n in
                  for _ = 1 to n do
                    f !count;
                    incr count
                  done;
                  Sim.sleep (span_of_ns (float_of_int n *. interval_ns)));
              loop ()
            end
          in
          loop ()
        end)
    schedule;
  !count
