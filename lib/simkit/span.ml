type span = {
  sp_id : int;
  sp_parent : int;  (* -1 = no parent *)
  sp_trace : int;  (* -1 = no trace *)
  sp_track : string;
  sp_name : string;
  mutable sp_start : Time.t;  (* {!note_queue} extends it back over the wait *)
  mutable sp_args : (string * string) list;
  mutable sp_open : bool;
}

let null_span =
  { sp_id = -1; sp_parent = -1; sp_trace = -1; sp_track = ""; sp_name = "";
    sp_start = Time.zero; sp_args = []; sp_open = false }

let null = null_span

type record = {
  r_id : int;
  r_parent : int option;
  r_trace : int;  (* -1 = no trace *)
  r_track : string;
  r_name : string;
  r_start : Time.t;
  r_end : Time.t;
  r_args : (string * string) list;
}

type t = {
  mutable on : bool;
  mutable clock : unit -> Time.t;
  capacity : int;
  mutable recs : record list;  (* newest-finished first *)
  mutable n : int;
  mutable n_dropped : int;
  mutable next_id : int;
  mutable next_trace : int;
  mutable sink : Trace.t option;
  mutable consumer : (record -> unit) option;
}

let create ?(clock = fun () -> Time.zero) ?(capacity = 1_000_000) () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  { on = false; clock; capacity; recs = []; n = 0; n_dropped = 0; next_id = 0;
    next_trace = 0; sink = None; consumer = None }

let set_clock t clock = t.clock <- clock

let enable t =
  t.on <- true;
  (* Enabling a collector is an explicit request for span data: make
     sure the global gate lets it through. *)
  Level.raise_to_spans ()

let disable t = t.on <- false
let enabled t = t.on

let attach_trace t trace = t.sink <- Some trace

let new_trace t =
  let id = t.next_trace in
  t.next_trace <- id + 1;
  id

let id sp = sp.sp_id

let is_null sp = sp.sp_id < 0

let trace_of sp = sp.sp_trace

let start_time sp = sp.sp_start

let parent_of = function
  | Some p when p.sp_id >= 0 -> p.sp_id
  | _ -> -1

let trace_from parent = function
  | Some tr -> tr
  | None -> ( match parent with Some p when p.sp_id >= 0 -> p.sp_trace | _ -> -1)

let start t ?(track = "main") ?parent ?trace name =
  if not (t.on && Level.spans_on ()) then null_span
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let now = t.clock () in
    (match t.sink with
    | Some tr ->
        Trace.eventf tr ~time:now ~tag:"span" (fun () ->
            Printf.sprintf "begin %s#%d" name id)
    | None -> ());
    { sp_id = id; sp_parent = parent_of parent; sp_trace = trace_from parent trace;
      sp_track = track; sp_name = name; sp_start = now; sp_args = []; sp_open = true }
  end

let root t ?(track = "main") name =
  if not (t.on && Level.spans_on ()) then null_span
  else start t ~track ~trace:(new_trace t) name

let annotate sp ~key value =
  if sp.sp_open then sp.sp_args <- (key, value) :: sp.sp_args

(* A causal (non-parent) edge: the span depended on [target]'s work —
   the flush it piggybacked on, the lock holder it waited for.  Stored
   as an annotation so records need no new field shape downstream. *)
let link sp target =
  if sp.sp_open && target.sp_id >= 0 then
    sp.sp_args <- ("link", string_of_int target.sp_id) :: sp.sp_args

(* The request this span serves sat queued for [dt] before the span
   opened (inbox residency).  Extend the span back over the wait so its
   interval covers queue + service, and record the prefix split.  Waits
   that happen *inside* an already-open span (lock waits, flush-batch
   parking) are annotated with "queue_ns" directly instead. *)
let note_queue sp dt =
  if sp.sp_open && dt > 0 then begin
    sp.sp_start <- sp.sp_start - dt;
    sp.sp_args <- ("queue_ns", string_of_int dt) :: sp.sp_args
  end

(* Queue prefix already covered by the span's interval: annotate only. *)
let mark_queue sp dt =
  if sp.sp_open && dt > 0 then
    sp.sp_args <- ("queue_ns", string_of_int dt) :: sp.sp_args

let finish t sp =
  if sp.sp_id >= 0 && sp.sp_open then begin
    sp.sp_open <- false;
    let now = t.clock () in
    (match t.sink with
    | Some tr ->
        Trace.eventf tr ~time:now ~tag:"span" (fun () ->
            Printf.sprintf "end %s#%d" sp.sp_name sp.sp_id)
    | None -> ());
    match t.consumer with
    | Some f ->
        (* Streaming mode: the record is handed off, not retained, so
           memory stays bounded by whatever the consumer keeps. *)
        f
          {
            r_id = sp.sp_id;
            r_parent = (if sp.sp_parent >= 0 then Some sp.sp_parent else None);
            r_trace = sp.sp_trace;
            r_track = sp.sp_track;
            r_name = sp.sp_name;
            r_start = sp.sp_start;
            r_end = now;
            r_args = List.rev sp.sp_args;
          }
    | None ->
        if t.n >= t.capacity then t.n_dropped <- t.n_dropped + 1
        else begin
          t.recs <-
            {
              r_id = sp.sp_id;
              r_parent = (if sp.sp_parent >= 0 then Some sp.sp_parent else None);
              r_trace = sp.sp_trace;
              r_track = sp.sp_track;
              r_name = sp.sp_name;
              r_start = sp.sp_start;
              r_end = now;
              r_args = List.rev sp.sp_args;
            }
            :: t.recs;
          t.n <- t.n + 1
        end
  end

let set_consumer t consumer = t.consumer <- consumer

let with_span t ?track ?parent name f =
  let sp = start t ?track ?parent name in
  match f sp with
  | v ->
      finish t sp;
      v
  | exception e ->
      finish t sp;
      raise e

let count t = t.n

let dropped t = t.n_dropped

let clear t =
  t.recs <- [];
  t.n <- 0;
  t.n_dropped <- 0

let records t =
  List.sort
    (fun a b ->
      match compare a.r_start b.r_start with 0 -> compare a.r_id b.r_id | c -> c)
    t.recs

(* --- Chrome trace-event export (chrome://tracing / Perfetto) --- *)

let to_chrome_json t =
  let recs = records t in
  (* Tracks become trace "threads", numbered in order of appearance. *)
  let tids = Hashtbl.create 16 in
  let track_order = ref [] in
  let tid_of track =
    match Hashtbl.find_opt tids track with
    | Some i -> i
    | None ->
        let i = Hashtbl.length tids in
        Hashtbl.replace tids track i;
        track_order := (track, i) :: !track_order;
        i
  in
  List.iter (fun r -> ignore (tid_of r.r_track)) recs;
  let by_id = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace by_id r.r_id r) recs;
  let us_of ns = float_of_int ns /. 1e3 in
  let meta =
    List.rev_map
      (fun (track, tid) ->
        Json.Obj
          [
            ("ph", Json.String "M");
            ("name", Json.String "thread_name");
            ("pid", Json.Int 0);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.String track) ]);
          ])
      !track_order
  in
  let complete r =
    let args =
      List.map (fun (k, v) -> (k, Json.String v)) r.r_args
      @ (match r.r_parent with Some p -> [ ("parent", Json.Int p) ] | None -> [])
      @ (if r.r_trace >= 0 then [ ("trace", Json.Int r.r_trace) ] else [])
    in
    Json.Obj
      ([
         ("ph", Json.String "X");
         ("name", Json.String r.r_name);
         ("cat", Json.String "sim");
         ("pid", Json.Int 0);
         ("tid", Json.Int (tid_of r.r_track));
         ("ts", Json.Float (us_of r.r_start));
         ("dur", Json.Float (us_of (max 1 (r.r_end - r.r_start))));
       ]
      @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  (* Cross-track parent/child edges become flow arrows, as do explicit
     causal links (group-commit piggybacks, lock-holder edges).  Each
     edge needs its own flow id; link edges take ids above the span id
     space so they never collide with parent-edge flows. *)
  let arrow ~name ~fid ~src ~dst =
    [
      Json.Obj
        [
          ("ph", Json.String "s");
          ("name", Json.String name);
          ("cat", Json.String "flow");
          ("id", Json.Int fid);
          ("pid", Json.Int 0);
          ("tid", Json.Int (tid_of src.r_track));
          ("ts", Json.Float (us_of src.r_start));
        ];
      Json.Obj
        [
          ("ph", Json.String "f");
          ("bp", Json.String "e");
          ("name", Json.String name);
          ("cat", Json.String "flow");
          ("id", Json.Int fid);
          ("pid", Json.Int 0);
          ("tid", Json.Int (tid_of dst.r_track));
          ("ts", Json.Float (us_of dst.r_start));
        ];
    ]
  in
  let next_link_fid = ref 0 in
  let link_fid_base =
    List.fold_left (fun acc r -> max acc (r.r_id + 1)) 0 recs
  in
  let flows r =
    let parent_flow =
      match r.r_parent with
      | None -> []
      | Some pid -> (
          match Hashtbl.find_opt by_id pid with
          | Some p when p.r_track <> r.r_track ->
              arrow ~name:"call" ~fid:r.r_id ~src:p ~dst:r
          | _ -> [])
    in
    let link_flows =
      List.concat_map
        (fun (k, v) ->
          if k <> "link" then []
          else
            match int_of_string_opt v with
            | None -> []
            | Some lid -> (
                match Hashtbl.find_opt by_id lid with
                | Some src ->
                    let fid = link_fid_base + !next_link_fid in
                    incr next_link_fid;
                    arrow ~name:"link" ~fid ~src ~dst:r
                | None -> []))
        r.r_args
    in
    parent_flow @ link_flows
  in
  let events = meta @ List.concat_map (fun r -> complete r :: flows r) recs in
  Json.to_string
    (Json.Obj
       [ ("displayTimeUnit", Json.String "ns"); ("traceEvents", Json.List events) ])
