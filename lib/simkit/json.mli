(** Minimal JSON document builder.

    Just enough to emit machine-readable benchmark artifacts (metrics
    dumps, Chrome trace files, figure tables) without an external
    dependency.  Non-finite floats serialize as [null], since JSON has no
    NaN/infinity literals. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. *)

val add_to_buffer : Buffer.t -> t -> unit
