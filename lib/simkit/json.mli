(** Minimal JSON document builder.

    Just enough to emit machine-readable benchmark artifacts (metrics
    dumps, Chrome trace files, figure tables) without an external
    dependency.  Non-finite floats serialize as [null], since JSON has no
    NaN/infinity literals. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. *)

val add_to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON document (the whole string; trailing non-whitespace is
    an error).  Numbers without [.]/exponent parse as [Int], everything
    else as [Float]; [\uXXXX] escapes decode to UTF-8.  Enough to read
    back our own artifacts — BENCH baselines, schema round-trips — not a
    general validator. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] on non-objects or missing keys. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val to_int_opt : t -> int option

val to_string_opt : t -> string option

val to_list_opt : t -> t list option

val to_bool_opt : t -> bool option
