(** Retry budget: a token bucket refilled by successes.

    Retries amplify overload — every failed request that retries adds
    offered load exactly when the system has none to spare, the
    positive feedback loop behind metastable failure.  A retry budget
    breaks the loop: each retry spends a token, each success refills a
    fraction of one, so a client whose requests keep failing runs out
    of budget and stops retrying instead of storming.

    Pure and deterministic — no clock, no randomness — so the
    invariants (tokens never negative, never above capacity, refill
    monotone) are directly property-testable. *)

type t

val create : ?capacity:float -> ?refill:float -> unit -> t
(** [create ()] starts with a full bucket.  [capacity] (default 10.)
    is the maximum token count; [refill] (default 0.1) is the fraction
    of a token returned per success.  Both are clamped to be
    non-negative. *)

val try_spend : t -> bool
(** Spend one token if at least one is available.  [false] means the
    budget is exhausted and the retry must not be sent. *)

val success : t -> unit
(** Credit one success: adds [refill] tokens, capped at capacity. *)

val tokens : t -> float
(** Current token count — always in [\[0, capacity\]]. *)

val capacity : t -> float

val spent : t -> int
(** Retries granted so far. *)

val denied : t -> int
(** Retries refused for lack of tokens. *)
