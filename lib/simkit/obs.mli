(** Observability context: one {!Metrics} registry plus one {!Span}
    collector, passed together through a system's constructors so every
    subsystem reports into the same place.

    Subsystems that accept [?obs] default to a private context, so
    instrumentation code stays unconditional: metrics land in a registry
    nobody reads (cheap) and spans hit a disabled collector (one flag
    check). *)

type t

val create : ?metrics:Metrics.t -> ?spans:Span.t -> unit -> t

val metrics : t -> Metrics.t

val spans : t -> Span.t

val set_clock : t -> (unit -> Time.t) -> unit
(** Convenience for [Span.set_clock (spans t)]. *)

(** {1 Global telemetry level}

    Re-export of {!Level}: one process-wide gate checked on hot paths
    before any telemetry allocation.  Default [Spans] (everything on);
    [Counters] suppresses span and label allocation; [Off] is the
    zero-cost path that also skips hot-path stat/probe/sample updates. *)

type level = Level.t = Off | Counters | Spans

val set_level : level -> unit

val level : unit -> level

val spans_on : unit -> bool

val counters_on : unit -> bool
