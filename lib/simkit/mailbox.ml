type 'a t = { mb_name : string; q : 'a Queue.t; mutable waiters : (unit -> unit) list }

let create ?(name = "") () = { mb_name = name; q = Queue.create (); waiters = [] }

let name t = t.mb_name

let wake_all t =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (fun w -> w ()) ws

let send t v =
  Queue.push v t.q;
  wake_all t

let length t = Queue.length t.q

let is_empty t = Queue.is_empty t.q

let try_recv t = Queue.take_opt t.q

let rec recv t =
  match Queue.take_opt t.q with
  | Some v -> v
  | None ->
      Sim.suspend (fun waker -> t.waiters <- waker :: t.waiters);
      recv t

let recv_timeout t span =
  let sim = Sim.current () in
  let deadline = Sim.now sim + span in
  let rec loop () =
    match Queue.take_opt t.q with
    | Some v -> Some v
    | None ->
        if Sim.now sim >= deadline then None
        else begin
          let cancel = ref ignore in
          let me = ref ignore in
          Sim.suspend (fun waker ->
              me := waker;
              t.waiters <- waker :: t.waiters;
              cancel := Sim.at_time_cancel sim ~time:deadline waker);
          (* Whichever side woke us, retire the other: drop the deadline
             event from the heap and our spent waker from the list. *)
          !cancel ();
          t.waiters <- List.filter (fun w -> w != !me) t.waiters;
          loop ()
        end
  in
  loop ()
