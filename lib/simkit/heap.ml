type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = { mutable a : 'a entry array; mutable n : int }

let create () = { a = [||]; n = 0 }

let is_empty t = t.n = 0

let length t = t.n

let less e1 e2 = e1.key < e2.key || (e1.key = e2.key && e1.seq < e2.seq)

let grow t e =
  let cap = Array.length t.a in
  if t.n = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let na = Array.make ncap e in
    Array.blit t.a 0 na 0 t.n;
    t.a <- na
  end

let push t ~key ~seq value =
  let e = { key; seq; value } in
  grow t e;
  t.a.(t.n) <- e;
  t.n <- t.n + 1;
  (* Sift up. *)
  let i = ref (t.n - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less t.a.(!i) t.a.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.a.(p) in
    t.a.(p) <- t.a.(!i);
    t.a.(!i) <- tmp;
    i := p
  done

let sift_down t start =
  let i = ref start in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.n && less t.a.(l) t.a.(!smallest) then smallest := l;
    if r < t.n && less t.a.(r) t.a.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.a.(!smallest) in
      t.a.(!smallest) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := !smallest
    end
  done

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.a.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.a.(0) <- t.a.(t.n);
      sift_down t 0
    end;
    Some (top.key, top.seq, top.value)
  end

let peek_key t = if t.n = 0 then None else Some t.a.(0).key

let pop_le t ~max = if t.n = 0 || t.a.(0).key > max then None else pop t

let filter t keep =
  let m = ref 0 in
  for i = 0 to t.n - 1 do
    if keep t.a.(i).value then begin
      t.a.(!m) <- t.a.(i);
      incr m
    end
  done;
  t.n <- !m;
  (* Bottom-up heapify; the (key, seq) order of survivors is unchanged,
     so subsequent pops stay deterministic. *)
  for i = (t.n / 2) - 1 downto 0 do
    sift_down t i
  done
