(* Critical-path attribution over span DAGs.

   Streaming consumer of finished spans: records accumulate per trace
   until the trace's root arrives (the root span of a transaction is the
   last of its trace to finish), then the whole DAG is walked backwards
   from the ack and every nanosecond of the root's interval is attributed
   to exactly one span — the deepest one covering it — split into queue
   and service time.  The tiling is exact by construction, so a trace's
   hop durations sum to its measured ack latency. *)

type hop = {
  h_name : string;  (* "track:name" *)
  h_count : int;
  h_queue : int;
  h_service : int;
}

type ex_hop = { xh_name : string; xh_queue : int; xh_service : int }

type exemplar = {
  ex_trace : int;
  ex_root : string;
  ex_ack : int;
  ex_hops : ex_hop list;  (* ranked, heaviest first *)
  ex_records : Span.record list;  (* the full DAG, walk-reachable links included *)
}

type agg = { mutable a_count : int; mutable a_queue : int; mutable a_service : int }

type bucket = { b_seq : int; mutable b_recs : Span.record list; mutable b_n : int }

type t = {
  ex_cap : int;
  max_pending : int;
  recent_cap : int;
  pending : (int, bucket) Hashtbl.t;  (* trace id -> unfinalized records *)
  mutable pending_n : int;
  mutable seq : int;
  (* Sliding window of every finished span by id, traced or not, so the
     walk can resolve "link" edges that point outside the trace (the
     group-commit flush a waiter piggybacked on) — plus a parent index
     over the same window so the flush's own children (volume writes)
     keep their attribution. *)
  recent : (int, Span.record) Hashtbl.t;
  recent_kids : (int, int list ref) Hashtbl.t;
  recent_q : int Queue.t;
  aggs : (string, agg) Hashtbl.t;
  lat : Stat.t;
  mutable n_txns : int;
  mutable n_evicted : int;
  mutable exs : exemplar list;  (* slowest first, length <= ex_cap *)
}

let create ?(exemplars = 32) ?(max_pending = 100_000) ?(recent = 8192) () =
  {
    ex_cap = exemplars;
    max_pending;
    recent_cap = recent;
    pending = Hashtbl.create 64;
    pending_n = 0;
    seq = 0;
    recent = Hashtbl.create 1024;
    recent_kids = Hashtbl.create 1024;
    recent_q = Queue.create ();
    aggs = Hashtbl.create 64;
    lat = Stat.create ~name:"critpath.ack_ns" ();
    n_txns = 0;
    n_evicted = 0;
    exs = [];
  }

let queue_of (r : Span.record) =
  List.fold_left
    (fun acc (k, v) ->
      if k = "queue_ns" then
        acc + (match int_of_string_opt v with Some n -> n | None -> 0)
      else acc)
    0 r.Span.r_args

let link_ids (r : Span.record) =
  List.filter_map
    (fun (k, v) -> if k = "link" then int_of_string_opt v else None)
    r.Span.r_args

let remember t (r : Span.record) =
  Hashtbl.replace t.recent r.Span.r_id r;
  (match r.Span.r_parent with
  | Some p -> (
      match Hashtbl.find_opt t.recent_kids p with
      | Some l -> l := r.Span.r_id :: !l
      | None -> Hashtbl.replace t.recent_kids p (ref [ r.Span.r_id ]))
  | None -> ());
  Queue.push r.Span.r_id t.recent_q;
  while Queue.length t.recent_q > t.recent_cap do
    let old = Queue.pop t.recent_q in
    (match Hashtbl.find_opt t.recent old with
    | Some o -> (
        match o.Span.r_parent with
        | Some p -> (
            match Hashtbl.find_opt t.recent_kids p with
            | Some l ->
                l := List.filter (fun i -> i <> old) !l;
                if !l = [] then Hashtbl.remove t.recent_kids p
            | None -> ())
        | None -> ())
    | None -> ());
    Hashtbl.remove t.recent old
  done

let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun trace b acc ->
        match acc with
        | Some (_, best) when best.b_seq <= b.b_seq -> acc
        | _ -> Some (trace, b))
      t.pending None
  in
  match victim with
  | None -> ()
  | Some (trace, b) ->
      Hashtbl.remove t.pending trace;
      t.pending_n <- t.pending_n - b.b_n;
      t.n_evicted <- t.n_evicted + 1

let hop_key (r : Span.record) = r.Span.r_track ^ ":" ^ r.Span.r_name

(* Walk the trace backwards from the root's ack.  [go r lo hi] owns the
   interval [lo, hi]: children and resolved links claim their (clipped)
   sub-intervals latest-end-first, everything left over is [r]'s own time,
   split queue/service against the queue prefix [r_start, r_start + q].
   A node is consumed at most once; when a diamond or link cycle would
   revisit one, the overlap stays with the current owner — the tiling
   never loses or double-counts a nanosecond. *)
let walk ~children ~resolve (root : Span.record) =
  let visited = Hashtbl.create 64 in
  let steps = ref [] in
  let extern = ref [] in
  let rec go (r : Span.record) lo hi =
    if hi > lo && not (Hashtbl.mem visited r.Span.r_id) then begin
      Hashtbl.add visited r.Span.r_id ();
      let kids =
        children r.Span.r_id
        @ List.filter_map
            (fun lid ->
              match resolve lid with
              | Some (k, is_ext) ->
                  if is_ext then extern := (k : Span.record) :: !extern;
                  Some k
              | None -> None)
            (link_ids r)
      in
      let kids =
        List.filter
          (fun (k : Span.record) ->
            min hi k.Span.r_end > max lo k.Span.r_start
            && not (Hashtbl.mem visited k.Span.r_id))
          kids
        |> List.sort (fun (a : Span.record) (b : Span.record) ->
               compare b.Span.r_end a.Span.r_end)
      in
      let self = ref [] in
      let cursor = ref hi in
      List.iter
        (fun (k : Span.record) ->
          if not (Hashtbl.mem visited k.Span.r_id) then begin
            let k_hi = min !cursor k.Span.r_end in
            let k_lo = max lo k.Span.r_start in
            if k_hi > k_lo then begin
              if k_hi < !cursor then self := (k_hi, !cursor) :: !self;
              go k k_lo k_hi;
              cursor := k_lo
            end
          end)
        kids;
      if !cursor > lo then self := (lo, !cursor) :: !self;
      let qz_end = r.Span.r_start + queue_of r in
      let q = ref 0 and s = ref 0 in
      List.iter
        (fun (a, b) ->
          let qa = max a r.Span.r_start and qb = min b qz_end in
          let overlap = max 0 (qb - qa) in
          q := !q + overlap;
          s := !s + (b - a) - overlap)
        !self;
      if !q > 0 || !s > 0 then steps := (r, !q, !s) :: !steps
    end
  in
  go root root.Span.r_start root.Span.r_end;
  (List.rev !steps, !extern)

let finalize t (root : Span.record) recs =
  let all = root :: recs in
  let by_id = Hashtbl.create 64 in
  let kids = Hashtbl.create 64 in
  List.iter
    (fun (r : Span.record) ->
      Hashtbl.replace by_id r.Span.r_id r;
      match r.Span.r_parent with
      | Some p -> (
          match Hashtbl.find_opt kids p with
          | Some l -> l := r :: !l
          | None -> Hashtbl.replace kids p (ref [ r ]))
      | None -> ())
    all;
  let children id =
    let in_trace =
      match Hashtbl.find_opt kids id with Some l -> !l | None -> []
    in
    if Hashtbl.mem by_id id then in_trace
    else
      (* A walk-reachable external node (a linked flush): pull its
         children from the sliding window instead. *)
      match Hashtbl.find_opt t.recent_kids id with
      | Some l -> List.filter_map (Hashtbl.find_opt t.recent) !l
      | None -> in_trace
  in
  let resolve lid =
    match Hashtbl.find_opt by_id lid with
    | Some r -> Some (r, false)
    | None -> (
        match Hashtbl.find_opt t.recent lid with
        | Some r -> Some (r, true)
        | None -> None)
  in
  let steps, extern = walk ~children ~resolve root in
  let ack = root.Span.r_end - root.Span.r_start in
  t.n_txns <- t.n_txns + 1;
  Stat.add t.lat (float_of_int ack);
  List.iter
    (fun ((r : Span.record), q, s) ->
      let key = hop_key r in
      let a =
        match Hashtbl.find_opt t.aggs key with
        | Some a -> a
        | None ->
            let a = { a_count = 0; a_queue = 0; a_service = 0 } in
            Hashtbl.replace t.aggs key a;
            a
      in
      a.a_count <- a.a_count + 1;
      a.a_queue <- a.a_queue + q;
      a.a_service <- a.a_service + s)
    steps;
  (* Reservoir of the slowest traces, full DAG kept for export. *)
  let full = List.length t.exs >= t.ex_cap in
  let floor =
    match List.rev t.exs with last :: _ when full -> last.ex_ack | _ -> min_int
  in
  if (not full) || ack > floor then begin
    let ex_hops =
      List.map (fun (r, q, s) -> { xh_name = hop_key r; xh_queue = q; xh_service = s }) steps
      |> List.sort (fun a b ->
             compare (b.xh_queue + b.xh_service) (a.xh_queue + a.xh_service))
    in
    let ex =
      {
        ex_trace = root.Span.r_trace;
        ex_root = hop_key root;
        ex_ack = ack;
        ex_hops;
        ex_records = all @ extern;
      }
    in
    let merged =
      List.sort (fun a b -> compare b.ex_ack a.ex_ack) (ex :: t.exs)
    in
    t.exs <-
      (if List.length merged > t.ex_cap then
         List.filteri (fun i _ -> i < t.ex_cap) merged
       else merged)
  end

let observe t (r : Span.record) =
  remember t r;
  if r.Span.r_trace >= 0 then
    match r.Span.r_parent with
    | None -> (
        match Hashtbl.find_opt t.pending r.Span.r_trace with
        | Some b ->
            Hashtbl.remove t.pending r.Span.r_trace;
            t.pending_n <- t.pending_n - b.b_n;
            finalize t r b.b_recs
        | None -> finalize t r [])
    | Some _ ->
        let b =
          match Hashtbl.find_opt t.pending r.Span.r_trace with
          | Some b -> b
          | None ->
              let b = { b_seq = t.seq; b_recs = []; b_n = 0 } in
              t.seq <- t.seq + 1;
              Hashtbl.replace t.pending r.Span.r_trace b;
              b
        in
        b.b_recs <- r :: b.b_recs;
        b.b_n <- b.b_n + 1;
        t.pending_n <- t.pending_n + 1;
        while t.pending_n > t.max_pending do
          evict_oldest t
        done

let attach t spans = Span.set_consumer spans (Some (observe t))

let txns t = t.n_txns

let evicted t = t.n_evicted

let pending_traces t = Hashtbl.length t.pending

let latency t = t.lat

let hops t =
  Hashtbl.fold
    (fun name a acc ->
      { h_name = name; h_count = a.a_count; h_queue = a.a_queue; h_service = a.a_service }
      :: acc)
    t.aggs []
  |> List.sort (fun a b ->
         compare (b.h_queue + b.h_service) (a.h_queue + a.h_service))

let exemplars t = t.exs

let hop_json h =
  Json.Obj
    [
      ("hop", Json.String h.h_name);
      ("count", Json.Int h.h_count);
      ("queue_ns", Json.Int h.h_queue);
      ("service_ns", Json.Int h.h_service);
      ("total_ns", Json.Int (h.h_queue + h.h_service));
    ]

let exemplar_json ex =
  let hop_sum =
    List.fold_left (fun acc xh -> acc + xh.xh_queue + xh.xh_service) 0 ex.ex_hops
  in
  Json.Obj
    [
      ("trace", Json.Int ex.ex_trace);
      ("root", Json.String ex.ex_root);
      ("ack_ns", Json.Int ex.ex_ack);
      ("hop_sum_ns", Json.Int hop_sum);
      ("spans", Json.Int (List.length ex.ex_records));
      ( "hops",
        Json.List
          (List.map
             (fun xh ->
               Json.Obj
                 [
                   ("hop", Json.String xh.xh_name);
                   ("queue_ns", Json.Int xh.xh_queue);
                   ("service_ns", Json.Int xh.xh_service);
                 ])
             ex.ex_hops) );
    ]

let to_json t =
  let s = Stat.summary t.lat in
  Json.Obj
    [
      ("txns", Json.Int t.n_txns);
      ("evicted_traces", Json.Int t.n_evicted);
      ( "ack_latency",
        Json.Obj
          [
            ("count", Json.Int s.Stat.n);
            ("mean_ns", Json.Float s.Stat.mean);
            ("p50_ns", Json.Float s.Stat.p50);
            ("p99_ns", Json.Float s.Stat.p99);
            ("max_ns", Json.Float s.Stat.max);
          ] );
      ("hops", Json.List (List.map hop_json (hops t)));
      ("exemplars", Json.List (List.map exemplar_json t.exs));
    ]

let pp fmt t =
  let s = Stat.summary t.lat in
  Format.fprintf fmt "critical path over %d txns (ack p50 %.1f us, p99 %.1f us)@."
    t.n_txns (s.Stat.p50 /. 1e3) (s.Stat.p99 /. 1e3);
  let total =
    List.fold_left (fun acc h -> acc + h.h_queue + h.h_service) 0 (hops t)
  in
  Format.fprintf fmt "  %-28s %8s %12s %12s %7s@." "hop" "count" "queue_us"
    "service_us" "share";
  List.iter
    (fun h ->
      Format.fprintf fmt "  %-28s %8d %12.1f %12.1f %6.1f%%@." h.h_name h.h_count
        (float_of_int h.h_queue /. 1e3)
        (float_of_int h.h_service /. 1e3)
        (100.0 *. float_of_int (h.h_queue + h.h_service) /. float_of_int (max 1 total)))
    (hops t);
  match t.exs with
  | [] -> ()
  | ex :: _ ->
      Format.fprintf fmt "  slowest txn: trace %d, ack %.1f us, top hop %s@."
        ex.ex_trace
        (float_of_int ex.ex_ack /. 1e3)
        (match ex.ex_hops with xh :: _ -> xh.xh_name | [] -> "-")
