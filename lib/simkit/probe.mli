(** Busy-time / queue-depth accounting for one resource.

    A probe is the convention every simulated resource (volume, message
    server, fabric rail, PM device, CPU) uses to report the two numbers
    queueing theory cares about: how busy it was ({!busy_span}) and how
    many requests were resident over time ({!enqueue}/{!dequeue}, whose
    depth-weighted integral gives the mean queue length).  The
    time-series sampler ({!Timeseries}) turns deltas of these cumulative
    totals into per-interval utilization and mean queue length, and the
    bottleneck-attribution report ranks resources by them.

    Call {!enqueue} when a request enters the resource (arrival or
    admission to its queue), {!dequeue} when it leaves (completion or
    failure), and {!busy_span} with each span the resource spent
    actually serving.  For an aggregate probe shared by several
    components (e.g. every message server feeding one [msgsys.inbox]
    probe) utilization can legitimately exceed 1.0.

    The depth integral needs a clock; without one ({!set_clock} never
    called) depth and counts still work but the integral stays zero. *)

type t

val create : ?clock:(unit -> Time.t) -> name:string -> unit -> t

val name : t -> string

val set_clock : t -> (unit -> Time.t) -> unit
(** Attach (or replace) the clock.  Resets the depth-integral epoch to
    the clock's current reading. *)

val enqueue : t -> unit

val dequeue : t -> unit
(** Depth is floored at zero: a stray dequeue (e.g. a drain path racing
    a failure path) never drives it negative. *)

val busy_span : t -> Time.span -> unit
(** Accumulate service time.  Negative or zero spans are ignored. *)

val depth : t -> int
(** Requests currently resident. *)

val max_depth : t -> int

val enqueued : t -> int

val dequeued : t -> int

val busy_total : t -> Time.span
(** Cumulative service time. *)

val depth_integral : ?at:Time.t -> t -> float
(** The depth-weighted time integral (ns-items) up to [at] (default:
    the clock's current reading).  Divide a delta of this by the
    interval to get the mean queue length over that interval.  Pure:
    does not advance the probe's internal epoch. *)
