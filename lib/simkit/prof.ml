(* All-float records: OCaml stores them flat, so mutating a field writes
   in place instead of boxing a fresh float.  The profiler must not
   pollute the very minor-word counts it reports. *)
type acct = {
  mutable a_events : float;
  mutable a_wall : float;
  mutable a_minor : float;
  mutable a_major : float;
  mutable a_discarded : float;
}

let fresh_acct () =
  { a_events = 0.; a_wall = 0.; a_minor = 0.; a_major = 0.; a_discarded = 0. }

type t = {
  layers : (string, acct) Hashtbl.t;
  total : acct;
  mutable heap_hwm : int;
  mutable envelopes : int;
  mutable packets : int;
  mutable pm_writes : int;
  (* Dispatch-entry marks: wall seconds, minor words, major words. *)
  marks : float array;
  mutable installed : Sim.t option;
  mutable t0_wall : float;
}

type section = {
  s_wall : float;
  s_minor : float;
  s_major : float;
  s_events : float;
}

(* Shared sentinel returned by [section_begin] when no profiler is
   installed: the disabled path allocates nothing. *)
let none = { s_wall = 0.; s_minor = 0.; s_major = 0.; s_events = -1. }

let current : t option ref = ref None

let now_s () = Unix.gettimeofday ()

let create () =
  {
    layers = Hashtbl.create 16;
    total = fresh_acct ();
    heap_hwm = 0;
    envelopes = 0;
    packets = 0;
    pm_writes = 0;
    marks = Array.make 3 0.;
    installed = None;
    t0_wall = 0.;
  }

let enabled () = !current != None

let install p sim =
  (match !current with
  | Some _ -> invalid_arg "Prof.install: a profiler is already installed"
  | None -> ());
  p.installed <- Some sim;
  p.t0_wall <- now_s ();
  current := Some p;
  let before qdepth =
    (* [qdepth] excludes the event just popped; count it back in. *)
    if qdepth + 1 > p.heap_hwm then p.heap_hwm <- qdepth + 1;
    let mi, _, ma = Gc.counters () in
    p.marks.(0) <- now_s ();
    p.marks.(1) <- mi;
    p.marks.(2) <- ma
  in
  let after () =
    let mi, _, ma = Gc.counters () in
    let tot = p.total in
    tot.a_wall <- tot.a_wall +. (now_s () -. p.marks.(0));
    tot.a_minor <- tot.a_minor +. (mi -. p.marks.(1));
    tot.a_major <- tot.a_major +. (ma -. p.marks.(2));
    tot.a_events <- tot.a_events +. 1.
  in
  Sim.set_dispatch_hooks sim ~before ~after

let uninstall p =
  (match p.installed with
  | Some sim -> Sim.clear_dispatch_hooks sim
  | None -> ());
  p.installed <- None;
  (match !current with Some q when q == p -> current := None | _ -> ())

let layer_acct p name =
  match Hashtbl.find_opt p.layers name with
  | Some a -> a
  | None ->
      let a = fresh_acct () in
      Hashtbl.add p.layers name a;
      a

let section_begin () =
  match !current with
  | None -> none
  | Some p ->
      let mi, _, ma = Gc.counters () in
      { s_wall = now_s (); s_minor = mi; s_major = ma; s_events = p.total.a_events }

let section_end s layer =
  if s != none then
    match !current with
    | None -> ()
    | Some p ->
        let a = layer_acct p layer in
        if p.total.a_events <> s.s_events then
          (* An event boundary (suspension) was crossed between begin and
             end: the deltas would include unrelated handlers.  Drop the
             sample but account the drop. *)
          a.a_discarded <- a.a_discarded +. 1.
        else begin
          let mi, _, ma = Gc.counters () in
          a.a_events <- a.a_events +. 1.;
          a.a_wall <- a.a_wall +. (now_s () -. s.s_wall);
          a.a_minor <- a.a_minor +. (mi -. s.s_minor);
          a.a_major <- a.a_major +. (ma -. s.s_major)
        end

(* Hot-path counters: one option check when disabled. *)

let bump_envelope () =
  match !current with None -> () | Some p -> p.envelopes <- p.envelopes + 1

let bump_packets n =
  match !current with None -> () | Some p -> p.packets <- p.packets + n

let bump_pm_write () =
  match !current with None -> () | Some p -> p.pm_writes <- p.pm_writes + 1

(* Report accessors. *)

let events p = int_of_float p.total.a_events

let wall_total p = p.total.a_wall

let minor_words p = p.total.a_minor

let major_words p = p.total.a_major

let wall_elapsed p = now_s () -. p.t0_wall

let heap_depth_hwm p = p.heap_hwm

let envelope_count p = p.envelopes

let packet_count p = p.packets

let pm_write_count p = p.pm_writes

type layer_row = {
  l_name : string;
  l_events : int;
  l_wall : float;
  l_minor : float;
  l_major : float;
  l_discarded : int;
}

let layer_rows p =
  Hashtbl.fold
    (fun name a rows ->
      {
        l_name = name;
        l_events = int_of_float a.a_events;
        l_wall = a.a_wall;
        l_minor = a.a_minor;
        l_major = a.a_major;
        l_discarded = int_of_float a.a_discarded;
      }
      :: rows)
    p.layers []
  |> List.sort (fun r1 r2 -> compare r2.l_wall r1.l_wall)
