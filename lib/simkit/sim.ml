type pid = int

type exit_reason = Normal | Killed | Crashed of exn

type proc = {
  pid : pid;
  pname : string;
  mutable alive : bool;
  mutable reason : exit_reason option;
  mutable exit_hooks : (exit_reason -> unit) list;
}

type hooks = { h_before : int -> unit; h_after : unit -> unit }

(* An event is disarmed either when it fires or when it is cancelled;
   cancelled entries stay in the heap (lazy deletion) until the pop loop
   skips them or a compaction sweep drops them wholesale. *)
type event = { mutable armed : bool; ev_thunk : unit -> unit }

type t = {
  mutable now : Time.t;
  events : event Heap.t;
  mutable stale : int;  (** cancelled entries still sitting in [events] *)
  mutable seq : int;
  root_rng : Rng.t;
  procs : (pid, proc) Hashtbl.t;
  mutable next_pid : int;
  mutable live : int;
  mutable stopping : bool;
  on_crash : [ `Raise | `Record ];
  mutable crash_log : (pid * string * exn) list;
  mutable hooks : hooks option;
}

exception Not_in_process
exception Killed_exn

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Self_eff : (t * proc) Effect.t

let create ?(seed = 0x5EEDL) ?(on_crash = `Raise) () =
  {
    now = Time.zero;
    events = Heap.create ();
    stale = 0;
    seq = 0;
    root_rng = Rng.create seed;
    procs = Hashtbl.create 64;
    next_pid = 1;
    live = 0;
    stopping = false;
    on_crash;
    crash_log = [];
    hooks = None;
  }

let set_dispatch_hooks t ~before ~after =
  t.hooks <- Some { h_before = before; h_after = after }

let clear_dispatch_hooks t = t.hooks <- None

let queue_depth t = Heap.length t.events - t.stale

let heap_size t = Heap.length t.events

let now t = t.now

let rng t = t.root_rng

let schedule_event t ~time thunk =
  if time < t.now then invalid_arg "Sim: scheduling in the past";
  t.seq <- t.seq + 1;
  let e = { armed = true; ev_thunk = thunk } in
  Heap.push t.events ~key:time ~seq:t.seq e;
  e

let schedule t ~time thunk = ignore (schedule_event t ~time thunk : event)

(* Compact once stale entries dominate, so heavy timeout use cannot grow
   the heap beyond ~2x the live event count. *)
let cancel_event t e =
  if e.armed then begin
    e.armed <- false;
    t.stale <- t.stale + 1;
    if t.stale > 64 && 2 * t.stale > Heap.length t.events then begin
      Heap.filter t.events (fun ev -> ev.armed);
      t.stale <- 0
    end
  end

let at t ~after thunk =
  if after < 0 then invalid_arg "Sim.at: negative span";
  schedule t ~time:(t.now + after) thunk

let at_time t ~time thunk = schedule t ~time thunk

let at_time_cancel t ~time thunk =
  let e = schedule_event t ~time thunk in
  fun () -> cancel_event t e

let finish t p reason =
  if p.alive then begin
    p.alive <- false;
    p.reason <- Some reason;
    t.live <- t.live - 1;
    let hooks = p.exit_hooks in
    p.exit_hooks <- [];
    List.iter (fun h -> h reason) hooks
  end

let exec t p body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> finish t p Normal);
      exnc =
        (fun e ->
          match e with
          | Killed_exn -> finish t p Killed
          | e -> (
              finish t p (Crashed e);
              match t.on_crash with
              | `Raise -> raise e
              | `Record -> t.crash_log <- (p.pid, p.pname, e) :: t.crash_log));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let fired = ref false in
                  let waker () =
                    if not !fired then begin
                      fired := true;
                      schedule t ~time:t.now (fun () ->
                          if p.alive then continue k ()
                          else
                            (* The process was killed while parked: unwind
                               the fiber so its handler records the exit. *)
                            discontinue k Killed_exn)
                    end
                  in
                  register waker)
          | Self_eff -> Some (fun (k : (a, unit) continuation) -> continue k (t, p))
          | _ -> None);
    }

let spawn t ~name body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let p = { pid; pname = name; alive = true; reason = None; exit_hooks = [] } in
  Hashtbl.replace t.procs pid p;
  t.live <- t.live + 1;
  schedule t ~time:t.now (fun () -> if p.alive then exec t p body);
  pid

let proc_exn t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg "Sim: unknown pid"

let kill t pid =
  let p = proc_exn t pid in
  if p.alive then finish t p Killed

let on_exit t pid hook =
  let p = proc_exn t pid in
  match p.reason with
  | Some r -> hook r
  | None -> p.exit_hooks <- hook :: p.exit_hooks

let is_alive t pid = (proc_exn t pid).alive

let process_name t pid = (proc_exn t pid).pname

let crashed t = t.crash_log

let live_processes t = t.live

let stop t = t.stopping <- true

(* The loop body is hoisted so both run variants share one copy and the
   common (unhooked) path stays a single heap access per event. *)
let[@inline] dispatch t time thunk =
  t.now <- time;
  match t.hooks with
  | None -> thunk ()
  | Some h ->
      h.h_before (Heap.length t.events - t.stale);
      thunk ();
      h.h_after ()

(* A cancelled entry is skipped without advancing the clock, so behavior
   is identical whether or not a compaction sweep already dropped it. *)
let[@inline] dispatch_event t time e =
  if e.armed then begin
    e.armed <- false;
    dispatch t time e.ev_thunk
  end
  else t.stale <- t.stale - 1

let run ?until t =
  t.stopping <- false;
  match until with
  | None ->
      let continue = ref true in
      while !continue && not t.stopping do
        match Heap.pop t.events with
        | None -> continue := false
        | Some (time, _, e) -> dispatch_event t time e
      done
  | Some u ->
      let continue = ref true in
      while !continue && not t.stopping do
        match Heap.pop_le t.events ~max:u with
        | None ->
            (* Past-the-bound events stay queued; the clock advances to
               the bound only if something live remains to run later
               (stale cancelled entries don't count — whether compaction
               already dropped them must not change the outcome). *)
            if Heap.length t.events > t.stale then t.now <- u;
            continue := false
        | Some (time, _, e) -> dispatch_event t time e
      done

(* Process-context operations. *)

let self_full () =
  try Effect.perform Self_eff with Effect.Unhandled _ -> raise Not_in_process

let self () =
  let _, p = self_full () in
  p.pid

let current () =
  let t, _ = self_full () in
  t

let suspend register =
  try Effect.perform (Suspend register) with Effect.Unhandled _ -> raise Not_in_process

let sleep span =
  if span < 0 then invalid_arg "Sim.sleep: negative span";
  let t, _ = self_full () in
  suspend (fun waker -> schedule t ~time:(t.now + span) waker)

let wait_until time =
  let t, _ = self_full () in
  if time > t.now then suspend (fun waker -> schedule t ~time waker)

let yield () =
  let t, _ = self_full () in
  suspend (fun waker -> schedule t ~time:t.now waker)
