type pid = int

type exit_reason = Normal | Killed | Crashed of exn

type proc = {
  pid : pid;
  pname : string;
  mutable alive : bool;
  mutable reason : exit_reason option;
  mutable exit_hooks : (exit_reason -> unit) list;
}

type hooks = { h_before : int -> unit; h_after : unit -> unit }

type t = {
  mutable now : Time.t;
  events : (unit -> unit) Heap.t;
  mutable seq : int;
  root_rng : Rng.t;
  procs : (pid, proc) Hashtbl.t;
  mutable next_pid : int;
  mutable live : int;
  mutable stopping : bool;
  on_crash : [ `Raise | `Record ];
  mutable crash_log : (pid * string * exn) list;
  mutable hooks : hooks option;
}

exception Not_in_process
exception Killed_exn

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Self_eff : (t * proc) Effect.t

let create ?(seed = 0x5EEDL) ?(on_crash = `Raise) () =
  {
    now = Time.zero;
    events = Heap.create ();
    seq = 0;
    root_rng = Rng.create seed;
    procs = Hashtbl.create 64;
    next_pid = 1;
    live = 0;
    stopping = false;
    on_crash;
    crash_log = [];
    hooks = None;
  }

let set_dispatch_hooks t ~before ~after =
  t.hooks <- Some { h_before = before; h_after = after }

let clear_dispatch_hooks t = t.hooks <- None

let queue_depth t = Heap.length t.events

let now t = t.now

let rng t = t.root_rng

let schedule t ~time thunk =
  if time < t.now then invalid_arg "Sim: scheduling in the past";
  t.seq <- t.seq + 1;
  Heap.push t.events ~key:time ~seq:t.seq thunk

let at t ~after thunk =
  if after < 0 then invalid_arg "Sim.at: negative span";
  schedule t ~time:(t.now + after) thunk

let at_time t ~time thunk = schedule t ~time thunk

let finish t p reason =
  if p.alive then begin
    p.alive <- false;
    p.reason <- Some reason;
    t.live <- t.live - 1;
    let hooks = p.exit_hooks in
    p.exit_hooks <- [];
    List.iter (fun h -> h reason) hooks
  end

let exec t p body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> finish t p Normal);
      exnc =
        (fun e ->
          match e with
          | Killed_exn -> finish t p Killed
          | e -> (
              finish t p (Crashed e);
              match t.on_crash with
              | `Raise -> raise e
              | `Record -> t.crash_log <- (p.pid, p.pname, e) :: t.crash_log));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let fired = ref false in
                  let waker () =
                    if not !fired then begin
                      fired := true;
                      schedule t ~time:t.now (fun () ->
                          if p.alive then continue k ()
                          else
                            (* The process was killed while parked: unwind
                               the fiber so its handler records the exit. *)
                            discontinue k Killed_exn)
                    end
                  in
                  register waker)
          | Self_eff -> Some (fun (k : (a, unit) continuation) -> continue k (t, p))
          | _ -> None);
    }

let spawn t ~name body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let p = { pid; pname = name; alive = true; reason = None; exit_hooks = [] } in
  Hashtbl.replace t.procs pid p;
  t.live <- t.live + 1;
  schedule t ~time:t.now (fun () -> if p.alive then exec t p body);
  pid

let proc_exn t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg "Sim: unknown pid"

let kill t pid =
  let p = proc_exn t pid in
  if p.alive then finish t p Killed

let on_exit t pid hook =
  let p = proc_exn t pid in
  match p.reason with
  | Some r -> hook r
  | None -> p.exit_hooks <- hook :: p.exit_hooks

let is_alive t pid = (proc_exn t pid).alive

let process_name t pid = (proc_exn t pid).pname

let crashed t = t.crash_log

let live_processes t = t.live

let stop t = t.stopping <- true

(* The loop body is hoisted so both run variants share one copy and the
   common (unhooked) path stays a single heap access per event. *)
let[@inline] dispatch t time thunk =
  t.now <- time;
  match t.hooks with
  | None -> thunk ()
  | Some h ->
      h.h_before (Heap.length t.events);
      thunk ();
      h.h_after ()

let run ?until t =
  t.stopping <- false;
  match until with
  | None ->
      let continue = ref true in
      while !continue && not t.stopping do
        match Heap.pop t.events with
        | None -> continue := false
        | Some (time, _, thunk) -> dispatch t time thunk
      done
  | Some u ->
      let continue = ref true in
      while !continue && not t.stopping do
        match Heap.pop_le t.events ~max:u with
        | None ->
            (* Past-the-bound events stay queued; the clock advances to
               the bound only if something remains to run later. *)
            if not (Heap.is_empty t.events) then t.now <- u;
            continue := false
        | Some (time, _, thunk) -> dispatch t time thunk
      done

(* Process-context operations. *)

let self_full () =
  try Effect.perform Self_eff with Effect.Unhandled _ -> raise Not_in_process

let self () =
  let _, p = self_full () in
  p.pid

let current () =
  let t, _ = self_full () in
  t

let suspend register =
  try Effect.perform (Suspend register) with Effect.Unhandled _ -> raise Not_in_process

let sleep span =
  if span < 0 then invalid_arg "Sim.sleep: negative span";
  let t, _ = self_full () in
  suspend (fun waker -> schedule t ~time:(t.now + span) waker)

let wait_until time =
  let t, _ = self_full () in
  if time > t.now then suspend (fun waker -> schedule t ~time waker)

let yield () =
  let t, _ = self_full () in
  suspend (fun waker -> schedule t ~time:t.now waker)
