open Simkit

(** Causal-tracing runs: the hot-stock mix with spans enabled and every
    committed transaction's cross-node span DAG fed to a
    {!Simkit.Critpath} analyzer — where each transaction's microseconds
    actually went, queue vs service, hop by hop.

    By default the collector streams into the analyzer and retains
    nothing; with [~chrome:true] the records are kept and exported as a
    Chrome trace-event document (flow arrows included), and the analyzer
    is replayed from the retained records instead. *)

type mode_run = {
  cp_mode : Tp.System.log_mode;
  cp_committed : int;
  cp_elapsed : Time.span;
  cp : Critpath.t;
  cp_chrome : string option;  (** Chrome trace JSON when [chrome] was set *)
}

val run_mode :
  ?seed:int64 ->
  ?config:Tp.System.config ->
  ?drivers:int ->
  ?inserts_per_txn:int ->
  ?records_per_driver:int ->
  ?chrome:bool ->
  mode:Tp.System.log_mode ->
  unit ->
  mode_run
(** One single-node hot-stock cell ({!Figures.run_cell}) under tracing.
    Defaults: 2 drivers x 500 records, boxcar 8.  Deterministic for a
    given seed — same seed, same critical-path report. *)

type cluster_run = {
  cl_nodes : int;
  cl_committed : int;
  cl_failed : int;
  cl_elapsed : Time.span;
  cl_cp : Critpath.t;
  cl_chrome : string option;
}

val run_cluster :
  ?seed:int64 ->
  ?nodes:int ->
  ?drivers:int ->
  ?txns_per_driver:int ->
  ?inserts_per_txn:int ->
  ?record_bytes:int ->
  ?chrome:bool ->
  unit ->
  cluster_run
(** The distributed variant: a PM-mode cluster where every transaction
    spreads inserts across nodes and commits two-phase, so prepare and
    decide hops carry each branch's trace id across the interconnect and
    the analyzer sees whole cross-node DAGs. *)
