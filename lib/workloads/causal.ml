open Simkit

(* Causal-tracing runs: the hot-stock mix (or its distributed 2PC
   variant) with spans enabled and every transaction's cross-node DAG
   fed to a {!Simkit.Critpath} analyzer.  Streaming by default — the
   collector retains nothing — unless a Chrome trace export is wanted,
   in which case the collector keeps the records and the analyzer is
   replayed from them in finish order. *)

type mode_run = {
  cp_mode : Tp.System.log_mode;
  cp_committed : int;
  cp_elapsed : Time.span;
  cp : Critpath.t;
  cp_chrome : string option;
}

(* Replay a retained collector into an analyzer: observe order must be
   finish order (children and link targets before their trace's root),
   so sort by end time, deeper (higher-id) spans first on ties. *)
let replay cp spans =
  let by_finish =
    List.sort
      (fun (a : Span.record) (b : Span.record) ->
        match compare a.Span.r_end b.Span.r_end with
        | 0 -> compare b.Span.r_id a.Span.r_id
        | c -> c)
      (Span.records spans)
  in
  List.iter (Critpath.observe cp) by_finish

let run_mode ?(seed = 0xCA75AL) ?config ?(drivers = 2) ?(inserts_per_txn = 8)
    ?(records_per_driver = 500) ?(chrome = false) ~mode () =
  let obs = Obs.create () in
  Span.enable (Obs.spans obs);
  let cp = Critpath.create () in
  if not chrome then Critpath.attach cp (Obs.spans obs);
  let cell =
    Figures.run_cell ~seed ?config ~obs ~mode ~drivers ~inserts_per_txn
      ~records_per_driver ()
  in
  let chrome_json =
    if chrome then begin
      replay cp (Obs.spans obs);
      Some (Span.to_chrome_json (Obs.spans obs))
    end
    else None
  in
  {
    cp_mode = mode;
    cp_committed = cell.Figures.result.Hot_stock.committed;
    cp_elapsed = cell.Figures.result.Hot_stock.elapsed;
    cp = cp;
    cp_chrome = chrome_json;
  }

type cluster_run = {
  cl_nodes : int;
  cl_committed : int;
  cl_failed : int;
  cl_elapsed : Time.span;
  cl_cp : Critpath.t;
  cl_chrome : string option;
}

(* The distributed variant: every transaction spreads its inserts across
   the nodes and commits two-phase, so each branch's DAG crosses the
   interconnect — prepare and decide hops carry the branch's trace id to
   the remote monitor. *)
let run_cluster ?(seed = 0xC10CL) ?(nodes = 2) ?(drivers = 2) ?(txns_per_driver = 60)
    ?(inserts_per_txn = 4) ?(record_bytes = 1024) ?(chrome = false) () =
  if nodes < 2 then invalid_arg "Causal.run_cluster: need at least two nodes";
  let obs = Obs.create () in
  Span.enable (Obs.spans obs);
  let cp = Critpath.create () in
  if not chrome then Critpath.attach cp (Obs.spans obs);
  let cfg =
    {
      Tp.System.pm_config with
      Tp.System.log_mode = Tp.System.Pm_audit;
      txn_state_in_pm = true;
      seed;
    }
  in
  let sim = Sim.create ~seed () in
  let committed = ref 0 in
  let failed = ref 0 in
  let elapsed = ref Time.zero in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"causal-cluster" (fun () ->
        let cluster = Tp.Cluster.build sim ~nodes ~wan_latency:(Time.us 100) ~obs cfg in
        let gate = Gate.create drivers in
        let started = Sim.now sim in
        for index = 0 to drivers - 1 do
          let coordinator = index mod nodes in
          let home = Tp.Cluster.system cluster coordinator in
          let cfg = Tp.System.config home in
          let cpu =
            Nsk.Node.cpu (Tp.System.node home) (index mod cfg.Tp.System.worker_cpus)
          in
          ignore
            (Nsk.Cpu.spawn cpu
               ~name:(Printf.sprintf "causal-driver%d" index)
               (fun () ->
                 let files = cfg.Tp.System.files in
                 let key_base = (index + 1) * 100_000_000 in
                 for txn = 0 to txns_per_driver - 1 do
                   let keys =
                     List.init inserts_per_txn (fun i ->
                         let idx = (txn * inserts_per_txn) + i in
                         ((coordinator + idx) mod nodes, idx mod files, key_base + idx))
                   in
                   let dtx =
                     Tp.Dtx.begin_dtx cluster ~coordinator
                       ~cpu:(index mod cfg.Tp.System.worker_cpus)
                   in
                   let inserted =
                     List.fold_left
                       (fun acc (node, file, key) ->
                         match acc with
                         | Error _ as e -> e
                         | Ok () ->
                             Tp.Dtx.insert dtx ~node ~file ~key ~len:record_bytes)
                       (Ok ()) keys
                   in
                   match inserted with
                   | Error _ ->
                       incr failed;
                       ignore (Tp.Dtx.abort dtx)
                   | Ok () -> (
                       match Tp.Dtx.commit dtx with
                       | Ok () -> incr committed
                       | Error _ -> incr failed)
                 done;
                 Gate.arrive gate))
        done;
        Gate.await gate;
        elapsed := Sim.now sim - started)
  in
  Sim.run sim;
  let chrome_json =
    if chrome then begin
      replay cp (Obs.spans obs);
      Some (Span.to_chrome_json (Obs.spans obs))
    end
    else None
  in
  {
    cl_nodes = nodes;
    cl_committed = !committed;
    cl_failed = !failed;
    cl_elapsed = !elapsed;
    cl_cp = cp;
    cl_chrome = chrome_json;
  }
