(** Open-loop arrival schedules — alias of {!Simkit.Arrival}.

    The engine lives in simkit (so the drill layer can share it); this
    module re-exports it under the workloads namespace, where the
    open-loop drivers consume it. *)

include module type of Simkit.Arrival
