open Simkit

type cell = {
  mode : Tp.System.log_mode;
  drivers : int;
  inserts_per_txn : int;
  result : Hot_stock.result;
}

let config_for base mode =
  match mode with
  | Tp.System.Disk_audit -> { base with Tp.System.log_mode = Tp.System.Disk_audit }
  | Tp.System.Pm_audit ->
      { base with Tp.System.log_mode = Tp.System.Pm_audit; txn_state_in_pm = true }

let run_cell_sampled ?(seed = 0xF19L) ?config ?obs ?prof ?sample_interval
    ?sample_capacity ~mode ~drivers ~inserts_per_txn ~records_per_driver () =
  (match (sample_interval, obs) with
  | Some _, None ->
      invalid_arg "Figures.run_cell_sampled: sample_interval requires obs"
  | _ -> ());
  let base = Option.value config ~default:Tp.System.default_config in
  let cfg = config_for base mode in
  let sim = Sim.create ~seed () in
  (match prof with Some p -> Prof.install p sim | None -> ());
  let out = ref None in
  let ts = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"figure-cell" (fun () ->
        let system = Tp.System.build ?obs sim cfg in
        (match (sample_interval, obs) with
        | Some interval, Some o ->
            let t =
              Timeseries.create ?capacity:sample_capacity ~sim
                ~metrics:(Obs.metrics o) ~interval ()
            in
            Timeseries.start t;
            ts := Some t
        | _ -> ());
        let params =
          { Hot_stock.drivers; records_per_driver; record_bytes = 4096; inserts_per_txn }
        in
        let result = Hot_stock.run system params in
        (match !ts with Some t -> Timeseries.stop t | None -> ());
        out := Some result)
  in
  Sim.run sim;
  (match prof with Some p -> Prof.uninstall p | None -> ());
  match !out with
  | Some result -> ({ mode; drivers; inserts_per_txn; result }, !ts)
  | None -> failwith "Figures.run_cell: simulation did not complete"

let run_cell ?seed ?config ?obs ?prof ~mode ~drivers ~inserts_per_txn
    ~records_per_driver () =
  fst
    (run_cell_sampled ?seed ?config ?obs ?prof ~mode ~drivers ~inserts_per_txn
       ~records_per_driver ())

let boxcars = [ 8; 16; 32 ]

let label_of boxcar = Printf.sprintf "%dk" (boxcar * 4096 / 1024)

(* --- commit-latency breakdown --- *)

type stage = { stage_name : string; stage_ns : float; stage_share : float }

type mode_breakdown = {
  b_mode : Tp.System.log_mode;
  b_commits : int;
  b_rt_ns : float;
  b_stages : stage list;
  b_flush_share : float;
}

(* Where a committed transaction's response time goes, from the metrics
   registry: totals of the commit-path stage stats divided by the commit
   count give per-transaction contributions; whatever the instrumented
   stages don't explain (client issue CPU, messaging, data-volume writes
   overlapped with thinking) lands in "other".  The flush share — audit
   flush wait plus the MAT commit record — is the fraction the paper's PM
   trails attack. *)
let mode_breakdown ?(records_per_driver = 2_000) ?(drivers = 1) ?(boxcar = 8) mode =
  let obs = Obs.create () in
  let (_ : cell) =
    run_cell ~obs ~mode ~drivers ~inserts_per_txn:boxcar ~records_per_driver ()
  in
  let m = Obs.metrics obs in
  let rt = Stat.summary (Metrics.stat m "txn.response_ns") in
  let commits = rt.Stat.n in
  let per_txn path =
    if commits = 0 then 0.0 else Metrics.stat_total m path /. float_of_int commits
  in
  let share ns = if rt.Stat.mean > 0.0 then ns /. rt.Stat.mean else 0.0 in
  let lock_ns = per_txn "lock.wait_ns" in
  let flush_ns = per_txn "tmf.flush_wait_ns" in
  let mat_ns = per_txn "tmf.mat_write_ns" in
  let other_ns = Float.max 0.0 (rt.Stat.mean -. lock_ns -. flush_ns -. mat_ns) in
  let stage stage_name stage_ns = { stage_name; stage_ns; stage_share = share stage_ns } in
  {
    b_mode = mode;
    b_commits = commits;
    b_rt_ns = rt.Stat.mean;
    b_stages =
      [
        stage "lock wait" lock_ns;
        stage "audit flush wait" flush_ns;
        stage "commit record (MAT)" mat_ns;
        stage "other (issue, messaging, data writes)" other_ns;
      ];
    b_flush_share = share (flush_ns +. mat_ns);
  }

type breakdown = {
  bd_drivers : int;
  bd_boxcar : int;
  bd_disk : mode_breakdown;
  bd_pm : mode_breakdown;
  bd_disk_flush_share : float;
  bd_pm_flush_share : float;
}

let breakdown ?(records_per_driver = 2_000) ?(drivers = 1) ?(boxcar = 8) () =
  let disk =
    mode_breakdown ~records_per_driver ~drivers ~boxcar Tp.System.Disk_audit
  in
  let pm = mode_breakdown ~records_per_driver ~drivers ~boxcar Tp.System.Pm_audit in
  {
    bd_drivers = drivers;
    bd_boxcar = boxcar;
    bd_disk = disk;
    bd_pm = pm;
    bd_disk_flush_share = disk.b_flush_share;
    bd_pm_flush_share = pm.b_flush_share;
  }

(* --- Figure 1 --- *)

type fig1_point = {
  f1_drivers : int;
  f1_boxcar : int;
  txn_size : string;
  rt_disk_us : float;
  rt_pm_us : float;
  speedup : float;
}

let figure1 ?(records_per_driver = 32_000) ?(drivers_list = [ 1; 2; 3; 4 ]) () =
  let point drivers boxcar =
    let disk =
      run_cell ~mode:Tp.System.Disk_audit ~drivers ~inserts_per_txn:boxcar ~records_per_driver ()
    in
    let pm =
      run_cell ~mode:Tp.System.Pm_audit ~drivers ~inserts_per_txn:boxcar ~records_per_driver ()
    in
    let rt_disk_us = disk.result.Hot_stock.response.Stat.mean /. 1e3 in
    let rt_pm_us = pm.result.Hot_stock.response.Stat.mean /. 1e3 in
    {
      f1_drivers = drivers;
      f1_boxcar = boxcar;
      txn_size = label_of boxcar;
      rt_disk_us;
      rt_pm_us;
      speedup = (if rt_pm_us > 0.0 then rt_disk_us /. rt_pm_us else 0.0);
    }
  in
  List.concat_map (fun drivers -> List.map (point drivers) boxcars) drivers_list

(* --- Figure 2 --- *)

type fig2_point = {
  f2_drivers : int;
  f2_boxcar : int;
  f2_txn_size : string;
  elapsed_disk_s : float;
  elapsed_pm_s : float;
}

let figure2 ?(records_per_driver = 32_000) ?(drivers_list = [ 1; 2 ]) () =
  let point drivers boxcar =
    let disk =
      run_cell ~mode:Tp.System.Disk_audit ~drivers ~inserts_per_txn:boxcar ~records_per_driver ()
    in
    let pm =
      run_cell ~mode:Tp.System.Pm_audit ~drivers ~inserts_per_txn:boxcar ~records_per_driver ()
    in
    {
      f2_drivers = drivers;
      f2_boxcar = boxcar;
      f2_txn_size = label_of boxcar;
      elapsed_disk_s = Time.to_sec disk.result.Hot_stock.elapsed;
      elapsed_pm_s = Time.to_sec pm.result.Hot_stock.elapsed;
    }
  in
  List.concat_map (fun drivers -> List.map (point drivers) boxcars) drivers_list

(* --- E3: latency sweep --- *)

type latency_point = { penalty : Time.span; rt_us : float; speedup_vs_disk : float }

let latency_sweep ?(records_per_driver = 4_000) ?penalties () =
  let penalties =
    Option.value penalties
      ~default:[ 0; Time.us 50; Time.us 200; Time.ms 1; Time.ms 3; Time.ms 8 ]
  in
  let disk =
    run_cell ~mode:Tp.System.Disk_audit ~drivers:1 ~inserts_per_txn:8 ~records_per_driver ()
  in
  let rt_disk = disk.result.Hot_stock.response.Stat.mean /. 1e3 in
  let point penalty =
    let config = { Tp.System.pm_config with Tp.System.pm_write_penalty = penalty } in
    let pm =
      run_cell ~config ~mode:Tp.System.Pm_audit ~drivers:1 ~inserts_per_txn:8
        ~records_per_driver ()
    in
    let rt_us = pm.result.Hot_stock.response.Stat.mean /. 1e3 in
    { penalty; rt_us; speedup_vs_disk = (if rt_us > 0.0 then rt_disk /. rt_us else 0.0) }
  in
  List.map point penalties

(* --- E4: mirroring ablation --- *)

type mirror_point = { mirrored : bool; rt_us : float; elapsed_s : float }

let mirror_ablation ?(records_per_driver = 4_000) () =
  let point mirrored =
    let config = { Tp.System.pm_config with Tp.System.pm_mirrored = mirrored } in
    let c =
      run_cell ~config ~mode:Tp.System.Pm_audit ~drivers:2 ~inserts_per_txn:8
        ~records_per_driver ()
    in
    {
      mirrored;
      rt_us = c.result.Hot_stock.response.Stat.mean /. 1e3;
      elapsed_s = Time.to_sec c.result.Hot_stock.elapsed;
    }
  in
  [ point true; point false ]

(* --- E5: MTTR --- *)

type mttr_point = { m_mode : Tp.System.log_mode; report : Tp.Recovery.report; trail_bytes : int }

let mttr ?(records_per_driver = 2_000) () =
  let one mode =
    let cfg = config_for Tp.System.default_config mode in
    let sim = Sim.create ~seed:0x3117L () in
    let out = ref None in
    let (_ : Sim.pid) =
      Sim.spawn sim ~name:"mttr-main" (fun () ->
          let system = Tp.System.build sim cfg in
          let params =
            { Hot_stock.drivers = 2; records_per_driver; record_bytes = 4096; inserts_per_txn = 8 }
          in
          let (_ : Hot_stock.result) = Hot_stock.run system params in
          (* Crash: lose the in-memory images, then recover from trails. *)
          Array.iter (fun d -> Tp.Dp2.load_table d []) (Tp.System.dp2s system);
          match Tp.Recovery.run system with
          | Ok report ->
              out :=
                Some { m_mode = mode; report; trail_bytes = Tp.System.total_audit_bytes system }
          | Error e -> failwith ("recovery failed: " ^ e))
    in
    Sim.run sim;
    match !out with Some p -> p | None -> failwith "mttr run incomplete"
  in
  [ one Tp.System.Disk_audit; one Tp.System.Pm_audit ]

(* --- E6: ADPs per node --- *)

type adp_scaling_point = { adps : int; a_mode : Tp.System.log_mode; tps : float }

let adp_scaling ?(records_per_driver = 4_000) ?(counts = [ 1; 2; 4 ]) () =
  let one mode adps =
    let config = { (config_for Tp.System.default_config mode) with Tp.System.adps_per_node = adps } in
    let c =
      run_cell ~config ~mode ~drivers:4 ~inserts_per_txn:8 ~records_per_driver ()
    in
    { adps; a_mode = mode; tps = c.result.Hot_stock.throughput_tps }
  in
  List.concat_map
    (fun adps -> [ one Tp.System.Disk_audit adps; one Tp.System.Pm_audit adps ])
    counts

(* --- E9: checkpoint traffic --- *)

type ckpt_traffic_point = {
  c_mode : Tp.System.log_mode;
  committed_txns : int;
  audit_bytes : int;
  checkpoint_bytes : int;
  ckpt_bytes_per_txn : float;
}

let checkpoint_traffic ?(records_per_driver = 2_000) () =
  let one mode =
    let c = run_cell ~mode ~drivers:2 ~inserts_per_txn:8 ~records_per_driver () in
    let committed = c.result.Hot_stock.committed in
    {
      c_mode = mode;
      committed_txns = committed;
      audit_bytes = c.result.Hot_stock.audit_bytes;
      checkpoint_bytes = c.result.Hot_stock.checkpoint_bytes;
      ckpt_bytes_per_txn =
        (if committed = 0 then 0.0
         else float_of_int c.result.Hot_stock.checkpoint_bytes /. float_of_int committed);
    }
  in
  [ one Tp.System.Disk_audit; one Tp.System.Pm_audit ]

(* --- E8: shared-nothing scale-out --- *)

type scaleout_point = {
  s_nodes : int;
  s_mode : Tp.System.log_mode;
  aggregate_tps : float;
  per_node_tps : float;
}

let scaleout ?(records_per_driver = 2_000) ?(nodes_list = [ 1; 2; 4 ]) () =
  let one mode nodes =
    let cfg = config_for Tp.System.default_config mode in
    let sim = Sim.create ~seed:0x5CA1EL () in
    let committed = ref 0 in
    let gate = Gate.create nodes in
    let params =
      { Hot_stock.drivers = 2; records_per_driver; record_bytes = 4096; inserts_per_txn = 8 }
    in
    for _ = 1 to nodes do
      let (_ : Sim.pid) =
        Sim.spawn sim ~name:"node-main" (fun () ->
            let system = Tp.System.build sim cfg in
            let r = Hot_stock.run system params in
            committed := !committed + r.Hot_stock.committed;
            Gate.arrive gate)
      in
      ()
    done;
    let finished = ref Time.zero in
    let (_ : Sim.pid) =
      Sim.spawn sim ~name:"watcher" (fun () ->
          Gate.await gate;
          finished := Sim.now sim)
    in
    Sim.run sim;
    let seconds = Time.to_sec !finished in
    let aggregate = if seconds > 0.0 then float_of_int !committed /. seconds else 0.0 in
    { s_nodes = nodes; s_mode = mode; aggregate_tps = aggregate; per_node_tps = aggregate /. float_of_int nodes }
  in
  List.concat_map
    (fun nodes -> [ one Tp.System.Disk_audit nodes; one Tp.System.Pm_audit nodes ])
    nodes_list

(* --- E10: distributed transactions --- *)

type dtx_point = {
  d_mode : Tp.System.log_mode;
  local_rt_ms : float;
  dtx_rt_ms : float;
  protocol_overhead_ms : float;
}

let dtx_latency ?(transfers = 20) () =
  let one mode =
    let cfg = config_for Tp.System.default_config mode in
    let sim = Sim.create ~seed:0xD70L () in
    let out = ref None in
    let (_ : Sim.pid) =
      Sim.spawn sim ~name:"main" (fun () ->
          let cluster = Tp.Cluster.build sim ~nodes:2 ~wan_latency:(Time.us 100) cfg in
          let run_local key =
            let session = Tp.Cluster.local_session cluster ~node:0 ~cpu:2 in
            let t0 = Sim.now sim in
            (match Tp.Txclient.begin_txn session with
            | Error e -> failwith (Tp.Txclient.error_to_string e)
            | Ok txn -> (
                (match Tp.Txclient.insert session txn ~file:0 ~key ~len:64 () with
                | Ok () -> ()
                | Error e -> failwith (Tp.Txclient.error_to_string e));
                match Tp.Txclient.commit session txn with
                | Ok () -> ()
                | Error e -> failwith (Tp.Txclient.error_to_string e)));
            Sim.now sim - t0
          in
          let run_dtx key =
            let dtx = Tp.Dtx.begin_dtx cluster ~coordinator:0 ~cpu:3 in
            let t0 = Sim.now sim in
            (match Tp.Dtx.insert dtx ~node:0 ~file:1 ~key ~len:64 with
            | Ok () -> ()
            | Error e -> failwith (Tp.Txclient.error_to_string e));
            (match Tp.Dtx.insert dtx ~node:1 ~file:1 ~key ~len:64 with
            | Ok () -> ()
            | Error e -> failwith (Tp.Txclient.error_to_string e));
            (match Tp.Dtx.commit dtx with
            | Ok () -> ()
            | Error e -> failwith (Tp.Txclient.error_to_string e));
            Sim.now sim - t0
          in
          let avg f base =
            let total = ref 0 in
            for i = 1 to transfers do
              total := !total + f (base + i)
            done;
            float_of_int (!total / transfers) /. 1e6
          in
          let local = avg run_local 1_000 in
          let dtx = avg run_dtx 2_000 in
          out := Some { d_mode = mode; local_rt_ms = local; dtx_rt_ms = dtx;
                        protocol_overhead_ms = dtx -. local })
    in
    Sim.run sim;
    match !out with Some p -> p | None -> failwith "dtx run incomplete"
  in
  [ one Tp.System.Disk_audit; one Tp.System.Pm_audit ]

(* --- E7: failover under load --- *)

type failover_report = {
  committed_before : int;
  committed_total : int;
  adp_takeovers : int;
  outage : Time.span;
  lost_transactions : int;
}

let failover_under_load ?(records_per_driver = 400) () =
  let sim = Sim.create ~seed:0xFA11L () in
  let out = ref None in
  let committed_before = ref 0 in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"failover-main" (fun () ->
        let system = Tp.System.build sim Tp.System.default_config in
        let params =
          { Hot_stock.drivers = 2; records_per_driver; record_bytes = 4096; inserts_per_txn = 8 }
        in
        (* Kill ADP 1's primary mid-run. *)
        Sim.at sim ~after:(Time.ms 500) (fun () ->
            committed_before := Tp.Tmf.committed (Tp.System.tmf system);
            Tp.Adp.kill_primary (Tp.System.adps system).(1));
        let result = Hot_stock.run system params in
        (* Every committed transaction must be recoverable from the
           (takeover-surviving) trails. *)
        Array.iter (fun d -> Tp.Dp2.load_table d []) (Tp.System.dp2s system);
        let rows_rebuilt =
          match Tp.Recovery.run system with
          | Ok report -> report.Tp.Recovery.rows_rebuilt
          | Error e -> failwith ("post-failover recovery failed: " ^ e)
        in
        let expected_rows = 2 * records_per_driver in
        out :=
          Some
            {
              committed_before = !committed_before;
              committed_total = result.Hot_stock.committed;
              adp_takeovers = Tp.Adp.pair_takeovers (Tp.System.adps system).(1);
              outage = Nsk.Procpair.default_config.Nsk.Procpair.takeover_delay;
              lost_transactions = max 0 (expected_rows - rows_rebuilt);
            })
  in
  Sim.run sim;
  match !out with Some r -> r | None -> failwith "failover run incomplete"
