open Simkit

let schema = "odsbench-perf"

let schema_version = 1

let cell_seed = 0xF19L

let drill_seed = 0xD5177L

type layer_share = {
  ls_layer : string;
  ls_events : int;
  ls_wall_s : float;
  ls_wall_share : float;
  ls_minor_words : float;
  ls_major_words : float;
  ls_discarded : int;
}

type run_report = {
  r_name : string;
  r_seed : int64;
  r_events : int;
  r_sim_elapsed_s : float;
  r_wall_s : float;
  r_events_per_sec : float;
  r_wall_ms_per_sim_s : float;
  r_minor_words : float;
  r_major_words : float;
  r_minor_words_per_event : float;
  r_heap_depth_hwm : int;
  r_envelopes : int;
  r_packets : int;
  r_pm_writes : int;
  r_committed : int;
  r_layers : layer_share list;
}

type overhead = {
  o_workload : string;
  o_enabled_wall_s : float;
  o_disabled_wall_s : float;
  o_overhead_pct : float;
  o_enabled_minor_words : float;
  o_disabled_minor_words : float;
  o_alloc_overhead_pct : float;
  o_sim_elapsed_equal : bool;
  o_committed_equal : bool;
}

type report = { p_records : int; p_runs : run_report list; p_overhead : overhead }

let workload_names = [ "hot-stock-disk"; "hot-stock-pm"; "drill-pm"; "fig1-cell" ]

(* One profiled run: fresh profiler, major collection first so prior
   runs' garbage doesn't bill this run's wall clock, then the workload
   with the profiler installed on its simulation. *)
let profiled ~name ~seed f =
  Gc.full_major ();
  let p = Prof.create () in
  let sim_elapsed, committed = f p in
  let wall = Prof.wall_elapsed p in
  let events = Prof.events p in
  let handler_wall = Prof.wall_total p in
  let sim_s = Time.to_sec sim_elapsed in
  let layers =
    List.map
      (fun (r : Prof.layer_row) ->
        {
          ls_layer = r.Prof.l_name;
          ls_events = r.Prof.l_events;
          ls_wall_s = r.Prof.l_wall;
          ls_wall_share =
            (if handler_wall > 0.0 then r.Prof.l_wall /. handler_wall else 0.0);
          ls_minor_words = r.Prof.l_minor;
          ls_major_words = r.Prof.l_major;
          ls_discarded = r.Prof.l_discarded;
        })
      (Prof.layer_rows p)
  in
  {
    r_name = name;
    r_seed = seed;
    r_events = events;
    r_sim_elapsed_s = sim_s;
    r_wall_s = wall;
    r_events_per_sec = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    r_wall_ms_per_sim_s = (if sim_s > 0.0 then wall *. 1e3 /. sim_s else 0.0);
    r_minor_words = Prof.minor_words p;
    r_major_words = Prof.major_words p;
    r_minor_words_per_event =
      (if events > 0 then Prof.minor_words p /. float_of_int events else 0.0);
    r_heap_depth_hwm = Prof.heap_depth_hwm p;
    r_envelopes = Prof.envelope_count p;
    r_packets = Prof.packet_count p;
    r_pm_writes = Prof.pm_write_count p;
    r_committed = committed;
    r_layers = layers;
  }

let hot_stock_run ~records ~mode ~drivers prof =
  let cell =
    Figures.run_cell ~seed:cell_seed ~prof ~mode ~drivers ~inserts_per_txn:8
      ~records_per_driver:records ()
  in
  (cell.Figures.result.Hot_stock.elapsed, cell.Figures.result.Hot_stock.committed)

let drill_run prof =
  match
    Tp.Drill.run ~seed:drill_seed ~prof ~mode:Tp.System.Pm_audit
      ~plan:(Tp.Drill.standard_plan Tp.System.Pm_audit) ()
  with
  | Ok r -> (r.Tp.Drill.elapsed, r.Tp.Drill.committed)
  | Error e -> failwith ("perf: drill workload failed: " ^ e)

(* Enabled-vs-disabled telemetry cost, measured around the run rather
   than from inside it: the profiler's own hooks are part of the cost
   being compared, so neither arm installs one.  Both arms must agree on
   simulated time and committed count — telemetry that changes results
   is a bug this report would surface. *)
let measure_overhead ~records =
  let run_with setup =
    Gc.full_major ();
    let mi0, _, _ = Gc.counters () in
    let t0 = Prof.now_s () in
    let cell =
      match setup with
      | `Enabled obs ->
          Figures.run_cell ~seed:cell_seed ~obs ~mode:Tp.System.Pm_audit ~drivers:2
            ~inserts_per_txn:8 ~records_per_driver:records ()
      | `Disabled ->
          Figures.run_cell ~seed:cell_seed ~mode:Tp.System.Pm_audit ~drivers:2
            ~inserts_per_txn:8 ~records_per_driver:records ()
    in
    let wall = Prof.now_s () -. t0 in
    let mi1, _, _ = Gc.counters () in
    (cell.Figures.result, wall, mi1 -. mi0)
  in
  let saved = Obs.level () in
  Fun.protect
    ~finally:(fun () -> Obs.set_level saved)
    (fun () ->
      Obs.set_level Obs.Spans;
      let obs = Obs.create () in
      Span.enable (Obs.spans obs);
      let on, enabled_wall, enabled_minor = run_with (`Enabled obs) in
      Obs.set_level Obs.Off;
      let off, disabled_wall, disabled_minor = run_with `Disabled in
      {
        o_workload = "hot-stock-pm";
        o_enabled_wall_s = enabled_wall;
        o_disabled_wall_s = disabled_wall;
        o_overhead_pct =
          (if disabled_wall > 0.0 then
             (enabled_wall -. disabled_wall) /. disabled_wall *. 100.0
           else 0.0);
        o_enabled_minor_words = enabled_minor;
        o_disabled_minor_words = disabled_minor;
        o_alloc_overhead_pct =
          (if disabled_minor > 0.0 then
             (enabled_minor -. disabled_minor) /. disabled_minor *. 100.0
           else 0.0);
        o_sim_elapsed_equal = on.Hot_stock.elapsed = off.Hot_stock.elapsed;
        o_committed_equal = on.Hot_stock.committed = off.Hot_stock.committed;
      })

let run ?(records = 300) () =
  if records < 1 then invalid_arg "Perf.run: need at least one record";
  let runs =
    [
      profiled ~name:"hot-stock-disk" ~seed:cell_seed
        (hot_stock_run ~records ~mode:Tp.System.Disk_audit ~drivers:2);
      profiled ~name:"hot-stock-pm" ~seed:cell_seed
        (hot_stock_run ~records ~mode:Tp.System.Pm_audit ~drivers:2);
      profiled ~name:"drill-pm" ~seed:drill_seed drill_run;
      profiled ~name:"fig1-cell" ~seed:cell_seed
        (hot_stock_run ~records ~mode:Tp.System.Disk_audit ~drivers:1);
    ]
  in
  { p_records = records; p_runs = runs; p_overhead = measure_overhead ~records }

(* --- JSON --- *)

let layer_json l =
  Json.Obj
    [
      ("layer", Json.String l.ls_layer);
      ("events", Json.Int l.ls_events);
      ("wall_s", Json.Float l.ls_wall_s);
      ("wall_share", Json.Float l.ls_wall_share);
      ("minor_words", Json.Float l.ls_minor_words);
      ("major_words", Json.Float l.ls_major_words);
      ("discarded", Json.Int l.ls_discarded);
    ]

let run_json r =
  Json.Obj
    [
      ("name", Json.String r.r_name);
      ("seed", Json.String (Printf.sprintf "0x%Lx" r.r_seed));
      ("events", Json.Int r.r_events);
      ("sim_elapsed_s", Json.Float r.r_sim_elapsed_s);
      ("wall_s", Json.Float r.r_wall_s);
      ("events_per_sec", Json.Float r.r_events_per_sec);
      ("wall_ms_per_sim_s", Json.Float r.r_wall_ms_per_sim_s);
      ("minor_words", Json.Float r.r_minor_words);
      ("major_words", Json.Float r.r_major_words);
      ("minor_words_per_event", Json.Float r.r_minor_words_per_event);
      ("heap_depth_hwm", Json.Int r.r_heap_depth_hwm);
      ( "alloc_counters",
        Json.Obj
          [
            ("msgsys_envelopes", Json.Int r.r_envelopes);
            ("fabric_packets", Json.Int r.r_packets);
            ("pm_writes", Json.Int r.r_pm_writes);
          ] );
      ("committed", Json.Int r.r_committed);
      ("layers", Json.List (List.map layer_json r.r_layers));
    ]

let overhead_json o =
  Json.Obj
    [
      ("workload", Json.String o.o_workload);
      ("enabled_wall_s", Json.Float o.o_enabled_wall_s);
      ("disabled_wall_s", Json.Float o.o_disabled_wall_s);
      ("overhead_pct", Json.Float o.o_overhead_pct);
      ("enabled_minor_words", Json.Float o.o_enabled_minor_words);
      ("disabled_minor_words", Json.Float o.o_disabled_minor_words);
      ("alloc_overhead_pct", Json.Float o.o_alloc_overhead_pct);
      ("sim_elapsed_equal", Json.Bool o.o_sim_elapsed_equal);
      ("committed_equal", Json.Bool o.o_committed_equal);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("schema_version", Json.Int schema_version);
      ("records", Json.Int t.p_records);
      ("workloads", Json.List (List.map run_json t.p_runs));
      ("telemetry_overhead", overhead_json t.p_overhead);
    ]

(* --- baseline comparison --- *)

let events_per_sec_of_json doc =
  match Json.member "workloads" doc with
  | Some ws -> (
      match Json.to_list_opt ws with
      | Some items ->
          Ok
            (List.filter_map
               (fun w ->
                 match
                   ( Option.bind (Json.member "name" w) Json.to_string_opt,
                     Option.bind (Json.member "events_per_sec" w) Json.to_float_opt )
                 with
                 | Some name, Some eps -> Some (name, eps)
                 | _ -> None)
               items)
      | None -> Error "perf: \"workloads\" is not a list")
  | None -> Error "perf: no \"workloads\" field"

type verdict = {
  v_workload : string;
  v_current : float;
  v_baseline : float;
  v_ok : bool;
}

let compare_baseline ~baseline ~current ~regress_pct =
  if regress_pct <= 0.0 || regress_pct >= 100.0 then
    Error "perf: regression threshold must be in (0, 100)"
  else
    match (events_per_sec_of_json baseline, events_per_sec_of_json current) with
    | Error e, _ | _, Error e -> Error e
    | Ok base, Ok cur ->
        let floor_of b = b *. (1.0 -. (regress_pct /. 100.0)) in
        Ok
          (List.filter_map
             (fun (name, b) ->
               match List.assoc_opt name cur with
               | None ->
                   (* A workload in the baseline but absent from the
                      current run is itself a regression. *)
                   Some { v_workload = name; v_current = 0.0; v_baseline = b; v_ok = false }
               | Some c ->
                   Some
                     { v_workload = name; v_current = c; v_baseline = b;
                       v_ok = c >= floor_of b })
             base)

let all_ok verdicts = List.for_all (fun v -> v.v_ok) verdicts
