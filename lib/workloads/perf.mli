open Simkit

(** The simulator performance observatory: a fixed, seed-deterministic
    workload matrix run under {!Simkit.Prof}, reported as the
    schema-versioned [BENCH_*.json] trajectory committed to [bench/].

    Wall-clock numbers vary with the host; {e event counts}, section
    counts and minor-word totals are exact functions of workload + seed,
    so repeated runs on any machine agree on them bit-for-bit.  CI
    compares [events_per_sec] against the committed baseline and fails
    on a configurable regression. *)

val schema : string
(** ["odsbench-perf"]. *)

val schema_version : int

val workload_names : string list
(** The matrix, in run order: ["hot-stock-disk"], ["hot-stock-pm"],
    ["drill-pm"], ["fig1-cell"]. *)

type layer_share = {
  ls_layer : string;
  ls_events : int;  (** completed profiler sections *)
  ls_wall_s : float;
  ls_wall_share : float;  (** of total handler wall time *)
  ls_minor_words : float;
  ls_major_words : float;
  ls_discarded : int;
}

type run_report = {
  r_name : string;
  r_seed : int64;
  r_events : int;  (** dispatched simulator events *)
  r_sim_elapsed_s : float;  (** simulated load-phase seconds *)
  r_wall_s : float;
  r_events_per_sec : float;
  r_wall_ms_per_sim_s : float;
  r_minor_words : float;
  r_major_words : float;
  r_minor_words_per_event : float;
  r_heap_depth_hwm : int;
  r_envelopes : int;  (** msgsys envelope allocations *)
  r_packets : int;  (** fabric packets transferred *)
  r_pm_writes : int;  (** PM client writes issued *)
  r_committed : int;  (** result invariance check across trajectory points *)
  r_layers : layer_share list;
}

type overhead = {
  o_workload : string;
  o_enabled_wall_s : float;  (** obs attached, spans enabled *)
  o_disabled_wall_s : float;  (** no obs, {!Obs.level} [Off] *)
  o_overhead_pct : float;
  o_enabled_minor_words : float;
  o_disabled_minor_words : float;
  o_alloc_overhead_pct : float;
  o_sim_elapsed_equal : bool;  (** telemetry must not change results *)
  o_committed_equal : bool;
}

type report = { p_records : int; p_runs : run_report list; p_overhead : overhead }

val run : ?records:int -> unit -> report
(** Run the whole matrix.  [records] (default 300) sizes the hot-stock
    cells ([records_per_driver]); the drill always runs at
    {!Tp.Drill.default_params} scale so its fault-plan offsets stay
    valid.  Finishes with the telemetry-overhead pair: the same PM cell
    with spans enabled vs everything {!Obs.Off}, measured without a
    profiler installed so the comparison is of the telemetry alone. *)

val to_json : report -> Json.t
(** The schema-versioned document written to [bench/BENCH_N.json]. *)

(** {1 Baseline comparison} *)

val events_per_sec_of_json : Json.t -> ((string * float) list, string) result
(** [workload name -> events_per_sec] from a parsed report. *)

type verdict = {
  v_workload : string;
  v_current : float;
  v_baseline : float;
  v_ok : bool;  (** current >= baseline x (1 - regress_pct/100) *)
}

val compare_baseline :
  baseline:Json.t -> current:Json.t -> regress_pct:float -> (verdict list, string) result
(** One verdict per baseline workload; a workload missing from the
    current report fails its verdict.  [Error] on malformed documents or
    a threshold outside (0, 100). *)

val all_ok : verdict list -> bool
