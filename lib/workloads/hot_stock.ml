open Simkit
open Nsk

type params = {
  drivers : int;
  records_per_driver : int;
  record_bytes : int;
  inserts_per_txn : int;
}

let paper_params ~drivers ~inserts_per_txn =
  { drivers; records_per_driver = 32_000; record_bytes = 4096; inserts_per_txn }

let scaled_params ~drivers ~inserts_per_txn ~records_per_driver =
  { drivers; records_per_driver; record_bytes = 4096; inserts_per_txn }

type result = {
  elapsed : Time.span;
  txns : int;
  committed : int;
  response : Stat.summary;
  throughput_tps : float;
  audit_bytes : int;
  checkpoint_bytes : int;
}

let txn_size_label p =
  let bytes = p.inserts_per_txn * p.record_bytes in
  Printf.sprintf "%dk" (bytes / 1024)

(* One driver: a hotly traded stock.  Keys are unique per driver; inserts
   rotate over the files so each transaction touches every file, as the
   benchmark description requires. *)
let driver system params ~index ~response_stat ~committed ~on_done () =
  let cfg = Tp.System.config system in
  let session = Tp.System.session system ~cpu:(index mod cfg.Tp.System.worker_cpus) in
  let files = cfg.Tp.System.files in
  let key_base = (index + 1) * 100_000_000 in
  let total = params.records_per_driver in
  let per_txn = params.inserts_per_txn in
  let sim = Tp.System.sim system in
  let seq = ref 0 in
  (let rec txn_loop () =
     if !seq < total then begin
       let t0 = Sim.now sim in
       match Tp.Txclient.begin_txn session with
       | Error e ->
           failwith ("hot_stock: begin failed: " ^ Tp.Txclient.error_to_string e)
       | Ok txn ->
           let in_this_txn = min per_txn (total - !seq) in
           for i = 0 to in_this_txn - 1 do
             (* The per-transaction shift decorrelates file and partition
                so inserts really spread over files x volumes, as the
                benchmark description requires. *)
             let idx = !seq + i in
             let key = key_base + idx + (idx / per_txn) in
             let file = idx mod files in
             Tp.Txclient.insert_async session txn ~file ~key ~len:params.record_bytes ()
           done;
           seq := !seq + in_this_txn;
           (match Tp.Txclient.commit session txn with
           | Ok () ->
               incr committed;
               Stat.add_span response_stat (Sim.now sim - t0)
           | Error e ->
               failwith ("hot_stock: commit failed: " ^ Tp.Txclient.error_to_string e));
           txn_loop ()
     end
   in
   txn_loop ());
  on_done ()

type open_result = {
  o_arrivals : int;
  o_committed : int;
  o_rejected : int;  (** begins refused by admission control / breakers *)
  o_failed : int;  (** began but did not commit *)
  o_elapsed : Time.span;
  o_response : Stat.summary;
  o_goodput_tps : float;
}

(* Open-loop variant: transactions arrive on the schedule, not after the
   previous ack — offered load is independent of service capacity, so
   in-flight work is unbounded unless the system's admission control
   bounds it.  Each arrival runs as its own worker over a small session
   pool; keys are unique per arrival. *)
let run_open ?sessions system schedule ~record_bytes ~inserts_per_txn =
  let cfg = Tp.System.config system in
  let sim = Tp.System.sim system in
  let node = Tp.System.node system in
  let workers = cfg.Tp.System.worker_cpus in
  let n_sessions = match sessions with Some n -> max 1 n | None -> workers in
  let pool =
    Array.init n_sessions (fun i -> Tp.System.session system ~cpu:(i mod workers))
  in
  let files = cfg.Tp.System.files in
  let rng = Rng.split (Sim.rng sim) in
  let response_stat = Stat.create ~name:"hot-stock-open-rt" () in
  let committed = ref 0 and rejected = ref 0 and failed = ref 0 in
  let outstanding = ref 0 in
  let started = Sim.now sim in
  let worker index () =
    let session = pool.(index mod n_sessions) in
    let t0 = Sim.now sim in
    (match Tp.Txclient.begin_txn session with
    | Error e -> if Tp.Txclient.is_rejected e then incr rejected else incr failed
    | Ok txn -> (
        let key_base = 900_000_000 + (index * (inserts_per_txn + 1)) in
        for i = 0 to inserts_per_txn - 1 do
          Tp.Txclient.insert_async session txn ~file:(i mod files)
            ~key:(key_base + i) ~len:record_bytes ()
        done;
        match Tp.Txclient.commit session txn with
        | Ok () ->
            incr committed;
            Stat.add_span response_stat (Sim.now sim - t0)
        | Error _ -> incr failed));
    decr outstanding
  in
  let arrivals =
    Arrival.run ~rng schedule ~f:(fun index ->
        incr outstanding;
        ignore
          (Cpu.spawn
             (Node.cpu node (index mod workers))
             ~name:(Printf.sprintf "open%d" index)
             (worker index)))
  in
  (* Drain: arrivals have all been dispatched; wait for the stragglers
     (which under collapse can be long — that is the point). *)
  while !outstanding > 0 do
    Sim.sleep (Time.ms 10)
  done;
  {
    o_arrivals = arrivals;
    o_committed = !committed;
    o_rejected = !rejected;
    o_failed = !failed;
    o_elapsed = Sim.now sim - started;
    o_response = Stat.summary response_stat;
    o_goodput_tps =
      (let dt = Sim.now sim - started in
       if dt = 0 then 0.0 else float_of_int !committed /. Time.to_sec dt);
  }

let run system params =
  if params.drivers < 1 then invalid_arg "Hot_stock.run: need at least one driver";
  let sim = Tp.System.sim system in
  let node = Tp.System.node system in
  let response_stat = Stat.create ~name:"hot-stock-rt" () in
  let committed = ref 0 in
  let gate = Gate.create params.drivers in
  let started = Sim.now sim in
  for index = 0 to params.drivers - 1 do
    let cfg = Tp.System.config system in
    let cpu = Node.cpu node (index mod cfg.Tp.System.worker_cpus) in
    ignore
      (Cpu.spawn cpu
         ~name:(Printf.sprintf "driver%d" index)
         (driver system params ~index ~response_stat ~committed ~on_done:(fun () ->
              Gate.arrive gate)))
  done;
  Gate.await gate;
  let elapsed = Sim.now sim - started in
  let txns =
    params.drivers
    * ((params.records_per_driver + params.inserts_per_txn - 1) / params.inserts_per_txn)
  in
  {
    elapsed;
    txns;
    committed = !committed;
    response = Stat.summary response_stat;
    throughput_tps =
      (if elapsed = 0 then 0.0 else float_of_int !committed /. Time.to_sec elapsed);
    audit_bytes = Tp.System.total_audit_bytes system;
    checkpoint_bytes = Tp.System.checkpoint_message_bytes system;
  }
