(* Re-export so workload code can say [Arrival.flash_crowd ...] without
   reaching into Simkit; the engine itself lives in simkit so the drill
   layer (lib/tp, which cannot depend on workloads) shares it. *)
include Simkit.Arrival
