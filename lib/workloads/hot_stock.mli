open Simkit

(** The hot-stock benchmark (paper §4.3, Denzinger).

    Up to 4 driver processes, each representing one hotly traded stock,
    insert [records_per_driver] records of [record_bytes] into [files]
    partitioned files.  A transaction boxcars [inserts_per_txn]
    asynchronous inserts (spread round-robin over the files) and commits
    before the next iteration begins — the regulatory ordering constraint
    that makes the workload response-time-critical.  Transaction size in
    the paper's axes is [inserts_per_txn × record_bytes]: 8→32K, 16→64K,
    32→128K. *)

type params = {
  drivers : int;
  records_per_driver : int;
  record_bytes : int;
  inserts_per_txn : int;
}

val paper_params : drivers:int -> inserts_per_txn:int -> params
(** 32 000 records of 4 KB, as §4.3 specifies. *)

val scaled_params : drivers:int -> inserts_per_txn:int -> records_per_driver:int -> params
(** Same shape, fewer records — for tests and quick runs. *)

type result = {
  elapsed : Time.span;  (** first driver start to last commit (Figure 2's axis) *)
  txns : int;
  committed : int;
  response : Stat.summary;  (** per-transaction response times (Figure 1's input) *)
  throughput_tps : float;
  audit_bytes : int;
  checkpoint_bytes : int;
}

val run : Tp.System.t -> params -> result
(** Drive the benchmark to completion.  Process context only; drivers run
    on worker CPUs round-robin. *)

val txn_size_label : params -> string
(** "32k" / "64k" / "128k" as the paper labels its x-axis. *)

(** {1 Open-loop variant}

    {!run} is closed-loop: each driver waits for its commit before the
    next transaction, so offered load self-limits to service capacity
    and overload is unobservable.  {!run_open} instead dispatches
    transactions on an {!Arrival} schedule — arrivals do not wait for
    earlier transactions, so in-flight work is unbounded unless the
    system's admission control bounds it. *)

type open_result = {
  o_arrivals : int;
  o_committed : int;
  o_rejected : int;
      (** begins refused by admission control or client breakers —
          back-pressure, not failures: nothing was acknowledged *)
  o_failed : int;  (** transactions that began but did not commit *)
  o_elapsed : Time.span;  (** first arrival to last straggler *)
  o_response : Stat.summary;  (** per-committed-transaction latency *)
  o_goodput_tps : float;  (** committed transactions per elapsed second *)
}

val run_open :
  ?sessions:int ->
  Tp.System.t ->
  Arrival.schedule ->
  record_bytes:int ->
  inserts_per_txn:int ->
  open_result
(** Drive the schedule to completion and drain stragglers.  Each arrival
    runs one transaction over a session pool ([sessions] defaults to one
    per worker CPU).  Process context only. *)
