open Simkit

(** Experiment harness: every table/figure of the paper plus the
    ablations DESIGN.md commits to, as plain functions returning data.
    The bench executable and the odsbench CLI both print from these. *)

type cell = {
  mode : Tp.System.log_mode;
  drivers : int;
  inserts_per_txn : int;
  result : Hot_stock.result;
}

val run_cell :
  ?seed:int64 ->
  ?config:Tp.System.config ->
  ?obs:Obs.t ->
  ?prof:Prof.t ->
  mode:Tp.System.log_mode ->
  drivers:int ->
  inserts_per_txn:int ->
  records_per_driver:int ->
  unit ->
  cell
(** Build a fresh system and run one hot-stock configuration.  Safe to
    call outside process context (it owns its simulation).  With [obs],
    the whole system reports into that context — pass a context with
    spans enabled to trace the run, or read the metrics registry
    afterwards.  With [prof], the profiler is installed on the cell's
    simulation for the whole run (see {!Simkit.Prof}). *)

val run_cell_sampled :
  ?seed:int64 ->
  ?config:Tp.System.config ->
  ?obs:Obs.t ->
  ?prof:Prof.t ->
  ?sample_interval:Time.span ->
  ?sample_capacity:int ->
  mode:Tp.System.log_mode ->
  drivers:int ->
  inserts_per_txn:int ->
  records_per_driver:int ->
  unit ->
  cell * Timeseries.t option
(** {!run_cell} plus a continuous-telemetry recorder: with
    [sample_interval] (requires [obs], else [Invalid_argument]), a
    {!Simkit.Timeseries} samples every registered instrument on that
    cadence from system build to workload end, and is returned for
    export or bottleneck attribution.  Without [sample_interval] this is
    exactly {!run_cell}. *)

(** {1 Commit-latency breakdown (machine-readable)} *)

type stage = { stage_name : string; stage_ns : float; stage_share : float }
(** One commit-path stage: its mean per-transaction contribution in
    nanoseconds and as a fraction of mean response time. *)

type mode_breakdown = {
  b_mode : Tp.System.log_mode;
  b_commits : int;
  b_rt_ns : float;  (** mean response time *)
  b_stages : stage list;  (** lock wait, audit flush wait, MAT record, other *)
  b_flush_share : float;
      (** fraction of response time waiting on trail durability (audit
          flush wait + commit record) — the cost PM trails attack *)
}

type breakdown = {
  bd_drivers : int;
  bd_boxcar : int;
  bd_disk : mode_breakdown;
  bd_pm : mode_breakdown;
  bd_disk_flush_share : float;
  bd_pm_flush_share : float;
}

val breakdown :
  ?records_per_driver:int -> ?drivers:int -> ?boxcar:int -> unit -> breakdown
(** Run one disk-mode and one PM-mode cell under a metrics registry and
    attribute where commit latency goes in each.  Defaults: 2 000
    records, 1 driver, boxcar 8.  Expect [bd_disk_flush_share] to
    dominate disk-mode commit time and [bd_pm_flush_share] to be small
    — the paper's whole argument, as data. *)

(** {1 Figure 1 — response-time speedup vs transaction size} *)

type fig1_point = {
  f1_drivers : int;
  f1_boxcar : int;  (** inserts per transaction *)
  txn_size : string;  (** "32k" / "64k" / "128k" *)
  rt_disk_us : float;
  rt_pm_us : float;
  speedup : float;
}

val figure1 : ?records_per_driver:int -> ?drivers_list:int list -> unit -> fig1_point list
(** Defaults: the paper's 32 000 records and drivers 1-4.
    Scale down with [records_per_driver] for quick runs. *)

(** {1 Figure 2 — elapsed time vs transaction size} *)

type fig2_point = {
  f2_drivers : int;
  f2_boxcar : int;
  f2_txn_size : string;
  elapsed_disk_s : float;
  elapsed_pm_s : float;
}

val figure2 : ?records_per_driver:int -> ?drivers_list:int list -> unit -> fig2_point list

(** {1 E3 — PM write-latency sweep} *)

type latency_point = { penalty : Time.span; rt_us : float; speedup_vs_disk : float }

val latency_sweep :
  ?records_per_driver:int -> ?penalties:Time.span list -> unit -> latency_point list
(** Response time with extra per-write PM device latency; shows where the
    PM advantage dies as the device approaches disk speed. *)

(** {1 E4 — mirroring ablation} *)

type mirror_point = { mirrored : bool; rt_us : float; elapsed_s : float }

val mirror_ablation : ?records_per_driver:int -> unit -> mirror_point list

(** {1 E5 — MTTR} *)

type mttr_point = {
  m_mode : Tp.System.log_mode;
  report : Tp.Recovery.report;
  trail_bytes : int;
}

val mttr : ?records_per_driver:int -> unit -> mttr_point list
(** Run the workload, wipe the tables, recover: disk vs PM. *)

(** {1 E6 — ADPs per node} *)

type adp_scaling_point = { adps : int; a_mode : Tp.System.log_mode; tps : float }

val adp_scaling : ?records_per_driver:int -> ?counts:int list -> unit -> adp_scaling_point list

(** {1 E8 — shared-nothing scale-out (paper §1.3)} *)

type scaleout_point = {
  s_nodes : int;
  s_mode : Tp.System.log_mode;
  aggregate_tps : float;
  per_node_tps : float;
}

val scaleout :
  ?records_per_driver:int -> ?nodes_list:int list -> unit -> scaleout_point list
(** Build N independent nodes (own CPUs, fabric, volumes, PM devices) in
    one simulation and run the hot-stock mix on each concurrently — the
    partitioned, shared-nothing growth path NonStop systems scale out
    by.  Aggregate throughput should grow near-linearly. *)

(** {1 E9 — process-pair checkpoint traffic (paper §2, §3.4)} *)

type ckpt_traffic_point = {
  c_mode : Tp.System.log_mode;
  committed_txns : int;
  audit_bytes : int;
  checkpoint_bytes : int;
  ckpt_bytes_per_txn : float;
}

val checkpoint_traffic : ?records_per_driver:int -> unit -> ckpt_traffic_point list
(** Insert-heavy workloads generate "a high volume of check-point traffic
    between process pairs" (§2): the disk-mode log writer must mirror
    every buffered audit byte to its backup before acknowledging.  §3.4
    claims PM eliminates that repeated persistence; this experiment
    measures trail bytes vs checkpoint bytes in both modes. *)

(** {1 E10 — distributed transactions (two-phase commit)} *)

type dtx_point = {
  d_mode : Tp.System.log_mode;
  local_rt_ms : float;  (** single-node transfer *)
  dtx_rt_ms : float;  (** cross-node transfer under 2PC *)
  protocol_overhead_ms : float;
}

val dtx_latency : ?transfers:int -> unit -> dtx_point list
(** Cross-node funds transfers: a distributed commit stacks prepare and
    decision trail forces end to end, so the disk configuration pays
    several rotational waits per transaction while PM keeps the whole
    protocol fast — the paper's argument compounding. *)

(** {1 E7 — availability under process-pair failover} *)

type failover_report = {
  committed_before : int;
  committed_total : int;
  adp_takeovers : int;
  outage : Time.span;
  lost_transactions : int;  (** committed transactions missing after takeover: must be 0 *)
}

val failover_under_load : ?records_per_driver:int -> unit -> failover_report
(** Kill the CPU hosting ADP 1 mid-run (disk mode, where the backup's
    checkpointed buffer matters); the run must complete with no committed
    work lost. *)
