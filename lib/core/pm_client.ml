open Simkit
open Nsk

type config = {
  mirrored_writes : bool;
  write_penalty : Time.span;
  mgmt_timeout : Time.span;
  mgmt_retries : int;
  mgmt_backoff : Time.span;
  data_retries : int;
  data_backoff : Time.span;
  fail_fast_after : int;
  verified_reads : bool;
}

let default_config =
  {
    mirrored_writes = true;
    write_penalty = 0;
    mgmt_timeout = Time.sec 2;
    mgmt_retries = 3;
    mgmt_backoff = Time.ms 100;
    data_retries = 2;
    data_backoff = Time.us 100;
    fail_fast_after = 8;
    verified_reads = false;
  }

type t = {
  client_cpu : Cpu.t;
  fabric : Servernet.Fabric.t;
  pmm : Pmm.server;
  cfg : config;
  rng : Rng.t;
  mutable degraded : int;
  mutable retried_writes : int;
  mutable read_failovers : int;
  mutable mgmt_retried : int;
  mutable fenced : int;
  mutable read_repaired : int;
  mutable verify_divergent : int;
  mutable verify_unrepaired : int;
  (* Consecutive data-path failures per device of the mirror pair; past
     [fail_fast_after] the client stops burning retries on a device it
     has every reason to believe is down, until a success resets it. *)
  mutable primary_strikes : int;
  mutable mirror_strikes : int;
  latency : Stat.t;
  obs : Obs.t option;
  write_probe : Probe.t option;
}

type handle = { t : t; mutable region : Pm_types.region_info }

let attach ~cpu ~fabric ~pmm ?(config = default_config) ?obs () =
  {
    client_cpu = cpu;
    fabric;
    pmm;
    cfg = config;
    rng = Rng.split (Sim.rng (Cpu.sim cpu));
    degraded = 0;
    retried_writes = 0;
    read_failovers = 0;
    mgmt_retried = 0;
    fenced = 0;
    read_repaired = 0;
    verify_divergent = 0;
    verify_unrepaired = 0;
    primary_strikes = 0;
    mirror_strikes = 0;
    latency =
      (* With an observability context every client aggregates into the
         one registry-owned stat; otherwise each keeps a private one. *)
      (match obs with
      | Some o -> Metrics.stat (Obs.metrics o) "pm.write_ns"
      | None -> Stat.create ~name:"pm_write" ());
    obs;
    write_probe =
      (match obs with
      | Some o ->
          (* Aggregate across clients: depth = mirrored writes in flight. *)
          let p = Metrics.probe (Obs.metrics o) "pm.client_writes" in
          Probe.set_clock p (fun () -> Sim.now (Cpu.sim cpu));
          Some p
      | None -> None);
  }

let bump_counter t name =
  match t.obs with
  | Some o -> Stat.Counter.incr (Metrics.counter (Obs.metrics o) name)
  | None -> ()

(* Exponential backoff with full jitter: attempt [i] sleeps uniformly in
   [0, base * 2^i], capped at 2^6.  Jitter decorrelates the many clients
   that all saw the same takeover at the same instant. *)
let backoff_sleep t ~base ~attempt =
  let scale = 1 lsl min attempt 6 in
  let ceiling = max 1 (base * scale) in
  Sim.sleep (Time.ns 1 + Rng.uniform_span t.rng ceiling)

let cpu t = t.client_cpu

let info h = h.region

(* Management RPC with jittered exponential backoff across PMM
   takeovers.  A takeover strands every outstanding call at once; backing
   off exponentially with jitter spreads the retry herd instead of having
   all clients hammer the promoted backup on the same 100 ms beat. *)
let mgmt_call t req =
  let rec go attempt =
    match Msgsys.call t.pmm ~from:t.client_cpu ~timeout:t.cfg.mgmt_timeout req with
    | Ok resp -> Ok resp
    | Error (Msgsys.Server_down | Msgsys.Timed_out) ->
        if attempt >= t.cfg.mgmt_retries then Error Pm_types.Manager_down
        else begin
          t.mgmt_retried <- t.mgmt_retried + 1;
          bump_counter t "pm.mgmt_retries";
          backoff_sleep t ~base:t.cfg.mgmt_backoff ~attempt;
          go (attempt + 1)
        end
  in
  go 0

let region_result t = function
  | Ok (Pmm.R_region region) -> Ok { t; region }
  | Ok (Pmm.R_error e) -> Error e
  | Ok _ -> Error (Pm_types.Bad_request "unexpected PMM response")
  | Error e -> Error e

let create_region t ~name ~size =
  let client = Cpu.endpoint_id t.client_cpu in
  region_result t (mgmt_call t (Pmm.Create { rname = name; size; client }))

let open_region t ~name =
  let client = Cpu.endpoint_id t.client_cpu in
  region_result t (mgmt_call t (Pmm.Open { rname = name; client }))

let unit_result = function
  | Ok Pmm.R_ok -> Ok ()
  | Ok (Pmm.R_error e) -> Error e
  | Ok _ -> Error (Pm_types.Bad_request "unexpected PMM response")
  | Error e -> Error e

let close_region t h =
  let client = Cpu.endpoint_id t.client_cpu in
  unit_result (mgmt_call t (Pmm.Close { rname = h.region.Pm_types.region_name; client }))

let delete_region t ~name = unit_result (mgmt_call t (Pmm.Delete { rname = name }))

let list_regions t =
  match mgmt_call t Pmm.List_regions with
  | Ok (Pmm.R_regions rs) -> Ok rs
  | Ok (Pmm.R_error e) -> Error e
  | Ok _ -> Error (Pm_types.Bad_request "unexpected PMM response")
  | Error e -> Error e

let bounds_ok region ~off ~len =
  off >= 0 && len >= 0 && off + len <= region.Pm_types.length

let write ?span t h ~off ~data =
  (* A write bounced with [Stale_epoch] means the volume was fenced under
     us (takeover or resync finished a new incarnation).  The grant is
     refreshable: re-open the region at the PMM — the fresh grant carries
     the new epoch — and retry, a bounded number of times. *)
  let rec attempt refreshes =
    let region = h.region in
    let len = Bytes.length data in
    if not (bounds_ok region ~off ~len) then
      Error (Pm_types.Bad_request "write out of bounds")
    else begin
      let sect = Prof.section_begin () in
      let started = Sim.now (Cpu.sim t.client_cpu) in
      let sp =
        match t.obs with
        | None -> Span.null
        | Some o ->
            let sp = Span.start (Obs.spans o) ~track:"pm" ?parent:span "pm.write" in
            if not (Span.is_null sp) then begin
              Span.annotate sp ~key:"region" region.Pm_types.region_name;
              Span.annotate sp ~key:"len" (string_of_int len)
            end;
            sp
      in
      let addr = region.Pm_types.net_base + off in
      let epoch = region.Pm_types.epoch in
      let src = Cpu.endpoint t.client_cpu in
      Prof.bump_pm_write ();
      (match t.write_probe with Some p -> Probe.enqueue p | None -> ());
      (* End before the penalty sleep and the RDMA calls — both suspend. *)
      Prof.section_end sect "pm";
      if t.cfg.write_penalty > 0 then Sim.sleep t.cfg.write_penalty;
      (* One device's worth of the mirrored write, with bounded retry of
         transient fabric errors (a rail flapping, a burst of CRC noise)
         before the attempt counts as a device failure.  Once a device has
         racked up [fail_fast_after] consecutive failures the retries are
         skipped — it is down, not noisy — so a long outage degrades every
         write once instead of stalling each one through a retry ladder. *)
      let write_device ~strikes ~note dst =
        let rec go attempt =
          match
            Servernet.Fabric.rdma_write ~span:sp ~epoch t.fabric ~src ~dst ~addr ~data
          with
          | Ok () ->
              note 0;
              Ok ()
          | Error (Servernet.Fabric.Unreachable | Servernet.Fabric.No_path
                  | Servernet.Fabric.Crc_failure)
            when attempt < t.cfg.data_retries && strikes < t.cfg.fail_fast_after ->
              t.retried_writes <- t.retried_writes + 1;
              bump_counter t "pm.write_retries";
              backoff_sleep t ~base:t.cfg.data_backoff ~attempt;
              go (attempt + 1)
          | Error e ->
              note (strikes + 1);
              Error e
        in
        go 0
      in
      let primary_result =
        write_device ~strikes:t.primary_strikes
          ~note:(fun n -> t.primary_strikes <- n)
          region.Pm_types.primary_npmu
      in
      let mirror_result =
        if t.cfg.mirrored_writes then
          write_device ~strikes:t.mirror_strikes
            ~note:(fun n -> t.mirror_strikes <- n)
            region.Pm_types.mirror_npmu
        else primary_result
      in
      let is_fenced = function
        | Error (Servernet.Fabric.Avt_error Servernet.Avt.Stale_epoch) -> true
        | _ -> false
      in
      let outcome =
        (* A fence on either device outranks the degraded-write path: the
           write may have half-landed, but this client's whole grant is
           stale — acking would hide data the new incarnation won't see. *)
        if is_fenced primary_result || is_fenced mirror_result then Error Pm_types.Fenced
        else
          match (primary_result, mirror_result) with
          | Ok (), Ok () -> Ok ()
          | Ok (), Error _ | Error _, Ok () ->
              t.degraded <- t.degraded + 1;
              bump_counter t "pm.degraded_writes";
              Ok ()
          | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied), _
          | _, Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
              Error Pm_types.Permission_denied
          | Error _, Error _ -> Error Pm_types.Device_failed
      in
      (match outcome with
      | Ok () -> Stat.add_span t.latency (Sim.now (Cpu.sim t.client_cpu) - started)
      | Error _ -> ());
      (match t.write_probe with
      | Some p ->
          Probe.busy_span p (Sim.now (Cpu.sim t.client_cpu) - started);
          Probe.dequeue p
      | None -> ());
      (match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ());
      match outcome with
      | Error Pm_types.Fenced ->
          t.fenced <- t.fenced + 1;
          bump_counter t "pm.fenced_writes";
          if refreshes <= 0 then Error Pm_types.Fenced
          else begin
            match open_region t ~name:region.Pm_types.region_name with
            | Ok fresh ->
                h.region <- fresh.region;
                attempt (refreshes - 1)
            | Error _ -> Error Pm_types.Fenced
          end
      | outcome -> outcome
    end
  in
  attempt 2

let read_plain t h ~off ~len =
  let region = h.region in
  if not (bounds_ok region ~off ~len) then Error (Pm_types.Bad_request "read out of bounds")
  else begin
    let addr = region.Pm_types.net_base + off in
    let src = Cpu.endpoint t.client_cpu in
    (* Rounds of primary-then-mirror: a transient fabric error on both
       devices (rail flap mid-burst) earns a jittered backoff and another
       round, bounded by [data_retries]. *)
    let rec round attempt =
      match
        Servernet.Fabric.rdma_read t.fabric ~src ~dst:region.Pm_types.primary_npmu ~addr
          ~len
      with
      | Ok data -> Ok data
      | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
          Error Pm_types.Permission_denied
      | Error _ -> (
          match
            Servernet.Fabric.rdma_read t.fabric ~src ~dst:region.Pm_types.mirror_npmu ~addr
              ~len
          with
          | Ok data ->
              t.read_failovers <- t.read_failovers + 1;
              bump_counter t "pm.read_failovers";
              Ok data
          | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
              Error Pm_types.Permission_denied
          | Error _ ->
              if attempt >= t.cfg.data_retries then Error Pm_types.Device_failed
              else begin
                backoff_sleep t ~base:t.cfg.data_backoff ~attempt;
                round (attempt + 1)
              end)
    in
    round 0
  end

let read_device t h ~mirror ~off ~len =
  let region = h.region in
  if not (bounds_ok region ~off ~len) then Error (Pm_types.Bad_request "read out of bounds")
  else
    let dst = if mirror then region.Pm_types.mirror_npmu else region.Pm_types.primary_npmu in
    match
      Servernet.Fabric.rdma_read t.fabric ~src:(Cpu.endpoint t.client_cpu) ~dst
        ~addr:(region.Pm_types.net_base + off) ~len
    with
    | Ok data -> Ok data
    | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
        Error Pm_types.Permission_denied
    | Error _ -> Error Pm_types.Device_failed

(* Arbitrate and repair every chunk of a divergent range.  The PMM's
   durable chunk-checksum table decides which copy is truth: the copy
   whose CRC matches is written over the other (read-repair).  A chunk
   the table cannot vouch for — never scanned clean, quarantined, or
   both copies corrupt — is left alone and counted as unrepaired; the
   scrubber's strike machinery owns its fate. *)
let verify_repair_range t h ~addr ~len =
  let region = h.region in
  let src = Cpu.endpoint t.client_cpu in
  let read_dev dst ~addr ~len = Servernet.Fabric.rdma_read t.fabric ~src ~dst ~addr ~len in
  let repair ~dst ~chunk_off ~data =
    match
      Servernet.Fabric.rdma_write ~epoch:region.Pm_types.epoch t.fabric ~src ~dst
        ~addr:chunk_off ~data
    with
    | Ok () ->
        t.read_repaired <- t.read_repaired + 1;
        bump_counter t "pm.read_repairs"
    | Error _ ->
        t.verify_unrepaired <- t.verify_unrepaired + 1;
        bump_counter t "pm.verify_unrepaired"
  in
  let rec sweep pos =
    if pos < addr + len then
      match mgmt_call t (Pmm.Chunk_crc { addr = pos }) with
      | Ok (Pmm.R_chunk_crc { chunk_off; chunk_len; crc; quarantined }) ->
          (if not quarantined then
             match
               ( read_dev region.Pm_types.primary_npmu ~addr:chunk_off ~len:chunk_len,
                 read_dev region.Pm_types.mirror_npmu ~addr:chunk_off ~len:chunk_len )
             with
             | Ok p, Ok m when not (Bytes.equal p m) -> (
                 match crc with
                 | Some trusted ->
                     let cp = Crc32.bytes p and cm = Crc32.bytes m in
                     if Int32.equal trusted cp then
                       repair ~dst:region.Pm_types.mirror_npmu ~chunk_off ~data:p
                     else if Int32.equal trusted cm then
                       repair ~dst:region.Pm_types.primary_npmu ~chunk_off ~data:m
                     else begin
                       t.verify_unrepaired <- t.verify_unrepaired + 1;
                       bump_counter t "pm.verify_unrepaired"
                     end
                 | None ->
                     t.verify_unrepaired <- t.verify_unrepaired + 1;
                     bump_counter t "pm.verify_unrepaired")
             | _ -> ());
          sweep (chunk_off + chunk_len)
      | Ok _ | Error _ ->
          (* The PMM cannot arbitrate right now (takeover in flight, or
             the range fell off the region map); the plain read below
             still serves data, just unverified. *)
          t.verify_unrepaired <- t.verify_unrepaired + 1;
          bump_counter t "pm.verify_unrepaired"
  in
  sweep addr

let read_verified t h ~off ~len =
  let region = h.region in
  if not (bounds_ok region ~off ~len) then Error (Pm_types.Bad_request "read out of bounds")
  else begin
    let addr = region.Pm_types.net_base + off in
    let src = Cpu.endpoint t.client_cpu in
    let p =
      Servernet.Fabric.rdma_read t.fabric ~src ~dst:region.Pm_types.primary_npmu ~addr ~len
    in
    let m =
      Servernet.Fabric.rdma_read t.fabric ~src ~dst:region.Pm_types.mirror_npmu ~addr ~len
    in
    match (p, m) with
    | Ok dp, Ok dm when Bytes.equal dp dm -> Ok dp
    | Ok _, Ok _ ->
        t.verify_divergent <- t.verify_divergent + 1;
        bump_counter t "pm.verify_divergence";
        verify_repair_range t h ~addr ~len;
        (* Serve the post-repair contents; where repair was impossible
           this degrades to the plain read's primary-first answer. *)
        read_plain t h ~off ~len
    | _ ->
        (* One copy unreachable: nothing to cross-check, and the plain
           path already owns failover and retry. *)
        read_plain t h ~off ~len
  end

let read t h ~off ~len =
  if t.cfg.verified_reads then read_verified t h ~off ~len else read_plain t h ~off ~len

let degraded_writes t = t.degraded

let write_retries t = t.retried_writes

let read_failovers t = t.read_failovers

let read_repairs t = t.read_repaired

let verify_divergences t = t.verify_divergent

let verify_unrepaired t = t.verify_unrepaired

let verified_reads_enabled t = t.cfg.verified_reads

let fenced_writes t = t.fenced

let mgmt_retries_used t = t.mgmt_retried

let write_latency t = t.latency
