open Simkit
open Nsk

type config = {
  mirrored_writes : bool;
  write_penalty : Time.span;
  mgmt_timeout : Time.span;
  mgmt_retries : int;
  mgmt_backoff : Time.span;
  data_retries : int;
  data_backoff : Time.span;
  fail_fast_after : int;
  verified_reads : bool;
  slo_budget : Time.span;
  health_window : int;
  health_alpha : float;
  hedged_reads : bool;
  hedge_min : Time.span;
  hedge_max : Time.span;
  adaptive_backoff : bool;
  mgmt_retry_budget : float;
      (** token-bucket capacity for management-path retries, refilled by
          successes; 0 disables the budget (retries bounded only by
          [mgmt_retries]) *)
}

let default_config =
  {
    mirrored_writes = true;
    write_penalty = 0;
    mgmt_timeout = Time.sec 2;
    mgmt_retries = 3;
    mgmt_backoff = Time.ms 100;
    data_retries = 2;
    data_backoff = Time.us 100;
    fail_fast_after = 8;
    verified_reads = false;
    slo_budget = 0;
    health_window = 32;
    health_alpha = 0.3;
    hedged_reads = false;
    hedge_min = Time.us 50;
    hedge_max = Time.ms 5;
    adaptive_backoff = false;
    mgmt_retry_budget = 0.;
  }

(* Per-device latency health: an EWMA plus a windowed p99, both compared
   against the configured SLO budget.  Disabled (no samples recorded)
   while [slo_budget] is 0, so the default config costs nothing. *)
type health = {
  mutable ewma : float;  (** smoothed per-op latency, ns; 0 until first sample *)
  window : int array;  (** ring of recent per-op latencies, ns *)
  mutable w_len : int;
  mutable w_pos : int;
  mutable suspect : bool;  (** currently over budget *)
}

let health_create cfg =
  {
    ewma = 0.0;
    window = Array.make (max 4 cfg.health_window) 0;
    w_len = 0;
    w_pos = 0;
    suspect = false;
  }

let window_p99 hs =
  if hs.w_len = 0 then 0
  else begin
    let a = Array.sub hs.window 0 hs.w_len in
    Array.sort compare a;
    let idx =
      min (hs.w_len - 1)
        (max 0 (int_of_float (ceil (0.99 *. float_of_int hs.w_len)) - 1))
    in
    a.(idx)
  end

type t = {
  client_cpu : Cpu.t;
  fabric : Servernet.Fabric.t;
  pmm : Pmm.server;
  cfg : config;
  rng : Rng.t;
  mutable degraded : int;
  mutable retried_writes : int;
  mutable read_failovers : int;
  mutable mgmt_retried : int;
  mutable fenced : int;
  mutable read_repaired : int;
  mutable verify_divergent : int;
  mutable verify_unrepaired : int;
  (* Consecutive data-path failures per device of the mirror pair; past
     [fail_fast_after] the client stops burning retries on a device it
     has every reason to believe is down, until a success resets it. *)
  mutable primary_strikes : int;
  mutable mirror_strikes : int;
  mutable slow_suspects : int;  (** healthy->suspect transitions observed *)
  mutable hedged : int;  (** hedged reads fired *)
  mutable hedge_won : int;  (** hedges whose mirror copy answered first *)
  mutable single_copy : int;  (** writes skipped on a demoted mirror *)
  mutable mgmt_exhausted : int;  (** mgmt calls that ran out of retries *)
  retry_budget : Retry_budget.t option;
      (** management-path retry containment; [None] when unbudgeted *)
  ph : health;  (** primary device data-path latency *)
  mh : health;  (** mirror device data-path latency *)
  latency : Stat.t;
  obs : Obs.t option;
  write_probe : Probe.t option;
}

type handle = { t : t; mutable region : Pm_types.region_info }

let attach ~cpu ~fabric ~pmm ?(config = default_config) ?obs () =
  {
    client_cpu = cpu;
    fabric;
    pmm;
    cfg = config;
    rng = Rng.split (Sim.rng (Cpu.sim cpu));
    degraded = 0;
    retried_writes = 0;
    read_failovers = 0;
    mgmt_retried = 0;
    fenced = 0;
    read_repaired = 0;
    verify_divergent = 0;
    verify_unrepaired = 0;
    primary_strikes = 0;
    mirror_strikes = 0;
    slow_suspects = 0;
    hedged = 0;
    hedge_won = 0;
    single_copy = 0;
    mgmt_exhausted = 0;
    retry_budget =
      (if config.mgmt_retry_budget > 0. then
         Some (Retry_budget.create ~capacity:config.mgmt_retry_budget ())
       else None);
    ph = health_create config;
    mh = health_create config;
    latency =
      (* With an observability context every client aggregates into the
         one registry-owned stat; otherwise each keeps a private one. *)
      (match obs with
      | Some o -> Metrics.stat (Obs.metrics o) "pm.write_ns"
      | None -> Stat.create ~name:"pm_write" ());
    obs;
    write_probe =
      (match obs with
      | Some o ->
          (* Aggregate across clients: depth = mirrored writes in flight. *)
          let p = Metrics.probe (Obs.metrics o) "pm.client_writes" in
          Probe.set_clock p (fun () -> Sim.now (Cpu.sim cpu));
          Some p
      | None -> None);
  }

let bump_counter t name =
  match t.obs with
  | Some o -> Stat.Counter.incr (Metrics.counter (Obs.metrics o) name)
  | None -> ()

(* Record one data-path op's latency against a device's health and flag
   the healthy->suspect edge.  The suspect state clears itself once the
   EWMA and the windowed p99 both drop back under budget. *)
let health_note t hs dt =
  if t.cfg.slo_budget > 0 then begin
    let alpha = t.cfg.health_alpha in
    hs.ewma <-
      (if hs.ewma = 0.0 then float_of_int dt
       else (alpha *. float_of_int dt) +. ((1.0 -. alpha) *. hs.ewma));
    hs.window.(hs.w_pos) <- dt;
    hs.w_pos <- (hs.w_pos + 1) mod Array.length hs.window;
    if hs.w_len < Array.length hs.window then hs.w_len <- hs.w_len + 1;
    let budget = t.cfg.slo_budget in
    let breach = hs.ewma > float_of_int budget || window_p99 hs > budget in
    if breach && not hs.suspect then begin
      hs.suspect <- true;
      t.slow_suspects <- t.slow_suspects + 1;
      bump_counter t "pm.slow_suspect"
    end
    else if (not breach) && hs.suspect then hs.suspect <- false
  end

(* The hedge fires after a delay derived from the primary's observed
   latency quantiles (2x its windowed p99), clamped to the configured
   band — adaptive, not a fixed data timeout. *)
let hedge_delay t =
  let q = window_p99 t.ph in
  let base = if q > 0 then 2 * q else t.cfg.hedge_max in
  min (max base t.cfg.hedge_min) t.cfg.hedge_max

(* Adaptive data-path timeout: the retry backoff base tracks the worst
   observed device EWMA (capped), so a degraded path is retried on its
   own timescale instead of the healthy-case constant. *)
let data_backoff_base t =
  if not t.cfg.adaptive_backoff then t.cfg.data_backoff
  else
    let observed = int_of_float (Float.max t.ph.ewma t.mh.ewma) in
    min (max t.cfg.data_backoff observed) (t.cfg.data_backoff * 64)

(* Exponential backoff with full jitter: attempt [i] sleeps uniformly in
   [0, base * 2^i], capped at 2^6.  Jitter decorrelates the many clients
   that all saw the same takeover at the same instant. *)
let backoff_ceiling ~base ~attempt =
  let scale = 1 lsl min attempt 6 in
  max 1 (base * scale)

let backoff_span rng ~base ~attempt =
  Time.ns 1 + Rng.uniform_span rng (backoff_ceiling ~base ~attempt)

let backoff_sleep t ~base ~attempt = Sim.sleep (backoff_span t.rng ~base ~attempt)

let cpu t = t.client_cpu

let info h = h.region

(* Management RPC with jittered exponential backoff across PMM
   takeovers.  A takeover strands every outstanding call at once; backing
   off exponentially with jitter spreads the retry herd instead of having
   all clients hammer the promoted backup on the same 100 ms beat. *)
let mgmt_call t req =
  let rec go attempt =
    match Msgsys.call t.pmm ~from:t.client_cpu ~timeout:t.cfg.mgmt_timeout req with
    | Ok resp ->
        (* Successes refill the retry budget, so a healthy manager earns
           back the headroom a takeover spent. *)
        (match t.retry_budget with Some b -> Retry_budget.success b | None -> ());
        Ok resp
    | Error (Msgsys.Server_down | Msgsys.Timed_out) ->
        if attempt >= t.cfg.mgmt_retries then begin
          t.mgmt_exhausted <- t.mgmt_exhausted + 1;
          bump_counter t "pm.mgmt_retry_exhausted";
          Error Pm_types.Manager_down
        end
        else if
          match t.retry_budget with
          | Some b -> not (Retry_budget.try_spend b)
          | None -> false
        then begin
          (* Out of tokens: the client tier as a whole is failing faster
             than it succeeds — stop amplifying and surface the error. *)
          bump_counter t "pm.retry_budget_denied";
          Error Pm_types.Manager_down
        end
        else begin
          t.mgmt_retried <- t.mgmt_retried + 1;
          bump_counter t "pm.mgmt_retries";
          backoff_sleep t ~base:t.cfg.mgmt_backoff ~attempt;
          go (attempt + 1)
        end
  in
  go 0

let region_result t = function
  | Ok (Pmm.R_region region) -> Ok { t; region }
  | Ok (Pmm.R_error e) -> Error e
  | Ok _ -> Error (Pm_types.Bad_request "unexpected PMM response")
  | Error e -> Error e

let create_region t ~name ~size =
  let client = Cpu.endpoint_id t.client_cpu in
  region_result t (mgmt_call t (Pmm.Create { rname = name; size; client }))

let open_region t ~name =
  let client = Cpu.endpoint_id t.client_cpu in
  region_result t (mgmt_call t (Pmm.Open { rname = name; client }))

let unit_result = function
  | Ok Pmm.R_ok -> Ok ()
  | Ok (Pmm.R_error e) -> Error e
  | Ok _ -> Error (Pm_types.Bad_request "unexpected PMM response")
  | Error e -> Error e

let close_region t h =
  let client = Cpu.endpoint_id t.client_cpu in
  unit_result (mgmt_call t (Pmm.Close { rname = h.region.Pm_types.region_name; client }))

let delete_region t ~name = unit_result (mgmt_call t (Pmm.Delete { rname = name }))

let list_regions t =
  match mgmt_call t Pmm.List_regions with
  | Ok (Pmm.R_regions rs) -> Ok rs
  | Ok (Pmm.R_error e) -> Error e
  | Ok _ -> Error (Pm_types.Bad_request "unexpected PMM response")
  | Error e -> Error e

let bounds_ok region ~off ~len =
  off >= 0 && len >= 0 && off + len <= region.Pm_types.length

let write ?span t h ~off ~data =
  (* A write bounced with [Stale_epoch] means the volume was fenced under
     us (takeover or resync finished a new incarnation).  The grant is
     refreshable: re-open the region at the PMM — the fresh grant carries
     the new epoch — and retry, a bounded number of times. *)
  let rec attempt refreshes =
    let region = h.region in
    let len = Bytes.length data in
    if not (bounds_ok region ~off ~len) then
      Error (Pm_types.Bad_request "write out of bounds")
    else begin
      let sect = Prof.section_begin () in
      let started = Sim.now (Cpu.sim t.client_cpu) in
      let sp =
        match t.obs with
        | None -> Span.null
        | Some o ->
            let sp = Span.start (Obs.spans o) ~track:"pm" ?parent:span "pm.write" in
            if not (Span.is_null sp) then begin
              Span.annotate sp ~key:"region" region.Pm_types.region_name;
              Span.annotate sp ~key:"len" (string_of_int len)
            end;
            sp
      in
      let addr = region.Pm_types.net_base + off in
      let epoch = region.Pm_types.epoch in
      let src = Cpu.endpoint t.client_cpu in
      Prof.bump_pm_write ();
      (match t.write_probe with Some p -> Probe.enqueue p | None -> ());
      (* End before the penalty sleep and the RDMA calls — both suspend. *)
      Prof.section_end sect "pm";
      if t.cfg.write_penalty > 0 then Sim.sleep t.cfg.write_penalty;
      (* One device's worth of the mirrored write, with bounded retry of
         transient fabric errors (a rail flapping, a burst of CRC noise)
         before the attempt counts as a device failure.  Once a device has
         racked up [fail_fast_after] consecutive failures the retries are
         skipped — it is down, not noisy — so a long outage degrades every
         write once instead of stalling each one through a retry ladder. *)
      let write_device ~strikes ~note ~hs dst =
        let rec go attempt =
          let t0 = Sim.now (Cpu.sim t.client_cpu) in
          match
            Servernet.Fabric.rdma_write ~span:sp ~epoch t.fabric ~src ~dst ~addr ~data
          with
          | Ok () ->
              health_note t hs (Sim.now (Cpu.sim t.client_cpu) - t0);
              note 0;
              Ok ()
          | Error (Servernet.Fabric.Unreachable | Servernet.Fabric.No_path
                  | Servernet.Fabric.Crc_failure)
            when attempt < t.cfg.data_retries && strikes < t.cfg.fail_fast_after ->
              t.retried_writes <- t.retried_writes + 1;
              bump_counter t "pm.write_retries";
              backoff_sleep t ~base:(data_backoff_base t) ~attempt;
              go (attempt + 1)
          | Error e ->
              note (strikes + 1);
              Error e
        in
        go 0
      in
      let primary_result =
        write_device ~strikes:t.primary_strikes
          ~note:(fun n -> t.primary_strikes <- n)
          ~hs:t.ph region.Pm_types.primary_npmu
      in
      let mirror_result =
        if t.cfg.mirrored_writes && region.Pm_types.mirror_active then
          write_device ~strikes:t.mirror_strikes
            ~note:(fun n -> t.mirror_strikes <- n)
            ~hs:t.mh region.Pm_types.mirror_npmu
        else begin
          (* Demoted mirror: the PMM fenced the slow copy out, so the
             write persists single-copy under the degraded-durability
             contract and is counted as such, not as a failure. *)
          if t.cfg.mirrored_writes && not region.Pm_types.mirror_active then begin
            t.single_copy <- t.single_copy + 1;
            bump_counter t "pm.single_copy_writes"
          end;
          primary_result
        end
      in
      let is_fenced = function
        | Error (Servernet.Fabric.Avt_error Servernet.Avt.Stale_epoch) -> true
        | _ -> false
      in
      let outcome =
        (* A fence on either device outranks the degraded-write path: the
           write may have half-landed, but this client's whole grant is
           stale — acking would hide data the new incarnation won't see. *)
        if is_fenced primary_result || is_fenced mirror_result then Error Pm_types.Fenced
        else
          match (primary_result, mirror_result) with
          | Ok (), Ok () -> Ok ()
          | Ok (), Error _ | Error _, Ok () ->
              t.degraded <- t.degraded + 1;
              bump_counter t "pm.degraded_writes";
              Ok ()
          | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied), _
          | _, Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
              Error Pm_types.Permission_denied
          | Error _, Error _ -> Error Pm_types.Device_failed
      in
      (match outcome with
      | Ok () -> Stat.add_span t.latency (Sim.now (Cpu.sim t.client_cpu) - started)
      | Error _ -> ());
      (match t.write_probe with
      | Some p ->
          Probe.busy_span p (Sim.now (Cpu.sim t.client_cpu) - started);
          Probe.dequeue p
      | None -> ());
      (match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ());
      match outcome with
      | Error Pm_types.Fenced ->
          t.fenced <- t.fenced + 1;
          bump_counter t "pm.fenced_writes";
          if refreshes <= 0 then Error Pm_types.Fenced
          else begin
            match open_region t ~name:region.Pm_types.region_name with
            | Ok fresh ->
                h.region <- fresh.region;
                attempt (refreshes - 1)
            | Error _ -> Error Pm_types.Fenced
          end
      | outcome -> outcome
    end
  in
  attempt 2

(* One timed read of one copy, feeding the device's latency health. *)
let timed_read t region ~mirror ~addr ~len =
  let dst =
    if mirror then region.Pm_types.mirror_npmu else region.Pm_types.primary_npmu
  in
  let hs = if mirror then t.mh else t.ph in
  let t0 = Sim.now (Cpu.sim t.client_cpu) in
  let r =
    Servernet.Fabric.rdma_read t.fabric ~src:(Cpu.endpoint t.client_cpu) ~dst ~addr ~len
  in
  (match r with
  | Ok _ -> health_note t hs (Sim.now (Cpu.sim t.client_cpu) - t0)
  | Error _ -> ());
  r

(* Hedged mirrored read: start the primary copy, and if it has not
   answered within the hedge delay fire the mirror too — first response
   wins.  The losing read completes in its helper process and is simply
   discarded (RDMA reads have no side effects). *)
let hedged_fetch ?(span = Span.null) t region ~addr ~len =
  let sim = Cpu.sim t.client_cpu in
  let mb = Mailbox.create ~name:"pm-hedge" () in
  let fetch ~mirror () = Mailbox.send mb (mirror, timed_read t region ~mirror ~addr ~len) in
  ignore (Sim.spawn sim ~name:"pm-read-primary" (fetch ~mirror:false));
  let rec collect ~hedged ~outstanding =
    if outstanding = 0 then Error Pm_types.Device_failed
    else
      let mirror, r = Mailbox.recv mb in
      match r with
      | Ok data ->
          if mirror then
            if hedged then begin
              t.hedge_won <- t.hedge_won + 1;
              bump_counter t "pm.hedge_wins";
              Span.annotate span ~key:"hedge_won" "1"
            end
            else begin
              t.read_failovers <- t.read_failovers + 1;
              bump_counter t "pm.read_failovers";
              Span.annotate span ~key:"failover" "1"
            end;
          Ok data
      | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
          Error Pm_types.Permission_denied
      | Error _ -> collect ~hedged ~outstanding:(outstanding - 1)
  in
  match Mailbox.recv_timeout mb (hedge_delay t) with
  | Some (_, Ok data) -> Ok data
  | Some (_, Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied)) ->
      Error Pm_types.Permission_denied
  | Some (_, Error _) ->
      (* The primary failed outright: classic failover, not a hedge. *)
      ignore (Sim.spawn sim ~name:"pm-read-failover" (fetch ~mirror:true));
      collect ~hedged:false ~outstanding:1
  | None ->
      t.hedged <- t.hedged + 1;
      bump_counter t "pm.hedged_reads";
      Span.annotate span ~key:"hedged" "1";
      ignore (Sim.spawn sim ~name:"pm-read-hedge" (fetch ~mirror:true));
      collect ~hedged:true ~outstanding:2

let read_plain ?(span = Span.null) t h ~off ~len =
  let region = h.region in
  if not (bounds_ok region ~off ~len) then Error (Pm_types.Bad_request "read out of bounds")
  else begin
    let addr = region.Pm_types.net_base + off in
    let mirror_usable = region.Pm_types.mirror_active in
    let hedge = t.cfg.hedged_reads && t.cfg.mirrored_writes && mirror_usable in
    (* Rounds of primary-then-mirror (or a hedged pair): a transient
       fabric error on both devices (rail flap mid-burst) earns a
       jittered backoff and another round, bounded by [data_retries].
       A demoted mirror is skipped entirely — its contents are stale. *)
    let rec round attempt =
      let result =
        if hedge then hedged_fetch ~span t region ~addr ~len
        else
          match timed_read t region ~mirror:false ~addr ~len with
          | Ok data -> Ok data
          | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
              Error Pm_types.Permission_denied
          | Error _ when not mirror_usable -> Error Pm_types.Device_failed
          | Error _ -> (
              match timed_read t region ~mirror:true ~addr ~len with
              | Ok data ->
                  t.read_failovers <- t.read_failovers + 1;
                  bump_counter t "pm.read_failovers";
                  Span.annotate span ~key:"failover" "1";
                  Ok data
              | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
                  Error Pm_types.Permission_denied
              | Error _ -> Error Pm_types.Device_failed)
      in
      match result with
      | Error Pm_types.Device_failed when attempt < t.cfg.data_retries ->
          backoff_sleep t ~base:(data_backoff_base t) ~attempt;
          round (attempt + 1)
      | result -> result
    in
    round 0
  end

let read_device t h ~mirror ~off ~len =
  let region = h.region in
  if not (bounds_ok region ~off ~len) then Error (Pm_types.Bad_request "read out of bounds")
  else
    let dst = if mirror then region.Pm_types.mirror_npmu else region.Pm_types.primary_npmu in
    match
      Servernet.Fabric.rdma_read t.fabric ~src:(Cpu.endpoint t.client_cpu) ~dst
        ~addr:(region.Pm_types.net_base + off) ~len
    with
    | Ok data -> Ok data
    | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
        Error Pm_types.Permission_denied
    | Error _ -> Error Pm_types.Device_failed

(* Arbitrate and repair every chunk of a divergent range.  The PMM's
   durable chunk-checksum table decides which copy is truth: the copy
   whose CRC matches is written over the other (read-repair).  A chunk
   the table cannot vouch for — never scanned clean, quarantined, or
   both copies corrupt — is left alone and counted as unrepaired; the
   scrubber's strike machinery owns its fate. *)
let verify_repair_range t h ~addr ~len =
  let region = h.region in
  let src = Cpu.endpoint t.client_cpu in
  let read_dev dst ~addr ~len = Servernet.Fabric.rdma_read t.fabric ~src ~dst ~addr ~len in
  let repair ~dst ~chunk_off ~data =
    match
      Servernet.Fabric.rdma_write ~epoch:region.Pm_types.epoch t.fabric ~src ~dst
        ~addr:chunk_off ~data
    with
    | Ok () ->
        t.read_repaired <- t.read_repaired + 1;
        bump_counter t "pm.read_repairs"
    | Error _ ->
        t.verify_unrepaired <- t.verify_unrepaired + 1;
        bump_counter t "pm.verify_unrepaired"
  in
  let rec sweep pos =
    if pos < addr + len then
      match mgmt_call t (Pmm.Chunk_crc { addr = pos }) with
      | Ok (Pmm.R_chunk_crc { chunk_off; chunk_len; crc; quarantined }) ->
          (if not quarantined then
             match
               ( read_dev region.Pm_types.primary_npmu ~addr:chunk_off ~len:chunk_len,
                 read_dev region.Pm_types.mirror_npmu ~addr:chunk_off ~len:chunk_len )
             with
             | Ok p, Ok m when not (Bytes.equal p m) -> (
                 match crc with
                 | Some trusted ->
                     let cp = Crc32.bytes p and cm = Crc32.bytes m in
                     if Int32.equal trusted cp then
                       repair ~dst:region.Pm_types.mirror_npmu ~chunk_off ~data:p
                     else if Int32.equal trusted cm then
                       repair ~dst:region.Pm_types.primary_npmu ~chunk_off ~data:m
                     else begin
                       t.verify_unrepaired <- t.verify_unrepaired + 1;
                       bump_counter t "pm.verify_unrepaired"
                     end
                 | None ->
                     t.verify_unrepaired <- t.verify_unrepaired + 1;
                     bump_counter t "pm.verify_unrepaired")
             | _ -> ());
          sweep (chunk_off + chunk_len)
      | Ok _ | Error _ ->
          (* The PMM cannot arbitrate right now (takeover in flight, or
             the range fell off the region map); the plain read below
             still serves data, just unverified. *)
          t.verify_unrepaired <- t.verify_unrepaired + 1;
          bump_counter t "pm.verify_unrepaired"
  in
  sweep addr

let read_verified_sp span t h ~off ~len =
  let region = h.region in
  if not (bounds_ok region ~off ~len) then Error (Pm_types.Bad_request "read out of bounds")
  else if not region.Pm_types.mirror_active then
    (* Demoted mirror: its contents are legitimately stale, so there is
       nothing meaningful to cross-check until re-admission resyncs it. *)
    read_plain ~span t h ~off ~len
  else begin
    let addr = region.Pm_types.net_base + off in
    let src = Cpu.endpoint t.client_cpu in
    let p =
      Servernet.Fabric.rdma_read t.fabric ~src ~dst:region.Pm_types.primary_npmu ~addr ~len
    in
    let m =
      Servernet.Fabric.rdma_read t.fabric ~src ~dst:region.Pm_types.mirror_npmu ~addr ~len
    in
    match (p, m) with
    | Ok dp, Ok dm when Bytes.equal dp dm -> Ok dp
    | Ok _, Ok _ ->
        t.verify_divergent <- t.verify_divergent + 1;
        bump_counter t "pm.verify_divergence";
        Span.annotate span ~key:"divergent" "1";
        verify_repair_range t h ~addr ~len;
        (* Serve the post-repair contents; where repair was impossible
           this degrades to the plain read's primary-first answer. *)
        read_plain ~span t h ~off ~len
    | _ ->
        (* One copy unreachable: nothing to cross-check, and the plain
           path already owns failover and retry. *)
        read_plain ~span t h ~off ~len
  end

let read_verified t h ~off ~len = read_verified_sp Span.null t h ~off ~len

let read ?span t h ~off ~len =
  let sp =
    match t.obs with
    | None -> Span.null
    | Some o ->
        let sp = Span.start (Obs.spans o) ~track:"pm" ?parent:span "pm.read" in
        if not (Span.is_null sp) then begin
          Span.annotate sp ~key:"region" h.region.Pm_types.region_name;
          Span.annotate sp ~key:"len" (string_of_int len)
        end;
        sp
  in
  let r =
    if t.cfg.verified_reads then read_verified_sp sp t h ~off ~len
    else read_plain ~span:sp t h ~off ~len
  in
  (match r with Error _ -> Span.annotate sp ~key:"error" "1" | Ok _ -> ());
  (match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ());
  r

let degraded_writes t = t.degraded

let write_retries t = t.retried_writes

let read_failovers t = t.read_failovers

let read_repairs t = t.read_repaired

let verify_divergences t = t.verify_divergent

let verify_unrepaired t = t.verify_unrepaired

let verified_reads_enabled t = t.cfg.verified_reads

let fenced_writes t = t.fenced

let mgmt_retries_used t = t.mgmt_retried

let mgmt_retry_exhausted t = t.mgmt_exhausted

let mgmt_retry_budget t = t.retry_budget

let slow_suspects t = t.slow_suspects

let hedged_reads_fired t = t.hedged

let hedge_wins t = t.hedge_won

let single_copy_writes t = t.single_copy

let latency_suspect t ~mirror = if mirror then t.mh.suspect else t.ph.suspect

let latency_ewma t ~mirror = if mirror then t.mh.ewma else t.ph.ewma

let write_latency t = t.latency
