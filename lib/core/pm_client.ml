open Simkit
open Nsk

type config = {
  mirrored_writes : bool;
  write_penalty : Time.span;
  mgmt_timeout : Time.span;
  mgmt_retries : int;
}

let default_config =
  {
    mirrored_writes = true;
    write_penalty = 0;
    mgmt_timeout = Time.sec 2;
    mgmt_retries = 3;
  }

type t = {
  client_cpu : Cpu.t;
  fabric : Servernet.Fabric.t;
  pmm : Pmm.server;
  cfg : config;
  mutable degraded : int;
  latency : Stat.t;
  obs : Obs.t option;
}

type handle = { t : t; region : Pm_types.region_info }

let attach ~cpu ~fabric ~pmm ?(config = default_config) ?obs () =
  {
    client_cpu = cpu;
    fabric;
    pmm;
    cfg = config;
    degraded = 0;
    latency =
      (* With an observability context every client aggregates into the
         one registry-owned stat; otherwise each keeps a private one. *)
      (match obs with
      | Some o -> Metrics.stat (Obs.metrics o) "pm.write_ns"
      | None -> Stat.create ~name:"pm_write" ());
    obs;
  }

let cpu t = t.client_cpu

let info h = h.region

(* Management RPC with retry across PMM takeovers. *)
let mgmt_call t req =
  let rec go attempts =
    match Msgsys.call t.pmm ~from:t.client_cpu ~timeout:t.cfg.mgmt_timeout req with
    | Ok resp -> Ok resp
    | Error (Msgsys.Server_down | Msgsys.Timed_out) ->
        if attempts <= 0 then Error Pm_types.Manager_down
        else begin
          Sim.sleep (Time.ms 100);
          go (attempts - 1)
        end
  in
  go t.cfg.mgmt_retries

let region_result t = function
  | Ok (Pmm.R_region region) -> Ok { t; region }
  | Ok (Pmm.R_error e) -> Error e
  | Ok _ -> Error (Pm_types.Bad_request "unexpected PMM response")
  | Error e -> Error e

let create_region t ~name ~size =
  let client = Cpu.endpoint_id t.client_cpu in
  region_result t (mgmt_call t (Pmm.Create { rname = name; size; client }))

let open_region t ~name =
  let client = Cpu.endpoint_id t.client_cpu in
  region_result t (mgmt_call t (Pmm.Open { rname = name; client }))

let unit_result = function
  | Ok Pmm.R_ok -> Ok ()
  | Ok (Pmm.R_error e) -> Error e
  | Ok _ -> Error (Pm_types.Bad_request "unexpected PMM response")
  | Error e -> Error e

let close_region t h =
  let client = Cpu.endpoint_id t.client_cpu in
  unit_result (mgmt_call t (Pmm.Close { rname = h.region.Pm_types.region_name; client }))

let delete_region t ~name = unit_result (mgmt_call t (Pmm.Delete { rname = name }))

let list_regions t =
  match mgmt_call t Pmm.List_regions with
  | Ok (Pmm.R_regions rs) -> Ok rs
  | Ok (Pmm.R_error e) -> Error e
  | Ok _ -> Error (Pm_types.Bad_request "unexpected PMM response")
  | Error e -> Error e

let bounds_ok region ~off ~len =
  off >= 0 && len >= 0 && off + len <= region.Pm_types.length

let write ?span t h ~off ~data =
  let region = h.region in
  let len = Bytes.length data in
  if not (bounds_ok region ~off ~len) then Error (Pm_types.Bad_request "write out of bounds")
  else begin
    let started = Sim.now (Cpu.sim t.client_cpu) in
    let sp =
      match t.obs with
      | None -> Span.null
      | Some o ->
          let sp = Span.start (Obs.spans o) ~track:"pm" ?parent:span "pm.write" in
          Span.annotate sp ~key:"region" region.Pm_types.region_name;
          Span.annotate sp ~key:"len" (string_of_int len);
          sp
    in
    let addr = region.Pm_types.net_base + off in
    let src = Cpu.endpoint t.client_cpu in
    if t.cfg.write_penalty > 0 then Sim.sleep t.cfg.write_penalty;
    let primary_result =
      Servernet.Fabric.rdma_write ~span:sp t.fabric ~src ~dst:region.Pm_types.primary_npmu
        ~addr ~data
    in
    let mirror_result =
      if t.cfg.mirrored_writes then
        Servernet.Fabric.rdma_write ~span:sp t.fabric ~src ~dst:region.Pm_types.mirror_npmu
          ~addr ~data
      else primary_result
    in
    let outcome =
      match (primary_result, mirror_result) with
      | Ok (), Ok () -> Ok ()
      | Ok (), Error _ | Error _, Ok () ->
          t.degraded <- t.degraded + 1;
          Ok ()
      | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied), _
      | _, Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
          Error Pm_types.Permission_denied
      | Error _, Error _ -> Error Pm_types.Device_failed
    in
    (match outcome with
    | Ok () -> Stat.add_span t.latency (Sim.now (Cpu.sim t.client_cpu) - started)
    | Error _ -> ());
    (match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ());
    outcome
  end

let read t h ~off ~len =
  let region = h.region in
  if not (bounds_ok region ~off ~len) then Error (Pm_types.Bad_request "read out of bounds")
  else begin
    let addr = region.Pm_types.net_base + off in
    let src = Cpu.endpoint t.client_cpu in
    match Servernet.Fabric.rdma_read t.fabric ~src ~dst:region.Pm_types.primary_npmu ~addr ~len with
    | Ok data -> Ok data
    | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
        Error Pm_types.Permission_denied
    | Error _ -> (
        match
          Servernet.Fabric.rdma_read t.fabric ~src ~dst:region.Pm_types.mirror_npmu ~addr ~len
        with
        | Ok data -> Ok data
        | Error (Servernet.Fabric.Avt_error Servernet.Avt.Access_denied) ->
            Error Pm_types.Permission_denied
        | Error _ -> Error Pm_types.Device_failed)
  end

let degraded_writes t = t.degraded

let write_latency t = t.latency
