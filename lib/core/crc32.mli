(** CRC-32 (IEEE 802.3 polynomial), used to checksum persistent-memory
    metadata records and audit-trail records so that recovery can tell a
    torn or corrupt record from a valid one. *)

val bytes : Bytes.t -> int32

val sub : Bytes.t -> pos:int -> len:int -> int32

val string : string -> int32

(** {2 Incremental interface}

    For callers that checksum a logical record arriving in pieces (the
    PMM scrubber hashes a chunk in RDMA-sized slices).  Feeding the same
    bytes through any sequence of {!update} calls yields exactly the
    one-shot result: [finish (update init b ~pos:0 ~len)] = [sub b ~pos:0
    ~len]. *)

type state
(** Running CRC accumulator (pre-conditioned, not a final checksum). *)

val init : state

val update : state -> Bytes.t -> pos:int -> len:int -> state
(** Fold [len] bytes of [buf] starting at [pos] into the accumulator.
    Raises [Invalid_argument] if the slice is out of range. *)

val finish : state -> int32
(** Extract the checksum.  The state may not be reused afterwards. *)
