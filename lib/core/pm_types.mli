(** Shared identifiers and errors of the persistent-memory system. *)

type error =
  | No_such_region
  | Region_exists
  | Out_of_space
  | Permission_denied
  | Region_busy  (** delete attempted while clients hold the region open *)
  | Device_failed  (** no NPMU of the mirrored pair could be reached *)
  | Manager_down  (** PMM pair lost or unreachable *)
  | Fenced  (** write rejected: region grant predates the volume epoch *)
  | Bad_request of string

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

type region_info = {
  region_name : string;
  net_base : int;  (** network virtual address of the region's window *)
  length : int;
  primary_npmu : int;  (** fabric endpoint id *)
  mirror_npmu : int;
  epoch : int;
      (** volume epoch when the grant was issued; stale-epoch writes are
          fenced by the NPMUs after takeover/resync *)
  mirror_active : bool;
      (** [false] while the PMM has demoted a persistently slow (or
          failed) mirror copy: the client writes single-copy under the
          degraded-durability contract and skips mirror reads until the
          resync path re-admits the device *)
}

val pp_region_info : Format.formatter -> region_info -> unit
