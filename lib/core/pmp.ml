open Simkit
open Nsk

type t = {
  pmp_name : string;
  capacity : int;
  mem : Bytes.t;
  ep : Servernet.Fabric.endpoint;
  host : Cpu.t;
  mutable alive : bool;
}

let create cpu fabric ~name ~capacity =
  if capacity <= 0 then invalid_arg "Pmp.create: capacity must be positive";
  let mem = Bytes.make capacity '\000' in
  let store =
    {
      Servernet.Fabric.size = capacity;
      read = (fun ~off ~len -> Bytes.sub mem off len);
      write = (fun ~off ~data -> Bytes.blit data 0 mem off (Bytes.length data));
    }
  in
  let ep = Servernet.Fabric.attach fabric ~name ~store in
  let t = { pmp_name = name; capacity; mem; ep; host = cpu; alive = true } in
  let die () =
    if t.alive then begin
      t.alive <- false;
      Servernet.Fabric.set_alive t.ep false;
      Bytes.fill t.mem 0 t.capacity '\000'
    end
  in
  (* The hosting process only pins the memory; data moves by RDMA without
     any PMP CPU involvement, exactly as the paper stresses. *)
  let pid = Cpu.spawn cpu ~name (fun () -> ignore (Mailbox.recv (Mailbox.create () : unit Mailbox.t))) in
  Sim.on_exit (Cpu.sim cpu) pid (fun _ -> die ());
  t

let name t = t.pmp_name

let capacity t = t.capacity

let endpoint t = t.ep

let id t = Servernet.Fabric.id t.ep

let avt t = Servernet.Fabric.avt t.ep

let is_alive t = t.alive

let fenced_writes t = Servernet.Avt.fenced (Servernet.Fabric.avt t.ep)

let power_loss t =
  if t.alive then begin
    t.alive <- false;
    Servernet.Fabric.set_alive t.ep false;
    Bytes.fill t.mem 0 t.capacity '\000'
  end

let peek t ~off ~len =
  if off < 0 || len < 0 || off + len > t.capacity then invalid_arg "Pmp.peek: out of range";
  Bytes.sub t.mem off len

let poke t ~off ~data =
  let len = Bytes.length data in
  if off < 0 || off + len > t.capacity then invalid_arg "Pmp.poke: out of range";
  Bytes.blit data 0 t.mem off len
