open Simkit

(** Network Persistent Memory Unit: the hardware device of the paper's
    architecture (§4.1).

    An NPMU is a ServerNet endpoint whose store is non-volatile RAM.  It
    has no CPU in the data path: initiators RDMA straight into its
    memory through the AVT windows the Persistent Memory Manager
    programs.  {!power_loss} drops it off the fabric but — unlike the
    {!Pmp} prototype — its contents survive and reappear on
    {!power_restore}. *)

type t

val create : Sim.t -> Servernet.Fabric.t -> name:string -> capacity:int -> t

val instrument : t -> Metrics.t -> unit
(** Export the device's cumulative store traffic as gauges under
    [npmu.<name>.*] ([writes], [reads], [bytes_written]). *)

val writes : t -> int
(** Stores performed through the NIC (RDMA-delivered writes). *)

val reads : t -> int

val bytes_written : t -> int

val name : t -> string

val capacity : t -> int

val endpoint : t -> Servernet.Fabric.endpoint

val id : t -> int
(** Fabric endpoint id. *)

val avt : t -> Servernet.Avt.t

val is_powered : t -> bool

val power_cycles : t -> int
(** Number of {!power_loss} events since creation.  The PMM compares
    this across a resync copy to detect a blip that happened entirely
    inside one chunk transfer. *)

val fenced_writes : t -> int
(** Writes this device's AVT rejected with [Stale_epoch]. *)

val power_loss : t -> unit
(** The device disappears from the fabric; memory contents are retained
    (durable media, no refresh needed). *)

val power_restore : t -> unit
(** Back on the fabric with contents intact.  AVT windows survive too:
    the paper requires durable, self-consistent metadata for continued
    access after power loss. *)

val peek : t -> off:int -> len:int -> Bytes.t
(** Maintenance-path read of raw device memory (no fabric traffic, no
    timing).  Used by recovery tooling and tests. *)

val poke : t -> off:int -> data:Bytes.t -> unit
(** Maintenance-path write.  Tests only; production writes go through
    RDMA. *)

(** {2 Silent-corruption injection}

    Maintenance-path fault primitives for integrity drills.  Neither
    touches the fabric or advances time, and neither is observable to
    initiators except through the corrupted bytes themselves — that is
    what makes the corruption {e silent}. *)

val decay : t -> off:int -> bits:int -> unit
(** Media decay: flip [bits] consecutive bit positions starting at byte
    [off] (bit [i] of the run toggles bit [i mod 8] of byte
    [off + i/8]).  Deterministic — same arguments, same damage.  Raises
    [Invalid_argument] if the affected byte span is out of range. *)

val decay_events : t -> int
(** Number of {!decay} injections since creation. *)

val bits_flipped : t -> int
(** Total bits flipped by {!decay} since creation. *)

val tear_last_write : t -> (int * int) option
(** Torn store: corrupt the trailing half of the most recent
    RDMA-delivered write, modelling a power cut that lands mid-store
    (the NIC pushes payload in order, so the tear is a suffix).
    Returns [Some (off, len)] of the torn span, or [None] when no write
    has landed yet or the last write was a single byte. *)

val torn_writes : t -> int
(** Number of successful {!tear_last_write} injections. *)

(** {2 Fail-slow injection}

    Gray-failure primitives for the grayfail drill: the device keeps
    answering — correctly — but late, modelling worn media, a throttled
    controller, or an NIC in retry storms. *)

val degrade : t -> factor:float -> ?jitter:Time.span -> unit -> unit
(** Stretch every RDMA transfer touching this device by [factor]
    ([>= 1.0]) plus up to [jitter] seeded extra per transfer — delegated
    to the fabric endpoint ({!Servernet.Fabric.set_endpoint_slow}), since
    an NPMU has no CPU and all its latency lives on the fabric path. *)

val restore_speed : t -> unit
(** Back to full speed (factor 1.0, no jitter). *)

val slow_factor : t -> float
(** The multiplier currently in force (1.0 when healthy). *)

val is_degraded : t -> bool

val degrade_events : t -> int
(** Number of {!degrade} injections since creation. *)
