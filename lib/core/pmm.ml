open Simkit
open Nsk

type device = {
  dev_name : string;
  dev_id : int;
  dev_capacity : int;
  dev_avt : Servernet.Avt.t;
  dev_peek : off:int -> len:int -> Bytes.t;
  dev_poke : off:int -> data:Bytes.t -> unit;
  dev_power_cycles : unit -> int;
  dev_alive : unit -> bool;
}

let device_of_npmu npmu =
  {
    dev_name = Npmu.name npmu;
    dev_id = Npmu.id npmu;
    dev_capacity = Npmu.capacity npmu;
    dev_avt = Npmu.avt npmu;
    dev_peek = (fun ~off ~len -> Npmu.peek npmu ~off ~len);
    dev_poke = (fun ~off ~data -> Npmu.poke npmu ~off ~data);
    dev_power_cycles = (fun () -> Npmu.power_cycles npmu);
    dev_alive = (fun () -> Npmu.is_powered npmu);
  }

let device_of_pmp pmp =
  {
    dev_name = Pmp.name pmp;
    dev_id = Pmp.id pmp;
    dev_capacity = Pmp.capacity pmp;
    dev_avt = Pmp.avt pmp;
    dev_peek = (fun ~off ~len -> Pmp.peek pmp ~off ~len);
    dev_poke = (fun ~off ~data -> Pmp.poke pmp ~off ~data);
    (* A PMP's power loss is terminal; "has it ever died" is the whole
       cycle history. *)
    dev_power_cycles = (fun () -> if Pmp.is_alive pmp then 0 else 1);
    dev_alive = (fun () -> Pmp.is_alive pmp);
  }

type request =
  | Create of { rname : string; size : int; client : int }
  | Open of { rname : string; client : int }
  | Close of { rname : string; client : int }
  | Delete of { rname : string }
  | List_regions
  | Stat
  | Resync of { from_primary : bool }
  | Chunk_crc of { addr : int }

type stat_info = {
  capacity : int;
  allocated : int;
  region_count : int;
  degraded : bool;
  generation : int;
}

type response =
  | R_region of Pm_types.region_info
  | R_regions of Pm_types.region_info list
  | R_stat of stat_info
  | R_ok
  | R_resynced of { bytes : int }
  | R_chunk_crc of {
      chunk_off : int;
      chunk_len : int;
      crc : int32 option;
      quarantined : bool;
    }
  | R_error of Pm_types.error

type server = (request, response) Msgsys.server

type config = { meta_reserve : int; op_cpu_cost : Time.span; mgmt_bytes : int }

let default_config = { meta_reserve = 64 * 1024; op_cpu_cost = Time.us 10; mgmt_bytes = 128 }

type scrub_config = {
  scrub_chunk_bytes : int;
  scrub_interval : Time.span;
  scrub_recheck : Time.span;
  scrub_quarantine_after : int;
}

let default_scrub_config =
  {
    scrub_chunk_bytes = 256 * 1024;
    scrub_interval = Time.us 100;
    scrub_recheck = Time.us 50;
    scrub_quarantine_after = 3;
  }

type health_config = {
  probe_interval : Time.span;
  probe_bytes : int;
  health_slo : Time.span;
  health_alpha : float;
  demote_after : int;
  readmit_after : int;
}

let default_health_config =
  {
    probe_interval = Time.us 250;
    probe_bytes = 64;
    health_slo = Time.us 100;
    health_alpha = 0.5;
    demote_after = 2;
    readmit_after = 8;
  }

(* --- Metadata representation --- *)

type region = { rname : string; offset : int; length : int; mutable openers : int list }

type meta = { mutable generation : int; mutable epoch : int; mutable regions : region list }

let magic = 0x504D4D31 (* "PMM1" *)

let header_bytes = 4 + 8 + 4 + 4

let encode_meta meta =
  let enc = Codec.Enc.create () in
  Codec.Enc.u32 enc (List.length meta.regions);
  let encode_region r =
    Codec.Enc.str enc r.rname;
    Codec.Enc.u32 enc r.offset;
    Codec.Enc.u32 enc r.length;
    Codec.Enc.u16 enc (List.length r.openers);
    List.iter (Codec.Enc.u16 enc) r.openers
  in
  List.iter encode_region meta.regions;
  Codec.Enc.u64 enc meta.generation;
  Codec.Enc.u64 enc meta.epoch;
  Codec.Enc.to_bytes enc

let decode_meta blob =
  let dec = Codec.Dec.of_bytes blob in
  let count = Codec.Dec.u32 dec in
  let decode_region () =
    let rname = Codec.Dec.str dec in
    let offset = Codec.Dec.u32 dec in
    let length = Codec.Dec.u32 dec in
    let nopen = Codec.Dec.u16 dec in
    let openers = List.init nopen (fun _ -> Codec.Dec.u16 dec) in
    { rname; offset; length; openers }
  in
  let regions = List.init count (fun _ -> decode_region ()) in
  let generation = Codec.Dec.u64 dec in
  let epoch = Codec.Dec.u64 dec in
  { generation; epoch; regions }

(* A slot image: header (magic, generation, length, crc) then payload. *)
let slot_image meta =
  let payload = encode_meta meta in
  let hdr = Codec.Enc.create () in
  Codec.Enc.u32 hdr magic;
  Codec.Enc.u64 hdr meta.generation;
  Codec.Enc.u32 hdr (Bytes.length payload);
  Codec.Enc.u32 hdr (Int32.to_int (Crc32.bytes payload) land 0xFFFFFFFF);
  let out = Bytes.create (header_bytes + Bytes.length payload) in
  Bytes.blit (Codec.Enc.to_bytes hdr) 0 out 0 header_bytes;
  Bytes.blit payload 0 out header_bytes (Bytes.length payload);
  out

let parse_slot bytes_ =
  try
    let dec = Codec.Dec.of_bytes bytes_ in
    let m = Codec.Dec.u32 dec in
    if m <> magic then None
    else
      let generation = Codec.Dec.u64 dec in
      let len = Codec.Dec.u32 dec in
      let crc = Codec.Dec.u32 dec in
      if len > Bytes.length bytes_ - header_bytes then None
      else
        let payload = Bytes.sub bytes_ header_bytes len in
        if Int32.to_int (Crc32.bytes payload) land 0xFFFFFFFF <> crc then None
        else
          let meta = decode_meta payload in
          if meta.generation <> generation then None else Some meta
  with Codec.Dec.Truncated -> None

(* --- The manager --- *)

(* Scrubber state.  The chunk-checksum table maps the absolute device
   offset of a chunk (chunked per region, from the region base) to the
   CRC32 of the chunk's last known-good contents. *)
type scrub = {
  s_cfg : scrub_config;
  s_cpu : Cpu.t;
  s_table : (int, int32) Hashtbl.t;
  s_clean_cycles : (int, int * int) Hashtbl.t;
      (** chunk offset -> (primary, mirror) power-cycle counts when the
          entry was last marked clean.  A copy that matches the table but
          whose device has power-cycled since may have {e rolled back} to
          the blessed contents — the match no longer proves integrity, so
          arbitration must not repair the peer from it.  Deliberately not
          persisted: after a manager restart the history is unknown, and
          an absent snapshot disables arbitration (strike, never repair)
          until the next clean scan re-records it. *)
  s_strikes : (int, int) Hashtbl.t;  (** consecutive unresolvable passes *)
  s_quar : (int, int) Hashtbl.t;  (** chunk offset -> chunk length *)
  mutable s_generation : int;
  mutable s_running : bool;
  mutable s_passes : int;
  mutable s_chunks : int;  (** chunks compared, cumulative *)
  mutable s_repairs : int;
  mutable s_quarantined : int;
  s_probe : Probe.t option;
}

(* Mirror-health monitor state: tiny timed RDMA probes of both devices,
   EWMA-smoothed, driving slow-mirror demotion and re-admission. *)
type monitor = {
  m_cfg : health_config;
  m_cpu : Cpu.t;
  mutable m_running : bool;
  mutable m_probes : int;
  mutable m_prim_ewma : float;
  mutable m_mirr_ewma : float;
  mutable m_mirr_breaches : int;  (** consecutive over-budget mirror probes *)
  mutable m_mirr_healthy : int;  (** consecutive in-budget mirror probes *)
}

type t = {
  fabric : Servernet.Fabric.t;
  pmm_name : string;
  cfg : config;
  prim_dev : device;
  mirr_dev : device;
  srv : server;
  mutable pair : Bytes.t Procpair.t option;
  mutable live : meta option;
  mutable shadow : Bytes.t option;
  mutable prim_ok : bool;
  mutable mirr_ok : bool;
  mutable mgmt_initiators : int list;  (** the PMM pair's own endpoints *)
  mutable recovery_time : Time.span option;
  mutable scrub : scrub option;
  mutable mirror_active : bool;
      (** false while a persistently slow mirror is demoted: clients
          write single-copy under the degraded-durability contract *)
  mutable demotions : int;
  mutable readmissions : int;
  mutable monitor : monitor option;
}

let slot_offset cfg slot = slot * (cfg.meta_reserve / 2)

let format cfg prim mirr =
  let meta = { generation = 1; epoch = 1; regions = [] } in
  let image = slot_image meta in
  let write_device dev =
    dev.dev_poke ~off:(slot_offset cfg 0) ~data:image;
    dev.dev_poke ~off:(slot_offset cfg 1) ~data:image;
    (* Leave the metadata window open for management until a PMM claims
       the volume and narrows access to its own CPUs. *)
    (match
       Servernet.Avt.map dev.dev_avt ~net_base:0 ~length:cfg.meta_reserve ~phys_base:0
         ~access:(Servernet.Avt.read_write Servernet.Avt.Any_initiator)
     with
    | Ok () | Error _ -> ());
    Servernet.Avt.set_epoch dev.dev_avt meta.epoch
  in
  write_device prim;
  write_device mirr

let server t = t.srv

let config t = t.cfg

let degraded t = not (t.prim_ok && t.mirr_ok)

let last_recovery_time t = t.recovery_time

let pair_exn t =
  match t.pair with Some p -> p | None -> invalid_arg "Pmm: pair not started"

let takeovers t = Procpair.takeovers (pair_exn t)

let kill_primary t = Procpair.kill_primary (pair_exn t)

let outage_time t = Procpair.outage_time (pair_exn t)

let halt t = Procpair.halt (pair_exn t)

let live_exn t =
  match t.live with Some m -> m | None -> invalid_arg "Pmm: no live metadata"

(* Program (or reprogram) the AVT window of a region on one device.  The
   manager's own CPUs stay on the list: they need the data path for
   mirror resynchronization. *)
let program_window t dev region =
  let access =
    Servernet.Avt.read_write (Servernet.Avt.Initiators (t.mgmt_initiators @ region.openers))
  in
  match
    Servernet.Avt.map dev.dev_avt ~net_base:region.offset ~length:region.length
      ~phys_base:region.offset ~access
  with
  | Ok () -> ()
  | Error _ -> ignore (Servernet.Avt.set_access dev.dev_avt ~net_base:region.offset access)

let unmap_window dev region = ignore (Servernet.Avt.unmap dev.dev_avt ~net_base:region.offset)

(* The management path to a device: a small command exchange on the
   fabric.  We model its wire time without moving payload. *)
let mgmt_delay t = Sim.sleep (Servernet.Fabric.transfer_time t.fabric ~bytes:t.cfg.mgmt_bytes)

let current_cpu t = Procpair.primary_cpu (pair_exn t)

let src_endpoint t = Cpu.endpoint (current_cpu t)

(* Persist the table to both devices (new generation, alternating slot).
   Returns false when neither device accepted the write.  Metadata writes
   carry the table's own epoch, so a deposed primary that lost a takeover
   race is fenced off the volume like any other stale writer. *)
let persist t meta =
  meta.generation <- meta.generation + 1;
  let image = slot_image meta in
  let slot = meta.generation mod 2 in
  let addr = slot_offset t.cfg slot in
  let write_dev dev =
    match
      Servernet.Fabric.rdma_write ~epoch:meta.epoch t.fabric ~src:(src_endpoint t)
        ~dst:dev.dev_id ~addr ~data:image
    with
    | Ok () -> true
    | Error _ -> false
  in
  t.prim_ok <- write_dev t.prim_dev;
  t.mirr_ok <- write_dev t.mirr_dev;
  t.prim_ok || t.mirr_ok

let checkpoint_meta t meta =
  let blob = encode_meta meta in
  match t.pair with
  | Some pair -> Procpair.checkpoint pair ~bytes:(Bytes.length blob) blob
  | None -> ()

(* Fence the volume: advance the epoch past anything either device has
   seen, persist it durably, then arm both AVTs.  The persist happens
   {e before} the AVTs move so the metadata write itself is never fenced;
   from the set_epoch on, every write descriptor stamped with an older
   grant bounces with [Stale_epoch]. *)
let bump_epoch t meta =
  let armed =
    max
      (Servernet.Avt.epoch t.prim_dev.dev_avt)
      (Servernet.Avt.epoch t.mirr_dev.dev_avt)
  in
  meta.epoch <- max (meta.epoch + 1) (armed + 1);
  ignore (persist t meta);
  Servernet.Avt.set_epoch t.prim_dev.dev_avt meta.epoch;
  Servernet.Avt.set_epoch t.mirr_dev.dev_avt meta.epoch;
  checkpoint_meta t meta

(* Narrow the metadata windows to this PMM's CPUs. *)
let claim_metadata_windows t ~primary_cpu ~backup_cpu =
  let who =
    Servernet.Avt.Initiators [ Cpu.endpoint_id primary_cpu; Cpu.endpoint_id backup_cpu ]
  in
  let claim dev =
    ignore (Servernet.Avt.set_access dev.dev_avt ~net_base:0 (Servernet.Avt.read_write who))
  in
  claim t.prim_dev;
  claim t.mirr_dev

(* Cold-boot recovery: RDMA-read every slot of both devices and adopt the
   newest CRC-valid table. *)
let recover t =
  let started = Sim.now (Cpu.sim (current_cpu t)) in
  let read_slot dev slot =
    let addr = slot_offset t.cfg slot in
    let len = t.cfg.meta_reserve / 2 in
    match
      Servernet.Fabric.rdma_read t.fabric ~src:(src_endpoint t) ~dst:dev.dev_id ~addr ~len
    with
    | Ok data -> parse_slot data
    | Error _ -> None
  in
  let candidates =
    [
      read_slot t.prim_dev 0;
      read_slot t.prim_dev 1;
      read_slot t.mirr_dev 0;
      read_slot t.mirr_dev 1;
    ]
  in
  let best =
    List.fold_left
      (fun acc c ->
        match (acc, c) with
        | None, c -> c
        | Some a, Some b -> if b.generation > a.generation then Some b else Some a
        | Some a, None -> Some a)
      None candidates
  in
  let meta =
    match best with Some m -> m | None -> { generation = 1; epoch = 1; regions = [] }
  in
  (* Re-assert data windows (idempotent on devices that kept their AVT). *)
  let assert_windows dev = List.iter (program_window t dev) meta.regions in
  assert_windows t.prim_dev;
  assert_windows t.mirr_dev;
  t.recovery_time <- Some (Sim.now (Cpu.sim (current_cpu t)) - started);
  meta

(* --- Request handling (primary only) --- *)

let find_region meta rname = List.find_opt (fun r -> String.equal r.rname rname) meta.regions

let data_capacity t = min t.prim_dev.dev_capacity t.mirr_dev.dev_capacity - t.cfg.meta_reserve

(* First-fit allocation in [meta_reserve, capacity). *)
let allocate t meta size =
  let limit = t.cfg.meta_reserve + data_capacity t in
  let sorted = List.sort (fun a b -> compare a.offset b.offset) meta.regions in
  let rec fit cursor = function
    | [] -> if cursor + size <= limit then Some cursor else None
    | r :: rest -> if cursor + size <= r.offset then Some cursor else fit (r.offset + r.length) rest
  in
  fit t.cfg.meta_reserve sorted

let region_info t r =
  {
    Pm_types.region_name = r.rname;
    net_base = r.offset;
    length = r.length;
    primary_npmu = t.prim_dev.dev_id;
    mirror_npmu = t.mirr_dev.dev_id;
    epoch = (live_exn t).epoch;
    mirror_active = t.mirror_active;
  }

let epoch t = match t.live with Some m -> m.epoch | None -> 0

let apply_mutation t meta =
  if persist t meta then begin
    checkpoint_meta t meta;
    true
  end
  else begin
    (* Roll the generation back: nothing durable changed. *)
    meta.generation <- meta.generation - 1;
    false
  end

(* Copy every durable byte from one device of the pair onto the other:
   the metadata reserve plus every allocated extent, in 64 KiB RDMA
   transfers through the manager's CPU.  Shared by the Resync management
   request and the health monitor's re-admission path.  On success the
   rebuilt device gets its AVT windows back, a demoted mirror is
   re-admitted, and the volume is fenced so clients re-open against the
   fresh pair. *)
let do_resync t meta ~from_primary =
  let src_dev, dst_dev =
    if from_primary then (t.prim_dev, t.mirr_dev) else (t.mirr_dev, t.prim_dev)
  in
  let mark_dst_failed () = if from_primary then t.mirr_ok <- false else t.prim_ok <- false in
  (* A power cycle entirely inside one chunk transfer is invisible to
     the RDMA completion (the NIC only checks liveness at initiation),
     so snapshot the devices' cycle counters and compare after the
     copy: any blip means the rebuilt image cannot be trusted. *)
  let cycles () = src_dev.dev_power_cycles () + dst_dev.dev_power_cycles () in
  let cycles_before = cycles () in
  let chunk = 64 * 1024 in
  let copied = ref 0 in
  let copy_extent ~off ~len =
    let rec go pos =
      if pos >= len then Ok ()
      else
        let n = min chunk (len - pos) in
        match
          Servernet.Fabric.rdma_read t.fabric ~src:(src_endpoint t) ~dst:src_dev.dev_id
            ~addr:(off + pos) ~len:n
        with
        | Error e -> Error (Servernet.Fabric.error_to_string e)
        | Ok data -> (
            match
              Servernet.Fabric.rdma_write t.fabric ~src:(src_endpoint t) ~dst:dst_dev.dev_id
                ~addr:(off + pos) ~data
            with
            | Error e -> Error (Servernet.Fabric.error_to_string e)
            | Ok () ->
                copied := !copied + n;
                go (pos + n))
    in
    go 0
  in
  let extents =
    (0, t.cfg.meta_reserve) :: List.map (fun r -> (r.offset, r.length)) meta.regions
  in
  let rec copy_all = function
    | [] -> Ok ()
    | (off, len) :: rest -> (
        match copy_extent ~off ~len with Ok () -> copy_all rest | Error e -> Error e)
  in
  let result =
    match copy_all extents with
    | Error e -> Error e
    | Ok () when cycles () <> cycles_before -> Error "device power-cycled during copy"
    | Ok () -> Ok ()
  in
  match result with
  | Ok () ->
      (* The rebuilt device also needs the AVT windows. *)
      List.iter (program_window t dst_dev) meta.regions;
      t.prim_ok <- true;
      t.mirr_ok <- true;
      (* A fresh copy also re-admits a demoted (persistently slow)
         mirror: full-durability mirrored writes resume at the fence. *)
      if not t.mirror_active then begin
        t.mirror_active <- true;
        t.readmissions <- t.readmissions + 1
      end;
      (* A rebuilt mirror is a new incarnation of the volume: fence
         grants issued while it was degraded so clients re-open and
         resume mirrored writes against the fresh pair. *)
      bump_epoch t meta;
      Ok !copied
  | Error e ->
      (* The destination holds a half-built image: the volume stays
         degraded until a clean resync completes. *)
      mark_dst_failed ();
      Error e

(* Demote a persistently slow mirror: clients stop writing to (and
   reading from) it under the explicit degraded-durability contract.
   The epoch bump fences every outstanding grant, so clients re-open,
   see [mirror_active = false] in the refreshed region info, and switch
   to single-copy writes.  Re-admission is a resync. *)
let demote_mirror t =
  match t.live with
  | None -> false
  | Some meta ->
      if t.mirror_active then begin
        t.mirror_active <- false;
        t.demotions <- t.demotions + 1;
        bump_epoch t meta;
        true
      end
      else false

let handle_request t req =
  let meta = live_exn t in
  match req with
  | Create { rname; size; client } -> (
      if size <= 0 then R_error (Pm_types.Bad_request "size must be positive")
      else if find_region meta rname <> None then R_error Pm_types.Region_exists
      else
        match allocate t meta size with
        | None -> R_error Pm_types.Out_of_space
        | Some offset ->
            let region = { rname; offset; length = size; openers = [ client ] } in
            let saved = meta.regions in
            meta.regions <- region :: meta.regions;
            if apply_mutation t meta then begin
              program_window t t.prim_dev region;
              program_window t t.mirr_dev region;
              mgmt_delay t;
              R_region (region_info t region)
            end
            else begin
              meta.regions <- saved;
              R_error Pm_types.Device_failed
            end)
  | Open { rname; client } -> (
      match find_region meta rname with
      | None -> R_error Pm_types.No_such_region
      | Some region ->
          if List.mem client region.openers then R_region (region_info t region)
          else begin
            let saved = region.openers in
            region.openers <- client :: region.openers;
            if apply_mutation t meta then begin
              program_window t t.prim_dev region;
              program_window t t.mirr_dev region;
              mgmt_delay t;
              R_region (region_info t region)
            end
            else begin
              region.openers <- saved;
              R_error Pm_types.Device_failed
            end
          end)
  | Close { rname; client } -> (
      match find_region meta rname with
      | None -> R_error Pm_types.No_such_region
      | Some region ->
          if not (List.mem client region.openers) then R_ok
          else begin
            let saved = region.openers in
            region.openers <- List.filter (fun c -> c <> client) region.openers;
            if apply_mutation t meta then begin
              program_window t t.prim_dev region;
              program_window t t.mirr_dev region;
              mgmt_delay t;
              R_ok
            end
            else begin
              region.openers <- saved;
              R_error Pm_types.Device_failed
            end
          end)
  | Delete { rname } -> (
      match find_region meta rname with
      | None -> R_error Pm_types.No_such_region
      | Some region ->
          if region.openers <> [] then R_error Pm_types.Region_busy
          else begin
            let saved = meta.regions in
            meta.regions <- List.filter (fun r -> r != region) meta.regions;
            if apply_mutation t meta then begin
              unmap_window t.prim_dev region;
              unmap_window t.mirr_dev region;
              mgmt_delay t;
              R_ok
            end
            else begin
              meta.regions <- saved;
              R_error Pm_types.Device_failed
            end
          end)
  | List_regions ->
      R_regions (List.map (region_info t) (List.sort (fun a b -> compare a.offset b.offset) meta.regions))
  | Resync { from_primary } -> (
      match do_resync t meta ~from_primary with
      | Ok bytes -> R_resynced { bytes }
      | Error e -> R_error (Pm_types.Bad_request ("resync: " ^ e)))
  | Chunk_crc { addr } -> (
      match
        List.find_opt (fun r -> addr >= r.offset && addr < r.offset + r.length) meta.regions
      with
      | None -> R_error Pm_types.No_such_region
      | Some r ->
          let chunk =
            match t.scrub with
            | Some st -> st.s_cfg.scrub_chunk_bytes
            | None -> default_scrub_config.scrub_chunk_bytes
          in
          let chunk_off = r.offset + ((addr - r.offset) / chunk * chunk) in
          let chunk_len = min chunk (r.offset + r.length - chunk_off) in
          let crc =
            match t.scrub with
            | Some st -> Hashtbl.find_opt st.s_table chunk_off
            | None -> None
          in
          let quarantined =
            match t.scrub with Some st -> Hashtbl.mem st.s_quar chunk_off | None -> false
          in
          R_chunk_crc { chunk_off; chunk_len; crc; quarantined })
  | Stat ->
      let allocated = List.fold_left (fun acc r -> acc + r.length) 0 meta.regions in
      R_stat
        {
          capacity = data_capacity t;
          allocated;
          region_count = List.length meta.regions;
          degraded = degraded t;
          generation = meta.generation;
        }

let serve t () =
  (match t.live with
  | Some _ -> ()
  | None -> (
      match t.shadow with
      | Some blob ->
          (* Takeover: the checkpoint stream already built our state.
             The promotion fences the volume — the deposed primary and
             every client granted under it must re-open before writing. *)
          let meta = decode_meta blob in
          t.live <- Some meta;
          bump_epoch t meta
      | None ->
          (* Boot/cold-boot: adopt the durable table and realign with
             whatever epoch the devices already enforce (they may be
             ahead if a previous incarnation's epoch persist was lost). *)
          let meta = recover t in
          let armed =
            max
              (Servernet.Avt.epoch t.prim_dev.dev_avt)
              (Servernet.Avt.epoch t.mirr_dev.dev_avt)
          in
          meta.epoch <- max meta.epoch armed;
          Servernet.Avt.set_epoch t.prim_dev.dev_avt meta.epoch;
          Servernet.Avt.set_epoch t.mirr_dev.dev_avt meta.epoch;
          t.live <- Some meta));
  while true do
    let req, respond = Msgsys.next_request t.srv in
    Cpu.execute (current_cpu t) t.cfg.op_cpu_cost;
    respond (handle_request t req)
  done

let start ~fabric ~name ~primary_cpu ~backup_cpu ~primary_dev ~mirror_dev
    ?(config = default_config) () =
  let srv = Msgsys.create_server fabric ~cpu:primary_cpu ~name in
  let t =
    {
      fabric;
      pmm_name = name;
      cfg = config;
      prim_dev = primary_dev;
      mirr_dev = mirror_dev;
      srv;
      pair = None;
      live = None;
      shadow = None;
      prim_ok = true;
      mirr_ok = true;
      mgmt_initiators = [ Cpu.endpoint_id primary_cpu; Cpu.endpoint_id backup_cpu ];
      recovery_time = None;
      scrub = None;
      mirror_active = true;
      demotions = 0;
      readmissions = 0;
      monitor = None;
    }
  in
  claim_metadata_windows t ~primary_cpu ~backup_cpu;
  let pair =
    Procpair.start ~fabric ~name ~primary:primary_cpu ~backup:backup_cpu
      ~apply:(fun blob -> t.shadow <- Some blob)
      ~serve:(fun () -> serve t ())
      ~on_takeover:(fun () ->
        (* The primary's in-memory table died with it; the promoted side
           parses its checkpointed copy when its serve loop starts. *)
        t.live <- None;
        Msgsys.move t.srv ~cpu:backup_cpu)
      ()
  in
  t.pair <- Some pair;
  t

(* --- Background scrubber --- *)

(* The chunk-checksum table lives in the back of each metadata slot: the
   region table's image occupies the front [meta_reserve/8] bytes of a
   slot, the scrub table the rest.  Both are dual-slotted,
   generation-stamped and CRC-framed, so a crash mid-persist always
   leaves a valid copy — the same discipline as the region table. *)
let scrub_slot_gap cfg = cfg.meta_reserve / 8

let scrub_magic = 0x53435242 (* "SCRB" *)

let encode_scrub st =
  let enc = Codec.Enc.create () in
  Codec.Enc.u32 enc st.s_cfg.scrub_chunk_bytes;
  let entries =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.s_table [])
  in
  Codec.Enc.u32 enc (List.length entries);
  List.iter
    (fun (addr, crc) ->
      Codec.Enc.u32 enc addr;
      Codec.Enc.u32 enc (Int32.to_int crc land 0xFFFFFFFF))
    entries;
  let quar = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.s_quar []) in
  Codec.Enc.u32 enc (List.length quar);
  List.iter
    (fun (addr, len) ->
      Codec.Enc.u32 enc addr;
      Codec.Enc.u32 enc len)
    quar;
  Codec.Enc.to_bytes enc

let scrub_image st =
  let payload = encode_scrub st in
  let hdr = Codec.Enc.create () in
  Codec.Enc.u32 hdr scrub_magic;
  Codec.Enc.u64 hdr st.s_generation;
  Codec.Enc.u32 hdr (Bytes.length payload);
  Codec.Enc.u32 hdr (Int32.to_int (Crc32.bytes payload) land 0xFFFFFFFF);
  let out = Bytes.create (header_bytes + Bytes.length payload) in
  Bytes.blit (Codec.Enc.to_bytes hdr) 0 out 0 header_bytes;
  Bytes.blit payload 0 out header_bytes (Bytes.length payload);
  out

(* Returns (generation, chunk_bytes, entries, quarantined). *)
let parse_scrub_slot bytes_ =
  try
    let dec = Codec.Dec.of_bytes bytes_ in
    let m = Codec.Dec.u32 dec in
    if m <> scrub_magic then None
    else
      let generation = Codec.Dec.u64 dec in
      let len = Codec.Dec.u32 dec in
      let crc = Codec.Dec.u32 dec in
      if len > Bytes.length bytes_ - header_bytes then None
      else
        let payload = Bytes.sub bytes_ header_bytes len in
        if Int32.to_int (Crc32.bytes payload) land 0xFFFFFFFF <> crc then None
        else
          let pd = Codec.Dec.of_bytes payload in
          let chunk_bytes = Codec.Dec.u32 pd in
          let n = Codec.Dec.u32 pd in
          let entries =
            List.init n (fun _ ->
                let addr = Codec.Dec.u32 pd in
                let c = Codec.Dec.u32 pd in
                (addr, Int32.of_int c))
          in
          let nq = Codec.Dec.u32 pd in
          let quar =
            List.init nq (fun _ ->
                let addr = Codec.Dec.u32 pd in
                let len = Codec.Dec.u32 pd in
                (addr, len))
          in
          Some (generation, chunk_bytes, entries, quar)
  with Codec.Dec.Truncated -> None

let scrub_epoch t =
  match t.live with
  | Some m -> m.epoch
  | None -> max (Servernet.Avt.epoch t.prim_dev.dev_avt) (Servernet.Avt.epoch t.mirr_dev.dev_avt)

(* Persist the table to both devices (new generation, alternating slot).
   Written {e after} a pass's repairs: a table older than the data is
   merely conservative (the stale chunk strikes toward quarantine
   instead of auto-repairing), a table newer than the data could bless a
   write that never landed. *)
let persist_scrub t st =
  st.s_generation <- st.s_generation + 1;
  let image = scrub_image st in
  let gap = scrub_slot_gap t.cfg in
  if Bytes.length image > (t.cfg.meta_reserve / 2) - gap then begin
    st.s_generation <- st.s_generation - 1;
    false
  end
  else begin
    let slot = st.s_generation mod 2 in
    let addr = slot_offset t.cfg slot + gap in
    let epoch = scrub_epoch t in
    let write dev =
      match
        Servernet.Fabric.rdma_write ~epoch t.fabric ~src:(Cpu.endpoint st.s_cpu)
          ~dst:dev.dev_id ~addr ~data:image
      with
      | Ok () -> true
      | Error _ -> false
    in
    let p = write t.prim_dev in
    let m = write t.mirr_dev in
    if p || m then true
    else begin
      st.s_generation <- st.s_generation - 1;
      false
    end
  end

let load_scrub t st =
  let gap = scrub_slot_gap t.cfg in
  let len = (t.cfg.meta_reserve / 2) - gap in
  let read_slot dev slot =
    let addr = slot_offset t.cfg slot + gap in
    match
      Servernet.Fabric.rdma_read t.fabric ~src:(Cpu.endpoint st.s_cpu) ~dst:dev.dev_id ~addr
        ~len
    with
    | Ok data -> parse_scrub_slot data
    | Error _ -> None
  in
  let candidates =
    [
      read_slot t.prim_dev 0;
      read_slot t.prim_dev 1;
      read_slot t.mirr_dev 0;
      read_slot t.mirr_dev 1;
    ]
  in
  let best =
    List.fold_left
      (fun acc c ->
        match (acc, c) with
        | None, c -> c
        | Some (ga, _, _, _), Some (gb, _, _, _) when gb > ga -> c
        | acc, _ -> acc)
      None candidates
  in
  match best with
  | Some (generation, chunk_bytes, entries, quar)
    when chunk_bytes = st.s_cfg.scrub_chunk_bytes ->
      st.s_generation <- generation;
      List.iter (fun (addr, crc) -> Hashtbl.replace st.s_table addr crc) entries;
      List.iter (fun (addr, len) -> Hashtbl.replace st.s_quar addr len) quar
  | Some (generation, _, _, _) ->
      (* Geometry changed: the stored table is useless, but keep the
         generation monotone so the next persist supersedes it. *)
      st.s_generation <- generation
  | None -> ()

(* Read one chunk in 64 KiB RDMA slices, folding the incremental CRC as
   the slices land.  [None] when the device is unreachable. *)
let scrub_read_chunk t st dev ~addr ~len =
  let buf = Bytes.create len in
  let slice = 64 * 1024 in
  let rec go pos acc =
    if pos >= len then Some (buf, Crc32.finish acc)
    else
      let n = min slice (len - pos) in
      match
        Servernet.Fabric.rdma_read t.fabric ~src:(Cpu.endpoint st.s_cpu) ~dst:dev.dev_id
          ~addr:(addr + pos) ~len:n
      with
      | Error _ -> None
      | Ok data ->
          Bytes.blit data 0 buf pos n;
          go (pos + n) (Crc32.update acc data ~pos:0 ~len:n)
  in
  go 0 Crc32.init

let scrub_strike st ~addr ~len =
  let n = (match Hashtbl.find_opt st.s_strikes addr with Some n -> n | None -> 0) + 1 in
  if n >= st.s_cfg.scrub_quarantine_after then begin
    Hashtbl.replace st.s_quar addr len;
    Hashtbl.remove st.s_table addr;
    Hashtbl.remove st.s_clean_cycles addr;
    Hashtbl.remove st.s_strikes addr;
    st.s_quarantined <- st.s_quarantined + 1
  end
  else Hashtbl.replace st.s_strikes addr n

(* Record a chunk whose copies compared equal.  The entry only feeds
   future arbitration when both devices are reachable at mark time: a
   chunk read can straddle a power-off — the first copy snapshotted just
   before the device went dark, the second just after — and blessing
   that straddled state would later let the dark device's (unchanged)
   copy win an arbitration against acked single-copy writes the survivor
   absorbed during the outage.  Strikes still reset either way: the
   copies did agree. *)
let scrub_mark_clean t st ~addr crc =
  if t.prim_dev.dev_alive () && t.mirr_dev.dev_alive () then begin
    Hashtbl.replace st.s_table addr crc;
    Hashtbl.replace st.s_clean_cycles addr
      (t.prim_dev.dev_power_cycles (), t.mirr_dev.dev_power_cycles ())
  end;
  Hashtbl.remove st.s_strikes addr

let scrub_repair t st ~dst_dev ~addr ~data ~crc ~len =
  match
    Servernet.Fabric.rdma_write ~epoch:(scrub_epoch t) t.fabric ~src:(Cpu.endpoint st.s_cpu)
      ~dst:dst_dev.dev_id ~addr ~data
  with
  | Ok () ->
      scrub_mark_clean t st ~addr crc;
      st.s_repairs <- st.s_repairs + 1
  | Error _ -> scrub_strike st ~addr ~len

(* Scan one chunk: compare the copies, and on divergence let the durable
   checksum table arbitrate which copy is truth.  A transient divergence
   (a mirrored write in flight between the two reads) is filtered by a
   settle-and-recheck; a chunk where neither copy matches the table —
   legitimate writes landed since the last clean scan, plus corruption —
   cannot be arbitrated and strikes toward quarantine. *)
let scrub_chunk t st ~addr ~len =
  match
    (scrub_read_chunk t st t.prim_dev ~addr ~len, scrub_read_chunk t st t.mirr_dev ~addr ~len)
  with
  | Some (p, cp), Some (m, _) when Bytes.equal p m ->
      st.s_chunks <- st.s_chunks + 1;
      scrub_mark_clean t st ~addr cp
  | Some _, Some _ -> (
      st.s_chunks <- st.s_chunks + 1;
      Sim.sleep st.s_cfg.scrub_recheck;
      match
        ( scrub_read_chunk t st t.prim_dev ~addr ~len,
          scrub_read_chunk t st t.mirr_dev ~addr ~len )
      with
      | Some (p, cp), Some (m, _) when Bytes.equal p m -> scrub_mark_clean t st ~addr cp
      | Some (p, cp), Some (m, cm) -> (
          (* A table match only arbitrates if the matching device has not
             power-cycled since the entry was recorded: a cycle can roll
             the chunk back to exactly the blessed contents, and repairing
             the peer from the rollback would destroy the only copy of
             writes acked since the last clean scan. *)
          let snap = Hashtbl.find_opt st.s_clean_cycles addr in
          let steady dev since =
            match since with
            | Some c -> dev.dev_power_cycles () = c
            | None -> false
          in
          match Hashtbl.find_opt st.s_table addr with
          | Some e when Int32.equal e cp && steady t.prim_dev (Option.map fst snap) ->
              scrub_repair t st ~dst_dev:t.mirr_dev ~addr ~data:p ~crc:cp ~len
          | Some e when Int32.equal e cm && steady t.mirr_dev (Option.map snd snap) ->
              scrub_repair t st ~dst_dev:t.prim_dev ~addr ~data:m ~crc:cm ~len
          | _ -> scrub_strike st ~addr ~len)
      | _ -> ())
  | _ ->
      (* One copy unreachable: nothing to compare against.  The scrubber
         resumes the chunk when the device returns. *)
      ()

let scrub_pass t st =
  match t.live with
  | None -> ()
  | Some meta ->
      let extents =
        List.sort compare (List.map (fun r -> (r.offset, r.length)) meta.regions)
      in
      List.iter
        (fun (off, len) ->
          let rec go addr =
            if addr < off + len && st.s_running then begin
              let clen = min st.s_cfg.scrub_chunk_bytes (off + len - addr) in
              if not (Hashtbl.mem st.s_quar addr) then begin
                let started = Sim.now (Cpu.sim st.s_cpu) in
                (match st.s_probe with Some p -> Probe.enqueue p | None -> ());
                scrub_chunk t st ~addr ~len:clen;
                (match st.s_probe with
                | Some p ->
                    Probe.busy_span p (Sim.now (Cpu.sim st.s_cpu) - started);
                    Probe.dequeue p
                | None -> ())
              end;
              Sim.sleep st.s_cfg.scrub_interval;
              go (addr + clen)
            end
          in
          go off)
        extents;
      st.s_passes <- st.s_passes + 1;
      ignore (persist_scrub t st)

let start_scrubber t ~cpu ?(config = default_scrub_config) ?metrics () =
  (match t.scrub with
  | Some _ -> invalid_arg "Pmm.start_scrubber: already running"
  | None -> ());
  let probe =
    Option.map
      (fun m ->
        let p = Metrics.probe m "pmm.scrub" in
        Probe.set_clock p (fun () -> Sim.now (Cpu.sim cpu));
        p)
      metrics
  in
  let st =
    {
      s_cfg = config;
      s_cpu = cpu;
      s_table = Hashtbl.create 64;
      s_clean_cycles = Hashtbl.create 64;
      s_strikes = Hashtbl.create 8;
      s_quar = Hashtbl.create 8;
      s_generation = 0;
      s_running = true;
      s_passes = 0;
      s_chunks = 0;
      s_repairs = 0;
      s_quarantined = 0;
      s_probe = probe;
    }
  in
  t.scrub <- Some st;
  (match metrics with
  | Some m ->
      Metrics.register_gauge m "pmm.scrub.regions" (fun () -> float_of_int st.s_chunks);
      Metrics.register_gauge m "pmm.scrub.repaired" (fun () -> float_of_int st.s_repairs);
      Metrics.register_gauge m "pmm.scrub.quarantined" (fun () ->
          float_of_int st.s_quarantined);
      Metrics.register_gauge m "pmm.scrub.passes" (fun () -> float_of_int st.s_passes)
  | None -> ());
  ignore
    (Cpu.spawn cpu ~name:(t.pmm_name ^ "-scrubber") (fun () ->
         (* Wait for the serve loop to adopt metadata before the first
            pass (and before loading the durable table: the epoch realign
            happens there too). *)
         while st.s_running && t.live = None do
           Sim.sleep (Time.ms 1)
         done;
         if st.s_running then load_scrub t st;
         while st.s_running do
           scrub_pass t st;
           Sim.sleep st.s_cfg.scrub_interval
         done))

let stop_scrubber t = match t.scrub with Some st -> st.s_running <- false | None -> ()

let scrub_chunks_scanned t = match t.scrub with Some st -> st.s_chunks | None -> 0

let scrub_repairs t = match t.scrub with Some st -> st.s_repairs | None -> 0

let scrub_quarantined t = match t.scrub with Some st -> st.s_quarantined | None -> 0

let scrub_passes t = match t.scrub with Some st -> st.s_passes | None -> 0

let scrub_table_entries t =
  match t.scrub with Some st -> Hashtbl.length st.s_table | None -> 0

let scrub_quarantined_chunks t =
  match t.scrub with
  | Some st -> List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.s_quar [])
  | None -> []

(* Maintenance-path full-content audit: peek-compare every allocated
   extent across the pair, in scrub-chunk geometry, skipping quarantined
   chunks.  Drills call this after recovery to prove no divergence
   survived unnoticed. *)
let divergent_chunks ?chunk_bytes t =
  let chunk =
    match (chunk_bytes, t.scrub) with
    | Some c, _ -> c
    | None, Some st -> st.s_cfg.scrub_chunk_bytes
    | None, None -> default_scrub_config.scrub_chunk_bytes
  in
  match t.live with
  | None -> []
  | Some meta ->
      let quarantined addr =
        match t.scrub with Some st -> Hashtbl.mem st.s_quar addr | None -> false
      in
      List.concat_map
        (fun r ->
          let rec go addr acc =
            if addr >= r.offset + r.length then List.rev acc
            else
              let len = min chunk (r.offset + r.length - addr) in
              let p = t.prim_dev.dev_peek ~off:addr ~len in
              let m = t.mirr_dev.dev_peek ~off:addr ~len in
              let acc =
                if (not (Bytes.equal p m)) && not (quarantined addr) then (addr, len) :: acc
                else acc
              in
              go (addr + len) acc
          in
          go r.offset [])
        (List.sort (fun a b -> compare a.offset b.offset) meta.regions)

(* --- Mirror-health monitor --- *)

(* Time one tiny RDMA read of the device's metadata window.  [None] when
   the device did not answer at all (a fail-stop, handled elsewhere —
   the monitor only tracks fail-slow). *)
let monitor_probe t m dev =
  let sim = Cpu.sim m.m_cpu in
  let t0 = Sim.now sim in
  match
    Servernet.Fabric.rdma_read t.fabric ~src:(Cpu.endpoint m.m_cpu) ~dst:dev.dev_id ~addr:0
      ~len:m.m_cfg.probe_bytes
  with
  | Ok _ -> Some (Sim.now sim - t0)
  | Error _ -> None

let monitor_ewma m prev dt =
  if prev = 0.0 then float_of_int dt
  else (m.m_cfg.health_alpha *. float_of_int dt) +. ((1.0 -. m.m_cfg.health_alpha) *. prev)

(* One monitoring round: probe both devices, update the smoothed view,
   and act on the mirror's trend — demote after [demote_after]
   consecutive over-budget probes, re-admit (via a full resync) after
   [readmit_after] consecutive in-budget probes while demoted. *)
let monitor_round t m =
  (match monitor_probe t m t.prim_dev with
  | Some dt -> m.m_prim_ewma <- monitor_ewma m m.m_prim_ewma dt
  | None -> ());
  match monitor_probe t m t.mirr_dev with
  | None -> ()
  | Some dt ->
      m.m_probes <- m.m_probes + 1;
      m.m_mirr_ewma <- monitor_ewma m m.m_mirr_ewma dt;
      let budget = float_of_int m.m_cfg.health_slo in
      if m.m_mirr_ewma > budget then begin
        m.m_mirr_breaches <- m.m_mirr_breaches + 1;
        m.m_mirr_healthy <- 0
      end
      else begin
        m.m_mirr_healthy <- m.m_mirr_healthy + 1;
        m.m_mirr_breaches <- 0
      end;
      if t.mirror_active then begin
        if m.m_mirr_breaches >= m.m_cfg.demote_after then ignore (demote_mirror t)
      end
      else if m.m_mirr_healthy >= m.m_cfg.readmit_after then
        match t.live with
        | None -> ()
        | Some meta ->
            (* A failed resync leaves the mirror demoted; the healthy
               streak keeps growing and the next round retries. *)
            (match do_resync t meta ~from_primary:true with Ok _ -> () | Error _ -> ())

let start_monitor t ~cpu ?(config = default_health_config) ?metrics () =
  (match t.monitor with
  | Some _ -> invalid_arg "Pmm.start_monitor: already running"
  | None -> ());
  let m =
    {
      m_cfg = config;
      m_cpu = cpu;
      m_running = true;
      m_probes = 0;
      m_prim_ewma = 0.0;
      m_mirr_ewma = 0.0;
      m_mirr_breaches = 0;
      m_mirr_healthy = 0;
    }
  in
  t.monitor <- Some m;
  (match metrics with
  | Some mx ->
      Metrics.register_gauge mx "pmm.mirror_health" (fun () ->
          if t.mirror_active then 1.0 else 0.0);
      Metrics.register_gauge mx "pmm.mirror_ewma_ns" (fun () -> m.m_mirr_ewma);
      Metrics.register_gauge mx "pmm.primary_ewma_ns" (fun () -> m.m_prim_ewma);
      Metrics.register_gauge mx "pmm.demotions" (fun () -> float_of_int t.demotions);
      Metrics.register_gauge mx "pmm.readmissions" (fun () -> float_of_int t.readmissions)
  | None -> ());
  ignore
    (Cpu.spawn cpu ~name:(t.pmm_name ^ "-monitor") (fun () ->
         (* Wait for the serve loop to adopt metadata: probes read the
            metadata window, and demotion needs a live table to fence. *)
         while m.m_running && t.live = None do
           Sim.sleep (Time.ms 1)
         done;
         while m.m_running do
           monitor_round t m;
           Sim.sleep m.m_cfg.probe_interval
         done))

let stop_monitor t = match t.monitor with Some m -> m.m_running <- false | None -> ()

let mirror_active t = t.mirror_active

let demotions t = t.demotions

let readmissions t = t.readmissions

let monitor_probes t = match t.monitor with Some m -> m.m_probes | None -> 0

let monitor_ewma_ns t ~mirror =
  match t.monitor with
  | Some m -> if mirror then m.m_mirr_ewma else m.m_prim_ewma
  | None -> 0.0
