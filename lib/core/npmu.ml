type t = {
  npmu_name : string;
  npmu_sim : Simkit.Sim.t;
  capacity : int;
  mem : Bytes.t;
  ep : Servernet.Fabric.endpoint;
  mutable powered : bool;
  mutable st_power_cycles : int;
  st_writes : int ref;
  st_reads : int ref;
  st_bytes_written : int ref;
}

let create sim fabric ~name ~capacity =
  if capacity <= 0 then invalid_arg "Npmu.create: capacity must be positive";
  let mem = Bytes.make capacity '\000' in
  let st_writes = ref 0 and st_reads = ref 0 and st_bytes_written = ref 0 in
  let store =
    {
      Servernet.Fabric.size = capacity;
      read =
        (fun ~off ~len ->
          incr st_reads;
          Bytes.sub mem off len);
      write =
        (fun ~off ~data ->
          incr st_writes;
          st_bytes_written := !st_bytes_written + Bytes.length data;
          Bytes.blit data 0 mem off (Bytes.length data));
    }
  in
  let ep = Servernet.Fabric.attach fabric ~name ~store in
  { npmu_name = name; npmu_sim = sim; capacity; mem; ep; powered = true;
    st_power_cycles = 0; st_writes; st_reads; st_bytes_written }

let instrument t metrics =
  let prefix = "npmu." ^ t.npmu_name in
  Simkit.Metrics.register_gauge metrics (prefix ^ ".writes") (fun () ->
      float_of_int !(t.st_writes));
  Simkit.Metrics.register_gauge metrics (prefix ^ ".reads") (fun () ->
      float_of_int !(t.st_reads));
  Simkit.Metrics.register_gauge metrics (prefix ^ ".bytes_written") (fun () ->
      float_of_int !(t.st_bytes_written));
  Simkit.Metrics.register_gauge metrics (prefix ^ ".fenced_writes") (fun () ->
      float_of_int (Servernet.Avt.fenced (Servernet.Fabric.avt t.ep)));
  (* Outstanding RDMA operations targeting this NPMU, accounted by the
     fabric at the target side. *)
  let p = Simkit.Metrics.probe metrics ("npmu." ^ t.npmu_name) in
  Simkit.Probe.set_clock p (fun () -> Simkit.Sim.now t.npmu_sim);
  Servernet.Fabric.set_endpoint_probe t.ep p

let writes t = !(t.st_writes)

let reads t = !(t.st_reads)

let bytes_written t = !(t.st_bytes_written)

let name t = t.npmu_name

let capacity t = t.capacity

let endpoint t = t.ep

let id t = Servernet.Fabric.id t.ep

let avt t = Servernet.Fabric.avt t.ep

let is_powered t = t.powered

let power_loss t =
  if t.powered then begin
    t.powered <- false;
    t.st_power_cycles <- t.st_power_cycles + 1;
    Servernet.Fabric.set_alive t.ep false
  end

let power_cycles t = t.st_power_cycles

let fenced_writes t = Servernet.Avt.fenced (Servernet.Fabric.avt t.ep)

let power_restore t =
  if not t.powered then begin
    t.powered <- true;
    Servernet.Fabric.set_alive t.ep true
  end

let peek t ~off ~len =
  if off < 0 || len < 0 || off + len > t.capacity then invalid_arg "Npmu.peek: out of range";
  Bytes.sub t.mem off len

let poke t ~off ~data =
  let len = Bytes.length data in
  if off < 0 || off + len > t.capacity then invalid_arg "Npmu.poke: out of range";
  Bytes.blit data 0 t.mem off len
