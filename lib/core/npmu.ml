type t = {
  npmu_name : string;
  npmu_sim : Simkit.Sim.t;
  capacity : int;
  mem : Bytes.t;
  ep : Servernet.Fabric.endpoint;
  mutable powered : bool;
  mutable st_power_cycles : int;
  st_writes : int ref;
  st_reads : int ref;
  st_bytes_written : int ref;
  last_write : (int * int) option ref;
  mutable st_decay_events : int;
  mutable st_bits_flipped : int;
  mutable st_torn_writes : int;
  mutable st_degrade_events : int;
}

let create sim fabric ~name ~capacity =
  if capacity <= 0 then invalid_arg "Npmu.create: capacity must be positive";
  let mem = Bytes.make capacity '\000' in
  let st_writes = ref 0 and st_reads = ref 0 and st_bytes_written = ref 0 in
  let last_write = ref None in
  let store =
    {
      Servernet.Fabric.size = capacity;
      read =
        (fun ~off ~len ->
          incr st_reads;
          Bytes.sub mem off len);
      write =
        (fun ~off ~data ->
          incr st_writes;
          st_bytes_written := !st_bytes_written + Bytes.length data;
          last_write := Some (off, Bytes.length data);
          Bytes.blit data 0 mem off (Bytes.length data));
    }
  in
  let ep = Servernet.Fabric.attach fabric ~name ~store in
  { npmu_name = name; npmu_sim = sim; capacity; mem; ep; powered = true;
    st_power_cycles = 0; st_writes; st_reads; st_bytes_written; last_write;
    st_decay_events = 0; st_bits_flipped = 0; st_torn_writes = 0;
    st_degrade_events = 0 }

let instrument t metrics =
  let prefix = "npmu." ^ t.npmu_name in
  Simkit.Metrics.register_gauge metrics (prefix ^ ".writes") (fun () ->
      float_of_int !(t.st_writes));
  Simkit.Metrics.register_gauge metrics (prefix ^ ".reads") (fun () ->
      float_of_int !(t.st_reads));
  Simkit.Metrics.register_gauge metrics (prefix ^ ".bytes_written") (fun () ->
      float_of_int !(t.st_bytes_written));
  Simkit.Metrics.register_gauge metrics (prefix ^ ".fenced_writes") (fun () ->
      float_of_int (Servernet.Avt.fenced (Servernet.Fabric.avt t.ep)));
  Simkit.Metrics.register_gauge metrics (prefix ^ ".decay_events") (fun () ->
      float_of_int t.st_decay_events);
  Simkit.Metrics.register_gauge metrics (prefix ^ ".torn_writes") (fun () ->
      float_of_int t.st_torn_writes);
  (* Outstanding RDMA operations targeting this NPMU, accounted by the
     fabric at the target side. *)
  let p = Simkit.Metrics.probe metrics ("npmu." ^ t.npmu_name) in
  Simkit.Probe.set_clock p (fun () -> Simkit.Sim.now t.npmu_sim);
  Servernet.Fabric.set_endpoint_probe t.ep p

let writes t = !(t.st_writes)

let reads t = !(t.st_reads)

let bytes_written t = !(t.st_bytes_written)

let name t = t.npmu_name

let capacity t = t.capacity

let endpoint t = t.ep

let id t = Servernet.Fabric.id t.ep

let avt t = Servernet.Fabric.avt t.ep

let is_powered t = t.powered

let power_loss t =
  if t.powered then begin
    t.powered <- false;
    t.st_power_cycles <- t.st_power_cycles + 1;
    Servernet.Fabric.set_alive t.ep false
  end

let power_cycles t = t.st_power_cycles

let fenced_writes t = Servernet.Avt.fenced (Servernet.Fabric.avt t.ep)

let power_restore t =
  if not t.powered then begin
    t.powered <- true;
    Servernet.Fabric.set_alive t.ep true
  end

let peek t ~off ~len =
  if off < 0 || len < 0 || off + len > t.capacity then invalid_arg "Npmu.peek: out of range";
  Bytes.sub t.mem off len

let poke t ~off ~data =
  let len = Bytes.length data in
  if off < 0 || off + len > t.capacity then invalid_arg "Npmu.poke: out of range";
  Bytes.blit data 0 t.mem off len

let decay t ~off ~bits =
  if bits <= 0 then invalid_arg "Npmu.decay: bits must be positive";
  let span = (bits + 7) / 8 in
  if off < 0 || off + span > t.capacity then invalid_arg "Npmu.decay: out of range";
  for i = 0 to bits - 1 do
    let byte = off + (i / 8) and bit = i mod 8 in
    let v = Char.code (Bytes.get t.mem byte) in
    Bytes.set t.mem byte (Char.chr (v lxor (1 lsl bit)))
  done;
  t.st_decay_events <- t.st_decay_events + 1;
  t.st_bits_flipped <- t.st_bits_flipped + bits

let decay_events t = t.st_decay_events

let bits_flipped t = t.st_bits_flipped

let tear_last_write t =
  match !(t.last_write) with
  | None -> None
  | Some (_, len) when len < 2 -> None
  | Some (off, len) ->
      (* A power cut mid-store leaves the leading words of the last RDMA
         write intact and the trailing half garbled: the NIC pushes the
         payload in order, so the tear is always a suffix. *)
      let tear_off = off + (len / 2) in
      let tear_len = len - (len / 2) in
      for i = tear_off to tear_off + tear_len - 1 do
        let v = Char.code (Bytes.get t.mem i) in
        Bytes.set t.mem i (Char.chr (v lxor 0x5A))
      done;
      t.st_torn_writes <- t.st_torn_writes + 1;
      Some (tear_off, tear_len)

let torn_writes t = t.st_torn_writes

let degrade t ~factor ?(jitter = 0) () =
  Servernet.Fabric.set_endpoint_slow t.ep ~factor ~jitter;
  t.st_degrade_events <- t.st_degrade_events + 1

let restore_speed t = Servernet.Fabric.clear_endpoint_slow t.ep

let slow_factor t = Servernet.Fabric.endpoint_slow t.ep

let is_degraded t = slow_factor t > 1.0

let degrade_events t = t.st_degrade_events
