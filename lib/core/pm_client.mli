open Simkit
open Nsk

(** Client access library for persistent memory (paper §4.1).

    A client attaches to a PM volume (a PMM pair) from a CPU.  Management
    operations (create/open/close/delete) are messages to the PMM; data
    operations are direct, synchronous RDMA to the NPMUs — no manager and
    no device CPU in the path.  Writes go to both mirrors before the call
    returns: when {!write} returns [Ok ()] the data {e is} persistent, the
    property the modified audit process relies on to commit transactions
    without a disk flush. *)

type config = {
  mirrored_writes : bool;
      (** write both devices (default); [false] is the E4 ablation *)
  write_penalty : Time.span;
      (** extra per-write device latency, for slower-media sweeps (E3) *)
  mgmt_timeout : Time.span;  (** patience for PMM replies across takeovers *)
  mgmt_retries : int;
  mgmt_backoff : Time.span;
      (** base of the jittered exponential backoff between management
          retries: attempt [i] sleeps uniformly in [0, base * 2^i] *)
  data_retries : int;
      (** bounded retries of transient fabric errors ([Unreachable],
          [No_path], [Crc_failure]) per device on the data path before
          the attempt counts as a device failure *)
  data_backoff : Time.span;  (** base of the data-path retry backoff *)
  fail_fast_after : int;
      (** consecutive failures after which a device is presumed down and
          data-path retries are skipped until it answers again *)
  verified_reads : bool;
      (** route every {!read} through {!read_verified}: cross-check the
          mirror and read-repair silent divergence (default [false] —
          it doubles read traffic) *)
  slo_budget : Time.span;
      (** per-op latency budget the health monitor compares against;
          0 (default) disables latency health tracking entirely *)
  health_window : int;  (** ring size for the windowed p99 *)
  health_alpha : float;  (** EWMA smoothing weight of the newest sample *)
  hedged_reads : bool;
      (** fire the mirror copy of a plain read after the hedge delay
          when the primary has not answered; first response wins
          (default [false]) *)
  hedge_min : Time.span;  (** clamp band of the adaptive hedge delay *)
  hedge_max : Time.span;
  adaptive_backoff : bool;
      (** scale the data-path retry backoff to the observed device EWMA
          instead of the fixed [data_backoff] (default [false]) *)
  mgmt_retry_budget : float;
      (** token-bucket capacity for management-path retries
          ({!Simkit.Retry_budget}): each retry spends a token, each
          success refills a fraction, and an empty bucket surfaces
          [Manager_down] instead of amplifying the storm.  0 (the
          default) disables the budget. *)
}

val default_config : config

type t

val attach :
  cpu:Cpu.t ->
  fabric:Servernet.Fabric.t ->
  pmm:Pmm.server ->
  ?config:config ->
  ?obs:Obs.t ->
  unit ->
  t
(** With [obs], write latencies feed the shared [pm.write_ns] stat (all
    clients aggregate) and each {!write} gets a span on track ["pm"]. *)

val cpu : t -> Cpu.t

type handle
(** An open region: where its window lives and on which devices. *)

val info : handle -> Pm_types.region_info

val create_region : t -> name:string -> size:int -> (handle, Pm_types.error) result
(** Create and implicitly open a region. *)

val open_region : t -> name:string -> (handle, Pm_types.error) result

val close_region : t -> handle -> (unit, Pm_types.error) result

val delete_region : t -> name:string -> (unit, Pm_types.error) result

val list_regions : t -> (Pm_types.region_info list, Pm_types.error) result

val write :
  ?span:Span.span -> t -> handle -> off:int -> data:Bytes.t -> (unit, Pm_types.error) result
(** Synchronous persistent write.  Mirrored: returns [Ok] once every
    powered device of the pair holds the data; degraded single-device
    success is still persistent (and reported through {!degraded_writes}).
    Fails with [Device_failed] when no device accepted it, and with
    [Bad_request] on bounds violations (checked client-side before any
    wire traffic).  Writes carry the handle's volume epoch; if the volume
    was fenced (takeover/resync) the client transparently re-opens the
    region for a fresh grant and retries, failing with [Fenced] only when
    the refresh itself cannot be completed. *)

val read :
  ?span:Span.span -> t -> handle -> off:int -> len:int -> (Bytes.t, Pm_types.error) result
(** Read from the primary device, failing over to the mirror; transient
    fabric errors on both devices are retried up to [data_retries]
    rounds with jittered backoff.  When the client was attached with
    [verified_reads], this is {!read_verified}.  With [obs], the read
    gets a ["pm.read"] span on track ["pm"] (child of [span] when
    given), annotated [hedged]/[hedge_won]/[failover] as those paths
    fire. *)

val read_device :
  t -> handle -> mirror:bool -> off:int -> len:int -> (Bytes.t, Pm_types.error) result
(** Read one named copy, no failover and no retry.  For callers that do
    their own cross-copy arbitration — the audit-trail replay salvages a
    frame torn on the primary from the mirror through this. *)

val read_verified : t -> handle -> off:int -> len:int -> (Bytes.t, Pm_types.error) result
(** Integrity-checking read: fetch the range from {e both} devices and
    compare.  On divergence, ask the PMM for the trusted chunk checksum
    ({!Pmm.request.Chunk_crc}) over every chunk of the range, copy the
    matching side over the corrupt one ({e read-repair}, counted in
    {!read_repairs} / [pm.read_repairs]), and serve the repaired
    contents.  A chunk the table cannot arbitrate is served from the
    primary unrepaired (counted in {!verify_unrepaired}); a copy that is
    unreachable degrades to the plain failover read.  Works — minus the
    repair arbitration — even when no scrubber is running. *)

val degraded_writes : t -> int
(** Writes that persisted on only one device. *)

val write_retries : t -> int
(** Transient data-path errors retried before a write settled. *)

val read_failovers : t -> int
(** Reads the primary device missed and the mirror served. *)

val read_repairs : t -> int
(** Divergent chunks a verified read repaired (also the
    [pm.read_repairs] counter when attached with [obs]). *)

val verify_divergences : t -> int
(** Verified reads that found the copies divergent. *)

val verify_unrepaired : t -> int
(** Divergent chunks a verified read could not arbitrate (no trusted
    checksum, both copies corrupt, or the PMM unreachable). *)

val verified_reads_enabled : t -> bool

val fenced_writes : t -> int
(** Writes bounced with [Stale_epoch] before a grant refresh (also the
    [pm.fenced_writes] counter when attached with [obs]). *)

val mgmt_retries_used : t -> int
(** Management calls re-sent across PMM takeovers or timeouts. *)

val mgmt_retry_exhausted : t -> int
(** Management calls that ran out of retries and surfaced
    [Manager_down] (also the [pm.mgmt_retry_exhausted] counter). *)

val mgmt_retry_budget : t -> Retry_budget.t option
(** The management-path retry token bucket, when
    {!config.mgmt_retry_budget} enabled one ([pm.retry_budget_denied]
    counts the retries it refused). *)

(** {1 Gray-failure telemetry}

    The client's own view of fail-slow hardware: every data-path op
    feeds a per-device EWMA and windowed p99, compared against
    [slo_budget].  All zero while health tracking is disabled. *)

val slow_suspects : t -> int
(** Healthy-to-suspect transitions observed on either device (also the
    [pm.slow_suspect] counter). *)

val hedged_reads_fired : t -> int
(** Plain reads whose hedge timer expired and fired the mirror copy. *)

val hedge_wins : t -> int
(** Hedged reads the mirror copy answered first. *)

val single_copy_writes : t -> int
(** Writes persisted primary-only because the PMM had demoted the
    mirror — the explicit degraded-durability contract, not an error. *)

val latency_suspect : t -> mirror:bool -> bool
(** Is the device currently over its SLO budget? *)

val latency_ewma : t -> mirror:bool -> float
(** Smoothed per-op latency in ns (0 before the first sample). *)

val write_latency : t -> Stat.t
(** Distribution of {!write} completion times. *)

val backoff_ceiling : base:Time.span -> attempt:int -> Time.span
(** The jitter ceiling of retry attempt [attempt]:
    [max 1 (base * 2^min(attempt, 6))].  Pure — exposed so the backoff
    contract is directly testable. *)

val backoff_span : Rng.t -> base:Time.span -> attempt:int -> Time.span
(** Sample one jittered backoff: uniform in
    [(0, {!backoff_ceiling} ~base ~attempt]].  The client sleeps exactly
    this span between retries. *)
