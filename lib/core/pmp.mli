open Nsk

(** Persistent Memory Process: the paper's prototype NPMU (§4.2).

    A PMP is an ordinary NSK process that allocates a large memory region
    and exposes it to ServerNet RDMA like a hardware NPMU would.  It has
    the performance characteristics of the real device but {e not} its
    non-volatility: if its hosting CPU fails or power is lost, the
    contents are gone.  The test suite uses this contrast to check that
    durability claims are properties of the device, not of the access
    path. *)

type t

val create : Cpu.t -> Servernet.Fabric.t -> name:string -> capacity:int -> t
(** Spawns the hosting process on [cpu]; the PMP dies with that CPU. *)

val name : t -> string

val capacity : t -> int

val endpoint : t -> Servernet.Fabric.endpoint

val id : t -> int

val avt : t -> Servernet.Avt.t

val is_alive : t -> bool

val fenced_writes : t -> int
(** Writes this endpoint's AVT rejected with [Stale_epoch]. *)

val power_loss : t -> unit
(** Simulated power loss: the process dies and, being DRAM-hosted, the
    memory contents are cleared. *)

val peek : t -> off:int -> len:int -> Bytes.t
(** Maintenance-path read (zeros after a power loss). *)

val poke : t -> off:int -> data:Bytes.t -> unit
(** Maintenance-path write — the hosting process writing its own buffer
    (e.g. volume formatting). *)
