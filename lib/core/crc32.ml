let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

type state = int32

let init : state = 0xFFFFFFFFl

let update (st : state) buf ~pos ~len : state =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update: out of range";
  let table = Lazy.force table in
  let crc = ref st in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get buf i) in
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int byte)) 0xFFl) in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  !crc

let finish (st : state) = Int32.logxor st 0xFFFFFFFFl

let sub buf ~pos ~len = finish (update init buf ~pos ~len)

let bytes buf = sub buf ~pos:0 ~len:(Bytes.length buf)

let string s = bytes (Bytes.of_string s)
