open Simkit
open Nsk

(** Persistent Memory Manager: the process pair that owns a PM volume.

    A PM {e volume} is a mirrored pair of NPMUs (or PMP prototypes)
    managed by one PMM pair (paper §4.1).  The PMM allocates {e regions}
    — the PM analog of files — inside the volume, programs AVT windows so
    that authorized client CPUs can RDMA directly to the devices, and
    keeps the volume metadata (region name, extent, owner) durable and
    self-consistent {e on the devices themselves}, using dual
    generation-stamped, CRC-protected slots per device so that a crash
    mid-update always leaves a valid copy to recover from.

    Clients do not talk to the PMM for data access — only for management
    (create/open/close/delete).  Data moves by direct RDMA; see
    {!Pm_client}. *)

(** A managed device: what the PMM needs from an {!Npmu.t} or {!Pmp.t}. *)
type device = {
  dev_name : string;
  dev_id : int;  (** fabric endpoint id *)
  dev_capacity : int;
  dev_avt : Servernet.Avt.t;
  dev_peek : off:int -> len:int -> Bytes.t;
  dev_poke : off:int -> data:Bytes.t -> unit;
  dev_power_cycles : unit -> int;
      (** monotone count of power-loss events; the resync path compares
          it across the copy to catch blips invisible to RDMA *)
  dev_alive : unit -> bool;
      (** currently powered and reachable; the scrubber refuses to bless
          a clean scan taken while either copy was dark *)
}

val device_of_npmu : Npmu.t -> device

val device_of_pmp : Pmp.t -> device

type request =
  | Create of { rname : string; size : int; client : int }
      (** the creator is granted access immediately *)
  | Open of { rname : string; client : int }
  | Close of { rname : string; client : int }
  | Delete of { rname : string }
  | List_regions
  | Stat
  | Resync of { from_primary : bool }
      (** administrative mirror rebuild: copy every allocated region (and
          the metadata) from one device of the pair onto the other, e.g.
          after a replaced or power-cycled NPMU came back stale.  Fails —
          leaving the volume degraded — if either device power-cycles
          during the copy; on success the volume epoch is bumped so stale
          grants are fenced. *)
  | Chunk_crc of { addr : int }
      (** Ask for the scrubber's trusted checksum of the chunk containing
          absolute device offset [addr] — the arbitration a verified
          reader needs to decide which copy of a divergent range is
          truth.  Answers with the chunk's geometry even when no
          scrubber runs (the checksum is then [None]). *)

type stat_info = {
  capacity : int;  (** data capacity (metadata reserve excluded) *)
  allocated : int;
  region_count : int;
  degraded : bool;  (** one device of the pair unreachable *)
  generation : int;  (** metadata generation *)
}

type response =
  | R_region of Pm_types.region_info
  | R_regions of Pm_types.region_info list
  | R_stat of stat_info
  | R_ok
  | R_resynced of { bytes : int }
  | R_chunk_crc of {
      chunk_off : int;  (** absolute device offset of the chunk *)
      chunk_len : int;
      crc : int32 option;  (** durable checksum; [None] if never scanned clean *)
      quarantined : bool;
    }
  | R_error of Pm_types.error

type server = (request, response) Msgsys.server

type config = {
  meta_reserve : int;  (** bytes at the front of each device for metadata *)
  op_cpu_cost : Time.span;  (** PMM instruction-path cost per request *)
  mgmt_bytes : int;  (** wire size of an AVT-programming command *)
}

val default_config : config

val format : config -> device -> device -> unit
(** Factory-initialize both devices with an empty, generation-1 metadata
    table (maintenance path, takes no simulated time). *)

type t

val start :
  fabric:Servernet.Fabric.t ->
  name:string ->
  primary_cpu:Cpu.t ->
  backup_cpu:Cpu.t ->
  primary_dev:device ->
  mirror_dev:device ->
  ?config:config ->
  unit ->
  t
(** Boot the PMM pair.  The primary first {e recovers} the metadata table
    by RDMA-reading both devices' slots and picking the newest valid one;
    a freshly {!format}ted volume recovers to the empty table.  After a
    takeover, the promoted backup serves from its checkpointed copy. *)

val server : t -> server
(** The port clients address management requests to. *)

val config : t -> config

val degraded : t -> bool

val epoch : t -> int
(** Current volume epoch (0 before the first serve loop runs).  Bumped
    durably on every promotion — boot, takeover, cold-boot recovery —
    and on every successful resync; region grants carry it and the
    device AVTs fence writes stamped with an older value. *)

val last_recovery_time : t -> Time.span option
(** Wall-clock (simulated) duration of the most recent metadata recovery,
    [None] before first boot completes. *)

val takeovers : t -> int

val kill_primary : t -> unit
(** Fault injection: kill the primary manager process; the backup takes
    over from the checkpointed metadata (and, on its first request, the
    PM-resident metadata region). *)

val outage_time : t -> Time.span

val halt : t -> unit

(** {2 Scrubbing}

    The scrubber is an incremental background task that walks every
    allocated region of the mirrored volume in fixed-size chunks,
    RDMA-reads both copies, and compares them.  A clean compare refreshes
    the chunk's entry in a durable checksum table (dual-slotted,
    generation-stamped and CRC-framed in the metadata reserve, persisted
    once per completed pass — {e after} the pass's repairs, so the table
    is never newer than the data it vouches for).  A divergent chunk is
    re-read after a short settle (to filter mirrored writes caught in
    flight), then arbitrated against the table: the copy whose CRC
    matches is copied over the other ({e repair}); when neither matches
    the chunk strikes, and [scrub_quarantine_after] consecutive strikes
    quarantine it — it is skipped thereafter and surfaced through
    {!scrub_quarantined_chunks} for operator attention. *)

type scrub_config = {
  scrub_chunk_bytes : int;  (** compare granularity and table key size *)
  scrub_interval : Time.span;  (** pause between chunk scans *)
  scrub_recheck : Time.span;  (** settle before trusting a divergence *)
  scrub_quarantine_after : int;  (** consecutive unresolvable passes *)
}

val default_scrub_config : scrub_config
(** 256 KiB chunks, 100 us between chunks, 50 us settle, quarantine
    after 3. *)

val start_scrubber :
  t -> cpu:Cpu.t -> ?config:scrub_config -> ?metrics:Metrics.t -> unit -> unit
(** Start the background scrub process on [cpu] — must be one of the
    PMM pair's CPUs (the devices' windows admit only those).  Loads the
    durable checksum table, then loops passes until {!stop_scrubber}.
    With [metrics], exports [pmm.scrub.regions] (chunks compared),
    [pmm.scrub.repaired], [pmm.scrub.quarantined] and [pmm.scrub.passes]
    gauges plus a [pmm.scrub] progress probe for the time-series
    sampler.  Raises [Invalid_argument] if already running. *)

val stop_scrubber : t -> unit
(** Ask the scrubber to stop; it exits at its next wakeup.  Idempotent. *)

val scrub_chunks_scanned : t -> int

val scrub_repairs : t -> int

val scrub_quarantined : t -> int

val scrub_passes : t -> int

val scrub_table_entries : t -> int

val scrub_quarantined_chunks : t -> (int * int) list
(** Quarantined chunks as [(offset, length)], sorted. *)

val divergent_chunks : ?chunk_bytes:int -> t -> (int * int) list
(** Maintenance-path full-content audit (no fabric traffic, no time):
    peek-compare every allocated extent across the pair in scrub-chunk
    geometry and return the non-quarantined chunks whose copies differ.
    Empty on a healthy volume — the drill's final integrity gate. *)

(** {2 Mirror-health monitoring and slow-mirror demotion}

    A fail-slow NPMU is worse than a dead one: every mirrored write
    waits for it.  The monitor is a background process that periodically
    times a tiny RDMA read of each device's metadata window and keeps an
    EWMA of the service latency.  When the mirror's EWMA stays over
    [health_slo] for [demote_after] consecutive probes, the mirror is
    {e demoted}: [mirror_active] goes false, the volume epoch is bumped
    (fencing every outstanding grant), and clients that re-open learn
    from the region info that they must write single-copy — the explicit
    degraded-durability contract.  When the device recovers and stays
    within budget for [readmit_after] consecutive probes, the monitor
    re-admits it through the ordinary resync path: full copy, windows
    reprogrammed, [mirror_active] true again, epoch bumped so clients
    resume mirrored writes. *)

type health_config = {
  probe_interval : Time.span;  (** pause between probe rounds *)
  probe_bytes : int;  (** size of the timed probe read *)
  health_slo : Time.span;  (** per-probe latency budget *)
  health_alpha : float;  (** EWMA weight of the newest sample *)
  demote_after : int;  (** consecutive over-budget probes before demotion *)
  readmit_after : int;
      (** consecutive in-budget probes (while demoted) before resync *)
}

val default_health_config : health_config
(** 64-byte probes every 250 us, 100 us budget, alpha 0.5, demote after
    2 breaches, re-admit after 8 healthy probes. *)

val start_monitor :
  t -> cpu:Cpu.t -> ?config:health_config -> ?metrics:Metrics.t -> unit -> unit
(** Start the mirror-health monitor on [cpu] — must be one of the PMM
    pair's CPUs (the metadata windows admit only those).  With
    [metrics], exports gauges [pmm.mirror_health] (1 active / 0
    demoted), [pmm.mirror_ewma_ns], [pmm.primary_ewma_ns],
    [pmm.demotions] and [pmm.readmissions].  Raises [Invalid_argument]
    if already running. *)

val stop_monitor : t -> unit
(** Ask the monitor to stop; it exits at its next wakeup.  Idempotent. *)

val mirror_active : t -> bool
(** False while the mirror is demoted for being persistently slow. *)

val demotions : t -> int
(** Slow-mirror demotions performed (cumulative). *)

val readmissions : t -> int
(** Demoted mirrors re-admitted after a clean resync (cumulative). *)

val monitor_probes : t -> int
(** Completed mirror probes (0 when no monitor runs). *)

val monitor_ewma_ns : t -> mirror:bool -> float
(** The monitor's smoothed probe latency for one device, in ns. *)

val demote_mirror : t -> bool
(** Force the demotion (process context: it persists the fence).  False
    when already demoted or no metadata is live yet.  The monitor calls
    this; exposed for tests and drills. *)
