type error =
  | No_such_region
  | Region_exists
  | Out_of_space
  | Permission_denied
  | Region_busy
  | Device_failed
  | Manager_down
  | Fenced
  | Bad_request of string

let pp_error ppf = function
  | No_such_region -> Format.pp_print_string ppf "no such region"
  | Region_exists -> Format.pp_print_string ppf "region already exists"
  | Out_of_space -> Format.pp_print_string ppf "out of persistent memory"
  | Permission_denied -> Format.pp_print_string ppf "permission denied"
  | Region_busy -> Format.pp_print_string ppf "region is open by clients"
  | Device_failed -> Format.pp_print_string ppf "both NPMUs unreachable"
  | Manager_down -> Format.pp_print_string ppf "persistent memory manager down"
  | Fenced -> Format.pp_print_string ppf "write fenced: volume epoch advanced"
  | Bad_request msg -> Format.fprintf ppf "bad request: %s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

type region_info = {
  region_name : string;
  net_base : int;
  length : int;
  primary_npmu : int;
  mirror_npmu : int;
  epoch : int;
      (* volume epoch at grant time; write descriptors carry it so the
         NPMUs can fence grants issued before a takeover or resync *)
  mirror_active : bool;
      (* false while the PMM has demoted a persistently slow (or failed)
         mirror: clients must write single-copy under the degraded-
         durability contract and skip mirror reads until re-admission *)
}

let pp_region_info ppf r =
  Format.fprintf ppf "%s @@0x%x len=%d npmu=(%d,%d) epoch=%d%s" r.region_name r.net_base
    r.length r.primary_npmu r.mirror_npmu r.epoch
    (if r.mirror_active then "" else " mirror-demoted")
