open Simkit

(** Crash recovery: rebuild database state from the durable trails.

    The redo pass reads every ADP's trail back from its device, replays
    updates of committed transactions, and discards in-flight ones.  How
    it learns the outcomes is the paper's §3.4 point: the disk
    configuration scans the master audit trail; the PM configuration
    reads the transaction-state table straight out of persistent memory
    at RDMA speed — no searching.  MTTR is the simulated duration of the
    whole procedure, and shorter MTTR is "the mantra for both better
    availability and data integrity". *)

type outcome_source = Mat_scan | Pm_txn_table

type report = {
  mttr : Time.span;
  outcome_source : outcome_source;
  trails_scanned : int;
  bytes_scanned : int;
  records_replayed : int;
  committed_txns : int;
  in_doubt_txns : int;
      (** prepared under two-phase commit but undecided at the crash *)
  resolved_commit : int;
      (** in-doubt branches whose coordinator confirmed the commit *)
  resolved_abort : int;
      (** in-doubt branches aborted — coordinator said so, was
          unreachable, or the branch carried no gtid (presumed abort) *)
  discarded_updates : int;  (** updates of transactions that never committed *)
  rows_rebuilt : int;
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?outcome_of:((int * Audit.txn_id) option -> int) -> System.t -> (report, string) result
(** Execute recovery and install the rebuilt tables into the DP2s
    (maintenance path).  Process context only.

    In-doubt resolution (presumed abort): before the redo pass, every
    prepared-but-undecided branch in the monitor's window is decided by
    asking [outcome_of] with its gtid — a cluster supplies a cross-node
    [Query_outcome] to the coordinator here.  Only status 2 (committed)
    commits the branch; any other answer, a missing [outcome_of], or a
    [None] gtid aborts it.  Resolved commits are replayed by redo; after
    the tables are installed each decision is driven through the monitor
    (durable outcome record, lock release), with a direct lock-manager
    backstop if the monitor refuses.  Transactions still active at the
    crash are aborted and their locks freed.  With the system's [obs],
    resolutions bump the [dtx.resolved_commit] / [dtx.resolved_abort]
    counters. *)
