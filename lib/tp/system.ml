open Simkit
open Nsk

type log_mode = Disk_audit | Pm_audit

type pm_device_kind = Hardware_npmu | Prototype_pmp

type config = {
  seed : int64;
  worker_cpus : int;
  files : int;
  partitions_per_file : int;
  log_mode : log_mode;
  adps_per_node : int;
  pm_device_kind : pm_device_kind;
  pm_capacity : int;
  pm_region_bytes : int;
  pm_write_penalty : Time.span;
  pm_mirrored : bool;
  pm_verified_reads : bool;
  pm_scrub : Pm.Pmm.scrub_config option;
  pm_health : Pm.Pmm.health_config option;
  pm_slo_budget : Time.span;
  pm_hedged_reads : bool;
  pm_adaptive_backoff : bool;
  txn_state_in_pm : bool;
  client_deadline : Time.span;
  client_op_timeout : Time.span;
  client_retry_budget : float;
  client_breakers : bool;
  pm_retry_budget : float;
  fabric : Servernet.Fabric.config;
  adp : Adp.config;
  dp2 : Dp2.config;
  tmf : Tmf.config;
}

let default_config =
  {
    seed = 0x0D5L;
    worker_cpus = 4;
    files = 4;
    partitions_per_file = 4;
    log_mode = Disk_audit;
    adps_per_node = 4;
    pm_device_kind = Hardware_npmu;
    pm_capacity = 192 * 1024 * 1024;
    pm_region_bytes = 24 * 1024 * 1024;
    pm_write_penalty = 0;
    pm_mirrored = true;
    pm_verified_reads = false;
    pm_scrub = None;
    pm_health = None;
    pm_slo_budget = 0;
    pm_hedged_reads = false;
    pm_adaptive_backoff = false;
    txn_state_in_pm = false;
    client_deadline = 0;
    client_op_timeout = 0;
    client_retry_budget = 0.;
    client_breakers = false;
    pm_retry_budget = 0.;
    fabric = Servernet.Fabric.default_config;
    adp = Adp.default_config;
    dp2 = Dp2.default_config;
    tmf = Tmf.default_config;
  }

let pm_config = { default_config with log_mode = Pm_audit; txn_state_in_pm = true }

type pm_parts = {
  pmm : Pm.Pmm.t;
  devices : Pm.Npmu.t list;
  txn_state : (Pm.Pm_client.t * Pm.Pm_client.handle) option;
  (* Client attachments by CPU index; lazily populated as ADPs take
     their backends, so availability accounting folds over the table at
     query time rather than snapshotting it here. *)
  clients : (int, Pm.Pm_client.t) Hashtbl.t;
}

type t = {
  sys_sim : Sim.t;
  sys_node : Node.t;
  cfg : config;
  sys_tmf : Tmf.t;
  sys_adps : Adp.t array;
  sys_mat : Adp.t;
  sys_dp2s : Dp2.t array;
  sys_dp2_servers : Dp2.server array;
  sys_locks : Lockmgr.t;
  sys_data_vols : Diskio.Volume.t array;
  sys_audit_vols : Diskio.Volume.t array;
  sys_pm : pm_parts option;
  sys_routing : Txclient.routing;
  sys_obs : Obs.t option;
}

(* One client library attachment per CPU that needs PM access. *)
let make_pm_client ?obs cfg node fabric pmm ~cpu =
  let client_cfg =
    {
      Pm.Pm_client.default_config with
      mirrored_writes = cfg.pm_mirrored;
      write_penalty = cfg.pm_write_penalty;
      verified_reads = cfg.pm_verified_reads;
      slo_budget = cfg.pm_slo_budget;
      hedged_reads = cfg.pm_hedged_reads;
      adaptive_backoff = cfg.pm_adaptive_backoff;
      mgmt_retry_budget = cfg.pm_retry_budget;
    }
  in
  ignore node;
  Pm.Pm_client.attach ~cpu ~fabric ~pmm:(Pm.Pmm.server pmm) ~config:client_cfg ?obs ()

(* PM regions must exist before the ADPs that log into them; region
   creation needs process context, so builders run inside a setup
   process at time zero and the rest of construction continues there. *)
let build_pm ?obs cfg sim node =
  let fabric = Node.fabric node in
  (* Devices: hardware NPMUs attach directly; PMP prototypes are hosted
     by a process on the extra CPU (the paper ran the PMP "on a 5th
     CPU"). *)
  let devices, dev_pair =
    match cfg.pm_device_kind with
    | Hardware_npmu ->
        let a = Pm.Npmu.create sim fabric ~name:"npmu-a" ~capacity:cfg.pm_capacity in
        let b = Pm.Npmu.create sim fabric ~name:"npmu-b" ~capacity:cfg.pm_capacity in
        ([ a; b ], (Pm.Pmm.device_of_npmu a, Pm.Pmm.device_of_npmu b))
    | Prototype_pmp ->
        let host_a = Node.cpu node cfg.worker_cpus in
        let host_b = Node.cpu node (cfg.worker_cpus + 1) in
        let a = Pm.Pmp.create host_a fabric ~name:"pmp-a" ~capacity:cfg.pm_capacity in
        let b = Pm.Pmp.create host_b fabric ~name:"pmp-b" ~capacity:cfg.pm_capacity in
        ([], (Pm.Pmm.device_of_pmp a, Pm.Pmm.device_of_pmp b))
  in
  let dev_a, dev_b = dev_pair in
  Pm.Pmm.format Pm.Pmm.default_config dev_a dev_b;
  let pmm =
    Pm.Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0)
      ~backup_cpu:(Node.cpu node 1) ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in
  (match cfg.pm_scrub with
  | Some scrub_cfg ->
      Pm.Pmm.start_scrubber pmm ~cpu:(Node.cpu node 0) ~config:scrub_cfg
        ?metrics:(Option.map Obs.metrics obs) ()
  | None -> ());
  (* The mirror-health monitor probes from the backup CPU: its endpoint
     is already admitted to the metadata windows, and it keeps probing
     through a primary takeover. *)
  (match cfg.pm_health with
  | Some health_cfg ->
      Pm.Pmm.start_monitor pmm ~cpu:(Node.cpu node 1) ~config:health_cfg
        ?metrics:(Option.map Obs.metrics obs) ()
  | None -> ());
  (pmm, devices)

let build ?obs sim cfg =
  if cfg.worker_cpus < 2 then invalid_arg "System.build: need at least two worker CPUs";
  (* Spans timestamp against this simulation from here on. *)
  (match obs with Some o -> Obs.set_clock o (fun () -> Sim.now sim) | None -> ());
  let extra_cpus = match cfg.pm_device_kind with Prototype_pmp -> 2 | Hardware_npmu -> 0 in
  let node =
    Node.create sim ~fabric_config:cfg.fabric ~cpus:(cfg.worker_cpus + extra_cpus) ()
  in
  let fabric = Node.fabric node in
  (match obs with
  | Some o ->
      Servernet.Fabric.set_obs fabric o;
      let m = Obs.metrics o in
      for i = 0 to cfg.worker_cpus + extra_cpus - 1 do
        let cpu = Node.cpu node i in
        let p = Metrics.probe m (Printf.sprintf "cpu.%d" i) in
        Probe.set_clock p (fun () -> Sim.now sim);
        Cpu.set_probe cpu p
      done
  | None -> ());
  let observe_vol v =
    (match obs with Some o -> Diskio.Volume.set_obs v o | None -> ());
    v
  in
  let n_dp2 = cfg.files * cfg.partitions_per_file in
  (* Data volumes: battery-backed write caches and elevator scheduling,
     as the disk processes of the era ran them. *)
  let data_vols =
    Array.init n_dp2 (fun v ->
        observe_vol
          (Node.add_volume node
             ~name:(Printf.sprintf "$DATA%02d" v)
             ~cache:Diskio.Disk.default_cache ~scheduling:Diskio.Volume.Elevator ()))
  in
  (* Audit volumes: the flush must reach the spindle — no cache.  These
     are 15 kRPM log disks (2004 enterprise class), faster than the data
     spindles. *)
  let audit_geometry =
    {
      Diskio.Disk.default_geometry with
      Diskio.Disk.seek_base = Time.us 600;
      seek_full = Time.ms 6;
      bytes_per_ns = 0.06;
    }
  in
  let audit_vols =
    match cfg.log_mode with
    | Pm_audit -> [||]
    | Disk_audit ->
        Array.init (cfg.adps_per_node + 1) (fun i ->
            observe_vol
              (Node.add_volume node
                 ~name:(Printf.sprintf "$AUDIT%d" i)
                 ~geometry:audit_geometry ()))
  in
  let audit_mirrors =
    match cfg.log_mode with
    | Pm_audit -> [||]
    | Disk_audit ->
        Array.init (cfg.adps_per_node + 1) (fun i ->
            observe_vol
              (Node.add_volume node
                 ~name:(Printf.sprintf "$AUDIT%dM" i)
                 ~geometry:audit_geometry ()))
  in
  let worker i = Node.cpu node (i mod cfg.worker_cpus) in
  let backup_of i = Node.cpu node ((i + 1) mod cfg.worker_cpus) in
  let pm_parts, backend_of =
    match cfg.log_mode with
    | Disk_audit ->
        (None, fun i -> Log_backend.disk ~mirror:audit_mirrors.(i) ?obs audit_vols.(i))
    | Pm_audit ->
        let pmm, devices = build_pm ?obs cfg sim node in
        (match obs with
        | Some o ->
            let m = Obs.metrics o in
            List.iter (fun d -> Pm.Npmu.instrument d m) devices;
            (match devices with
            | [ a; b ] ->
                (* Mirror-resync lag: bytes the two halves of the pair
                   disagree by.  Zero while both halves ack every write. *)
                Metrics.register_gauge m "pm.mirror_lag_bytes" (fun () ->
                    float_of_int
                      (abs (Pm.Npmu.bytes_written a - Pm.Npmu.bytes_written b)))
            | _ -> ())
        | None -> ());
        (* Trail regions, one per data ADP plus the MAT, plus the
           transaction-state table. *)
        let clients = Hashtbl.create 8 in
        let client_for cpu_idx =
          match Hashtbl.find_opt clients cpu_idx with
          | Some c -> c
          | None ->
              let c = make_pm_client ?obs cfg node fabric pmm ~cpu:(worker cpu_idx) in
              Hashtbl.replace clients cpu_idx c;
              c
        in
        let make_backend i =
          let client = client_for i in
          match
            Pm.Pm_client.create_region client
              ~name:(Printf.sprintf "audit-trail-%d" i)
              ~size:cfg.pm_region_bytes
          with
          | Ok handle -> Log_backend.pm ?obs client handle
          | Error e ->
              invalid_arg ("System.build: PM trail region: " ^ Pm.Pm_types.error_to_string e)
        in
        let txn_state =
          if cfg.txn_state_in_pm then begin
            let client = client_for 0 in
            match
              Pm.Pm_client.create_region client ~name:"tmf-txn-state" ~size:(1 lsl 20)
            with
            | Ok handle -> Some (client, handle)
            | Error e ->
                invalid_arg ("System.build: txn-state region: " ^ Pm.Pm_types.error_to_string e)
          end
          else None
        in
        (Some { pmm; devices; txn_state; clients }, make_backend)
  in
  let adps =
    Array.init cfg.adps_per_node (fun i ->
        Adp.start ~fabric
          ~name:(Printf.sprintf "$ADP%d" i)
          ~primary:(worker i) ~backup:(backup_of i) ~backend:(backend_of i) ~config:cfg.adp
          ?obs ())
  in
  let mat =
    Adp.start ~fabric ~name:"$MAT" ~primary:(worker 0) ~backup:(backup_of 0)
      ~backend:(backend_of cfg.adps_per_node) ~config:cfg.adp ?obs ()
  in
  let locks = Lockmgr.create sim ~timeout:cfg.dp2.Dp2.lock_timeout ?obs () in
  let adp_servers = Array.map Adp.server adps in
  let dp2s =
    Array.init n_dp2 (fun v ->
        let cpu_idx = v mod cfg.worker_cpus in
        let adp_index = cpu_idx mod cfg.adps_per_node in
        Dp2.start ~fabric
          ~name:(Printf.sprintf "$DP2-%02d" v)
          ~dp2_index:v ~adp_index ~primary:(worker cpu_idx) ~backup:(backup_of cpu_idx)
          ~volume:data_vols.(v) ~adp:adp_servers.(adp_index) ~locks ~config:cfg.dp2 ?obs ())
  in
  let dp2_servers = Array.map Dp2.server dp2s in
  let txn_state = match pm_parts with Some p -> p.txn_state | None -> None in
  (* Outcome probe for in-doubt resolution without a PM table: scan the
     durable master trail for the transaction's last word. *)
  let outcome_probe txn =
    match Log_backend.recovery_read (Adp.backend mat) with
    | Error _ -> 0
    | Ok records ->
        List.fold_left
          (fun acc (_, record) ->
            match record with
            | Audit.Commit { txn = x } when x = txn -> 2
            | Audit.Abort { txn = x } when x = txn -> 3
            | Audit.Prepared { txn = x } when x = txn && acc = 0 -> 4
            | _ -> acc)
          0 records
  in
  let tmf =
    Tmf.start ~fabric ~name:"$TMF" ~primary:(Node.cpu node 0) ~backup:(Node.cpu node 1)
      ~adps:adp_servers ~dp2s:dp2_servers ~mat:(Adp.server mat) ?txn_state ~outcome_probe
      ~config:cfg.tmf ?obs ()
  in
  {
    sys_sim = sim;
    sys_node = node;
    cfg;
    sys_tmf = tmf;
    sys_adps = adps;
    sys_mat = mat;
    sys_dp2s = dp2s;
    sys_dp2_servers = dp2_servers;
    sys_locks = locks;
    sys_data_vols = data_vols;
    sys_audit_vols = audit_vols;
    sys_pm = pm_parts;
    sys_routing =
      Txclient.uniform_routing ~files:cfg.files ~partitions_per_file:cfg.partitions_per_file;
    sys_obs = obs;
  }

let sim t = t.sys_sim

let node t = t.sys_node

let config t = t.cfg

let tmf t = t.sys_tmf

let adps t = t.sys_adps

let mat t = t.sys_mat

let dp2s t = t.sys_dp2s

let dp2_servers t = t.sys_dp2_servers

let locks t = t.sys_locks

let data_volumes t = t.sys_data_vols

let audit_volumes t = t.sys_audit_vols

let pmm t = match t.sys_pm with Some p -> Some p.pmm | None -> None

let npmus t = match t.sys_pm with Some p -> p.devices | None -> []

let txn_state_region t = match t.sys_pm with Some p -> p.txn_state | None -> None

let pm_clients t =
  match t.sys_pm with
  | None -> []
  | Some p -> Hashtbl.fold (fun _ c acc -> c :: acc) p.clients []

let degraded_pm_writes t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.degraded_writes c) 0 (pm_clients t)

let pm_write_retries t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.write_retries c) 0 (pm_clients t)

let pm_fenced_writes t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.fenced_writes c) 0 (pm_clients t)

let pm_read_repairs t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.read_repairs c) 0 (pm_clients t)

let pm_verify_unrepaired t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.verify_unrepaired c) 0 (pm_clients t)

let pm_slow_suspects t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.slow_suspects c) 0 (pm_clients t)

let pm_hedged_reads t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.hedged_reads_fired c) 0 (pm_clients t)

let pm_hedge_wins t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.hedge_wins c) 0 (pm_clients t)

let pm_single_copy_writes t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.single_copy_writes c) 0 (pm_clients t)

let pm_mgmt_retry_exhausted t =
  List.fold_left (fun acc c -> acc + Pm.Pm_client.mgmt_retry_exhausted c) 0 (pm_clients t)

(* Probe the epoch fence: a write stamped one epoch behind the volume
   must bounce off the NPMU's AVT with [Stale_epoch].  The probe uses a
   scratch endpoint that holds no write grant, so even a broken fence
   cannot corrupt data — it would surface as [Access_denied], which the
   check reports as a fencing failure. *)
let fence_check t =
  match t.sys_pm with
  | None -> Error "fence check requires PM mode"
  | Some p -> (
      let client =
        Hashtbl.fold (fun _ c acc -> match acc with Some _ -> acc | None -> Some c)
          p.clients None
      in
      match client with
      | None -> Error "fence check: no PM client attached"
      | Some client -> (
          match Pm.Pm_client.list_regions client with
          | Error e -> Error ("fence check: " ^ Pm.Pm_types.error_to_string e)
          | Ok [] -> Error "fence check: no regions to probe"
          | Ok (r :: _) -> (
              let fabric = Node.fabric t.sys_node in
              let probe =
                Servernet.Fabric.attach fabric ~name:"fence-probe"
                  ~store:(Servernet.Fabric.byte_store 64)
              in
              let stale = r.Pm.Pm_types.epoch - 1 in
              match
                Servernet.Fabric.rdma_write fabric ~epoch:stale ~src:probe
                  ~dst:r.Pm.Pm_types.primary_npmu ~addr:r.Pm.Pm_types.net_base
                  ~data:(Bytes.create 8)
              with
              | Error (Servernet.Fabric.Avt_error Servernet.Avt.Stale_epoch) -> Ok ()
              | Error Servernet.Fabric.Unreachable ->
                  (* The target device is dark (powered off or failed):
                     no write, stale or fresh, can land on it, so the
                     fencing invariant holds vacuously.  Reporting this
                     as a failure would make every probe that races a
                     power cycle a false alarm. *)
                  Ok ()
              | Ok () -> Error "fence check: stale-epoch write was accepted"
              | Error e ->
                  Error
                    ("fence check: stale-epoch write not fenced: "
                    ^ Servernet.Fabric.error_to_string e))))

let obs t = t.sys_obs

let session t ~cpu =
  let retry_budget =
    if t.cfg.client_retry_budget > 0. then
      Some (Retry_budget.create ~capacity:t.cfg.client_retry_budget ())
    else None
  in
  Txclient.create ~cpu:(Node.cpu t.sys_node cpu) ~tmf:(Tmf.server t.sys_tmf)
    ~dp2s:t.sys_dp2_servers ~routing:t.sys_routing
    ~deadline_budget:t.cfg.client_deadline ~op_timeout:t.cfg.client_op_timeout
    ?retry_budget ~breakers:t.cfg.client_breakers ?obs:t.sys_obs ()

let routing t = t.sys_routing

let total_audit_bytes t =
  Array.fold_left (fun acc adp -> acc + Log_backend.bytes_written (Adp.backend adp)) 0 t.sys_adps
  + Log_backend.bytes_written (Adp.backend t.sys_mat)

let checkpoint_message_bytes t =
  Array.fold_left (fun acc adp -> acc + Adp.checkpoint_bytes adp) 0 t.sys_adps
  + Adp.checkpoint_bytes t.sys_mat

let adp_shed_expired t =
  Array.fold_left (fun acc adp -> acc + Adp.shed_expired_count adp) 0 t.sys_adps
  + Adp.shed_expired_count t.sys_mat

let report ppf t =
  let tmf = t.sys_tmf in
  Format.fprintf ppf "transactions: begun=%d committed=%d aborted=%d active=%d@." (Tmf.begun tmf)
    (Tmf.committed tmf) (Tmf.aborted tmf)
    (List.length (Tmf.active_txns tmf));
  Format.fprintf ppf "commit latency: %a@."
    (fun ppf s -> Stat.pp_summary ppf s)
    (Tmf.commit_latency tmf);
  Array.iteri
    (fun i adp ->
      Format.fprintf ppf "ADP%d: appended=%d flush-reqs=%d writes=%d durable-asn=%d ckpt=%dB@." i
        (Adp.appended_records adp) (Adp.flush_requests adp) (Adp.flushes_performed adp)
        (Adp.durable_asn adp) (Adp.checkpoint_bytes adp))
    t.sys_adps;
  Format.fprintf ppf "MAT: appended=%d writes=%d ckpt=%dB@."
    (Adp.appended_records t.sys_mat)
    (Adp.flushes_performed t.sys_mat)
    (Adp.checkpoint_bytes t.sys_mat);
  let dp2_inserts = Array.fold_left (fun acc d -> acc + Dp2.inserts d) 0 t.sys_dp2s in
  let dp2_rows = Array.fold_left (fun acc d -> acc + Dp2.table_size d) 0 t.sys_dp2s in
  let max_height = Array.fold_left (fun acc d -> max acc (Dp2.index_height d)) 1 t.sys_dp2s in
  Format.fprintf ppf "DP2s: inserts=%d rows=%d max-index-height=%d@." dp2_inserts dp2_rows
    max_height;
  Format.fprintf ppf "locks: conflicts=%d timeouts=%d waiting=%d@." (Lockmgr.conflicts t.sys_locks)
    (Lockmgr.timeouts t.sys_locks) (Lockmgr.waiting t.sys_locks);
  Array.iter
    (fun v ->
      if Diskio.Volume.completed_ops v > 0 then
        Format.fprintf ppf "volume %s: ops=%d bytes=%d busy=%a depth=%d@." (Diskio.Volume.name v)
          (Diskio.Volume.completed_ops v)
          (Diskio.Volume.completed_bytes v)
          Time.pp (Diskio.Volume.busy_time v)
          (Diskio.Volume.queue_depth v))
    t.sys_data_vols;
  Array.iter
    (fun v ->
      if Diskio.Volume.completed_ops v > 0 then
        Format.fprintf ppf "audit %s: ops=%d bytes=%d busy=%a@." (Diskio.Volume.name v)
          (Diskio.Volume.completed_ops v)
          (Diskio.Volume.completed_bytes v)
          Time.pp (Diskio.Volume.busy_time v))
    t.sys_audit_vols;
  let fs = Servernet.Fabric.stats (Node.fabric t.sys_node) in
  Format.fprintf ppf "fabric: writes=%d reads=%d wrote=%dB read=%dB retries=%d failures=%d@."
    fs.Servernet.Fabric.writes fs.Servernet.Fabric.reads fs.Servernet.Fabric.bytes_written
    fs.Servernet.Fabric.bytes_read fs.Servernet.Fabric.packet_retries fs.Servernet.Fabric.failures

(* Background audit archiving: trim each trail's durable prefix so the
   replayable window stays bounded, as a production archiver moving
   audit to tape would. *)
let start_trail_archiver t ?(interval = Time.sec 5) ?rounds () =
  let cpu = Node.cpu t.sys_node 0 in
  let archive_one adp =
    let durable = Adp.durable_asn adp in
    if durable > 0 then
      match
        Rpc.call_retry (Adp.server adp) ~from:cpu ~attempts:2 (Adp.Trim { through = durable })
      with
      | Ok _ | Error _ -> ()
  in
  let sweep () =
    Sim.sleep interval;
    Array.iter archive_one t.sys_adps;
    archive_one t.sys_mat
  in
  ignore
    (Cpu.spawn cpu ~name:"trail-archiver" (fun () ->
         match rounds with
         | Some n ->
             for _ = 1 to n do
               sweep ()
             done
         | None ->
             while true do
               sweep ()
             done))
