open Simkit
open Nsk

type error =
  | Tx_failed of string
  | Tx_rejected of string
      (** admission backpressure (server reject or local circuit open):
          nothing was started or lost; back off, don't hammer *)

let error_to_string = function
  | Tx_failed msg -> msg
  | Tx_rejected msg -> "rejected: " ^ msg

let is_rejected = function Tx_rejected _ -> true | Tx_failed _ -> false

type routing = {
  files : int;
  partitions_per_file : int;
  dp2_of : file:int -> key:int -> int;
}

let uniform_routing ~files ~partitions_per_file =
  {
    files;
    partitions_per_file;
    dp2_of =
      (fun ~file ~key -> (file * partitions_per_file) + (key mod partitions_per_file));
  }

type t = {
  client_cpu : Cpu.t;
  tmf : Tmf.server;
  dp2s : Dp2.server array;
  routing : routing;
  issue_cpu : Time.span;
  wan : Time.span;
  link : unit -> bool;
  crc_rng : Rng.t;
  rt : Stat.t;
  obs : Obs.t option;
  insert_wait_stat : Stat.t option;
  commit_call_stat : Stat.t option;
  deadline_budget : Time.span;  (** 0 = transactions carry no deadline *)
  op_timeout : Time.span;
      (** client patience per synchronous call; 0 = wait forever.  An
          impatient client is what turns overload into a retry storm —
          the budget and breakers below exist to contain it. *)
  budget : Retry_budget.t option;
  breakers : Breaker.t array option;
      (** one per destination: indices [0..n-1] the DP2s, [n] the TMF *)
  mutable n_rejected : int;  (** begins refused (server or circuit) *)
  mutable n_timeouts : int;  (** calls abandoned after [op_timeout] *)
}

type pending_insert = {
  p_dp2 : int;
  p_file : int;
  p_key : int;
  p_len : int;
  p_crc : int;
  p_payload : Bytes.t option;
  p_reply : (Dp2.response, Msgsys.error) result Ivar.t;
}

type txn = {
  id : Audit.txn_id;
  started : Time.t;
  deadline : Time.t;  (** absolute, minted at begin; 0 = none *)
  root : Span.span;  (** the whole-transaction span; inserts and commit parent under it *)
  mutable pending : pending_insert list;
  high_water : (int, Audit.asn) Hashtbl.t;  (** ADP index -> max ASN *)
  involved : (int, unit) Hashtbl.t;  (** DP2 indices *)
  mutable failed : string option;
}

let create ~cpu ~tmf ~dp2s ~routing ?(issue_cpu = Time.us 500) ?(wan_latency = 0)
    ?(link = fun () -> true) ?(deadline_budget = 0) ?(op_timeout = 0) ?retry_budget
    ?(breakers = false) ?obs () =
  {
    client_cpu = cpu;
    tmf;
    dp2s;
    routing;
    issue_cpu;
    wan = wan_latency;
    link;
    crc_rng = Rng.create 0xC4CL;
    rt =
      (match obs with
      | Some o -> Metrics.stat (Obs.metrics o) "txn.response_ns"
      | None -> Stat.create ~name:"txn_response" ());
    obs;
    insert_wait_stat =
      (match obs with
      | Some o -> Some (Metrics.stat (Obs.metrics o) "txn.insert_wait_ns")
      | None -> None);
    commit_call_stat =
      (match obs with
      | Some o -> Some (Metrics.stat (Obs.metrics o) "txn.commit_call_ns")
      | None -> None);
    deadline_budget;
    op_timeout;
    budget = retry_budget;
    breakers =
      (if breakers then
         Some (Array.init (Array.length dp2s + 1) (fun _ -> Breaker.create ()))
       else None);
    n_rejected = 0;
    n_timeouts = 0;
  }

let now t = Sim.now (Cpu.sim t.client_cpu)

(* Client-side containment: the retry budget and per-destination
   breakers that keep rejected/failed work from amplifying into a
   retry storm. *)
let tmf_breaker t =
  match t.breakers with Some b -> Some b.(Array.length b - 1) | None -> None

let dp2_breaker t i = match t.breakers with Some b -> Some b.(i) | None -> None

let breaker_allow t br =
  match br with None -> true | Some b -> Breaker.allow b ~now:(now t)

let breaker_success br =
  match br with None -> () | Some b -> Breaker.record_success b

let breaker_failure t br =
  match br with None -> () | Some b -> Breaker.record_failure b ~now:(now t)

let spend_retry t =
  match t.budget with None -> true | Some b -> Retry_budget.try_spend b

let budget_success t =
  match t.budget with None -> () | Some b -> Retry_budget.success b

let start_span t ?parent name =
  match t.obs with
  | Some o -> Span.start (Obs.spans o) ~track:"client" ?parent name
  | None -> Span.null

(* The head of a transaction's causal DAG: a root span minting a fresh
   trace id that every downstream hop — DP2, ADP, TMF, PM, volumes —
   inherits through the envelope/parent chain. *)
let root_span t name =
  match t.obs with
  | Some o -> Span.root (Obs.spans o) ~track:"client" name
  | None -> Span.null

let finish_span t sp =
  match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ()

let note stat dt = match stat with Some st -> Stat.add_span st dt | None -> ()

(* Synchronous call with the session's inter-node link latency on both
   legs.  A severed link loses the request (or the reply, when the
   partition lands mid-call): the caller sees a timeout, and when the
   reply leg was the one lost the server has already acted — the window
   that creates in-doubt transactions. *)
let wan_call t server ?req_bytes ?resp_bytes ?span ?timeout req =
  let timeout =
    match timeout with
    | Some _ as s -> s
    | None -> if t.op_timeout > 0 then Some t.op_timeout else None
  in
  let counted_call () =
    let r = Msgsys.call server ~from:t.client_cpu ?req_bytes ?resp_bytes ?span ?timeout req in
    (match (r, timeout) with
    | Error Msgsys.Timed_out, Some _ -> t.n_timeouts <- t.n_timeouts + 1
    | _ -> ());
    r
  in
  if t.wan = 0 then counted_call ()
  else if not (t.link ()) then begin
    Sim.sleep t.wan;
    Error Msgsys.Timed_out
  end
  else begin
    Sim.sleep t.wan;
    let result = counted_call () in
    Sim.sleep t.wan;
    if t.link () then result else Error Msgsys.Timed_out
  end

(* Asynchronous call routed through a relay process so the caller is not
   blocked for the link time. *)
let wan_call_async t server ?req_bytes ?resp_bytes ?span req =
  if t.wan = 0 then
    Msgsys.call_async server ~from:t.client_cpu ?req_bytes ?resp_bytes ?span req
  else begin
    let out = Ivar.create () in
    let sim = Cpu.sim t.client_cpu in
    let (_ : Sim.pid) =
      Sim.spawn sim ~name:"wan-relay" (fun () ->
          Sim.sleep t.wan;
          if not (t.link ()) then Ivar.fill out (Error Msgsys.Timed_out)
          else begin
            let inner =
              Msgsys.call_async server ~from:t.client_cpu ?req_bytes ?resp_bytes ?span req
            in
            let reply = Ivar.read inner in
            Sim.sleep t.wan;
            Ivar.fill out (if t.link () then reply else Error Msgsys.Timed_out)
          end)
    in
    out
  end

let cpu t = t.client_cpu

let txn_id txn = txn.id

let begin_txn t =
  let br = tmf_breaker t in
  if not (breaker_allow t br) then begin
    t.n_rejected <- t.n_rejected + 1;
    Error (Tx_rejected "circuit open: tmf")
  end
  else begin
    let root = root_span t "txn" in
    let bsp = start_span t ~parent:root "txn.begin" in
    let fail msg =
      finish_span t bsp;
      finish_span t root;
      Error (Tx_failed msg)
    in
    (* The deadline is minted at arrival and propagates — in the begin
       request, on every insert, and through the monitor to lock waits
       and trail flushes. *)
    let deadline = if t.deadline_budget > 0 then now t + t.deadline_budget else 0 in
    match wan_call t t.tmf ~span:bsp (Tmf.Begin_txn { deadline }) with
    | Ok (Tmf.Began { txn }) ->
        breaker_success br;
        finish_span t bsp;
        if not (Span.is_null root) then
          Span.annotate root ~key:"txn" (string_of_int txn);
        Ok
          {
            id = txn;
            started = Sim.now (Cpu.sim t.client_cpu);
            deadline;
            root;
            pending = [];
            high_water = Hashtbl.create 8;
            involved = Hashtbl.create 8;
            failed = None;
          }
    | Ok (Tmf.Rejected { reason }) ->
        (* The server is alive and answered — no breaker failure. *)
        breaker_success br;
        t.n_rejected <- t.n_rejected + 1;
        finish_span t bsp;
        finish_span t root;
        Error (Tx_rejected reason)
    | Ok (Tmf.T_failed e) ->
        breaker_success br;
        fail e
    | Ok _ -> fail "unexpected TMF reply"
    | Error e ->
        breaker_failure t br;
        fail (Format.asprintf "%a" Msgsys.pp_error e)
  end

let note_insert_reply t txn p result =
  let br = dp2_breaker t p.p_dp2 in
  let rec note ?(retries = 6) = function
    | Ok (Dp2.Inserted { asn; adp }) ->
        breaker_success br;
        budget_success t;
        let prev = Option.value (Hashtbl.find_opt txn.high_water adp) ~default:0 in
        Hashtbl.replace txn.high_water adp (max prev asn);
        Hashtbl.replace txn.involved p.p_dp2 ()
    | Ok (Dp2.D_failed e) -> if txn.failed = None then txn.failed <- Some e
    | Ok _ -> if txn.failed = None then txn.failed <- Some "unexpected DP2 reply"
    | Error (Msgsys.Server_down | Msgsys.Timed_out) when retries > 0 ->
        (* The writer is failing over: wait out the takeover and re-issue.
           Inserts are idempotent overwrites, so at-least-once is safe.
           This loop is the retry-storm amplifier under overload — which
           is why each resend must clear the token bucket and the
           destination's breaker first. *)
        breaker_failure t br;
        if not (spend_retry t) then begin
          if txn.failed = None then txn.failed <- Some "retry budget exhausted"
        end
        else if not (breaker_allow t br) then begin
          if txn.failed = None then
            txn.failed <- Some (Printf.sprintf "circuit open: dp2 %d" p.p_dp2)
        end
        else begin
          Sim.sleep (Time.ms 200);
          let resend =
            wan_call t t.dp2s.(p.p_dp2) ~req_bytes:(p.p_len + 128)
              (Dp2.Insert
                 {
                   txn = txn.id;
                   file = p.p_file;
                   key = p.p_key;
                   len = p.p_len;
                   crc = p.p_crc;
                   payload = p.p_payload;
                   deadline = txn.deadline;
                 })
          in
          note ~retries:(retries - 1) resend
        end
    | Error e ->
        breaker_failure t br;
        if txn.failed = None then txn.failed <- Some (Format.asprintf "%a" Msgsys.pp_error e)
  in
  note result

let insert_async t txn ?payload ~file ~key ~len () =
  (* The application pays its own instruction path before the request
     leaves the CPU. *)
  Cpu.execute t.client_cpu t.issue_cpu;
  let dp2_idx = t.routing.dp2_of ~file ~key in
  let len = match payload with Some p -> Bytes.length p | None -> len in
  let crc =
    match payload with
    | Some p -> Int32.to_int (Pm.Crc32.bytes p) land 0x3FFFFFFF
    | None -> Rng.int t.crc_rng 0x40000000
  in
  let reply =
    wan_call_async t t.dp2s.(dp2_idx) ~req_bytes:(len + 128) ~span:txn.root
      (Dp2.Insert
         { txn = txn.id; file; key; len; crc; payload; deadline = txn.deadline })
  in
  txn.pending <-
    {
      p_dp2 = dp2_idx;
      p_file = file;
      p_key = key;
      p_len = len;
      p_crc = crc;
      p_payload = payload;
      p_reply = reply;
    }
    :: txn.pending

let await_inserts t txn =
  let outstanding = List.rev txn.pending in
  txn.pending <- [];
  (match outstanding with
  | [] -> ()
  | _ ->
      let sp = start_span t ~parent:txn.root "txn.await_inserts" in
      if not (Span.is_null sp) then
        Span.annotate sp ~key:"inserts" (string_of_int (List.length outstanding));
      let t0 = now t in
      let read_reply p =
        if t.op_timeout = 0 then Ivar.read p.p_reply
        else
          match Ivar.read_timeout p.p_reply t.op_timeout with
          | Some r -> r
          | None ->
              t.n_timeouts <- t.n_timeouts + 1;
              Error Msgsys.Timed_out
      in
      List.iter (fun p -> note_insert_reply t txn p (read_reply p)) outstanding;
      note t.insert_wait_stat (now t - t0);
      finish_span t sp);
  match txn.failed with None -> Ok () | Some e -> Error (Tx_failed e)

let insert t txn ?payload ~file ~key ~len () =
  insert_async t txn ?payload ~file ~key ~len ();
  await_inserts t txn

let flush_list txn = Hashtbl.fold (fun adp asn acc -> (adp, asn) :: acc) txn.high_water []

let involved_list txn = Hashtbl.fold (fun dp2 () acc -> dp2 :: acc) txn.involved []

let commit t txn =
  match await_inserts t txn with
  | Error e ->
      finish_span t txn.root;
      Error e
  | Ok () ->
      let csp = start_span t ~parent:txn.root "txn.commit" in
      let c0 = now t in
      let result =
        wan_call t t.tmf ~span:csp
          (Tmf.Commit_txn
             { txn = txn.id; flushes = flush_list txn; involved = involved_list txn })
      in
      note t.commit_call_stat (now t - c0);
      finish_span t csp;
      let out =
        match result with
        | Ok Tmf.Committed ->
            breaker_success (tmf_breaker t);
            budget_success t;
            Stat.add_span t.rt (Sim.now (Cpu.sim t.client_cpu) - txn.started);
            Ok ()
        | Ok (Tmf.T_failed e) -> Error (Tx_failed e)
        | Ok _ -> Error (Tx_failed "unexpected TMF reply")
        | Error e ->
            breaker_failure t (tmf_breaker t);
            Error (Tx_failed (Format.asprintf "%a" Msgsys.pp_error e))
      in
      finish_span t txn.root;
      out

let abort t txn =
  (* Collect stragglers first so their locks are covered by the release. *)
  let (_ : (unit, error) result) = await_inserts t txn in
  Span.annotate txn.root ~key:"outcome" "abort";
  finish_span t txn.root;
  match
    wan_call t t.tmf (Tmf.Abort_txn { txn = txn.id; involved = involved_list txn })
  with
  | Ok Tmf.Aborted -> Ok ()
  | Ok (Tmf.T_failed e) -> Error (Tx_failed e)
  | Ok _ -> Error (Tx_failed "unexpected TMF reply")
  | Error e -> Error (Tx_failed (Format.asprintf "%a" Msgsys.pp_error e))

let read t txn ~file ~key =
  let dp2_idx = t.routing.dp2_of ~file ~key in
  match wan_call t t.dp2s.(dp2_idx) (Dp2.Read { txn = txn.id; file; key }) with
  | Ok (Dp2.Found { len; crc; _ }) ->
      Hashtbl.replace txn.involved dp2_idx ();
      Ok (Some (len, crc))
  | Ok Dp2.Absent ->
      Hashtbl.replace txn.involved dp2_idx ();
      Ok None
  | Ok (Dp2.D_failed e) -> Error (Tx_failed e)
  | Ok _ -> Error (Tx_failed "unexpected DP2 reply")
  | Error e -> Error (Tx_failed (Format.asprintf "%a" Msgsys.pp_error e))

let prepare ?gtid t txn =
  match await_inserts t txn with
  | Error e -> Error e
  | Ok () -> (
      let psp = start_span t ~parent:txn.root "txn.prepare" in
      let result =
        wan_call t t.tmf ~span:psp
          (Tmf.Prepare_txn
             { txn = txn.id; flushes = flush_list txn; involved = involved_list txn; gtid })
      in
      finish_span t psp;
      match result with
      | Ok Tmf.Prepared_ok -> Ok ()
      | Ok (Tmf.T_failed e) -> Error (Tx_failed e)
      | Ok _ -> Error (Tx_failed "unexpected TMF reply")
      | Error e -> Error (Tx_failed (Format.asprintf "%a" Msgsys.pp_error e)))

let decide t txn ~commit =
  let dsp = start_span t ~parent:txn.root "txn.decide" in
  if not (Span.is_null dsp) then
    Span.annotate dsp ~key:"commit" (if commit then "true" else "false");
  let result = wan_call t t.tmf ~span:dsp (Tmf.Decide_txn { txn = txn.id; commit }) in
  finish_span t dsp;
  finish_span t txn.root;
  match result with
  | Ok Tmf.Decided ->
      if commit then Stat.add_span t.rt (Sim.now (Cpu.sim t.client_cpu) - txn.started);
      Ok ()
  | Ok (Tmf.T_failed e) -> Error (Tx_failed e)
  | Ok _ -> Error (Tx_failed "unexpected TMF reply")
  | Error e -> Error (Tx_failed (Format.asprintf "%a" Msgsys.pp_error e))

let query_outcome t txn_id =
  match wan_call t t.tmf (Tmf.Query_outcome { txn = txn_id }) with
  | Ok (Tmf.Outcome { status }) -> Ok status
  | Ok (Tmf.T_failed e) -> Error (Tx_failed e)
  | Ok _ -> Error (Tx_failed "unexpected TMF reply")
  | Error e -> Error (Tx_failed (Format.asprintf "%a" Msgsys.pp_error e))

let lookup t ~file ~key =
  let dp2_idx = t.routing.dp2_of ~file ~key in
  match wan_call t t.dp2s.(dp2_idx) (Dp2.Lookup { file; key }) with
  | Ok (Dp2.Found { len; crc; _ }) -> Ok (Some (len, crc))
  | Ok Dp2.Absent -> Ok None
  | Ok (Dp2.D_failed e) -> Error (Tx_failed e)
  | Ok _ -> Error (Tx_failed "unexpected DP2 reply")
  | Error e -> Error (Tx_failed (Format.asprintf "%a" Msgsys.pp_error e))

let lookup_payload t ~file ~key =
  let dp2_idx = t.routing.dp2_of ~file ~key in
  match wan_call t t.dp2s.(dp2_idx) ~resp_bytes:4096 (Dp2.Lookup { file; key }) with
  | Ok (Dp2.Found { payload; _ }) -> Ok payload
  | Ok Dp2.Absent -> Ok None
  | Ok (Dp2.D_failed e) -> Error (Tx_failed e)
  | Ok _ -> Error (Tx_failed "unexpected DP2 reply")
  | Error e -> Error (Tx_failed (Format.asprintf "%a" Msgsys.pp_error e))

let scan t ~file ~lo ~hi ?(limit = 0) () =
  (* The file is spread over partitions_per_file DP2s; fan the scan out
     and merge the sorted slices. *)
  let parts = t.routing.partitions_per_file in
  let replies =
    List.init parts (fun p ->
        wan_call_async t t.dp2s.((file * parts) + p) (Dp2.Scan { file; lo; hi; limit }))
  in
  let rec gather acc = function
    | [] -> Ok acc
    | reply :: rest -> (
        match Ivar.read reply with
        | Ok (Dp2.Rows rows) -> gather (rows :: acc) rest
        | Ok (Dp2.D_failed e) -> Error (Tx_failed e)
        | Ok _ -> Error (Tx_failed "unexpected DP2 reply")
        | Error e -> Error (Tx_failed (Format.asprintf "%a" Msgsys.pp_error e)))
  in
  match gather [] replies with
  | Error e -> Error e
  | Ok slices ->
      Ok (List.sort (fun (a, _, _) (b, _, _) -> compare a b) (List.concat slices))

let response_time t = t.rt

let rejections t = t.n_rejected

let timeouts t = t.n_timeouts

let retry_budget t = t.budget

let breaker_trips t =
  match t.breakers with
  | None -> 0
  | Some bs -> Array.fold_left (fun acc b -> acc + Breaker.trips b) 0 bs

let breaker_rejected t =
  match t.breakers with
  | None -> 0
  | Some bs -> Array.fold_left (fun acc b -> acc + Breaker.rejected b) 0 bs
