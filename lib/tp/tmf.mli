open Simkit
open Nsk

(** The Transaction Monitor Facility: a process pair coordinating
    begin/commit/abort (paper §1.2, §4.2).

    Commit is where the storage gap bites: the monitor must (1) get every
    involved trail flushed through the transaction's highest audit
    sequence numbers, then (2) make its own commit record durable in the
    master audit trail, and only then answer the application.  With disk
    trails both steps cost rotational misses; with persistent-memory
    trails both cost RDMA writes.

    Lock release messages to the involved database writers happen after
    the reply, off the response-time-critical path.

    When a persistent-memory region is supplied for the transaction-state
    table ([txn_state]), the monitor records each transaction's state
    there at fine grain (§3.4), which lets recovery learn outcomes
    without heuristically searching the audit trail. *)

type request =
  | Begin_txn of { deadline : Time.t }
      (** [deadline] is an absolute sim time minted by the client at
          arrival ([0] = none).  With {!config.admission} on, the
          monitor rejects the begin when the estimated wait — active
          transactions times the commit-service EWMA — exceeds the
          remaining deadline, and the deadline rides every downstream
          hop (DP2 insert, lock wait, trail flush) so doomed work is
          shed instead of queued. *)
  | Commit_txn of {
      txn : Audit.txn_id;
      flushes : (int * Audit.asn) list;  (** (ADP index, highest ASN) *)
      involved : int list;  (** DP2 indices holding the txn's locks *)
    }
  | Abort_txn of { txn : Audit.txn_id; involved : int list }
  | Prepare_txn of {
      txn : Audit.txn_id;
      flushes : (int * Audit.asn) list;
      involved : int list;
      gtid : (int * Audit.txn_id) option;
          (** global transaction identity for distributed branches:
              (coordinator node, coordinator branch txn), the address an
              in-doubt resolver asks after a failure *)
    }
      (** two-phase commit, phase 1: force the trails and log a durable
          PREPARED record; locks stay held until the decision *)
  | Decide_txn of { txn : Audit.txn_id; commit : bool }
      (** phase 2: log the durable outcome and release *)
  | Query_outcome of { txn : Audit.txn_id }
      (** in-doubt resolution: what happened to [txn]?  Answered from the
          PM txn-state table when available, else live monitor state,
          else the disk-mode MAT probe. *)

type response =
  | Began of { txn : Audit.txn_id }
  | Rejected of { reason : string }
      (** admission control refused the begin.  Backpressure, not
          failure: nothing was started, acknowledged, or lost, and the
          client should back off rather than retry immediately. *)
  | Committed
  | Aborted
  | Prepared_ok
  | Decided
  | Outcome of { status : int }
      (** 0 unknown, 1 active, 2 committed, 3 aborted, 4 prepared.
          Presumed abort: resolvers treat anything but 2 as abort. *)
  | T_failed of string

type server = (request, response) Msgsys.server

type config = {
  begin_cpu : Time.span;
  commit_cpu : Time.span;
  state_entry_bytes : int;  (** size of a txn-state table entry in PM *)
  admission : bool;
      (** enable deadline-based admission control at [Begin_txn]
          (default off — closed-loop workloads never need it) *)
  ewma_alpha : float;
      (** smoothing factor for the commit service-time EWMA the
          admission estimate uses (default 0.2) *)
}

val default_config : config

val admits :
  now:Time.t ->
  deadline:Time.t ->
  queue:int ->
  svc_ewma_ns:float ->
  [ `Admit | `Reject | `Expired ]
(** The pure admission decision: [`Expired] when [now >= deadline],
    [`Reject] when [now + queue * svc_ewma_ns] overshoots the deadline,
    [`Admit] otherwise (and always when [deadline <= 0], meaning the
    client opted out).  Exposed for property tests: it must never admit
    a transaction whose deadline has already passed. *)

type t

val start :
  fabric:Servernet.Fabric.t ->
  name:string ->
  primary:Cpu.t ->
  backup:Cpu.t ->
  adps:Adp.server array ->
  dp2s:Dp2.server array ->
  mat:Adp.server ->
  ?txn_state:Pm.Pm_client.t * Pm.Pm_client.handle ->
  ?outcome_probe:(Audit.txn_id -> int) ->
  ?config:config ->
  ?obs:Obs.t ->
  unit ->
  t
(** With [obs]: commit latency feeds the registry's [tmf.commit_ns]
    stat, the two commit-path stages feed [tmf.flush_wait_ns] (parallel
    trail flushes, measured once per commit) and [tmf.mat_write_ns]
    (commit record to the MAT), and each commit gets a ["tmf"]-track
    span tree parented under the client's span. *)

val server : t -> server

val begun : t -> int

val committed : t -> int

val aborted : t -> int

val active_txns : t -> Audit.txn_id list

val prepared_txns : t -> Audit.txn_id list
(** Transactions in the prepared (in-doubt) window. *)

val in_doubt : t -> (Audit.txn_id * int list * (int * Audit.txn_id) option) list
(** The prepared window with resolution context: each entry is
    [(txn, involved DP2 indices, gtid)].  Recovery's resolver walks this
    list, asks the gtid's coordinator for the outcome, and decides. *)

val admitted : t -> int
(** Begins accepted while admission control was on. *)

val rejected : t -> int
(** Begins refused because the estimated wait exceeded the deadline
    (the [tmf.rejected] gauge). *)

val expired : t -> int
(** Work shed because its deadline had already passed: begins arriving
    expired plus commits shed before flushing (the [tmf.expired]
    gauge). *)

val service_ewma_ns : t -> float
(** Current commit service-time estimate feeding admission. *)

val commit_latency : t -> Stat.t
(** Time from commit request dequeue to reply, the monitor-side view of
    the paper's response-time story. *)

val kill_primary : t -> unit

val halt : t -> unit

val pair_takeovers : t -> int

val outage_time : t -> Simkit.Time.span
(** Cumulative time the monitor had no serving process. *)
