open Simkit
open Nsk

(** The Audit Data Process: NSK's log writer, as a process pair.

    Database writers send audit records to an ADP ({!request.Append});
    the transaction monitor asks it to make the trail durable through an
    ASN ({!request.Flush}).  With the classic disk backend, appends are
    buffered — and checkpointed to the backup so a takeover loses nothing
    — and a flush pays the audit volume's rotational miss; concurrent
    flush requests that arrive while a write is in flight are absorbed by
    the following one (group commit).  With the paper's persistent-memory
    backend the append itself is durable, flushes return immediately, and
    the buffered-record checkpoint disappears (§3.4: PM eliminates the
    repeated, uncoordinated persistence actions). *)

type request =
  | Append of Audit.record list
  | Flush of { through : Audit.asn; deadline : Time.t }
      (** [deadline] is the requesting transaction's absolute deadline
          ([0] = none): a flush wait that outlives it is shed —
          answered [A_failed] without staging — since the caller can no
          longer acknowledge the commit anyway *)
  | Trim of { through : Audit.asn }
      (** archive the trail prefix (only durable records may be trimmed) *)

type response =
  | Appended of { last_asn : Audit.asn }
  | Flushed of { durable : Audit.asn }
  | Trimmed of { records : int }
  | A_failed of string

type server = (request, response) Msgsys.server

type config = {
  append_cpu : Time.span;  (** instruction path per appended record *)
  flush_cpu : Time.span;
}

val default_config : config

type t

val start :
  fabric:Servernet.Fabric.t ->
  name:string ->
  primary:Cpu.t ->
  backup:Cpu.t ->
  backend:Log_backend.t ->
  ?config:config ->
  ?obs:Obs.t ->
  unit ->
  t
(** With [obs]: flush-request waits feed the shared [adp.flush_latency]
    stat (zero for already-durable requests), appends and flushes get
    spans on a track named after the ADP, parented under the caller's
    span when the request carried one. *)

val server : t -> server

val backend : t -> Log_backend.t

val durable_asn : t -> Audit.asn

val next_asn : t -> Audit.asn

val appended_records : t -> int

val flushes_performed : t -> int
(** Backend writes, not flush requests: with group commit several
    requests share one. *)

val flush_requests : t -> int

val shed_expired_count : t -> int
(** Flush waits dropped because their transaction deadline had already
    passed (exported as the [adp.<name>.shed_expired] gauge). *)

val pair_takeovers : t -> int

val outage_time : t -> Simkit.Time.span
(** Cumulative time this trail writer had no serving process. *)

val checkpoint_bytes : t -> int
(** Process-pair checkpoint traffic this ADP generated. *)

val kill_primary : t -> unit
(** Fault injection: kill the primary process; the backup takes over with
    the checkpointed buffer. *)

val halt : t -> unit
