open Simkit

(** Declarative fault schedules (drill plans).

    A plan is a list of timed fault events against a running
    {!System.t}: process-pair primary kills, NPMU power cycles, rail
    flaps, CRC noise bursts, and mirror resyncs — the failure modes the
    paper's availability story rests on (§3.4, §4.1).  {!launch} spawns
    one scheduler process that sleeps to each event's offset and
    injects it, so a plan plus the simulation seed fully determines a
    run: the same drill replays bit-for-bit.

    Every injected fault is recorded as a span on track ["fault"] and
    counted under [fault.injected] (plus a per-kind counter) when the
    system has an observability context. *)

(** Which process pair to decapitate. *)
type target =
  | Adp of int  (** data ADP by index *)
  | Dp2 of int  (** disk-process partition by index *)
  | Tmf  (** the transaction monitor *)
  | Pmm  (** the PM manager pair (PM mode only) *)

type action =
  | Kill_primary of target
  | Npmu_power_cycle of { device : int; off_for : Time.span }
      (** Power-lose NPMU [device] (by {!System.npmus} index) and
          restore it [off_for] later.  Contents survive — that is the
          point — but writes during the window degrade to the
          surviving mirror, leaving the cycled device stale until a
          {!Pmm_resync}. *)
  | Rail_down of int
  | Rail_up of int
  | Crc_noise_burst of { rate : float; duration : Time.span }
      (** Raise the fabric's per-packet corruption probability to
          [rate] for [duration], then restore the previous rate. *)
  | Media_decay of { device : int; off : int; bits : int }
      (** Silent media decay: flip [bits] consecutive bit positions of
          NPMU [device] (by {!System.npmus} index) starting at byte
          [off] — {!Pm.Npmu.decay}.  No fabric traffic, no error, no
          timing: only the scrubber or a verified read can notice.
          PM mode only. *)
  | Torn_write of { device : int }
      (** Torn store: corrupt the trailing half of the last RDMA write
          that landed on NPMU [device] — {!Pm.Npmu.tear_last_write} —
          modelling a power cut mid-store.  Records whether anything
          was torn.  PM mode only. *)
  | Pmm_resync
      (** Ask the PMM to rebuild the mirror from the primary device
          (a management call that blocks the scheduler for the copy's
          duration, riding out takeovers via {!Rpc.call_retry}). *)
  | Wan_partition
      (** Sever the cluster's inter-node link ({!Cluster.partition}).
          Only valid in plans launched with {!launch_cluster}. *)
  | Wan_heal  (** Restore the inter-node link. *)
  | Fence_check
      (** Run {!System.fence_check}: probe that a stale-epoch write is
          rejected.  Pass/fail lands in the injection log and the run's
          {!fence_checks} / {!fence_failures} counters.  PM mode only. *)
  | Slow_device of { device : int; factor : float; jitter : Time.span }
      (** Gray failure: multiply NPMU [device]'s fabric service latency
          by [factor] (≥ 1) and add uniform jitter in [0, jitter] per
          transfer — {!Pm.Npmu.degrade}.  The device keeps answering
          correctly; it is merely slow, the fail-slow mode mirrored
          writes are most exposed to.  PM mode only. *)
  | Slow_rail of { rail : int; factor : float }
      (** Multiply the service latency of every transfer routed over
          fabric rail [rail] by [factor] (≥ 1) — a congested or
          renegotiated-down link. *)
  | Slow_disk of { volume : int; factor : float; jitter : Time.span }
      (** Multiply data volume [volume]'s mechanical service times by
          [factor] (≥ 1) with uniform extra jitter in [0, jitter] —
          {!Diskio.Volume.degrade}. *)
  | Restore_speed
      (** Lift every fail-slow injection at once: all NPMUs, all rails
          and all data volumes return to full speed. *)
  | Flash_crowd of { spike : float; spike_for : Time.span }
      (** Overload-drill-only marker: the offered load spikes to
          [spike]x for [spike_for].  The drill's open-loop arrival
          engine is what actually raises the load; the event puts the
          spike in the injection log, timeline marks and flight
          recorder.  Plain {!validate} rejects it — only
          {!validate_overload} (the [--plan overload] path) admits
          it. *)

type event = { after : Time.span; action : action }
(** [after] is the offset from {!launch}, not an absolute time. *)

type t = event list

val at : Time.span -> action -> event

val action_name : action -> string
(** Short kind tag: ["kill_adp"], ["rail_down"], ... *)

val action_kinds : string list
(** Every kind tag {!action_name} can produce, in declaration order —
    the vocabulary {!of_json} accepts and names in its errors. *)

val describe : action -> string
(** Human-readable one-liner with parameters. *)

val to_json : t -> Json.t
(** Serialize a plan as a JSON array of action objects.  Each event
    carries its [kind] tag plus [after_ns] and per-action parameters;
    durations are integer nanosecond fields ([off_for_ns],
    [duration_ns], ...) so {!of_json} reads back a structurally
    identical plan — the repro-file contract. *)

val of_json : Json.t -> (t, string) result
(** Parse a plan serialized by {!to_json} (or written by hand).  Errors
    name the offending action index and, for an unknown [kind], list
    every valid kind. *)

val validate : ?horizon:Time.span -> System.t -> t -> (unit, string) result
(** Check every event against the system: target and device indices in
    range, rail indices within the fabric, CRC rates in [0, 1), no
    PM-only events (PMM kill, NPMU cycle, resync, fence check) against a
    disk-mode system, and no WAN events outside a cluster-scoped
    launch.  [Flash_crowd] is rejected outright — it is meaningful only
    under the overload drill, and the error names the valid plans.
    When [horizon] is given, events offset past it are rejected too:
    the drill would have crashed and audited before they fired, so they
    would otherwise be silently dropped.  Errors name the offending
    action index. *)

val validate_overload :
  ?horizon:Time.span -> System.t -> t -> (unit, string) result
(** {!validate} with [Flash_crowd] permitted (spike ≥ 1, positive
    window) — the overload drill's scope. *)

val validate_cluster :
  ?horizon:Time.span -> Cluster.t -> node:int -> t -> (unit, string) result
(** {!validate} against [node]'s system, with WAN events permitted. *)

(** A plan in flight. *)
type run

val launch : System.t -> t -> run
(** Validate and start executing the plan against the system.  Raises
    [Invalid_argument] if {!validate} rejects it.  Safe to call outside
    process context; the scheduler is its own process. *)

val launch_overload : System.t -> t -> run
(** Like {!launch}, but validated with {!validate_overload} so the plan
    may carry [Flash_crowd] markers. *)

val launch_cluster : Cluster.t -> node:int -> t -> run
(** Like {!launch}, but scoped to a cluster: node-local events hit
    [node]'s system, and [Wan_partition] / [Wan_heal] act on the
    cluster's inter-node link. *)

val await : run -> unit
(** Block the calling process until the last event has been injected
    (including a final resync's completion).  Process context only. *)

val injected : run -> (Time.t * string) list
(** The faults injected so far, oldest first, with their injection
    times — the drill report's fault log. *)

val fence_checks : run -> int
(** [Fence_check] events executed so far. *)

val fence_failures : run -> int
(** [Fence_check] events that did {e not} see the stale write rejected —
    zero in a healthy run. *)
