open Simkit
open Nsk

type request =
  | Begin_txn of { deadline : Time.t }
  | Commit_txn of {
      txn : Audit.txn_id;
      flushes : (int * Audit.asn) list;
      involved : int list;
    }
  | Abort_txn of { txn : Audit.txn_id; involved : int list }
  | Prepare_txn of {
      txn : Audit.txn_id;
      flushes : (int * Audit.asn) list;
      involved : int list;
      gtid : (int * Audit.txn_id) option;
    }
  | Decide_txn of { txn : Audit.txn_id; commit : bool }
  | Query_outcome of { txn : Audit.txn_id }

type response =
  | Began of { txn : Audit.txn_id }
  | Rejected of { reason : string }
      (** admission control refused the begin — backpressure, not a
          failure: nothing was acknowledged, nothing was lost *)
  | Committed
  | Aborted
  | Prepared_ok
  | Decided
  | Outcome of { status : int }
  | T_failed of string

type server = (request, response) Msgsys.server

type config = {
  begin_cpu : Time.span;
  commit_cpu : Time.span;
  state_entry_bytes : int;
  admission : bool;
      (** deadline-based admission control at [Begin_txn]: reject when
          the estimated wait (active txns x commit-service EWMA) exceeds
          the transaction's remaining deadline *)
  ewma_alpha : float;  (** smoothing for the windowed service-time EWMA *)
}

let default_config =
  {
    begin_cpu = Time.us 30;
    commit_cpu = Time.us 60;
    state_entry_bytes = 32;
    admission = false;
    ewma_alpha = 0.2;
  }

(* The admission decision, pure so its arithmetic is property-testable:
   a transaction whose deadline has already passed is never admitted,
   and neither is one whose estimated queueing wait (a conservative
   [queue x svc_ewma] product) would blow the remaining deadline.
   [deadline <= 0] means the client opted out of deadlines: admit. *)
let admits ~now ~deadline ~queue ~svc_ewma_ns =
  if deadline <= 0 then `Admit
  else if now >= deadline then `Expired
  else begin
    let est_wait = float_of_int (max 0 queue) *. Float.max 0. svc_ewma_ns in
    if float_of_int now +. est_wait > float_of_int deadline then `Reject else `Admit
  end

type ckpt =
  | Ck_begin of Audit.txn_id
  | Ck_outcome of Audit.txn_id * bool
  | Ck_prepared of Audit.txn_id * int list * (int * Audit.txn_id) option

type prepared_info = {
  pi_involved : int list;  (** DP2 indices holding the branch's locks *)
  pi_gtid : (int * Audit.txn_id) option;
      (** global transaction identity: (coordinator node, coordinator
          branch txn) — who to ask when this branch is in doubt *)
}

type state = {
  mutable next_txn : Audit.txn_id;
  active : (Audit.txn_id, Time.t) Hashtbl.t;
      (** value is the transaction's absolute deadline, [0] = none.
          Deadlines are advisory after a takeover (the begin checkpoint
          carries only the id), which merely disables shedding for
          txns begun before the failover. *)
  prepared : (Audit.txn_id, prepared_info) Hashtbl.t;
}

type finish_job = { fj_txn : Audit.txn_id; fj_committed : bool; fj_involved : int list }

type t = {
  tmf_name : string;
  cfg : config;
  adps : Adp.server array;
  dp2s : Dp2.server array;
  mat : Adp.server;
  txn_state : (Pm.Pm_client.t * Pm.Pm_client.handle) option;
  srv : server;
  mutable pair : ckpt Procpair.t option;
  mutable live : state option;
  shadow : state;
  finish_queue : finish_job Mailbox.t;
  mutable n_begun : int;
  mutable n_committed : int;
  mutable n_aborted : int;
  mutable n_admitted : int;
  mutable n_rejected : int;  (** begins refused: estimated wait too long *)
  mutable n_expired : int;  (** begins/commits shed: deadline already past *)
  mutable svc_ewma : float;  (** commit service time EWMA, ns *)
  latency : Stat.t;
  obs : Obs.t option;
  flush_wait_stat : Stat.t option;
  mat_write_stat : Stat.t option;
  outcome_probe : (Audit.txn_id -> int) option;
      (** disk-mode fallback for [Query_outcome]: derive a status code
          from the durable MAT (2 committed / 3 aborted / 4 prepared /
          0 unknown) *)
}

let pair_exn t = match t.pair with Some p -> p | None -> invalid_arg "Tmf: not started"

let current_cpu t = Procpair.primary_cpu (pair_exn t)

let now t = Sim.now (Cpu.sim (current_cpu t))

let start_span t ?parent name =
  match t.obs with
  | Some o -> Span.start (Obs.spans o) ~track:"tmf" ?parent name
  | None -> Span.null

let finish_span t sp =
  match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ()

let note stat dt = match stat with Some st -> Stat.add_span st dt | None -> ()

let state t =
  match t.live with
  | Some s -> s
  | None ->
      let s =
        {
          next_txn = t.shadow.next_txn;
          active = Hashtbl.copy t.shadow.active;
          prepared = Hashtbl.copy t.shadow.prepared;
        }
      in
      t.live <- Some s;
      s

(* Fine-grained txn-state table in PM: one small synchronous write per
   state change.  Status codes: 1 active, 2 committed, 3 aborted,
   4 prepared. *)
let record_state ?span t txn status =
  match t.txn_state with
  | None -> Ok ()
  | Some (client, handle) -> (
      let entry = Bytes.create t.cfg.state_entry_bytes in
      let enc = Pm.Codec.Enc.create () in
      Pm.Codec.Enc.u64 enc txn;
      Pm.Codec.Enc.u8 enc status;
      let src = Pm.Codec.Enc.to_bytes enc in
      Bytes.blit src 0 entry 0 (Bytes.length src);
      let slots = (Pm.Pm_client.info handle).Pm.Pm_types.length / t.cfg.state_entry_bytes in
      let off = txn mod slots * t.cfg.state_entry_bytes in
      match Pm.Pm_client.write ?span client handle ~off ~data:entry with
      | Ok () -> Ok ()
      | Error e -> Error (Pm.Pm_types.error_to_string e))

(* Outcome statuses feed recovery's fast path: in PM mode the table is
   the source of truth for outcomes, so a commit may only be
   acknowledged once its committed status is persistent.  Begin/abort
   entries are advisory — a missing entry reads as "never committed",
   which discards only unacknowledged work. *)
let record_state_advisory ?span t txn status =
  match record_state ?span t txn status with Ok () | Error _ -> ()

(* Read a transaction's durable status back from the PM txn-state table.
   The table is a hash by txn id, so the slot must still name the same
   transaction; otherwise the entry was overwritten and tells us
   nothing. *)
let read_state t txn =
  match t.txn_state with
  | None -> None
  | Some (client, handle) -> (
      let slots = (Pm.Pm_client.info handle).Pm.Pm_types.length / t.cfg.state_entry_bytes in
      let off = txn mod slots * t.cfg.state_entry_bytes in
      match Pm.Pm_client.read client handle ~off ~len:t.cfg.state_entry_bytes with
      | Error _ -> None
      | Ok data -> (
          try
            let dec = Pm.Codec.Dec.of_bytes data in
            let stored = Pm.Codec.Dec.u64 dec in
            let status = Pm.Codec.Dec.u8 dec in
            if stored = txn then Some status else None
          with Pm.Codec.Dec.Truncated -> None))

(* Answer "what happened to transaction [txn]?" for a remote in-doubt
   resolver, from the most durable source available: the PM txn-state
   table, then live monitor state, then (disk mode) the MAT probe.
   0 unknown, 1 active, 2 committed, 3 aborted, 4 still prepared.
   Presumed abort means callers treat anything but 2 as an abort. *)
let query_outcome t s txn =
  match read_state t txn with
  | Some ((2 | 3) as status) -> status
  | _ ->
      if Hashtbl.mem s.prepared txn then 4
      else if Hashtbl.mem s.active txn then 1
      else (match t.outcome_probe with Some probe -> probe txn | None -> 0)

let flush_trails ?span ?(deadline = 0) t flushes =
  let calls =
    List.map
      (fun (adp_idx, asn) ->
        (adp_idx, asn,
         Msgsys.call_async t.adps.(adp_idx) ~from:(current_cpu t) ?span
           (Adp.Flush { through = asn; deadline })))
      flushes
  in
  (* Await the parallel flushes; a trail whose ADP died mid-flush is
     retried synchronously against the promoted backup. *)
  let check acc (adp_idx, asn, reply) =
    match (acc, Ivar.read reply) with
    | Error e, _ -> Error e
    | Ok (), Ok (Adp.Flushed _) -> Ok ()
    | Ok (), Ok (Adp.A_failed e) -> Error e
    | Ok (), Ok (Adp.Appended _ | Adp.Trimmed _) -> Error "unexpected reply"
    | Ok (), Error _ -> (
        match
          Rpc.call_retry t.adps.(adp_idx) ~from:(current_cpu t) ?span
            (Adp.Flush { through = asn; deadline })
        with
        | Ok (Adp.Flushed _) -> Ok ()
        | Ok (Adp.A_failed e) -> Error e
        | Ok (Adp.Appended _ | Adp.Trimmed _) -> Error "unexpected reply"
        | Error e -> Error (Format.asprintf "%a" Msgsys.pp_error e))
  in
  List.fold_left check (Ok ()) calls

(* Make a record durable in the master audit trail. *)
let write_mat_record ?span t record =
  match
    Rpc.call_retry t.mat ~from:(current_cpu t)
      ~req_bytes:(Audit.wire_size record + 64)
      ?span
      (Adp.Append [ record ])
  with
  | Ok (Adp.Appended { last_asn }) -> (
      match
        Rpc.call_retry t.mat ~from:(current_cpu t) ?span
          (Adp.Flush { through = last_asn; deadline = 0 })
      with
      | Ok (Adp.Flushed _) -> Ok ()
      | Ok (Adp.A_failed e) -> Error e
      | Ok _ -> Error "unexpected MAT reply"
      | Error e -> Error (Format.asprintf "MAT: %a" Msgsys.pp_error e))
  | Ok (Adp.A_failed e) -> Error e
  | Ok _ -> Error "unexpected MAT reply"
  | Error e -> Error (Format.asprintf "MAT: %a" Msgsys.pp_error e)

let write_commit_record ?span t txn = write_mat_record ?span t (Audit.Commit { txn })

let handle t s req respond =
  match req with
  | Begin_txn { deadline } -> (
      Cpu.execute (current_cpu t) t.cfg.begin_cpu;
      let verdict =
        if not t.cfg.admission then `Admit
        else
          admits ~now:(now t) ~deadline ~queue:(Hashtbl.length s.active)
            ~svc_ewma_ns:t.svc_ewma
      in
      match verdict with
      | `Expired ->
          t.n_expired <- t.n_expired + 1;
          respond (Rejected { reason = "deadline already expired" })
      | `Reject ->
          t.n_rejected <- t.n_rejected + 1;
          respond (Rejected { reason = "estimated wait exceeds deadline" })
      | `Admit ->
          t.n_admitted <- t.n_admitted + 1;
          let txn = s.next_txn in
          s.next_txn <- txn + 1;
          Hashtbl.replace s.active txn deadline;
          t.n_begun <- t.n_begun + 1;
          record_state_advisory t txn 1;
          Procpair.checkpoint (pair_exn t) ~bytes:16 (Ck_begin txn);
          respond (Began { txn }))
  | Commit_txn { txn; flushes; involved } ->
      (* The caller's span (and its inbox wait) must be read before
         yielding to the next request; the worker closure captures it. *)
      let caller = Msgsys.caller_span t.srv in
      let queued = Msgsys.caller_wait t.srv in
      (* Commits overlap: each runs in its own worker so one
         transaction's flush wait never delays another's (the monitor is
         multithreaded; the trails group-commit concurrent flushes). *)
      let commit_work () =
        let started = Sim.now (Cpu.sim (current_cpu t)) in
        let csp = start_span t ~parent:caller "tmf.commit" in
        Span.note_queue csp queued;
        if not (Span.is_null csp) then
          Span.annotate csp ~key:"txn" (string_of_int txn);
        let finish_failed msg =
          Span.annotate csp ~key:"error" msg;
          finish_span t csp;
          respond (T_failed msg)
        in
        Cpu.execute (current_cpu t) t.cfg.commit_cpu;
        match Hashtbl.find_opt s.active txn with
        | None -> finish_failed "unknown transaction"
        | Some deadline when deadline > 0 && now t >= deadline ->
            (* Shed before flushing: the client has (or will) time out,
               so durability work here only starves live commits.  The
               transaction was never acknowledged — aborting it is the
               degraded-service contract, not data loss. *)
            t.n_expired <- t.n_expired + 1;
            Hashtbl.remove s.active txn;
            t.n_aborted <- t.n_aborted + 1;
            record_state_advisory t txn 3;
            Procpair.checkpoint (pair_exn t) ~bytes:16 (Ck_outcome (txn, false));
            finish_span t csp;
            respond (T_failed "shed: deadline expired");
            Mailbox.send t.finish_queue
              { fj_txn = txn; fj_committed = false; fj_involved = involved }
        | Some deadline -> begin
          let fsp = start_span t ~parent:csp "tmf.flush_trails" in
          let f0 = now t in
          let flush_result = flush_trails ~span:fsp ~deadline t flushes in
          note t.flush_wait_stat (now t - f0);
          finish_span t fsp;
          match flush_result with
          | Error e -> finish_failed ("flush: " ^ e)
          | Ok () -> (
              let msp = start_span t ~parent:csp "tmf.commit_record" in
              let m0 = now t in
              let mat_result = write_commit_record ~span:msp t txn in
              note t.mat_write_stat (now t - m0);
              finish_span t msp;
              match mat_result with
              | Error e -> finish_failed ("commit record: " ^ e)
              | Ok () ->
              match record_state ~span:csp t txn 2 with
              | Error e ->
                  (* The MAT holds a commit record but the PM outcome
                     table — recovery's source of truth in PM mode —
                     could not be written.  Acknowledging now would risk
                     an acked-but-lost transaction; fail the commit and
                     leave the outcome to recovery's conservative side. *)
                  finish_failed ("txn-state record: " ^ e)
              | Ok () ->
                  Hashtbl.remove s.active txn;
                  t.n_committed <- t.n_committed + 1;
                  Procpair.checkpoint (pair_exn t) ~bytes:16 (Ck_outcome (txn, true));
                  let svc = Sim.now (Cpu.sim (current_cpu t)) - started in
                  (* The windowed service-time estimate admission uses. *)
                  t.svc_ewma <-
                    (if t.svc_ewma = 0. then float_of_int svc
                     else
                       (t.cfg.ewma_alpha *. float_of_int svc)
                       +. ((1. -. t.cfg.ewma_alpha) *. t.svc_ewma));
                  Stat.add_span t.latency svc;
                  finish_span t csp;
                  respond Committed;
                  (* Lock release happens behind the reply. *)
                  Mailbox.send t.finish_queue
                    { fj_txn = txn; fj_committed = true; fj_involved = involved })
        end
      in
      ignore (Cpu.spawn (current_cpu t) ~name:(t.tmf_name ^ ":commit") commit_work)
  | Abort_txn { txn; involved } ->
      Cpu.execute (current_cpu t) t.cfg.commit_cpu;
      if not (Hashtbl.mem s.active txn) then respond (T_failed "unknown transaction")
      else begin
        (* Presumed abort: the record can reach the trail lazily. *)
        let record = Audit.Abort { txn } in
        (match
           Msgsys.call t.mat ~from:(current_cpu t)
             ~req_bytes:(Audit.wire_size record + 64)
             (Adp.Append [ record ])
         with
        | Ok _ | Error _ -> ());
        Hashtbl.remove s.active txn;
        t.n_aborted <- t.n_aborted + 1;
        record_state_advisory t txn 3;
        Procpair.checkpoint (pair_exn t) ~bytes:16 (Ck_outcome (txn, false));
        respond Aborted;
        Mailbox.send t.finish_queue { fj_txn = txn; fj_committed = false; fj_involved = involved }
      end
  | Prepare_txn { txn; flushes; involved; gtid } ->
      let caller = Msgsys.caller_span t.srv in
      let queued = Msgsys.caller_wait t.srv in
      (* Phase 1 runs in its own worker like a commit. *)
      let prepare_work () =
        let psp = start_span t ~parent:caller "tmf.prepare" in
        Span.note_queue psp queued;
        if not (Span.is_null psp) then
          Span.annotate psp ~key:"txn" (string_of_int txn);
        let finish r =
          finish_span t psp;
          respond r
        in
        let respond = finish in
        Cpu.execute (current_cpu t) t.cfg.commit_cpu;
        if not (Hashtbl.mem s.active txn) then respond (T_failed "unknown transaction")
        else
          match flush_trails ~span:psp t flushes with
          | Error e -> respond (T_failed ("flush: " ^ e))
          | Ok () -> (
              match write_mat_record ~span:psp t (Audit.Prepared { txn }) with
              | Error e -> respond (T_failed ("prepared record: " ^ e))
              | Ok () -> (
                  match record_state ~span:psp t txn 4 with
                  | Error e -> respond (T_failed ("txn-state record: " ^ e))
                  | Ok () ->
                      Hashtbl.remove s.active txn;
                      Hashtbl.replace s.prepared txn { pi_involved = involved; pi_gtid = gtid };
                      Procpair.checkpoint (pair_exn t) ~bytes:32
                        (Ck_prepared (txn, involved, gtid));
                      respond Prepared_ok))
      in
      ignore (Cpu.spawn (current_cpu t) ~name:(t.tmf_name ^ ":prepare") prepare_work)
  | Decide_txn { txn; commit } -> (
      match Hashtbl.find_opt s.prepared txn with
      | None -> respond (T_failed "transaction is not prepared")
      | Some { pi_involved = involved; _ } ->
          let caller = Msgsys.caller_span t.srv in
          let queued = Msgsys.caller_wait t.srv in
          let decide_work () =
            let dsp = start_span t ~parent:caller "tmf.decide" in
            Span.note_queue dsp queued;
            if not (Span.is_null dsp) then
              Span.annotate dsp ~key:"txn" (string_of_int txn);
            let respond r =
              finish_span t dsp;
              respond r
            in
            Cpu.execute (current_cpu t) t.cfg.commit_cpu;
            let record = if commit then Audit.Commit { txn } else Audit.Abort { txn } in
            match write_mat_record ~span:dsp t record with
            | Error e -> respond (T_failed ("decision record: " ^ e))
            | Ok () ->
            match record_state ~span:dsp t txn (if commit then 2 else 3) with
            | Error e when commit -> respond (T_failed ("txn-state record: " ^ e))
            | Ok () | Error _ ->
                Hashtbl.remove s.prepared txn;
                if commit then t.n_committed <- t.n_committed + 1
                else t.n_aborted <- t.n_aborted + 1;
                Procpair.checkpoint (pair_exn t) ~bytes:16 (Ck_outcome (txn, commit));
                respond Decided;
                Mailbox.send t.finish_queue
                  { fj_txn = txn; fj_committed = commit; fj_involved = involved }
          in
          ignore (Cpu.spawn (current_cpu t) ~name:(t.tmf_name ^ ":decide") decide_work))
  | Query_outcome { txn } ->
      (* Served inline — the resolver protocol is tiny and read-only.
         The PM read needs process context, which the serve loop has. *)
      Cpu.execute (current_cpu t) t.cfg.begin_cpu;
      respond (Outcome { status = query_outcome t s txn })

let serve t () =
  let s = state t in
  while true do
    let req, respond = Msgsys.next_request t.srv in
    handle t s req respond
  done

(* Off-critical-path lock release to the database writers. *)
let finisher t () =
  while true do
    let job = Mailbox.recv t.finish_queue in
    List.iter
      (fun dp2_idx ->
        match
          Msgsys.call t.dp2s.(dp2_idx) ~from:(current_cpu t)
            (Dp2.Finish { txn = job.fj_txn; committed = job.fj_committed })
        with
        | Ok _ | Error _ -> ())
      job.fj_involved
  done

let apply_ckpt t = function
  | Ck_begin txn ->
      Hashtbl.replace t.shadow.active txn 0;
      t.shadow.next_txn <- max t.shadow.next_txn (txn + 1)
  | Ck_outcome (txn, _) ->
      Hashtbl.remove t.shadow.active txn;
      Hashtbl.remove t.shadow.prepared txn
  | Ck_prepared (txn, involved, gtid) ->
      Hashtbl.remove t.shadow.active txn;
      Hashtbl.replace t.shadow.prepared txn { pi_involved = involved; pi_gtid = gtid }

let start ~fabric ~name ~primary ~backup ~adps ~dp2s ~mat ?txn_state ?outcome_probe
    ?(config = default_config) ?obs () =
  let srv = Msgsys.create_server fabric ~cpu:primary ~name in
  let t =
    {
      tmf_name = name;
      cfg = config;
      adps;
      dp2s;
      mat;
      txn_state;
      srv;
      pair = None;
      live = None;
      shadow = { next_txn = 1; active = Hashtbl.create 64; prepared = Hashtbl.create 16 };
      finish_queue = Mailbox.create ~name:(name ^ ":finish") ();
      n_begun = 0;
      n_committed = 0;
      n_aborted = 0;
      n_admitted = 0;
      n_rejected = 0;
      n_expired = 0;
      svc_ewma = 0.;
      latency =
        (match obs with
        | Some o -> Metrics.stat (Obs.metrics o) "tmf.commit_ns"
        | None -> Stat.create ~name:(name ^ ":commit") ());
      obs;
      flush_wait_stat =
        (match obs with
        | Some o -> Some (Metrics.stat (Obs.metrics o) "tmf.flush_wait_ns")
        | None -> None);
      mat_write_stat =
        (match obs with
        | Some o -> Some (Metrics.stat (Obs.metrics o) "tmf.mat_write_ns")
        | None -> None);
      outcome_probe;
    }
  in
  (match obs with
  | Some o ->
      Msgsys.set_obs srv o;
      Metrics.register_gauge (Obs.metrics o) "tmf.active_txns" (fun () ->
          let s = match t.live with Some s -> s | None -> t.shadow in
          float_of_int (Hashtbl.length s.active));
      Metrics.register_gauge (Obs.metrics o) "tmf.admitted" (fun () ->
          float_of_int t.n_admitted);
      Metrics.register_gauge (Obs.metrics o) "tmf.rejected" (fun () ->
          float_of_int t.n_rejected);
      Metrics.register_gauge (Obs.metrics o) "tmf.expired" (fun () ->
          float_of_int t.n_expired)
  | None -> ());
  let spawn_helpers cpu =
    ignore (Cpu.spawn cpu ~name:(name ^ ":finisher") (fun () -> finisher t ()))
  in
  let pair =
    Procpair.start ~fabric ~name ~primary ~backup
      ~apply:(fun ck -> apply_ckpt t ck)
      ~serve:(fun () -> serve t ())
      ~on_takeover:(fun () ->
        t.live <- None;
        Msgsys.move t.srv ~cpu:backup;
        spawn_helpers backup)
      ()
  in
  t.pair <- Some pair;
  spawn_helpers primary;
  t

let server t = t.srv

let begun t = t.n_begun

let committed t = t.n_committed

let aborted t = t.n_aborted

let active_txns t =
  let s = match t.live with Some s -> s | None -> t.shadow in
  Hashtbl.fold (fun txn _ acc -> txn :: acc) s.active []

let prepared_txns t =
  let s = match t.live with Some s -> s | None -> t.shadow in
  Hashtbl.fold (fun txn _ acc -> txn :: acc) s.prepared []

let in_doubt t =
  let s = match t.live with Some s -> s | None -> t.shadow in
  Hashtbl.fold (fun txn info acc -> (txn, info.pi_involved, info.pi_gtid) :: acc) s.prepared []

let admitted t = t.n_admitted

let rejected t = t.n_rejected

let expired t = t.n_expired

let service_ewma_ns t = t.svc_ewma

let commit_latency t = t.latency

let kill_primary t = Procpair.kill_primary (pair_exn t)

let halt t = Procpair.halt (pair_exn t)

let pair_takeovers t = Procpair.takeovers (pair_exn t)

let outage_time t = Procpair.outage_time (pair_exn t)
