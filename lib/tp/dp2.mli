open Simkit
open Nsk

(** The database writer (NSK's DP2): a process pair owning the partitions
    that live on one data volume.

    An insert acquires the key lock, applies the change to the in-memory
    table, sends the audit delta to this CPU's ADP, checkpoints the
    update to its backup, issues the data-volume write asynchronously,
    and acknowledges — durability of the change is the audit trail's job,
    which is why the trail's flush latency bounds commit latency.  Locks
    are strict two-phase: held until the transaction monitor reports the
    outcome ({!request.Finish}). *)

type request =
  | Insert of {
      txn : Audit.txn_id;
      file : int;
      key : int;
      len : int;
      crc : int;
      payload : Bytes.t option;  (** stored only with [store_payloads] *)
      deadline : Time.t;
          (** transaction deadline (absolute, 0 = none): an insert that
              arrives expired is shed before taking its key lock, and
              the lock wait itself is bounded by the deadline *)
    }
  | Lookup of { file : int; key : int }
      (** browse-access read: no lock, sees the latest applied state *)
  | Read of { txn : Audit.txn_id; file : int; key : int }
      (** transactional read under a shared key lock (strong
          serializability, §1.1): blocks while another transaction holds
          the row exclusively *)
  | Scan of { file : int; lo : int; hi : int; limit : int }
      (** B-tree range scan over this writer's slice of [file] *)
  | Finish of { txn : Audit.txn_id; committed : bool }
      (** release locks; undo the transaction's changes if aborted *)
  | Control_point

type response =
  | Inserted of { asn : Audit.asn; adp : int }
  | Found of { len : int; crc : int; payload : Bytes.t option }
  | Absent
  | Rows of (int * int * int) list  (** (key, len, crc), ascending *)
  | Finished
  | Cp_done of { asn : Audit.asn }
  | D_failed of string

type server = (request, response) Msgsys.server

type config = {
  insert_cpu : Time.span;  (** instruction path per insert *)
  lookup_cpu : Time.span;
  lock_timeout : Time.span;
  extent_blocks : int;  (** data blocks this DP2 spreads its writes over *)
  cp_interval : int;  (** inserts between automatic control points *)
  store_payloads : bool;
      (** keep row contents in the table (entity/content workloads); off
          by default so multi-gigabyte benchmark runs stay lean *)
}

val default_config : config

type t

val start :
  fabric:Servernet.Fabric.t ->
  name:string ->
  dp2_index : int ->
  adp_index : int ->
  primary:Cpu.t ->
  backup:Cpu.t ->
  volume:Diskio.Volume.t ->
  adp:Adp.server ->
  locks:Lockmgr.t ->
  ?config:config ->
  ?obs:Obs.t ->
  unit ->
  t
(** [adp_index] is reported in insert replies so clients can tell the
    transaction monitor which trails to flush at commit.  With [obs],
    inserts get spans on a track named after the writer (lock
    acquisition as a child span), parented under the caller's span. *)

val server : t -> server

val inserts : t -> int

val last_cp_asn : t -> Audit.asn
(** ASN of this writer's latest control-point record (0 before the
    first): where a redo scan of its trail starts. *)

val table_size : t -> int

val index_height : t -> int
(** Height of this writer's tallest keyed-file B-tree (1 = single leaf). *)

val lookup_direct : t -> file:int -> key:int -> (int * int) option
(** Maintenance-path table probe (no timing); tests and recovery
    verification. *)

val load_table : t -> (int * int * int * int) list -> unit
(** Maintenance-path bulk load of [(file, key, len, crc)], used by
    recovery to install a rebuilt image. *)

val kill_primary : t -> unit
(** Fault injection: kill the primary; the backup takes over with the
    checkpoint-built table. *)

val halt : t -> unit

val pair_takeovers : t -> int

val outage_time : t -> Simkit.Time.span
(** Cumulative time this partition had no serving process. *)
