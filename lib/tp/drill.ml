open Simkit
open Nsk

type params = {
  drivers : int;
  records_per_driver : int;
  record_bytes : int;
  inserts_per_txn : int;
  settle : Time.span;
  begin_retries : int;
}

let default_params =
  {
    drivers = 2;
    records_per_driver = 400;
    record_bytes = 4096;
    inserts_per_txn = 8;
    settle = Time.ms 500;
    begin_retries = 8;
  }

type availability = {
  adp_takeovers : int;
  dp2_takeovers : int;
  tmf_takeovers : int;
  pmm_takeovers : int;
  outage : Time.span;
  degraded_writes : int;
  pm_write_retries : int;
  packet_retries : int;
}

type integrity = {
  decay_injected : int;
  torn_injected : int;
  scrub_chunks : int;
  scrub_repairs : int;
  scrub_quarantined : int;
  read_repairs : int;
  verify_unrepaired : int;
  unrepaired_divergence : int;
}

type report = {
  mode : System.log_mode;
  seed : int64;
  elapsed : Time.span;
  faults : (Time.t * string) list;
  attempted_txns : int;
  committed : int;
  failed_txns : int;
  acked_rows : int;
  recovered_rows : int;
  lost_rows : int;
  in_doubt_after : int;
  orphaned_locks : int;
  fence_checks : int;
  fence_failures : int;
  response : Stat.summary;
  availability : availability;
  recovery : Recovery.report;
  integrity : integrity option;
  timeline : Timeseries.t option;
  flight : Flightrec.t option;
}

let zero_loss r = r.lost_rows = 0

(* The black-box dump a failed drill leaves behind: recent spans plus
   the fault-injection marks, one JSON document. *)
let dump_flight path fr =
  let oc = open_out path in
  output_string oc (Json.to_string (Flightrec.to_json fr));
  output_char oc '\n';
  close_out oc

(* Arm a flight recorder: reuse the caller's observability context (or
   grow a private one), make sure spans flow, and stream every finished
   span into the recorder's ring. *)
let arm_flight flight obs =
  match flight with
  | None -> (None, obs)
  | Some _ ->
      let o = match obs with Some o -> o | None -> Obs.create () in
      let fr = Flightrec.create () in
      Span.enable (Obs.spans o);
      Flightrec.attach fr (Obs.spans o);
      (Some fr, Some o)

let mark_faults recorder faults =
  match recorder with
  | Some fr -> List.iter (fun (time, label) -> Flightrec.mark fr ~time label) faults
  | None -> ()

let integrity_clean r =
  zero_loss r
  && match r.integrity with Some i -> i.unrepaired_divergence = 0 | None -> false

(* --- Report records for the composite drills --- *)
(* Declared here, ahead of the entry points that fill them, so the
   oracle below can pass judgement on any drill family from one place. *)

type gray_report = {
  g_seed : int64;
  g_defended : bool;
  g_healthy : report;
  g_degraded : report;
  g_p99_ratio : float;
  g_p99_limit : float;
  g_demotions : int;
  g_readmissions : int;
  g_mirror_active : bool;
  g_monitor_probes : int;
  g_slow_suspects : int;
  g_hedged_reads : int;
  g_hedge_wins : int;
  g_single_copy_writes : int;
}

type overload_report = {
  v_seed : int64;
  v_defended : bool;
  v_arrivals : int;
  v_committed : int;
  v_rejected : int;
  v_failed : int;
  v_timeouts : int;
  v_admitted : int;
  v_tmf_rejected : int;
  v_tmf_expired : int;
  v_adp_shed : int;
  v_retry_denied : int;
  v_breaker_trips : int;
  v_acked_rows : int;
  v_lost_rows : int;
  v_elapsed : Time.span;
  v_warmup_goodput : float;
  v_spike_goodput : float;
  v_cooldown_goodput : float;
  v_recovery_time : Time.span option;
  v_spike_floor : float;
  v_recovery_frac : float;
  v_recovery_limit : Time.span;
  v_goodput : (Time.t * int) list;
  v_response : Stat.summary;
  v_faults : (Time.t * string) list;
  v_recovery : Recovery.report;
  v_timeline : Timeseries.t option;
  v_flight : Flightrec.t option;
}

type cluster_report = {
  c_seed : int64;
  c_nodes : int;
  c_elapsed : Time.span;
  c_faults : (Time.t * string) list;
  c_attempted : int;
  c_committed : int;
  c_failed : int;
  c_acked_rows : int;
  c_lost_rows : int;
  c_in_doubt_before : int;
  c_resolved_commit : int;
  c_resolved_abort : int;
  c_in_doubt_after : int;
  c_orphaned_locks : int;
  c_fence_checks : int;
  c_fence_failures : int;
  c_fenced_writes : int;
  c_recoveries : Recovery.report list;
  c_response : Stat.summary;
}

(* --- The shared invariant oracle --- *)

(* Every drill family used to restate its own acceptance conjunction
   inline; the oracle states each invariant once, as a named check with
   a human-readable detail, and the per-family gates below are just
   [pass] of the relevant verdict.  The explorer leans on the same
   verdicts, so a violation it reports is by construction the same
   judgement the drills and CI apply. *)
module Oracle = struct
  type check = { ck_name : string; ck_ok : bool; ck_detail : string }

  type verdict = { ok : bool; checks : check list }

  let check ck_name ck_ok ck_detail = { ck_name; ck_ok; ck_detail }

  let make checks = { ok = List.for_all (fun c -> c.ck_ok) checks; checks }

  let pass v = v.ok

  let failures v = List.filter (fun c -> not c.ck_ok) v.checks

  let summary v =
    if v.ok then "all invariants hold"
    else
      String.concat "; "
        (List.map
           (fun c -> Printf.sprintf "%s: %s" c.ck_name c.ck_detail)
           (failures v))

  let to_json v =
    Json.Obj
      [
        ("pass", Json.Bool v.ok);
        ( "checks",
          Json.List
            (List.map
               (fun c ->
                 Json.Obj
                   [
                     ("name", Json.String c.ck_name);
                     ("ok", Json.Bool c.ck_ok);
                     ("detail", Json.String c.ck_detail);
                   ])
               v.checks) );
      ]

  let of_report ?max_outage r =
    let base =
      [
        check "acked_durable" (r.lost_rows = 0)
          (Printf.sprintf "%d of %d acked rows missing after recovery" r.lost_rows
             r.acked_rows);
        check "in_doubt_drained" (r.in_doubt_after = 0)
          (Printf.sprintf "%d branches still in doubt" r.in_doubt_after);
        check "no_orphaned_locks" (r.orphaned_locks = 0)
          (Printf.sprintf "%d locks still held after recovery" r.orphaned_locks);
        check "no_fence_failures" (r.fence_failures = 0)
          (Printf.sprintf "%d of %d fence probes saw a stale write land"
             r.fence_failures r.fence_checks);
        (match r.integrity with
        | Some i ->
            check "integrity_clean" (i.unrepaired_divergence = 0)
              (Printf.sprintf "%d mirrored chunks still divergent"
                 i.unrepaired_divergence)
        | None -> check "integrity_clean" true "no integrity audit in this mode");
      ]
    in
    let outage =
      match max_outage with
      | None -> []
      | Some limit ->
          [
            check "bounded_unavailability"
              (r.availability.outage <= limit)
              (Printf.sprintf "summed outage %s (limit %s)"
                 (Time.to_string r.availability.outage)
                 (Time.to_string limit));
          ]
    in
    make (base @ outage)

  let of_cluster r =
    make
      [
        check "acked_durable" (r.c_lost_rows = 0)
          (Printf.sprintf "%d of %d acked rows missing after recovery" r.c_lost_rows
             r.c_acked_rows);
        check "in_doubt_drained" (r.c_in_doubt_after = 0)
          (Printf.sprintf "%d branches still in doubt" r.c_in_doubt_after);
        check "no_orphaned_locks" (r.c_orphaned_locks = 0)
          (Printf.sprintf "%d locks still held after recovery" r.c_orphaned_locks);
        check "no_fence_failures" (r.c_fence_failures = 0)
          (Printf.sprintf "%d of %d fence probes saw a stale write land"
             r.c_fence_failures r.c_fence_checks);
      ]

  let of_gray r =
    let evidence =
      if not r.g_defended then []
      else
        [
          check "mirror_demoted" (r.g_demotions >= 1)
            (Printf.sprintf "%d demotions (expected >= 1)" r.g_demotions);
          check "mirror_readmitted" (r.g_readmissions >= 1)
            (Printf.sprintf "%d readmissions (expected >= 1)" r.g_readmissions);
          check "mirror_active" r.g_mirror_active "mirror not active at drill end";
          check "slow_suspects_flagged" (r.g_slow_suspects >= 1)
            (Printf.sprintf "%d slow suspects flagged (expected >= 1)"
               r.g_slow_suspects);
        ]
    in
    make
      ([
         check "baseline_durable"
           (r.g_healthy.lost_rows = 0)
           (Printf.sprintf "%d acked rows missing in the healthy baseline"
              r.g_healthy.lost_rows);
         check "acked_durable"
           (r.g_degraded.lost_rows = 0)
           (Printf.sprintf "%d acked rows missing in the degraded run"
              r.g_degraded.lost_rows);
         check "p99_bounded"
           (r.g_p99_ratio <= r.g_p99_limit)
           (Printf.sprintf "p99 ratio %.2f (limit %.2f)" r.g_p99_ratio r.g_p99_limit);
       ]
      @ evidence)

  let of_overload r =
    let shed =
      if not r.v_defended then []
      else
        [
          check "admission_shed" (r.v_rejected > 0)
            "defended run never rejected an arrival";
        ]
    in
    make
      ([
         check "acked_durable" (r.v_lost_rows = 0)
           (Printf.sprintf "%d of %d acked rows missing after recovery" r.v_lost_rows
              r.v_acked_rows);
         check "warmup_progress"
           (r.v_warmup_goodput > 0.0)
           (Printf.sprintf "warmup goodput %.1f tps" r.v_warmup_goodput);
         check "spike_goodput_floor"
           (r.v_spike_goodput >= r.v_spike_floor *. r.v_warmup_goodput)
           (Printf.sprintf "spike goodput %.1f tps (floor %.1f)" r.v_spike_goodput
              (r.v_spike_floor *. r.v_warmup_goodput));
         check "goodput_recovered"
           (match r.v_recovery_time with
           | Some t -> t <= r.v_recovery_limit
           | None -> false)
           (match r.v_recovery_time with
           | Some t ->
               Printf.sprintf "goodput back in %s (limit %s)" (Time.to_string t)
                 (Time.to_string r.v_recovery_limit)
           | None -> "goodput never recovered while load was still arriving");
       ]
      @ shed)
end

let gray_pass r = Oracle.pass (Oracle.of_gray r)

let overload_pass r = Oracle.pass (Oracle.of_overload r)

let cluster_zero_loss r = Oracle.pass (Oracle.of_cluster r)

(* Offsets tuned so every fault lands while default-params load is still
   running (PM-mode load is an order of magnitude shorter than disk's,
   hence the compressed schedule); the resync runs last, after the
   cycled mirror is powered again. *)
let standard_plan mode =
  match mode with
  | System.Pm_audit ->
      Faultplan.
        [
          at (Time.ms 20) (Kill_primary Pmm);
          at (Time.ms 40)
            (Npmu_power_cycle { device = 1; off_for = Time.ms 60 });
          at (Time.ms 60) (Rail_down 0);
          at (Time.ms 90) (Rail_up 0);
          at (Time.ms 110) (Crc_noise_burst { rate = 0.02; duration = Time.ms 40 });
          at (Time.ms 200) Pmm_resync;
        ]
  | System.Disk_audit ->
      Faultplan.
        [
          at (Time.ms 200) (Kill_primary (Adp 1));
          at (Time.ms 600) (Kill_primary (Dp2 2));
          at (Time.sec 1) (Rail_down 1);
          at (Time.ms 1_300) (Rail_up 1);
          at (Time.ms 1_500) (Kill_primary Tmf);
          at (Time.sec 2) (Crc_noise_burst { rate = 0.02; duration = Time.ms 300 });
        ]

(* Cluster drills push fewer, smaller rows: every insert crosses the
   interconnect and every commit runs two-phase, so default-params volume
   would take minutes of simulated time without exercising anything
   new. *)
let cluster_params =
  {
    drivers = 2;
    records_per_driver = 60;
    record_bytes = 1024;
    inserts_per_txn = 4;
    settle = Time.ms 500;
    begin_retries = 8;
  }

(* Partition mid-2PC, decapitate the coordinator's monitor while the
   link is down, heal, then take over the PM manager (bumping the volume
   epoch) and verify the fence is armed.

   The short pulses before the long outage each sample a different phase
   of the transaction cycle; the ones that land while a prepare or a
   decide is crossing the interconnect lose the reply leg and strand a
   prepared branch — the in-doubt window {!Cluster.recover}'s resolver
   must drain. *)
let partition_plan =
  Faultplan.
    [
      at (Time.ms 8) Wan_partition;
      at (Time.ms 11) Wan_heal;
      at (Time.ms 16) Wan_partition;
      at (Time.ms 19) Wan_heal;
      at (Time.ms 25) Wan_partition;
      at (Time.ms 28) Wan_heal;
      at (Time.ms 34) Wan_partition;
      at (Time.ms 40) (Kill_primary Tmf);
      at (Time.ms 90) Wan_heal;
      at (Time.ms 110) (Kill_primary Pmm);
      at (Time.ms 130) Fence_check;
    ]

(* --- Corruption drill: silent decay and torn stores --- *)

(* Small regions keep the scrubber's pass time in the low milliseconds,
   so dozens of passes fit into the settle window; a tight inter-chunk
   interval does the same.  Verified reads are on because the drill's
   point is proving the read path catches what the scrubber has not
   gotten to yet. *)
let corruption_region_bytes = 2 * 1024 * 1024

let corruption_scrub_config =
  { Pm.Pmm.default_scrub_config with Pm.Pmm.scrub_interval = Time.us 100 }

let corruption_config =
  {
    System.pm_config with
    System.pm_region_bytes = corruption_region_bytes;
    pm_scrub = Some corruption_scrub_config;
    pm_verified_reads = true;
  }

(* Trail region [i]'s device offset under [corruption_config]: the PMM
   allocates first-fit behind its metadata reserve, and the system
   creates the 1 MiB transaction-state table first, then the trail
   regions in ADP order (MAT last). *)
let corruption_trail_base i =
  Pm.Pmm.default_config.Pm.Pmm.meta_reserve + (1 lsl 20) + (i * corruption_region_bytes)

(* The early decays and tears land mid-load inside each trail's first
   chunk — a chunk the ring header keeps active, so the scrubber can
   never re-arbitrate it against the checksum table and must quarantine
   it; recovery then leans on verified reads and the mirror-salvage
   replay for those rows.  The late decays land after the load has
   drained, in settled chunks the scrubber has re-scanned clean: those
   it detects, arbitrates, and repairs on the next pass — the counter
   the acceptance gate checks.  Offsets must sit inside each trail's
   {e written} extent (default-params load puts ~800 KiB in every
   trail) or the faults degrade to corrupting padding nothing ever
   reads back. *)
let corruption_plan =
  let base = corruption_trail_base in
  Faultplan.
    [
      at (Time.ms 12) (Torn_write { device = 1 });
      at (Time.ms 22) (Torn_write { device = 0 });
      (* The primary-side decay spans a whole frame (~4.1 KiB): audit
         frames CRC their body but carry the row payload as padding, so
         a narrow flip could land between bodies and corrupt only bytes
         the row-presence audit cannot see.  A frame-wide span
         guarantees the negative control visibly truncates the
         replay. *)
      at (Time.ms 30) (Media_decay { device = 1; off = base 0 + 8_192; bits = 48 });
      at (Time.ms 40) (Media_decay { device = 0; off = base 1 + 8_192; bits = 8 * 4_200 });
      at (Time.ms 950) (Media_decay { device = 1; off = base 2 + (300 * 1024); bits = 16 });
      at (Time.ms 960) (Media_decay { device = 0; off = base 3 + (300 * 1024); bits = 16 });
    ]

(* Decay injected at the crash itself, after the scrubber dies: only a
   verified read during recovery can catch these.  Offsets sit in the
   middle of each trail's written area — chunks the scrubber last saw
   clean, so the read path can arbitrate them against the table. *)
let corruption_crash_decay =
  [
    (0, corruption_trail_base 0 + (300 * 1024), 8 * 4_200);
    (1, corruption_trail_base 1 + (300 * 1024), 24);
  ]

(* --- Gray-failure drill: fail-slow hardware, defended --- *)

(* Small regions keep the re-admission resync in the low hundreds of
   milliseconds, so a demoted mirror provably comes back inside the
   drill's settle window. *)
let gray_region_bytes = 2 * 1024 * 1024

let gray_config =
  {
    System.pm_config with
    System.pm_region_bytes = gray_region_bytes;
    pm_health = Some Pm.Pmm.default_health_config;
    pm_slo_budget = Time.us 150;
    pm_hedged_reads = true;
    pm_adaptive_backoff = true;
  }

(* The negative control: same faults, no monitor, no client health
   tracking, no hedging, fixed backoff.  Every mirrored write waits for
   the slow device until the plan itself restores it. *)
let gray_no_defense_config =
  {
    gray_config with
    System.pm_health = None;
    pm_slo_budget = 0;
    pm_hedged_reads = false;
    pm_adaptive_backoff = false;
  }

(* Enough commits that the detection window's handful of slow commits
   sits below the p99 index: 2 drivers x 300 txns = 600 samples, so p99
   tolerates ~6 outliers.  The defended run eats 2-4 slow commits before
   demotion; the undefended run eats every commit from the degradation
   to the restore.  Rows are small so the whole load (4800 rows) fits
   the 2 MiB trail rings without wrapping — a wrapped ring sheds old
   records and the durability audit would blame the gray defenses for
   rows the ring geometry lost. *)
let gray_params =
  { default_params with records_per_driver = 2_400; record_bytes = 1_024 }

(* Stage the degradations while the load runs hot: the mirror NPMU goes
   fail-slow first (the mode mirrored writes are most exposed to), then
   a congested rail and a dragging data spindle pile on, then everything
   is restored so the drill can also prove re-admission.

   The mirror factor must dwarf the commit interval: group commit
   pipelines trail flushes behind the CPU-bound insert path, so a
   mirror that is "only" ~10x slower hides in that shadow.  At 200x a
   mirrored append takes ~100 ms per transaction — nothing can hide it — and the 780 ms
   exposure window leaves an undefended run with far more than 1% of
   its commits stalled, so the p99 gate provably separates the two. *)
let gray_plan =
  Faultplan.
    [
      at (Time.ms 20)
        (Slow_device { device = 1; factor = 200.0; jitter = Time.us 200 });
      at (Time.ms 200) (Slow_rail { rail = 0; factor = 2.0 });
      at (Time.ms 300) (Slow_disk { volume = 0; factor = 3.0; jitter = Time.us 100 });
      at (Time.ms 800) Restore_speed;
    ]

let plan_names = function
  | System.Pm_audit -> [ "standard"; "kills"; "corruption"; "grayfail"; "overload"; "none" ]
  | System.Disk_audit -> [ "standard"; "kills"; "none" ]

let cluster_plan_names = [ "partition"; "none" ]

let config_for base mode =
  match mode with
  | System.Disk_audit -> { base with System.log_mode = System.Disk_audit }
  | System.Pm_audit ->
      { base with System.log_mode = System.Pm_audit; txn_state_in_pm = true }

(* The hot-stock insert mix, tolerant of the system dropping out from
   under it: [begin] is retried across takeovers, commit failures are
   counted and the driver moves on.  Only [Ok] commit replies put keys
   in [acked] — that set is the durability contract the auditor checks. *)
let driver system params ~index ~acked ~response_stat ~committed ~failed ~on_done () =
  let cfg = System.config system in
  let session = System.session system ~cpu:(index mod cfg.System.worker_cpus) in
  let files = cfg.System.files in
  let key_base = (index + 1) * 100_000_000 in
  let total = params.records_per_driver in
  let per_txn = params.inserts_per_txn in
  let sim = System.sim system in
  let begin_with_retry () =
    let rec go attempts =
      match Txclient.begin_txn session with
      | Ok txn -> Some txn
      | Error _ when attempts > 0 ->
          Sim.sleep (Time.ms 250);
          go (attempts - 1)
      | Error _ -> None
    in
    go params.begin_retries
  in
  let seq = ref 0 in
  let rec txn_loop () =
    if !seq < total then begin
      let t0 = Sim.now sim in
      let in_this_txn = min per_txn (total - !seq) in
      let keys =
        List.init in_this_txn (fun i ->
            let idx = !seq + i in
            ((idx mod files), key_base + idx + (idx / per_txn)))
      in
      seq := !seq + in_this_txn;
      (match begin_with_retry () with
      | None -> incr failed
      | Some txn -> (
          List.iter
            (fun (file, key) ->
              Txclient.insert_async session txn ~file ~key ~len:params.record_bytes ())
            keys;
          match Txclient.commit session txn with
          | Ok () ->
              incr committed;
              acked := List.rev_append keys !acked;
              Stat.add_span response_stat (Sim.now sim - t0)
          | Error _ -> incr failed));
      txn_loop ()
    end
  in
  txn_loop ();
  on_done ()

let availability_of system =
  let sum_arr f arr = Array.fold_left (fun acc x -> acc + f x) 0 arr in
  let adps = System.adps system in
  let dp2s = System.dp2s system in
  let tmf = System.tmf system in
  let pmm_takeovers, pmm_outage =
    match System.pmm system with
    | Some p -> (Pm.Pmm.takeovers p, Pm.Pmm.outage_time p)
    | None -> (0, 0)
  in
  let fs = Servernet.Fabric.stats (Node.fabric (System.node system)) in
  {
    adp_takeovers = sum_arr Adp.pair_takeovers adps + Adp.pair_takeovers (System.mat system);
    dp2_takeovers = sum_arr Dp2.pair_takeovers dp2s;
    tmf_takeovers = Tmf.pair_takeovers tmf;
    pmm_takeovers;
    outage =
      sum_arr Adp.outage_time adps
      + Adp.outage_time (System.mat system)
      + sum_arr Dp2.outage_time dp2s
      + Tmf.outage_time tmf + pmm_outage;
    degraded_writes = System.degraded_pm_writes system;
    pm_write_retries = System.pm_write_retries system;
    packet_retries = fs.Servernet.Fabric.packet_retries;
  }

let run ?(seed = 0xD5177L) ?config ?obs ?prof ?sample_interval
    ?(params = default_params) ?(crash_decay = []) ?horizon ?(recovery_plan = [])
    ?inspect ?flight ?(gate = zero_loss) ~mode ~plan () =
  if params.drivers < 1 then invalid_arg "Drill.run: need at least one driver";
  (match (sample_interval, obs) with
  | Some _, None -> invalid_arg "Drill.run: sample_interval requires obs"
  | _ -> ());
  let recorder, obs = arm_flight flight obs in
  let base = Option.value config ~default:System.default_config in
  let cfg = config_for base mode in
  let cfg = { cfg with System.seed } in
  let sim = Sim.create ~seed () in
  (match prof with Some p -> Prof.install p sim | None -> ());
  let out = ref (Error "drill: simulation did not complete") in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"drill-main" (fun () ->
        let system = System.build ?obs sim cfg in
        (* The scrubber and mirror-health monitor (started by
           [System.build] when the config asks for them) sleep forever
           between passes; every exit from this process must stop them
           or the simulation never quiesces. *)
        let stop_scrub () =
          match System.pmm system with
          | Some p ->
              Pm.Pmm.stop_scrubber p;
              Pm.Pmm.stop_monitor p
          | None -> ()
        in
        let validated =
          match Faultplan.validate ?horizon system plan with
          | Error e -> Error ("fault plan: " ^ e)
          | Ok () -> (
              match Faultplan.validate system recovery_plan with
              | Error e -> Error ("recovery fault plan: " ^ e)
              | Ok () -> Ok ())
        in
        match validated with
        | Error e ->
            stop_scrub ();
            out := Error e
        | Ok () ->
            let node = System.node system in
            let response_stat = Stat.create ~name:"drill-rt" () in
            let acked = ref [] in
            let committed = ref 0 in
            let failed = ref 0 in
            let gate = Gate.create params.drivers in
            let started = Sim.now sim in
            (* Event-aligned overlay: commit/failure gauges sampled on
               the telemetry cadence, with fault injections as marks. *)
            let ts =
              match (sample_interval, obs) with
              | Some interval, Some o ->
                  let m = Obs.metrics o in
                  Metrics.register_gauge m "drill.committed" (fun () ->
                      float_of_int !committed);
                  Metrics.register_gauge m "drill.failed" (fun () ->
                      float_of_int !failed);
                  let t = Timeseries.create ~sim ~metrics:m ~interval () in
                  Timeseries.start t;
                  Some t
              | _ -> None
            in
            let frun = Faultplan.launch system plan in
            for index = 0 to params.drivers - 1 do
              let cpu = Node.cpu node (index mod cfg.System.worker_cpus) in
              ignore
                (Cpu.spawn cpu
                   ~name:(Printf.sprintf "drill-driver%d" index)
                   (driver system params ~index ~acked ~response_stat ~committed ~failed
                      ~on_done:(fun () -> Gate.arrive gate)))
            done;
            Gate.await gate;
            let elapsed = Sim.now sim - started in
            Faultplan.await frun;
            mark_faults recorder (Faultplan.injected frun);
            (match ts with
            | Some t ->
                Timeseries.stop t;
                List.iter
                  (fun (time, label) -> Timeseries.mark t ~time label)
                  (Faultplan.injected frun)
            | None -> ());
            Sim.sleep params.settle;
            (* Crash: the scrubber dies with the node, every DP2 loses
               its in-memory image, and any [crash_decay] corruption
               lands un-scrubbed; the only truth left is the trails and
               the PM state. *)
            stop_scrub ();
            let crash_faults =
              List.filter_map
                (fun (device, off, bits) ->
                  match List.nth_opt (System.npmus system) device with
                  | Some d ->
                      Pm.Npmu.decay d ~off ~bits;
                      Some
                        ( Sim.now sim,
                          Printf.sprintf "crash media_decay: device %d, %d bits at offset %d"
                            device bits off )
                  | None -> None)
                crash_decay
            in
            mark_faults recorder crash_faults;
            Array.iter (fun d -> Dp2.load_table d []) (System.dp2s system);
            (* Recovery-phase injection: offsets in [recovery_plan] are
               relative to the instant recovery starts, so its events
               land while the replay and resolvers are still running —
               the nested-failure window no hand-written drill reaches. *)
            let rrun =
              match recovery_plan with
              | [] -> None
              | p -> Some (Faultplan.launch system p)
            in
            let recovery_result = Recovery.run system in
            let recovery_faults =
              match rrun with
              | None -> []
              | Some r ->
                  Faultplan.await r;
                  let injected = Faultplan.injected r in
                  mark_faults recorder injected;
                  injected
            in
            match recovery_result with
            | Error e -> out := Error ("recovery failed: " ^ e)
            | Ok recovery ->
                let routing = System.routing system in
                let dp2s = System.dp2s system in
                let lost =
                  List.filter
                    (fun (file, key) ->
                      let d = dp2s.(routing.Txclient.dp2_of ~file ~key) in
                      Dp2.lookup_direct d ~file ~key = None)
                    !acked
                in
                (* Full-content audit: every mirrored byte of every
                   region compared, not just the rows the replay
                   touched.  Anything still divergent that is neither
                   repaired nor quarantined is silent corruption the
                   defenses missed. *)
                let integrity =
                  match System.pmm system with
                  | None -> None
                  | Some pmm ->
                      let count p =
                        List.length
                          (List.filter (fun ev -> p ev.Faultplan.action) plan)
                      in
                      Some
                        {
                          decay_injected =
                            count (function Faultplan.Media_decay _ -> true | _ -> false)
                            + List.length crash_faults;
                          torn_injected =
                            count (function Faultplan.Torn_write _ -> true | _ -> false);
                          scrub_chunks = Pm.Pmm.scrub_chunks_scanned pmm;
                          scrub_repairs = Pm.Pmm.scrub_repairs pmm;
                          scrub_quarantined = Pm.Pmm.scrub_quarantined pmm;
                          read_repairs = System.pm_read_repairs system;
                          verify_unrepaired = System.pm_verify_unrepaired system;
                          unrepaired_divergence =
                            List.length (Pm.Pmm.divergent_chunks pmm);
                        }
                in
                (match inspect with Some f -> f system | None -> ());
                let fence_of fp_run =
                  (Faultplan.fence_checks fp_run, Faultplan.fence_failures fp_run)
                in
                let fc0, ff0 = fence_of frun in
                let fc1, ff1 =
                  match rrun with Some r -> fence_of r | None -> (0, 0)
                in
                out :=
                  Ok
                    {
                      mode;
                      seed;
                      elapsed;
                      faults = Faultplan.injected frun @ crash_faults @ recovery_faults;
                      attempted_txns = !committed + !failed;
                      committed = !committed;
                      failed_txns = !failed;
                      acked_rows = List.length !acked;
                      recovered_rows = recovery.Recovery.rows_rebuilt;
                      lost_rows = List.length lost;
                      in_doubt_after = List.length (Tmf.in_doubt (System.tmf system));
                      orphaned_locks = Lockmgr.held_total (System.locks system);
                      fence_checks = fc0 + fc1;
                      fence_failures = ff0 + ff1;
                      response = Stat.summary response_stat;
                      availability = availability_of system;
                      recovery;
                      integrity;
                      timeline = ts;
                      flight = recorder;
                    })
  in
  Sim.run sim;
  (match prof with Some p -> Prof.uninstall p | None -> ());
  (* The black box dumps itself whenever the drill's gate fails — or the
     drill could not even produce a report. *)
  (match (flight, recorder) with
  | Some path, Some fr ->
      let failed =
        match !out with Ok r -> not (gate r) | Error _ -> true
      in
      if failed then begin
        (match !out with
        | Error e -> Flightrec.mark fr ~time:0 ("drill error: " ^ e)
        | Ok r ->
            Flightrec.mark fr ~time:0
              (Printf.sprintf "gate failed: lost_rows=%d committed=%d" r.lost_rows
                 r.committed));
        dump_flight path fr
      end
  | _ -> ());
  !out

(* The corruption drill proper: hot-stock load under [corruption_plan]
   with scrubber and verified reads armed, plus decay at the crash
   itself.  [defenses:false] is the negative control — same faults, no
   scrubber, no verified reads — which must visibly lose rows and leave
   divergence behind, proving the injection is real. *)
let run_corruption ?seed ?obs ?sample_interval ?(params = default_params)
    ?(defenses = true) ?flight () =
  let config =
    if defenses then corruption_config
    else { corruption_config with System.pm_scrub = None; pm_verified_reads = false }
  in
  run ?seed ~config ?obs ?sample_interval ~params ~crash_decay:corruption_crash_decay
    ?flight ~gate:integrity_clean ~mode:System.Pm_audit ~plan:corruption_plan ()

(* --- Gray-failure drill --- *)

let run_gray ?(seed = 0x66A7L) ?obs ?sample_interval ?(params = gray_params)
    ?(defenses = true) ?(p99_limit = 8.0) ?flight () =
  let config = if defenses then gray_config else gray_no_defense_config in
  (* Healthy baseline: identical platform, identical seed, no faults.
     Its p99 is the denominator of the latency gate. *)
  match run ~seed ~config ~params ~mode:System.Pm_audit ~plan:[] () with
  | Error e -> Error ("gray baseline: " ^ e)
  | Ok healthy -> (
      let demotions = ref 0 in
      let readmissions = ref 0 in
      let mirror_active = ref true in
      let probes = ref 0 in
      let suspects = ref 0 in
      let hedged = ref 0 in
      let hedge_wins = ref 0 in
      let single_copy = ref 0 in
      let inspect system =
        (match System.pmm system with
        | Some pmm ->
            demotions := Pm.Pmm.demotions pmm;
            readmissions := Pm.Pmm.readmissions pmm;
            mirror_active := Pm.Pmm.mirror_active pmm;
            probes := Pm.Pmm.monitor_probes pmm
        | None -> ());
        suspects := System.pm_slow_suspects system;
        hedged := System.pm_hedged_reads system;
        hedge_wins := System.pm_hedge_wins system;
        single_copy := System.pm_single_copy_writes system
      in
      match
        run ~seed ~config ?obs ?sample_interval ~params ~inspect ?flight
          ~mode:System.Pm_audit ~plan:gray_plan ()
      with
      | Error e -> Error ("gray degraded: " ^ e)
      | Ok degraded ->
          let ratio =
            if healthy.response.Stat.p99 > 0.0 then
              degraded.response.Stat.p99 /. healthy.response.Stat.p99
            else infinity
          in
          let r =
            {
              g_seed = seed;
              g_defended = defenses;
              g_healthy = healthy;
              g_degraded = degraded;
              g_p99_ratio = ratio;
              g_p99_limit = p99_limit;
              g_demotions = !demotions;
              g_readmissions = !readmissions;
              g_mirror_active = !mirror_active;
              g_monitor_probes = !probes;
              g_slow_suspects = !suspects;
              g_hedged_reads = !hedged;
              g_hedge_wins = !hedge_wins;
              g_single_copy_writes = !single_copy;
            }
          in
          (* The p99 gate (and the defended-evidence gates) only exist at
             this level, so the degraded run's recorder dumps here too. *)
          (match (flight, degraded.flight) with
          | Some path, Some fr when not (gray_pass r) ->
              Flightrec.mark fr ~time:0
                ("gray oracle: " ^ Oracle.summary (Oracle.of_gray r));
              dump_flight path fr
          | _ -> ());
          Ok r)

(* --- Overload drill: flash crowd, open loop, metastability gate --- *)

type overload_params = {
  ov_record_bytes : int;
  ov_inserts_per_txn : int;
  ov_base_rate : float;
  ov_spike : float;
  ov_warmup : Time.span;
  ov_spike_for : Time.span;
  ov_cooldown : Time.span;
  ov_window : Time.span;
  ov_settle : Time.span;
  ov_client_retries : int;
  ov_spike_floor : float;
  ov_recovery_frac : float;
  ov_recovery_limit : Time.span;
}

(* Base rate ~0.6x of the platform's measured open-loop capacity, spike
   5x base.  Small transactions keep per-arrival client CPU low enough
   that the offered spike really exceeds service capacity at the servers
   rather than serializing at the session pool. *)
let overload_params =
  {
    ov_record_bytes = 1_024;
    ov_inserts_per_txn = 4;
    ov_base_rate = 400.0;
    ov_spike = 5.0;
    ov_warmup = Time.ms 500;
    ov_spike_for = Time.ms 400;
    ov_cooldown = Time.ms 1_500;
    ov_window = Time.ms 100;
    ov_settle = Time.ms 300;
    ov_client_retries = 2;
    ov_spike_floor = 0.5;
    ov_recovery_frac = 0.7;
    ov_recovery_limit = Time.ms 600;
  }

(* The defended platform: admission control at the monitor, deadlines
   minted at arrival, budgeted retries and breakers at every client.
   [client_op_timeout] is the environment, not a defense — clients are
   impatient either way; that impatience is what makes overload
   metastable when nothing contains it. *)
let overload_config =
  {
    System.pm_config with
    System.client_deadline = Time.ms 150;
    client_op_timeout = Time.ms 300;
    client_retry_budget = 12.0;
    client_breakers = true;
    pm_retry_budget = 12.0;
    tmf = { Tmf.default_config with Tmf.admission = true };
  }

let overload_no_defense_config =
  {
    overload_config with
    System.client_deadline = 0;
    client_retry_budget = 0.0;
    client_breakers = false;
    pm_retry_budget = 0.0;
    tmf = { overload_config.System.tmf with Tmf.admission = false };
  }

let overload_plan p =
  Faultplan.
    [ at p.ov_warmup (Flash_crowd { spike = p.ov_spike; spike_for = p.ov_spike_for }) ]

let overload_schedule p =
  Arrival.flash_crowd ~base:p.ov_base_rate ~spike:(p.ov_base_rate *. p.ov_spike)
    ~cool:p.ov_base_rate ~warmup:p.ov_warmup ~spike_for:p.ov_spike_for
    ~cooldown:p.ov_cooldown ()

let run_overload ?(seed = 0xD5177L) ?obs ?sample_interval ?(params = overload_params)
    ?(defenses = true) ?horizon ?flight () =
  (match (sample_interval, obs) with
  | Some _, None -> invalid_arg "Drill.run_overload: sample_interval requires obs"
  | _ -> ());
  let recorder, obs = arm_flight flight obs in
  let cfg = if defenses then overload_config else overload_no_defense_config in
  let cfg = { cfg with System.seed } in
  let sim = Sim.create ~seed () in
  let out = ref (Error "overload drill: simulation did not complete") in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"overload-main" (fun () ->
        let system = System.build ?obs sim cfg in
        let plan = overload_plan params in
        match Faultplan.validate_overload ?horizon system plan with
        | Error e -> out := Error ("fault plan: " ^ e)
        | Ok () ->
            let node = System.node system in
            let response_stat = Stat.create ~name:"overload-rt" () in
            let acked = ref [] in
            let committed = ref 0 in
            let rejected = ref 0 in
            let failed = ref 0 in
            let outstanding = ref 0 in
            let started = Sim.now sim in
            let ts =
              match (sample_interval, obs) with
              | Some interval, Some o ->
                  let m = Obs.metrics o in
                  Metrics.register_gauge m "drill.committed" (fun () ->
                      float_of_int !committed);
                  Metrics.register_gauge m "drill.rejected" (fun () ->
                      float_of_int !rejected);
                  Metrics.register_gauge m "drill.failed" (fun () ->
                      float_of_int !failed);
                  let t = Timeseries.create ~sim ~metrics:m ~interval () in
                  Timeseries.start t;
                  Some t
              | _ -> None
            in
            (* Cumulative committed count at each window boundary; the
               goodput-over-time series and both phase gates derive
               from it. *)
            let windows = ref [] in
            let sampling = ref true in
            ignore
              (Sim.spawn sim ~name:"goodput-sampler" (fun () ->
                   while !sampling do
                     Sim.sleep params.ov_window;
                     windows := (Sim.now sim, !committed) :: !windows
                   done));
            let frun = Faultplan.launch_overload system plan in
            let workers = cfg.System.worker_cpus in
            let pool = Array.init workers (fun i -> System.session system ~cpu:i) in
            let files = cfg.System.files in
            let per_txn = params.ov_inserts_per_txn in
            (* One arrival = one transaction attempt.  Rejection is
               respected immediately (that is the contract the defended
               system offers); failure is retried a bounded number of
               times, because real clients do — the driver-level half of
               the retry storm. *)
            let worker index () =
              let session = pool.(index mod workers) in
              let keys =
                List.init per_txn (fun i ->
                    (i mod files, 900_000_000 + (index * per_txn) + i))
              in
              let rec attempt retries =
                let t0 = Sim.now sim in
                match Txclient.begin_txn session with
                | Error e ->
                    if Txclient.is_rejected e then incr rejected
                    else if retries > 0 then begin
                      Sim.sleep (Time.ms 100);
                      attempt (retries - 1)
                    end
                    else incr failed
                | Ok txn -> (
                    List.iter
                      (fun (file, key) ->
                        Txclient.insert_async session txn ~file ~key
                          ~len:params.ov_record_bytes ())
                      keys;
                    match Txclient.commit session txn with
                    | Ok () ->
                        incr committed;
                        acked := List.rev_append keys !acked;
                        Stat.add_span response_stat (Sim.now sim - t0)
                    | Error e ->
                        if Txclient.is_rejected e then incr rejected
                        else if retries > 0 then begin
                          Sim.sleep (Time.ms 100);
                          attempt (retries - 1)
                        end
                        else incr failed)
              in
              attempt params.ov_client_retries;
              decr outstanding
            in
            let rng = Rng.split (Sim.rng sim) in
            let arrivals =
              Arrival.run ~rng (overload_schedule params) ~f:(fun index ->
                  incr outstanding;
                  ignore
                    (Cpu.spawn
                       (Node.cpu node (index mod workers))
                       ~name:(Printf.sprintf "ov%d" index)
                       (worker index)))
            in
            (* Drain the stragglers — under collapse this tail is long,
               which the windowed series records faithfully. *)
            while !outstanding > 0 do
              Sim.sleep (Time.ms 10)
            done;
            let elapsed = Sim.now sim - started in
            sampling := false;
            Faultplan.await frun;
            mark_faults recorder (Faultplan.injected frun);
            (match ts with
            | Some t ->
                Timeseries.stop t;
                List.iter
                  (fun (time, label) -> Timeseries.mark t ~time label)
                  (Faultplan.injected frun)
            | None -> ());
            Sim.sleep params.ov_settle;
            (* Harvest client and server counters before the crash wipes
               the live processes' relevance. *)
            let sum f = Array.fold_left (fun acc s -> acc + f s) 0 pool in
            let timeouts = sum Txclient.timeouts in
            let retry_denied =
              sum (fun s ->
                  match Txclient.retry_budget s with
                  | Some b -> Retry_budget.denied b
                  | None -> 0)
            in
            let breaker_trips = sum Txclient.breaker_trips in
            let tmf = System.tmf system in
            let admitted = Tmf.admitted tmf in
            let tmf_rejected = Tmf.rejected tmf in
            let tmf_expired = Tmf.expired tmf in
            let adp_shed = System.adp_shed_expired system in
            Array.iter (fun d -> Dp2.load_table d []) (System.dp2s system);
            match Recovery.run system with
            | Error e -> out := Error ("recovery failed: " ^ e)
            | Ok recovery ->
                let routing = System.routing system in
                let dp2s = System.dp2s system in
                let lost =
                  List.filter
                    (fun (file, key) ->
                      let d = dp2s.(routing.Txclient.dp2_of ~file ~key) in
                      Dp2.lookup_direct d ~file ~key = None)
                    !acked
                in
                (* Per-window commit deltas, oldest first. *)
                let goodput =
                  let cumulative = List.rev !windows in
                  let prev = ref 0 in
                  List.map
                    (fun (t, c) ->
                      let d = c - !prev in
                      prev := c;
                      (t, d))
                    cumulative
                in
                let spike_start = started + params.ov_warmup in
                let spike_end = spike_start + params.ov_spike_for in
                let sched_end = spike_end + params.ov_cooldown in
                let phase_rate lo hi =
                  let commits =
                    List.fold_left
                      (fun acc (t, d) -> if t > lo && t <= hi then acc + d else acc)
                      0 goodput
                  in
                  let dt = Time.to_sec (hi - lo) in
                  if dt > 0.0 then float_of_int commits /. dt else 0.0
                in
                let warmup_g = phase_rate started spike_start in
                let spike_g = phase_rate spike_start spike_end in
                let cool_g = phase_rate spike_end sched_end in
                let window_sec = Time.to_sec params.ov_window in
                (* Metastability gate: the first window inside the
                   cooldown phase whose rate is back to the recovery
                   fraction of the warmup rate.  Only windows while
                   base-rate load is still arriving count — recovering
                   after the offered load stops is exactly what a
                   metastable system does, and it does not count. *)
                let recovery_time =
                  let threshold = params.ov_recovery_frac *. warmup_g in
                  List.fold_left
                    (fun acc (t, d) ->
                      match acc with
                      | Some _ -> acc
                      | None ->
                          if
                            t > spike_end && t <= sched_end
                            && float_of_int d /. window_sec >= threshold
                          then Some (t - spike_end)
                          else None)
                    None goodput
                in
                out :=
                  Ok
                    {
                      v_seed = seed;
                      v_defended = defenses;
                      v_arrivals = arrivals;
                      v_committed = !committed;
                      v_rejected = !rejected;
                      v_failed = !failed;
                      v_timeouts = timeouts;
                      v_admitted = admitted;
                      v_tmf_rejected = tmf_rejected;
                      v_tmf_expired = tmf_expired;
                      v_adp_shed = adp_shed;
                      v_retry_denied = retry_denied;
                      v_breaker_trips = breaker_trips;
                      v_acked_rows = List.length !acked;
                      v_lost_rows = List.length lost;
                      v_elapsed = elapsed;
                      v_warmup_goodput = warmup_g;
                      v_spike_goodput = spike_g;
                      v_cooldown_goodput = cool_g;
                      v_recovery_time = recovery_time;
                      v_spike_floor = params.ov_spike_floor;
                      v_recovery_frac = params.ov_recovery_frac;
                      v_recovery_limit = params.ov_recovery_limit;
                      v_goodput = goodput;
                      v_response = Stat.summary response_stat;
                      v_faults = Faultplan.injected frun;
                      v_recovery = recovery;
                      v_timeline = ts;
                      v_flight = recorder;
                    })
  in
  Sim.run sim;
  (match (flight, recorder) with
  | Some path, Some fr ->
      let gate_failed =
        match !out with Ok r -> not (overload_pass r) | Error _ -> true
      in
      if gate_failed then begin
        (match !out with
        | Error e -> Flightrec.mark fr ~time:0 ("drill error: " ^ e)
        | Ok r ->
            Flightrec.mark fr ~time:0
              ("overload oracle: " ^ Oracle.summary (Oracle.of_overload r)));
        dump_flight path fr
      end
  | _ -> ());
  !out

(* --- Cluster partition drill --- *)

(* Distributed hot-stock mix: every transaction spreads its inserts
   across the nodes and commits two-phase.  Failures are data — during
   the partition cross-node calls time out fast and the driver moves
   on — and only [Ok] commits contribute to [acked]. *)
let cluster_driver cluster params ~index ~acked ~response_stat ~committed ~failed ~on_done
    () =
  let nodes = Cluster.node_count cluster in
  let coordinator = index mod nodes in
  let home = Cluster.system cluster coordinator in
  let cfg = System.config home in
  let sim = System.sim home in
  let files = cfg.System.files in
  let key_base = (index + 1) * 100_000_000 in
  let total = params.records_per_driver in
  let per_txn = params.inserts_per_txn in
  let seq = ref 0 in
  while !seq < total do
    let t0 = Sim.now sim in
    let in_this_txn = min per_txn (total - !seq) in
    let keys =
      List.init in_this_txn (fun i ->
          let idx = !seq + i in
          ((coordinator + idx) mod nodes, idx mod files, key_base + idx))
    in
    seq := !seq + in_this_txn;
    let dtx = Dtx.begin_dtx cluster ~coordinator ~cpu:(index mod cfg.System.worker_cpus) in
    let inserted =
      List.fold_left
        (fun acc (node, file, key) ->
          match acc with
          | Error _ as e -> e
          | Ok () -> Dtx.insert dtx ~node ~file ~key ~len:params.record_bytes)
        (Ok ()) keys
    in
    (match inserted with
    | Error _ ->
        incr failed;
        ignore (Dtx.abort dtx);
        (* Back off so a dead monitor doesn't turn the loop into a
           zero-work spin. *)
        Sim.sleep (Time.ms 2)
    | Ok () -> (
        match Dtx.commit dtx with
        | Ok () ->
            incr committed;
            acked := List.rev_append keys !acked;
            Stat.add_span response_stat (Sim.now sim - t0)
        | Error _ ->
            incr failed;
            Sim.sleep (Time.ms 2)))
  done;
  on_done ()

let run_cluster ?(seed = 0xC1D5L) ?(nodes = 2) ?config ?obs ?(params = cluster_params)
    ?horizon ?(recovery_plan = []) ?flight ~plan () =
  if params.drivers < 1 then invalid_arg "Drill.run_cluster: need at least one driver";
  if nodes < 2 then invalid_arg "Drill.run_cluster: need at least two nodes";
  let recorder, obs = arm_flight flight obs in
  let base = Option.value config ~default:System.pm_config in
  let cfg = { (config_for base System.Pm_audit) with System.seed } in
  let sim = Sim.create ~seed () in
  let out = ref (Error "cluster drill: simulation did not complete") in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"drill-main" (fun () ->
        (* A fat interconnect latency widens the in-flight window of
           every cross-node call, so a partition pulse reliably catches
           prepares and decides mid-air. *)
        let cluster = Cluster.build sim ~nodes ~wan_latency:(Time.us 500) ?obs cfg in
        let validated =
          match Faultplan.validate_cluster ?horizon cluster ~node:0 plan with
          | Error e -> Error ("fault plan: " ^ e)
          | Ok () -> (
              match Faultplan.validate_cluster cluster ~node:0 recovery_plan with
              | Error e -> Error ("recovery fault plan: " ^ e)
              | Ok () -> Ok ())
        in
        match validated with
        | Error e -> out := Error e
        | Ok () ->
            let response_stat = Stat.create ~name:"cluster-drill-rt" () in
            let acked = ref [] in
            let committed = ref 0 in
            let failed = ref 0 in
            let gate = Gate.create params.drivers in
            let started = Sim.now sim in
            (* Node-local faults (monitor and manager kills, the fence
               probe) target node 0 — the coordinator side of every even
               driver's transactions. *)
            let frun = Faultplan.launch_cluster cluster ~node:0 plan in
            for index = 0 to params.drivers - 1 do
              let home = Cluster.system cluster (index mod nodes) in
              let cpu =
                Node.cpu (System.node home) (index mod cfg.System.worker_cpus)
              in
              ignore
                (Cpu.spawn cpu
                   ~name:(Printf.sprintf "drill-driver%d" index)
                   (cluster_driver cluster params ~index ~acked ~response_stat ~committed
                      ~failed ~on_done:(fun () -> Gate.arrive gate)))
            done;
            Gate.await gate;
            let elapsed = Sim.now sim - started in
            Faultplan.await frun;
            mark_faults recorder (Faultplan.injected frun);
            Sim.sleep params.settle;
            let sum_nodes f =
              let acc = ref 0 in
              for i = 0 to nodes - 1 do
                acc := !acc + f (Cluster.system cluster i)
              done;
              !acc
            in
            let in_doubt_count s = List.length (Tmf.in_doubt (System.tmf s)) in
            let in_doubt_before = sum_nodes in_doubt_count in
            (* Crash every node: the DP2 images vanish; only the trails,
               the PM state, and the monitors' checkpointed in-doubt
               windows survive. *)
            for i = 0 to nodes - 1 do
              Array.iter (fun d -> Dp2.load_table d []) (System.dp2s (Cluster.system cluster i))
            done;
            (* Recovery-phase injection, cluster flavour: the plan races
               {!Cluster.recover}'s replay and in-doubt resolution. *)
            let rrun =
              match recovery_plan with
              | [] -> None
              | p -> Some (Faultplan.launch_cluster cluster ~node:0 p)
            in
            let recover_result = Cluster.recover cluster in
            let recovery_faults =
              match rrun with
              | None -> []
              | Some r ->
                  Faultplan.await r;
                  let injected = Faultplan.injected r in
                  mark_faults recorder injected;
                  injected
            in
            match recover_result with
            | Error e -> out := Error ("recovery failed: " ^ e)
            | Ok recoveries ->
                (* Lock release rides the monitors' finish queues, which
                   drain behind the recovery replies. *)
                Sim.sleep params.settle;
                let lost =
                  List.filter
                    (fun (node, file, key) ->
                      let s = Cluster.system cluster node in
                      let routing = System.routing s in
                      let d = (System.dp2s s).(routing.Txclient.dp2_of ~file ~key) in
                      Dp2.lookup_direct d ~file ~key = None)
                    !acked
                in
                let fenced =
                  sum_nodes (fun s ->
                      List.fold_left
                        (fun acc d -> acc + Pm.Npmu.fenced_writes d)
                        0 (System.npmus s))
                in
                out :=
                  Ok
                    {
                      c_seed = seed;
                      c_nodes = nodes;
                      c_elapsed = elapsed;
                      c_faults = Faultplan.injected frun @ recovery_faults;
                      c_attempted = !committed + !failed;
                      c_committed = !committed;
                      c_failed = !failed;
                      c_acked_rows = List.length !acked;
                      c_lost_rows = List.length lost;
                      c_in_doubt_before = in_doubt_before;
                      c_resolved_commit =
                        List.fold_left
                          (fun acc r -> acc + r.Recovery.resolved_commit)
                          0 recoveries;
                      c_resolved_abort =
                        List.fold_left
                          (fun acc r -> acc + r.Recovery.resolved_abort)
                          0 recoveries;
                      c_in_doubt_after = sum_nodes in_doubt_count;
                      c_orphaned_locks = sum_nodes (fun s -> Lockmgr.held_total (System.locks s));
                      c_fence_checks =
                        (Faultplan.fence_checks frun
                        + match rrun with Some r -> Faultplan.fence_checks r | None -> 0);
                      c_fence_failures =
                        (Faultplan.fence_failures frun
                        + match rrun with Some r -> Faultplan.fence_failures r | None -> 0);
                      c_fenced_writes = fenced;
                      c_recoveries = recoveries;
                      c_response = Stat.summary response_stat;
                    })
  in
  Sim.run sim;
  (match (flight, recorder) with
  | Some path, Some fr ->
      let failed =
        match !out with Ok r -> not (cluster_zero_loss r) | Error _ -> true
      in
      if failed then begin
        (match !out with
        | Error e -> Flightrec.mark fr ~time:0 ("cluster drill error: " ^ e)
        | Ok r ->
            Flightrec.mark fr ~time:0
              ("cluster oracle: " ^ Oracle.summary (Oracle.of_cluster r)));
        dump_flight path fr
      end
  | _ -> ());
  !out
