open Simkit
open Nsk

type outcome_source = Mat_scan | Pm_txn_table

type report = {
  mttr : Time.span;
  outcome_source : outcome_source;
  trails_scanned : int;
  bytes_scanned : int;
  records_replayed : int;
  committed_txns : int;
  in_doubt_txns : int;
  resolved_commit : int;
  resolved_abort : int;
  discarded_updates : int;
  rows_rebuilt : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "MTTR=%a source=%s trails=%d bytes=%d replayed=%d committed=%d in-doubt=%d resolved-commit=%d resolved-abort=%d discarded=%d rows=%d"
    Time.pp r.mttr
    (match r.outcome_source with Mat_scan -> "MAT-scan" | Pm_txn_table -> "PM-txn-table")
    r.trails_scanned r.bytes_scanned r.records_replayed r.committed_txns r.in_doubt_txns
    r.resolved_commit r.resolved_abort r.discarded_updates r.rows_rebuilt

let apply_cpu_per_record = Time.ns 2_000

(* Learn commit outcomes from the PM transaction-state table.  A slot
   written while one device of the mirror pair was dark exists on the
   survivor only (the write acked under the degraded-durability
   contract), so a single routed read can miss commits: read BOTH raw
   copies and union the outcomes.  Commit status is write-once, so the
   union cannot resurrect an aborted branch; a slot in doubt on a stale
   copy but committed on the fresh one resolves to committed. *)
let outcomes_from_pm_table (client, handle) =
  let info = Pm.Pm_client.info handle in
  let length = info.Pm.Pm_types.length in
  let committed = Hashtbl.create 1024 in
  let in_doubt = Hashtbl.create 16 in
  let chunk = 64 * 1024 in
  let parse data len =
    let entry_bytes = 32 in
    let entries = len / entry_bytes in
    for i = 0 to entries - 1 do
      try
        let dec = Pm.Codec.Dec.of_sub data ~pos:(i * entry_bytes) ~len:9 in
        let txn = Pm.Codec.Dec.u64 dec in
        let status = Pm.Codec.Dec.u8 dec in
        if txn > 0 && status = 2 then Hashtbl.replace committed txn ();
        if txn > 0 && status = 4 then Hashtbl.replace in_doubt txn ()
      with Pm.Codec.Dec.Truncated -> ()
    done
  in
  let rec fetch off =
    if off >= length then Ok ()
    else
      let len = min chunk (length - off) in
      let prim = Pm.Pm_client.read_device client handle ~mirror:false ~off ~len in
      let mirr = Pm.Pm_client.read_device client handle ~mirror:true ~off ~len in
      match (prim, mirr) with
      | Error e, Error _ -> Error (Pm.Pm_types.error_to_string e)
      | Ok a, Ok b ->
          parse a len;
          parse b len;
          fetch (off + len)
      | Ok a, Error _ | Error _, Ok a ->
          parse a len;
          fetch (off + len)
  in
  match fetch 0 with
  | Ok () ->
      let unresolved =
        Hashtbl.fold
          (fun txn () acc -> if Hashtbl.mem committed txn then acc else acc + 1)
          in_doubt 0
      in
      Ok (committed, unresolved, length)
  | Error e -> Error e

(* Learn commit outcomes by scanning the master audit trail. *)
let outcomes_from_mat mat =
  let backend = Adp.backend mat in
  match Log_backend.recovery_read backend with
  | Error e -> Error e
  | Ok records ->
      let committed = Hashtbl.create 1024 in
      let prepared = Hashtbl.create 16 in
      let aborted = Hashtbl.create 16 in
      List.iter
        (fun (_, record) ->
          match record with
          | Audit.Commit { txn } -> Hashtbl.replace committed txn ()
          | Audit.Abort { txn } ->
              Hashtbl.remove committed txn;
              Hashtbl.replace aborted txn ()
          | Audit.Prepared { txn } -> Hashtbl.replace prepared txn ()
          | Audit.Begin _ | Audit.Update _ | Audit.Control_point _ -> ())
        records;
      (* Prepared but neither committed nor aborted: in doubt.  Presumed
         abort discards their updates; a full implementation would hold
         their locks and ask the coordinator. *)
      let in_doubt =
        Hashtbl.fold
          (fun txn () acc ->
            if Hashtbl.mem committed txn || Hashtbl.mem aborted txn then acc else acc + 1)
          prepared 0
      in
      Ok (committed, in_doubt, Log_backend.bytes_written backend)

let run ?outcome_of system =
  let sim = System.sim system in
  let cpu = Node.cpu (System.node system) 0 in
  let started = Sim.now sim in
  (* In-doubt resolution happens before redo: each prepared-but-undecided
     branch asks its coordinator (via [outcome_of], which a cluster
     supplies as a cross-node Query_outcome) what the global decision
     was.  Presumed abort — only an affirmative "committed" (status 2)
     commits the branch; everything else, including an unreachable
     coordinator, aborts it.  Resolved commits join the committed set so
     the redo pass replays their updates. *)
  let tmf = System.tmf system in
  let decisions =
    List.map
      (fun (txn, _, gtid) ->
        let status = match outcome_of with Some f -> f gtid | None -> 0 in
        (txn, status = 2))
      (Tmf.in_doubt tmf)
  in
  let outcome =
    match System.txn_state_region system with
    | Some region -> (
        match outcomes_from_pm_table region with
        | Ok (committed, in_doubt, bytes) -> Ok (committed, in_doubt, bytes, Pm_txn_table)
        | Error e -> Error e)
    | None -> (
        match outcomes_from_mat (System.mat system) with
        | Ok (committed, in_doubt, bytes) -> Ok (committed, in_doubt, bytes, Mat_scan)
        | Error e -> Error e)
  in
  match outcome with
  | Error e -> Error e
  | Ok (committed, in_doubt, outcome_bytes, outcome_source) -> (
      List.iter (fun (txn, commit) -> if commit then Hashtbl.replace committed txn ()) decisions;
      (* Redo pass over every data trail. *)
      let n_dp2 = Array.length (System.dp2s system) in
      let rebuilt = Array.init n_dp2 (fun _ -> Hashtbl.create 1024) in
      let replayed = ref 0 in
      let discarded = ref 0 in
      let bytes = ref outcome_bytes in
      let scan_trail adp =
        let backend = Adp.backend adp in
        bytes := !bytes + Log_backend.bytes_written backend;
        match Log_backend.recovery_read backend with
        | Error e -> Error e
        | Ok records ->
            List.iter
              (fun (_, record) ->
                match record with
                | Audit.Prepared _ -> ()
                | Audit.Update { txn; file; partition; key; payload_len; payload_crc; _ } ->
                    incr replayed;
                    (* Amortized instruction-path cost of applying redo. *)
                    if !replayed mod 64 = 0 then Cpu.execute cpu (64 * apply_cpu_per_record);
                    if Hashtbl.mem committed txn then begin
                      if partition >= 0 && partition < n_dp2 then
                        Hashtbl.replace rebuilt.(partition) (file, key) (payload_len, payload_crc)
                    end
                    else incr discarded
                | Audit.Begin _ | Audit.Commit _ | Audit.Abort _ | Audit.Control_point _ -> ())
              records;
            Ok ()
      in
      let adps = System.adps system in
      let rec scan_all i =
        if i >= Array.length adps then Ok () else
          match scan_trail adps.(i) with Ok () -> scan_all (i + 1) | Error e -> Error e
      in
      match scan_all 0 with
      | Error e -> Error e
      | Ok () ->
          (* Install the rebuilt images. *)
          let rows = ref 0 in
          Array.iteri
            (fun i table ->
              let entries =
                Hashtbl.fold (fun (file, key) (len, crc) acc -> (file, key, len, crc) :: acc)
                  table []
              in
              rows := !rows + List.length entries;
              Dp2.load_table (System.dp2s system).(i) entries)
            rebuilt;
          (* Drive each resolution through the monitor: a durable outcome
             record, then lock release behind the reply.  If the monitor
             cannot take the decision, the locks are freed directly — an
             orphaned lock outlives every retry. *)
          let resolved_commit = ref 0 in
          let resolved_abort = ref 0 in
          let locks = System.locks system in
          List.iter
            (fun (txn, commit) ->
              if commit then incr resolved_commit else incr resolved_abort;
              match Msgsys.call (Tmf.server tmf) ~from:cpu (Tmf.Decide_txn { txn; commit }) with
              | Ok Tmf.Decided -> ()
              | Ok _ | Error _ -> Lockmgr.release_all locks ~owner:txn)
            decisions;
          (* Transactions still active at the crash never reached a
             commit point: abort them and free whatever they hold. *)
          List.iter
            (fun txn ->
              (match
                 Msgsys.call (Tmf.server tmf) ~from:cpu (Tmf.Abort_txn { txn; involved = [] })
               with
              | Ok _ | Error _ -> ());
              Lockmgr.release_all locks ~owner:txn)
            (Tmf.active_txns tmf);
          (match System.obs system with
          | Some o ->
              let m = Obs.metrics o in
              for _ = 1 to !resolved_commit do
                Stat.Counter.incr (Metrics.counter m "dtx.resolved_commit")
              done;
              for _ = 1 to !resolved_abort do
                Stat.Counter.incr (Metrics.counter m "dtx.resolved_abort")
              done
          | None -> ());
          Ok
            {
              mttr = Sim.now sim - started;
              outcome_source;
              trails_scanned = Array.length adps + 1;
              bytes_scanned = !bytes;
              records_replayed = !replayed;
              committed_txns = Hashtbl.length committed;
              in_doubt_txns = in_doubt;
              resolved_commit = !resolved_commit;
              resolved_abort = !resolved_abort;
              discarded_updates = !discarded;
              rows_rebuilt = !rows;
            })
