open Simkit
open Nsk

(** Whole-system assembly: a NonStop-style node running the transaction
    stack, in either the classic disk-audit configuration or the paper's
    persistent-memory configuration (§4.2-4.3).

    Topology follows the paper's benchmark setup: [worker_cpus]
    application CPUs, one audit volume and one ADP per CPU plus a master
    audit trail, [files × partitions_per_file] data volumes each owned by
    a DP2 pair, a TMF pair, and — in PM mode — a mirrored pair of PM
    devices (hardware NPMUs or PMP prototypes on an extra CPU) managed by
    a PMM pair, holding one trail region per ADP plus the transaction
    state table. *)

type log_mode = Disk_audit | Pm_audit

type pm_device_kind = Hardware_npmu | Prototype_pmp

type config = {
  seed : int64;
  worker_cpus : int;
  files : int;
  partitions_per_file : int;
  log_mode : log_mode;
  adps_per_node : int;  (** data ADPs; the MAT ADP is additional *)
  pm_device_kind : pm_device_kind;
  pm_capacity : int;  (** per PM device *)
  pm_region_bytes : int;  (** trail ring per ADP *)
  pm_write_penalty : Time.span;  (** extra device latency (latency sweep) *)
  pm_mirrored : bool;
  pm_verified_reads : bool;
      (** every PM client read cross-checks the mirror and read-repairs
          divergence ({!Pm.Pm_client.read_verified}) *)
  pm_scrub : Pm.Pmm.scrub_config option;
      (** run the PMM's background scrubber with this configuration
          ([None] — the default — leaves it off; whoever turns it on
          owns stopping it: {!Pm.Pmm.stop_scrubber}) *)
  pm_health : Pm.Pmm.health_config option;
      (** run the PMM's mirror-health monitor (slow-mirror demotion and
          re-admission) with this configuration ([None] — the default —
          leaves it off; whoever turns it on owns stopping it:
          {!Pm.Pmm.stop_monitor}) *)
  pm_slo_budget : Time.span;
      (** per-op latency budget of the PM clients' own health tracking;
          0 (the default) disables it *)
  pm_hedged_reads : bool;
      (** PM clients hedge slow plain reads with the mirror copy *)
  pm_adaptive_backoff : bool;
      (** PM clients scale data-path retry backoff to observed latency *)
  txn_state_in_pm : bool;  (** fine-grained txn table (PM mode only) *)
  client_deadline : Time.span;
      (** deadline budget stamped on each transaction by sessions from
          {!session}; 0 (the default) disables deadlines *)
  client_op_timeout : Time.span;
      (** per-call patience of sessions from {!session}
          ({!Txclient.create}'s [op_timeout]); 0 (the default) waits
          forever *)
  client_retry_budget : float;
      (** per-session retry token-bucket capacity; 0 (the default)
          leaves retries unbudgeted *)
  client_breakers : bool;
      (** per-destination circuit breakers in sessions *)
  pm_retry_budget : float;
      (** PM-client management-path retry token-bucket capacity; 0 (the
          default) leaves those retries unbudgeted *)
  fabric : Servernet.Fabric.config;
  adp : Adp.config;
  dp2 : Dp2.config;
  tmf : Tmf.config;
}

val default_config : config
(** The hot-stock benchmark platform: 4 worker CPUs, 4 files x 4
    partitions (16 data volumes), 4 ADPs + MAT, disk audit. *)

val pm_config : config
(** [default_config] with PM audit trails and the txn-state table. *)

type t

val build : ?obs:Obs.t -> Sim.t -> config -> t
(** Construct and start every component.  With [obs], every subsystem —
    message system, lock manager, volumes, fabric, PM clients and
    devices, log backends, ADPs, TMF, DP2s, and sessions created through
    {!session} — reports into that context's metrics registry and span
    collector, and the span clock is bound to [sim].  In PM mode this creates the
    trail regions through the PMM, which takes messages and simulated
    time: call it from inside a spawned process (the usual pattern is one
    setup-and-drive process that builds the system and then runs the
    workload).  Disk mode also works outside process context. *)

val sim : t -> Sim.t

val node : t -> Node.t

val config : t -> config

val tmf : t -> Tmf.t

val adps : t -> Adp.t array
(** Data ADPs, indexed as insert replies report them. *)

val mat : t -> Adp.t

val dp2s : t -> Dp2.t array

val dp2_servers : t -> Dp2.server array

val locks : t -> Lockmgr.t

val data_volumes : t -> Diskio.Volume.t array

val audit_volumes : t -> Diskio.Volume.t array
(** Empty in PM mode. *)

val pmm : t -> Pm.Pmm.t option

val npmus : t -> Pm.Npmu.t list
(** The mirrored PM devices ([Hardware_npmu] mode). *)

val txn_state_region : t -> (Pm.Pm_client.t * Pm.Pm_client.handle) option

val pm_clients : t -> Pm.Pm_client.t list
(** Every PM client attachment the system made (trail writers plus the
    transaction-state table's).  Empty in disk mode. *)

val degraded_pm_writes : t -> int
(** Writes that persisted on one device only, across all clients — the
    drill report's degraded-mode evidence. *)

val pm_write_retries : t -> int
(** Transient fabric errors retried on the PM data path, across all
    clients. *)

val pm_fenced_writes : t -> int
(** Writes bounced with [Stale_epoch] across all PM clients (each then
    refreshed its grant and retried). *)

val pm_read_repairs : t -> int
(** Divergent chunks verified reads repaired, across all clients. *)

val pm_verify_unrepaired : t -> int
(** Divergent chunks verified reads could not arbitrate, across all
    clients. *)

val pm_slow_suspects : t -> int
(** Healthy-to-suspect latency transitions observed by PM clients. *)

val pm_hedged_reads : t -> int
(** Plain reads whose hedge timer fired the mirror copy, across all
    clients. *)

val pm_hedge_wins : t -> int
(** Hedged reads the mirror answered first, across all clients. *)

val pm_single_copy_writes : t -> int
(** Writes persisted primary-only under the degraded-durability
    contract (mirror demoted), across all clients. *)

val pm_mgmt_retry_exhausted : t -> int
(** Management calls that ran out of retries, across all clients. *)

val fence_check : t -> (unit, string) result
(** Verify the epoch fence is armed: issue a write stamped one epoch
    behind the volume and confirm the device rejects it as stale.  The
    probe initiator holds no write grant, so the check cannot corrupt
    data even if fencing is broken — any outcome other than
    [Stale_epoch] is reported as a failure.  PM mode with at least one
    region only; process context only. *)

val obs : t -> Obs.t option
(** The context passed to {!build}, if any. *)

val session : t -> cpu:int -> Txclient.t
(** A transaction session for an application on worker CPU [cpu].
    Inherits the system's observability context. *)

val routing : t -> Txclient.routing

val total_audit_bytes : t -> int
(** Durable trail bytes across data ADPs and the MAT. *)

val checkpoint_message_bytes : t -> int
(** Total process-pair checkpoint traffic (ADPs + MAT), the §2
    "check-point traffic between process pairs". *)

val adp_shed_expired : t -> int
(** Expired flush waits shed across every trail writer (data ADPs +
    MAT) — admission control's back-pressure observable. *)

val report : Format.formatter -> t -> unit
(** Operator summary: per-subsystem counters (transactions, trails,
    volumes, locks, fabric) after a run. *)

val start_trail_archiver : t -> ?interval:Time.span -> ?rounds:int -> unit -> unit
(** Spawn a background job that trims every trail's durable prefix every
    [interval] (audit archiving).  With [rounds] it stops after that many
    sweeps; without, it runs forever — which also keeps the simulation's
    event queue alive, so unbounded archivers belong in runs driven by
    [Sim.run ~until]. *)
