open Simkit

(** Adversarial fault-schedule search.

    A seeded generator samples composite fault schedules over the whole
    {!Faultplan} vocabulary — kills, power cycles, rail flaps, CRC
    noise, silent media decay, torn writes, fail-slow injections, WAN
    partitions — with phase-aware timing: load-phase events land while
    transactions are in flight (including mid-2PC on the cluster kind,
    and mid-resync when a power-cycle motif composes with a resync),
    and recovery-phase events race the replay and in-doubt resolution.
    Each schedule runs as a full drill under {!Drill.Oracle}; any
    violation is minimized by delta debugging under deterministic
    replay and emitted as a repro file that
    [odsbench drill --plan-file repro.json] replays bit-for-bit.

    Schedules are generated from motifs rather than raw action draws:
    motifs encode the liveness pairings the harness needs (rails that
    go down come back up, degraded components are restored, partitions
    heal), so a generated schedule can only fail the oracle's
    invariants, never wedge the drill itself.  The whole corpus is a
    pure function of [(seed, index)]. *)

(** Which drill platform a schedule targets. *)
type kind =
  | Pm  (** PM-mode corruption platform ({!Drill.corruption_config}) *)
  | Disk  (** disk-mode system *)
  | Cluster  (** 2-node PM cluster with 2PC and WAN faults *)
  | Overload  (** flash-crowd drill; explores over the seed only *)

val kind_name : kind -> string
(** ["pm"], ["disk"], ["cluster"], ["overload"]. *)

val kind_of_name : string -> kind option

type schedule = {
  s_index : int;  (** position in the corpus *)
  s_seed : int64;  (** the drill's simulation seed *)
  s_kind : kind;
  s_plan : Faultplan.t;  (** load-phase schedule *)
  s_recovery : Faultplan.t;  (** offsets relative to recovery start *)
}

val generate : seed:int -> index:int -> schedule
(** The [index]-th schedule of corpus [seed] — deterministic, and
    independent of the defenses setting, so the defended and weakened
    explorations run the identical corpus. *)

val corpus : seed:int -> budget:int -> schedule list
(** [generate] for indices [0 .. budget-1]. *)

val schedule_to_json : schedule -> Json.t

val corpus_json : seed:int -> budget:int -> Json.t
(** The serialized corpus — the byte-identity witness for the
    same-seed determinism property. *)

val max_outage : Time.span
(** Unavailability bound the oracle enforces on single-system runs. *)

val horizon : Time.span
(** Validation horizon passed to every drill: no generated or replayed
    event may be offset past it. *)

val layer_of : Faultplan.action -> string
(** Coverage layer of an action: ["process"], ["pm_device"],
    ["fabric"], ["disk"], ["wan"], ["control"] or ["load"]. *)

val coverage : schedule list -> ((string * string * string) * int) list
(** (fault family, phase, layer) cells with event counts, sorted.
    Phase is ["load"] or ["recovery"]. *)

(** Outcome of running one schedule. *)
type verdict_or_error =
  | Verdict of Drill.Oracle.verdict
  | Harness_error of string  (** the drill itself refused or wedged *)

val violates : verdict_or_error -> bool

val verdict_json : verdict_or_error -> Json.t

val execute : ?flight:string -> defenses:bool -> schedule -> verdict_or_error
(** Run one schedule on its drill platform and judge it with the
    matching oracle.  [defenses:false] strips the PM integrity
    defenses (scrubber, verified reads) and the overload defenses —
    the weakened platform the explorer must find known failures on. *)

val minimize :
  ?max_replays:int ->
  fails:(Faultplan.t * Faultplan.t -> bool) ->
  Faultplan.t * Faultplan.t ->
  (Faultplan.t * Faultplan.t) * int
(** Delta-debug a failing [(plan, recovery_plan)] pair: greedy
    single-action drops to a fixpoint, then halve surviving offsets
    and durations while [fails] still holds.  Returns the minimized
    pair and the number of [fails] evaluations spent.  [max_replays]
    (default 150) bounds the search; on exhaustion the current
    candidate is returned. *)

(** One found-and-shrunk violation. *)
type violation = {
  vi_index : int;
  vi_kind : kind;
  vi_seed : int64;
  vi_actions : int;  (** actions in the generated schedule *)
  vi_shrunk_actions : int;  (** after minimization *)
  vi_replays : int;  (** drills the shrinker spent *)
  vi_schedule : schedule;  (** the minimized schedule *)
  vi_verdict : verdict_or_error;  (** verdict of the minimized schedule *)
  vi_repro : string option;  (** repro file path, when [out_dir] given *)
  vi_flight : string option;  (** flight dump path, when written *)
}

type report = {
  x_seed : int;
  x_budget : int;
  x_defenses : bool;
  x_schedules : schedule list;
  x_violations : violation list;
  x_coverage : ((string * string * string) * int) list;
  x_drills : int;  (** total drills run, shrink replays included *)
}

val found : report -> bool
(** At least one violation. *)

val run :
  ?defenses:bool ->
  ?out_dir:string ->
  ?max_replays:int ->
  ?progress:(int -> bool -> unit) ->
  budget:int ->
  seed:int ->
  unit ->
  report
(** Explore: generate and execute [budget] schedules; shrink every
    violation and replay the minimized schedule once more with the
    flight recorder armed.  When [out_dir] is given, each violation
    writes [repro_NNNN.json] (replayable via
    [odsbench drill --plan-file]) and [flight_NNNN.json] there.
    [progress] is called after each generated schedule with its index
    and whether it violated. *)

val to_json : report -> Json.t
(** Machine-readable exploration report: corpus and drill counts, kind
    mix, violations (with minimized plans and verdicts), pass flag,
    and the (family x phase x layer) coverage table. *)

(** {1 Repro files} *)

type repro = {
  rp_kind : kind;
  rp_seed : int64;
  rp_defenses : bool;
  rp_plan : Faultplan.t;
  rp_recovery : Faultplan.t;
}

val repro_schema : string
(** The repro document's [schema] tag: ["odsbench-repro"]. *)

val repro_of_violation : defenses:bool -> violation -> repro

val repro_to_json : ?violation:Json.t -> repro -> Json.t
(** Serialize; [violation] embeds the oracle verdict for the record
    (ignored on replay). *)

val repro_of_json : Json.t -> (repro, string) result
(** Parse a repro document.  Errors name the missing field, bad kind,
    or — delegated to {!Faultplan.of_json} — the offending action. *)

type replay_result =
  | Single of Drill.report
  | Clustered of Drill.cluster_report
  | Overloaded of Drill.overload_report

val replay : ?flight:string -> repro -> (replay_result, string) result
(** Re-run a repro exactly: same platform, same seed, same plans.
    Deterministic — two replays of the same file produce identical
    reports. *)

val replay_verdict : replay_result -> Drill.Oracle.verdict
(** Judge a replay with the oracle the explorer used for that kind. *)
