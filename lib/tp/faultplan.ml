open Simkit
open Nsk

type target = Adp of int | Dp2 of int | Tmf | Pmm

type action =
  | Kill_primary of target
  | Npmu_power_cycle of { device : int; off_for : Time.span }
  | Rail_down of int
  | Rail_up of int
  | Crc_noise_burst of { rate : float; duration : Time.span }
  | Media_decay of { device : int; off : int; bits : int }
  | Torn_write of { device : int }
  | Pmm_resync
  | Wan_partition
  | Wan_heal
  | Fence_check
  | Slow_device of { device : int; factor : float; jitter : Time.span }
  | Slow_rail of { rail : int; factor : float }
  | Slow_disk of { volume : int; factor : float; jitter : Time.span }
  | Restore_speed
  | Flash_crowd of { spike : float; spike_for : Time.span }

type event = { after : Time.span; action : action }

type t = event list

let at after action = { after; action }

let action_name = function
  | Kill_primary (Adp _) -> "kill_adp"
  | Kill_primary (Dp2 _) -> "kill_dp2"
  | Kill_primary Tmf -> "kill_tmf"
  | Kill_primary Pmm -> "kill_pmm"
  | Npmu_power_cycle _ -> "npmu_power_cycle"
  | Rail_down _ -> "rail_down"
  | Rail_up _ -> "rail_up"
  | Crc_noise_burst _ -> "crc_noise_burst"
  | Media_decay _ -> "media_decay"
  | Torn_write _ -> "torn_write"
  | Pmm_resync -> "pmm_resync"
  | Wan_partition -> "wan_partition"
  | Wan_heal -> "wan_heal"
  | Fence_check -> "fence_check"
  | Slow_device _ -> "slow_device"
  | Slow_rail _ -> "slow_rail"
  | Slow_disk _ -> "slow_disk"
  | Restore_speed -> "restore_speed"
  | Flash_crowd _ -> "flash_crowd"

let action_kinds =
  [
    "kill_adp"; "kill_dp2"; "kill_tmf"; "kill_pmm"; "npmu_power_cycle";
    "rail_down"; "rail_up"; "crc_noise_burst"; "media_decay"; "torn_write";
    "pmm_resync"; "wan_partition"; "wan_heal"; "fence_check"; "slow_device";
    "slow_rail"; "slow_disk"; "restore_speed"; "flash_crowd";
  ]

let describe = function
  | Kill_primary (Adp i) -> Printf.sprintf "kill ADP %d primary" i
  | Kill_primary (Dp2 i) -> Printf.sprintf "kill DP2 %d primary" i
  | Kill_primary Tmf -> "kill TMF primary"
  | Kill_primary Pmm -> "kill PMM primary"
  | Npmu_power_cycle { device; off_for } ->
      Printf.sprintf "power-cycle NPMU %d (off %s)" device (Time.to_string off_for)
  | Rail_down r -> Printf.sprintf "rail %d down" r
  | Rail_up r -> Printf.sprintf "rail %d up" r
  | Crc_noise_burst { rate; duration } ->
      Printf.sprintf "CRC noise %.4f for %s" rate (Time.to_string duration)
  | Media_decay { device; off; bits } ->
      Printf.sprintf "decay %d bits at offset %d of NPMU %d" bits off device
  | Torn_write { device } -> Printf.sprintf "tear last write on NPMU %d" device
  | Pmm_resync -> "PMM mirror resync"
  | Wan_partition -> "sever the inter-node link"
  | Wan_heal -> "heal the inter-node link"
  | Fence_check -> "verify the volume epoch fence is armed"
  | Slow_device { device; factor; jitter } ->
      Printf.sprintf "degrade NPMU %d to %.1fx (jitter %s)" device factor
        (Time.to_string jitter)
  | Slow_rail { rail; factor } -> Printf.sprintf "slow rail %d to %.1fx" rail factor
  | Slow_disk { volume; factor; jitter } ->
      Printf.sprintf "degrade data volume %d to %.1fx (jitter %s)" volume factor
        (Time.to_string jitter)
  | Restore_speed -> "restore every degraded component to full speed"
  | Flash_crowd { spike; spike_for } ->
      Printf.sprintf "flash crowd: %.1fx offered load for %s" spike
        (Time.to_string spike_for)

(* Durations serialize as [*_ns] integer fields so a plan written to a
   repro file and read back is structurally identical — no float
   rounding on the time axis. *)
let action_to_json action =
  let kind = ("kind", Json.String (action_name action)) in
  let fields =
    match action with
    | Kill_primary (Adp i) | Kill_primary (Dp2 i) -> [ ("index", Json.Int i) ]
    | Kill_primary Tmf | Kill_primary Pmm -> []
    | Npmu_power_cycle { device; off_for } ->
        [ ("device", Json.Int device); ("off_for_ns", Json.Int off_for) ]
    | Rail_down r | Rail_up r -> [ ("rail", Json.Int r) ]
    | Crc_noise_burst { rate; duration } ->
        [ ("rate", Json.Float rate); ("duration_ns", Json.Int duration) ]
    | Media_decay { device; off; bits } ->
        [ ("device", Json.Int device); ("off", Json.Int off); ("bits", Json.Int bits) ]
    | Torn_write { device } -> [ ("device", Json.Int device) ]
    | Pmm_resync | Wan_partition | Wan_heal | Fence_check | Restore_speed -> []
    | Slow_device { device; factor; jitter } ->
        [
          ("device", Json.Int device);
          ("factor", Json.Float factor);
          ("jitter_ns", Json.Int jitter);
        ]
    | Slow_rail { rail; factor } ->
        [ ("rail", Json.Int rail); ("factor", Json.Float factor) ]
    | Slow_disk { volume; factor; jitter } ->
        [
          ("volume", Json.Int volume);
          ("factor", Json.Float factor);
          ("jitter_ns", Json.Int jitter);
        ]
    | Flash_crowd { spike; spike_for } ->
        [ ("spike", Json.Float spike); ("spike_for_ns", Json.Int spike_for) ]
  in
  Json.Obj (kind :: fields)

let to_json plan =
  Json.List
    (List.map
       (fun ev ->
         match action_to_json ev.action with
         | Json.Obj fields -> Json.Obj (("after_ns", Json.Int ev.after) :: fields)
         | j -> j)
       plan)

let of_json json =
  let ( let* ) = Result.bind in
  let action_of_json i j =
    let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "action %d: %s" i m)) fmt in
    let field name conv what =
      match Option.bind (Json.member name j) conv with
      | Some v -> Ok v
      | None -> fail "missing or ill-typed field %S (expected %s)" name what
    in
    let int name = field name Json.to_int_opt "integer" in
    let flt name = field name Json.to_float_opt "number" in
    let* kind = field "kind" Json.to_string_opt "string" in
    match kind with
    | "kill_adp" ->
        let* i = int "index" in
        Ok (Kill_primary (Adp i))
    | "kill_dp2" ->
        let* i = int "index" in
        Ok (Kill_primary (Dp2 i))
    | "kill_tmf" -> Ok (Kill_primary Tmf)
    | "kill_pmm" -> Ok (Kill_primary Pmm)
    | "npmu_power_cycle" ->
        let* device = int "device" in
        let* off_for = int "off_for_ns" in
        Ok (Npmu_power_cycle { device; off_for })
    | "rail_down" ->
        let* r = int "rail" in
        Ok (Rail_down r)
    | "rail_up" ->
        let* r = int "rail" in
        Ok (Rail_up r)
    | "crc_noise_burst" ->
        let* rate = flt "rate" in
        let* duration = int "duration_ns" in
        Ok (Crc_noise_burst { rate; duration })
    | "media_decay" ->
        let* device = int "device" in
        let* off = int "off" in
        let* bits = int "bits" in
        Ok (Media_decay { device; off; bits })
    | "torn_write" ->
        let* device = int "device" in
        Ok (Torn_write { device })
    | "pmm_resync" -> Ok Pmm_resync
    | "wan_partition" -> Ok Wan_partition
    | "wan_heal" -> Ok Wan_heal
    | "fence_check" -> Ok Fence_check
    | "slow_device" ->
        let* device = int "device" in
        let* factor = flt "factor" in
        let* jitter = int "jitter_ns" in
        Ok (Slow_device { device; factor; jitter })
    | "slow_rail" ->
        let* rail = int "rail" in
        let* factor = flt "factor" in
        Ok (Slow_rail { rail; factor })
    | "slow_disk" ->
        let* volume = int "volume" in
        let* factor = flt "factor" in
        let* jitter = int "jitter_ns" in
        Ok (Slow_disk { volume; factor; jitter })
    | "restore_speed" -> Ok Restore_speed
    | "flash_crowd" ->
        let* spike = flt "spike" in
        let* spike_for = int "spike_for_ns" in
        Ok (Flash_crowd { spike; spike_for })
    | other ->
        fail "unknown kind %S (valid kinds: %s)" other (String.concat ", " action_kinds)
  in
  let event_of_json i j =
    match j with
    | Json.Obj _ ->
        let* after =
          match Option.bind (Json.member "after_ns" j) Json.to_int_opt with
          | Some v -> Ok v
          | None ->
              Error
                (Printf.sprintf
                   "action %d: missing or ill-typed field \"after_ns\" (expected integer)"
                   i)
        in
        let* action = action_of_json i j in
        Ok { after; action }
    | _ -> Error (Printf.sprintf "action %d: expected an object" i)
  in
  match json with
  | Json.List items ->
      let rec build i acc = function
        | [] -> Ok (List.rev acc)
        | j :: rest ->
            let* ev = event_of_json i j in
            build (i + 1) (ev :: acc) rest
      in
      build 0 [] items
  | _ -> Error "fault plan must be a JSON array of action objects"

(* Flash_crowd does not act on the system — the overload drill's open-loop
   arrival engine is what actually raises the offered load; the event
   exists so the spike lands in the injection log, the timeline marks and
   the flight recorder like any other fault.  Outside the overload drill
   the event would silently mark a spike that never happens, so plain
   [validate] rejects it. *)
let validate_scoped ?(overload = false) ?horizon ~clustered system plan =
  let cfg = System.config system in
  let pm_mode = cfg.System.log_mode = System.Pm_audit in
  let n_adps = Array.length (System.adps system) in
  let n_dp2s = Array.length (System.dp2s system) in
  let n_devices = List.length (System.npmus system) in
  let rails = (Servernet.Fabric.config (Node.fabric (System.node system))).rails in
  let reject fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check ev =
    let pm_only what = reject "%s requires a PM-mode system" what in
    match ev.action with
    | Kill_primary (Adp i) when i < 0 || i >= n_adps ->
        reject "kill_adp: index %d out of range (have %d)" i n_adps
    | Kill_primary (Dp2 i) when i < 0 || i >= n_dp2s ->
        reject "kill_dp2: index %d out of range (have %d)" i n_dp2s
    | Kill_primary Pmm when not pm_mode -> pm_only "kill_pmm"
    | Pmm_resync when not pm_mode -> pm_only "pmm_resync"
    | Npmu_power_cycle _ when not pm_mode -> pm_only "npmu_power_cycle"
    | Npmu_power_cycle { device; _ } when device < 0 || device >= n_devices ->
        reject "npmu_power_cycle: device %d out of range (have %d)" device n_devices
    | Npmu_power_cycle { off_for; _ } when off_for <= 0 ->
        reject "npmu_power_cycle: off_for must be positive"
    | (Rail_down r | Rail_up r) when r < 0 || r >= rails ->
        reject "rail event: rail %d out of range (have %d)" r rails
    | Media_decay _ when not pm_mode -> pm_only "media_decay"
    | Media_decay { device; _ } when device < 0 || device >= n_devices ->
        reject "media_decay: device %d out of range (have %d)" device n_devices
    | Media_decay { bits; _ } when bits <= 0 -> reject "media_decay: bits must be positive"
    | Media_decay { device; off; bits }
      when off < 0
           || off + ((bits + 7) / 8)
              > Pm.Npmu.capacity (List.nth (System.npmus system) device) ->
        reject "media_decay: offset %d (+%d bits) outside device %d" off bits device
    | Torn_write _ when not pm_mode -> pm_only "torn_write"
    | Torn_write { device } when device < 0 || device >= n_devices ->
        reject "torn_write: device %d out of range (have %d)" device n_devices
    | Crc_noise_burst { rate; _ } when rate < 0.0 || rate >= 1.0 ->
        reject "crc_noise_burst: rate %.3f outside [0, 1)" rate
    | Crc_noise_burst { duration; _ } when duration <= 0 ->
        reject "crc_noise_burst: duration must be positive"
    | (Wan_partition | Wan_heal) when not clustered ->
        reject "%s requires a cluster-scoped plan" (action_name ev.action)
    | Fence_check when not pm_mode -> pm_only "fence_check"
    | Slow_device _ when not pm_mode -> pm_only "slow_device"
    | Slow_device { device; _ } when device < 0 || device >= n_devices ->
        reject "slow_device: device %d out of range (have %d)" device n_devices
    | Slow_device { factor; _ } when factor < 1.0 ->
        reject "slow_device: factor %.2f below 1.0" factor
    | Slow_device { jitter; _ } when jitter < 0 -> reject "slow_device: negative jitter"
    | Slow_rail { rail; _ } when rail < 0 || rail >= rails ->
        reject "slow_rail: rail %d out of range (have %d)" rail rails
    | Slow_rail { factor; _ } when factor < 1.0 ->
        reject "slow_rail: factor %.2f below 1.0" factor
    | Slow_disk { volume; _ }
      when volume < 0 || volume >= Array.length (System.data_volumes system) ->
        reject "slow_disk: volume %d out of range (have %d)" volume
          (Array.length (System.data_volumes system))
    | Slow_disk { factor; _ } when factor < 1.0 ->
        reject "slow_disk: factor %.2f below 1.0" factor
    | Slow_disk { jitter; _ } when jitter < 0 -> reject "slow_disk: negative jitter"
    | Flash_crowd _ when not overload ->
        (* Keep this list in step with Drill.plan_names (checked by
           test_overload) — the same names odsbench's --list-plans
           prints. *)
        let plans =
          if pm_mode then "standard, kills, corruption, grayfail, overload, none"
          else "standard, kills, none"
        in
        reject
          "flash_crowd is overload-drill-only: run it via --plan overload (valid plans: \
           %s)"
          plans
    | Flash_crowd { spike; _ } when spike < 1.0 ->
        reject "flash_crowd: spike %.2f below 1.0" spike
    | Flash_crowd { spike_for; _ } when spike_for <= 0 ->
        reject "flash_crowd: spike_for must be positive"
    | _ when ev.after < 0 -> reject "event offset must be non-negative"
    | _ -> (
        (* A scheduler past the drill horizon would hold the offset but
           the drill would already have crashed and audited — the event
           silently never fires.  Surface that at validation time. *)
        match horizon with
        | Some h when ev.after > h ->
            reject "%s at +%s is past the drill horizon (%s) and would never fire"
              (action_name ev.action) (Time.to_string ev.after) (Time.to_string h)
        | _ -> Ok ())
  in
  let _, result =
    List.fold_left
      (fun (i, acc) ev ->
        match acc with
        | Error _ -> (i + 1, acc)
        | Ok () -> (
            ( i + 1,
              match check ev with
              | Ok () -> Ok ()
              | Error m -> Error (Printf.sprintf "action %d: %s" i m) )))
      (0, Ok ()) plan
  in
  result

let validate ?horizon system plan = validate_scoped ?horizon ~clustered:false system plan

let validate_overload ?horizon system plan =
  validate_scoped ~overload:true ?horizon ~clustered:false system plan

let validate_cluster ?horizon cluster ~node plan =
  validate_scoped ~clustered:true ?horizon (Cluster.system cluster node) plan

type run = {
  r_system : System.t;
  r_cluster : Cluster.t option;  (* scope for WAN partition events *)
  mutable r_injected : (Time.t * string) list;  (* newest first *)
  mutable r_fence_checks : int;
  mutable r_fence_failures : int;
  r_done : unit Ivar.t;
}

let injected r = List.rev r.r_injected

let fence_checks r = r.r_fence_checks

let fence_failures r = r.r_fence_failures

let await r = Ivar.read r.r_done

let record run ?(detail = "") action =
  let system = run.r_system in
  let sim = System.sim system in
  let now = Sim.now sim in
  let desc =
    if detail = "" then describe action else describe action ^ " — " ^ detail
  in
  run.r_injected <- (now, desc) :: run.r_injected;
  match System.obs system with
  | None -> ()
  | Some o ->
      let m = Obs.metrics o in
      Stat.Counter.incr (Metrics.counter m "fault.injected");
      Stat.Counter.incr (Metrics.counter m ("fault." ^ action_name action))

(* Injection runs in the scheduler process; anything that must happen at
   the end of a window (power restore, noise end) is a non-blocking
   [Sim.at] callback. *)
let inject run action =
  let system = run.r_system in
  let sim = System.sim system in
  let sp =
    match System.obs system with
    | None -> Span.null
    | Some o ->
        let sp = Span.start (Obs.spans o) ~track:"fault" (action_name action) in
        Span.annotate sp ~key:"fault" (describe action);
        sp
  in
  let finish () =
    match System.obs system with Some o -> Span.finish (Obs.spans o) sp | None -> ()
  in
  (match action with
  | Kill_primary (Adp i) ->
      Adp.kill_primary (System.adps system).(i);
      record run action
  | Kill_primary (Dp2 i) ->
      Dp2.kill_primary (System.dp2s system).(i);
      record run action
  | Kill_primary Tmf ->
      Tmf.kill_primary (System.tmf system);
      record run action
  | Kill_primary Pmm ->
      (match System.pmm system with
      | Some pmm -> Pm.Pmm.kill_primary pmm
      | None -> ());
      record run action
  | Npmu_power_cycle { device; off_for } ->
      let d = List.nth (System.npmus system) device in
      Pm.Npmu.power_loss d;
      Sim.at sim ~after:off_for (fun () -> Pm.Npmu.power_restore d);
      record run action
  | Rail_down r ->
      Servernet.Fabric.set_rail (Node.fabric (System.node system)) r false;
      record run action
  | Rail_up r ->
      Servernet.Fabric.set_rail (Node.fabric (System.node system)) r true;
      record run action
  | Crc_noise_burst { rate; duration } ->
      let fabric = Node.fabric (System.node system) in
      let previous = Servernet.Fabric.crc_error_rate fabric in
      Servernet.Fabric.set_crc_error_rate fabric rate;
      Sim.at sim ~after:duration (fun () ->
          Servernet.Fabric.set_crc_error_rate fabric previous);
      record run action
  | Media_decay { device; off; bits } ->
      let d = List.nth (System.npmus system) device in
      Pm.Npmu.decay d ~off ~bits;
      record run action
  | Torn_write { device } ->
      let d = List.nth (System.npmus system) device in
      let detail =
        match Pm.Npmu.tear_last_write d with
        | Some (off, len) -> Printf.sprintf "tore %d bytes at offset %d" len off
        | None -> "no write to tear"
      in
      Span.annotate sp ~key:"result" detail;
      record run ~detail action
  | Slow_device { device; factor; jitter } ->
      let d = List.nth (System.npmus system) device in
      Pm.Npmu.degrade d ~factor ~jitter ();
      record run action
  | Slow_rail { rail; factor } ->
      Servernet.Fabric.set_rail_slow (Node.fabric (System.node system)) rail factor;
      record run action
  | Slow_disk { volume; factor; jitter } ->
      Diskio.Volume.degrade (System.data_volumes system).(volume) ~factor ~jitter ();
      record run action
  | Restore_speed ->
      List.iter Pm.Npmu.restore_speed (System.npmus system);
      let fabric = Node.fabric (System.node system) in
      let rails = (Servernet.Fabric.config fabric).rails in
      for r = 0 to rails - 1 do
        Servernet.Fabric.set_rail_slow fabric r 1.0
      done;
      Array.iter Diskio.Volume.restore_speed (System.data_volumes system);
      record run action
  | Flash_crowd _ ->
      (* The arrival engine raises the load; this only marks the spike. *)
      record run action
  | Wan_partition ->
      (match run.r_cluster with Some c -> Cluster.partition c | None -> ());
      record run action
  | Wan_heal ->
      (match run.r_cluster with Some c -> Cluster.heal c | None -> ());
      record run action
  | Fence_check ->
      run.r_fence_checks <- run.r_fence_checks + 1;
      let detail =
        match System.fence_check system with
        | Ok () -> "stale-epoch write rejected"
        | Error e ->
            run.r_fence_failures <- run.r_fence_failures + 1;
            "FAILED: " ^ e
      in
      Span.annotate sp ~key:"result" detail;
      record run ~detail action
  | Pmm_resync -> (
      match System.pmm system with
      | None -> ()
      | Some pmm ->
          (* The copy streams every region through the manager CPU, so
             give it a whole-device worth of patience; retries ride out
             a takeover happening underneath the call.  Direction: copy
             away from the device that has lost power more often — while
             it was dark, writes degraded to the survivor, so the
             freshly-cycled device holds the stale image and resyncing
             from it would overwrite acknowledged data with stale bytes.
             Ties (no cycle on either side) keep the primary as source,
             the historical default. *)
          let from_primary =
            match System.npmus system with
            | prim :: mirr :: _ ->
                Pm.Npmu.power_cycles prim <= Pm.Npmu.power_cycles mirr
            | _ -> true
          in
          let from = Node.cpu (System.node system) 0 in
          let detail =
            match
              Rpc.call_retry (Pm.Pmm.server pmm) ~from ~attempts:3
                ~timeout:(Time.sec 120) ~span:sp
                (Pm.Pmm.Resync { from_primary })
            with
            | Ok (Pm.Pmm.R_resynced { bytes }) ->
                Printf.sprintf "copied %d bytes from %s" bytes
                  (if from_primary then "primary" else "mirror")
            | Ok (Pm.Pmm.R_error e) -> "failed: " ^ Pm.Pm_types.error_to_string e
            | Ok _ -> "failed: unexpected response"
            | Error _ -> "failed: manager unreachable"
          in
          Span.annotate sp ~key:"result" detail;
          record run ~detail action));
  finish ()

let start_run system ?cluster plan =
  let run =
    {
      r_system = system;
      r_cluster = cluster;
      r_injected = [];
      r_fence_checks = 0;
      r_fence_failures = 0;
      r_done = Ivar.create ();
    }
  in
  let sim = System.sim system in
  let start = Sim.now sim in
  let ordered = List.stable_sort (fun a b -> compare a.after b.after) plan in
  ignore
    (Sim.spawn sim ~name:"fault-scheduler" (fun () ->
         List.iter
           (fun ev ->
             Sim.wait_until (start + ev.after);
             inject run ev.action)
           ordered;
         Ivar.fill run.r_done ()));
  run

let launch system plan =
  (match validate system plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Faultplan.launch: " ^ msg));
  start_run system plan

let launch_overload system plan =
  (match validate_overload system plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Faultplan.launch_overload: " ^ msg));
  start_run system plan

let launch_cluster cluster ~node plan =
  (match validate_cluster cluster ~node plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Faultplan.launch_cluster: " ^ msg));
  start_run (Cluster.system cluster node) ~cluster plan
