open Pm

let header_size = 64

let ring_magic = 0x41445230 (* "ADR0" *)

type pm_state = {
  client : Pm_client.t;
  handle : Pm_client.handle;
  data_start : int;
  data_limit : int;
  mutable write_off : int;
  mutable wrapped : bool;
}

type kind =
  | Disk of {
      vol : Diskio.Volume.t;
      mirror : Diskio.Volume.t option;
      mutable shadow : (Audit.asn * Audit.record) list;  (** newest-first *)
    }
  | Pm of pm_state

type t = {
  kind : kind;
  mutable bytes : int;
  mutable ops : int;
  obs : Simkit.Obs.t option;
  write_stat : Simkit.Stat.t option;
  now : unit -> Simkit.Time.t;
}

let stat_of obs =
  match obs with
  | Some o -> Some (Simkit.Metrics.stat (Simkit.Obs.metrics o) "log.write_ns")
  | None -> None

let disk ?mirror ?obs vol =
  {
    kind = Disk { vol; mirror; shadow = [] };
    bytes = 0;
    ops = 0;
    obs;
    write_stat = stat_of obs;
    now = (fun () -> Simkit.Sim.now (Diskio.Volume.sim vol));
  }

let pm ?obs client handle =
  let info = Pm_client.info handle in
  let length = info.Pm_types.length in
  if length < 4096 then invalid_arg "Log_backend.pm: region too small";
  {
    kind =
      Pm { client; handle; data_start = header_size; data_limit = length; write_off = header_size; wrapped = false };
    bytes = 0;
    ops = 0;
    obs;
    write_stat = stat_of obs;
    now = (fun () -> Simkit.Sim.now (Nsk.Cpu.sim (Pm_client.cpu client)));
  }

let synchronous t = match t.kind with Disk _ -> false | Pm _ -> true

(* Frame a record with its ASN for the PM ring. *)
let encode_framed asn record =
  let enc = Codec.Enc.create () in
  Codec.Enc.u64 enc asn;
  Audit.encode enc record;
  Codec.Enc.to_bytes enc

let framed_size record = 8 + Audit.wire_size record

(* The header is itself a torn-write target (it is rewritten on every
   append), so it carries its own CRC: recovery that finds it invalid
   falls back to scanning the whole data area instead of trusting a
   garbled frontier. *)
let pm_header p =
  let enc = Codec.Enc.create () in
  Codec.Enc.u32 enc ring_magic;
  Codec.Enc.u32 enc p.write_off;
  Codec.Enc.u8 enc (if p.wrapped then 1 else 0);
  let body = Codec.Enc.to_bytes enc in
  let out = Codec.Enc.create () in
  Codec.Enc.u32 out ring_magic;
  Codec.Enc.u32 out p.write_off;
  Codec.Enc.u8 out (if p.wrapped then 1 else 0);
  Codec.Enc.u32 out (Int32.to_int (Crc32.bytes body) land 0xFFFFFFFF);
  Codec.Enc.to_bytes out

(* [Some frontier] when the header is intact, [None] when torn/decayed. *)
let parse_pm_header hdr =
  try
    let dec = Codec.Dec.of_bytes hdr in
    let m = Codec.Dec.u32 dec in
    let off = Codec.Dec.u32 dec in
    let _wrapped = Codec.Dec.u8 dec in
    let crc = Codec.Dec.u32 dec in
    if m <> ring_magic then None
    else if Int32.to_int (Crc32.sub hdr ~pos:0 ~len:9) land 0xFFFFFFFF <> crc then None
    else Some off
  with Codec.Dec.Truncated -> None

let write_records ?parent t records =
  let t0 = t.now () in
  let sp =
    match t.obs with
    | None -> Simkit.Span.null
    | Some o ->
        let sp = Simkit.Span.start (Simkit.Obs.spans o) ~track:"log" ?parent "log.write" in
        if not (Simkit.Span.is_null sp) then begin
          Simkit.Span.annotate sp ~key:"records" (string_of_int (List.length records));
          Simkit.Span.annotate sp ~key:"backend"
            (match t.kind with Disk _ -> "disk" | Pm _ -> "pm")
        end;
        sp
  in
  let result =
    match t.kind with
    | Disk d ->
        let len =
          List.fold_left (fun acc (_, r) -> acc + framed_size r) 0 records
        in
        t.bytes <- t.bytes + len;
        t.ops <- t.ops + 1;
        let append_mirrored () =
          match Diskio.Volume.append ~parent:sp d.vol ~len with
          | Error Diskio.Volume.Volume_down -> Error "audit volume down"
          | Ok () -> (
              (* Serial write-both: the mirror starts only after the
                 primary completes, so no torn record can exist on both. *)
              match d.mirror with
              | None -> Ok ()
              | Some m -> (
                  match Diskio.Volume.append ~parent:sp m ~len with
                  | Ok () -> Ok ()
                  | Error Diskio.Volume.Volume_down ->
                      (* Degraded but durable on the survivor. *)
                      Ok ()))
        in
        (match append_mirrored () with
        | Ok () ->
            d.shadow <- List.rev_append records d.shadow;
            Ok ()
        | Error e -> Error e)
    | Pm p ->
        let write_one (asn, record) =
          let data = encode_framed asn record in
          let len = Bytes.length data in
          if p.write_off + len > p.data_limit then begin
            (* Ring wrap: restart at the front of the data area.  A real
               trail would have archived the tail long before. *)
            p.write_off <- p.data_start;
            p.wrapped <- true
          end;
          match Pm_client.write ~span:sp p.client p.handle ~off:p.write_off ~data with
          | Ok () ->
              p.write_off <- p.write_off + len;
              t.bytes <- t.bytes + len;
              Ok ()
          | Error e -> Error (Pm_types.error_to_string e)
        in
        let rec write_all = function
          | [] -> Ok ()
          | r :: rest -> ( match write_one r with Ok () -> write_all rest | Error e -> Error e)
        in
        (match write_all records with
        | Error e -> Error e
        | Ok () -> (
            t.ops <- t.ops + 1;
            (* Persist the ring header so recovery knows the write frontier. *)
            match Pm_client.write ~span:sp p.client p.handle ~off:0 ~data:(pm_header p) with
            | Ok () -> Ok ()
            | Error e -> Error (Pm_types.error_to_string e)))
  in
  (match t.write_stat with
  | Some st -> Simkit.Stat.add_span st (t.now () - t0)
  | None -> ());
  (match t.obs with Some o -> Simkit.Span.finish (Simkit.Obs.spans o) sp | None -> ());
  result

let trim t ~through =
  match t.kind with
  | Disk d ->
      let keep, drop = List.partition (fun (asn, _) -> asn > through) d.shadow in
      d.shadow <- keep;
      List.length drop
  | Pm p ->
      (* The ring reclaims itself by wrapping; trimming just notes the
         archive point (a real system would also persist it). *)
      ignore p;
      0

let bytes_written t = t.bytes

let writes t = t.ops

let recovery_read t =
  match t.kind with
  | Disk d ->
      (* Stream the trail back from the audit volume. *)
      let total = t.bytes in
      let chunk = 256 * 1024 in
      let rec read_off off =
        if off >= total then Ok ()
        else
          let len = min chunk (total - off) in
          match Diskio.Volume.read d.vol ~block:(off / 512) ~len with
          | Ok () -> read_off (off + len)
          | Error Diskio.Volume.Volume_down -> Error "audit volume down"
      in
      (match read_off 0 with
      | Error e -> Error e
      | Ok () -> Ok (List.rev d.shadow))
  | Pm p -> (
      (* RDMA the ring header, then only the valid bytes behind the write
         frontier -- fine-grained state means no full-region scans.
         Recovery reads take the verified path when the client enables
         it: a decayed region is cross-checked against the mirror and
         read-repaired here, instead of silently truncating the replay
         at the first corrupt frame. *)
      let region_read =
        if Pm_client.verified_reads_enabled p.client then Pm_client.read_verified
        else fun c h ~off ~len -> Pm_client.read c h ~off ~len
      in
      match region_read p.client p.handle ~off:0 ~len:header_size with
      | Error e -> Error (Pm_types.error_to_string e)
      | Ok hdr ->
          let info = Pm_client.info p.handle in
          let routed_limit =
            (* A torn or decayed header cannot be trusted for the
               frontier: scan the whole data area and let the per-frame
               CRCs find the end of the valid prefix. *)
            match parse_pm_header hdr with
            | Some frontier -> min frontier info.Pm_types.length
            | None -> info.Pm_types.length
          in
          (* The routed header can also be STALE: appends that landed
             while this device was dark advanced only the mirror's
             frontier, and once the device powers back on its own
             header parses clean at the old offset.  Read the mirror's
             header too and scan out to the further of the two — the
             tail past the routed frontier exists only on the mirror. *)
          let mirror_limit =
            match
              Pm_client.read_device p.client p.handle ~mirror:true ~off:0
                ~len:header_size
            with
            | Error _ -> 0
            | Ok mhdr -> (
                match parse_pm_header mhdr with
                | Some frontier -> min frontier info.Pm_types.length
                | None -> 0)
          in
          let limit = max routed_limit mirror_limit in
          if limit <= header_size then Ok []
          else begin
            let chunk = 64 * 1024 in
            let buf = Bytes.create limit in
            Bytes.blit hdr 0 buf 0 header_size;
            let rec fetch off =
              if off >= limit then Ok ()
              else if off >= routed_limit then begin
                (* Mirror-only tail. *)
                let len = min chunk (limit - off) in
                match
                  Pm_client.read_device p.client p.handle ~mirror:true ~off ~len
                with
                | Ok data ->
                    Bytes.blit data 0 buf off len;
                    fetch (off + len)
                | Error e -> Error (Pm_types.error_to_string e)
              end
              else
                let len = min chunk (min routed_limit limit - off) in
                match region_read p.client p.handle ~off ~len with
                | Ok data ->
                    Bytes.blit data 0 buf off len;
                    fetch (off + len)
                | Error e -> Error (Pm_types.error_to_string e)
            in
            match fetch header_size with
            | Error e -> Error e
            | Ok () -> (
                let parse_from start =
                  let out = ref [] in
                  let pos = ref start in
                  let fail = ref None in
                  let keep_going = ref true in
                  while !keep_going && !pos < limit do
                    match
                      let adec = Codec.Dec.of_sub buf ~pos:!pos ~len:8 in
                      let asn = Codec.Dec.u64 adec in
                      (asn, Audit.decode buf ~pos:(!pos + 8))
                    with
                    | asn, Some (record, next) ->
                        out := (asn, record) :: !out;
                        pos := next
                    | _, None ->
                        fail := Some !pos;
                        keep_going := false
                    | exception Codec.Dec.Truncated ->
                        fail := Some !pos;
                        keep_going := false
                  done;
                  (List.rev !out, !fail)
                in
                let records, fail = parse_from header_size in
                match fail with
                | Some bad when Pm_client.verified_reads_enabled p.client -> (
                    (* A frame that fails its CRC mid-trail may be a store
                       torn on this copy only: every record was written to
                       both mirrors before the commit acked, so the other
                       copy still holds it intact.  Re-fetch the rest of
                       the area from the mirror and keep parsing; if the
                       mirror fails at the same spot it is a genuine torn
                       tail and the replay truncates there. *)
                    match
                      Pm_client.read_device p.client p.handle ~mirror:true ~off:bad
                        ~len:(limit - bad)
                    with
                    | Ok mdata ->
                        Bytes.blit mdata 0 buf bad (limit - bad);
                        let more, _ = parse_from bad in
                        Ok (records @ more)
                    | Error _ -> Ok records)
                | _ -> Ok records)
          end)
