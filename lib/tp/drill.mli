open Simkit

(** Availability/durability drill harness.

    A drill builds a fresh system, runs the hot-stock insert mix while a
    {!Faultplan.t} fires against it, then crashes the node (wipes every
    DP2 image), runs {!Recovery.run}, and audits durability: every
    transaction the client saw acknowledged must be present after
    recovery.  Acknowledged-but-lost rows are the one unforgivable
    failure ({!report.lost_rows}); transactions that visibly failed
    during the faults are availability loss, counted separately.

    The driver is deliberately fault-tolerant where
    {!Workloads.Hot_stock} is strict: it retries [begin] across
    takeovers and treats commit errors as data, because a drill's
    subject is the system's behaviour under faults, not the driver's.

    Everything is derived from the simulation seed, so a drill replays
    bit-for-bit: same seed, same plan, same report. *)

type params = {
  drivers : int;
  records_per_driver : int;
  record_bytes : int;
  inserts_per_txn : int;
  settle : Time.span;
      (** quiet period after the load and the plan finish, before the
          crash — lets lock-release and checkpoint tails drain *)
  begin_retries : int;
      (** driver-side retries of [begin] across a monitor takeover *)
}

val default_params : params
(** 2 drivers x 400 records, 4 KiB rows, boxcar 8, 500 ms settle. *)

val cluster_params : params
(** Cluster-drill sizing: 2 drivers x 60 records, 1 KiB rows, boxcar 4 —
    every insert crosses the interconnect and every commit runs
    two-phase, so the volume is kept small. *)

type availability = {
  adp_takeovers : int;
  dp2_takeovers : int;
  tmf_takeovers : int;
  pmm_takeovers : int;
  outage : Time.span;  (** cumulative headless time across all pairs *)
  degraded_writes : int;  (** PM writes that reached one device only *)
  pm_write_retries : int;  (** transient PM data-path errors retried *)
  packet_retries : int;  (** fabric CRC retransmissions *)
}

(** The storage-integrity audit a PM-mode drill appends to its report:
    what silent corruption was injected, which defense caught it, and
    whether any divergence survived recovery unaccounted for. *)
type integrity = {
  decay_injected : int;  (** media-decay events, including crash decay *)
  torn_injected : int;  (** torn-store events scheduled *)
  scrub_chunks : int;  (** chunks the scrubber scanned in total *)
  scrub_repairs : int;  (** divergent chunks the scrubber repaired *)
  scrub_quarantined : int;  (** chunks it quarantined as unarbitratable *)
  read_repairs : int;  (** divergent chunks verified reads repaired *)
  verify_unrepaired : int;  (** divergence verified reads could not fix *)
  unrepaired_divergence : int;
      (** mirrored chunks still divergent after recovery, excluding
          quarantined ones — silent corruption nothing caught: must
          be 0 *)
}

type report = {
  mode : System.log_mode;
  seed : int64;
  elapsed : Time.span;  (** load phase duration *)
  faults : (Time.t * string) list;  (** injection log, oldest first *)
  attempted_txns : int;
  committed : int;  (** acknowledged commits — the durability contract *)
  failed_txns : int;  (** begins or commits the client saw fail *)
  acked_rows : int;  (** rows inside acknowledged transactions *)
  recovered_rows : int;  (** rows recovery rebuilt *)
  lost_rows : int;  (** acknowledged rows missing after recovery: must be 0 *)
  in_doubt_after : int;
      (** prepared branches still undecided after recovery: must be 0 *)
  orphaned_locks : int;  (** locks still held after recovery: must be 0 *)
  fence_checks : int;  (** epoch-fence probes executed (load + recovery) *)
  fence_failures : int;
      (** probes whose stale write was accepted: must be 0 *)
  response : Stat.summary;  (** response times of acknowledged commits *)
  availability : availability;
  recovery : Recovery.report;
  integrity : integrity option;
      (** present in PM mode: the post-recovery full-content audit of
          both mirrors ({!Pm.Pmm.divergent_chunks}) plus the repair
          counters *)
  timeline : Timeseries.t option;
      (** continuous telemetry over the load phase when [sample_interval]
          was given: cumulative [drill.committed]/[drill.failed] gauges
          plus every layer probe, with fault injections as marks — the
          event-aligned availability overlay *)
  flight : Flightrec.t option;
      (** the armed flight recorder when [flight] was given: the bounded
          ring of recent spans plus every fault mark, already dumped to
          the given path if the drill's gate failed *)
}

val zero_loss : report -> bool
(** [lost_rows = 0] — the invariant every drill asserts. *)

val integrity_clean : report -> bool
(** The corruption drill's invariant: {!zero_loss} {e and} an integrity
    audit showing zero unrepaired divergence.  [false] when the report
    has no integrity section (disk mode). *)

val standard_plan : System.log_mode -> Faultplan.t
(** The default schedule.  PM mode: PMM primary kill, a mirror-NPMU
    power cycle, a rail flap, a CRC noise burst, then a mirror resync.
    Disk mode: ADP, DP2 and TMF primary kills plus the rail flap and
    noise burst.  Offsets assume {!default_params}-scale load. *)

val partition_plan : Faultplan.t
(** The cluster partition schedule: sever the inter-node link mid-2PC,
    kill the coordinator node's monitor while the link is down, heal,
    take over the PM manager (bumping the volume epoch), then verify the
    epoch fence is armed.  Offsets assume {!cluster_params}-scale load;
    cluster-scoped ({!run_cluster} / {!Faultplan.launch_cluster})
    only. *)

val corruption_config : System.config
(** {!System.pm_config} armed for the corruption drill: 2 MiB trail
    regions, the background scrubber on a tight cadence, and verified
    reads on every PM client. *)

val corruption_region_bytes : int
(** Trail region size under {!corruption_config} (2 MiB). *)

val corruption_trail_base : int -> int
(** Device byte offset where trail region [i] starts under
    {!corruption_config}'s first-fit layout — where a decay or torn
    store must land to hit written frames.  The explorer aims its
    media faults with this. *)

val corruption_plan : Faultplan.t
(** The silent-corruption schedule: mirror and primary media decay plus
    torn stores mid-load (landing in scrubber-unarbitratable active
    chunks, exercising quarantine and mirror salvage), then post-load
    decay in settled chunks the scrubber must catch and repair.
    Offsets assume {!default_params}-scale load under
    {!corruption_config}. *)

val gray_config : System.config
(** {!System.pm_config} armed for the gray-failure drill: 2 MiB trail
    regions, the PMM mirror-health monitor, client latency-health
    tracking (150 us SLO budget), hedged reads, and adaptive data-path
    backoff. *)

val gray_no_defense_config : System.config
(** {!gray_config} with every fail-slow defense off — the negative
    control platform. *)

val gray_params : params
(** {!default_params} scaled to 600 commits, so the detection window's
    slow commits stay below the p99 index in a defended run. *)

val gray_plan : Faultplan.t
(** The staged fail-slow schedule: the mirror NPMU degrades 200x
    mid-load, then a rail congests 2x and a data spindle drags 3x, then
    everything restores — so one run proves detection, demotion, bounded
    latency, and re-admission.  Offsets assume {!gray_params}-scale load
    under {!gray_config}. *)

val plan_names : System.log_mode -> string list
(** The fault-schedule names [odsbench drill --plan] accepts for a
    mode, canonical first. *)

val cluster_plan_names : string list

val run :
  ?seed:int64 ->
  ?config:System.config ->
  ?obs:Obs.t ->
  ?prof:Prof.t ->
  ?sample_interval:Time.span ->
  ?params:params ->
  ?crash_decay:(int * int * int) list ->
  ?horizon:Time.span ->
  ?recovery_plan:Faultplan.t ->
  ?inspect:(System.t -> unit) ->
  ?flight:string ->
  ?gate:(report -> bool) ->
  mode:System.log_mode ->
  plan:Faultplan.t ->
  unit ->
  (report, string) result
(** Owns its simulation; safe to call outside process context.  [Error]
    carries a recovery or plan-validation failure.  [prof] is installed
    on the drill's simulation for the whole run (see {!Simkit.Prof}).
    [sample_interval] (requires [obs], else [Invalid_argument]) records
    a telemetry timeline into {!report.timeline}.  Each [crash_decay]
    [(device, off, bits)] flips bits on that NPMU at the crash itself —
    after the scrubber is stopped, before recovery — so only a verified
    read can catch it; entries with out-of-range device indices are
    ignored.  [inspect] runs against the live system after recovery
    succeeds, before the simulation is torn down — the hook gray drills
    use to harvest counters the report does not carry.

    [horizon] is forwarded to {!Faultplan.validate}: events offset past
    it are rejected instead of silently never firing.  [recovery_plan]
    is a second fault schedule whose offsets are relative to the start
    of recovery — it is launched the instant {!Recovery.run} begins, so
    its events land while replay and resolution are in flight, and it
    is awaited (and folded into {!report.faults} and the fence
    counters) before the durability audit runs.

    [flight] arms a {!Simkit.Flightrec} on the drill's observability
    context (growing a private one if no [obs] was passed, and raising
    the global telemetry level to spans): recent spans and every fault
    injection are ring-buffered, and whenever [gate] (default
    {!zero_loss}) rejects the report — or the drill errors outright —
    the black box dumps itself as JSON to that path. *)

val run_corruption :
  ?seed:int64 ->
  ?obs:Obs.t ->
  ?sample_interval:Time.span ->
  ?params:params ->
  ?defenses:bool ->
  ?flight:string ->
  unit ->
  (report, string) result
(** The end-to-end storage-integrity drill: {!run} under
    {!corruption_config} / {!corruption_plan} with crash decay, PM mode.
    A clean run satisfies {!integrity_clean} with [scrub_repairs >= 1]
    and [read_repairs >= 1] — both defense layers proven live.
    [~defenses:false] is the negative control: same faults with the
    scrubber and verified reads disabled, which loses rows and leaves
    divergence behind — evidence the injection is real, and what silent
    corruption costs without the defenses. *)

(** Result of a gray-failure drill: the healthy-baseline and degraded
    runs side by side, plus the demotion/re-admission evidence. *)
type gray_report = {
  g_seed : int64;
  g_defended : bool;
  g_healthy : report;  (** same platform and seed, empty fault plan *)
  g_degraded : report;  (** under {!gray_plan} *)
  g_p99_ratio : float;  (** degraded p99 commit latency / healthy p99 *)
  g_p99_limit : float;  (** the gate the ratio is judged against *)
  g_demotions : int;  (** slow-mirror demotions the PMM performed *)
  g_readmissions : int;  (** demoted mirrors resynced back in *)
  g_mirror_active : bool;  (** mirror re-admitted by the end *)
  g_monitor_probes : int;
  g_slow_suspects : int;  (** client-side SLO-breach transitions *)
  g_hedged_reads : int;
  g_hedge_wins : int;
  g_single_copy_writes : int;
      (** writes under the degraded-durability contract *)
}

val gray_pass : gray_report -> bool
(** The acceptance gate: zero acked-but-lost rows in both runs and the
    p99 ratio within [g_p99_limit]; a defended run must additionally
    show at least one demotion, one re-admission, the mirror active
    again, and at least one client-side slow-suspect transition.  An
    undefended run fails the ratio gate — the negative control. *)

val run_gray :
  ?seed:int64 ->
  ?obs:Obs.t ->
  ?sample_interval:Time.span ->
  ?params:params ->
  ?defenses:bool ->
  ?p99_limit:float ->
  ?flight:string ->
  unit ->
  (gray_report, string) result
(** The end-to-end gray-failure drill: a healthy baseline run (same
    seed, no faults), then {!gray_plan} under {!gray_config} — or
    {!gray_no_defense_config} with [~defenses:false], the negative
    control whose commit p99 collapses to the slow mirror's latency.
    [obs] / [sample_interval] / [flight] instrument the degraded run
    only; the recorder also dumps when {!gray_pass} rejects the combined
    report (the p99 gate lives here, not in {!run}). *)

(** {1 Overload drill}

    The metastable-failure drill: open-loop flash-crowd load against an
    impatient client population, defended by admission control,
    deadlines, retry budgets and breakers — or undefended, the negative
    control that must stay collapsed after the spike ends. *)

type overload_params = {
  ov_record_bytes : int;
  ov_inserts_per_txn : int;
  ov_base_rate : float;  (** offered txns/s before and after the spike *)
  ov_spike : float;  (** spike multiple of the base rate *)
  ov_warmup : Time.span;
  ov_spike_for : Time.span;
  ov_cooldown : Time.span;
  ov_window : Time.span;  (** goodput sampling window *)
  ov_settle : Time.span;
  ov_client_retries : int;
      (** driver-level whole-transaction retries of a failed (not
          rejected) attempt *)
  ov_spike_floor : float;
      (** gate: spike goodput ≥ floor × warmup goodput *)
  ov_recovery_frac : float;
      (** gate: recovered once a cooldown window's rate is back to this
          fraction of the warmup rate *)
  ov_recovery_limit : Time.span;
      (** gate: recovery must happen within this span of the spike end *)
}

val overload_params : overload_params
(** Base 400 txns/s (~0.6x measured open-loop capacity), 5x spike for
    400 ms, 1.5 s of cooldown observation in 100 ms windows. *)

val overload_config : System.config
(** {!System.pm_config} armed with every overload defense: TMF
    admission control, 150 ms transaction deadlines, budgeted client
    retries (12-token buckets), per-destination breakers — plus the
    300 ms client patience that is the storm's raw material. *)

val overload_no_defense_config : System.config
(** {!overload_config} with every defense off and the same impatient
    clients — the negative-control platform that goes metastable. *)

val overload_plan : overload_params -> Faultplan.t
(** The [Flash_crowd] marker event at the spike's offset; validated with
    {!Faultplan.validate_overload}. *)

val overload_schedule : overload_params -> Arrival.schedule
(** The open-loop flash-crowd schedule the drill offers. *)

type overload_report = {
  v_seed : int64;
  v_defended : bool;
  v_arrivals : int;  (** transactions the schedule offered *)
  v_committed : int;  (** client-acknowledged commits *)
  v_rejected : int;
      (** attempts refused by admission or breakers — backpressure,
          not loss *)
  v_failed : int;  (** attempts that exhausted their retries *)
  v_timeouts : int;  (** client calls abandoned after [op_timeout] *)
  v_admitted : int;  (** TMF admission verdicts *)
  v_tmf_rejected : int;
  v_tmf_expired : int;  (** commits shed server-side past deadline *)
  v_adp_shed : int;  (** flush waits shed past deadline *)
  v_retry_denied : int;  (** resends the token buckets refused *)
  v_breaker_trips : int;
  v_acked_rows : int;
  v_lost_rows : int;  (** acked rows missing after recovery: must be 0 *)
  v_elapsed : Time.span;  (** schedule plus straggler drain *)
  v_warmup_goodput : float;  (** committed/s during warmup *)
  v_spike_goodput : float;
  v_cooldown_goodput : float;
  v_recovery_time : Time.span option;
      (** spike end to the first cooldown window back at the recovery
          fraction of warmup goodput; [None] = stayed collapsed while
          load was still arriving — metastability *)
  v_spike_floor : float;
  v_recovery_frac : float;
  v_recovery_limit : Time.span;
  v_goodput : (Time.t * int) list;
      (** commits per window (window end, count), oldest first — the
          goodput-over-time series E17 tabulates *)
  v_response : Stat.summary;
  v_faults : (Time.t * string) list;
  v_recovery : Recovery.report;
  v_timeline : Timeseries.t option;
  v_flight : Flightrec.t option;
}

val overload_pass : overload_report -> bool
(** The acceptance gate: zero acked-lost rows, spike goodput at or above
    the floor, recovery within the bound, and — defended runs only —
    at least one rejection (proof the admission path actually fired).
    The undefended run fails the goodput/recovery gates: it stays
    collapsed after the load drops, which is the point. *)

val run_overload :
  ?seed:int64 ->
  ?obs:Obs.t ->
  ?sample_interval:Time.span ->
  ?params:overload_params ->
  ?defenses:bool ->
  ?horizon:Time.span ->
  ?flight:string ->
  unit ->
  (overload_report, string) result
(** Run the flash-crowd schedule open-loop against a fresh system, drain
    the stragglers, crash, recover, and audit durability plus the
    goodput gates.  Owns its simulation.  [~defenses:false] runs the
    same schedule and seed on the undefended platform.  [flight] dumps
    the black box when {!overload_pass} rejects the report. *)

(** Result of a cluster drill: the per-node durability audit plus the
    partition-specific invariants. *)
type cluster_report = {
  c_seed : int64;
  c_nodes : int;
  c_elapsed : Time.span;  (** load phase duration *)
  c_faults : (Time.t * string) list;
  c_attempted : int;
  c_committed : int;  (** acknowledged distributed commits *)
  c_failed : int;
  c_acked_rows : int;
  c_lost_rows : int;  (** acked rows missing after recovery: must be 0 *)
  c_in_doubt_before : int;
      (** prepared-but-undecided branches entering recovery, across all
          nodes — the partition's wreckage *)
  c_resolved_commit : int;  (** in-doubt branches committed by resolution *)
  c_resolved_abort : int;  (** in-doubt branches aborted by resolution *)
  c_in_doubt_after : int;  (** branches still undecided after: must be 0 *)
  c_orphaned_locks : int;
      (** locks still held anywhere after recovery settles: must be 0 *)
  c_fence_checks : int;  (** epoch-fence probes executed *)
  c_fence_failures : int;  (** probes whose stale write was accepted: must be 0 *)
  c_fenced_writes : int;
      (** stale-epoch writes the devices rejected (includes the probes) *)
  c_recoveries : Recovery.report list;  (** per node, in node order *)
  c_response : Stat.summary;
}

val cluster_zero_loss : cluster_report -> bool
(** The cluster drill's invariant bundle: zero acked-but-lost rows, an
    empty in-doubt window, no orphaned locks, and no fence failures. *)

val run_cluster :
  ?seed:int64 ->
  ?nodes:int ->
  ?config:System.config ->
  ?obs:Obs.t ->
  ?params:params ->
  ?horizon:Time.span ->
  ?recovery_plan:Faultplan.t ->
  ?flight:string ->
  plan:Faultplan.t ->
  unit ->
  (cluster_report, string) result
(** A partition drill: build an [nodes]-node PM-mode cluster, run the
    distributed hot-stock mix (every transaction spreads rows across
    nodes and commits two-phase) while the plan fires, crash every
    node's DP2 images, run {!Cluster.recover} — which resolves each
    node's in-doubt branches against their coordinators — and audit the
    {!cluster_zero_loss} invariants.  Always PM mode (the fence probe
    requires it).  Owns its simulation.  [horizon] and [recovery_plan]
    behave as in {!run}: past-horizon events are rejected at
    validation, and the recovery plan races {!Cluster.recover}. *)

(** {1 The shared invariant oracle}

    One statement of the platform's safety invariants, applied
    uniformly to every drill family.  Each invariant is a named check
    with a pass flag and a human-readable detail; a verdict is the
    conjunction.  {!gray_pass}, {!overload_pass} and
    {!cluster_zero_loss} are defined as [pass] of the corresponding
    verdict, and {!Explorer} judges every generated schedule with the
    same verdicts — so an explorer violation is exactly a drill-gate
    failure, never a third opinion. *)
module Oracle : sig
  type check = {
    ck_name : string;  (** stable identifier, e.g. ["acked_durable"] *)
    ck_ok : bool;
    ck_detail : string;  (** human-readable evidence either way *)
  }

  type verdict = { ok : bool; checks : check list }

  val check : string -> bool -> string -> check

  val make : check list -> verdict
  (** [ok] is the conjunction of the checks. *)

  val pass : verdict -> bool

  val failures : verdict -> check list

  val summary : verdict -> string
  (** One line: ["all invariants hold"] or the failed checks' details,
      [";"]-joined — the flight-recorder mark a failing drill leaves. *)

  val to_json : verdict -> Json.t
  (** [{"pass": bool, "checks": [{"name", "ok", "detail"}, ...]}] — the
      uniform schema every drill JSON report and explorer repro
      embeds. *)

  val of_report : ?max_outage:Time.span -> report -> verdict
  (** Single-node invariants: zero acked-but-lost rows, in-doubt window
      drained, no orphaned locks, no fence failures, integrity clean
      (trivially true when the report carries no integrity audit —
      unlike the stricter {!integrity_clean} corruption gate), plus
      bounded unavailability when [max_outage] is given. *)

  val of_cluster : cluster_report -> verdict
  (** The {!cluster_zero_loss} conjunction, as named checks. *)

  val of_gray : gray_report -> verdict
  (** The {!gray_pass} conjunction: durability both runs, bounded p99
      ratio, and (defended runs) the demotion/re-admission evidence. *)

  val of_overload : overload_report -> verdict
  (** The {!overload_pass} conjunction: durability, spike-goodput
      floor, bounded recovery, and (defended runs) admission
      evidence. *)
end
