open Simkit

(** Availability/durability drill harness.

    A drill builds a fresh system, runs the hot-stock insert mix while a
    {!Faultplan.t} fires against it, then crashes the node (wipes every
    DP2 image), runs {!Recovery.run}, and audits durability: every
    transaction the client saw acknowledged must be present after
    recovery.  Acknowledged-but-lost rows are the one unforgivable
    failure ({!report.lost_rows}); transactions that visibly failed
    during the faults are availability loss, counted separately.

    The driver is deliberately fault-tolerant where
    {!Workloads.Hot_stock} is strict: it retries [begin] across
    takeovers and treats commit errors as data, because a drill's
    subject is the system's behaviour under faults, not the driver's.

    Everything is derived from the simulation seed, so a drill replays
    bit-for-bit: same seed, same plan, same report. *)

type params = {
  drivers : int;
  records_per_driver : int;
  record_bytes : int;
  inserts_per_txn : int;
  settle : Time.span;
      (** quiet period after the load and the plan finish, before the
          crash — lets lock-release and checkpoint tails drain *)
  begin_retries : int;
      (** driver-side retries of [begin] across a monitor takeover *)
}

val default_params : params
(** 2 drivers x 400 records, 4 KiB rows, boxcar 8, 500 ms settle. *)

type availability = {
  adp_takeovers : int;
  dp2_takeovers : int;
  tmf_takeovers : int;
  pmm_takeovers : int;
  outage : Time.span;  (** cumulative headless time across all pairs *)
  degraded_writes : int;  (** PM writes that reached one device only *)
  pm_write_retries : int;  (** transient PM data-path errors retried *)
  packet_retries : int;  (** fabric CRC retransmissions *)
}

type report = {
  mode : System.log_mode;
  seed : int64;
  elapsed : Time.span;  (** load phase duration *)
  faults : (Time.t * string) list;  (** injection log, oldest first *)
  attempted_txns : int;
  committed : int;  (** acknowledged commits — the durability contract *)
  failed_txns : int;  (** begins or commits the client saw fail *)
  acked_rows : int;  (** rows inside acknowledged transactions *)
  recovered_rows : int;  (** rows recovery rebuilt *)
  lost_rows : int;  (** acknowledged rows missing after recovery: must be 0 *)
  response : Stat.summary;  (** response times of acknowledged commits *)
  availability : availability;
  recovery : Recovery.report;
  timeline : Timeseries.t option;
      (** continuous telemetry over the load phase when [sample_interval]
          was given: cumulative [drill.committed]/[drill.failed] gauges
          plus every layer probe, with fault injections as marks — the
          event-aligned availability overlay *)
}

val zero_loss : report -> bool
(** [lost_rows = 0] — the invariant every drill asserts. *)

val standard_plan : System.log_mode -> Faultplan.t
(** The default schedule.  PM mode: PMM primary kill, a mirror-NPMU
    power cycle, a rail flap, a CRC noise burst, then a mirror resync.
    Disk mode: ADP, DP2 and TMF primary kills plus the rail flap and
    noise burst.  Offsets assume {!default_params}-scale load. *)

val run :
  ?seed:int64 ->
  ?config:System.config ->
  ?obs:Obs.t ->
  ?sample_interval:Time.span ->
  ?params:params ->
  mode:System.log_mode ->
  plan:Faultplan.t ->
  unit ->
  (report, string) result
(** Owns its simulation; safe to call outside process context.  [Error]
    carries a recovery or plan-validation failure.  [sample_interval]
    (requires [obs], else [Invalid_argument]) records a telemetry
    timeline into {!report.timeline}. *)
