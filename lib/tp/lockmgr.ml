open Simkit

type key = int * int

type mode = Shared | Exclusive

type error = Lock_timeout

type entry = {
  mutable lock_holders : (Audit.txn_id * mode) list;
  mutable waiters : (unit -> unit) list;  (** wakers; woken en masse on release *)
}

type t = {
  sim : Sim.t;
  timeout : Time.span;
  table : (key, entry) Hashtbl.t;
  by_owner : (Audit.txn_id, key list ref) Hashtbl.t;
  (* Each holder's most recent acquire span, so a blocked waiter can
     record a causal link to the transaction it waited behind.  Entries
     live exactly as long as the owner's locks (cleared in
     [release_all]); only span-carrying acquires register. *)
  owner_spans : (Audit.txn_id, Span.span) Hashtbl.t;
  mutable blocked : int;
  mutable conflict_count : int;
  mutable timed_out : int;
  wait_stat : Stat.t;
}

let create sim ?(timeout = Time.sec 5) ?obs () =
  let t =
    {
      sim;
      timeout;
      table = Hashtbl.create 256;
      by_owner = Hashtbl.create 64;
      owner_spans = Hashtbl.create 64;
      blocked = 0;
      conflict_count = 0;
      timed_out = 0;
      wait_stat =
        (match obs with
        | Some o -> Metrics.stat (Obs.metrics o) "lock.wait_ns"
        | None -> Stat.create ~name:"lock.wait_ns" ());
    }
  in
  (match obs with
  | Some o ->
      let m = Obs.metrics o in
      Metrics.register_gauge m "lock.conflicts" (fun () ->
          float_of_int t.conflict_count);
      Metrics.register_gauge m "lock.timeouts" (fun () -> float_of_int t.timed_out);
      Metrics.register_gauge m "lock.waiting" (fun () -> float_of_int t.blocked);
      Metrics.register_gauge m "lock.held" (fun () ->
          Hashtbl.fold
            (fun _ e acc -> acc + List.length e.lock_holders)
            t.table 0
          |> float_of_int)
  | None -> ());
  t

let entry t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
      let e = { lock_holders = []; waiters = [] } in
      Hashtbl.replace t.table key e;
      e

let compatible entry ~owner mode =
  match mode with
  | Shared ->
      List.for_all (fun (o, m) -> o = owner || m = Shared) entry.lock_holders
  | Exclusive -> List.for_all (fun (o, _) -> o = owner) entry.lock_holders

let note_owned t ~owner key =
  let keys =
    match Hashtbl.find_opt t.by_owner owner with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.by_owner owner r;
        r
  in
  if not (List.mem key !keys) then keys := key :: !keys

let grant t e ~owner ~key mode =
  (* Upgrade replaces the existing hold; re-acquire of a weaker mode is a
     no-op on the stronger hold. *)
  let others = List.filter (fun (o, _) -> o <> owner) e.lock_holders in
  let mine = List.filter (fun (o, _) -> o = owner) e.lock_holders in
  let merged =
    match (mine, mode) with
    | [], m -> (owner, m) :: others
    | (_, Exclusive) :: _, _ -> e.lock_holders
    | (_, Shared) :: _, Exclusive -> (owner, Exclusive) :: others
    | (_, Shared) :: _, Shared -> e.lock_holders
  in
  e.lock_holders <- merged;
  note_owned t ~owner key

let acquire t ?(span = Span.null) ?(deadline = 0) ~owner ~key mode =
  let e = entry t key in
  let t0 = Sim.now t.sim in
  (* A transaction deadline tightens (never widens) the lock timeout:
     a doomed waiter gives up and releases the serve slot instead of
     camping on the queue for the full timeout. *)
  let deadline =
    let timeout_at = t0 + t.timeout in
    if deadline > 0 then min timeout_at deadline else timeout_at
  in
  let contended = not (compatible e ~owner mode) in
  if contended then begin
    t.conflict_count <- t.conflict_count + 1;
    (* Cross-transaction causality: the waiter's span links to each
       current holder's registered span, so a trace shows *whose* work
       this transaction queued behind. *)
    if not (Span.is_null span) then
      List.iter
        (fun (holder, _) ->
          match Hashtbl.find_opt t.owner_spans holder with
          | Some hsp when holder <> owner -> Span.link span hsp
          | _ -> ())
        e.lock_holders
  end;
  let record r =
    (* Only contended acquires contribute to the wait stat, so the mean
       reflects time actually spent blocked, not the fast-path volume. *)
    if contended then begin
      let waited = Sim.now t.sim - t0 in
      Stat.add_span t.wait_stat waited;
      (* The span opened just before the acquire, so the whole blocked
         stretch is a queue prefix of its recorded interval. *)
      Span.mark_queue span waited
    end;
    r
  in
  let rec attempt () =
    if compatible e ~owner mode then begin
      grant t e ~owner ~key mode;
      if not (Span.is_null span) then Hashtbl.replace t.owner_spans owner span;
      record (Ok ())
    end
    else if Sim.now t.sim >= deadline then begin
      t.timed_out <- t.timed_out + 1;
      record (Error Lock_timeout)
    end
    else begin
      t.blocked <- t.blocked + 1;
      Sim.suspend (fun waker ->
          e.waiters <- waker :: e.waiters;
          Sim.at_time t.sim ~time:deadline waker);
      t.blocked <- t.blocked - 1;
      attempt ()
    end
  in
  attempt ()

let wake_waiters e =
  let ws = e.waiters in
  e.waiters <- [];
  List.iter (fun w -> w ()) ws

let release_all t ~owner =
  Hashtbl.remove t.owner_spans owner;
  match Hashtbl.find_opt t.by_owner owner with
  | None -> ()
  | Some keys ->
      Hashtbl.remove t.by_owner owner;
      let release_key key =
        match Hashtbl.find_opt t.table key with
        | None -> ()
        | Some e ->
            e.lock_holders <- List.filter (fun (o, _) -> o <> owner) e.lock_holders;
            if e.lock_holders = [] && e.waiters = [] then Hashtbl.remove t.table key
            else wake_waiters e
      in
      List.iter release_key !keys

let holders t key =
  match Hashtbl.find_opt t.table key with Some e -> e.lock_holders | None -> []

let held_by t owner =
  match Hashtbl.find_opt t.by_owner owner with Some keys -> !keys | None -> []

let held_total t =
  Hashtbl.fold (fun _ keys acc -> acc + List.length !keys) t.by_owner 0

let waiting t = t.blocked

let conflicts t = t.conflict_count

let timeouts t = t.timed_out
