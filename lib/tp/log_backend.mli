open Pm

(** Durable sinks for the audit trail.

    [Disk] is the classic NonStop configuration: an audit volume written
    with synchronous sequential appends, costing a rotational miss per
    flush.  [Pm] is the paper's modification: records go to a persistent
    memory region by synchronous RDMA, so they are durable the moment the
    append returns — microseconds, not milliseconds.

    The PM trail is a real ring: framed records (prefixed with their ASN)
    are written into the region behind a small durable header, and
    {!recovery_read} parses them back out of the devices.  The disk trail
    carries sizes only (the disk model is timing-only), with the records
    shadowed in memory for recovery replay at disk-read speed. *)

type t

val disk : ?mirror:Diskio.Volume.t -> ?obs:Simkit.Obs.t -> Diskio.Volume.t -> t
(** With [mirror], every flush writes the primary volume and then the
    mirror {e serially} — the torn-write-safe discipline for logs: one
    complete copy exists at every instant.  With [obs], every
    {!write_records} feeds the shared [log.write_ns] stat and gets a span
    on track ["log"]. *)

val pm : ?obs:Simkit.Obs.t -> Pm_client.t -> Pm_client.handle -> t
(** The handle's region holds the ring; it must be at least 4 KiB. *)

val synchronous : t -> bool
(** [true] when an append is already durable (PM): the ADP can advance
    its durable ASN without a separate flush step, and need not
    checkpoint buffered records to its backup. *)

val write_records :
  ?parent:Simkit.Span.span -> t -> (Audit.asn * Audit.record) list -> (unit, string) result
(** Make these records durable.  Blocks the calling process for the
    device time: one sequential volume append (disk) or data+header RDMA
    writes (PM).  [parent] links the write's span under the caller's. *)

val bytes_written : t -> int

val writes : t -> int

val recovery_read : t -> ((Audit.asn * Audit.record) list, string) result
(** Re-read the durable trail, oldest first, paying the device read
    time.  What crash recovery replays.

    PM trails defend the replay against silent corruption: the ring
    header is CRC-framed, and if it comes back torn the frontier is
    discarded and the whole data area scanned (the per-frame CRCs find
    the valid prefix).  When the client enables [verified_reads], every
    recovery read cross-checks the mirror and read-repairs divergence,
    so a decayed region heals during replay instead of truncating it.
    Either way the parse stops at the first invalid frame — the
    torn-tail truncation contract. *)

val trim : t -> through:Audit.asn -> int
(** Archive the trail prefix through [through] (records up to and
    including that ASN are dropped from the replayable trail, as an
    audit-archiving job would move them to tape after a control point).
    Returns the number of records retired.  No device time: archiving
    runs off the critical path. *)
