open Simkit

type error = Txclient.error

type branch = { b_node : int; session : Txclient.t; txn : Txclient.txn }

type t = {
  cluster : Cluster.t;
  coordinator : int;
  cpu : int;
  mutable branch_list : branch list;  (** newest-first *)
}

let begin_dtx cluster ~coordinator ~cpu = { cluster; coordinator; cpu; branch_list = [] }

let find_branch t node = List.find_opt (fun b -> b.b_node = node) t.branch_list

let branch t node =
  match find_branch t node with
  | Some b -> Ok b
  | None -> (
      let session =
        Cluster.remote_session t.cluster ~from_node:t.coordinator ~target:node ~cpu:t.cpu
      in
      match Txclient.begin_txn session with
      | Error e -> Error e
      | Ok txn ->
          let b = { b_node = node; session; txn } in
          t.branch_list <- b :: t.branch_list;
          Ok b)

let insert t ~node ~file ~key ~len =
  match branch t node with
  | Error e -> Error e
  | Ok b -> Txclient.insert b.session b.txn ~file ~key ~len ()

let read t ~node ~file ~key =
  match branch t node with
  | Error e -> Error e
  | Ok b -> Txclient.read b.session b.txn ~file ~key

let branches t = List.sort compare (List.map (fun b -> b.b_node) t.branch_list)

(* Run [f] on every branch concurrently; collect the first error. *)
let parallel_each t f =
  match t.branch_list with
  | [] -> Ok ()
  | [ b ] -> f b
  | bs ->
      let sim = Cluster.system t.cluster t.coordinator |> System.sim in
      let gate = Gate.create (List.length bs) in
      let first_error = ref None in
      List.iter
        (fun b ->
          let (_ : Sim.pid) =
            Sim.spawn sim ~name:"dtx-branch" (fun () ->
                (match f b with
                | Ok () -> ()
                | Error e -> if !first_error = None then first_error := Some e);
                Gate.arrive gate)
          in
          ())
        bs;
      Gate.await gate;
      (match !first_error with None -> Ok () | Some e -> Error e)

let abort t =
  let result = parallel_each t (fun b -> Txclient.abort b.session b.txn) in
  t.branch_list <- [];
  result

let commit t =
  match t.branch_list with
  | [] -> Ok ()
  | [ b ] ->
      (* One branch: ordinary single-phase commit. *)
      t.branch_list <- [];
      Txclient.commit b.session b.txn
  | bs -> (
      (* The coordinator's branch is chosen before phase 1 so every
         prepared record can carry the global transaction identity —
         (coordinator node, coordinator branch txn) — the address an
         in-doubt resolver asks after a failure. *)
      let coord_branch =
        match List.find_opt (fun b -> b.b_node = t.coordinator) bs with
        | Some b -> b
        | None -> List.hd (List.rev bs)
      in
      let gtid = (coord_branch.b_node, Txclient.txn_id coord_branch.txn) in
      (* Phase 1: every branch prepares (parallel trail forces). *)
      match parallel_each t (fun b -> Txclient.prepare ~gtid b.session b.txn) with
      | Error e ->
          let (_ : (unit, error) result) =
            parallel_each t (fun b ->
                match Txclient.decide b.session b.txn ~commit:false with
                | Ok () -> Ok ()
                | Error _ ->
                    (* Branches that never prepared abort instead. *)
                    Txclient.abort b.session b.txn)
          in
          t.branch_list <- [];
          Error e
      | Ok () -> (
          (* Phase 2: the decision becomes durable on the coordinator's
             branch first — the global commit point — then propagates. *)
          match Txclient.decide coord_branch.session coord_branch.txn ~commit:true with
          | Error e ->
              t.branch_list <- [];
              Error e
          | Ok () ->
              let rest = List.filter (fun b -> b != coord_branch) bs in
              let result =
                List.fold_left
                  (fun acc b ->
                    match Txclient.decide b.session b.txn ~commit:true with
                    | Ok () -> acc
                    | Error e -> ( match acc with Ok () -> Error e | e -> e))
                  (Ok ()) rest
              in
              t.branch_list <- [];
              result))
