open Simkit
open Nsk

let call_retry server ~from ?req_bytes ?(attempts = 6) ?(timeout = Time.sec 1)
    ?(backoff = Time.ms 200) ?span req =
  let rec go n =
    match Msgsys.call server ~from ?req_bytes ~timeout ?span req with
    | Ok resp -> Ok resp
    | Error e -> if n <= 1 then Error e else (Sim.sleep backoff; go (n - 1))
  in
  go attempts
