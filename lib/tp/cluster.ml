open Simkit
open Nsk

type t = {
  systems : System.t array;
  wan : Time.span;
  mutable wan_up : bool;
  obs : Obs.t option;
}

let build sim ?(nodes = 2) ?(wan_latency = Time.us 100) ?obs config =
  if nodes < 1 then invalid_arg "Cluster.build: need at least one node";
  {
    (* One shared observability context across every node: a distributed
       transaction's spans land in a single collector, so its causal DAG
       crosses the interconnect intact. *)
    systems = Array.init nodes (fun _ -> System.build ?obs sim config);
    wan = wan_latency;
    wan_up = true;
    obs;
  }

let node_count t = Array.length t.systems

let system t i =
  if i < 0 || i >= Array.length t.systems then invalid_arg "Cluster.system: bad node";
  t.systems.(i)

let wan_latency t = t.wan

let partition t = t.wan_up <- false

let heal t = t.wan_up <- true

let wan_is_up t = t.wan_up

let local_session t ~node ~cpu = System.session (system t node) ~cpu

let remote_session t ~from_node ~target ~cpu =
  let home = system t from_node in
  let remote = system t target in
  let client_cpu = Node.cpu (System.node home) cpu in
  Txclient.create ~cpu:client_cpu
    ~tmf:(Tmf.server (System.tmf remote))
    ~dp2s:(System.dp2_servers remote)
    ~routing:(System.routing remote)
    ~wan_latency:(if from_node = target then 0 else t.wan)
    ~link:(fun () -> t.wan_up || from_node = target)
    ?obs:t.obs ()

let total_committed t =
  Array.fold_left (fun acc s -> acc + Tmf.committed (System.tmf s)) 0 t.systems

(* Cross-node in-doubt resolution: a branch on [node] asks the gtid's
   coordinator node what the global decision was.  The question travels
   over the interconnect like any other remote call, so it pays the link
   latency — and fails (presumed abort, status 0) if the partition has
   not healed. *)
let resolver t ~node gtid =
  match gtid with
  | None -> 0
  | Some (coord_node, coord_txn) ->
      if coord_node < 0 || coord_node >= Array.length t.systems then 0
      else
        let session = remote_session t ~from_node:node ~target:coord_node ~cpu:0 in
        (match Txclient.query_outcome session coord_txn with
        | Ok status -> status
        | Error _ -> 0)

let recover t =
  let rec each i acc =
    if i >= Array.length t.systems then Ok (List.rev acc)
    else
      match Recovery.run ~outcome_of:(resolver t ~node:i) t.systems.(i) with
      | Ok report -> each (i + 1) (report :: acc)
      | Error e -> Error (Printf.sprintf "node %d: %s" i e)
  in
  each 0 []
