open Simkit

(** Key-range lock manager for the database writers (paper §1.1).

    Shared/exclusive locks on [(file, key)] pairs with FIFO wait queues.
    Deadlocks are broken by timeout, the discipline classic transaction
    monitors used.  A transaction's locks are released together at
    commit/abort (strict two-phase locking). *)

type key = int * int
(** [(file, key)] *)

type mode = Shared | Exclusive

type error = Lock_timeout

type t

val create : Sim.t -> ?timeout:Time.span -> ?obs:Obs.t -> unit -> t
(** [timeout] defaults to 5 simulated seconds.  With [obs], contended
    acquires feed the shared [lock.wait_ns] stat and conflict/timeout
    totals are exported as gauges. *)

val acquire :
  t ->
  ?span:Span.span ->
  ?deadline:Time.t ->
  owner:Audit.txn_id ->
  key:key ->
  mode ->
  (unit, error) result
(** Block until granted (re-entrant; a Shared holder may upgrade to
    Exclusive if it is the only holder).  Process context only.  A
    positive [deadline] (absolute sim time) tightens the wait bound to
    [min (now + timeout) deadline], so a transaction that cannot make
    its deadline stops camping on the queue; [0] (the default) means
    the lock timeout alone governs.  With
    [span], a contended acquire records the blocked stretch as the
    span's queue prefix and links it to each current holder's registered
    span ({!Simkit.Span.link}) — the waiting transaction's causal edge
    to the one it queued behind; on grant the span is registered as this
    owner's, for future waiters, until {!release_all}. *)

val release_all : t -> owner:Audit.txn_id -> unit
(** Drop every lock the transaction holds and wake compatible waiters.
    Safe outside process context. *)

val holders : t -> key -> (Audit.txn_id * mode) list

val held_by : t -> Audit.txn_id -> key list

val held_total : t -> int
(** Locks currently held across all owners — zero once every
    transaction has finished or been resolved (the drills' no-orphaned-
    locks invariant). *)

val waiting : t -> int
(** Transactions currently blocked, across all keys. *)

val conflicts : t -> int
(** Cumulative count of acquires that had to wait at least once. *)

val timeouts : t -> int
