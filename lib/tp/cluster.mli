open Simkit

(** Multi-node clusters (paper §1.3: servers that scale out attach to "a
    high-bandwidth, low-latency, message-passing interconnection
    network").

    A cluster is N complete, shared-nothing nodes — each with its own
    CPUs, ServerNet fabric, volumes, and (in PM mode) NPMU pair — joined
    by an inter-node link.  Data is partitioned by node; an application
    reaches a remote node's data tier through a session that pays the
    link latency both ways on every message. *)

type t

val build : Sim.t -> ?nodes:int -> ?wan_latency:Time.span -> ?obs:Obs.t -> System.config -> t
(** [nodes] defaults to 2; [wan_latency] (one-way, default 100 µs) is the
    inter-node interconnect.  With [obs], every node and every
    cross-node session reports into the same observability context, so a
    distributed transaction's span DAG is collected whole — both sides
    of a 2PC hop carry the coordinator's trace id.  Same process-context
    caveat as {!System.build} in PM mode. *)

val node_count : t -> int

val system : t -> int -> System.t
(** Raises [Invalid_argument] for an out-of-range node. *)

val wan_latency : t -> Time.span

val partition : t -> unit
(** Sever the inter-node link.  Cross-node calls in flight lose their
    request or reply leg and time out; local traffic is unaffected. *)

val heal : t -> unit

val wan_is_up : t -> bool

val local_session : t -> node:int -> cpu:int -> Txclient.t
(** A session on [node] addressing its own data tier. *)

val remote_session : t -> from_node:int -> target:int -> cpu:int -> Txclient.t
(** A session hosted on [from_node]'s CPU [cpu] addressing [target]'s
    data tier across the interconnect.  Cross-node sessions observe
    {!partition}: while the link is down their calls fail with
    timeouts.  Inherits the cluster's observability context, so remote
    branches trace like local ones. *)

val total_committed : t -> int
(** Committed transactions across all nodes' monitors. *)

val recover : t -> (Recovery.report list, string) result
(** Run {!Recovery.run} on every node in order, resolving each node's
    in-doubt branches by querying the gtid's coordinator node across the
    interconnect ([Tmf.Query_outcome]).  Requires the link healed —
    unreachable coordinators resolve to presumed abort.  Process context
    only. *)
