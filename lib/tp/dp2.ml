open Simkit
open Nsk

type request =
  | Insert of {
      txn : Audit.txn_id;
      file : int;
      key : int;
      len : int;
      crc : int;
      payload : Bytes.t option;
      deadline : Time.t;  (** transaction deadline, 0 = none *)
    }
  | Lookup of { file : int; key : int }
  | Read of { txn : Audit.txn_id; file : int; key : int }
  | Scan of { file : int; lo : int; hi : int; limit : int }
  | Finish of { txn : Audit.txn_id; committed : bool }
  | Control_point

type response =
  | Inserted of { asn : Audit.asn; adp : int }
  | Found of { len : int; crc : int; payload : Bytes.t option }
  | Absent
  | Rows of (int * int * int) list
  | Finished
  | Cp_done of { asn : Audit.asn }
  | D_failed of string

type server = (request, response) Msgsys.server

type config = {
  insert_cpu : Time.span;
  lookup_cpu : Time.span;
  lock_timeout : Time.span;
  extent_blocks : int;
  cp_interval : int;
  store_payloads : bool;
}

let default_config =
  {
    insert_cpu = Time.us 400;
    lookup_cpu = Time.us 60;
    lock_timeout = Time.sec 5;
    extent_blocks = 2_000_000;
    cp_interval = 1_000;
    store_payloads = false;
  }

type cell = { len : int; crc : int; payload : Bytes.t option }

type undo_entry = { u_file : int; u_key : int; before : cell option }

(* Keyed files are B-tree indices, one per file this writer serves. *)
type state = {
  files : (int, cell Btree.t) Hashtbl.t;
  undo : (Audit.txn_id, undo_entry list ref) Hashtbl.t;
}

type ckpt =
  | Ck_apply of { txn : Audit.txn_id; file : int; key : int; cell : cell; before : cell option }
  | Ck_finish of { txn : Audit.txn_id; committed : bool }

type t = {
  dp2_name : string;
  index : int;
  adp_index : int;
  cfg : config;
  volume : Diskio.Volume.t;
  adp : Adp.server;
  locks : Lockmgr.t;
  srv : server;
  mutable pair : ckpt Procpair.t option;
  mutable live : state option;
  shadow : state;
  rng : Rng.t;
  mutable insert_count : int;
  mutable cp_asn : Audit.asn;
  mutable obs : Obs.t option;
  mutable lookup_counter : Stat.Counter.t option;
  mutable hit_counter : Stat.Counter.t option;
}

let new_state () = { files = Hashtbl.create 8; undo = Hashtbl.create 64 }

let file_index s file =
  match Hashtbl.find_opt s.files file with
  | Some tree -> tree
  | None ->
      let tree = Btree.create () in
      Hashtbl.replace s.files file tree;
      tree

let pair_exn t = match t.pair with Some p -> p | None -> invalid_arg "Dp2: not started"

let current_cpu t = Procpair.primary_cpu (pair_exn t)

let start_span t ?parent name =
  match t.obs with
  | Some o -> Span.start (Obs.spans o) ~track:t.dp2_name ?parent name
  | None -> Span.null

let finish_span t sp =
  match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ()

let copy_state src =
  let dst = new_state () in
  Hashtbl.iter
    (fun file tree ->
      let copy = file_index dst file in
      Btree.iter tree (fun key cell -> ignore (Btree.insert copy ~key cell)))
    src.files;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst.undo k (ref !v)) src.undo;
  dst

let state t =
  match t.live with
  | Some s -> s
  | None ->
      let s = copy_state t.shadow in
      t.live <- Some s;
      s

let note_undo s ~txn entry =
  let entries =
    match Hashtbl.find_opt s.undo txn with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace s.undo txn r;
        r
  in
  entries := entry :: !entries

let apply_to s ~txn ~file ~key cell =
  let before = Btree.insert (file_index s file) ~key cell in
  note_undo s ~txn { u_file = file; u_key = key; before };
  before

let finish_on s ~txn ~committed =
  (match Hashtbl.find_opt s.undo txn with
  | None -> ()
  | Some entries ->
      if not committed then
        List.iter
          (fun e ->
            let tree = file_index s e.u_file in
            match e.before with
            | Some cell -> ignore (Btree.insert tree ~key:e.u_key cell)
            | None -> ignore (Btree.remove tree ~key:e.u_key))
          !entries);
  Hashtbl.remove s.undo txn

let emit_control_point t s =
  let active = Hashtbl.fold (fun txn _ acc -> txn :: acc) s.undo [] in
  let record = Audit.Control_point { active } in
  match
    Rpc.call_retry t.adp ~from:(current_cpu t)
      ~req_bytes:(Audit.wire_size record + 64)
      (Adp.Append [ record ])
  with
  | Ok (Adp.Appended { last_asn }) -> t.cp_asn <- last_asn
  | Ok _ | Error _ -> ()

let handle ?(caller = Span.null) ?(queued = 0) t s req respond =
  match req with
  | Insert { txn; file; key; len; crc; payload; deadline } -> (
      let isp = start_span t ~parent:caller "dp2.insert" in
      Span.note_queue isp queued;
      if not (Span.is_null isp) then begin
        Span.annotate isp ~key:"txn" (string_of_int txn);
        Span.annotate isp ~key:"key" (string_of_int key)
      end;
      let respond r =
        (match r with
        | D_failed e -> Span.annotate isp ~key:"error" e
        | _ -> ());
        finish_span t isp;
        respond r
      in
      Cpu.execute (current_cpu t) t.cfg.insert_cpu;
      if deadline > 0 && Sim.now (Cpu.sim (current_cpu t)) >= deadline then
        (* Expired before touching any resource: shed, don't lock. *)
        respond (D_failed "shed: deadline expired")
      else
      let lsp = start_span t ~parent:isp "dp2.lock" in
      let lock_result =
        Lockmgr.acquire t.locks ~span:lsp ~deadline ~owner:txn ~key:(file, key)
          Lockmgr.Exclusive
      in
      finish_span t lsp;
      match lock_result with
      | Error Lockmgr.Lock_timeout -> respond (D_failed "lock timeout")
      | Ok () -> (
          let cell =
            { len; crc; payload = (if t.cfg.store_payloads then payload else None) }
          in
          let before = apply_to s ~txn ~file ~key cell in
          let audit_record =
            Audit.Update
              {
                txn;
                file;
                partition = t.index;
                key;
                payload_len = len;
                payload_crc = crc;
                before_len = (match before with Some b -> b.len | None -> 0);
              }
          in
          (* The audit delta must reach the log writer before we ack; its
             payload rides along, so the message is payload-sized. *)
          match
            Rpc.call_retry t.adp ~from:(current_cpu t)
              ~req_bytes:(Audit.wire_size audit_record + 64)
              ~span:isp
              (Adp.Append [ audit_record ])
          with
          | Ok (Adp.Appended { last_asn }) ->
              (* Mirror the update into the backup before externalizing. *)
              Procpair.checkpoint (pair_exn t) ~bytes:(len + 64)
                (Ck_apply { txn; file; key; cell; before });
              (* Lazy data-volume write, off the critical path. *)
              let block = Rng.int t.rng t.cfg.extent_blocks in
              let (_ : (unit, Diskio.Volume.error) result Ivar.t) =
                Diskio.Volume.submit ~parent:isp t.volume ~kind:`Write ~block ~len
              in
              t.insert_count <- t.insert_count + 1;
              respond (Inserted { asn = last_asn; adp = t.adp_index });
              if t.insert_count mod t.cfg.cp_interval = 0 then emit_control_point t s
          | Ok (Adp.A_failed e) -> respond (D_failed ("audit: " ^ e))
          | Ok (Adp.Flushed _ | Adp.Trimmed _) -> respond (D_failed "audit: unexpected reply")
          | Error e -> respond (D_failed (Format.asprintf "audit: %a" Msgsys.pp_error e))))
  | Lookup { file; key } -> (
      Cpu.execute (current_cpu t) t.cfg.lookup_cpu;
      (match t.lookup_counter with Some c -> Stat.Counter.incr c | None -> ());
      match Btree.find (file_index s file) ~key with
      | Some cell ->
          (match t.hit_counter with Some c -> Stat.Counter.incr c | None -> ());
          respond (Found { len = cell.len; crc = cell.crc; payload = cell.payload })
      | None -> respond Absent)
  | Read { txn; file; key } -> (
      Cpu.execute (current_cpu t) t.cfg.lookup_cpu;
      (match t.lookup_counter with Some c -> Stat.Counter.incr c | None -> ());
      match Lockmgr.acquire t.locks ~owner:txn ~key:(file, key) Lockmgr.Shared with
      | Error Lockmgr.Lock_timeout -> respond (D_failed "lock timeout")
      | Ok () -> (
          match Btree.find (file_index s file) ~key with
          | Some cell ->
              (match t.hit_counter with Some c -> Stat.Counter.incr c | None -> ());
              respond (Found { len = cell.len; crc = cell.crc; payload = cell.payload })
          | None -> respond Absent))
  | Scan { file; lo; hi; limit } ->
      let rows = Btree.range (file_index s file) ~lo ~hi in
      let rows = if limit > 0 && List.length rows > limit then List.filteri (fun i _ -> i < limit) rows else rows in
      (* Probe cost plus a per-row touch. *)
      Cpu.execute (current_cpu t) (t.cfg.lookup_cpu + (List.length rows * Time.us 2));
      respond (Rows (List.map (fun (key, cell) -> (key, cell.len, cell.crc)) rows))
  | Finish { txn; committed } ->
      finish_on s ~txn ~committed;
      Lockmgr.release_all t.locks ~owner:txn;
      Procpair.checkpoint (pair_exn t) ~bytes:32 (Ck_finish { txn; committed });
      respond Finished
  | Control_point ->
      emit_control_point t s;
      if t.cp_asn > 0 then respond (Cp_done { asn = t.cp_asn })
      else respond (D_failed "control point append failed")

let serve t () =
  let s = state t in
  while true do
    let req, respond = Msgsys.next_request t.srv in
    (* Read synchronously: the next dequeue overwrites them. *)
    let caller = Msgsys.caller_span t.srv in
    let queued = Msgsys.caller_wait t.srv in
    match req with
    | Insert _ | Read _ ->
        (* Inserts and transactional reads may block on a key lock; they
           run as request workers so the serve loop keeps draining — in
           particular the Finish that will release the very lock such a
           request is waiting for. *)
        ignore
          (Cpu.spawn (current_cpu t) ~name:(t.dp2_name ^ ":worker") (fun () ->
               handle ~caller ~queued t s req respond))
    | Lookup _ | Scan _ | Finish _ | Control_point -> handle ~caller ~queued t s req respond
  done

let apply_ckpt t = function
  | Ck_apply { txn; file; key; cell; before } ->
      note_undo t.shadow ~txn { u_file = file; u_key = key; before };
      ignore (Btree.insert (file_index t.shadow file) ~key cell)
  | Ck_finish { txn; committed } -> finish_on t.shadow ~txn ~committed

let start ~fabric ~name ~dp2_index ~adp_index ~primary ~backup ~volume ~adp ~locks
    ?(config = default_config) ?obs () =
  let srv = Msgsys.create_server fabric ~cpu:primary ~name in
  let t =
    {
      dp2_name = name;
      index = dp2_index;
      adp_index;
      cfg = config;
      volume;
      adp;
      locks;
      srv;
      pair = None;
      live = None;
      shadow = new_state ();
      rng = Rng.create (Int64.of_int (0x0D20000 + dp2_index));
      insert_count = 0;
      cp_asn = 0;
      obs;
      lookup_counter = None;
      hit_counter = None;
    }
  in
  (match obs with
  | Some o ->
      Msgsys.set_obs srv o;
      let m = Obs.metrics o in
      let lookups = Metrics.counter m "dp2.lookups" in
      let hits = Metrics.counter m "dp2.lookup_hits" in
      t.lookup_counter <- Some lookups;
      t.hit_counter <- Some hits;
      if Metrics.find m "dp2.hit_ratio" = None then
        Metrics.register_gauge m "dp2.hit_ratio" (fun () ->
            let n = Stat.Counter.get lookups in
            if n = 0 then 0.0 else float_of_int (Stat.Counter.get hits) /. float_of_int n)
  | None -> ());
  let pair =
    Procpair.start ~fabric ~name ~primary ~backup
      ~apply:(fun ck -> apply_ckpt t ck)
      ~serve:(fun () -> serve t ())
      ~on_takeover:(fun () ->
        t.live <- None;
        Msgsys.move t.srv ~cpu:backup)
      ()
  in
  t.pair <- Some pair;
  t

let server t = t.srv

let inserts t = t.insert_count

let last_cp_asn t = t.cp_asn

let active_state t = match t.live with Some s -> s | None -> t.shadow

let table_size t =
  Hashtbl.fold (fun _ tree acc -> acc + Btree.cardinal tree) (active_state t).files 0

let index_height t =
  Hashtbl.fold (fun _ tree acc -> max acc (Btree.height tree)) (active_state t).files 1

let lookup_direct t ~file ~key =
  match Hashtbl.find_opt (active_state t).files file with
  | None -> None
  | Some tree -> (
      match Btree.find tree ~key with
      | Some cell -> Some (cell.len, cell.crc)
      | None -> None)

let load_table t rows =
  let s = active_state t in
  Hashtbl.reset s.files;
  Hashtbl.reset s.undo;
  List.iter
    (fun (file, key, len, crc) ->
      ignore (Btree.insert (file_index s file) ~key { len; crc; payload = None }))
    rows

let kill_primary t = Procpair.kill_primary (pair_exn t)

let halt t = Procpair.halt (pair_exn t)

let pair_takeovers t = Procpair.takeovers (pair_exn t)

let outage_time t = Procpair.outage_time (pair_exn t)
