open Simkit
open Nsk

(** Retrying RPC for calls that must ride out a process-pair takeover:
    the message system fails outstanding calls when a server dies, and
    the caller simply tries again — by the next attempt the port has
    moved to the promoted backup. *)

val call_retry :
  ('req, 'resp) Msgsys.server ->
  from:Cpu.t ->
  ?req_bytes:int ->
  ?attempts:int ->
  ?timeout:Time.span ->
  ?backoff:Time.span ->
  ?span:Span.span ->
  'req ->
  ('resp, Msgsys.error) result
(** Defaults: 6 attempts, 1 s per-call timeout, 200 ms backoff —
    comfortably covering a sub-second takeover.  [span] rides in each
    attempt's envelope (see {!Msgsys.call}). *)
