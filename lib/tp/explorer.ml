open Simkit

(* Adversarial fault-schedule search.

   The generator composes schedules from a small set of motifs rather
   than drawing raw actions: motifs encode the liveness pairings a
   random draw would violate (a rail that goes down comes back up, a
   degraded component is restored, a power-cycled mirror is resynced),
   so every generated schedule leaves the system able to finish its
   load and recovery — the only invariants allowed to fail are the
   oracle's, not the harness's.  Everything is derived from (seed,
   index) through one splitmix stream, so a corpus is a pure function
   of its seed and any violating schedule replays bit-for-bit. *)

type kind = Pm | Disk | Cluster | Overload

let kind_name = function
  | Pm -> "pm"
  | Disk -> "disk"
  | Cluster -> "cluster"
  | Overload -> "overload"

let kind_of_name = function
  | "pm" -> Some Pm
  | "disk" -> Some Disk
  | "cluster" -> Some Cluster
  | "overload" -> Some Overload
  | _ -> None

type schedule = {
  s_index : int;
  s_seed : int64;  (* the drill's simulation seed *)
  s_kind : kind;
  s_plan : Faultplan.t;  (* load-phase schedule *)
  s_recovery : Faultplan.t;  (* offsets relative to recovery start *)
}

(* --- Drill sizing ---

   Small loads keep one schedule in the hundreds of milliseconds of
   wall clock, so a 200-schedule corpus fits a CI smoke budget.  The
   PM-mode load window is ~40 ms of simulated time at this size; load
   motifs aim inside it. *)

let pm_params =
  {
    Drill.drivers = 2;
    records_per_driver = 48;
    record_bytes = 2_048;
    inserts_per_txn = 4;
    (* Long enough for the scrubber to converge on a chunk corrupted
       while it was still being appended to: the durable checksum
       table is stale for a hot chunk, so the only path is the strike
       machinery — [scrub_quarantine_after] consecutive quiet passes at
       roughly 150 ms per full device sweep. *)
    settle = Time.ms 900;
    begin_retries = 8;
  }

let disk_params = { pm_params with Drill.settle = Time.ms 500 }

let cluster_params = { Drill.cluster_params with Drill.records_per_driver = 32 }

(* PM schedules run on the corruption-drill platform: small regions, the
   scrubber on a tight cadence, verified reads — the full defense stack
   the media-fault motifs are aimed at.  [defenses:false] strips the
   integrity defenses, which is how the explorer proves it can find the
   known silent-corruption failures. *)
let pm_config ~defenses =
  if defenses then Drill.corruption_config
  else { Drill.corruption_config with System.pm_scrub = None; pm_verified_reads = false }

(* Liveness tripwire more than a latency SLO: a schedule that wedges a
   pair headless for this long is a finding even with zero rows lost. *)
let max_outage = Time.sec 30

(* Load plans never reach past this; validation enforces it so a
   mutated or hand-edited repro cannot silently carry dead events. *)
let horizon = Time.sec 2

(* --- Coverage accounting --- *)

let layer_of (action : Faultplan.action) =
  match action with
  | Faultplan.Kill_primary _ -> "process"
  | Npmu_power_cycle _ | Media_decay _ | Torn_write _ | Slow_device _ -> "pm_device"
  | Rail_down _ | Rail_up _ | Crc_noise_burst _ | Slow_rail _ -> "fabric"
  | Slow_disk _ -> "disk"
  | Wan_partition | Wan_heal -> "wan"
  | Pmm_resync | Fence_check | Restore_speed -> "control"
  | Flash_crowd _ -> "load"

(* (fault family, phase, layer) cells with counts, sorted for stable
   output. *)
let coverage schedules =
  let tbl = Hashtbl.create 64 in
  let add phase ev =
    let key =
      (Faultplan.action_name ev.Faultplan.action, phase, layer_of ev.Faultplan.action)
    in
    Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)
  in
  List.iter
    (fun s ->
      List.iter (add "load") s.s_plan;
      List.iter (add "recovery") s.s_recovery)
    schedules;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* --- The generator --- *)

let ms = Time.ms

(* Draw an offset uniformly in [lo, hi). *)
let offset rng lo hi = lo + Rng.uniform_span rng (hi - lo)

(* One load-phase motif: a self-contained burst of 1-3 events that
   leaves the system live.  [budget] tracks per-schedule caps (one rail
   flap, one power-cycle window, one slowdown group) so composed motifs
   cannot stack into a wedge — e.g. both rails down at once. *)
type motif_budget = {
  mutable b_rail_flap : bool;
  mutable b_power : bool;
  mutable b_slow : bool;
  mutable b_resync : bool;
}

let fresh_budget () =
  { b_rail_flap = false; b_power = false; b_slow = false; b_resync = false }

let pm_trails = 4 (* trail regions the small load writes into *)

(* A media fault must land inside a trail's written extent or it only
   corrupts padding.  The small load writes ~40 KiB per trail behind
   each region's header, so low single-digit KiB offsets are always
   inside it. *)
let decay_site rng =
  let trail = Rng.int rng pm_trails in
  let off = Drill.corruption_trail_base trail + 2_048 + Rng.int rng 12_288 in
  (trail, off)

let pm_load_motif rng budget lo hi =
  let pick = Rng.int rng 100 in
  let at t a = Faultplan.at t a in
  if pick < 22 then
    (* process-pair kill *)
    let target =
      match Rng.int rng 4 with
      | 0 -> Faultplan.Adp (Rng.int rng 4)
      | 1 -> Faultplan.Dp2 (Rng.int rng 16)
      | 2 -> Faultplan.Tmf
      | _ -> Faultplan.Pmm
    in
    [ at (offset rng lo hi) (Faultplan.Kill_primary target) ]
  else if pick < 36 && not budget.b_power then begin
    budget.b_power <- true;
    let t = offset rng lo hi in
    let off_for = ms 20 + Rng.uniform_span rng (ms 60) in
    let cycle =
      at t (Faultplan.Npmu_power_cycle { device = Rng.int rng 2; off_for })
    in
    (* Always resync after the cycle: writes during the off window
       degrade to the surviving mirror, and restoring redundancy is an
       operator action, not something recovery does — a cycled-but-
       never-resynced mirror would fail the divergence audit on every
       platform, defended or not.  The resync races the still-running
       load, which is the mid-resync coverage. *)
    budget.b_resync <- true;
    [ cycle; at (t + off_for + ms 2 + Rng.uniform_span rng (ms 6)) Faultplan.Pmm_resync ]
  end
  else if pick < 48 && not budget.b_rail_flap then begin
    budget.b_rail_flap <- true;
    let rail = Rng.int rng 2 in
    let t = offset rng lo hi in
    let flap = ms 8 + Rng.uniform_span rng (ms 30) in
    [ at t (Faultplan.Rail_down rail); at (t + flap) (Faultplan.Rail_up rail) ]
  end
  else if pick < 60 then
    let rate = 0.005 +. Rng.float rng 0.04 in
    let duration = ms 15 + Rng.uniform_span rng (ms 40) in
    [ at (offset rng lo hi) (Faultplan.Crc_noise_burst { rate; duration }) ]
  else if pick < 74 then
    (* silent media decay spanning a whole frame, so an undefended
       replay visibly truncates — the planted-bug family *)
    let device = Rng.int rng 2 in
    let _, off = decay_site rng in
    let bits = 8 * (1_024 + Rng.int rng 3_500) in
    [ at (offset rng lo hi) (Faultplan.Media_decay { device; off; bits }) ]
  else if pick < 82 then
    [ at (offset rng lo hi) (Faultplan.Torn_write { device = Rng.int rng 2 }) ]
  else if pick < 92 && not budget.b_slow then begin
    budget.b_slow <- true;
    let t = offset rng lo hi in
    let hold = ms 20 + Rng.uniform_span rng (ms 60) in
    let slow =
      match Rng.int rng 3 with
      | 0 ->
          Faultplan.Slow_device
            { device = Rng.int rng 2; factor = 20. +. Rng.float rng 180.; jitter = Time.us 200 }
      | 1 -> Faultplan.Slow_rail { rail = Rng.int rng 2; factor = 2. +. Rng.float rng 6. }
      | _ ->
          Faultplan.Slow_disk
            { volume = Rng.int rng 16; factor = 2. +. Rng.float rng 6.; jitter = Time.us 100 }
    in
    [ at t slow; at (t + hold) Faultplan.Restore_speed ]
  end
  else [ at (offset rng lo hi) Faultplan.Fence_check ]

(* Disk-mode motifs: the same families minus everything PM-only. *)
let disk_load_motif rng budget lo hi =
  let pick = Rng.int rng 100 in
  let at t a = Faultplan.at t a in
  if pick < 35 then
    let target =
      match Rng.int rng 3 with
      | 0 -> Faultplan.Adp (Rng.int rng 4)
      | 1 -> Faultplan.Dp2 (Rng.int rng 16)
      | _ -> Faultplan.Tmf
    in
    [ at (offset rng lo hi) (Faultplan.Kill_primary target) ]
  else if pick < 55 && not budget.b_rail_flap then begin
    budget.b_rail_flap <- true;
    let rail = Rng.int rng 2 in
    let t = offset rng lo hi in
    let flap = ms 10 + Rng.uniform_span rng (ms 40) in
    [ at t (Faultplan.Rail_down rail); at (t + flap) (Faultplan.Rail_up rail) ]
  end
  else if pick < 75 then
    let rate = 0.005 +. Rng.float rng 0.04 in
    let duration = ms 20 + Rng.uniform_span rng (ms 60) in
    [ at (offset rng lo hi) (Faultplan.Crc_noise_burst { rate; duration }) ]
  else begin
    let t = offset rng lo hi in
    let hold = ms 30 + Rng.uniform_span rng (ms 60) in
    let slow =
      if Rng.bool rng 0.5 then
        Faultplan.Slow_rail { rail = Rng.int rng 2; factor = 2. +. Rng.float rng 6. }
      else
        Faultplan.Slow_disk
          { volume = Rng.int rng 16; factor = 2. +. Rng.float rng 6.; jitter = Time.us 100 }
    in
    [ at t slow; at (t + hold) Faultplan.Restore_speed ]
  end

(* Cluster motifs: partition pulses timed against the 2PC window, plus
   coordinator-side kills and the fence probe.  Every partition heals. *)
let cluster_load_motif rng budget lo hi =
  let pick = Rng.int rng 100 in
  let at t a = Faultplan.at t a in
  if pick < 45 then
    let t = offset rng lo hi in
    let width = ms 2 + Rng.uniform_span rng (ms 8) in
    [ at t Faultplan.Wan_partition; at (t + width) Faultplan.Wan_heal ]
  else if pick < 70 then
    let target =
      match Rng.int rng 4 with
      | 0 -> Faultplan.Adp (Rng.int rng 4)
      | 1 -> Faultplan.Dp2 (Rng.int rng 16)
      | 2 -> Faultplan.Tmf
      | _ -> Faultplan.Pmm
    in
    [ at (offset rng lo hi) (Faultplan.Kill_primary target) ]
  else if pick < 85 && not budget.b_rail_flap then begin
    budget.b_rail_flap <- true;
    let rail = Rng.int rng 2 in
    let t = offset rng lo hi in
    let flap = ms 3 + Rng.uniform_span rng (ms 8) in
    [ at t (Faultplan.Rail_down rail); at (t + flap) (Faultplan.Rail_up rail) ]
  end
  else [ at (offset rng lo hi) Faultplan.Fence_check ]

(* Recovery-phase motifs: faults that race the replay and the in-doubt
   resolver without decapitating the processes doing the recovering.
   Offsets are relative to the instant recovery starts; MTTR at this
   load size is ~10-20 ms, so single-digit offsets land mid-replay. *)
let recovery_motif ~pm rng budget =
  let pick = Rng.int rng 100 in
  let at t a = Faultplan.at t a in
  let lo = Time.us 100 and hi = ms 8 in
  if pick < 25 && pm then [ at (offset rng lo hi) Faultplan.Fence_check ]
  else if pick < 45 && not budget.b_rail_flap then begin
    budget.b_rail_flap <- true;
    let rail = Rng.int rng 2 in
    let t = offset rng lo hi in
    [ at t (Faultplan.Rail_down rail); at (t + ms 1 + Rng.uniform_span rng (ms 2)) (Faultplan.Rail_up rail) ]
  end
  else if pick < 65 then
    let rate = 0.002 +. Rng.float rng 0.015 in
    [ at (offset rng lo hi) (Faultplan.Crc_noise_burst { rate; duration = ms 3 }) ]
  else if pick < 85 && not budget.b_slow then begin
    budget.b_slow <- true;
    let t = offset rng lo hi in
    let slow =
      match Rng.int rng (if pm then 3 else 2) with
      | 0 -> Faultplan.Slow_rail { rail = Rng.int rng 2; factor = 2. +. Rng.float rng 4. }
      | 1 ->
          Faultplan.Slow_disk
            { volume = Rng.int rng 16; factor = 2. +. Rng.float rng 4.; jitter = Time.us 100 }
      | _ ->
          Faultplan.Slow_device
            { device = Rng.int rng 2; factor = 5. +. Rng.float rng 20.; jitter = Time.us 100 }
    in
    [ at t slow; at (t + ms 4) Faultplan.Restore_speed ]
  end
  else if pm && not budget.b_power then begin
    budget.b_power <- true;
    [
      at (offset rng lo hi)
        (Faultplan.Npmu_power_cycle
           { device = Rng.int rng 2; off_for = ms 1 + Rng.uniform_span rng (ms 2) });
    ]
  end
  else
    let rate = 0.002 +. Rng.float rng 0.01 in
    [ at (offset rng lo hi) (Faultplan.Crc_noise_burst { rate; duration = ms 2 }) ]

let sort_plan plan =
  List.stable_sort (fun a b -> compare a.Faultplan.after b.Faultplan.after) plan

(* Deterministic per-schedule stream: splitmix of the corpus seed and
   the index.  The drill seed is the stream's first draw, so schedule
   [i] replays identically whether it was reached by exploring or by a
   repro file. *)
let schedule_rng ~seed ~index =
  Rng.create
    (Int64.logxor
       (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L)
       (Int64.of_int (seed * 2 + 1)))

let kind_of_index index =
  match index mod 16 with
  | 0 | 1 | 2 | 3 | 4 | 5 | 6 | 7 | 8 -> Pm
  | 9 | 10 | 11 -> Disk
  | 12 | 13 -> Cluster
  | _ -> Overload

let generate ~seed ~index =
  let rng = schedule_rng ~seed ~index in
  let s_seed = Rng.int64 rng in
  let s_kind = kind_of_index index in
  match s_kind with
  | Overload ->
      (* The overload drill owns its schedule (the open-loop arrival
         engine); the plan here is the spike marker it will inject.
         Exploration is over the seed: arrival timing, retry phasing. *)
      {
        s_index = index;
        s_seed;
        s_kind;
        s_plan = Drill.overload_plan Drill.overload_params;
        s_recovery = [];
      }
  | _ ->
      let budget = fresh_budget () in
      let lo, hi, motif =
        match s_kind with
        | Pm -> (ms 2, ms 36, pm_load_motif)
        | Disk -> (ms 5, ms 200, disk_load_motif)
        | Cluster -> (ms 2, ms 50, cluster_load_motif)
        | Overload -> assert false
      in
      let n_motifs = 2 + Rng.int rng 4 in
      let plan = ref [] in
      for _ = 1 to n_motifs do
        plan := !plan @ motif rng budget lo hi
      done;
      let rec_budget = fresh_budget () in
      let n_rec = match s_kind with Cluster -> 0 | _ -> Rng.int rng 3 in
      let recovery = ref [] in
      for _ = 1 to n_rec do
        recovery := !recovery @ recovery_motif ~pm:(s_kind = Pm) rng rec_budget
      done;
      {
        s_index = index;
        s_seed;
        s_kind;
        s_plan = sort_plan !plan;
        s_recovery = sort_plan !recovery;
      }

let corpus ~seed ~budget = List.init budget (fun index -> generate ~seed ~index)

let schedule_to_json s =
  Json.Obj
    [
      ("index", Json.Int s.s_index);
      ("kind", Json.String (kind_name s.s_kind));
      ("seed", Json.String (Printf.sprintf "0x%Lx" s.s_seed));
      ("plan", Faultplan.to_json s.s_plan);
      ("recovery_plan", Faultplan.to_json s.s_recovery);
    ]

let corpus_json ~seed ~budget =
  Json.List (List.map schedule_to_json (corpus ~seed ~budget))

(* --- Running one schedule under the oracle --- *)

type verdict_or_error = Verdict of Drill.Oracle.verdict | Harness_error of string

let violates = function
  | Verdict v -> not (Drill.Oracle.pass v)
  | Harness_error _ -> true

let verdict_json = function
  | Verdict v -> Drill.Oracle.to_json v
  | Harness_error e -> Json.Obj [ ("pass", Json.Bool false); ("error", Json.String e) ]

let oracle_gate r = Drill.Oracle.pass (Drill.Oracle.of_report ~max_outage r)

let execute ?flight ~defenses s =
  match s.s_kind with
  | Pm -> (
      match
        Drill.run ~seed:s.s_seed ~config:(pm_config ~defenses) ~params:pm_params
          ~horizon ~recovery_plan:s.s_recovery ?flight ~gate:oracle_gate
          ~mode:System.Pm_audit ~plan:s.s_plan ()
      with
      | Error e -> Harness_error e
      | Ok r -> Verdict (Drill.Oracle.of_report ~max_outage r))
  | Disk -> (
      match
        Drill.run ~seed:s.s_seed ~params:disk_params ~horizon
          ~recovery_plan:s.s_recovery ?flight ~gate:oracle_gate
          ~mode:System.Disk_audit ~plan:s.s_plan ()
      with
      | Error e -> Harness_error e
      | Ok r -> Verdict (Drill.Oracle.of_report ~max_outage r))
  | Cluster -> (
      match
        Drill.run_cluster ~seed:s.s_seed ~params:cluster_params ~horizon
          ~recovery_plan:s.s_recovery ?flight ~plan:s.s_plan ()
      with
      | Error e -> Harness_error e
      | Ok r -> Verdict (Drill.Oracle.of_cluster r))
  | Overload -> (
      match Drill.run_overload ~seed:s.s_seed ~defenses ?flight () with
      | Error e -> Harness_error e
      | Ok r -> Verdict (Drill.Oracle.of_overload r))

(* --- The shrinker ---

   Delta debugging under deterministic replay: every candidate is the
   same drill at the same seed with a subset of the actions, so [fails]
   is a pure function of the plans.  Greedy single-action drops to a
   fixpoint first (dropping from the load and recovery plans together),
   then window tightening: halve each surviving event's offset and
   duration fields while the violation persists. *)

let plan_len (p, r) = List.length p + List.length r

let drop_nth (p, r) n =
  let np = List.length p in
  if n < np then (List.filteri (fun i _ -> i <> n) p, r)
  else (p, List.filteri (fun i _ -> i <> n - np) r)

let halve_span s = if s <= Time.us 200 then s else s / 2

let tighten_event ev =
  let open Faultplan in
  let action =
    match ev.action with
    | Npmu_power_cycle { device; off_for } ->
        Npmu_power_cycle { device; off_for = halve_span off_for }
    | Crc_noise_burst { rate; duration } ->
        Crc_noise_burst { rate; duration = halve_span duration }
    | Flash_crowd { spike; spike_for } ->
        Flash_crowd { spike; spike_for = halve_span spike_for }
    | a -> a
  in
  { after = halve_span ev.after; action }

let replace_nth (p, r) n ev =
  let np = List.length p in
  if n < np then (List.mapi (fun i e -> if i = n then ev else e) p, r)
  else (p, List.mapi (fun i e -> if i = n - np then ev else e) r)

let nth_event (p, r) n =
  let np = List.length p in
  if n < np then List.nth p n else List.nth r (n - np)

let minimize ?(max_replays = 150) ~fails (p0, r0) =
  let replays = ref 0 in
  let test c =
    if !replays >= max_replays then false
    else begin
      incr replays;
      fails c
    end
  in
  (* Phase 1: greedy drops to fixpoint. *)
  let cur = ref (p0, r0) in
  let progress = ref true in
  while !progress && !replays < max_replays do
    progress := false;
    let n = plan_len !cur in
    let i = ref 0 in
    while !i < n && not !progress do
      let candidate = drop_nth !cur !i in
      if test candidate then begin
        cur := candidate;
        progress := true
      end;
      incr i
    done
  done;
  (* Phase 2: tighten the survivors' windows. *)
  let n = plan_len !cur in
  for i = 0 to n - 1 do
    let continue = ref true in
    while !continue && !replays < max_replays do
      let ev = nth_event !cur i in
      let t = tighten_event ev in
      if t = ev then continue := false
      else begin
        let candidate = replace_nth !cur i t in
        if test candidate then cur := candidate else continue := false
      end
    done
  done;
  (!cur, !replays)

(* --- Exploration --- *)

type violation = {
  vi_index : int;
  vi_kind : kind;
  vi_seed : int64;
  vi_actions : int;  (* actions in the generated schedule *)
  vi_shrunk_actions : int;  (* after minimization *)
  vi_replays : int;  (* drills the shrinker spent *)
  vi_schedule : schedule;  (* the minimized schedule *)
  vi_verdict : verdict_or_error;  (* verdict of the minimized schedule *)
  vi_repro : string option;  (* repro file path, when out_dir given *)
  vi_flight : string option;  (* flight dump path, when out_dir given *)
}

type report = {
  x_seed : int;
  x_budget : int;
  x_defenses : bool;
  x_schedules : schedule list;
  x_violations : violation list;
  x_coverage : ((string * string * string) * int) list;
  x_drills : int;  (* total drills run, shrink replays included *)
}

let found r = r.x_violations <> []

(* --- Repro files --- *)

type repro = {
  rp_kind : kind;
  rp_seed : int64;
  rp_defenses : bool;
  rp_plan : Faultplan.t;
  rp_recovery : Faultplan.t;
}

let repro_schema = "odsbench-repro"

let repro_of_violation ~defenses v =
  {
    rp_kind = v.vi_kind;
    rp_seed = v.vi_seed;
    rp_defenses = defenses;
    rp_plan = v.vi_schedule.s_plan;
    rp_recovery = v.vi_schedule.s_recovery;
  }

let repro_to_json ?violation r =
  Json.Obj
    ([
       ("schema", Json.String repro_schema);
       ("version", Json.Int 1);
       ("kind", Json.String (kind_name r.rp_kind));
       ("seed", Json.String (Printf.sprintf "0x%Lx" r.rp_seed));
       ("defenses", Json.Bool r.rp_defenses);
       ("plan", Faultplan.to_json r.rp_plan);
       ("recovery_plan", Faultplan.to_json r.rp_recovery);
     ]
    @ match violation with None -> [] | Some v -> [ ("violation", v) ])

let repro_of_json json =
  let ( let* ) = Result.bind in
  let field name conv what =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "repro: missing or ill-typed field %S (expected %s)" name what)
  in
  let* schema = field "schema" Json.to_string_opt "string" in
  if schema <> repro_schema then
    Error (Printf.sprintf "repro: unknown schema %S (expected %S)" schema repro_schema)
  else
    let* kind_s = field "kind" Json.to_string_opt "string" in
    let* rp_kind =
      match kind_of_name kind_s with
      | Some k -> Ok k
      | None ->
          Error
            (Printf.sprintf "repro: unknown kind %S (valid: pm, disk, cluster, overload)"
               kind_s)
    in
    let* seed_s = field "seed" Json.to_string_opt "hex string" in
    let* rp_seed =
      match Int64.of_string_opt seed_s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "repro: unparseable seed %S" seed_s)
    in
    let* rp_defenses = field "defenses" Json.to_bool_opt "bool" in
    let* plan_json = field "plan" Option.some "array" in
    let* rp_plan = Faultplan.of_json plan_json in
    let* rec_json = field "recovery_plan" Option.some "array" in
    let* rp_recovery = Faultplan.of_json rec_json in
    Ok { rp_kind; rp_seed; rp_defenses; rp_plan; rp_recovery }

type replay_result =
  | Single of Drill.report
  | Clustered of Drill.cluster_report
  | Overloaded of Drill.overload_report

let replay ?flight r =
  let s =
    {
      s_index = 0;
      s_seed = r.rp_seed;
      s_kind = r.rp_kind;
      s_plan = r.rp_plan;
      s_recovery = r.rp_recovery;
    }
  in
  match r.rp_kind with
  | Pm -> (
      match
        Drill.run ~seed:s.s_seed ~config:(pm_config ~defenses:r.rp_defenses)
          ~params:pm_params ~horizon ~recovery_plan:s.s_recovery ?flight
          ~gate:oracle_gate ~mode:System.Pm_audit ~plan:s.s_plan ()
      with
      | Error e -> Error e
      | Ok rep -> Ok (Single rep))
  | Disk -> (
      match
        Drill.run ~seed:s.s_seed ~params:disk_params ~horizon
          ~recovery_plan:s.s_recovery ?flight ~gate:oracle_gate
          ~mode:System.Disk_audit ~plan:s.s_plan ()
      with
      | Error e -> Error e
      | Ok rep -> Ok (Single rep))
  | Cluster -> (
      match
        Drill.run_cluster ~seed:s.s_seed ~params:cluster_params ~horizon
          ~recovery_plan:s.s_recovery ?flight ~plan:s.s_plan ()
      with
      | Error e -> Error e
      | Ok rep -> Ok (Clustered rep))
  | Overload -> (
      match Drill.run_overload ~seed:s.s_seed ~defenses:r.rp_defenses ?flight () with
      | Error e -> Error e
      | Ok rep -> Ok (Overloaded rep))

let replay_verdict = function
  | Single rep -> Drill.Oracle.of_report ~max_outage rep
  | Clustered rep -> Drill.Oracle.of_cluster rep
  | Overloaded rep -> Drill.Oracle.of_overload rep

(* --- The explorer loop --- *)

let write_json path json =
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc

let run ?(defenses = true) ?out_dir ?(max_replays = 150) ?progress ~budget ~seed () =
  let drills = ref 0 in
  let schedules = ref [] in
  let violations = ref [] in
  for index = 0 to budget - 1 do
    let s = generate ~seed ~index in
    schedules := s :: !schedules;
    incr drills;
    let outcome = execute ~defenses s in
    (match progress with
    | Some f -> f index (violates outcome)
    | None -> ());
    if violates outcome then begin
      let original_actions = plan_len (s.s_plan, s.s_recovery) in
      (* Overload schedules carry only the informational spike marker —
         the drill owns its arrival schedule — so there is nothing to
         shrink. *)
      let (p', r'), replays =
        if s.s_kind = Overload then ((s.s_plan, s.s_recovery), 0)
        else
          minimize ~max_replays
            ~fails:(fun (p, r) ->
              violates (execute ~defenses { s with s_plan = p; s_recovery = r }))
            (s.s_plan, s.s_recovery)
      in
      drills := !drills + replays;
      let shrunk = { s with s_plan = p'; s_recovery = r' } in
      (* One last replay of the minimized schedule, with the flight
         recorder armed when there is somewhere to dump it. *)
      let flight_path =
        Option.map
          (fun d -> Filename.concat d (Printf.sprintf "flight_%04d.json" index))
          out_dir
      in
      incr drills;
      let final = execute ?flight:flight_path ~defenses shrunk in
      let repro_path =
        match out_dir with
        | None -> None
        | Some d ->
            let path = Filename.concat d (Printf.sprintf "repro_%04d.json" index) in
            let doc =
              repro_to_json
                ~violation:(verdict_json final)
                (repro_of_violation ~defenses
                   {
                     vi_index = index;
                     vi_kind = s.s_kind;
                     vi_seed = s.s_seed;
                     vi_actions = original_actions;
                     vi_shrunk_actions = plan_len (p', r');
                     vi_replays = replays;
                     vi_schedule = shrunk;
                     vi_verdict = final;
                     vi_repro = None;
                     vi_flight = None;
                   })
            in
            write_json path doc;
            Some path
      in
      let flight_path =
        match flight_path with
        | Some p when Sys.file_exists p -> Some p
        | _ -> None
      in
      violations :=
        {
          vi_index = index;
          vi_kind = s.s_kind;
          vi_seed = s.s_seed;
          vi_actions = original_actions;
          vi_shrunk_actions = plan_len (p', r');
          vi_replays = replays;
          vi_schedule = shrunk;
          vi_verdict = final;
          vi_repro = repro_path;
          vi_flight = flight_path;
        }
        :: !violations
    end
  done;
  let schedules = List.rev !schedules in
  {
    x_seed = seed;
    x_budget = budget;
    x_defenses = defenses;
    x_schedules = schedules;
    x_violations = List.rev !violations;
    x_coverage = coverage schedules;
    x_drills = !drills;
  }

let violation_json v =
  Json.Obj
    [
      ("index", Json.Int v.vi_index);
      ("kind", Json.String (kind_name v.vi_kind));
      ("seed", Json.String (Printf.sprintf "0x%Lx" v.vi_seed));
      ("actions", Json.Int v.vi_actions);
      ("shrunk_actions", Json.Int v.vi_shrunk_actions);
      ("shrink_replays", Json.Int v.vi_replays);
      ("plan", Faultplan.to_json v.vi_schedule.s_plan);
      ("recovery_plan", Faultplan.to_json v.vi_schedule.s_recovery);
      ("verdict", verdict_json v.vi_verdict);
      ( "repro",
        match v.vi_repro with Some p -> Json.String p | None -> Json.Null );
      ( "flight",
        match v.vi_flight with Some p -> Json.String p | None -> Json.Null );
    ]

let to_json r =
  let kinds = [ Pm; Disk; Cluster; Overload ] in
  let kind_counts =
    List.map
      (fun k ->
        ( kind_name k,
          Json.Int (List.length (List.filter (fun s -> s.s_kind = k) r.x_schedules)) ))
      kinds
  in
  let families =
    List.sort_uniq compare (List.map (fun ((f, _, _), _) -> f) r.x_coverage)
  in
  let phases =
    List.sort_uniq compare (List.map (fun ((_, p, _), _) -> p) r.x_coverage)
  in
  let layers =
    List.sort_uniq compare (List.map (fun ((_, _, l), _) -> l) r.x_coverage)
  in
  Json.Obj
    [
      ("seed", Json.Int r.x_seed);
      ("budget", Json.Int r.x_budget);
      ("defenses", Json.Bool r.x_defenses);
      ("schedules", Json.Int (List.length r.x_schedules));
      ("drills", Json.Int r.x_drills);
      ("kinds", Json.Obj kind_counts);
      ("violations", Json.List (List.map violation_json r.x_violations));
      ("pass", Json.Bool (not (found r)));
      ( "coverage",
        Json.Obj
          [
            ("families", Json.Int (List.length families));
            ("phases", Json.Int (List.length phases));
            ("layers", Json.Int (List.length layers));
            ( "cells",
              Json.List
                (List.map
                   (fun ((family, phase, layer), count) ->
                     Json.Obj
                       [
                         ("family", Json.String family);
                         ("phase", Json.String phase);
                         ("layer", Json.String layer);
                         ("count", Json.Int count);
                       ])
                   r.x_coverage) );
          ] );
    ]
