open Simkit
open Nsk

(** Application-side transaction library.

    A session binds a CPU to the transaction monitor and the database
    writers.  Inserts can be issued asynchronously — the paper's drivers
    boxcar several per transaction — and {!commit} gathers the
    outstanding acknowledgements, then asks the monitor to commit with
    the audit-flush horizon the inserts reported. *)

type error =
  | Tx_failed of string
  | Tx_rejected of string
      (** admission backpressure — the monitor refused the begin (its
          estimated wait exceeded the deadline) or a local circuit
          breaker is open.  Nothing was started, acknowledged, or lost:
          the right response is to back off, not retry immediately. *)

val error_to_string : error -> string

val is_rejected : error -> bool

(** Static routing: which DP2 owns a [(file, key)] pair. *)
type routing = {
  files : int;
  partitions_per_file : int;
  dp2_of : file:int -> key:int -> int;  (** index into the DP2 array *)
}

val uniform_routing : files:int -> partitions_per_file:int -> routing
(** Partition by [key mod partitions_per_file]; DP2 index is
    [file * partitions_per_file + partition] — the paper's four files,
    each distributed across four volumes. *)

type t

val create :
  cpu:Cpu.t ->
  tmf:Tmf.server ->
  dp2s:Dp2.server array ->
  routing:routing ->
  ?issue_cpu:Time.span ->
  ?wan_latency:Time.span ->
  ?link:(unit -> bool) ->
  ?deadline_budget:Time.span ->
  ?op_timeout:Time.span ->
  ?retry_budget:Retry_budget.t ->
  ?breakers:bool ->
  ?obs:Obs.t ->
  unit ->
  t
(** [issue_cpu] (default 500 µs) is the application-side instruction path
    per insert — SQL processing, buffer marshalling — consumed on the
    session's CPU before the request leaves it.  [wan_latency] (default
    0) is the one-way inter-node link latency a remote session pays on
    every request and reply — an application tier reaching an ODS node
    across the cluster interconnect (§1.3 scale-out).  [link] (default
    always up) is polled on each leg of a WAN call; when it reports the
    link severed the request or reply is lost and the call fails with a
    timeout — when the reply leg is the one lost, the server has already
    acted, which is how in-doubt transactions arise.  With [obs], each
    transaction gets a root span on track ["client"] that the servers it
    touches parent their spans under, and response times feed the
    registry's [txn.response_ns] stat (plus [txn.insert_wait_ns] and
    [txn.commit_call_ns] for the two client-visible waits).

    Overload containment, all off by default: [deadline_budget] > 0
    stamps each transaction with an absolute deadline ([begin] time +
    budget) that propagates through the monitor to every downstream
    queue; [op_timeout] > 0 bounds the client's patience per
    synchronous call (begin, commit, insert replies) — an impatient
    client abandons slow calls and may retry, which is what turns
    overload into a retry storm, so arming it without the containment
    below is the negative-control configuration; [retry_budget] is a
    token bucket ({!Simkit.Retry_budget})
    each insert resend must clear — share one bucket across sessions to
    bound a whole client tier's retry volume; [breakers] enables a
    per-destination circuit breaker ({!Simkit.Breaker}) in front of the
    monitor and each writer, so a destination that keeps timing out is
    rested and probed instead of hammered. *)

val cpu : t -> Cpu.t

type txn

val txn_id : txn -> Audit.txn_id

val begin_txn : t -> (txn, error) result

val insert_async : t -> txn -> ?payload:Bytes.t -> file:int -> key:int -> len:int -> unit -> unit
(** Fire an insert without waiting.  With [payload], [len] is taken from
    it, its CRC rides in the audit record, and writers configured with
    [store_payloads] keep the bytes; otherwise the row is content-free
    (the simulator's default).  Failures surface at the next
    {!await_inserts} or {!commit}. *)

val insert : t -> txn -> ?payload:Bytes.t -> file:int -> key:int -> len:int -> unit -> (unit, error) result
(** Synchronous insert. *)

val await_inserts : t -> txn -> (unit, error) result
(** Collect every outstanding asynchronous insert of this transaction. *)

val commit : t -> txn -> (unit, error) result
(** Await outstanding inserts, then run the commit protocol.  On success
    the transaction's changes are durable. *)

val abort : t -> txn -> (unit, error) result

val prepare : ?gtid:int * Audit.txn_id -> t -> txn -> (unit, error) result
(** Two-phase commit, phase 1: await outstanding inserts and ask the
    monitor to force the trails and log a durable PREPARED record.  Locks
    stay held until {!decide}.  [gtid] — (coordinator node, coordinator
    branch txn) — rides in the prepared record so an in-doubt resolver
    knows whom to ask after a failure. *)

val decide : t -> txn -> commit:bool -> (unit, error) result
(** Phase 2: durable outcome record, then lock release. *)

val query_outcome : t -> Audit.txn_id -> (int, error) result
(** Ask the monitor what happened to a transaction (in-doubt
    resolution): 0 unknown, 1 active, 2 committed, 3 aborted,
    4 prepared.  Presumed abort — treat anything but 2 as abort. *)

val read : t -> txn -> file:int -> key:int -> ((int * int) option, error) result
(** Transactional read under a shared lock held to commit/abort: blocks
    while another transaction holds the row exclusively, so it never sees
    uncommitted data, and repeated reads within the transaction are
    stable (§1.1 strong serializability). *)

val lookup : t -> file:int -> key:int -> ((int * int) option, error) result
(** [(len, crc)] of a row, reading the owning DP2. *)

val lookup_payload : t -> file:int -> key:int -> (Bytes.t option, error) result
(** The stored row contents ([None] for an absent row or a content-free
    writer). *)

val scan : t -> file:int -> lo:int -> hi:int -> ?limit:int -> unit -> ((int * int * int) list, error) result
(** Range scan: [(key, len, crc)] rows with [lo <= key <= hi], merged in
    ascending key order across the file's partitions.  [limit] (default
    unlimited) caps rows per partition. *)

val response_time : t -> Stat.t
(** Begin-to-commit-reply times of completed transactions. *)

val rejections : t -> int
(** Begins refused — by the monitor's admission control or by the local
    TMF breaker.  Rejected work was never acknowledged: it is the
    degraded-service contract, not loss. *)

val timeouts : t -> int
(** Synchronous calls abandoned after [op_timeout] — each one left the
    server still working on a request nobody is waiting for. *)

val retry_budget : t -> Retry_budget.t option
(** The session's token bucket, if one was supplied. *)

val breaker_trips : t -> int
(** Closed→Open transitions summed over this session's breakers. *)

val breaker_rejected : t -> int
(** Requests short-circuited locally by open breakers. *)
