open Simkit
open Nsk

type request =
  | Append of Audit.record list
  | Flush of { through : Audit.asn; deadline : Time.t }
      (** [deadline = 0] means none; a positive absolute sim time lets
          the writer shed the wait once it can no longer matter *)
  | Trim of { through : Audit.asn }

type response =
  | Appended of { last_asn : Audit.asn }
  | Flushed of { durable : Audit.asn }
  | Trimmed of { records : int }
  | A_failed of string

type server = (request, response) Msgsys.server

type config = { append_cpu : Time.span; flush_cpu : Time.span }

let default_config = { append_cpu = Time.us 15; flush_cpu = Time.us 25 }

type waiter = {
  w_through : Audit.asn;
  w_respond : response -> unit;
  w_start : Time.t;
  w_span : Span.span;
  w_deadline : Time.t;  (** 0 = none *)
}

type state = {
  mutable next_asn : Audit.asn;
  mutable durable : Audit.asn;
  mutable buffer : (Audit.asn * Audit.record) list;  (** newest-first, not yet durable *)
}

(* Checkpoints mirror appends and flush completions to the backup. *)
type ckpt =
  | Ck_appended of (Audit.asn * Audit.record) list
  | Ck_durable of Audit.asn

type t = {
  adp_name : string;
  cfg : config;
  backend : Log_backend.t;
  srv : server;
  mutable pair : ckpt Procpair.t option;
  mutable live : state option;
  shadow : state;
  mutable waiters : waiter list;
  mutable wakeup : unit Mailbox.t;  (** kicks the flusher *)
  mutable epoch : int;  (** bumped per serve incarnation; stale flushers exit *)
  mutable appended : int;
  mutable flush_reqs : int;
  mutable shed : int;  (** expired flush waits dropped before batching *)
  mutable obs : Obs.t option;
  mutable flush_stat : Stat.t option;
}

let ckpt_size records =
  List.fold_left (fun acc (_, r) -> acc + 16 + Audit.wire_size r) 0 records

let pair_exn t = match t.pair with Some p -> p | None -> invalid_arg "Adp: not started"

let current_cpu t = Procpair.primary_cpu (pair_exn t)

let now t = Sim.now (Cpu.sim (current_cpu t))

let start_span t ?parent name =
  match t.obs with
  | Some o -> Span.start (Obs.spans o) ~track:t.adp_name ?parent name
  | None -> Span.null

let finish_span t sp =
  match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ()

let note_flush_wait t dt =
  match t.flush_stat with Some st -> Stat.add_span st dt | None -> ()

let state t =
  match t.live with
  | Some s -> s
  | None ->
      (* First run, or takeover: adopt the checkpoint-built shadow. *)
      let s =
        { next_asn = t.shadow.next_asn; durable = t.shadow.durable; buffer = t.shadow.buffer }
      in
      t.live <- Some s;
      s

let satisfy_waiters ?(flush = Span.null) t s =
  let ready, pending = List.partition (fun w -> w.w_through <= s.durable) t.waiters in
  t.waiters <- pending;
  List.iter
    (fun w ->
      note_flush_wait t (now t - w.w_start);
      if not (Span.is_null w.w_span) && not (Span.is_null flush) then begin
        (* Group commit: this transaction's durability rode the batch
           flush it piggybacked on — record the causal edge, and count
           the parked stretch before the flush started as queue. *)
        Span.link w.w_span flush;
        Span.mark_queue w.w_span (Span.start_time flush - w.w_start)
      end;
      finish_span t w.w_span;
      w.w_respond (Flushed { durable = s.durable }))
    ready

(* Admission control's back half: a flush wait whose transaction
   deadline already passed can no longer turn into an acknowledged
   commit, so answering it just spends write bandwidth the live work
   needs.  Shed it before staging the next batch. *)
let shed_expired t =
  let now = now t in
  let expired, live =
    List.partition (fun w -> w.w_deadline > 0 && now >= w.w_deadline) t.waiters
  in
  t.waiters <- live;
  List.iter
    (fun w ->
      t.shed <- t.shed + 1;
      if not (Span.is_null w.w_span) then
        Span.annotate w.w_span ~key:"error" "shed: deadline expired";
      finish_span t w.w_span;
      w.w_respond (A_failed "shed: deadline expired"))
    expired

let fail_waiters t msg =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter
    (fun w ->
      if not (Span.is_null w.w_span) then Span.annotate w.w_span ~key:"error" msg;
      finish_span t w.w_span;
      w.w_respond (A_failed msg))
    ws

(* Group commit: one backend write covers every record buffered at the
   moment it starts; commits that arrive during the write ride the next
   one.  Runs in a dedicated flusher process so the serve loop keeps
   absorbing appends while the spindle turns. *)
let flusher t ~epoch ~wakeup () =
  while t.epoch = epoch do
    (* Purely event-driven: every Flush request drops a kick here, so
       commits that arrive during a write are covered by the next one. *)
    Mailbox.recv wakeup;
    let s = state t in
    shed_expired t;
    while t.epoch = epoch && t.waiters <> [] && s.buffer <> [] do
      shed_expired t;
      let sect = Prof.section_begin () in
      let batch = List.rev s.buffer in
      let last = match s.buffer with (asn, _) :: _ -> asn | [] -> s.durable in
      s.buffer <- [];
      Prof.section_end sect "adp";
      Cpu.execute (current_cpu t) t.cfg.flush_cpu;
      let sp = start_span t "adp.flush" in
      if not (Span.is_null sp) then
        Span.annotate sp ~key:"batch" (string_of_int (List.length batch));
      (match Log_backend.write_records ~parent:sp t.backend batch with
      | Ok () ->
          s.durable <- max s.durable last;
          finish_span t sp;
          Procpair.checkpoint (pair_exn t) ~bytes:16 (Ck_durable s.durable);
          satisfy_waiters ~flush:sp t s
      | Error e ->
          (* Put the batch back so a takeover can still flush it. *)
          if not (Span.is_null sp) then Span.annotate sp ~key:"error" e;
          finish_span t sp;
          s.buffer <- List.rev_append batch s.buffer;
          fail_waiters t e)
    done
  done

let handle t s req respond =
  match req with
  | Append records -> (
      let sp = start_span t ~parent:(Msgsys.caller_span t.srv) "adp.append" in
      Span.note_queue sp (Msgsys.caller_wait t.srv);
      if not (Span.is_null sp) then
        Span.annotate sp ~key:"records" (string_of_int (List.length records));
      Cpu.execute (current_cpu t) (List.length records * t.cfg.append_cpu);
      (* Section opens after the CPU charge ([Cpu.execute] suspends) and
         closes before the backend write does. *)
      let sect = Prof.section_begin () in
      let stamped =
        List.map
          (fun r ->
            let asn = s.next_asn in
            s.next_asn <- asn + 1;
            (asn, r))
          records
      in
      t.appended <- t.appended + List.length stamped;
      let last_asn = match List.rev stamped with (asn, _) :: _ -> asn | [] -> s.durable in
      Prof.section_end sect "adp";
      if Log_backend.synchronous t.backend then
        (* PM path: durable as soon as the RDMA write completes; nothing
           to checkpoint but the counters. *)
        match Log_backend.write_records ~parent:sp t.backend stamped with
        | Ok () ->
            s.durable <- last_asn;
            Procpair.checkpoint (pair_exn t) ~bytes:16 (Ck_durable s.durable);
            finish_span t sp;
            respond (Appended { last_asn })
        | Error e ->
            if not (Span.is_null sp) then Span.annotate sp ~key:"error" e;
            finish_span t sp;
            respond (A_failed e)
      else begin
        (* Disk path: buffer now, flush later — but the buffered records
           must survive a takeover, so checkpoint them to the backup
           before acknowledging. *)
        s.buffer <- List.rev_append stamped s.buffer;
        Procpair.checkpoint (pair_exn t) ~bytes:(ckpt_size stamped) (Ck_appended stamped);
        finish_span t sp;
        respond (Appended { last_asn })
      end)
  | Flush { through; deadline } ->
      t.flush_reqs <- t.flush_reqs + 1;
      if through <= s.durable then begin
        (* Already durable: a zero-wait flush, counted as such. *)
        note_flush_wait t 0;
        respond (Flushed { durable = s.durable })
      end
      else if deadline > 0 && now t >= deadline then begin
        (* Dead on arrival: don't stage work the caller can no longer
           acknowledge. *)
        t.shed <- t.shed + 1;
        respond (A_failed "shed: deadline expired")
      end
      else if Log_backend.synchronous t.backend then
        (* PM path: appends are durable at reply time, so an ASN above
           the durable horizon means an append failed and its records
           are gone.  There is no flusher to kick — surface the
           degradation instead of parking the caller on a mailbox nobody
           reads until its RPC times out. *)
        respond
          (A_failed
             (Printf.sprintf "trail degraded: ASN %d past durable horizon %d" through
                s.durable))
      else begin
        let sp = start_span t ~parent:(Msgsys.caller_span t.srv) "adp.flush_wait" in
        Span.note_queue sp (Msgsys.caller_wait t.srv);
        if not (Span.is_null sp) then
          Span.annotate sp ~key:"through" (string_of_int through);
        t.waiters <-
          {
            w_through = through;
            w_respond = respond;
            w_start = now t;
            w_span = sp;
            w_deadline = deadline;
          }
          :: t.waiters;
        Mailbox.send t.wakeup ()
      end
  | Trim { through } ->
      if through > s.durable then respond (A_failed "cannot trim past the durable horizon")
      else respond (Trimmed { records = Log_backend.trim t.backend ~through })

let serve t () =
  let s = state t in
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  if not (Log_backend.synchronous t.backend) then
    ignore
      (Cpu.spawn (current_cpu t) ~name:(t.adp_name ^ ":flusher")
         (flusher t ~epoch ~wakeup:t.wakeup));
  while true do
    let req, respond = Msgsys.next_request t.srv in
    handle t s req respond
  done

let apply_ckpt t = function
  | Ck_appended records ->
      t.shadow.buffer <- List.rev_append records t.shadow.buffer;
      List.iter (fun (a, _) -> t.shadow.next_asn <- max t.shadow.next_asn (a + 1)) records
  | Ck_durable asn ->
      t.shadow.durable <- max t.shadow.durable asn;
      t.shadow.buffer <- List.filter (fun (a, _) -> a > asn) t.shadow.buffer;
      t.shadow.next_asn <- max t.shadow.next_asn (asn + 1)

let start ~fabric ~name ~primary ~backup ~backend ?(config = default_config) ?obs () =
  let srv = Msgsys.create_server fabric ~cpu:primary ~name in
  let t =
    {
      adp_name = name;
      cfg = config;
      backend;
      srv;
      pair = None;
      live = None;
      shadow = { next_asn = 1; durable = 0; buffer = [] };
      waiters = [];
      wakeup = Mailbox.create ~name:(name ^ ":wakeup") ();
      epoch = 0;
      appended = 0;
      flush_reqs = 0;
      shed = 0;
      obs;
      flush_stat =
        (match obs with
        | Some o -> Some (Metrics.stat (Obs.metrics o) "adp.flush_latency")
        | None -> None);
    }
  in
  (match obs with
  | Some o ->
      Msgsys.set_obs srv o;
      let m = Obs.metrics o in
      (* Gauges, not a probe: the ADP's flush busy time is the serial sum
         of its primary+mirror volume writes, which would double-count
         the disks in the bottleneck ranking. *)
      Metrics.register_gauge m ("adp." ^ name ^ ".buffer") (fun () ->
          let s = match t.live with Some s -> s | None -> t.shadow in
          float_of_int (List.length s.buffer));
      Metrics.register_gauge m ("adp." ^ name ^ ".flush_backlog") (fun () ->
          float_of_int (List.length t.waiters));
      Metrics.register_gauge m ("adp." ^ name ^ ".shed_expired") (fun () ->
          float_of_int t.shed)
  | None -> ());
  let pair =
    Procpair.start ~fabric ~name ~primary ~backup
      ~apply:(fun ck -> apply_ckpt t ck)
      ~serve:(fun () -> serve t ())
      ~on_takeover:(fun () ->
        t.live <- None;
        (* Callers of in-flight flushes were already failed by the port
           move and will retry against the new primary.  A fresh wakeup
           mailbox orphans any flusher that survived the failure. *)
        t.waiters <- [];
        t.wakeup <- Mailbox.create ~name:(t.adp_name ^ ":wakeup") ();
        Msgsys.move t.srv ~cpu:backup)
      ()
  in
  t.pair <- Some pair;
  t

let server t = t.srv

let backend t = t.backend

let durable_asn t =
  match t.live with Some s -> s.durable | None -> t.shadow.durable

let next_asn t = match t.live with Some s -> s.next_asn | None -> t.shadow.next_asn

let appended_records t = t.appended

let flushes_performed t = Log_backend.writes t.backend

let flush_requests t = t.flush_reqs

let shed_expired_count t = t.shed

let pair_takeovers t = Procpair.takeovers (pair_exn t)

let outage_time t = Procpair.outage_time (pair_exn t)

let checkpoint_bytes t = Procpair.checkpoint_bytes (pair_exn t)

let kill_primary t = Procpair.kill_primary (pair_exn t)

let halt t = Procpair.halt (pair_exn t)
