open Simkit

(** The NSK message system: request/reply RPC between processes over the
    ServerNet fabric.

    A server owns a typed port on a CPU; clients {!call} it and block for
    the reply.  Message latency is the fabric's transfer time for the
    request and reply sizes.  When a server's CPU fails, queued and
    in-flight calls fail with [Server_down] so callers can retry against
    a promoted backup (see {!Procpair}). *)

type error = Server_down | Timed_out

val pp_error : Format.formatter -> error -> unit

type ('req, 'resp) server

val create_server :
  Servernet.Fabric.t -> cpu:Cpu.t -> name:string -> ('req, 'resp) server

val set_extra_latency : ('req, 'resp) server -> Time.span -> unit
(** Additional one-way wire latency applied to every request and reply —
    how an inter-node (Expand-style) link is modelled when callers sit on
    another node's fabric. *)

val server_name : ('req, 'resp) server -> string

val server_cpu : ('req, 'resp) server -> Cpu.t

val set_obs : ('req, 'resp) server -> Obs.t -> unit
(** Register this port with an observability context: request/reply hop
    latencies feed the shared [msg.hop_ns] stat and requests bump
    [msg.requests]. *)

val caller_span : ('req, 'resp) server -> Span.span
(** The span carried by the most recently dequeued request (the null span
    if the caller passed none).  Read it synchronously after
    {!next_request} returns — before blocking or spawning — to parent
    server-side spans under the client's. *)

val caller_wait : ('req, 'resp) server -> Time.span
(** Inbox residency of the most recently dequeued request: dequeue time
    minus delivery time — the queue-wait half of the server's hop.  Same
    read-synchronously caveat as {!caller_span}; feed it to
    {!Simkit.Span.note_queue} on the server-side span. *)

val call :
  ('req, 'resp) server ->
  from:Cpu.t ->
  ?req_bytes:int ->
  ?resp_bytes:int ->
  ?timeout:Time.span ->
  ?span:Span.span ->
  'req ->
  ('resp, error) result
(** Send a request and wait for the reply.  [req_bytes]/[resp_bytes]
    (default 256) drive the latency model.  [span] rides in the envelope
    so the server can parent its work under the caller (see
    {!caller_span}).  Process context only. *)

val call_async :
  ('req, 'resp) server ->
  from:Cpu.t ->
  ?req_bytes:int ->
  ?resp_bytes:int ->
  ?span:Span.span ->
  'req ->
  ('resp, error) result Ivar.t
(** Fire a request without blocking; the ivar fills with the reply (or
    [Server_down]).  How transaction drivers issue their boxcarred
    asynchronous inserts. *)

val next_request : ('req, 'resp) server -> 'req * ('resp -> unit)
(** Dequeue the next request, blocking if none.  The returned closure
    sends the reply (call it exactly once).  Process context only. *)

val next_request_timeout :
  ('req, 'resp) server -> Time.span -> ('req * ('resp -> unit)) option

val pending : ('req, 'resp) server -> int

val move : ('req, 'resp) server -> cpu:Cpu.t -> unit
(** Relocate the port to another CPU (backup takeover).  Queued and
    outstanding calls fail with [Server_down]; callers retry and reach
    the new location transparently, as NSK's fault-tolerant message
    routing provides. *)

val fail_outstanding : ('req, 'resp) server -> unit
(** Fail queued and in-flight calls without moving the port. *)
