open Simkit

type error = Server_down | Timed_out

let pp_error ppf = function
  | Server_down -> Format.pp_print_string ppf "server down"
  | Timed_out -> Format.pp_print_string ppf "timed out"

type ('req, 'resp) envelope = {
  payload : 'req;
  resp_bytes : int;
  reply : ('resp, error) result Ivar.t;
  env_span : Span.span;
  env_sent : Time.t;  (** delivery into the inbox; dequeue minus this = queue wait *)
}

type ('req, 'resp) server = {
  fabric : Servernet.Fabric.t;
  name : string;
  mutable cpu : Cpu.t;
  mutable inbox : ('req, 'resp) envelope Mailbox.t;
  mutable outstanding : ('resp, error) result Ivar.t list;
  mutable epoch : int;
  mutable extra_latency : Time.span;
  mutable last_span : Span.span;
  mutable last_wait : Time.span;
  mutable hop_stat : Stat.t option;
  mutable req_counter : Stat.Counter.t option;
  mutable inbox_probe : Probe.t option;
}

let create_server fabric ~cpu ~name =
  {
    fabric;
    name;
    cpu;
    inbox = Mailbox.create ~name ();
    outstanding = [];
    epoch = 0;
    extra_latency = 0;
    last_span = Span.null;
    last_wait = 0;
    hop_stat = None;
    req_counter = None;
    inbox_probe = None;
  }

let set_obs s obs =
  let m = Obs.metrics obs in
  s.hop_stat <- Some (Metrics.stat m "msg.hop_ns");
  s.req_counter <- Some (Metrics.counter m "msg.requests");
  (* One aggregate probe across every server: depth = total queued
     requests, busy = wire time spent moving envelopes. *)
  let p = Metrics.probe m "msgsys.inbox" in
  Probe.set_clock p (fun () -> Sim.now (Cpu.sim s.cpu));
  s.inbox_probe <- Some p

let note_hop s dt =
  if Level.counters_on () then begin
    (match s.hop_stat with Some st -> Stat.add_span st dt | None -> ());
    match s.inbox_probe with Some p -> Probe.busy_span p dt | None -> ()
  end

let probe_enqueue s =
  match s.inbox_probe with Some p -> Probe.enqueue p | None -> ()

let probe_dequeue s =
  match s.inbox_probe with Some p -> Probe.dequeue p | None -> ()

let set_extra_latency s span =
  if span < 0 then invalid_arg "Msgsys.set_extra_latency: negative span";
  s.extra_latency <- span

let server_name s = s.name

let server_cpu s = s.cpu

let forget s iv = s.outstanding <- List.filter (fun i -> i != iv) s.outstanding

let call_async s ~from ?(req_bytes = 256) ?(resp_bytes = 256) ?span payload =
  let reply = Ivar.create () in
  if not (Cpu.is_up from) then Ivar.fill reply (Error Server_down)
  else begin
    let sect = Prof.section_begin () in
    let sim = Cpu.sim from in
    (* Request wire time, then delivery (if the target is still up). *)
    let dt = Servernet.Fabric.transfer_time s.fabric ~bytes:req_bytes + s.extra_latency in
    note_hop s dt;
    (match s.req_counter with
    | Some c when Level.counters_on () -> Stat.Counter.incr c
    | _ -> ());
    let env_span = match span with Some sp -> sp | None -> Span.null in
    Sim.at sim ~after:dt (fun () ->
        if not (Cpu.is_up s.cpu) then ignore (Ivar.try_fill reply (Error Server_down))
        else begin
          s.outstanding <- reply :: s.outstanding;
          probe_enqueue s;
          Prof.bump_envelope ();
          Mailbox.send s.inbox
            { payload; resp_bytes; reply; env_span; env_sent = Sim.now sim }
        end);
    Prof.section_end sect "msgsys"
  end;
  reply

let call s ~from ?req_bytes ?resp_bytes ?timeout ?span payload =
  let reply = call_async s ~from ?req_bytes ?resp_bytes ?span payload in
  let result =
    match timeout with
    | None -> Ivar.read reply
    | Some span -> (
        match Ivar.read_timeout reply span with Some r -> r | None -> Error Timed_out)
  in
  forget s reply;
  result

let caller_span s = s.last_span

let caller_wait s = s.last_wait

let next_request s =
  let env = Mailbox.recv s.inbox in
  probe_dequeue s;
  s.last_span <- env.env_span;
  s.last_wait <- Sim.now (Cpu.sim s.cpu) - env.env_sent;
  let epoch = s.epoch in
  let respond resp =
    if s.epoch = epoch then begin
      (* Reply wire time, paid off the server's critical path. *)
      let dt =
        Servernet.Fabric.transfer_time s.fabric ~bytes:env.resp_bytes + s.extra_latency
      in
      note_hop s dt;
      let sim = Cpu.sim s.cpu in
      Sim.at sim ~after:dt (fun () -> ignore (Ivar.try_fill env.reply (Ok resp)))
    end
  in
  (env.payload, respond)

let next_request_timeout s span =
  match Mailbox.recv_timeout s.inbox span with
  | None -> None
  | Some env ->
      probe_dequeue s;
      s.last_span <- env.env_span;
      s.last_wait <- Sim.now (Cpu.sim s.cpu) - env.env_sent;
      let epoch = s.epoch in
      let respond resp =
        if s.epoch = epoch then begin
          let dt =
            Servernet.Fabric.transfer_time s.fabric ~bytes:env.resp_bytes + s.extra_latency
          in
          note_hop s dt;
          let sim = Cpu.sim s.cpu in
          Sim.at sim ~after:dt (fun () -> ignore (Ivar.try_fill env.reply (Ok resp)))
        end
      in
      Some (env.payload, respond)

let pending s = Mailbox.length s.inbox

let fail_outstanding s =
  s.epoch <- s.epoch + 1;
  (* Drain messages still queued... *)
  let rec drain () =
    match Mailbox.try_recv s.inbox with
    | None -> ()
    | Some env ->
        probe_dequeue s;
        ignore (Ivar.try_fill env.reply (Error Server_down));
        drain ()
  in
  drain ();
  (* ... and fail calls whose requests were already dequeued. *)
  let out = s.outstanding in
  s.outstanding <- [];
  List.iter (fun iv -> ignore (Ivar.try_fill iv (Error Server_down))) out

let move s ~cpu =
  fail_outstanding s;
  s.cpu <- cpu;
  s.inbox <- Mailbox.create ~name:s.name ()
