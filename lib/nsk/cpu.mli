open Simkit

(** A logical NSK processor.

    Each CPU is a ServerNet endpoint (NonStop CPUs talk to devices and to
    each other only through the fabric).  Processes spawned on a CPU die
    with it.  {!execute} models instruction-path cost with a simple
    serialization queue, so two busy processes on one CPU slow each other
    down. *)

type t

val create : Sim.t -> Servernet.Fabric.t -> index:int -> t
(** Attach CPU [index] to the fabric with a small RAM-backed store used
    for incoming RDMA (e.g. checkpoint pushes). *)

val index : t -> int

val sim : t -> Sim.t

val endpoint : t -> Servernet.Fabric.endpoint

val endpoint_id : t -> int

val is_up : t -> bool

val spawn : t -> name:string -> (unit -> unit) -> Sim.pid
(** Spawn a process resident on this CPU.  Raises [Invalid_argument] if
    the CPU is down. *)

val execute : t -> Time.span -> unit
(** Consume CPU time: the calling process occupies the processor for the
    span, queueing behind other {!execute} calls on the same CPU.  Must
    run in process context. *)

val fail : t -> unit
(** Halt the CPU: every resident process is killed, the endpoint goes
    dead, and failure hooks run.  Idempotent. *)

val restart : t -> unit
(** Bring the CPU back up (processes are not resurrected). *)

val on_failure : t -> (unit -> unit) -> unit
(** Register a hook to run when the CPU fails, e.g. a process-pair
    monitor arranging takeover. *)

val busy_time : t -> Time.span
(** Total time consumed through {!execute}. *)

val set_probe : t -> Probe.t -> unit
(** Mirror {!execute} spans into a utilization probe so the time-series
    sampler can report per-CPU busy fraction. *)
