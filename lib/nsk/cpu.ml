open Simkit

type t = {
  cpu_sim : Sim.t;
  idx : int;
  ep : Servernet.Fabric.endpoint;
  mutable up : bool;
  mutable residents : Sim.pid list;
  mutable failure_hooks : (unit -> unit) list;
  mutable busy_until : Time.t;
  mutable busy : Time.span;
  mutable probe : Probe.t option;
}

let create sim fabric ~index =
  let store = Servernet.Fabric.byte_store (1 lsl 20) in
  let ep = Servernet.Fabric.attach fabric ~name:(Printf.sprintf "cpu%d" index) ~store in
  {
    cpu_sim = sim;
    idx = index;
    ep;
    up = true;
    residents = [];
    failure_hooks = [];
    busy_until = Time.zero;
    busy = 0;
    probe = None;
  }

let index t = t.idx

let sim t = t.cpu_sim

let endpoint t = t.ep

let endpoint_id t = Servernet.Fabric.id t.ep

let is_up t = t.up

let spawn t ~name body =
  if not t.up then invalid_arg "Cpu.spawn: CPU is down";
  let pid = Sim.spawn t.cpu_sim ~name:(Printf.sprintf "cpu%d:%s" t.idx name) body in
  t.residents <- pid :: t.residents;
  (* Keep the resident list from growing without bound across short-lived
     processes. *)
  Sim.on_exit t.cpu_sim pid (fun _ ->
      t.residents <- List.filter (fun p -> p <> pid) t.residents);
  pid

let execute t span =
  if span < 0 then invalid_arg "Cpu.execute: negative span";
  let now = Sim.now t.cpu_sim in
  let start = max now t.busy_until in
  let finish = start + span in
  t.busy_until <- finish;
  t.busy <- t.busy + span;
  (match t.probe with Some p -> Probe.busy_span p span | None -> ());
  Sim.wait_until finish

let fail t =
  if t.up then begin
    t.up <- false;
    Servernet.Fabric.set_alive t.ep false;
    let victims = t.residents in
    t.residents <- [];
    List.iter (fun pid -> Sim.kill t.cpu_sim pid) victims;
    let hooks = t.failure_hooks in
    List.iter (fun h -> h ()) hooks
  end

let restart t =
  if not t.up then begin
    t.up <- true;
    Servernet.Fabric.set_alive t.ep true
  end

let on_failure t hook = t.failure_hooks <- hook :: t.failure_hooks

let busy_time t = t.busy

let set_probe t p = t.probe <- Some p
