open Simkit

type geometry = {
  capacity_bytes : int;
  block_bytes : int;
  seek_base : Time.span;
  seek_full : Time.span;
  rotation_period : Time.span;
  bytes_per_ns : float;
  sequential_settle : Time.span;
}

let default_geometry =
  {
    capacity_bytes = 36 * 1024 * 1024 * 1024;
    block_bytes = 512;
    seek_base = Time.ms 1;
    seek_full = Time.ms 10;
    rotation_period = Time.ms 6 (* 10 kRPM *);
    bytes_per_ns = 0.04 (* 40 MB/s *);
    sequential_settle = Time.us 300;
  }

type cache_config = {
  cache_bytes : int;
  cache_latency : Time.span;
  destage_bytes_per_ns : float;
}

let default_cache =
  { cache_bytes = 8 * 1024 * 1024; cache_latency = Time.us 150; destage_bytes_per_ns = 0.03 }

type t = {
  sim : Sim.t;
  geom : geometry;
  cache : cache_config option;
  rng : Rng.t;
  mutable head_block : int;
  mutable cache_used : int;
  mutable last_destage : Time.t;
  mutable slow_factor : float;  (** fail-slow service multiplier, >= 1.0 *)
  mutable slow_jitter : Time.span;  (** max extra seeded delay per request *)
}

let create sim ?(geometry = default_geometry) ?cache () =
  {
    sim;
    geom = geometry;
    cache;
    rng = Rng.split (Sim.rng sim);
    head_block = 0;
    cache_used = 0;
    last_destage = Time.zero;
    slow_factor = 1.0;
    slow_jitter = 0;
  }

let geometry t = t.geom

let blocks_of t len = max 1 ((len + t.geom.block_bytes - 1) / t.geom.block_bytes)

let total_blocks t = t.geom.capacity_bytes / t.geom.block_bytes

let transfer_time t len = int_of_float (float_of_int len /. t.geom.bytes_per_ns)

type parts = {
  seek : Time.span;
  rotation : Time.span;
  transfer : Time.span;
  cache_hit : bool;
}

let parts_total p = p.seek + p.rotation + p.transfer

(* Positioning plus media time with the head starting at [t.head_block].
   A sequential read streams (settle only); a sequential *write* still
   waits for the platter to come around to the target sector — the
   classic one-rotation floor of synchronous log appends. *)
let mechanical_parts t ~kind ~block ~len =
  let sequential = block = t.head_block in
  let seek, rotation =
    if sequential then
      match kind with
      | `Read -> (t.geom.sequential_settle, 0)
      | `Write ->
          (t.geom.sequential_settle, Rng.uniform_span t.rng t.geom.rotation_period)
    else
      let distance = abs (block - t.head_block) in
      let frac = float_of_int distance /. float_of_int (total_blocks t) in
      let seek =
        t.geom.seek_base
        + int_of_float (frac *. float_of_int (t.geom.seek_full - t.geom.seek_base))
      in
      (seek, Rng.uniform_span t.rng t.geom.rotation_period)
  in
  { seek; rotation; transfer = transfer_time t len; cache_hit = false }

(* Account for background destaging that happened since the last call. *)
let drain_cache t cfg =
  let now = Sim.now t.sim in
  let elapsed = now - t.last_destage in
  t.last_destage <- now;
  let drained = int_of_float (float_of_int elapsed *. cfg.destage_bytes_per_ns) in
  t.cache_used <- max 0 (t.cache_used - drained)

(* Gray-failure injection: a degraded drive (retry storms, thermal
   recalibration) stretches every component of the service time and adds
   seeded jitter onto the transfer leg.  Healthy disks (factor 1.0, no
   jitter) never sample the RNG for this. *)
let slow_parts t p =
  if t.slow_factor <= 1.0 && t.slow_jitter = 0 then p
  else
    let scale x = int_of_float (float_of_int x *. t.slow_factor) in
    let jitter = if t.slow_jitter > 0 then Rng.uniform_span t.rng t.slow_jitter else 0 in
    {
      seek = scale p.seek;
      rotation = scale p.rotation;
      transfer = scale p.transfer + jitter;
      cache_hit = p.cache_hit;
    }

let service_parts t ~kind ~block ~len =
  let advance () = t.head_block <- block + blocks_of t len in
  let parts =
    match (kind, t.cache) with
    | `Read, _ | `Write, None ->
        let p = mechanical_parts t ~kind ~block ~len in
        advance ();
        p
    | `Write, Some cfg ->
        drain_cache t cfg;
        if t.cache_used + len <= cfg.cache_bytes then begin
          t.cache_used <- t.cache_used + len;
          { seek = 0; rotation = 0; transfer = cfg.cache_latency; cache_hit = true }
        end
        else begin
          (* Cache full: the write waits for media like an uncached one. *)
          let p = mechanical_parts t ~kind ~block ~len in
          advance ();
          p
        end
  in
  slow_parts t parts

let service t ~kind ~block ~len = parts_total (service_parts t ~kind ~block ~len)

let cache_used t = t.cache_used

let degrade t ~factor ?(jitter = 0) () =
  if factor < 1.0 then invalid_arg "Disk.degrade: factor >= 1.0";
  if jitter < 0 then invalid_arg "Disk.degrade: negative jitter";
  t.slow_factor <- factor;
  t.slow_jitter <- jitter

let restore_speed t =
  t.slow_factor <- 1.0;
  t.slow_jitter <- 0

let slow_factor t = t.slow_factor
