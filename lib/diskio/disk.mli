open Simkit

(** Mechanical disk timing model (2004-era drive).

    A [Disk.t] tracks head position and write-cache occupancy and
    computes per-request service times: seek distance-dependent
    positioning, rotational delay, and media transfer.  Sequential reads
    stream (settle time only); sequential synchronous writes skip the
    seek but still wait out a rotational miss before the target sector
    passes under the head — the millisecond floor under every audit-trail
    flush that persistent memory removes.

    The model is timing-only: requests carry sizes, not payloads.  Data
    content lives in the processes that own the volumes. *)

type geometry = {
  capacity_bytes : int;
  block_bytes : int;
  seek_base : Time.span;  (** shortest non-zero seek *)
  seek_full : Time.span;  (** full-stroke seek *)
  rotation_period : Time.span;
  bytes_per_ns : float;  (** media transfer rate *)
  sequential_settle : Time.span;
      (** positioning cost of a back-to-back sequential access *)
}

val default_geometry : geometry
(** 36 GB, 10 kRPM, ~5 ms average seek, 40 MB/s media rate. *)

type cache_config = {
  cache_bytes : int;  (** battery-backed write cache capacity *)
  cache_latency : Time.span;  (** completion time when absorbed by cache *)
  destage_bytes_per_ns : float;  (** sustained drain rate to media *)
}

val default_cache : cache_config

type t

val create : Sim.t -> ?geometry:geometry -> ?cache:cache_config -> unit -> t
(** [cache] enables a write cache (reads and cache-miss writes still pay
    mechanical time). *)

val geometry : t -> geometry

type parts = {
  seek : Time.span;  (** seek, or settle on a sequential access *)
  rotation : Time.span;  (** rotational delay waited out *)
  transfer : Time.span;  (** media (or cache) transfer *)
  cache_hit : bool;  (** absorbed by the write cache *)
}

val parts_total : parts -> Time.span

val service :
  t -> kind:[ `Read | `Write ] -> block:int -> len:int -> Time.span
(** Service time for a request starting now, updating head position and
    cache state.  [len] is in bytes; [block] addresses units of
    [block_bytes]. *)

val service_parts :
  t -> kind:[ `Read | `Write ] -> block:int -> len:int -> parts
(** Like {!service} but itemised, so instrumentation can attribute the
    rotational-miss share of synchronous log appends separately from
    seek and transfer time. *)

val cache_used : t -> int
(** Current write-cache occupancy in bytes (0 without a cache). *)

(** {1 Fail-slow injection}

    A degraded drive answers late instead of never: retry storms or
    thermal recalibration stretch every request.  Grayfail drills use
    this to prove the stack bounds tail latency under slow hardware. *)

val degrade : t -> factor:float -> ?jitter:Time.span -> unit -> unit
(** Multiply every service-time component by [factor] ([>= 1.0]) and add
    up to [jitter] seeded extra per request.  Cache hits are stretched
    too — a sick controller is slow even out of cache. *)

val restore_speed : t -> unit
(** Back to nominal timing (factor 1.0, no jitter). *)

val slow_factor : t -> float
(** The multiplier currently in force (1.0 when healthy). *)
