open Simkit

type error = Volume_down

let pp_error ppf Volume_down = Format.pp_print_string ppf "volume down"

type request = {
  kind : [ `Read | `Write ];
  block : int;
  len : int;
  issued : Time.t;
  done_ : (unit, error) result Ivar.t;
  req_span : Span.span;
}

type scheduling = Fifo | Elevator

type t = {
  sim : Sim.t;
  vol_name : string;
  disk : Disk.t;
  queue : request Mailbox.t;
  scheduling : scheduling;
  mutable pending : request list;  (** elevator's reorder buffer *)
  mutable sweep_up : bool;
  mutable head_hint : int;
  mutable up : bool;
  mutable append_block : int;
  mutable ops : int;
  mutable bytes : int;
  mutable busy : Time.span;
  latency : Stat.t;
  mutable obs : Obs.t option;
  mutable svc_stat : Stat.t option;
  mutable rot_stat : Stat.t option;
  mutable probe : Probe.t option;
  mutable ops_counter : Stat.Counter.t option;
  mutable hit_counter : Stat.Counter.t option;
}

let finish_span t sp =
  match t.obs with Some o -> Span.finish (Obs.spans o) sp | None -> ()

(* Pick the next request: FIFO order, or the SCAN sweep for elevators. *)
let next_request t =
  match t.scheduling with
  | Fifo -> (
      match t.pending with
      | req :: rest ->
          t.pending <- rest;
          Some req
      | [] -> None)
  | Elevator -> (
      match t.pending with
      | [] -> None
      | pending ->
          let ahead, behind =
            List.partition
              (fun r -> if t.sweep_up then r.block >= t.head_hint else r.block <= t.head_hint)
              pending
          in
          let better a b =
            let da = abs (a.block - t.head_hint) and db = abs (b.block - t.head_hint) in
            if da < db then a else b
          in
          let pick_from group =
            match group with [] -> None | r :: rest -> Some (List.fold_left better r rest)
          in
          let chosen =
            match pick_from ahead with
            | Some r -> Some r
            | None ->
                (* End of sweep: reverse direction. *)
                t.sweep_up <- not t.sweep_up;
                pick_from behind
          in
          (match chosen with
          | Some r -> t.pending <- List.filter (fun x -> x != r) pending
          | None -> ());
          chosen)

let server t () =
  while true do
    (* Drain everything queued, then schedule from the reorder buffer. *)
    (match Mailbox.try_recv t.queue with
    | Some req ->
        t.pending <- t.pending @ [ req ]
    | None ->
        if t.pending = [] then begin
          let req = Mailbox.recv t.queue in
          t.pending <- [ req ]
        end);
    let rec drain () =
      match Mailbox.try_recv t.queue with
      | Some req ->
          t.pending <- t.pending @ [ req ];
          drain ()
      | None -> ()
    in
    drain ();
    match next_request t with
    | None -> ()
    | Some req ->
        if not t.up then begin
          finish_span t req.req_span;
          (match t.probe with Some p -> Probe.dequeue p | None -> ());
          Ivar.fill req.done_ (Error Volume_down)
        end
        else begin
          let sect = Prof.section_begin () in
          let parts =
            Disk.service_parts t.disk ~kind:req.kind ~block:req.block ~len:req.len
          in
          let dt = Disk.parts_total parts in
          let counters = Level.counters_on () in
          (match t.svc_stat with
          | Some st when counters -> Stat.add_span st dt
          | _ -> ());
          (match t.ops_counter with
          | Some c when counters -> Stat.Counter.incr c
          | _ -> ());
          if parts.Disk.cache_hit then
            (match t.hit_counter with
            | Some c when counters -> Stat.Counter.incr c
            | _ -> ());
          if req.kind = `Write && parts.Disk.rotation > 0 then begin
            (match t.rot_stat with
            | Some st when counters -> Stat.add_span st parts.Disk.rotation
            | _ -> ());
            if not (Span.is_null req.req_span) then
              Span.annotate req.req_span ~key:"rotation_ns"
                (string_of_int parts.Disk.rotation)
          end;
          if parts.Disk.cache_hit && not (Span.is_null req.req_span) then
            Span.annotate req.req_span ~key:"cache" "hit";
          t.head_hint <- req.block;
          (* End before the service sleep: the suspension would invalidate
             the sample. *)
          Prof.section_end sect "diskio";
          Sim.sleep dt;
          t.busy <- t.busy + dt;
          (match t.probe with
          | Some p ->
              Probe.busy_span p dt;
              Probe.dequeue p
          | None -> ());
          finish_span t req.req_span;
          if t.up then begin
            t.ops <- t.ops + 1;
            t.bytes <- t.bytes + req.len;
            Stat.add_span t.latency (Sim.now t.sim - req.issued);
            Ivar.fill req.done_ (Ok ())
          end
          else Ivar.fill req.done_ (Error Volume_down)
        end
  done

let create sim ~name ?geometry ?cache ?(scheduling = Fifo) () =
  let t =
    {
      sim;
      vol_name = name;
      disk = Disk.create sim ?geometry ?cache ();
      queue = Mailbox.create ~name ();
      scheduling;
      pending = [];
      sweep_up = true;
      head_hint = 0;
      up = true;
      append_block = 0;
      ops = 0;
      bytes = 0;
      busy = 0;
      latency = Stat.create ~name ();
      obs = None;
      svc_stat = None;
      rot_stat = None;
      probe = None;
      ops_counter = None;
      hit_counter = None;
    }
  in
  let (_ : Sim.pid) = Sim.spawn sim ~name:("vol:" ^ name) (server t) in
  t

let name t = t.vol_name

let sim t = t.sim

let set_obs t obs =
  t.obs <- Some obs;
  let m = Obs.metrics obs in
  t.svc_stat <- Some (Metrics.stat m "disk.service_ns");
  t.rot_stat <- Some (Metrics.stat m "disk.rotational_miss_ns");
  (* Per-volume queue/utilization probe, plus fleet-wide write-cache hit
     accounting shared across every volume. *)
  let p = Metrics.probe m ("vol." ^ t.vol_name) in
  Probe.set_clock p (fun () -> Sim.now t.sim);
  t.probe <- Some p;
  let ops = Metrics.counter m "disk.ops" in
  let hits = Metrics.counter m "disk.cache_hits" in
  t.ops_counter <- Some ops;
  t.hit_counter <- Some hits;
  if Metrics.find m "disk.cache_hit_ratio" = None then
    Metrics.register_gauge m "disk.cache_hit_ratio" (fun () ->
        let n = Stat.Counter.get ops in
        if n = 0 then 0.0 else float_of_int (Stat.Counter.get hits) /. float_of_int n)

let submit ?parent t ~kind ~block ~len =
  let req_span =
    match t.obs with
    (* The track string is concatenated eagerly, so the whole span
       construction sits behind the global level check. *)
    | Some o when Obs.spans_on () ->
        let sp =
          Span.start (Obs.spans o) ~track:("vol:" ^ t.vol_name) ?parent
            (match kind with `Read -> "disk.read" | `Write -> "disk.write")
        in
        if not (Span.is_null sp) then begin
          Span.annotate sp ~key:"block" (string_of_int block);
          Span.annotate sp ~key:"len" (string_of_int len)
        end;
        sp
    | _ -> Span.null
  in
  let done_ = Ivar.create () in
  if not t.up then begin
    finish_span t req_span;
    Ivar.fill done_ (Error Volume_down)
  end
  else begin
    (match t.probe with Some p -> Probe.enqueue p | None -> ());
    Mailbox.send t.queue
      { kind; block; len; issued = Sim.now t.sim; done_; req_span }
  end;
  done_

let write ?parent t ~block ~len = Ivar.read (submit ?parent t ~kind:`Write ~block ~len)

let read ?parent t ~block ~len = Ivar.read (submit ?parent t ~kind:`Read ~block ~len)

let append ?parent t ~len =
  let block = t.append_block in
  let blocks = max 1 ((len + 511) / 512) in
  t.append_block <- t.append_block + blocks;
  write ?parent t ~block ~len

let set_up t up = t.up <- up

let is_up t = t.up

let degrade t ~factor ?jitter () = Disk.degrade t.disk ~factor ?jitter ()

let restore_speed t = Disk.restore_speed t.disk

let slow_factor t = Disk.slow_factor t.disk

let queue_depth t = Mailbox.length t.queue + List.length t.pending

let completed_ops t = t.ops

let completed_bytes t = t.bytes

let busy_time t = t.busy

let service_stat t = t.latency
