open Simkit

(** A disk volume: a {!Disk.t} behind a FIFO request queue served by a
    dedicated process, as a NonStop disk process would.  Requests queue
    when the spindle is busy, so volumes shared by several writers show
    realistic queueing delay. *)

type error = Volume_down

val pp_error : Format.formatter -> error -> unit

type t

type scheduling = Fifo | Elevator
(** [Elevator] (SCAN) serves the queued request closest ahead of the
    head, sweeping alternately up and down the block range — classic
    disk-process behaviour for deep random queues. *)

val create :
  Sim.t ->
  name:string ->
  ?geometry:Disk.geometry ->
  ?cache:Disk.cache_config ->
  ?scheduling:scheduling ->
  unit ->
  t
(** [scheduling] defaults to [Fifo]. *)

val name : t -> string

val sim : t -> Sim.t

val set_obs : t -> Obs.t -> unit
(** Observe this volume: every request gets a span on track
    ["vol:<name>"], service times feed the shared [disk.service_ns]
    stat, and writes that waited out a rotational miss feed
    [disk.rotational_miss_ns]. *)

val submit :
  ?parent:Span.span ->
  t ->
  kind:[ `Read | `Write ] ->
  block:int ->
  len:int ->
  (unit, error) result Ivar.t
(** Enqueue a request; the ivar fills at completion.  Never blocks.
    [parent] links the request's span under the caller's. *)

val write : ?parent:Span.span -> t -> block:int -> len:int -> (unit, error) result
(** Synchronous write: submit and wait.  Process context only. *)

val read : ?parent:Span.span -> t -> block:int -> len:int -> (unit, error) result

val append : ?parent:Span.span -> t -> len:int -> (unit, error) result
(** Synchronous sequential append at the volume's append cursor, the
    access pattern of an audit-trail volume. *)

val set_up : t -> bool -> unit
(** A down volume fails new and queued requests with [Volume_down]. *)

val is_up : t -> bool

val degrade : t -> factor:float -> ?jitter:Time.span -> unit -> unit
(** Fail-slow injection on the backing disk ({!Disk.degrade}): requests
    keep completing, [factor]x late plus seeded jitter. *)

val restore_speed : t -> unit

val slow_factor : t -> float
(** The backing disk's multiplier (1.0 when healthy). *)

val queue_depth : t -> int

(** Cumulative counters. *)

val completed_ops : t -> int

val completed_bytes : t -> int

val busy_time : t -> Time.span

val service_stat : t -> Stat.t
(** Distribution of per-request total latency (queueing + service). *)
