(* The Hot Stock problem (paper section 2).

   Four brokerage streams trade 16 symbols, with half the volume on one
   headline stock.  Every trade updates that symbol's position row, so
   trades on it serialize on its lock — and since regulatory ordering
   makes each stream wait for the previous commit, per-symbol throughput
   is inversely proportional to response time.  Cutting commit latency
   with persistent memory directly raises hot-symbol throughput.

     dune exec examples/hot_symbols.exe *)

open Simkit
open Workloads

let run_mode mode label =
  let cfg =
    match mode with
    | Tp.System.Disk_audit -> Tp.System.default_config
    | Tp.System.Pm_audit -> Tp.System.pm_config
  in
  let sim = Sim.create ~seed:0x570CL () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = Tp.System.build sim cfg in
        out := Some (Order_match.run system Order_match.default_params))
  in
  Sim.run sim;
  match !out with
  | None -> failwith "order-match run did not complete"
  | Some r ->
      Format.printf
        "%-5s: %4d trades (%d hot) in %8s | hot %6.1f t/s, cold %6.1f t/s | RT p50 %5.2f ms | %d lock conflicts@."
        label r.Order_match.trades r.Order_match.hot_trades
        (Time.to_string r.Order_match.elapsed)
        r.Order_match.hot_tps r.Order_match.cold_tps
        (r.Order_match.trade_response.Stat.p50 /. 1e6)
        r.Order_match.lock_waits

let () =
  Format.printf "order matching with a headline stock (50%% of volume on one symbol)@.";
  run_mode Tp.System.Disk_audit "disk";
  run_mode Tp.System.Pm_audit "pm";
  Format.printf "hot-symbol throughput tracks 1/response-time: the PM configuration@.";
  Format.printf "lifts it without any application change.@."
