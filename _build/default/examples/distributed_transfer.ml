(* A funds transfer spanning two cluster nodes under two-phase commit.

   The debit lives on node 0, the credit on node 1; atomicity across the
   interconnect requires the full protocol — prepare both branches,
   durable decision, propagate.  Every arrow in that protocol is a
   synchronous trail force, so the disk configuration stacks rotational
   waits while persistent memory keeps the whole distributed commit in
   single-digit milliseconds.

     dune exec examples/distributed_transfer.exe *)

open Simkit
open Tp

let run_mode mode label =
  let cfg =
    match mode with `Disk -> System.default_config | `Pm -> System.pm_config
  in
  let sim = Sim.create ~seed:0xD157L () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let cluster = Cluster.build sim ~nodes:2 ~wan_latency:(Time.us 100) cfg in
        (* Transfer 20 times; report the steady-state latency. *)
        let t0 = ref Time.zero in
        let total = ref 0 in
        for i = 1 to 20 do
          let dtx = Dtx.begin_dtx cluster ~coordinator:0 ~cpu:2 in
          t0 := Sim.now sim;
          (match Dtx.insert dtx ~node:0 ~file:0 ~key:i ~len:64 with
          | Ok () -> ()
          | Error e -> failwith (Txclient.error_to_string e));
          (match Dtx.insert dtx ~node:1 ~file:0 ~key:i ~len:64 with
          | Ok () -> ()
          | Error e -> failwith (Txclient.error_to_string e));
          (match Dtx.commit dtx with
          | Ok () -> ()
          | Error e -> failwith (Txclient.error_to_string e));
          if i > 5 then total := !total + (Sim.now sim - !t0)
        done;
        (* Both sides hold their rows; no branch is left in doubt. *)
        let rows n =
          Array.fold_left (fun acc d -> acc + Dp2.table_size d) 0
            (System.dp2s (Cluster.system cluster n))
        in
        out := Some (!total / 15, rows 0, rows 1))
  in
  Sim.run sim;
  match !out with
  | Some (avg, r0, r1) ->
      Format.printf "%-5s: distributed commit %a (node0 rows %d, node1 rows %d)@." label Time.pp
        avg r0 r1
  | None -> failwith "run incomplete"

let () =
  Format.printf "cross-node transfers under two-phase commit@.";
  run_mode `Disk "disk";
  run_mode `Pm "pm";
  Format.printf "atomicity across nodes without the rotational tax.@."
