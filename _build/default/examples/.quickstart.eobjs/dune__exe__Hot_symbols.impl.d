examples/hot_symbols.ml: Format Order_match Sim Simkit Stat Time Tp Workloads
