examples/entity_store.ml: Dp2 Entity Format List Printf Sim Simkit System Time Tp
