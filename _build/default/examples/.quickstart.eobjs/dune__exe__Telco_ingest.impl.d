examples/telco_ingest.ml: Format Sim Simkit Stat Telco_cdr Time Tp Workloads
