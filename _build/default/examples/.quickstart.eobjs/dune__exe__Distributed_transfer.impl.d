examples/distributed_transfer.ml: Array Cluster Dp2 Dtx Format Sim Simkit System Time Tp Txclient
