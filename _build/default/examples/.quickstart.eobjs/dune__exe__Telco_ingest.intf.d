examples/telco_ingest.mli:
