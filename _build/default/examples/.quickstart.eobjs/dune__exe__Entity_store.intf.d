examples/entity_store.mli:
