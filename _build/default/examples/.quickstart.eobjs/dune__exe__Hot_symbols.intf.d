examples/hot_symbols.mli:
