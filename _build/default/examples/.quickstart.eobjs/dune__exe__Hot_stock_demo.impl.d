examples/hot_stock_demo.ml: Figures Format Hot_stock List Simkit Stat String Time Tp Workloads
