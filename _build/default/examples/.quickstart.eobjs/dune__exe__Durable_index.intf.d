examples/durable_index.mli:
