examples/kv_store.ml: Bytes Format Node Npmu Nsk Pm Pm_client Pm_kv Pm_types Pmm Printf Sim Simkit Time
