examples/quickstart.ml: Bytes Format Node Npmu Nsk Pm Pm_client Pm_types Pmm Sim Simkit Time
