examples/hot_stock_demo.mli:
