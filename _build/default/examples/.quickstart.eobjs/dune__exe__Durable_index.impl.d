examples/durable_index.ml: Format List Node Npmu Nsk Pm Pm_client Pm_index Pm_types Pmm Printf Sim Simkit String Time
