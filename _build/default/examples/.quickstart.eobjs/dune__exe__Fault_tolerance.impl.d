examples/fault_tolerance.ml: Bytes Cpu Format Node Npmu Nsk Pm Pm_client Pm_types Pmm Sim Simkit Time Workloads
