examples/quickstart.mli:
