(* Fault tolerance end to end:
     1. an NPMU of the mirrored pair loses power under write load
        (writes degrade but stay persistent; reads fail over);
     2. the PMM primary's CPU halts (the backup takes over with the
        checkpointed metadata);
     3. an ADP primary dies mid-benchmark (takeover with the
        checkpointed audit buffer; zero committed transactions lost).

     dune exec examples/fault_tolerance.exe *)

open Simkit
open Nsk
open Pm

let part1_and_2 () =
  let sim = Sim.create ~seed:0xFA17L () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in
  let npmu_a = Npmu.create sim fabric ~name:"npmu-a" ~capacity:(8 * 1024 * 1024) in
  let npmu_b = Npmu.create sim fabric ~name:"npmu-b" ~capacity:(8 * 1024 * 1024) in
  let dev_a = Pmm.device_of_npmu npmu_a in
  let dev_b = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config dev_a dev_b;
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0) ~backup_cpu:(Node.cpu node 1)
      ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"app" (fun () ->
        let client = Pm_client.attach ~cpu:(Node.cpu node 2) ~fabric ~pmm:(Pmm.server pmm) () in
        let handle =
          match Pm_client.create_region client ~name:"ledger" ~size:65536 with
          | Ok h -> h
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        (* Write load; halfway through, one device loses power. *)
        for i = 0 to 63 do
          if i = 32 then begin
            Npmu.power_loss npmu_a;
            Format.printf "[%a] npmu-a lost power mid-stream@." Time.pp (Sim.now sim)
          end;
          match Pm_client.write client handle ~off:(i * 1024) ~data:(Bytes.create 1024) with
          | Ok () -> ()
          | Error e -> failwith (Pm_types.error_to_string e)
        done;
        Format.printf "64 writes done; %d completed degraded (single copy)@."
          (Pm_client.degraded_writes client);
        (match Pm_client.read client handle ~off:(63 * 1024) ~len:16 with
        | Ok _ -> Format.printf "read failed over to the mirror: OK@."
        | Error e -> failwith (Pm_types.error_to_string e));
        Npmu.power_restore npmu_a;

        (* Now kill the PMM primary's CPU: the backup takes over. *)
        Cpu.fail (Node.cpu node 0);
        Sim.sleep (Time.sec 1);
        match Pm_client.open_region client ~name:"ledger" with
        | Ok _ ->
            Format.printf "PMM takeover transparent to clients (takeovers=%d, outage=%a)@."
              (Pmm.takeovers pmm) Time.pp (Pmm.outage_time pmm)
        | Error e -> failwith (Pm_types.error_to_string e))
  in
  Sim.run sim

let part3 () =
  Format.printf "@.ADP failover under benchmark load (disk mode):@.";
  let r = Workloads.Figures.failover_under_load ~records_per_driver:400 () in
  Format.printf "  committed before failure : %d@." r.Workloads.Figures.committed_before;
  Format.printf "  committed total          : %d@." r.Workloads.Figures.committed_total;
  Format.printf "  ADP takeovers            : %d@." r.Workloads.Figures.adp_takeovers;
  Format.printf "  lost transactions        : %d@." r.Workloads.Figures.lost_transactions;
  if r.Workloads.Figures.lost_transactions = 0 then
    Format.printf "  no committed work lost across the takeover.@."

let () =
  part1_and_2 ();
  part3 ()
