(* A database index living in persistent memory (paper section 3.4).

   A writer maintains a copy-on-write B-tree inside a PM region: every
   insert is durable in microseconds, a reader on another CPU follows the
   same offsets with no marshalling, and after a full power cycle the
   index is simply still there — no rebuild, no audit scan.

     dune exec examples/durable_index.exe *)

open Simkit
open Nsk
open Pm

let () =
  let sim = Sim.create ~seed:0x1DEAL () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in
  let npmu_a = Npmu.create sim fabric ~name:"npmu-a" ~capacity:(24 * 1024 * 1024) in
  let npmu_b = Npmu.create sim fabric ~name:"npmu-b" ~capacity:(24 * 1024 * 1024) in
  let dev_a = Pmm.device_of_npmu npmu_a in
  let dev_b = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config dev_a dev_b;
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0) ~backup_cpu:(Node.cpu node 1)
      ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"app" (fun () ->
        let writer = Pm_client.attach ~cpu:(Node.cpu node 2) ~fabric ~pmm:(Pmm.server pmm) () in
        let handle =
          match Pm_client.create_region writer ~name:"account-index" ~size:(16 * 1024 * 1024) with
          | Ok h -> h
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        let ix =
          match Pm_index.create writer handle ~degree:8 () with
          | Ok ix -> ix
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        (* Load 2000 account balances, timing the steady-state updates. *)
        let t0 = Sim.now sim in
        for account = 1 to 2000 do
          match Pm_index.insert ix ~key:account ~value:(1000 + account) with
          | Ok () -> ()
          | Error e -> failwith (Pm_types.error_to_string e)
        done;
        let per_op = (Sim.now sim - t0) / 2000 in
        Format.printf "2000 durable index inserts, %a each (height %d, %d KiB allocated)@."
          Time.pp per_op (Pm_index.height ix)
          (Pm_index.bytes_allocated ix / 1024);

        (* A reader on another CPU probes the same tree, zero fixup. *)
        let reader = Pm_client.attach ~cpu:(Node.cpu node 3) ~fabric ~pmm:(Pmm.server pmm) () in
        let rh =
          match Pm_client.open_region reader ~name:"account-index" with
          | Ok h -> h
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        let rix =
          match Pm_index.open_existing reader rh with
          | Ok ix -> ix
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        (match Pm_index.find rix ~key:1234 with
        | Ok (Some v) -> Format.printf "reader on CPU 3 sees account 1234 -> %d@." v
        | Ok None -> failwith "missing entry"
        | Error e -> failwith (Pm_types.error_to_string e));

        (* Power-cycle both devices: the index needs no rebuild. *)
        Npmu.power_loss npmu_a;
        Npmu.power_loss npmu_b;
        Npmu.power_restore npmu_a;
        Npmu.power_restore npmu_b;
        let t1 = Sim.now sim in
        match Pm_index.open_existing writer handle with
        | Error e -> failwith (Pm_types.error_to_string e)
        | Ok ix2 -> (
            match Pm_index.range ix2 ~lo:1 ~hi:5 with
            | Ok rows ->
                Format.printf "after power cycle: reopened in %a, %d entries, first rows %s@."
                  Time.pp (Sim.now sim - t1) (Pm_index.cardinal ix2)
                  (String.concat ", "
                     (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) rows));
                Format.printf "durable_index OK@."
            | Error e -> failwith (Pm_types.error_to_string e)))
  in
  Sim.run sim
