(* Container-managed persistence (paper sections 2 and 3.4).

   An "entity bean"-style container over the transaction stack: the
   application declares what is durable; every unit of work is a
   transaction; the commit cost is whatever the audit trail costs.  With
   persistent-memory trails, saving an entity is a few milliseconds of
   work-time instead of tens of milliseconds of rotational waits — the
   paper's argument for why PM rehabilitates high-level persistence
   frameworks.

     dune exec examples/entity_store.exe *)

open Simkit
open Tp

let order_schema =
  Entity.schema ~name:"purchase-order" ~file:0
    ~fields:
      [ ("customer", Entity.F_string); ("sku", Entity.F_string); ("quantity", Entity.F_int);
        ("cents", Entity.F_int) ]

let run_mode mode label =
  let base = match mode with `Disk -> System.default_config | `Pm -> System.pm_config in
  let cfg = { base with System.dp2 = { Dp2.default_config with Dp2.store_payloads = true } } in
  let sim = Sim.create ~seed:0xE57L () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim cfg in
        let c = Entity.create (System.session system ~cpu:2) in
        let t0 = Sim.now sim in
        let n = 200 in
        for i = 1 to n do
          let order =
            [ ("customer", Entity.V_string (Printf.sprintf "cust-%d" (i mod 17)));
              ("sku", Entity.V_string "WIDGET-9");
              ("quantity", Entity.V_int (1 + (i mod 5)));
              ("cents", Entity.V_int (i * 99)) ]
          in
          match Entity.with_txn c (fun txn -> Entity.persist c txn order_schema ~id:i order) with
          | Ok () -> ()
          | Error e -> failwith (Entity.error_to_string e)
        done;
        let per_save = (Sim.now sim - t0) / n in
        (* Read one back, typed. *)
        let fetched =
          match Entity.find c order_schema ~id:42 with
          | Ok (Some e) -> e
          | Ok None -> failwith "entity missing"
          | Error e -> failwith (Entity.error_to_string e)
        in
        let cents =
          match List.assoc "cents" fetched with Entity.V_int v -> v | _ -> failwith "type"
        in
        let window =
          match Entity.find_range c order_schema ~lo:10 ~hi:14 with
          | Ok l -> List.length l
          | Error e -> failwith (Entity.error_to_string e)
        in
        out := Some (per_save, cents, window))
  in
  Sim.run sim;
  match !out with
  | Some (per_save, cents, window) ->
      Format.printf "%-5s: %a per durable entity save; order 42 costs %d cents; range [10,14] -> %d orders@."
        label Time.pp per_save cents window
  | None -> failwith "run incomplete"

let () =
  Format.printf "entity container: 200 purchase orders, one transaction each@.";
  run_mode `Disk "disk";
  run_mode `Pm "pm";
  Format.printf "persistence specified, not implemented - and cheap enough to use.@."
