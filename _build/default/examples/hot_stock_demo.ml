(* The paper's hot-stock benchmark, at 1/16 scale, in both configurations.

   Shows the headline result: with persistent-memory audit trails the
   response time no longer depends on how much the application boxcars,
   so small transactions are finally cheap.

     dune exec examples/hot_stock_demo.exe *)

open Simkit
open Workloads

let run_one mode drivers boxcar =
  let cell =
    Figures.run_cell ~mode ~drivers ~inserts_per_txn:boxcar ~records_per_driver:2_000 ()
  in
  cell.Figures.result

let () =
  Format.printf "hot-stock benchmark, 2000 records/driver (paper runs 32000)@.";
  Format.printf "%-6s %-8s %-8s %12s %14s %10s@." "mode" "drivers" "boxcar" "mean RT(ms)"
    "elapsed(s)" "txn/s";
  let line = String.make 64 '-' in
  print_endline line;
  List.iter
    (fun (mode, label) ->
      List.iter
        (fun boxcar ->
          List.iter
            (fun drivers ->
              let r = run_one mode drivers boxcar in
              Format.printf "%-6s %-8d %-8d %12.2f %14.2f %10.1f@." label drivers boxcar
                (r.Hot_stock.response.Stat.mean /. 1e6)
                (Time.to_sec r.Hot_stock.elapsed) r.Hot_stock.throughput_tps)
            [ 1; 2 ])
        [ 8; 32 ])
    [ (Tp.System.Disk_audit, "disk"); (Tp.System.Pm_audit, "pm") ];
  print_endline line;
  Format.printf "note how disk response time falls as boxcarring grows while@.";
  Format.printf "PM response time is set by the work itself - Figures 1 and 2.@."
