(* Telco call-data-record ingest (paper section 1's motivating ODS).

   Small response-time-critical transactions with almost nothing to
   boxcar: the worst case for a disk commit path, the natural case for
   persistent memory.  Fraud-detection readers run lookups against the
   store while it ingests.

     dune exec examples/telco_ingest.exe *)

open Simkit
open Workloads

let run_mode mode label =
  let cfg =
    match mode with
    | Tp.System.Disk_audit -> Tp.System.default_config
    | Tp.System.Pm_audit -> Tp.System.pm_config
  in
  let sim = Sim.create ~seed:0x7E1C0L () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = Tp.System.build sim cfg in
        out := Some (Telco_cdr.run system Telco_cdr.default_params))
  in
  Sim.run sim;
  match !out with
  | None -> failwith "telco run did not complete"
  | Some r ->
      Format.printf "%-5s: %5d CDRs in %8s  (%7.0f CDR/s, txn p99 %6.2f ms, %d lookups, %d hits)@."
        label r.Telco_cdr.cdrs_inserted
        (Time.to_string r.Telco_cdr.elapsed)
        r.Telco_cdr.cdrs_per_sec
        (r.Telco_cdr.txn_response.Stat.p99 /. 1e6)
        r.Telco_cdr.lookups r.Telco_cdr.lookup_hits

let () =
  Format.printf "telco CDR ingest: 4 switches x 1000 CDRs, 2 per transaction@.";
  run_mode Tp.System.Disk_audit "disk";
  run_mode Tp.System.Pm_audit "pm";
  Format.printf "the insert-heavy, barely-boxcarred stream is where PM pays most.@."
