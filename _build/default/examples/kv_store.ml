(* A durable key-value store on persistent memory — the artifact a
   modern reader recognizes: pmemkv, twenty years early (paper section
   3.4's "durable information store completely integrated into the
   memory hierarchy").

   Every put is crash-consistent: value bytes land in the log, then the
   copy-on-write index commits with one small write.  Pull the plug
   anywhere and the store reopens to the last committed put.

     dune exec examples/kv_store.exe *)

open Simkit
open Nsk
open Pm

let () =
  let sim = Sim.create ~seed:0x6BEEL () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in
  let npmu_a = Npmu.create sim fabric ~name:"npmu-a" ~capacity:(24 * 1024 * 1024) in
  let npmu_b = Npmu.create sim fabric ~name:"npmu-b" ~capacity:(24 * 1024 * 1024) in
  let dev_a = Pmm.device_of_npmu npmu_a in
  let dev_b = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config dev_a dev_b;
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0) ~backup_cpu:(Node.cpu node 1)
      ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"app" (fun () ->
        let c = Pm_client.attach ~cpu:(Node.cpu node 2) ~fabric ~pmm:(Pmm.server pmm) () in
        let index =
          match Pm_client.create_region c ~name:"kv-index" ~size:(16 * 1024 * 1024) with
          | Ok h -> h
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        let log =
          match Pm_client.create_region c ~name:"kv-log" ~size:(4 * 1024 * 1024) with
          | Ok h -> h
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        let kv =
          match Pm_kv.create c ~index ~log with
          | Ok kv -> kv
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        let t0 = Sim.now sim in
        let n = 1000 in
        for i = 1 to n do
          let v = Bytes.of_string (Printf.sprintf "session-state-for-user-%06d" i) in
          match Pm_kv.put kv ~key:i v with
          | Ok () -> ()
          | Error e -> failwith (Pm_types.error_to_string e)
        done;
        Format.printf "%d durable puts, %a each (%d KiB of values)@." n Time.pp
          ((Sim.now sim - t0) / n)
          (Pm_kv.log_bytes_used kv / 1024);
        (match Pm_kv.delete kv ~key:500 with Ok () -> () | Error e -> failwith (Pm_types.error_to_string e));

        (* Crash. *)
        Npmu.power_loss npmu_a;
        Npmu.power_loss npmu_b;
        Npmu.power_restore npmu_a;
        Npmu.power_restore npmu_b;
        let kv2 =
          match Pm_kv.open_existing c ~index ~log with
          | Ok kv -> kv
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        (match Pm_kv.get kv2 ~key:123 with
        | Ok (Some v) -> Format.printf "after power cycle, key 123 -> %S@." (Bytes.to_string v)
        | Ok None -> failwith "key lost"
        | Error e -> failwith (Pm_types.error_to_string e));
        (match Pm_kv.get kv2 ~key:500 with
        | Ok None -> Format.printf "deleted key 500 stays deleted@."
        | _ -> failwith "tombstone lost");
        match
          Pm_kv.fold_range kv2 ~lo:1 ~hi:10 ~init:0 ~f:(fun acc _ v -> acc + Bytes.length v)
        with
        | Ok bytes ->
            Format.printf "range fold over keys 1-10: %d value bytes@." bytes;
            Format.printf "kv_store OK@."
        | Error e -> failwith (Pm_types.error_to_string e))
  in
  Sim.run sim
