(* Quickstart: the persistent-memory API end to end.

   Builds a ServerNet fabric with a mirrored pair of NPMUs, starts the
   PMM process pair, and from a client CPU: creates a region, writes
   synchronously, power-cycles both devices, restarts the manager cold,
   and reads the data back.

     dune exec examples/quickstart.exe *)

open Simkit
open Nsk
open Pm

let () =
  let sim = Sim.create ~seed:42L () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in

  (* A mirrored pair of 16 MB NPMUs, factory-formatted. *)
  let npmu_a = Npmu.create sim fabric ~name:"npmu-a" ~capacity:(16 * 1024 * 1024) in
  let npmu_b = Npmu.create sim fabric ~name:"npmu-b" ~capacity:(16 * 1024 * 1024) in
  let dev_a = Pmm.device_of_npmu npmu_a in
  let dev_b = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config dev_a dev_b;

  (* The Persistent Memory Manager runs as a process pair on CPUs 0/1. *)
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0) ~backup_cpu:(Node.cpu node 1)
      ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in

  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"app" (fun () ->
        (* Attach from CPU 2 and create a region. *)
        let client = Pm_client.attach ~cpu:(Node.cpu node 2) ~fabric ~pmm:(Pmm.server pmm) () in
        let handle =
          match Pm_client.create_region client ~name:"greetings" ~size:4096 with
          | Ok h -> h
          | Error e -> failwith (Pm_types.error_to_string e)
        in
        Format.printf "created region: %a@." Pm_types.pp_region_info (Pm_client.info handle);

        (* Synchronous mirrored write: when this returns, the data is
           persistent on both devices. *)
        let message = Bytes.of_string "hello, persistent memory!" in
        let t0 = Sim.now sim in
        (match Pm_client.write client handle ~off:0 ~data:message with
        | Ok () -> Format.printf "write persisted in %a@." Time.pp (Sim.now sim - t0)
        | Error e -> failwith (Pm_types.error_to_string e));

        (* Power-cycle both devices and tear the manager down. *)
        Npmu.power_loss npmu_a;
        Npmu.power_loss npmu_b;
        Pmm.halt pmm;
        Format.printf "power lost on both NPMUs; PMM halted@.";
        Sim.sleep (Time.ms 10);
        Npmu.power_restore npmu_a;
        Npmu.power_restore npmu_b;

        (* A fresh PMM recovers the metadata from the devices... *)
        let pmm2 =
          Pmm.start ~fabric ~name:"$PMM2" ~primary_cpu:(Node.cpu node 2)
            ~backup_cpu:(Node.cpu node 3) ~primary_dev:dev_a ~mirror_dev:dev_b ()
        in
        let client2 =
          Pm_client.attach ~cpu:(Node.cpu node 3) ~fabric ~pmm:(Pmm.server pmm2) ()
        in
        (* ... and the region, and its contents, are still there. *)
        match Pm_client.open_region client2 ~name:"greetings" with
        | Error e -> failwith (Pm_types.error_to_string e)
        | Ok handle2 -> (
            match Pm_client.read client2 handle2 ~off:0 ~len:(Bytes.length message) with
            | Ok data ->
                Format.printf "after power cycle + cold restart: %S@." (Bytes.to_string data);
                (match Pmm.last_recovery_time pmm2 with
                | Some dt -> Format.printf "metadata recovery took %a@." Time.pp dt
                | None -> ());
                Format.printf "quickstart OK@."
            | Error e -> failwith (Pm_types.error_to_string e)))
  in
  Sim.run sim
