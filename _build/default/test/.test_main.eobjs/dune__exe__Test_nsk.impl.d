test/test_nsk.ml: Alcotest Cpu Dandc Msgsys Node Nsk Procpair Sim Simkit Time
