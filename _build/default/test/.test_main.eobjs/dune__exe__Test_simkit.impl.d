test/test_simkit.ml: Alcotest Buffer Gate Gen Heap Ivar List Mailbox Printf QCheck QCheck_alcotest Rng Sim Simkit Stat String Time Trace
