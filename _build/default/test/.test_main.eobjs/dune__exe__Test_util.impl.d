test/test_util.ml: Alcotest Bytes Sim Simkit
