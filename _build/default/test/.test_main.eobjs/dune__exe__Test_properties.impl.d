test/test_properties.ml: Bytes Int64 List Mailbox Nsk Pm Printf QCheck QCheck_alcotest Rng Servernet Sim Simkit Time Tp
