test/test_edges.ml: Alcotest Bytes Format List Mailbox Nsk Pm Servernet Sim Simkit Stat String Test_util Time Tp Trace
