test/test_tp.ml: Alcotest Array Audit Bytes Dp2 Gate List Lockmgr Pm Printf QCheck QCheck_alcotest Recovery Sim Simkit Stat System Test_util Time Tmf Tp Workloads
