test/test_entity.ml: Alcotest Dp2 Entity List Printf Sim Simkit System Time Tp
