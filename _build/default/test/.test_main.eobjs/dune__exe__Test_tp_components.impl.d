test/test_tp_components.ml: Adp Alcotest Array Audit Cluster Cpu Dp2 Dtx Gate List Log_backend Msgsys Node Nsk Pm Printf Recovery Rng Rpc Sim Simkit System Test_util Time Tmf Tp Txclient Workloads
