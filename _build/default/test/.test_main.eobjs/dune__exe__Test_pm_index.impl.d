test/test_pm_index.ml: Alcotest Bytes Int List Map Node Npmu Nsk Pm Pm_client Pm_index Pm_types Pmm Printf QCheck QCheck_alcotest Sim Simkit Test_util Time
