test/test_pm_kv.ml: Alcotest Bytes Char Hashtbl List Node Npmu Nsk Pm Pm_client Pm_kv Pm_types Pmm Printf QCheck QCheck_alcotest Sim Simkit Test_util
