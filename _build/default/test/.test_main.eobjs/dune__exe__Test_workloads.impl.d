test/test_workloads.ml: Alcotest Array Bank Figures Hot_stock List Order_match Printf Sim Simkit Stat Telco_cdr Time Tp Workloads
