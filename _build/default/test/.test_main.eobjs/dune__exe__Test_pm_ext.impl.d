test/test_pm_ext.ml: Alcotest Bytes Char List Msgsys Node Npmu Nsk Pm Pm_client Pm_mmap Pm_queue Pm_struct Pm_types Pmm Printf QCheck QCheck_alcotest Queue Sim Simkit String Test_util Time
