test/test_pm.ml: Alcotest Bytes Codec Cpu Crc32 List Msgsys Node Npmu Nsk Pm Pm_client Pm_types Pmm Pmp QCheck QCheck_alcotest Servernet Sim Simkit String Test_util Time
