test/test_servernet.ml: Alcotest Avt Bytes Fabric Gate QCheck QCheck_alcotest Servernet Sim Simkit Test_util Time
