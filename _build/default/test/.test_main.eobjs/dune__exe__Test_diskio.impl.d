test/test_diskio.ml: Alcotest Disk Diskio Ivar List Mirror Printf QCheck QCheck_alcotest Rng Sim Simkit Test_util Time Volume
