test/test_edges2.ml: Adp Alcotest Array Bytes Cpu Dp2 Entity Gate List Log_backend Msgsys Node Nsk Pm Printf Sim Simkit Stat System Test_util Time Tmf Tp Txclient
