(* Tests for the transaction-processing stack. *)

open Simkit
open Tp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Audit records --- *)

let sample_update =
  Audit.Update
    { txn = 7; file = 2; partition = 5; key = 123456; payload_len = 4096; payload_crc = 99; before_len = 0 }

let test_audit_roundtrip () =
  let records =
    [
      Audit.Begin { txn = 1 };
      sample_update;
      Audit.Commit { txn = 7 };
      Audit.Abort { txn = 8 };
      Audit.Control_point { active = [ 1; 2; 3 ] };
    ]
  in
  List.iter
    (fun record ->
      let bytes = Audit.encode_to_bytes record in
      check_int "wire size matches" (Audit.wire_size record) (Bytes.length bytes);
      match Audit.decode bytes ~pos:0 with
      | Some (back, next) ->
          check_bool "equal" true (back = record);
          check_int "consumed all" (Bytes.length bytes) next
      | None -> Alcotest.fail "decode failed")
    records

let test_audit_corruption_detected () =
  let bytes = Audit.encode_to_bytes sample_update in
  Bytes.set bytes 6 'X';
  check_bool "corrupt record rejected" true (Audit.decode bytes ~pos:0 = None)

let test_audit_stream_decode () =
  let enc = Pm.Codec.Enc.create () in
  Audit.encode enc (Audit.Begin { txn = 42 });
  Audit.encode enc sample_update;
  Audit.encode enc (Audit.Commit { txn = 42 });
  let buf = Pm.Codec.Enc.to_bytes enc in
  let rec collect pos acc =
    match Audit.decode buf ~pos with
    | Some (r, next) -> collect next (r :: acc)
    | None -> List.rev acc
  in
  check_int "three records" 3 (List.length (collect 0 []))

let prop_audit_roundtrip =
  QCheck.Test.make ~name:"audit update roundtrip" ~count:100
    QCheck.(quad small_nat small_nat small_nat (int_bound 100000))
    (fun (txn, file, key, len) ->
      let r =
        Audit.Update
          { txn; file; partition = file; key; payload_len = len; payload_crc = len * 7; before_len = 0 }
      in
      match Audit.decode (Audit.encode_to_bytes r) ~pos:0 with
      | Some (back, _) -> back = r
      | None -> false)

(* --- Lock manager --- *)

let test_locks_exclusive_blocks () =
  Test_util.run_process (fun sim ->
      let locks = Lockmgr.create sim () in
      let order = ref [] in
      let g = Gate.create 2 in
      let worker txn delay () =
        Sim.sleep delay;
        (match Lockmgr.acquire locks ~owner:txn ~key:(0, 1) Lockmgr.Exclusive with
        | Ok () -> order := txn :: !order
        | Error _ -> Alcotest.fail "unexpected timeout");
        Sim.sleep (Time.ms 1);
        Lockmgr.release_all locks ~owner:txn;
        Gate.arrive g
      in
      let (_ : Sim.pid) = Sim.spawn sim ~name:"t1" (worker 1 0) in
      let (_ : Sim.pid) = Sim.spawn sim ~name:"t2" (worker 2 (Time.us 10)) in
      Gate.await g;
      Alcotest.(check (list int)) "fifo-ish grant order" [ 2; 1 ] !order)

let test_locks_shared_compatible () =
  Test_util.run_process (fun sim ->
      let locks = Lockmgr.create sim () in
      (match Lockmgr.acquire locks ~owner:1 ~key:(0, 5) Lockmgr.Shared with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "t1 shared");
      (match Lockmgr.acquire locks ~owner:2 ~key:(0, 5) Lockmgr.Shared with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "t2 shared");
      check_int "two holders" 2 (List.length (Lockmgr.holders locks (0, 5))))

let test_locks_timeout () =
  Test_util.run_process (fun sim ->
      let locks = Lockmgr.create sim ~timeout:(Time.ms 5) () in
      (match Lockmgr.acquire locks ~owner:1 ~key:(1, 1) Lockmgr.Exclusive with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "first acquire");
      match Lockmgr.acquire locks ~owner:2 ~key:(1, 1) Lockmgr.Exclusive with
      | Error Lockmgr.Lock_timeout -> check_int "counted" 1 (Lockmgr.timeouts locks)
      | Ok () -> Alcotest.fail "conflicting grant")

let test_locks_upgrade () =
  Test_util.run_process (fun sim ->
      let locks = Lockmgr.create sim () in
      (match Lockmgr.acquire locks ~owner:1 ~key:(2, 2) Lockmgr.Shared with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "shared");
      match Lockmgr.acquire locks ~owner:1 ~key:(2, 2) Lockmgr.Exclusive with
      | Ok () ->
          check_bool "upgraded" true (Lockmgr.holders locks (2, 2) = [ (1, Lockmgr.Exclusive) ])
      | Error _ -> Alcotest.fail "upgrade refused")

let test_locks_release_wakes () =
  Test_util.run_process (fun sim ->
      let locks = Lockmgr.create sim () in
      let granted_at = ref Time.zero in
      (match Lockmgr.acquire locks ~owner:1 ~key:(3, 3) Lockmgr.Exclusive with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "first");
      let g = Gate.create 1 in
      let (_ : Sim.pid) =
        Sim.spawn sim ~name:"waiter" (fun () ->
            (match Lockmgr.acquire locks ~owner:2 ~key:(3, 3) Lockmgr.Exclusive with
            | Ok () -> granted_at := Sim.now sim
            | Error _ -> Alcotest.fail "waiter timeout");
            Gate.arrive g)
      in
      Sim.sleep (Time.ms 2);
      Lockmgr.release_all locks ~owner:1;
      Gate.await g;
      check_int "granted right at release" (Time.ms 2) !granted_at)

(* --- End-to-end small hot-stock runs --- *)

(* Small PM devices keep test allocations (and wall time) down. *)
let small_pm_config =
  { Tp.System.pm_config with
    Tp.System.pm_capacity = 8 * 1024 * 1024;
    pm_region_bytes = 1024 * 1024 }

let small_run mode ~drivers ~inserts_per_txn =
  let sim = Sim.create ~seed:0x7E57L () in
  let cfg =
    match mode with
    | `Disk -> Tp.System.default_config
    | `Pm -> small_pm_config
  in
  let result = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"bench-main" (fun () ->
        let system = System.build sim cfg in
        let params =
          Workloads.Hot_stock.scaled_params ~drivers ~inserts_per_txn ~records_per_driver:64
        in
        result := Some (system, Workloads.Hot_stock.run system params))
  in
  Sim.run sim;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "hot-stock run did not complete"

let test_hot_stock_disk_completes () =
  let system, r = small_run `Disk ~drivers:2 ~inserts_per_txn:8 in
  check_int "txns" 16 r.Workloads.Hot_stock.txns;
  check_int "all committed" 16 r.Workloads.Hot_stock.committed;
  check_int "tmf agrees" 16 (Tmf.committed (System.tmf system));
  (* 128 inserts spread over the DP2s. *)
  let total_inserts = Array.fold_left (fun acc d -> acc + Dp2.inserts d) 0 (System.dp2s system) in
  check_int "inserts" 128 total_inserts;
  check_bool "audit written" true (r.Workloads.Hot_stock.audit_bytes > 128 * 4096);
  check_bool "disk mode checkpoints audit" true (r.Workloads.Hot_stock.checkpoint_bytes > 128 * 4096)

let test_hot_stock_pm_completes () =
  let system, r = small_run `Pm ~drivers:2 ~inserts_per_txn:8 in
  check_int "all committed" 16 r.Workloads.Hot_stock.committed;
  check_bool "pm devices exist" true (List.length (System.npmus system) = 2);
  (* The PM configuration must not checkpoint record payloads. *)
  check_bool "pm mode skips audit checkpoints" true
    (r.Workloads.Hot_stock.checkpoint_bytes < 128 * 1024)

let test_pm_faster_than_disk () =
  let _, disk = small_run `Disk ~drivers:1 ~inserts_per_txn:8 in
  let _, pm = small_run `Pm ~drivers:1 ~inserts_per_txn:8 in
  let d = disk.Workloads.Hot_stock.response.Stat.mean in
  let p = pm.Workloads.Hot_stock.response.Stat.mean in
  check_bool
    (Printf.sprintf "pm response beats disk (disk=%.0fus pm=%.0fus)" (d /. 1e3) (p /. 1e3))
    true (p < d)

let test_rows_actually_inserted () =
  let system, _ = small_run `Disk ~drivers:1 ~inserts_per_txn:8 in
  let dp2s = System.dp2s system in
  let rows = Array.fold_left (fun acc d -> acc + Dp2.table_size d) 0 dp2s in
  check_int "rows present" 64 rows

(* --- Recovery --- *)

let run_with_recovery mode =
  let sim = Sim.create ~seed:0xDEADL () in
  let cfg = match mode with `Disk -> System.default_config | `Pm -> small_pm_config in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim cfg in
        let params =
          Workloads.Hot_stock.scaled_params ~drivers:2 ~inserts_per_txn:4 ~records_per_driver:32
        in
        let (_ : Workloads.Hot_stock.result) = Workloads.Hot_stock.run system params in
        (* Wipe the tables, then recover them from the trails. *)
        Array.iter (fun d -> Dp2.load_table d []) (System.dp2s system);
        match Recovery.run system with
        | Ok report -> out := Some (system, report)
        | Error e -> Alcotest.fail ("recovery failed: " ^ e))
  in
  Sim.run sim;
  match !out with Some v -> v | None -> Alcotest.fail "run did not finish"

let test_recovery_rebuilds_disk () =
  let system, report = run_with_recovery `Disk in
  check_int "rows rebuilt" 64 report.Recovery.rows_rebuilt;
  check_bool "mat scan" true (report.Recovery.outcome_source = Recovery.Mat_scan);
  let rows = Array.fold_left (fun acc d -> acc + Dp2.table_size d) 0 (System.dp2s system) in
  check_int "installed" 64 rows;
  check_int "committed txns" 16 report.Recovery.committed_txns

let test_recovery_rebuilds_pm () =
  let _, report = run_with_recovery `Pm in
  check_int "rows rebuilt" 64 report.Recovery.rows_rebuilt;
  check_bool "pm txn table" true (report.Recovery.outcome_source = Recovery.Pm_txn_table)

let test_recovery_pm_mttr_shorter () =
  let _, disk_report = run_with_recovery `Disk in
  let _, pm_report = run_with_recovery `Pm in
  check_bool
    (Printf.sprintf "MTTR pm < disk (disk=%s pm=%s)"
       (Time.to_string disk_report.Recovery.mttr)
       (Time.to_string pm_report.Recovery.mttr))
    true
    (pm_report.Recovery.mttr < disk_report.Recovery.mttr)

let suite =
  [
    ( "tp.audit",
      [
        Alcotest.test_case "record roundtrip" `Quick test_audit_roundtrip;
        Alcotest.test_case "corruption detected" `Quick test_audit_corruption_detected;
        Alcotest.test_case "stream decode" `Quick test_audit_stream_decode;
        QCheck_alcotest.to_alcotest prop_audit_roundtrip;
      ] );
    ( "tp.lockmgr",
      [
        Alcotest.test_case "exclusive blocks and hands over" `Quick test_locks_exclusive_blocks;
        Alcotest.test_case "shared locks coexist" `Quick test_locks_shared_compatible;
        Alcotest.test_case "timeout breaks deadlock" `Quick test_locks_timeout;
        Alcotest.test_case "upgrade when sole holder" `Quick test_locks_upgrade;
        Alcotest.test_case "release wakes waiter" `Quick test_locks_release_wakes;
      ] );
    ( "tp.end_to_end",
      [
        Alcotest.test_case "hot-stock on disk audit" `Quick test_hot_stock_disk_completes;
        Alcotest.test_case "hot-stock on PM audit" `Quick test_hot_stock_pm_completes;
        Alcotest.test_case "PM beats disk on response time" `Quick test_pm_faster_than_disk;
        Alcotest.test_case "rows land in DP2 tables" `Quick test_rows_actually_inserted;
      ] );
    ( "tp.recovery",
      [
        Alcotest.test_case "disk recovery rebuilds tables" `Quick test_recovery_rebuilds_disk;
        Alcotest.test_case "PM recovery rebuilds tables" `Quick test_recovery_rebuilds_pm;
        Alcotest.test_case "PM recovery is faster" `Quick test_recovery_pm_mttr_shorter;
      ] );
  ]
