(* Tests for the disk subsystem. *)

open Simkit
open Diskio

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_disk_write_is_milliseconds () =
  Test_util.run_process (fun sim ->
      let disk = Disk.create sim () in
      let dt = Disk.service disk ~kind:`Write ~block:500_000 ~len:4096 in
      check_bool "random write costs ms" true (dt >= Time.ms 1 && dt <= Time.ms 20))

let test_disk_sequential_cheaper () =
  Test_util.run_process (fun sim ->
      let disk = Disk.create sim () in
      (* Compare average sequential-write and random-write service times:
         both pay rotation, only random pays the seek. *)
      let n = 200 in
      let seq_total = ref 0 and rand_total = ref 0 in
      let _ = Disk.service disk ~kind:`Write ~block:0 ~len:4096 in
      (* 4096 bytes = 8 blocks: each write starts where the head landed. *)
      for i = 1 to n do
        seq_total := !seq_total + Disk.service disk ~kind:`Write ~block:(i * 8) ~len:4096
      done;
      let disk2 = Disk.create sim () in
      let rng = Rng.create 77L in
      for _ = 1 to n do
        rand_total :=
          !rand_total + Disk.service disk2 ~kind:`Write ~block:(Rng.int rng 60_000_000) ~len:4096
      done;
      check_bool "sequential avoids the seek" true (!seq_total < !rand_total);
      (* Sequential reads stream. *)
      let disk3 = Disk.create sim () in
      let _ = Disk.service disk3 ~kind:`Read ~block:100 ~len:4096 in
      let seq_read = Disk.service disk3 ~kind:`Read ~block:108 ~len:4096 in
      check_bool "sequential read sub-ms" true (seq_read < Time.ms 1))

let test_disk_seek_scales_with_distance () =
  Test_util.run_process (fun sim ->
      (* Remove rotational randomness by comparing many samples. *)
      let avg_service distance =
        let disk = Disk.create sim () in
        let total = ref 0 in
        let n = 50 in
        for _ = 1 to n do
          let _ = Disk.service disk ~kind:`Read ~block:0 ~len:512 in
          total := !total + Disk.service disk ~kind:`Read ~block:distance ~len:512
        done;
        !total / n
      in
      let near = avg_service 10_000 in
      let far = avg_service 60_000_000 in
      check_bool "long seeks cost more" true (far > near))

let test_write_cache_absorbs () =
  Test_util.run_process (fun sim ->
      let disk = Disk.create sim ~cache:Disk.default_cache () in
      let dt = Disk.service disk ~kind:`Write ~block:12345 ~len:4096 in
      check_bool "cache hit is fast" true (dt <= Time.us 200);
      check_int "occupancy tracked" 4096 (Disk.cache_used disk))

let test_write_cache_fills_then_blocks () =
  Test_util.run_process (fun sim ->
      let cache = { Disk.default_cache with cache_bytes = 8192; destage_bytes_per_ns = 1e-6 } in
      let disk = Disk.create sim ~cache () in
      let fast1 = Disk.service disk ~kind:`Write ~block:0 ~len:4096 in
      let fast2 = Disk.service disk ~kind:`Write ~block:8 ~len:4096 in
      let slow = Disk.service disk ~kind:`Write ~block:16 ~len:4096 in
      check_bool "first absorbed" true (fast1 <= Time.us 200);
      check_bool "second absorbed" true (fast2 <= Time.us 200);
      check_bool "overflow pays mechanical time" true (slow >= Time.us 300))

let test_volume_sync_write () =
  Test_util.run_process (fun sim ->
      let vol = Volume.create sim ~name:"$DATA00" () in
      let t0 = Sim.now sim in
      Test_util.check_result_ok "write" (Volume.write vol ~block:1000 ~len:4096);
      check_bool "took time" true (Sim.now sim > t0);
      check_int "one op" 1 (Volume.completed_ops vol))

let test_volume_queueing () =
  (* Many async submissions serve one at a time: total elapsed is at least
     the sum of individual busy times. *)
  Test_util.run_process (fun sim ->
      let vol = Volume.create sim ~name:"$DATA01" () in
      let ivars =
        List.init 8 (fun i -> Volume.submit vol ~kind:`Write ~block:(i * 100_000) ~len:4096)
      in
      List.iter (fun iv -> Test_util.check_result_ok "completion" (Ivar.read iv)) ivars;
      check_int "all ops" 8 (Volume.completed_ops vol);
      let elapsed = Sim.now sim in
      check_bool "busy most of the elapsed time" true (Volume.busy_time vol >= elapsed / 2))

let test_volume_down_fails_requests () =
  Test_util.run_process (fun sim ->
      let vol = Volume.create sim ~name:"$DATA02" () in
      Volume.set_up vol false;
      (match Volume.write vol ~block:0 ~len:512 with
      | Error Volume.Volume_down -> ()
      | Ok () -> Alcotest.fail "write to down volume succeeded");
      Volume.set_up vol true;
      Test_util.check_result_ok "recovers" (Volume.write vol ~block:0 ~len:512))

let test_volume_append_sequential () =
  Test_util.run_process (fun sim ->
      let vol = Volume.create sim ~name:"$AUDIT" () in
      (* Synchronous appends each pay a rotational miss but no seek:
         single-digit milliseconds, never tens. *)
      let t0 = Sim.now sim in
      let n = 20 in
      for _ = 1 to n do
        Test_util.check_result_ok "append" (Volume.append vol ~len:4096)
      done;
      let avg = (Sim.now sim - t0) / n in
      check_bool "ms-class" true (avg >= Time.us 300 && avg <= Time.ms 8))

let test_elevator_beats_fifo () =
  (* A deep random queue: SCAN ordering cuts total seek distance, so the
     elevator drains it faster than FIFO. *)
  let drain scheduling =
    Test_util.run_process (fun sim ->
        let vol = Volume.create sim ~name:"$Q" ~scheduling () in
        let rng = Rng.create 1234L in
        let ivars =
          List.init 24 (fun _ ->
              Volume.submit vol ~kind:`Read ~block:(Rng.int rng 60_000_000) ~len:4096)
        in
        List.iter (fun iv -> Test_util.check_result_ok "done" (Ivar.read iv)) ivars;
        Sim.now sim)
  in
  let fifo = drain Volume.Fifo in
  let scan = drain Volume.Elevator in
  check_bool
    (Printf.sprintf "elevator faster (fifo %s, scan %s)" (Time.to_string fifo)
       (Time.to_string scan))
    true (scan < fifo)

let test_elevator_serves_everything () =
  Test_util.run_process (fun sim ->
      let vol = Volume.create sim ~name:"$E" ~scheduling:Volume.Elevator () in
      let ivars =
        List.init 10 (fun i -> Volume.submit vol ~kind:`Write ~block:(i * 1_000_003) ~len:512)
      in
      List.iter (fun iv -> Test_util.check_result_ok "served" (Ivar.read iv)) ivars;
      check_int "all ops" 10 (Volume.completed_ops vol);
      check_int "queue drained" 0 (Volume.queue_depth vol))

let test_mirror_write_both () =
  Test_util.run_process (fun sim ->
      let a = Volume.create sim ~name:"$MA" () in
      let b = Volume.create sim ~name:"$MB" () in
      let m = Mirror.create ~primary:a ~mirror:b in
      Test_util.check_result_ok "mirror write" (Mirror.write m ~block:10 ~len:4096);
      check_int "primary wrote" 1 (Volume.completed_ops a);
      check_int "mirror wrote" 1 (Volume.completed_ops b);
      check_bool "not degraded" false (Mirror.degraded m))

let test_mirror_survives_one_side () =
  Test_util.run_process (fun sim ->
      let a = Volume.create sim ~name:"$MA" () in
      let b = Volume.create sim ~name:"$MB" () in
      let m = Mirror.create ~primary:a ~mirror:b in
      Volume.set_up a false;
      Test_util.check_result_ok "degraded write ok" (Mirror.write m ~block:0 ~len:512);
      check_bool "degraded" true (Mirror.degraded m);
      Test_util.check_result_ok "read fails over" (Mirror.read m ~block:0 ~len:512);
      Volume.set_up b false;
      match Mirror.write m ~block:0 ~len:512 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "write with both sides down succeeded")

let prop_service_time_positive =
  QCheck.Test.make ~name:"disk service times are positive" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_bound 65536))
    (fun (block, len) ->
      let sim = Sim.create () in
      let disk = Disk.create sim () in
      Disk.service disk ~kind:`Write ~block ~len:(len + 1) > 0)

let suite =
  [
    ( "diskio.disk",
      [
        Alcotest.test_case "random write costs milliseconds" `Quick test_disk_write_is_milliseconds;
        Alcotest.test_case "sequential cheaper than random" `Quick test_disk_sequential_cheaper;
        Alcotest.test_case "seek scales with distance" `Quick test_disk_seek_scales_with_distance;
        Alcotest.test_case "write cache absorbs bursts" `Quick test_write_cache_absorbs;
        Alcotest.test_case "full cache falls back to media" `Quick test_write_cache_fills_then_blocks;
        QCheck_alcotest.to_alcotest prop_service_time_positive;
      ] );
    ( "diskio.volume",
      [
        Alcotest.test_case "synchronous write" `Quick test_volume_sync_write;
        Alcotest.test_case "requests queue" `Quick test_volume_queueing;
        Alcotest.test_case "down volume fails requests" `Quick test_volume_down_fails_requests;
        Alcotest.test_case "audit-style appends are sequential" `Quick test_volume_append_sequential;
      ] );
    ( "diskio.elevator",
      [
        Alcotest.test_case "SCAN beats FIFO on random queues" `Quick test_elevator_beats_fifo;
        Alcotest.test_case "no starvation" `Quick test_elevator_serves_everything;
      ] );
    ( "diskio.mirror",
      [
        Alcotest.test_case "writes go to both sides" `Quick test_mirror_write_both;
        Alcotest.test_case "survives one side down" `Quick test_mirror_survives_one_side;
      ] );
  ]
