(* Tests for the durable key-value store. *)

open Simkit
open Nsk
open Pm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

type rig = { sim : Sim.t; node : Node.t; npmu_a : Npmu.t; npmu_b : Npmu.t; pmm : Pmm.t }

let make_rig () =
  let sim = Sim.create ~seed:0x6BL () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in
  let npmu_a = Npmu.create sim fabric ~name:"kv-a" ~capacity:(8 * 1024 * 1024) in
  let npmu_b = Npmu.create sim fabric ~name:"kv-b" ~capacity:(8 * 1024 * 1024) in
  let da = Pmm.device_of_npmu npmu_a in
  let db = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config da db;
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0) ~backup_cpu:(Node.cpu node 1)
      ~primary_dev:da ~mirror_dev:db ()
  in
  { sim; node; npmu_a; npmu_b; pmm }

let client rig cpu_idx =
  Pm_client.attach ~cpu:(Node.cpu rig.node cpu_idx) ~fabric:(Node.fabric rig.node)
    ~pmm:(Pmm.server rig.pmm) ()

let make_store ?(index_size = 2 * 1024 * 1024) ?(log_size = 1024 * 1024) c =
  let index =
    Test_util.ok_or_fail ~msg:"index region" (Pm_client.create_region c ~name:"kv-ix" ~size:index_size)
  in
  let log =
    Test_util.ok_or_fail ~msg:"log region" (Pm_client.create_region c ~name:"kv-log" ~size:log_size)
  in
  Test_util.ok_or_fail ~msg:"create kv" (Pm_kv.create c ~index ~log)

let expect_get kv key =
  match Pm_kv.get kv ~key with
  | Ok v -> v
  | Error e -> Alcotest.failf "get %d: %s" key (Pm_types.error_to_string e)

let test_put_get_delete () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      let kv = make_store c in
      Test_util.check_result_ok "put" (Pm_kv.put kv ~key:1 (Bytes.of_string "value-one"));
      Test_util.check_result_ok "put2" (Pm_kv.put kv ~key:2 (Bytes.of_string "value-two"));
      (match expect_get kv 1 with
      | Some v -> check_str "get" "value-one" (Bytes.to_string v)
      | None -> Alcotest.fail "missing");
      Test_util.check_result_ok "delete" (Pm_kv.delete kv ~key:1);
      check_bool "deleted" true (expect_get kv 1 = None);
      check_bool "other survives" true (expect_get kv 2 <> None);
      Test_util.check_result_ok "re-delete idempotent" (Pm_kv.delete kv ~key:1))

let test_overwrite_returns_latest () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      let kv = make_store c in
      Test_util.check_result_ok "v1" (Pm_kv.put kv ~key:9 (Bytes.of_string "first"));
      Test_util.check_result_ok "v2" (Pm_kv.put kv ~key:9 (Bytes.of_string "second, longer"));
      match expect_get kv 9 with
      | Some v -> check_str "latest wins" "second, longer" (Bytes.to_string v)
      | None -> Alcotest.fail "missing")

let test_empty_value () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      let kv = make_store c in
      Test_util.check_result_ok "empty put" (Pm_kv.put kv ~key:5 Bytes.empty);
      match expect_get kv 5 with
      | Some v -> check_int "empty value" 0 (Bytes.length v)
      | None -> Alcotest.fail "empty value lost")

let test_survives_power_cycle () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      let kv = make_store c in
      for i = 1 to 50 do
        Test_util.check_result_ok "put"
          (Pm_kv.put kv ~key:i (Bytes.of_string (Printf.sprintf "row-%d" i)))
      done;
      Test_util.check_result_ok "delete" (Pm_kv.delete kv ~key:25);
      Npmu.power_loss rig.npmu_a;
      Npmu.power_loss rig.npmu_b;
      Npmu.power_restore rig.npmu_a;
      Npmu.power_restore rig.npmu_b;
      let index = Test_util.ok_or_fail ~msg:"reopen ix" (Pm_client.open_region c ~name:"kv-ix") in
      let log = Test_util.ok_or_fail ~msg:"reopen log" (Pm_client.open_region c ~name:"kv-log") in
      let kv2 = Test_util.ok_or_fail ~msg:"reopen kv" (Pm_kv.open_existing c ~index ~log) in
      (match expect_get kv2 17 with
      | Some v -> check_str "row survives" "row-17" (Bytes.to_string v)
      | None -> Alcotest.fail "row lost");
      check_bool "tombstone survives" true (expect_get kv2 25 = None))

let test_reader_refresh () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let writer = client rig 2 in
      let kv = make_store writer in
      Test_util.check_result_ok "put" (Pm_kv.put kv ~key:1 (Bytes.of_string "hello"));
      let reader = client rig 3 in
      let index = Test_util.ok_or_fail ~msg:"open ix" (Pm_client.open_region reader ~name:"kv-ix") in
      let log = Test_util.ok_or_fail ~msg:"open log" (Pm_client.open_region reader ~name:"kv-log") in
      let rkv = Test_util.ok_or_fail ~msg:"open kv" (Pm_kv.open_existing reader ~index ~log) in
      (match Pm_kv.get rkv ~key:1 with
      | Ok (Some v) -> check_str "reader sees put" "hello" (Bytes.to_string v)
      | _ -> Alcotest.fail "reader get");
      Test_util.check_result_ok "writer adds" (Pm_kv.put kv ~key:2 (Bytes.of_string "more"));
      Test_util.check_result_ok "refresh" (Pm_kv.refresh rkv);
      check_bool "reader sees new key after refresh" true
        (match Pm_kv.get rkv ~key:2 with Ok (Some _) -> true | _ -> false))

let test_fold_range_skips_tombstones () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      let kv = make_store c in
      for i = 1 to 10 do
        Test_util.check_result_ok "put" (Pm_kv.put kv ~key:i (Bytes.make i 'x'))
      done;
      Test_util.check_result_ok "del" (Pm_kv.delete kv ~key:5);
      match Pm_kv.fold_range kv ~lo:3 ~hi:7 ~init:[] ~f:(fun acc k v -> (k, Bytes.length v) :: acc) with
      | Ok acc ->
          Alcotest.(check (list (pair int int))) "live window"
            [ (7, 7); (6, 6); (4, 4); (3, 3) ]
            acc
      | Error e -> Alcotest.fail (Pm_types.error_to_string e))

let test_log_exhaustion () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      let kv = make_store ~log_size:4096 c in
      let rec fill i =
        if i > 100 then Alcotest.fail "log never filled"
        else
          match Pm_kv.put kv ~key:i (Bytes.make 512 'v') with
          | Ok () -> fill (i + 1)
          | Error Pm_types.Out_of_space -> ()
          | Error e -> Alcotest.fail (Pm_types.error_to_string e)
      in
      fill 1;
      (* Existing data still readable after a refused put. *)
      check_bool "old data intact" true (expect_get kv 1 <> None))

let prop_kv_matches_hashtbl =
  QCheck.Test.make ~name:"pm_kv behaves like Hashtbl under random ops" ~count:10
    (QCheck.make
       ~print:(fun l -> string_of_int (List.length l))
       QCheck.Gen.(list_size (int_range 1 80) (triple (int_bound 2) (int_bound 40) (int_bound 60))))
    (fun ops ->
      let rig = make_rig () in
      Test_util.run_in rig.sim (fun () ->
          let c = client rig 2 in
          let kv = make_store c in
          let model : (int, Bytes.t) Hashtbl.t = Hashtbl.create 64 in
          let ok = ref true in
          List.iter
            (fun (op, key, len) ->
              match op with
              | 0 ->
                  let v = Bytes.make len (Char.chr (97 + (key mod 26))) in
                  (match Pm_kv.put kv ~key v with
                  | Ok () -> Hashtbl.replace model key v
                  | Error _ -> ok := false)
              | 1 -> (
                  match Pm_kv.delete kv ~key with
                  | Ok () -> Hashtbl.remove model key
                  | Error _ -> ok := false)
              | _ -> (
                  match Pm_kv.get kv ~key with
                  | Ok got ->
                      if got <> Hashtbl.find_opt model key then ok := false
                  | Error _ -> ok := false))
            ops;
          !ok))

let suite =
  [
    ( "pm.kv",
      [
        Alcotest.test_case "put/get/delete" `Quick test_put_get_delete;
        Alcotest.test_case "overwrite returns latest" `Quick test_overwrite_returns_latest;
        Alcotest.test_case "empty values" `Quick test_empty_value;
        Alcotest.test_case "survives power cycle" `Quick test_survives_power_cycle;
        Alcotest.test_case "reader refresh" `Quick test_reader_refresh;
        Alcotest.test_case "fold_range skips tombstones" `Quick test_fold_range_skips_tombstones;
        Alcotest.test_case "value-log exhaustion" `Quick test_log_exhaustion;
        QCheck_alcotest.to_alcotest prop_kv_matches_hashtbl;
      ] );
  ]
