(* Cross-cutting property-based tests on core invariants. *)

open Simkit

(* --- Lock manager: never two exclusive holders --- *)

let prop_lock_exclusion =
  (* Random concurrent acquire/hold/release schedules must never grant
     the same key exclusively to two transactions at once. *)
  QCheck.Test.make ~name:"lockmgr never double-grants exclusive" ~count:40
    QCheck.(pair (int_bound 1000) (int_range 2 6))
    (fun (seed, workers) ->
      let sim = Sim.create ~seed:(Int64.of_int (seed + 1)) () in
      let locks = Tp.Lockmgr.create sim ~timeout:(Time.sec 10) () in
      let violation = ref false in
      let inside = ref 0 in
      let rng = Rng.create (Int64.of_int (seed * 7 + 3)) in
      for w = 1 to workers do
        let (_ : Sim.pid) =
          Sim.spawn sim ~name:(Printf.sprintf "w%d" w) (fun () ->
              for _ = 1 to 5 do
                Sim.sleep (Rng.int rng 1000);
                match Tp.Lockmgr.acquire locks ~owner:w ~key:(0, 1) Tp.Lockmgr.Exclusive with
                | Ok () ->
                    incr inside;
                    if !inside > 1 then violation := true;
                    Sim.sleep (Rng.int rng 500);
                    decr inside;
                    Tp.Lockmgr.release_all locks ~owner:w
                | Error _ -> ()
              done)
        in
        ()
      done;
      Sim.run sim;
      not !violation)

let prop_lock_shared_coexist =
  QCheck.Test.make ~name:"shared locks never block each other" ~count:40
    QCheck.(int_range 2 8)
    (fun readers ->
      let sim = Sim.create () in
      let locks = Tp.Lockmgr.create sim ~timeout:(Time.ms 10) () in
      let granted = ref 0 in
      for w = 1 to readers do
        let (_ : Sim.pid) =
          Sim.spawn sim ~name:(Printf.sprintf "r%d" w) (fun () ->
              match Tp.Lockmgr.acquire locks ~owner:w ~key:(1, 1) Tp.Lockmgr.Shared with
              | Ok () -> incr granted
              | Error _ -> ())
        in
        ()
      done;
      Sim.run sim;
      !granted = readers)

(* --- AVT: translation stays within the mapped window --- *)

let prop_avt_translation_in_bounds =
  QCheck.Test.make ~name:"AVT translation lands inside the physical extent" ~count:200
    QCheck.(triple (int_bound 1000) (int_range 1 4096) (int_bound 8192))
    (fun (base, length, probe) ->
      let avt = Servernet.Avt.create () in
      let net_base = 4096 + base in
      let phys_base = 100_000 in
      match
        Servernet.Avt.map avt ~net_base ~length ~phys_base
          ~access:(Servernet.Avt.read_write Servernet.Avt.Any_initiator)
      with
      | Error _ -> false
      | Ok () -> (
          let addr = net_base + probe in
          match Servernet.Avt.translate avt ~initiator:0 ~op:`Read ~addr ~len:1 with
          | Ok phys -> probe < length && phys = phys_base + probe
          | Error Servernet.Avt.Unmapped -> probe >= length
          | Error Servernet.Avt.Crosses_window -> probe = length - 1 && false
          | Error _ -> false))

(* --- Audit: random record streams decode to themselves --- *)

let gen_record =
  QCheck.Gen.(
    oneof
      [
        map (fun txn -> Tp.Audit.Begin { txn }) small_nat;
        map (fun txn -> Tp.Audit.Commit { txn }) small_nat;
        map (fun txn -> Tp.Audit.Abort { txn }) small_nat;
        map
          (fun (txn, key, len) ->
            Tp.Audit.Update
              {
                txn;
                file = key mod 4;
                partition = key mod 16;
                key;
                payload_len = len;
                payload_crc = (len * 31) land 0xFFFF;
                before_len = 0;
              })
          (triple small_nat small_nat (int_bound 8192));
        map (fun active -> Tp.Audit.Control_point { active }) (list_size (int_bound 5) small_nat);
      ])

let prop_audit_stream_roundtrip =
  let gen_stream = QCheck.Gen.(list_size (int_bound 20) gen_record) in
  let arb = QCheck.make ~print:(fun l -> string_of_int (List.length l)) gen_stream in
  QCheck.Test.make ~name:"audit streams decode record-for-record" ~count:100 arb (fun records ->
      let enc = Pm.Codec.Enc.create () in
      List.iter (Tp.Audit.encode enc) records;
      let buf = Pm.Codec.Enc.to_bytes enc in
      let rec collect pos acc =
        if pos >= Bytes.length buf then List.rev acc
        else
          match Tp.Audit.decode buf ~pos with
          | Some (r, next) -> collect next (r :: acc)
          | None -> List.rev acc
      in
      collect 0 [] = records)

(* --- Mailbox: FIFO under random interleavings --- *)

let prop_mailbox_fifo =
  QCheck.Test.make ~name:"mailbox preserves send order" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 1 40))
    (fun (seed, n) ->
      let sim = Sim.create ~seed:(Int64.of_int (seed + 11)) () in
      let rng = Rng.create (Int64.of_int seed) in
      let mb = Mailbox.create () in
      let got = ref [] in
      let (_ : Sim.pid) =
        Sim.spawn sim ~name:"tx" (fun () ->
            for i = 1 to n do
              Sim.sleep (Rng.int rng 100);
              Mailbox.send mb i
            done)
      in
      let (_ : Sim.pid) =
        Sim.spawn sim ~name:"rx" (fun () ->
            for _ = 1 to n do
              let v = Mailbox.recv mb in
              got := v :: !got;
              Sim.sleep (Rng.int rng 100)
            done)
      in
      Sim.run sim;
      List.rev !got = List.init n (fun i -> i + 1))

(* --- Pm metadata: random create/delete sequences keep extents disjoint --- *)

let prop_region_extents_disjoint =
  QCheck.Test.make ~name:"PMM allocations never overlap" ~count:20
    (QCheck.make
       ~print:(fun l -> string_of_int (List.length l))
       QCheck.Gen.(list_size (int_range 1 12) (int_range 1 40)))
    (fun sizes ->
      let sim = Sim.create ~seed:77L () in
      let node = Nsk.Node.create sim ~cpus:3 () in
      let fabric = Nsk.Node.fabric node in
      let a = Pm.Npmu.create sim fabric ~name:"a" ~capacity:(1 lsl 20) in
      let b = Pm.Npmu.create sim fabric ~name:"b" ~capacity:(1 lsl 20) in
      let da = Pm.Pmm.device_of_npmu a in
      let db = Pm.Pmm.device_of_npmu b in
      Pm.Pmm.format Pm.Pmm.default_config da db;
      let pmm =
        Pm.Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Nsk.Node.cpu node 0)
          ~backup_cpu:(Nsk.Node.cpu node 1) ~primary_dev:da ~mirror_dev:db ()
      in
      let ok = ref false in
      let (_ : Sim.pid) =
        Sim.spawn sim ~name:"driver" (fun () ->
            let client =
              Pm.Pm_client.attach ~cpu:(Nsk.Node.cpu node 2) ~fabric ~pmm:(Pm.Pmm.server pmm) ()
            in
            (* Create regions of the random sizes (KiB), deleting every
               third one to fragment the space. *)
            List.iteri
              (fun i kib ->
                let name = Printf.sprintf "r%d" i in
                match Pm.Pm_client.create_region client ~name ~size:(kib * 1024) with
                | Ok h when i mod 3 = 2 ->
                    let (_ : (unit, Pm.Pm_types.error) result) =
                      Pm.Pm_client.close_region client h
                    in
                    let (_ : (unit, Pm.Pm_types.error) result) =
                      Pm.Pm_client.delete_region client ~name
                    in
                    ()
                | Ok _ -> ()
                | Error Pm.Pm_types.Out_of_space -> ()
                | Error e -> failwith (Pm.Pm_types.error_to_string e))
              sizes;
            (* Survivors must be pairwise disjoint. *)
            match Pm.Pm_client.list_regions client with
            | Error _ -> ()
            | Ok regions ->
                let extents =
                  List.map (fun r -> (r.Pm.Pm_types.net_base, r.Pm.Pm_types.length)) regions
                in
                let disjoint (b1, l1) (b2, l2) = b1 + l1 <= b2 || b2 + l2 <= b1 in
                let rec pairwise = function
                  | [] -> true
                  | e :: rest -> List.for_all (disjoint e) rest && pairwise rest
                in
                ok := pairwise extents)
      in
      Sim.run sim;
      !ok)

let suite =
  [
    ( "properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_lock_exclusion;
          prop_lock_shared_coexist;
          prop_avt_translation_in_bounds;
          prop_audit_stream_roundtrip;
          prop_mailbox_fifo;
          prop_region_extents_disjoint;
        ] );
  ]
