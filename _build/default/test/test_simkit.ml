(* Tests for the simkit discrete-event engine. *)

open Simkit

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Time --- *)

let test_time_units () =
  check_int "us" 1_000 (Time.us 1);
  check_int "ms" 1_000_000 (Time.ms 1);
  check_int "sec" 1_000_000_000 (Time.sec 1);
  check_int "us_f rounds" 1_500 (Time.us_f 1.5);
  Alcotest.(check (float 1e-9)) "to_sec" 1.5 (Time.to_sec (Time.ms 1500))

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Time.to_string 500);
  Alcotest.(check string) "us" "12.50us" (Time.to_string 12_500);
  Alcotest.(check string) "ms" "3.20ms" (Time.to_string 3_200_000)

(* --- Heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  Heap.push h ~key:5 ~seq:1 "e";
  Heap.push h ~key:1 ~seq:2 "a";
  Heap.push h ~key:3 ~seq:3 "c";
  Heap.push h ~key:1 ~seq:1 "a0";
  let pop () =
    match Heap.pop h with Some (_, _, v) -> v | None -> Alcotest.fail "empty"
  in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  Alcotest.(check (list string)) "sorted" [ "a0"; "a"; "c"; "e" ] [ p1; p2; p3; p4 ];
  check_bool "empty after" true (Heap.is_empty h)

let test_heap_random () =
  let rng = Rng.create 42L in
  let h = Heap.create () in
  let n = 1000 in
  for i = 1 to n do
    Heap.push h ~key:(Rng.int rng 100) ~seq:i i
  done;
  let last = ref min_int in
  let count = ref 0 in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (k, _, _) ->
        check_bool "nondecreasing" true (k >= !last);
        last := k;
        incr count;
        drain ()
  in
  drain ();
  check_int "all popped" n !count

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    check_bool "in range" true (x >= 0 && x < 10);
    let f = Rng.unit_float r in
    check_bool "unit float" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let r = Rng.create 9L in
  let a = Rng.split r in
  let b = Rng.split r in
  check_bool "split streams differ" true (Rng.int64 a <> Rng.int64 b)

(* --- Stat --- *)

let test_stat_moments () =
  let s = Stat.create () in
  List.iter (Stat.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  let sum = Stat.summary s in
  check_int "n" 5 sum.n;
  Alcotest.(check (float 1e-9)) "mean" 3.0 sum.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 sum.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 sum.max;
  Alcotest.(check (float 1e-6)) "stdev" (sqrt 2.5) sum.stdev

let test_stat_percentile () =
  let s = Stat.create () in
  for i = 1 to 100 do
    Stat.add s (float_of_int i)
  done;
  Alcotest.(check (float 1.0)) "p50" 50.0 (Stat.percentile s 0.50);
  Alcotest.(check (float 1.0)) "p99" 99.0 (Stat.percentile s 0.99);
  (* Adding after sorting must keep percentiles correct. *)
  Stat.add s 1000.0;
  Alcotest.(check (float 1e-9)) "new max" 1000.0 (Stat.percentile s 1.0)

let test_stat_empty_summary () =
  let s = Stat.create () in
  let sum = Stat.summary s in
  check_int "n" 0 sum.n

(* --- Sim scheduling --- *)

let test_callbacks_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.at sim ~after:(Time.us 30) (fun () -> log := 3 :: !log);
  Sim.at sim ~after:(Time.us 10) (fun () -> log := 1 :: !log);
  Sim.at sim ~after:(Time.us 20) (fun () -> log := 2 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  check_int "clock at last event" (Time.us 30) (Sim.now sim)

let test_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.at sim ~after:(Time.us 10) (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.at sim ~after:(Time.ms 10) (fun () -> fired := true);
  Sim.run ~until:(Time.ms 5) sim;
  check_bool "not fired" false !fired;
  check_int "clock at bound" (Time.ms 5) (Sim.now sim);
  Sim.run sim;
  check_bool "fires later" true !fired

let test_process_sleep () =
  let sim = Sim.create () in
  let wake_time = ref Time.zero in
  let _ =
    Sim.spawn sim ~name:"sleeper" (fun () ->
        Sim.sleep (Time.ms 3);
        wake_time := Sim.now sim)
  in
  Sim.run sim;
  check_int "woke at 3ms" (Time.ms 3) !wake_time

let test_process_exit_hook () =
  let sim = Sim.create () in
  let reason = ref None in
  let pid = Sim.spawn sim ~name:"p" (fun () -> Sim.sleep (Time.us 1)) in
  Sim.on_exit sim pid (fun r -> reason := Some r);
  Sim.run sim;
  (match !reason with
  | Some Sim.Normal -> ()
  | _ -> Alcotest.fail "expected Normal exit");
  check_bool "dead" false (Sim.is_alive sim pid)

let test_kill_blocked_process () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let got = ref false in
  let pid =
    Sim.spawn sim ~name:"victim" (fun () ->
        let (_ : int) = Mailbox.recv mb in
        got := true)
  in
  Sim.at sim ~after:(Time.us 5) (fun () -> Sim.kill sim pid);
  (* A message sent after the kill must not resurrect the process. *)
  Sim.at sim ~after:(Time.us 10) (fun () -> Mailbox.send mb 42);
  Sim.run sim;
  check_bool "never ran" false !got;
  check_bool "dead" false (Sim.is_alive sim pid)

let test_kill_hook_runs_immediately () =
  let sim = Sim.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  let killed_at = ref Time.zero in
  let pid = Sim.spawn sim ~name:"victim" (fun () -> ignore (Mailbox.recv mb)) in
  Sim.on_exit sim pid (fun _ -> killed_at := Sim.now sim);
  Sim.at sim ~after:(Time.us 7) (fun () -> Sim.kill sim pid);
  Sim.run sim;
  check_int "hook at kill time" (Time.us 7) !killed_at

let test_crash_raises_by_default () =
  let sim = Sim.create () in
  let _ = Sim.spawn sim ~name:"boom" (fun () -> failwith "bang") in
  Alcotest.check_raises "propagates" (Failure "bang") (fun () -> Sim.run sim)

let test_crash_recorded () =
  let sim = Sim.create ~on_crash:`Record () in
  let _ = Sim.spawn sim ~name:"boom" (fun () -> failwith "bang") in
  Sim.run sim;
  match Sim.crashed sim with
  | [ (_, name, Failure msg) ] ->
      Alcotest.(check string) "name" "boom" name;
      Alcotest.(check string) "msg" "bang" msg
  | _ -> Alcotest.fail "expected one recorded crash"

let test_not_in_process () =
  Alcotest.check_raises "sleep outside" Sim.Not_in_process (fun () -> Sim.sleep 5)

let test_yield_interleaving () =
  let sim = Sim.create () in
  let log = ref [] in
  let proc tag () =
    for i = 1 to 2 do
      log := (tag, i) :: !log;
      Sim.yield ()
    done
  in
  let _ = Sim.spawn sim ~name:"a" (proc "a") in
  let _ = Sim.spawn sim ~name:"b" (proc "b") in
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "round robin"
    [ ("a", 1); ("b", 1); ("a", 2); ("b", 2) ]
    (List.rev !log)

(* --- Mailbox --- *)

let test_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  let _ =
    Sim.spawn sim ~name:"rx" (fun () ->
        for _ = 1 to 3 do
          got := Mailbox.recv mb :: !got
        done)
  in
  let _ =
    Sim.spawn sim ~name:"tx" (fun () ->
        Mailbox.send mb 1;
        Sim.sleep (Time.us 1);
        Mailbox.send mb 2;
        Mailbox.send mb 3)
  in
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_timeout () =
  let sim = Sim.create () in
  let result = ref (Some 0) in
  let mb : int Mailbox.t = Mailbox.create () in
  let _ =
    Sim.spawn sim ~name:"rx" (fun () -> result := Mailbox.recv_timeout mb (Time.ms 1))
  in
  Sim.run sim;
  check_bool "timed out" true (!result = None);
  check_int "clock advanced" (Time.ms 1) (Sim.now sim)

let test_mailbox_timeout_delivery_wins () =
  let sim = Sim.create () in
  let result = ref None in
  let mb = Mailbox.create () in
  let _ =
    Sim.spawn sim ~name:"rx" (fun () -> result := Mailbox.recv_timeout mb (Time.ms 1))
  in
  Sim.at sim ~after:(Time.us 100) (fun () -> Mailbox.send mb 99);
  Sim.run sim;
  check_bool "delivered" true (!result = Some 99)

let test_mailbox_two_receivers () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  let rx name () =
    let v = Mailbox.recv mb in
    got := (name, v) :: !got
  in
  let _ = Sim.spawn sim ~name:"r1" (rx "r1") in
  let _ = Sim.spawn sim ~name:"r2" (rx "r2") in
  Sim.at sim ~after:(Time.us 1) (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2);
  Sim.run sim;
  check_int "both served" 2 (List.length !got)

(* --- Ivar --- *)

let test_ivar_fill_read () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  let _ = Sim.spawn sim ~name:"reader" (fun () -> got := Ivar.read iv) in
  Sim.at sim ~after:(Time.us 3) (fun () -> Ivar.fill iv 17);
  Sim.run sim;
  check_int "value" 17 !got

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  check_bool "try_fill refused" false (Ivar.try_fill iv 2);
  check_bool "peek" true (Ivar.peek iv = Some 1)

let test_ivar_read_timeout () =
  let sim = Sim.create () in
  let out = ref (Some 0) in
  let iv : int Ivar.t = Ivar.create () in
  let _ = Sim.spawn sim ~name:"r" (fun () -> out := Ivar.read_timeout iv (Time.us 50)) in
  Sim.run sim;
  check_bool "timeout" true (!out = None)

(* --- Gate --- *)

let test_gate_fan_in () =
  let sim = Sim.create () in
  let g = Gate.create 3 in
  let opened_at = ref Time.zero in
  let _ =
    Sim.spawn sim ~name:"waiter" (fun () ->
        Gate.await g;
        opened_at := Sim.now sim)
  in
  for i = 1 to 3 do
    Sim.at sim ~after:(Time.us (10 * i)) (fun () -> Gate.arrive g)
  done;
  Sim.run sim;
  check_int "opens at last arrival" (Time.us 30) !opened_at

let test_gate_zero () =
  let g = Gate.create 0 in
  check_bool "already open" true (Gate.is_open g)

(* --- Trace --- *)

let test_trace_disabled_by_default () =
  let tr = Trace.create () in
  let forced = ref false in
  Trace.eventf tr ~time:0 ~tag:"x" (fun () ->
      forced := true;
      "never");
  check_bool "lazy" false !forced;
  check_int "empty" 0 (List.length (Trace.entries tr))

let test_trace_ring_wraps () =
  let tr = Trace.create ~capacity:4 () in
  Trace.enable tr;
  for i = 1 to 6 do
    Trace.event tr ~time:i ~tag:"t" (string_of_int i)
  done;
  let times = List.map (fun (t, _, _) -> t) (Trace.entries tr) in
  Alcotest.(check (list int)) "last 4 kept" [ 3; 4; 5; 6 ] times

(* --- Determinism property --- *)

let run_sample_sim seed =
  let sim = Sim.create ~seed () in
  let rng = Sim.rng sim in
  let log = Buffer.create 256 in
  let mb = Mailbox.create () in
  let _ =
    Sim.spawn sim ~name:"producer" (fun () ->
        for i = 1 to 20 do
          Sim.sleep (Rng.int rng 1000);
          Mailbox.send mb i
        done)
  in
  let _ =
    Sim.spawn sim ~name:"consumer" (fun () ->
        for _ = 1 to 20 do
          let v = Mailbox.recv mb in
          Buffer.add_string log (Printf.sprintf "%d@%d;" v (Sim.now sim))
        done)
  in
  Sim.run sim;
  Buffer.contents log

let prop_determinism =
  QCheck.Test.make ~name:"identical seeds give identical runs" ~count:30 QCheck.int64
    (fun seed -> String.equal (run_sample_sim seed) (run_sample_sim seed))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:100
    QCheck.(list small_nat)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i k) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (k, _, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let prop_stat_percentile_bounds =
  QCheck.Test.make ~name:"percentiles lie within [min,max]" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stat.create () in
      List.iter (Stat.add s) xs;
      let sum = Stat.summary s in
      sum.p50 >= sum.min && sum.p50 <= sum.max && sum.p99 >= sum.p50)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest
    [ prop_determinism; prop_heap_sorts; prop_stat_percentile_bounds ]

let suite =
  [
    ( "simkit.time",
      [
        Alcotest.test_case "units" `Quick test_time_units;
        Alcotest.test_case "pretty printing" `Quick test_time_pp;
      ] );
    ( "simkit.heap",
      [
        Alcotest.test_case "ordering with ties" `Quick test_heap_order;
        Alcotest.test_case "random keys drain sorted" `Quick test_heap_random;
      ] );
    ( "simkit.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
      ] );
    ( "simkit.stat",
      [
        Alcotest.test_case "moments" `Quick test_stat_moments;
        Alcotest.test_case "percentiles with growth" `Quick test_stat_percentile;
        Alcotest.test_case "empty summary" `Quick test_stat_empty_summary;
      ] );
    ( "simkit.sim",
      [
        Alcotest.test_case "callbacks fire in order" `Quick test_callbacks_in_order;
        Alcotest.test_case "same-time events are FIFO" `Quick test_same_time_fifo;
        Alcotest.test_case "run ~until stops the clock" `Quick test_run_until;
        Alcotest.test_case "process sleep" `Quick test_process_sleep;
        Alcotest.test_case "exit hook on normal exit" `Quick test_process_exit_hook;
        Alcotest.test_case "killing a blocked process" `Quick test_kill_blocked_process;
        Alcotest.test_case "kill hooks run immediately" `Quick test_kill_hook_runs_immediately;
        Alcotest.test_case "crash raises by default" `Quick test_crash_raises_by_default;
        Alcotest.test_case "crash recorded with `Record" `Quick test_crash_recorded;
        Alcotest.test_case "blocking ops outside process raise" `Quick test_not_in_process;
        Alcotest.test_case "yield interleaves fairly" `Quick test_yield_interleaving;
      ] );
    ( "simkit.mailbox",
      [
        Alcotest.test_case "fifo delivery" `Quick test_mailbox_fifo;
        Alcotest.test_case "recv timeout expires" `Quick test_mailbox_timeout;
        Alcotest.test_case "delivery beats timeout" `Quick test_mailbox_timeout_delivery_wins;
        Alcotest.test_case "two receivers both served" `Quick test_mailbox_two_receivers;
      ] );
    ( "simkit.ivar",
      [
        Alcotest.test_case "fill then read" `Quick test_ivar_fill_read;
        Alcotest.test_case "double fill refused" `Quick test_ivar_double_fill;
        Alcotest.test_case "read timeout" `Quick test_ivar_read_timeout;
      ] );
    ( "simkit.gate",
      [
        Alcotest.test_case "fan-in" `Quick test_gate_fan_in;
        Alcotest.test_case "zero gate open" `Quick test_gate_zero;
      ] );
    ( "simkit.trace",
      [
        Alcotest.test_case "disabled is free" `Quick test_trace_disabled_by_default;
        Alcotest.test_case "ring wraps" `Quick test_trace_ring_wraps;
      ] );
    ("simkit.properties", qcheck_cases);
  ]
