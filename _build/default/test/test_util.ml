(* Shared helpers for the test suites. *)

open Simkit

(* Run [f] inside a spawned process and return its result once the
   simulation quiesces.  Fails the test if the process never finished
   (deadlock or starvation). *)
let run_process ?(seed = 0xABCDL) f =
  let sim = Sim.create ~seed () in
  let result = ref None in
  let (_ : Sim.pid) = Sim.spawn sim ~name:"test-driver" (fun () -> result := Some (f sim)) in
  Sim.run sim;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test process did not run to completion"

(* Same, but the caller supplies the simulation (e.g. to pre-build
   topology before entering process context). *)
let run_in sim f =
  let result = ref None in
  let (_ : Sim.pid) = Sim.spawn sim ~name:"test-driver" (fun () -> result := Some (f ())) in
  Sim.run sim;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test process did not run to completion"

let ok_or_fail ~msg = function
  | Ok v -> v
  | Error _ -> Alcotest.fail msg

let bytes_of_string = Bytes.of_string

let check_result_ok msg = function
  | Ok _ -> ()
  | Error _ -> Alcotest.fail msg
