(* Second corner-case sweep: protocol edges of TMF/Dtx, message-system
   link latency, client counters, entity/queue small cases. *)

open Simkit
open Nsk
open Tp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let in_system ?(cfg = System.default_config) ~seed f =
  let sim = Sim.create ~seed () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim cfg in
        out := Some (f system))
  in
  Sim.run sim;
  match !out with Some v -> v | None -> Alcotest.fail "run incomplete"

(* --- TMF protocol edges --- *)

let test_commit_unknown_txn () =
  in_system ~seed:0x1AL (fun system ->
      let tmf = Tmf.server (System.tmf system) in
      let cpu = Node.cpu (System.node system) 2 in
      match Msgsys.call tmf ~from:cpu (Tmf.Commit_txn { txn = 999; flushes = []; involved = [] }) with
      | Ok (Tmf.T_failed _) -> ()
      | _ -> Alcotest.fail "unknown txn committed")

let test_decide_unprepared_txn () =
  in_system ~seed:0x1BL (fun system ->
      let tmf = Tmf.server (System.tmf system) in
      let cpu = Node.cpu (System.node system) 2 in
      match Msgsys.call tmf ~from:cpu (Tmf.Decide_txn { txn = 5; commit = true }) with
      | Ok (Tmf.T_failed _) -> ()
      | _ -> Alcotest.fail "unprepared decision accepted")

let test_prepared_txn_not_active () =
  in_system ~seed:0x1CL (fun system ->
      let session = System.session system ~cpu:2 in
      let txn = Test_util.ok_or_fail ~msg:"begin" (Txclient.begin_txn session) in
      Test_util.check_result_ok "insert" (Txclient.insert session txn ~file:0 ~key:3 ~len:64 ());
      Test_util.check_result_ok "prepare" (Txclient.prepare session txn);
      let tmf = System.tmf system in
      check_int "moved out of active" 0 (List.length (Tmf.active_txns tmf));
      check_int "into prepared" 1 (List.length (Tmf.prepared_txns tmf));
      (* Deciding commit finishes it. *)
      Test_util.check_result_ok "decide" (Txclient.decide session txn ~commit:true);
      check_int "resolved" 0 (List.length (Tmf.prepared_txns tmf));
      check_int "counted as committed" 1 (Tmf.committed tmf))

let test_prepared_locks_block_until_decision () =
  in_system ~seed:0x1DL (fun system ->
      let s1 = System.session system ~cpu:2 in
      let s2 = System.session system ~cpu:3 in
      let node = System.node system in
      let t1 = Test_util.ok_or_fail ~msg:"b1" (Txclient.begin_txn s1) in
      Test_util.check_result_ok "i1" (Txclient.insert s1 t1 ~file:0 ~key:11 ~len:64 ());
      Test_util.check_result_ok "prep" (Txclient.prepare s1 t1);
      (* A second writer wants the key; it must wait for the decision. *)
      let second_done = ref Time.zero in
      let g = Gate.create 1 in
      ignore
        (Cpu.spawn (Node.cpu node 3) ~name:"w2" (fun () ->
             let t2 = Test_util.ok_or_fail ~msg:"b2" (Txclient.begin_txn s2) in
             Test_util.check_result_ok "i2" (Txclient.insert s2 t2 ~file:0 ~key:11 ~len:64 ());
             Test_util.check_result_ok "c2" (Txclient.commit s2 t2);
             second_done := Sim.now (System.sim system);
             Gate.arrive g));
      Sim.sleep (Time.ms 80);
      let decided_at = Sim.now (System.sim system) in
      Test_util.check_result_ok "decide" (Txclient.decide s1 t1 ~commit:true);
      Gate.await g;
      check_bool "second writer waited for the decision" true (!second_done > decided_at))

(* --- Msgsys link latency --- *)

let test_msgsys_extra_latency () =
  let sim = Sim.create () in
  let node = Node.create sim ~cpus:2 () in
  let server = Msgsys.create_server (Node.fabric node) ~cpu:(Node.cpu node 0) ~name:"echo" in
  let (_ : Sim.pid) =
    Cpu.spawn (Node.cpu node 0) ~name:"server" (fun () ->
        while true do
          let req, respond = Msgsys.next_request server in
          respond req
        done)
  in
  let run () =
    let out = ref Time.zero in
    let (_ : Sim.pid) =
      Cpu.spawn (Node.cpu node 1) ~name:"client" (fun () ->
          let t0 = Sim.now sim in
          (match Msgsys.call server ~from:(Node.cpu node 1) 1 with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "call failed");
          out := Sim.now sim - t0)
    in
    Sim.run sim;
    !out
  in
  let base = run () in
  Msgsys.set_extra_latency server (Time.ms 1);
  let slow = run () in
  check_bool
    (Printf.sprintf "RTT grew by ~2ms (base %s, slow %s)" (Time.to_string base)
       (Time.to_string slow))
    true
    (slow >= base + Time.ms 2)

(* --- Pm_client degraded/latency counters --- *)

let test_pm_client_write_latency_stat () =
  let sim = Sim.create ~seed:0x2AL () in
  let node = Node.create sim ~cpus:3 () in
  let fabric = Node.fabric node in
  let done_ = ref false in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let a = Pm.Npmu.create sim fabric ~name:"a" ~capacity:(1 lsl 20) in
        let b = Pm.Npmu.create sim fabric ~name:"b" ~capacity:(1 lsl 20) in
        let da = Pm.Pmm.device_of_npmu a in
        let db = Pm.Pmm.device_of_npmu b in
        Pm.Pmm.format Pm.Pmm.default_config da db;
        let pmm =
          Pm.Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0)
            ~backup_cpu:(Node.cpu node 1) ~primary_dev:da ~mirror_dev:db ()
        in
        let c = Pm.Pm_client.attach ~cpu:(Node.cpu node 2) ~fabric ~pmm:(Pm.Pmm.server pmm) () in
        let h = Test_util.ok_or_fail ~msg:"region" (Pm.Pm_client.create_region c ~name:"r" ~size:8192) in
        for _ = 1 to 10 do
          Test_util.check_result_ok "write" (Pm.Pm_client.write c h ~off:0 ~data:(Bytes.create 512))
        done;
        let stat = Pm.Pm_client.write_latency c in
        check_int "ten samples" 10 (Stat.count stat);
        check_bool "mean in tens of microseconds" true
          (Stat.mean stat > 10e3 && Stat.mean stat < 200e3);
        done_ := true)
  in
  Sim.run sim;
  check_bool "ran" true !done_

(* --- Trail archiver --- *)

let test_trail_archiver_bounds_replay () =
  in_system ~seed:0x3AL (fun system ->
      System.start_trail_archiver system ~interval:(Time.ms 200) ~rounds:8 ();
      let session = System.session system ~cpu:2 in
      for k = 1 to 30 do
        let txn = Test_util.ok_or_fail ~msg:"begin" (Txclient.begin_txn session) in
        Test_util.check_result_ok "insert" (Txclient.insert session txn ~file:0 ~key:k ~len:256 ());
        Test_util.check_result_ok "commit" (Txclient.commit session txn)
      done;
      (* Let the archiver finish its sweeps, then check the replayable
         windows shrank below the full history. *)
      Sim.sleep (Time.sec 2);
      let replayable =
        Array.fold_left
          (fun acc adp ->
            match Log_backend.recovery_read (Adp.backend adp) with
            | Ok records -> acc + List.length records
            | Error _ -> acc)
          0 (System.adps system)
      in
      check_bool
        (Printf.sprintf "trails trimmed (%d records left of 30+)" replayable)
        true (replayable < 30))

let suite =
  [
    ( "tp.protocol_edges",
      [
        Alcotest.test_case "commit of unknown txn refused" `Quick test_commit_unknown_txn;
        Alcotest.test_case "decide of unprepared txn refused" `Quick test_decide_unprepared_txn;
        Alcotest.test_case "prepare moves txn to in-doubt set" `Quick test_prepared_txn_not_active;
        Alcotest.test_case "prepared locks block until decision" `Quick
          test_prepared_locks_block_until_decision;
      ] );
    ( "edges.msgsys",
      [ Alcotest.test_case "extra link latency applies both ways" `Quick test_msgsys_extra_latency ] );
    ( "edges.pm_client",
      [ Alcotest.test_case "write latency statistics" `Quick test_pm_client_write_latency_stat ] );
    ( "edges.archiver",
      [ Alcotest.test_case "archiver bounds the replayable trail" `Quick test_trail_archiver_bounds_replay ] );
  ]

(* --- Entity + queue extras --- *)

let test_entity_two_schemas_coexist () =
  let cfg =
    { System.default_config with System.dp2 = { Dp2.default_config with Dp2.store_payloads = true } }
  in
  in_system ~cfg ~seed:0x4AL (fun system ->
      let c = Entity.create (System.session system ~cpu:2) in
      let users = Entity.schema ~name:"user" ~file:0 ~fields:[ ("name", Entity.F_string) ] in
      let carts = Entity.schema ~name:"cart" ~file:1 ~fields:[ ("items", Entity.F_int) ] in
      (match Entity.with_txn c (fun txn -> Entity.persist c txn users ~id:1 [ ("name", Entity.V_string "ada") ]) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Entity.error_to_string e));
      (match Entity.with_txn c (fun txn -> Entity.persist c txn carts ~id:1 [ ("items", Entity.V_int 3) ]) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Entity.error_to_string e));
      (* Same id, different schemas/files: both live, and a schema cannot
         decode the other's row. *)
      (match Entity.find c users ~id:1 with
      | Ok (Some [ ("name", Entity.V_string "ada") ]) -> ()
      | _ -> Alcotest.fail "user lost");
      match Entity.find c carts ~id:1 with
      | Ok (Some [ ("items", Entity.V_int 3) ]) -> ()
      | _ -> Alcotest.fail "cart lost")

let test_time_roundtrips () =
  check_int "ms of us" (Time.ms 3) (Time.us 3000);
  Alcotest.(check (float 1e-9)) "to_ms" 2.5 (Time.to_ms (Time.us 2500));
  check_int "sec_f" (Time.ms 1500) (Time.sec_f 1.5)

let extra2_cases =
  [
    Alcotest.test_case "two entity schemas coexist" `Quick test_entity_two_schemas_coexist;
    Alcotest.test_case "time conversions" `Quick test_time_roundtrips;
  ]

let suite = suite @ [ ("edges.more", extra2_cases) ]

(* --- Entity persistence across a monitor takeover --- *)

let test_entity_survives_tmf_takeover () =
  let cfg =
    { System.default_config with System.dp2 = { Dp2.default_config with Dp2.store_payloads = true } }
  in
  in_system ~cfg ~seed:0x5AL (fun system ->
      let c = Entity.create (System.session system ~cpu:2) in
      let s = Entity.schema ~name:"acct" ~file:0 ~fields:[ ("bal", Entity.F_int) ] in
      (match Entity.with_txn c (fun txn -> Entity.persist c txn s ~id:1 [ ("bal", Entity.V_int 10) ]) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Entity.error_to_string e));
      Tmf.kill_primary (System.tmf system);
      Sim.sleep (Time.sec 1);
      (* The promoted monitor serves new units of work; old data intact. *)
      (match Entity.with_txn c (fun txn -> Entity.persist c txn s ~id:2 [ ("bal", Entity.V_int 20) ]) with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Entity.error_to_string e));
      match (Entity.find c s ~id:1, Entity.find c s ~id:2) with
      | Ok (Some _), Ok (Some _) -> ()
      | _ -> Alcotest.fail "entities lost across takeover")

let takeover_cases =
  [ Alcotest.test_case "entity container across TMF takeover" `Quick test_entity_survives_tmf_takeover ]

let suite = suite @ [ ("edges.entity_takeover", takeover_cases) ]
