(* Tests for the NSK layer: CPUs, message system, process pairs. *)

open Simkit
open Nsk

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_node ?(cpus = 4) () =
  let sim = Sim.create ~seed:0x42L () in
  let node = Node.create sim ~cpus () in
  (sim, node)

(* --- Cpu --- *)

let test_cpu_execute_serializes () =
  let sim, node = make_node () in
  let cpu = Node.cpu node 0 in
  let finish = ref Time.zero in
  let worker () =
    Cpu.execute cpu (Time.ms 1);
    finish := max !finish (Sim.now sim)
  in
  let (_ : Sim.pid) = Cpu.spawn cpu ~name:"w1" worker in
  let (_ : Sim.pid) = Cpu.spawn cpu ~name:"w2" worker in
  Sim.run sim;
  check_int "two 1ms slices serialize" (Time.ms 2) !finish;
  check_int "busy accounted" (Time.ms 2) (Cpu.busy_time cpu)

let test_cpu_failure_kills_residents () =
  let sim, node = make_node () in
  let cpu = Node.cpu node 1 in
  let survived = ref false in
  let (_ : Sim.pid) =
    Cpu.spawn cpu ~name:"victim" (fun () ->
        Sim.sleep (Time.ms 10);
        survived := true)
  in
  Sim.at sim ~after:(Time.ms 1) (fun () -> Cpu.fail cpu);
  Sim.run sim;
  check_bool "resident killed" false !survived;
  check_bool "cpu down" false (Cpu.is_up cpu)

let test_cpu_failure_hook () =
  let sim, node = make_node () in
  let cpu = Node.cpu node 2 in
  let fired = ref false in
  Cpu.on_failure cpu (fun () -> fired := true);
  Sim.at sim ~after:(Time.us 1) (fun () -> Cpu.fail cpu);
  Sim.run sim;
  check_bool "hook fired" true !fired

let test_cpu_spawn_on_down_cpu () =
  let _, node = make_node () in
  let cpu = Node.cpu node 0 in
  Cpu.fail cpu;
  Alcotest.check_raises "spawn refused" (Invalid_argument "Cpu.spawn: CPU is down") (fun () ->
      ignore (Cpu.spawn cpu ~name:"x" (fun () -> ())))

(* --- Msgsys --- *)

let test_rpc_roundtrip () =
  let sim, node = make_node () in
  let server = Msgsys.create_server (Node.fabric node) ~cpu:(Node.cpu node 0) ~name:"echo" in
  let (_ : Sim.pid) =
    Cpu.spawn (Node.cpu node 0) ~name:"server" (fun () ->
        while true do
          let req, respond = Msgsys.next_request server in
          respond (req * 2)
        done)
  in
  let got = ref 0 in
  let t0 = ref Time.zero in
  let elapsed = ref Time.zero in
  let (_ : Sim.pid) =
    Cpu.spawn (Node.cpu node 1) ~name:"client" (fun () ->
        t0 := Sim.now sim;
        match Msgsys.call server ~from:(Node.cpu node 1) 21 with
        | Ok v ->
            got := v;
            elapsed := Sim.now sim - !t0
        | Error _ -> Alcotest.fail "rpc failed")
  in
  Sim.run sim;
  check_int "doubled" 42 !got;
  check_bool "a message costs 10s of us" true (!elapsed >= Time.us 20 && !elapsed < Time.ms 1)

let test_rpc_server_down () =
  let sim, node = make_node () in
  let server = Msgsys.create_server (Node.fabric node) ~cpu:(Node.cpu node 0) ~name:"dead" in
  Cpu.fail (Node.cpu node 0);
  let result = ref (Ok 0) in
  let (_ : Sim.pid) =
    Cpu.spawn (Node.cpu node 1) ~name:"client" (fun () ->
        result := Msgsys.call server ~from:(Node.cpu node 1) 1)
  in
  Sim.run sim;
  match !result with
  | Error Msgsys.Server_down -> ()
  | _ -> Alcotest.fail "expected Server_down"

let test_rpc_fail_outstanding () =
  let sim, node = make_node () in
  let server = Msgsys.create_server (Node.fabric node) ~cpu:(Node.cpu node 0) ~name:"slow" in
  (* Server never answers; failing outstanding calls must release the
     blocked client. *)
  let result = ref None in
  let (_ : Sim.pid) =
    Cpu.spawn (Node.cpu node 1) ~name:"client" (fun () ->
        result := Some (Msgsys.call server ~from:(Node.cpu node 1) 7))
  in
  Sim.at sim ~after:(Time.ms 5) (fun () -> Msgsys.fail_outstanding server);
  Sim.run sim;
  match !result with
  | Some (Error Msgsys.Server_down) -> ()
  | _ -> Alcotest.fail "client not released"

let test_rpc_timeout () =
  let sim, node = make_node () in
  let server = Msgsys.create_server (Node.fabric node) ~cpu:(Node.cpu node 0) ~name:"mute" in
  let result = ref None in
  let (_ : Sim.pid) =
    Cpu.spawn (Node.cpu node 1) ~name:"client" (fun () ->
        result := Some (Msgsys.call server ~from:(Node.cpu node 1) ~timeout:(Time.ms 2) 7))
  in
  Sim.run sim;
  match !result with
  | Some (Error Msgsys.Timed_out) -> ()
  | _ -> Alcotest.fail "expected timeout"

(* --- Procpair --- *)

(* A counting service: requests increment a counter; the primary
   checkpoints the counter before replying.  After takeover the backup
   must continue from the checkpointed value. *)
let start_counter_pair node ~primary ~backup =
  let fabric = Node.fabric node in
  let server = Msgsys.create_server fabric ~cpu:primary ~name:"counter" in
  let live = ref 0 in
  let shadow = ref 0 in
  let pair = ref None in
  let serve () =
    (* A promoted primary starts from the checkpointed shadow. *)
    live := !shadow;
    while true do
      let (), respond = Msgsys.next_request server in
      incr live;
      (match !pair with Some p -> Procpair.checkpoint p ~bytes:8 !live | None -> ());
      respond !live
    done
  in
  let p =
    Procpair.start ~fabric ~name:"counter" ~primary ~backup
      ~config:{ Procpair.takeover_delay = Time.ms 100; ack_bytes = 64 }
      ~apply:(fun v -> shadow := v)
      ~serve
      ~on_takeover:(fun () -> Msgsys.move server ~cpu:backup)
      ()
  in
  pair := Some p;
  (server, p)

let test_procpair_checkpointing () =
  let sim, node = make_node () in
  let server, pair = start_counter_pair node ~primary:(Node.cpu node 0) ~backup:(Node.cpu node 1) in
  let (_ : Sim.pid) =
    Cpu.spawn (Node.cpu node 2) ~name:"client" (fun () ->
        for expect = 1 to 5 do
          match Msgsys.call server ~from:(Node.cpu node 2) () with
          | Ok v -> check_int "count" expect v
          | Error _ -> Alcotest.fail "call failed"
        done)
  in
  Sim.run sim;
  check_int "five checkpoints" 5 (Procpair.checkpoints_sent pair)

let test_procpair_takeover_preserves_state () =
  let sim, node = make_node () in
  let server, pair = start_counter_pair node ~primary:(Node.cpu node 0) ~backup:(Node.cpu node 1) in
  let final = ref 0 in
  let (_ : Sim.pid) =
    Cpu.spawn (Node.cpu node 2) ~name:"client" (fun () ->
        for _ = 1 to 3 do
          match Msgsys.call server ~from:(Node.cpu node 2) () with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "pre-failure call failed"
        done;
        (* Kill the primary CPU, then keep calling until the backup
           answers. *)
        Cpu.fail (Node.cpu node 0);
        let rec retry () =
          match Msgsys.call server ~from:(Node.cpu node 2) ~timeout:(Time.ms 500) () with
          | Ok v -> final := v
          | Error _ ->
              Sim.sleep (Time.ms 50);
              retry ()
        in
        retry ())
  in
  Sim.run sim;
  check_int "continues from checkpointed state" 4 !final;
  check_int "one takeover" 1 (Procpair.takeovers pair);
  check_bool "sub-second outage" true (Procpair.outage_time pair < Time.sec 1);
  check_bool "no backup anymore" false (Procpair.has_backup pair)

let test_procpair_halted_when_both_die () =
  let sim, node = make_node () in
  let _, pair = start_counter_pair node ~primary:(Node.cpu node 0) ~backup:(Node.cpu node 1) in
  Sim.at sim ~after:(Time.ms 1) (fun () -> Cpu.fail (Node.cpu node 1));
  Sim.at sim ~after:(Time.ms 2) (fun () -> Cpu.fail (Node.cpu node 0));
  Sim.run sim;
  check_bool "pair halted" true (Procpair.is_halted pair)

let test_procpair_checkpoint_degrades_without_backup () =
  let sim, node = make_node () in
  let server, pair = start_counter_pair node ~primary:(Node.cpu node 0) ~backup:(Node.cpu node 1) in
  Cpu.fail (Node.cpu node 1);
  (* Checkpoints silently stop; service continues. *)
  let got = ref 0 in
  let (_ : Sim.pid) =
    Cpu.spawn (Node.cpu node 2) ~name:"client" (fun () ->
        match Msgsys.call server ~from:(Node.cpu node 2) () with
        | Ok v -> got := v
        | Error _ -> Alcotest.fail "call failed")
  in
  Sim.run sim;
  check_int "service alive" 1 !got;
  check_int "no checkpoints shipped" 0 (Procpair.checkpoints_sent pair)

let suite =
  [
    ( "nsk.cpu",
      [
        Alcotest.test_case "execute serializes on one CPU" `Quick test_cpu_execute_serializes;
        Alcotest.test_case "failure kills residents" `Quick test_cpu_failure_kills_residents;
        Alcotest.test_case "failure hooks fire" `Quick test_cpu_failure_hook;
        Alcotest.test_case "spawn on down CPU refused" `Quick test_cpu_spawn_on_down_cpu;
      ] );
    ( "nsk.msgsys",
      [
        Alcotest.test_case "request/reply roundtrip" `Quick test_rpc_roundtrip;
        Alcotest.test_case "dead server reported" `Quick test_rpc_server_down;
        Alcotest.test_case "fail_outstanding releases callers" `Quick test_rpc_fail_outstanding;
        Alcotest.test_case "call timeout" `Quick test_rpc_timeout;
      ] );
    ( "nsk.procpair",
      [
        Alcotest.test_case "checkpoints flow to backup" `Quick test_procpair_checkpointing;
        Alcotest.test_case "takeover preserves checkpointed state" `Quick
          test_procpair_takeover_preserves_state;
        Alcotest.test_case "halted when both sides die" `Quick test_procpair_halted_when_both_die;
        Alcotest.test_case "degrades without backup" `Quick
          test_procpair_checkpoint_degrades_without_backup;
      ] );
  ]

(* --- Duplicate and compare (paper section 1.3) --- *)

let test_dandc_agreement () =
  let sim, node = make_node () in
  let outcome = ref None in
  let t0 = ref Time.zero in
  let elapsed = ref Time.zero in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        t0 := Sim.now sim;
        outcome :=
          Some
            (Dandc.run ~fabric:(Node.fabric node) ~primary:(Node.cpu node 0)
               ~shadow:(Node.cpu node 1) ~work:(Time.ms 2)
               ~compute:(fun ~replica -> ignore replica; 40 + 2)
               ~checksum:(fun v -> v * 31));
        elapsed := Sim.now sim - !t0)
  in
  Sim.run sim;
  (match !outcome with
  | Some (Dandc.Agreed 42) -> ()
  | _ -> Alcotest.fail "expected agreement on 42");
  (* Replicas run in parallel: total is ~one work quantum, not two. *)
  check_bool "parallel execution" true (!elapsed < Time.ms 4)

let test_dandc_detects_corruption () =
  let sim, node = make_node () in
  let outcome = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        outcome :=
          Some
            (Dandc.run ~fabric:(Node.fabric node) ~primary:(Node.cpu node 0)
               ~shadow:(Node.cpu node 1) ~work:(Time.us 100)
               ~compute:(fun ~replica -> if replica = 1 then 99 (* SDC *) else 42)
               ~checksum:(fun v -> v * 31)))
  in
  Sim.run sim;
  match !outcome with
  | Some (Dandc.Mismatch _) -> ()
  | _ -> Alcotest.fail "silent corruption not detected"

let dandc_cases =
  [
    Alcotest.test_case "replicas agree in parallel" `Quick test_dandc_agreement;
    Alcotest.test_case "detects silent corruption" `Quick test_dandc_detects_corruption;
  ]

let suite = suite @ [ ("nsk.dandc", dandc_cases) ]
