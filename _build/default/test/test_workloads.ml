(* Tests for the workload generators and the experiment harness. *)

open Simkit
open Workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_pm = { Tp.System.pm_config with Tp.System.pm_capacity = 8 * 1024 * 1024; pm_region_bytes = 1024 * 1024 }

let in_system ?(cfg = Tp.System.default_config) ~seed f =
  let sim = Sim.create ~seed () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = Tp.System.build sim cfg in
        out := Some (f system))
  in
  Sim.run sim;
  match !out with Some v -> v | None -> Alcotest.fail "workload did not complete"

(* --- Hot_stock --- *)

let test_hot_stock_accounting () =
  let r =
    in_system ~seed:0x111L (fun system ->
        Hot_stock.run system (Hot_stock.scaled_params ~drivers:3 ~inserts_per_txn:8 ~records_per_driver:40))
  in
  check_int "txns" 15 r.Hot_stock.txns;
  check_int "committed all" 15 r.Hot_stock.committed;
  check_int "one response sample per txn" 15 r.Hot_stock.response.Stat.n;
  check_bool "throughput positive" true (r.Hot_stock.throughput_tps > 0.0)

let test_hot_stock_partial_last_boxcar () =
  (* 50 records with boxcar 8 = 6 full + one 2-insert transaction. *)
  let r =
    in_system ~seed:0x112L (fun system ->
        Hot_stock.run system (Hot_stock.scaled_params ~drivers:1 ~inserts_per_txn:8 ~records_per_driver:50))
  in
  check_int "txns include the remainder" 7 r.Hot_stock.txns;
  check_int "committed" 7 r.Hot_stock.committed

let test_hot_stock_rows_unique () =
  let rows =
    in_system ~seed:0x113L (fun system ->
        let (_ : Hot_stock.result) =
          Hot_stock.run system
            (Hot_stock.scaled_params ~drivers:2 ~inserts_per_txn:4 ~records_per_driver:32)
        in
        Array.fold_left (fun acc d -> acc + Tp.Dp2.table_size d) 0 (Tp.System.dp2s system))
  in
  check_int "64 distinct rows" 64 rows

let test_txn_size_label () =
  Alcotest.(check string) "32k" "32k"
    (Hot_stock.txn_size_label (Hot_stock.paper_params ~drivers:1 ~inserts_per_txn:8));
  Alcotest.(check string) "128k" "128k"
    (Hot_stock.txn_size_label (Hot_stock.paper_params ~drivers:1 ~inserts_per_txn:32))

(* --- Telco --- *)

let test_telco_completes_and_serves_reads () =
  let r =
    in_system ~cfg:small_pm ~seed:0x7E1L (fun system ->
        Telco_cdr.run system
          { Telco_cdr.switches = 3; cdrs_per_switch = 60; cdr_bytes = 256; cdrs_per_txn = 2;
            fraud_readers = 2; arrival = Telco_cdr.Closed })
  in
  check_int "all CDRs in" 180 r.Telco_cdr.cdrs_inserted;
  check_bool "ingest rate positive" true (r.Telco_cdr.cdrs_per_sec > 0.0);
  check_bool "readers ran" true (r.Telco_cdr.lookups > 0);
  check_bool "some lookups hit" true (r.Telco_cdr.lookup_hits > 0)

(* --- Order matching --- *)

let test_order_match_contention () =
  let r =
    in_system ~seed:0x5701L (fun system ->
        Order_match.run system
          { Order_match.streams = 4; trades_per_stream = 40; symbols = 8; hot_symbol_share = 0.6; order_bytes = 256 })
  in
  check_int "trades" 160 r.Order_match.trades;
  check_bool "hot volume dominates" true (r.Order_match.hot_trades > 60);
  check_bool "hot symbol causes lock conflicts" true (r.Order_match.lock_waits > 0)

let test_order_match_pm_lifts_hot_throughput () =
  let run cfg =
    in_system ~cfg ~seed:0x5702L (fun system ->
        Order_match.run system
          { Order_match.streams = 2; trades_per_stream = 50; symbols = 8; hot_symbol_share = 0.5; order_bytes = 256 })
  in
  let disk = run Tp.System.default_config in
  let pm = run small_pm in
  check_bool
    (Printf.sprintf "hot tps improves (disk %.1f, pm %.1f)" disk.Order_match.hot_tps pm.Order_match.hot_tps)
    true
    (pm.Order_match.hot_tps > disk.Order_match.hot_tps *. 2.0)

(* --- PMP prototype parity (paper section 4.2) --- *)

let test_pmp_prototype_parity () =
  (* The paper's experiments ran on process-hosted PMPs, not hardware
     NPMUs, and report the hardware is only "slightly faster".  Our PMP
     shares the NPMU's fabric path, so the benchmark results must agree. *)
  let run kind =
    let cfg = { small_pm with Tp.System.pm_device_kind = kind } in
    in_system ~cfg ~seed:0x939L (fun system ->
        Hot_stock.run system
          (Hot_stock.scaled_params ~drivers:1 ~inserts_per_txn:8 ~records_per_driver:160))
  in
  let hw = run Tp.System.Hardware_npmu in
  let proto = run Tp.System.Prototype_pmp in
  let ratio = proto.Hot_stock.response.Stat.mean /. hw.Hot_stock.response.Stat.mean in
  check_bool
    (Printf.sprintf "PMP within 10%% of hardware (ratio %.3f)" ratio)
    true
    (ratio > 0.9 && ratio < 1.1);
  check_int "same work" hw.Hot_stock.committed proto.Hot_stock.committed

(* --- Bank (TPC-B-style) --- *)

let bank_params =
  { Bank.clients = 3; txns_per_client = 30; branches = 2; tellers_per_branch = 5;
    accounts = 200; row_bytes = 128 }

let test_bank_completes () =
  let r = in_system ~seed:0xBA11L (fun system -> Bank.run system bank_params) in
  check_int "all committed" 90 r.Bank.committed;
  check_int "history rows" 90 r.Bank.history_rows;
  check_bool "branch contention observed" true (r.Bank.branch_conflicts > 0)

let test_bank_updates_carry_before_images () =
  (* The measured phase overwrites preloaded rows, so the trails must
     carry before-images (update audit is larger than the payload). *)
  let audit =
    in_system ~seed:0xBA12L (fun system ->
        let (_ : Bank.result) = Bank.run system bank_params in
        (* Replay the trails and count updates with before_len > 0. *)
        let with_before = ref 0 in
        Array.iter
          (fun adp ->
            match Tp.Log_backend.recovery_read (Tp.Adp.backend adp) with
            | Ok records ->
                List.iter
                  (fun (_, r) ->
                    match r with
                    | Tp.Audit.Update { before_len; _ } when before_len > 0 -> incr with_before
                    | _ -> ())
                  records
            | Error _ -> ())
          (Tp.System.adps system);
        !with_before)
  in
  check_bool "before-images present" true (audit > 100)

let test_bank_pm_faster () =
  let run cfg = in_system ~cfg ~seed:0xBA13L (fun system -> Bank.run system bank_params) in
  let disk = run Tp.System.default_config in
  let pm = run small_pm in
  check_bool
    (Printf.sprintf "pm tps > 2x disk (disk %.0f, pm %.0f)" disk.Bank.tps pm.Bank.tps)
    true (pm.Bank.tps > disk.Bank.tps *. 2.0)

(* --- Figures harness --- *)

let test_figure_cell_speedup () =
  let disk =
    Figures.run_cell ~mode:Tp.System.Disk_audit ~drivers:1 ~inserts_per_txn:8 ~records_per_driver:160 ()
  in
  let pm =
    Figures.run_cell ~mode:Tp.System.Pm_audit ~drivers:1 ~inserts_per_txn:8 ~records_per_driver:160 ()
  in
  let speedup = disk.Figures.result.Hot_stock.response.Stat.mean /. pm.Figures.result.Hot_stock.response.Stat.mean in
  check_bool (Printf.sprintf "PM speedup > 2 at boxcar 8 (got %.2f)" speedup) true (speedup > 2.0)

let test_figure1_shape () =
  (* Tiny-scale figure 1: speedup must decline with the boxcar degree. *)
  let points = Figures.figure1 ~records_per_driver:160 ~drivers_list:[ 1 ] () in
  check_int "three boxcar points" 3 (List.length points);
  match points with
  | [ p8; p16; p32 ] ->
      check_bool "speedup declines with boxcarring" true
        (p8.Figures.speedup > p16.Figures.speedup && p16.Figures.speedup > p32.Figures.speedup);
      check_bool "all above 1" true (p32.Figures.speedup > 1.0)
  | _ -> Alcotest.fail "unexpected shape"

let test_figure2_shape () =
  let points = Figures.figure2 ~records_per_driver:160 ~drivers_list:[ 1 ] () in
  match points with
  | [ p8; _; p32 ] ->
      check_bool "disk elapsed falls with boxcarring" true
        (p8.Figures.elapsed_disk_s > p32.Figures.elapsed_disk_s);
      let disk_rise = p8.Figures.elapsed_disk_s /. p32.Figures.elapsed_disk_s in
      let pm_rise = p8.Figures.elapsed_pm_s /. p32.Figures.elapsed_pm_s in
      check_bool
        (Printf.sprintf "PM much flatter (disk rise %.2f, pm rise %.2f)" disk_rise pm_rise)
        true
        (pm_rise < disk_rise /. 1.5)
  | _ -> Alcotest.fail "unexpected shape"

let test_latency_sweep_monotone () =
  let points = Figures.latency_sweep ~records_per_driver:320 ~penalties:[ 0; Time.ms 1; Time.ms 8 ] () in
  match points with
  | [ a; b; c ] ->
      check_bool "RT grows with device latency" true
        (a.Figures.rt_us < b.Figures.rt_us && b.Figures.rt_us < c.Figures.rt_us);
      check_bool "advantage dies at disk-class latency" true (c.Figures.speedup_vs_disk < 1.0)
  | _ -> Alcotest.fail "unexpected sweep shape"

let test_mttr_pm_faster () =
  match Figures.mttr ~records_per_driver:400 () with
  | [ disk; pm ] ->
      check_bool "pm MTTR shorter" true (pm.Figures.report.Tp.Recovery.mttr < disk.Figures.report.Tp.Recovery.mttr);
      check_int "same rows rebuilt" disk.Figures.report.Tp.Recovery.rows_rebuilt
        pm.Figures.report.Tp.Recovery.rows_rebuilt;
      check_bool "sources differ" true
        (disk.Figures.report.Tp.Recovery.outcome_source = Tp.Recovery.Mat_scan
        && pm.Figures.report.Tp.Recovery.outcome_source = Tp.Recovery.Pm_txn_table)
  | _ -> Alcotest.fail "expected two mttr points"

let test_failover_no_loss () =
  let r = Figures.failover_under_load ~records_per_driver:200 () in
  check_int "no lost transactions" 0 r.Figures.lost_transactions;
  check_int "one takeover" 1 r.Figures.adp_takeovers;
  check_int "all committed" 50 r.Figures.committed_total

let test_adp_scaling_helps_pm () =
  (* "For scaling audit throughput, multiple ADPs can be configured per
     node" (paper §4.2): with fast trails the log writer's instruction
     path is the bottleneck, so spreading it over CPUs pays; disk mode is
     rotation-bound and stays flat. *)
  let points = Figures.adp_scaling ~records_per_driver:800 ~counts:[ 1; 4 ] () in
  let find n mode =
    List.find (fun p -> p.Figures.adps = n && p.Figures.a_mode = mode) points
  in
  let pm1 = find 1 Tp.System.Pm_audit in
  let pm4 = find 4 Tp.System.Pm_audit in
  check_bool
    (Printf.sprintf "more ADPs lift PM throughput (1: %.0f, 4: %.0f tps)" pm1.Figures.tps
       pm4.Figures.tps)
    true
    (pm4.Figures.tps > pm1.Figures.tps *. 1.1)

let test_checkpoint_traffic_eliminated () =
  match Figures.checkpoint_traffic ~records_per_driver:200 () with
  | [ disk; pm ] ->
      check_bool "disk checkpoints ~ audit volume" true
        (disk.Figures.checkpoint_bytes > disk.Figures.audit_bytes / 2);
      check_bool
        (Printf.sprintf "pm eliminates audit checkpoints (disk %d B/txn, pm %.0f B/txn)"
           (int_of_float disk.Figures.ckpt_bytes_per_txn)
           pm.Figures.ckpt_bytes_per_txn)
        true
        (pm.Figures.ckpt_bytes_per_txn < disk.Figures.ckpt_bytes_per_txn /. 20.0)
  | _ -> Alcotest.fail "expected two points"

let test_scaleout_linear () =
  let points = Figures.scaleout ~records_per_driver:200 ~nodes_list:[ 1; 2 ] () in
  let find n mode = List.find (fun p -> p.Figures.s_nodes = n && p.Figures.s_mode = mode) points in
  let d1 = find 1 Tp.System.Disk_audit in
  let d2 = find 2 Tp.System.Disk_audit in
  check_bool
    (Printf.sprintf "2 nodes ~ 2x aggregate (1: %.0f, 2: %.0f)" d1.Figures.aggregate_tps
       d2.Figures.aggregate_tps)
    true
    (d2.Figures.aggregate_tps > d1.Figures.aggregate_tps *. 1.8)

let suite =
  [
    ( "workloads.hot_stock",
      [
        Alcotest.test_case "transaction accounting" `Quick test_hot_stock_accounting;
        Alcotest.test_case "partial last boxcar" `Quick test_hot_stock_partial_last_boxcar;
        Alcotest.test_case "distinct rows land" `Quick test_hot_stock_rows_unique;
        Alcotest.test_case "txn size labels" `Quick test_txn_size_label;
      ] );
    ( "workloads.telco",
      [ Alcotest.test_case "ingest with concurrent readers" `Quick test_telco_completes_and_serves_reads ] );
    ( "workloads.pmp",
      [ Alcotest.test_case "prototype PMP matches hardware NPMU" `Quick test_pmp_prototype_parity ] );
    ( "workloads.bank",
      [
        Alcotest.test_case "transactions complete with retries" `Quick test_bank_completes;
        Alcotest.test_case "updates carry before-images" `Quick test_bank_updates_carry_before_images;
        Alcotest.test_case "PM multiplies throughput" `Quick test_bank_pm_faster;
      ] );
    ( "workloads.order_match",
      [
        Alcotest.test_case "hot symbol contends" `Quick test_order_match_contention;
        Alcotest.test_case "PM lifts hot-symbol throughput" `Quick test_order_match_pm_lifts_hot_throughput;
      ] );
    ( "figures",
      [
        Alcotest.test_case "single cell speedup" `Quick test_figure_cell_speedup;
        Alcotest.test_case "figure 1 shape (boxcar trend)" `Quick test_figure1_shape;
        Alcotest.test_case "figure 2 shape (PM flat)" `Quick test_figure2_shape;
        Alcotest.test_case "E3 latency sweep monotone" `Quick test_latency_sweep_monotone;
        Alcotest.test_case "E5 PM recovers faster" `Quick test_mttr_pm_faster;
        Alcotest.test_case "E7 failover loses nothing" `Quick test_failover_no_loss;
        Alcotest.test_case "E6 ADP scaling helps PM audit" `Quick test_adp_scaling_helps_pm;
        Alcotest.test_case "E8 shared-nothing scale-out is linear" `Quick test_scaleout_linear;
        Alcotest.test_case "E9 PM eliminates audit checkpoint traffic" `Quick
          test_checkpoint_traffic_eliminated;
      ] );
  ]

(* --- Open-loop telco ingest --- *)

let open_params rate =
  { Telco_cdr.switches = 4; cdrs_per_switch = 200; cdr_bytes = 256; cdrs_per_txn = 2;
    fraud_readers = 0; arrival = Telco_cdr.Open_poisson rate }

let test_open_loop_sustains_offered_load () =
  (* PM mode at a modest rate: the system keeps up, so measured
     throughput ~ offered load and the tail stays tight. *)
  let r = in_system ~cfg:small_pm ~seed:0x0931L (fun s -> Telco_cdr.run s (open_params 2000.0)) in
  check_int "all CDRs in" 800 r.Telco_cdr.cdrs_inserted;
  check_bool
    (Printf.sprintf "throughput tracks offered load (%.0f)" r.Telco_cdr.cdrs_per_sec)
    true
    (r.Telco_cdr.cdrs_per_sec > 1400.0);
  check_bool "tail tight when keeping up" true
    (r.Telco_cdr.txn_response.Stat.p99 < 50e6)

let test_open_loop_overload_grows_tail () =
  (* Disk mode offered far beyond its capacity: arrivals queue, so the
     p99 blows up relative to an easy rate. *)
  let easy = in_system ~seed:0x0932L (fun s -> Telco_cdr.run s (open_params 100.0)) in
  let hot = in_system ~seed:0x0933L (fun s -> Telco_cdr.run s (open_params 5000.0)) in
  check_bool
    (Printf.sprintf "overload p99 >> easy p99 (%.1fms vs %.1fms)"
       (hot.Telco_cdr.txn_response.Stat.p99 /. 1e6)
       (easy.Telco_cdr.txn_response.Stat.p99 /. 1e6))
    true
    (hot.Telco_cdr.txn_response.Stat.p99 > easy.Telco_cdr.txn_response.Stat.p99 *. 3.0)

let open_loop_cases =
  [
    Alcotest.test_case "sustains offered load (PM)" `Quick test_open_loop_sustains_offered_load;
    Alcotest.test_case "overload grows the tail (disk)" `Quick test_open_loop_overload_grows_tail;
  ]

let suite = suite @ [ ("workloads.open_loop", open_loop_cases) ]
