(* Tests for the B-tree keyed-file index. *)

open Tp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_inv t =
  match Btree.check_invariants t with Ok () -> () | Error e -> Alcotest.fail ("invariant: " ^ e)

let test_insert_find () =
  let t = Btree.create ~degree:2 () in
  for i = 1 to 100 do
    check_bool "fresh insert" true (Btree.insert t ~key:(i * 3) (i * 10) = None)
  done;
  check_inv t;
  check_int "cardinal" 100 (Btree.cardinal t);
  for i = 1 to 100 do
    Alcotest.(check (option int)) "find" (Some (i * 10)) (Btree.find t ~key:(i * 3))
  done;
  Alcotest.(check (option int)) "missing" None (Btree.find t ~key:1)

let test_replace () =
  let t = Btree.create () in
  let _ = Btree.insert t ~key:5 "a" in
  Alcotest.(check (option string)) "replace returns prev" (Some "a") (Btree.insert t ~key:5 "b");
  Alcotest.(check (option string)) "new value" (Some "b") (Btree.find t ~key:5);
  check_int "no growth on replace" 1 (Btree.cardinal t)

let test_remove () =
  let t = Btree.create ~degree:2 () in
  for i = 1 to 64 do
    ignore (Btree.insert t ~key:i i)
  done;
  (* Remove odds; evens must survive. *)
  for i = 1 to 64 do
    if i mod 2 = 1 then
      Alcotest.(check (option int)) "removed" (Some i) (Btree.remove t ~key:i)
  done;
  check_inv t;
  check_int "half left" 32 (Btree.cardinal t);
  for i = 1 to 64 do
    Alcotest.(check (option int)) "survivors"
      (if i mod 2 = 0 then Some i else None)
      (Btree.find t ~key:i)
  done;
  Alcotest.(check (option int)) "remove missing" None (Btree.remove t ~key:999)

let test_remove_all_shrinks () =
  let t = Btree.create ~degree:2 () in
  for i = 1 to 200 do
    ignore (Btree.insert t ~key:i i)
  done;
  check_bool "tall tree" true (Btree.height t > 2);
  for i = 1 to 200 do
    ignore (Btree.remove t ~key:i)
  done;
  check_inv t;
  check_int "empty" 0 (Btree.cardinal t);
  check_int "height collapsed" 1 (Btree.height t)

let test_range () =
  let t = Btree.create ~degree:3 () in
  for i = 0 to 99 do
    ignore (Btree.insert t ~key:(i * 2) i)
  done;
  let r = Btree.range t ~lo:10 ~hi:20 in
  Alcotest.(check (list (pair int int))) "inclusive range"
    [ (10, 5); (12, 6); (14, 7); (16, 8); (18, 9); (20, 10) ]
    r;
  check_int "empty range" 0 (List.length (Btree.range t ~lo:1001 ~hi:2000));
  check_int "full range" 100 (List.length (Btree.range t ~lo:min_int ~hi:max_int))

let test_iter_sorted () =
  let t = Btree.create ~degree:2 () in
  let rng = Simkit.Rng.create 5L in
  for _ = 1 to 500 do
    ignore (Btree.insert t ~key:(Simkit.Rng.int rng 10_000) 0)
  done;
  let keys = ref [] in
  Btree.iter t (fun k _ -> keys := k :: !keys);
  let ks = List.rev !keys in
  check_int "iter covers all" (Btree.cardinal t) (List.length ks);
  check_bool "sorted ascending" true (List.sort compare ks = ks)

let test_min_max () =
  let t = Btree.create () in
  Alcotest.(check bool) "empty min" true (Btree.min_binding t = None);
  ignore (Btree.insert t ~key:42 "x");
  ignore (Btree.insert t ~key:7 "y");
  ignore (Btree.insert t ~key:99 "z");
  Alcotest.(check bool) "min" true (Btree.min_binding t = Some (7, "y"));
  Alcotest.(check bool) "max" true (Btree.max_binding t = Some (99, "z"))

(* Reference-model property: a random op sequence behaves like Map. *)
let prop_matches_map =
  let module IM = Map.Make (Int) in
  let gen_ops =
    QCheck.Gen.(list_size (int_range 1 400) (pair (int_bound 2) (int_bound 200)))
  in
  let arb = QCheck.make ~print:(fun l -> string_of_int (List.length l)) gen_ops in
  QCheck.Test.make ~name:"btree behaves like Map under random ops" ~count:60 arb (fun ops ->
      let t = Btree.create ~degree:2 () in
      let model = ref IM.empty in
      let ok = ref true in
      List.iter
        (fun (op, key) ->
          match op with
          | 0 ->
              let prev = Btree.insert t ~key (key * 7) in
              if prev <> IM.find_opt key !model then ok := false;
              model := IM.add key (key * 7) !model
          | 1 ->
              let prev = Btree.remove t ~key in
              if prev <> IM.find_opt key !model then ok := false;
              model := IM.remove key !model
          | _ -> if Btree.find t ~key <> IM.find_opt key !model then ok := false)
        ops;
      (match Btree.check_invariants t with Ok () -> () | Error _ -> ok := false);
      !ok
      && Btree.cardinal t = IM.cardinal !model
      && Btree.range t ~lo:0 ~hi:200 = IM.bindings !model)

let prop_range_equals_filter =
  QCheck.Test.make ~name:"range = sorted filter" ~count:60
    QCheck.(triple (list_of_size (QCheck.Gen.int_range 0 150) (int_bound 500)) (int_bound 500) (int_bound 500))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = Btree.create ~degree:3 () in
      List.iter (fun k -> ignore (Btree.insert t ~key:k k)) keys;
      let expect =
        List.sort_uniq compare keys
        |> List.filter (fun k -> k >= lo && k <= hi)
        |> List.map (fun k -> (k, k))
      in
      Btree.range t ~lo ~hi = expect)

let suite =
  [
    ( "tp.btree",
      [
        Alcotest.test_case "insert and find" `Quick test_insert_find;
        Alcotest.test_case "replace in place" `Quick test_replace;
        Alcotest.test_case "remove with rebalancing" `Quick test_remove;
        Alcotest.test_case "emptying collapses height" `Quick test_remove_all_shrinks;
        Alcotest.test_case "inclusive range scan" `Quick test_range;
        Alcotest.test_case "iter is sorted" `Quick test_iter_sorted;
        Alcotest.test_case "min/max bindings" `Quick test_min_max;
        QCheck_alcotest.to_alcotest prop_matches_map;
        QCheck_alcotest.to_alcotest prop_range_equals_filter;
      ] );
  ]
