(* Corner-case tests across the substrate: argument validation, failure
   exhaustion paths, counters, and the PM trail ring. *)

open Simkit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Sim --- *)

let test_sim_stop () =
  let sim = Sim.create () in
  let ran = ref 0 in
  Sim.at sim ~after:(Time.us 1) (fun () ->
      incr ran;
      Sim.stop sim);
  Sim.at sim ~after:(Time.us 2) (fun () -> incr ran);
  Sim.run sim;
  check_int "stopped after first event" 1 !ran;
  (* A later run resumes the queue. *)
  Sim.run sim;
  check_int "resumed" 2 !ran

let test_sim_rejects_past_and_negative () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative after" (Invalid_argument "Sim.at: negative span") (fun () ->
      Sim.at sim ~after:(-1) (fun () -> ()));
  Sim.at sim ~after:(Time.ms 1) (fun () ->
      Alcotest.check_raises "past time" (Invalid_argument "Sim: scheduling in the past")
        (fun () -> Sim.at_time sim ~time:0 (fun () -> ())));
  Sim.run sim

let test_sim_live_process_accounting () =
  let sim = Sim.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  let pid = Sim.spawn sim ~name:"p" (fun () -> ignore (Mailbox.recv mb)) in
  check_int "one live" 1 (Sim.live_processes sim);
  Sim.run sim;
  check_int "still live while blocked" 1 (Sim.live_processes sim);
  Sim.kill sim pid;
  check_int "none after kill" 0 (Sim.live_processes sim)

let test_double_kill_is_noop () =
  let sim = Sim.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  let pid = Sim.spawn sim ~name:"p" (fun () -> ignore (Mailbox.recv mb)) in
  Sim.run sim;
  Sim.kill sim pid;
  Sim.kill sim pid;
  check_bool "dead" false (Sim.is_alive sim pid)

let test_on_exit_after_death_fires_immediately () =
  let sim = Sim.create () in
  let pid = Sim.spawn sim ~name:"quick" (fun () -> ()) in
  Sim.run sim;
  let fired = ref false in
  Sim.on_exit sim pid (fun _ -> fired := true);
  check_bool "late hook fires" true !fired

(* --- Cpu restart --- *)

let test_cpu_restart () =
  let sim = Sim.create () in
  let node = Nsk.Node.create sim ~cpus:2 () in
  let cpu = Nsk.Node.cpu node 1 in
  Nsk.Cpu.fail cpu;
  check_bool "down" false (Nsk.Cpu.is_up cpu);
  Nsk.Cpu.restart cpu;
  check_bool "up again" true (Nsk.Cpu.is_up cpu);
  (* New processes may be spawned after restart. *)
  let ran = ref false in
  let (_ : Sim.pid) = Nsk.Cpu.spawn cpu ~name:"reborn" (fun () -> ran := true) in
  Sim.run sim;
  check_bool "spawn works" true !ran

(* --- Fabric failure exhaustion --- *)

let test_crc_exhaustion_fails () =
  let sim = Sim.create ~seed:3L () in
  let config = { Servernet.Fabric.default_config with crc_error_rate = 0.97; max_retries = 1 } in
  let fabric = Servernet.Fabric.create sim ~config () in
  let a = Servernet.Fabric.attach fabric ~name:"a" ~store:(Servernet.Fabric.byte_store 64) in
  let b = Servernet.Fabric.attach fabric ~name:"b" ~store:(Servernet.Fabric.byte_store 65536) in
  (match
     Servernet.Avt.map (Servernet.Fabric.avt b) ~net_base:0 ~length:65536 ~phys_base:0
       ~access:(Servernet.Avt.read_write Servernet.Avt.Any_initiator)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let saw_failure = ref false in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"w" (fun () ->
        (* With a 97% corruption rate some 16-packet transfer exhausts its
           retries quickly. *)
        for _ = 1 to 20 do
          match
            Servernet.Fabric.rdma_write fabric ~src:a ~dst:(Servernet.Fabric.id b) ~addr:0
              ~data:(Bytes.create 8192)
          with
          | Error Servernet.Fabric.Crc_failure -> saw_failure := true
          | Ok () | Error _ -> ()
        done)
  in
  Sim.run sim;
  check_bool "retries exhausted at least once" true !saw_failure;
  check_bool "failures counted" true ((Servernet.Fabric.stats fabric).Servernet.Fabric.failures > 0)

let test_unknown_endpoint_unreachable () =
  let sim = Sim.create () in
  let fabric = Servernet.Fabric.create sim () in
  let a = Servernet.Fabric.attach fabric ~name:"a" ~store:(Servernet.Fabric.byte_store 64) in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"w" (fun () ->
        match Servernet.Fabric.rdma_read fabric ~src:a ~dst:999 ~addr:0 ~len:4 with
        | Error Servernet.Fabric.Unreachable -> ()
        | _ -> Alcotest.fail "expected Unreachable")
  in
  Sim.run sim

(* --- Stat counters / histogram / trace --- *)

let test_stat_counter () =
  let c = Stat.Counter.create ~name:"ops" () in
  Stat.Counter.incr c;
  Stat.Counter.add c 5;
  check_int "value" 6 (Stat.Counter.get c);
  Alcotest.(check string) "name" "ops" (Stat.Counter.name c)

let test_stat_histogram_buckets () =
  let h = Stat.Histogram.create () in
  Stat.Histogram.add h 1;
  Stat.Histogram.add h 1000;
  Stat.Histogram.add h 1500;
  Stat.Histogram.add h 0;
  let buckets = Stat.Histogram.buckets h in
  check_int "total samples" 4 (List.fold_left (fun a (_, c) -> a + c) 0 buckets);
  check_bool "bounds ascend" true
    (let bounds = List.map fst buckets in
     List.sort compare bounds = bounds)

let test_trace_dump () =
  let tr = Trace.create ~capacity:8 () in
  Trace.enable tr;
  Trace.event tr ~time:(Time.us 5) ~tag:"io" "write done";
  Trace.disable tr;
  Trace.event tr ~time:(Time.us 6) ~tag:"io" "dropped";
  let text = Format.asprintf "%a" Trace.dump tr in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "contains first event" true (contains text "write done");
  check_bool "disabled events dropped" false (contains text "dropped")

(* --- Log backend: PM ring wrap --- *)

let test_pm_ring_wraps_without_error () =
  let sim = Sim.create ~seed:0x21BL () in
  let node = Nsk.Node.create sim ~cpus:3 () in
  let fabric = Nsk.Node.fabric node in
  let done_ = ref false in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let a = Pm.Npmu.create sim fabric ~name:"a" ~capacity:(1 lsl 20) in
        let b = Pm.Npmu.create sim fabric ~name:"b" ~capacity:(1 lsl 20) in
        let da = Pm.Pmm.device_of_npmu a in
        let db = Pm.Pmm.device_of_npmu b in
        Pm.Pmm.format Pm.Pmm.default_config da db;
        let pmm =
          Pm.Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Nsk.Node.cpu node 0)
            ~backup_cpu:(Nsk.Node.cpu node 1) ~primary_dev:da ~mirror_dev:db ()
        in
        let client =
          Pm.Pm_client.attach ~cpu:(Nsk.Node.cpu node 2) ~fabric ~pmm:(Pm.Pmm.server pmm) ()
        in
        (* An 8 KiB ring fed 100 x ~300 B records wraps many times. *)
        let handle =
          Test_util.ok_or_fail ~msg:"region"
            (Pm.Pm_client.create_region client ~name:"ring" ~size:8192)
        in
        let backend = Tp.Log_backend.pm client handle in
        for i = 1 to 100 do
          match
            Tp.Log_backend.write_records backend
              [ (i, Tp.Audit.Update
                   { txn = i; file = 0; partition = 0; key = i; payload_len = 256;
                     payload_crc = i; before_len = 0 }) ]
          with
          | Ok () -> ()
          | Error e -> Alcotest.fail e
        done;
        (* Recovery still parses a consistent prefix of the latest lap. *)
        (match Tp.Log_backend.recovery_read backend with
        | Ok records -> check_bool "some records recovered" true (List.length records > 0)
        | Error e -> Alcotest.fail e);
        done_ := true)
  in
  Sim.run sim;
  check_bool "completed" true !done_

let suite =
  [
    ( "edges.sim",
      [
        Alcotest.test_case "stop pauses the run" `Quick test_sim_stop;
        Alcotest.test_case "negative/past scheduling rejected" `Quick
          test_sim_rejects_past_and_negative;
        Alcotest.test_case "live process accounting" `Quick test_sim_live_process_accounting;
        Alcotest.test_case "double kill is a no-op" `Quick test_double_kill_is_noop;
        Alcotest.test_case "late exit hooks fire immediately" `Quick
          test_on_exit_after_death_fires_immediately;
      ] );
    ( "edges.cpu",
      [ Alcotest.test_case "restart brings a CPU back" `Quick test_cpu_restart ] );
    ( "edges.fabric",
      [
        Alcotest.test_case "CRC retry exhaustion" `Quick test_crc_exhaustion_fails;
        Alcotest.test_case "unknown endpoint unreachable" `Quick test_unknown_endpoint_unreachable;
      ] );
    ( "edges.stat",
      [
        Alcotest.test_case "counters" `Quick test_stat_counter;
        Alcotest.test_case "histogram buckets" `Quick test_stat_histogram_buckets;
        Alcotest.test_case "trace dump" `Quick test_trace_dump;
      ] );
    ( "edges.pm_ring",
      [ Alcotest.test_case "trail ring wraps and re-parses" `Quick test_pm_ring_wraps_without_error ] );
  ]
