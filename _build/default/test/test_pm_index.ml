(* Tests for the copy-on-write persistent B-tree index. *)

open Simkit
open Nsk
open Pm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type rig = { sim : Sim.t; node : Node.t; npmu_a : Npmu.t; npmu_b : Npmu.t; pmm : Pmm.t }

let make_rig ?(capacity = 4 * 1024 * 1024) () =
  let sim = Sim.create ~seed:0x1D8L () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in
  let npmu_a = Npmu.create sim fabric ~name:"ix-a" ~capacity in
  let npmu_b = Npmu.create sim fabric ~name:"ix-b" ~capacity in
  let da = Pmm.device_of_npmu npmu_a in
  let db = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config da db;
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0) ~backup_cpu:(Node.cpu node 1)
      ~primary_dev:da ~mirror_dev:db ()
  in
  { sim; node; npmu_a; npmu_b; pmm }

let client rig cpu_idx =
  Pm_client.attach ~cpu:(Node.cpu rig.node cpu_idx) ~fabric:(Node.fabric rig.node)
    ~pmm:(Pmm.server rig.pmm) ()

let with_index ?(size = 2 * 1024 * 1024) ?degree rig f =
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      let h = Test_util.ok_or_fail ~msg:"region" (Pm_client.create_region c ~name:"ix" ~size) in
      let ix = Test_util.ok_or_fail ~msg:"create" (Pm_index.create c h ?degree ()) in
      f c h ix)

let expect_find ix key =
  match Pm_index.find ix ~key with
  | Ok v -> v
  | Error e -> Alcotest.failf "find %d: %s" key (Pm_types.error_to_string e)

let test_insert_find () =
  let rig = make_rig () in
  with_index rig ~degree:3 (fun _ _ ix ->
      for i = 1 to 300 do
        Test_util.check_result_ok "insert" (Pm_index.insert ix ~key:(i * 7) ~value:(i * 100))
      done;
      check_int "count" 300 (Pm_index.cardinal ix);
      check_bool "multi-level" true (Pm_index.height ix >= 2);
      for i = 1 to 300 do
        Alcotest.(check (option int)) "find" (Some (i * 100)) (expect_find ix (i * 7))
      done;
      Alcotest.(check (option int)) "absent" None (expect_find ix 5))

let test_replace () =
  let rig = make_rig () in
  with_index rig (fun _ _ ix ->
      Test_util.check_result_ok "i1" (Pm_index.insert ix ~key:9 ~value:1);
      Test_util.check_result_ok "i2" (Pm_index.insert ix ~key:9 ~value:2);
      check_int "count stays 1" 1 (Pm_index.cardinal ix);
      Alcotest.(check (option int)) "latest value" (Some 2) (expect_find ix 9))

let test_range () =
  let rig = make_rig () in
  with_index rig ~degree:2 (fun _ _ ix ->
      for i = 0 to 50 do
        Test_util.check_result_ok "insert" (Pm_index.insert ix ~key:(i * 2) ~value:i)
      done;
      match Pm_index.range ix ~lo:10 ~hi:19 with
      | Ok rows ->
          Alcotest.(check (list (pair int int))) "window"
            [ (10, 5); (12, 6); (14, 7); (16, 8); (18, 9) ]
            rows
      | Error e -> Alcotest.fail (Pm_types.error_to_string e))

let test_cross_client_reader () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let writer = client rig 2 in
      let h =
        Test_util.ok_or_fail ~msg:"region"
          (Pm_client.create_region writer ~name:"shared-ix" ~size:(1 lsl 20))
      in
      let ix = Test_util.ok_or_fail ~msg:"create" (Pm_index.create writer h ()) in
      Test_util.check_result_ok "insert" (Pm_index.insert ix ~key:123 ~value:456);
      (* A reader on another CPU opens the same region. *)
      let reader = client rig 3 in
      let h2 = Test_util.ok_or_fail ~msg:"open" (Pm_client.open_region reader ~name:"shared-ix") in
      let rix = Test_util.ok_or_fail ~msg:"open ix" (Pm_index.open_existing reader h2) in
      Alcotest.(check (option int)) "reader sees entry" (Some 456) (expect_find rix 123);
      (* Writer adds more; reader refreshes to observe. *)
      Test_util.check_result_ok "insert2" (Pm_index.insert ix ~key:124 ~value:789);
      Alcotest.(check (option int)) "stale before refresh" None (expect_find rix 124);
      Test_util.check_result_ok "refresh" (Pm_index.refresh rix);
      Alcotest.(check (option int)) "visible after refresh" (Some 789) (expect_find rix 124))

let test_survives_power_cycle () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      let h = Test_util.ok_or_fail ~msg:"region" (Pm_client.create_region c ~name:"dur-ix" ~size:(1 lsl 20)) in
      let ix = Test_util.ok_or_fail ~msg:"create" (Pm_index.create c h ~degree:2 ()) in
      for i = 1 to 100 do
        Test_util.check_result_ok "insert" (Pm_index.insert ix ~key:i ~value:(i * i))
      done;
      Npmu.power_loss rig.npmu_a;
      Npmu.power_loss rig.npmu_b;
      Npmu.power_restore rig.npmu_a;
      Npmu.power_restore rig.npmu_b;
      let ix2 = Test_util.ok_or_fail ~msg:"reopen" (Pm_index.open_existing c h) in
      check_int "count survives" 100 (Pm_index.cardinal ix2);
      for i = 1 to 100 do
        Alcotest.(check (option int)) "entry survives" (Some (i * i)) (expect_find ix2 i)
      done)

let test_torn_update_is_invisible () =
  (* Orphan nodes written past the committed frontier (a crash mid-CoW,
     before the header flip) must not affect the tree. *)
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      let h = Test_util.ok_or_fail ~msg:"region" (Pm_client.create_region c ~name:"torn" ~size:(1 lsl 20)) in
      let ix = Test_util.ok_or_fail ~msg:"create" (Pm_index.create c h ~degree:2 ()) in
      for i = 1 to 20 do
        Test_util.check_result_ok "insert" (Pm_index.insert ix ~key:i ~value:i)
      done;
      (* Simulate the crashed writer's half-finished path: garbage in the
         unallocated area, header untouched. *)
      let junk = Bytes.make 2048 '\xAB' in
      Test_util.check_result_ok "junk write"
        (Pm_client.write c h ~off:(Pm_index.bytes_allocated ix) ~data:junk);
      let ix2 = Test_util.ok_or_fail ~msg:"reopen" (Pm_index.open_existing c h) in
      check_int "count unchanged" 20 (Pm_index.cardinal ix2);
      for i = 1 to 20 do
        Alcotest.(check (option int)) "old tree intact" (Some i) (expect_find ix2 i)
      done)

let test_out_of_space () =
  let rig = make_rig () in
  Test_util.run_in rig.sim (fun () ->
      let c = client rig 2 in
      (* Room for only a handful of 1 KiB CoW slots. *)
      let h = Test_util.ok_or_fail ~msg:"region" (Pm_client.create_region c ~name:"tiny" ~size:8192) in
      let ix = Test_util.ok_or_fail ~msg:"create" (Pm_index.create c h ()) in
      let rec fill i =
        if i > 100 then Alcotest.fail "never filled up"
        else
          match Pm_index.insert ix ~key:i ~value:i with
          | Ok () -> fill (i + 1)
          | Error Pm_types.Out_of_space -> ()
          | Error e -> Alcotest.fail (Pm_types.error_to_string e)
      in
      fill 1)

let test_insert_cost_is_microseconds () =
  let rig = make_rig () in
  with_index rig (fun _ _ ix ->
      for i = 1 to 50 do
        Test_util.check_result_ok "warm" (Pm_index.insert ix ~key:i ~value:i)
      done;
      let t0 = Sim.now rig.sim in
      Test_util.check_result_ok "probe" (Pm_index.insert ix ~key:1000 ~value:1);
      let dt = Sim.now rig.sim - t0 in
      check_bool
        (Printf.sprintf "durable index update in sub-ms (%s)" (Time.to_string dt))
        true
        (dt > Time.us 20 && dt < Time.ms 1))

let prop_matches_map =
  let module IM = Map.Make (Int) in
  QCheck.Test.make ~name:"pm_index behaves like Map under random inserts" ~count:15
    (QCheck.make
       ~print:(fun l -> string_of_int (List.length l))
       QCheck.Gen.(list_size (int_range 1 120) (int_bound 500)))
    (fun keys ->
      let rig = make_rig () in
      Test_util.run_in rig.sim (fun () ->
          let c = client rig 2 in
          match Pm_client.create_region c ~name:"p" ~size:(2 * 1024 * 1024) with
          | Error _ -> false
          | Ok h -> (
              match Pm_index.create c h ~degree:2 () with
              | Error _ -> false
              | Ok ix ->
                  let model = ref IM.empty in
                  let ok = ref true in
                  List.iteri
                    (fun i k ->
                      (match Pm_index.insert ix ~key:k ~value:i with
                      | Ok () -> ()
                      | Error _ -> ok := false);
                      model := IM.add k i !model)
                    keys;
                  (match Pm_index.range ix ~lo:min_int ~hi:max_int with
                  | Ok rows -> if rows <> IM.bindings !model then ok := false
                  | Error _ -> ok := false);
                  !ok && Pm_index.cardinal ix = IM.cardinal !model)))

let suite =
  [
    ( "pm.index",
      [
        Alcotest.test_case "insert and find through RDMA" `Quick test_insert_find;
        Alcotest.test_case "replace keeps count" `Quick test_replace;
        Alcotest.test_case "range scan" `Quick test_range;
        Alcotest.test_case "cross-client reader with refresh" `Quick test_cross_client_reader;
        Alcotest.test_case "survives power cycle" `Quick test_survives_power_cycle;
        Alcotest.test_case "torn CoW update invisible" `Quick test_torn_update_is_invisible;
        Alcotest.test_case "out of space reported" `Quick test_out_of_space;
        Alcotest.test_case "durable update in microseconds" `Quick test_insert_cost_is_microseconds;
        QCheck_alcotest.to_alcotest prop_matches_map;
      ] );
  ]
