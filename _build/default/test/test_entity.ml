(* Tests for container-managed entity persistence. *)

open Simkit
open Tp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Entities need payload-storing writers. *)
let entity_config =
  {
    System.default_config with
    System.dp2 = { Dp2.default_config with Dp2.store_payloads = true };
  }

let in_entity_system ?(cfg = entity_config) f =
  let sim = Sim.create ~seed:0xE47L () in
  let out = ref None in
  let (_ : Sim.pid) =
    Sim.spawn sim ~name:"main" (fun () ->
        let system = System.build sim cfg in
        let container = Entity.create (System.session system ~cpu:2) in
        out := Some (f system container))
  in
  Sim.run sim;
  match !out with Some v -> v | None -> Alcotest.fail "entity run incomplete"

let customer =
  Entity.schema ~name:"customer" ~file:0
    ~fields:[ ("name", Entity.F_string); ("balance", Entity.F_int); ("tier", Entity.F_string) ]

let alice = [ ("name", Entity.V_string "Alice"); ("balance", Entity.V_int 1200); ("tier", Entity.V_string "gold") ]

let expect ~msg = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" msg (Entity.error_to_string e)

let test_persist_find () =
  in_entity_system (fun _ c ->
      expect ~msg:"persist"
        (Entity.with_txn c (fun txn -> Entity.persist c txn customer ~id:1 alice));
      match expect ~msg:"find" (Entity.find c customer ~id:1) with
      | Some e -> check_bool "roundtrip" true (e = alice)
      | None -> Alcotest.fail "entity missing")

let test_overwrite () =
  in_entity_system (fun _ c ->
      expect ~msg:"v1" (Entity.with_txn c (fun txn -> Entity.persist c txn customer ~id:7 alice));
      let updated = [ ("name", Entity.V_string "Alice"); ("balance", Entity.V_int 900); ("tier", Entity.V_string "gold") ] in
      expect ~msg:"v2" (Entity.with_txn c (fun txn -> Entity.persist c txn customer ~id:7 updated));
      match expect ~msg:"find" (Entity.find c customer ~id:7) with
      | Some e -> check_bool "latest version" true (e = updated)
      | None -> Alcotest.fail "missing")

let test_abort_rolls_back () =
  in_entity_system (fun system c ->
      expect ~msg:"v1" (Entity.with_txn c (fun txn -> Entity.persist c txn customer ~id:3 alice));
      (* A failing unit of work must leave the committed version. *)
      let bogus = [ ("name", Entity.V_string "Mallory") ] in
      (match
         Entity.with_txn c (fun txn ->
             match Entity.persist c txn customer ~id:3 bogus with
             | Error e -> Error e
             | Ok () -> Ok ())
       with
      | Error (Entity.E_type_mismatch _) -> ()
      | _ -> Alcotest.fail "schema violation not caught");
      Sim.sleep (Time.ms 100);
      ignore system;
      match expect ~msg:"find" (Entity.find c customer ~id:3) with
      | Some e -> check_bool "committed version intact" true (e = alice)
      | None -> Alcotest.fail "entity lost after aborted txn")

let test_type_checking () =
  in_entity_system (fun _ c ->
      let wrong_type = [ ("name", Entity.V_int 5); ("balance", Entity.V_int 1); ("tier", Entity.V_string "x") ] in
      (match Entity.with_txn c (fun txn -> Entity.persist c txn customer ~id:9 wrong_type) with
      | Error (Entity.E_type_mismatch "name") -> ()
      | _ -> Alcotest.fail "type error not reported");
      let wrong_count = [ ("name", Entity.V_string "Bob") ] in
      match Entity.with_txn c (fun txn -> Entity.persist c txn customer ~id:9 wrong_count) with
      | Error (Entity.E_type_mismatch _) -> ()
      | _ -> Alcotest.fail "arity error not reported")

let test_exists_and_missing () =
  in_entity_system (fun _ c ->
      check_bool "missing" false (expect ~msg:"exists" (Entity.exists c customer ~id:42));
      expect ~msg:"persist" (Entity.with_txn c (fun txn -> Entity.persist c txn customer ~id:42 alice));
      check_bool "present" true (expect ~msg:"exists2" (Entity.exists c customer ~id:42));
      check_bool "find missing is None" true (expect ~msg:"find" (Entity.find c customer ~id:43) = None))

let test_find_range () =
  in_entity_system (fun _ c ->
      expect ~msg:"batch"
        (Entity.with_txn c (fun txn ->
             let rec go i =
               if i > 20 then Ok ()
               else
                 let e =
                   [ ("name", Entity.V_string (Printf.sprintf "c%d" i));
                     ("balance", Entity.V_int (i * 10));
                     ("tier", Entity.V_string "std") ]
                 in
                 match Entity.persist c txn customer ~id:i e with
                 | Ok () -> go (i + 1)
                 | Error e -> Error e
             in
             go 1));
      let found = expect ~msg:"range" (Entity.find_range c customer ~lo:5 ~hi:8) in
      check_int "four entities" 4 (List.length found);
      match List.assoc_opt "balance" (List.assq 5 (List.map (fun (i, e) -> (i, e)) found)) with
      | Some (Entity.V_int 50) -> ()
      | _ -> Alcotest.fail "wrong entity contents"
      )

let test_payloads_disabled_fails_cleanly () =
  in_entity_system ~cfg:System.default_config (fun _ c ->
      expect ~msg:"persist" (Entity.with_txn c (fun txn -> Entity.persist c txn customer ~id:1 alice));
      (* Without store_payloads the row exists but has no contents. *)
      check_bool "row exists" true (expect ~msg:"exists" (Entity.exists c customer ~id:1));
      check_bool "find yields nothing" true (expect ~msg:"find" (Entity.find c customer ~id:1) = None))

let suite =
  [
    ( "tp.entity",
      [
        Alcotest.test_case "persist and find" `Quick test_persist_find;
        Alcotest.test_case "overwrite keeps latest" `Quick test_overwrite;
        Alcotest.test_case "failed unit of work aborts" `Quick test_abort_rolls_back;
        Alcotest.test_case "schema type checking" `Quick test_type_checking;
        Alcotest.test_case "exists and missing ids" `Quick test_exists_and_missing;
        Alcotest.test_case "find_range over the index" `Quick test_find_range;
        Alcotest.test_case "content-free writers degrade cleanly" `Quick
          test_payloads_disabled_fails_cleanly;
      ] );
  ]
