(* Tests for the persistent-memory core: devices, manager, client. *)

open Simkit
open Nsk
open Pm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- Crc32 --- *)

let test_crc32_vector () =
  (* Standard IEEE check value. *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Crc32.string "123456789")

let test_crc32_detects_flip () =
  let b = Bytes.of_string "persistent memory" in
  let c1 = Crc32.bytes b in
  Bytes.set b 3 'X';
  check_bool "differs" true (c1 <> Crc32.bytes b)

(* --- Codec --- *)

let test_codec_roundtrip () =
  let enc = Codec.Enc.create () in
  Codec.Enc.u8 enc 0xAB;
  Codec.Enc.u16 enc 0xBEEF;
  Codec.Enc.u32 enc 0xDEADBEEF;
  Codec.Enc.u64 enc 0x1122334455667788;
  Codec.Enc.str enc "audit";
  Codec.Enc.blob enc (Bytes.of_string "payload");
  let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
  check_int "u8" 0xAB (Codec.Dec.u8 dec);
  check_int "u16" 0xBEEF (Codec.Dec.u16 dec);
  check_int "u32" 0xDEADBEEF (Codec.Dec.u32 dec);
  check_int "u64" 0x1122334455667788 (Codec.Dec.u64 dec);
  check_str "str" "audit" (Codec.Dec.str dec);
  check_str "blob" "payload" (Bytes.to_string (Codec.Dec.blob dec));
  check_int "drained" 0 (Codec.Dec.remaining dec)

let test_codec_truncated () =
  let enc = Codec.Enc.create () in
  Codec.Enc.u16 enc 5;
  let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
  Alcotest.check_raises "truncated" Codec.Dec.Truncated (fun () -> ignore (Codec.Dec.u32 dec))

let prop_codec_ints =
  QCheck.Test.make ~name:"codec u64 roundtrip" ~count:200
    QCheck.(int_bound max_int)
    (fun v ->
      let enc = Codec.Enc.create () in
      Codec.Enc.u64 enc v;
      let dec = Codec.Dec.of_bytes (Codec.Enc.to_bytes enc) in
      Codec.Dec.u64 dec = v)

(* --- Test topology --- *)

type topo = {
  sim : Sim.t;
  node : Node.t;
  npmu_a : Npmu.t;
  npmu_b : Npmu.t;
  pmm : Pmm.t;
}

let make_topo ?(capacity = 1 lsl 20) () =
  let sim = Sim.create ~seed:0x9L () in
  let node = Node.create sim ~cpus:4 () in
  let fabric = Node.fabric node in
  let npmu_a = Npmu.create sim fabric ~name:"npmu-a" ~capacity in
  let npmu_b = Npmu.create sim fabric ~name:"npmu-b" ~capacity in
  let dev_a = Pmm.device_of_npmu npmu_a in
  let dev_b = Pmm.device_of_npmu npmu_b in
  Pmm.format Pmm.default_config dev_a dev_b;
  let pmm =
    Pmm.start ~fabric ~name:"$PMM" ~primary_cpu:(Node.cpu node 0) ~backup_cpu:(Node.cpu node 1)
      ~primary_dev:dev_a ~mirror_dev:dev_b ()
  in
  { sim; node; npmu_a; npmu_b; pmm }

let client topo cpu_idx =
  Pm_client.attach ~cpu:(Node.cpu topo.node cpu_idx) ~fabric:(Node.fabric topo.node)
    ~pmm:(Pmm.server topo.pmm) ()

(* --- Npmu / Pmp --- *)

let test_npmu_survives_power_loss () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:4096) in
      Test_util.check_result_ok "write" (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "durable!"));
      Npmu.power_loss topo.npmu_a;
      Npmu.power_loss topo.npmu_b;
      check_bool "off fabric" false (Npmu.is_powered topo.npmu_a);
      Npmu.power_restore topo.npmu_a;
      Npmu.power_restore topo.npmu_b;
      match Pm_client.read c h ~off:0 ~len:8 with
      | Ok data -> check_str "contents survive" "durable!" (Bytes.to_string data)
      | Error _ -> Alcotest.fail "read after power cycle failed")

let test_pmp_loses_contents () =
  let sim = Sim.create () in
  let node = Node.create sim ~cpus:2 () in
  let fabric = Node.fabric node in
  let pmp = Pmp.create (Node.cpu node 1) fabric ~name:"pmp" ~capacity:4096 in
  Test_util.check_result_ok "map"
    (Servernet.Avt.map (Pmp.avt pmp) ~net_base:0 ~length:4096 ~phys_base:0
       ~access:(Servernet.Avt.read_write Servernet.Avt.Any_initiator));
  Test_util.run_in sim (fun () ->
      let src = Cpu.endpoint (Node.cpu node 0) in
      Test_util.check_result_ok "write"
        (Servernet.Fabric.rdma_write fabric ~src ~dst:(Pmp.id pmp) ~addr:0
           ~data:(Bytes.of_string "volatile"));
      check_str "stored" "volatile" (Bytes.to_string (Pmp.peek pmp ~off:0 ~len:8));
      Pmp.power_loss pmp;
      check_bool "dead" false (Pmp.is_alive pmp);
      check_str "contents gone" (String.make 8 '\000') (Bytes.to_string (Pmp.peek pmp ~off:0 ~len:8)))

let test_pmp_dies_with_cpu () =
  let sim = Sim.create () in
  let node = Node.create sim ~cpus:2 () in
  let pmp = Pmp.create (Node.cpu node 1) (Node.fabric node) ~name:"pmp" ~capacity:1024 in
  Sim.at sim ~after:(Time.ms 1) (fun () -> Cpu.fail (Node.cpu node 1));
  Sim.run sim;
  check_bool "pmp died with its cpu" false (Pmp.is_alive pmp)

(* --- Pmm + Pm_client happy paths --- *)

let test_create_write_read () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"log" ~size:65536)
      in
      let info = Pm_client.info h in
      check_int "size" 65536 info.Pm_types.length;
      check_bool "data area starts past metadata" true
        (info.Pm_types.net_base >= Pmm.default_config.Pmm.meta_reserve);
      let data = Bytes.of_string "transaction-audit-record" in
      Test_util.check_result_ok "write" (Pm_client.write c h ~off:128 ~data);
      (match Pm_client.read c h ~off:128 ~len:(Bytes.length data) with
      | Ok back -> check_str "roundtrip" (Bytes.to_string data) (Bytes.to_string back)
      | Error _ -> Alcotest.fail "read failed");
      (* Both mirrors hold the data at the same physical offset. *)
      let phys = info.Pm_types.net_base + 128 in
      check_str "on npmu-a" (Bytes.to_string data)
        (Bytes.to_string (Npmu.peek topo.npmu_a ~off:phys ~len:(Bytes.length data)));
      check_str "on npmu-b" (Bytes.to_string data)
        (Bytes.to_string (Npmu.peek topo.npmu_b ~off:phys ~len:(Bytes.length data))))

let test_write_latency_is_tens_of_us () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"r" ~size:8192) in
      let t0 = Sim.now topo.sim in
      Test_util.check_result_ok "write" (Pm_client.write c h ~off:0 ~data:(Bytes.create 4096));
      let dt = Sim.now topo.sim - t0 in
      (* Mirrored 4K write: 2 RDMA ops, each tens of us — far below 1 ms. *)
      check_bool "fast persistence" true (dt >= Time.us 20 && dt < Time.us 200))

let test_create_duplicate_rejected () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let _ = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"dup" ~size:4096) in
      match Pm_client.create_region c ~name:"dup" ~size:4096 with
      | Error Pm_types.Region_exists -> ()
      | _ -> Alcotest.fail "duplicate create accepted")

let test_out_of_space () =
  let topo = make_topo ~capacity:(256 * 1024) () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      (* Capacity minus 64K metadata reserve leaves 192K. *)
      let _ = Test_util.ok_or_fail ~msg:"r1" (Pm_client.create_region c ~name:"r1" ~size:(128 * 1024)) in
      match Pm_client.create_region c ~name:"r2" ~size:(128 * 1024) with
      | Error Pm_types.Out_of_space -> ()
      | _ -> Alcotest.fail "expected Out_of_space")

let test_delete_and_reuse_space () =
  let topo = make_topo ~capacity:(256 * 1024) () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"r1" (Pm_client.create_region c ~name:"r1" ~size:(128 * 1024)) in
      Test_util.check_result_ok "close" (Pm_client.close_region c h);
      Test_util.check_result_ok "delete" (Pm_client.delete_region c ~name:"r1");
      let _ = Test_util.ok_or_fail ~msg:"reuse" (Pm_client.create_region c ~name:"r2" ~size:(128 * 1024)) in
      ())

let test_delete_busy_region () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let _ = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"busy" ~size:4096) in
      match Pm_client.delete_region c ~name:"busy" with
      | Error Pm_types.Region_busy -> ()
      | _ -> Alcotest.fail "busy delete accepted")

let test_open_unknown_region () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      match Pm_client.open_region c ~name:"ghost" with
      | Error Pm_types.No_such_region -> ()
      | _ -> Alcotest.fail "expected No_such_region")

let test_access_requires_open () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let creator = client topo 2 in
      let stranger = client topo 3 in
      let h =
        Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region creator ~name:"priv" ~size:4096)
      in
      Test_util.check_result_ok "creator write"
        (Pm_client.write creator h ~off:0 ~data:(Bytes.of_string "mine"));
      (* The stranger knows the address but has no AVT rights until Open. *)
      let stolen = { (Pm_client.info h) with Pm_types.region_name = "priv" } in
      ignore stolen;
      (match Pm_client.write stranger h ~off:0 ~data:(Bytes.of_string "theirs") with
      | Error Pm_types.Permission_denied -> ()
      | Ok () -> Alcotest.fail "unauthorized write accepted"
      | Error e -> Alcotest.failf "unexpected error: %s" (Pm_types.error_to_string e));
      let h2 = Test_util.ok_or_fail ~msg:"open" (Pm_client.open_region stranger ~name:"priv") in
      Test_util.check_result_ok "after open" (Pm_client.write stranger h2 ~off:0 ~data:(Bytes.of_string "ours")))

let test_bounds_checked () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"b" ~size:1024) in
      (match Pm_client.write c h ~off:1020 ~data:(Bytes.create 8) with
      | Error (Pm_types.Bad_request _) -> ()
      | _ -> Alcotest.fail "oob write accepted");
      match Pm_client.read c h ~off:(-4) ~len:8 with
      | Error (Pm_types.Bad_request _) -> ()
      | _ -> Alcotest.fail "negative offset accepted")

let test_list_regions () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let _ = Test_util.ok_or_fail ~msg:"a" (Pm_client.create_region c ~name:"a" ~size:4096) in
      let _ = Test_util.ok_or_fail ~msg:"b" (Pm_client.create_region c ~name:"b" ~size:4096) in
      match Pm_client.list_regions c with
      | Ok rs ->
          Alcotest.(check (list string))
            "names" [ "a"; "b" ]
            (List.sort compare (List.map (fun r -> r.Pm_types.region_name) rs))
      | Error _ -> Alcotest.fail "list failed")

(* --- Mirroring and degradation --- *)

let test_degraded_write_survives_one_npmu () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"m" ~size:4096) in
      Npmu.power_loss topo.npmu_a;
      Test_util.check_result_ok "degraded write ok"
        (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "half"));
      check_int "degraded count" 1 (Pm_client.degraded_writes c);
      (* Reads fail over to the survivor. *)
      (match Pm_client.read c h ~off:0 ~len:4 with
      | Ok d -> check_str "failover read" "half" (Bytes.to_string d)
      | Error _ -> Alcotest.fail "failover read failed");
      Npmu.power_loss topo.npmu_b;
      match Pm_client.write c h ~off:0 ~data:(Bytes.of_string "none") with
      | Error Pm_types.Device_failed -> ()
      | _ -> Alcotest.fail "write with both devices down accepted")

let test_unmirrored_ablation () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let cpu = Node.cpu topo.node 2 in
      let cfg = { Pm_client.default_config with mirrored_writes = false } in
      let c =
        Pm_client.attach ~cpu ~fabric:(Node.fabric topo.node) ~pmm:(Pmm.server topo.pmm)
          ~config:cfg ()
      in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"u" ~size:4096) in
      let t0 = Sim.now topo.sim in
      Test_util.check_result_ok "write" (Pm_client.write c h ~off:0 ~data:(Bytes.create 4096));
      let unmirrored = Sim.now topo.sim - t0 in
      let c2 = client topo 3 in
      let h2 = Test_util.ok_or_fail ~msg:"open" (Pm_client.open_region c2 ~name:"u") in
      let t1 = Sim.now topo.sim in
      Test_util.check_result_ok "write2" (Pm_client.write c2 h2 ~off:0 ~data:(Bytes.create 4096));
      let mirrored = Sim.now topo.sim - t1 in
      check_bool "mirroring costs roughly 2x" true (mirrored > unmirrored * 3 / 2))

(* --- Metadata durability and recovery --- *)

let test_metadata_survives_pmm_restart () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"keep" ~size:8192) in
      Test_util.check_result_ok "write" (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "precious"));
      (* Tear the whole manager down; devices keep metadata + data. *)
      Pmm.halt topo.pmm;
      Sim.sleep (Time.ms 10);
      let pmm2 =
        Pmm.start ~fabric:(Node.fabric topo.node) ~name:"$PMM2"
          ~primary_cpu:(Node.cpu topo.node 2) ~backup_cpu:(Node.cpu topo.node 3)
          ~primary_dev:(Pmm.device_of_npmu topo.npmu_a)
          ~mirror_dev:(Pmm.device_of_npmu topo.npmu_b) ()
      in
      let c2 =
        Pm_client.attach ~cpu:(Node.cpu topo.node 3) ~fabric:(Node.fabric topo.node)
          ~pmm:(Pmm.server pmm2) ()
      in
      let h2 = Test_util.ok_or_fail ~msg:"reopen" (Pm_client.open_region c2 ~name:"keep") in
      (match Pm_client.read c2 h2 ~off:0 ~len:8 with
      | Ok d -> check_str "data intact" "precious" (Bytes.to_string d)
      | Error _ -> Alcotest.fail "read after recovery failed");
      match Pmm.last_recovery_time pmm2 with
      | Some dt -> check_bool "recovery took real time" true (dt > 0)
      | None -> Alcotest.fail "no recovery recorded")

let test_pmm_takeover_keeps_metadata () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let _ = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"ha" ~size:4096) in
      Cpu.fail (Node.cpu topo.node 0);
      Sim.sleep (Time.sec 1);
      (* The promoted backup must still know the region. *)
      let h = Test_util.ok_or_fail ~msg:"open after takeover" (Pm_client.open_region c ~name:"ha") in
      Test_util.check_result_ok "write after takeover"
        (Pm_client.write c h ~off:0 ~data:(Bytes.of_string "alive"));
      check_int "one takeover" 1 (Pmm.takeovers topo.pmm))

let test_torn_metadata_slot_recovers_older () =
  (* Corrupt the newest slot on both devices: recovery must fall back to
     the older generation instead of failing. *)
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let _ = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"a" ~size:4096) in
      let _ = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"b" ~size:4096) in
      Pmm.halt topo.pmm;
      Sim.sleep (Time.ms 1);
      (* Generation counter: format wrote gen 1 in both slots; creates made
         gens 2 ("a") and 3 ("a","b").  Tear gen 3 (slot 1). *)
      let meta_half = Pmm.default_config.Pmm.meta_reserve / 2 in
      let garbage = Bytes.make 64 '\xFF' in
      Npmu.poke topo.npmu_a ~off:meta_half ~data:garbage;
      Npmu.poke topo.npmu_b ~off:meta_half ~data:garbage;
      let pmm2 =
        Pmm.start ~fabric:(Node.fabric topo.node) ~name:"$PMM2"
          ~primary_cpu:(Node.cpu topo.node 2) ~backup_cpu:(Node.cpu topo.node 3)
          ~primary_dev:(Pmm.device_of_npmu topo.npmu_a)
          ~mirror_dev:(Pmm.device_of_npmu topo.npmu_b) ()
      in
      let c2 =
        Pm_client.attach ~cpu:(Node.cpu topo.node 3) ~fabric:(Node.fabric topo.node)
          ~pmm:(Pmm.server pmm2) ()
      in
      (* Gen 2 knew "a" but not "b". *)
      let _ = Test_util.ok_or_fail ~msg:"a survives" (Pm_client.open_region c2 ~name:"a") in
      match Pm_client.open_region c2 ~name:"b" with
      | Error Pm_types.No_such_region -> ()
      | _ -> Alcotest.fail "torn region resurrected")

let suite =
  [
    ( "pm.crc32",
      [
        Alcotest.test_case "IEEE check vector" `Quick test_crc32_vector;
        Alcotest.test_case "detects bit flips" `Quick test_crc32_detects_flip;
      ] );
    ( "pm.codec",
      [
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "truncation detected" `Quick test_codec_truncated;
        QCheck_alcotest.to_alcotest prop_codec_ints;
      ] );
    ( "pm.devices",
      [
        Alcotest.test_case "NPMU survives power loss" `Quick test_npmu_survives_power_loss;
        Alcotest.test_case "PMP prototype loses contents" `Quick test_pmp_loses_contents;
        Alcotest.test_case "PMP dies with its CPU" `Quick test_pmp_dies_with_cpu;
      ] );
    ( "pm.client",
      [
        Alcotest.test_case "create/write/read on both mirrors" `Quick test_create_write_read;
        Alcotest.test_case "write latency tens of microseconds" `Quick test_write_latency_is_tens_of_us;
        Alcotest.test_case "duplicate create rejected" `Quick test_create_duplicate_rejected;
        Alcotest.test_case "out of space" `Quick test_out_of_space;
        Alcotest.test_case "delete frees space for reuse" `Quick test_delete_and_reuse_space;
        Alcotest.test_case "busy region cannot be deleted" `Quick test_delete_busy_region;
        Alcotest.test_case "open unknown region" `Quick test_open_unknown_region;
        Alcotest.test_case "AVT rights require open" `Quick test_access_requires_open;
        Alcotest.test_case "bounds checked client-side" `Quick test_bounds_checked;
        Alcotest.test_case "list regions" `Quick test_list_regions;
      ] );
    ( "pm.mirroring",
      [
        Alcotest.test_case "degraded write survives one NPMU" `Quick
          test_degraded_write_survives_one_npmu;
        Alcotest.test_case "unmirrored ablation is cheaper" `Quick test_unmirrored_ablation;
      ] );
    ( "pm.recovery",
      [
        Alcotest.test_case "metadata survives PMM restart" `Quick test_metadata_survives_pmm_restart;
        Alcotest.test_case "PMM takeover keeps metadata" `Quick test_pmm_takeover_keeps_metadata;
        Alcotest.test_case "torn slot falls back a generation" `Quick
          test_torn_metadata_slot_recovers_older;
      ] );
  ]

(* --- PMM stat and close/delete edges --- *)

let test_pmm_stat () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let _ = Test_util.ok_or_fail ~msg:"create" (Pm_client.create_region c ~name:"s1" ~size:65536) in
      match
        Msgsys.call (Pmm.server topo.pmm) ~from:(Node.cpu topo.node 2) Pmm.Stat
      with
      | Ok (Pmm.R_stat info) ->
          check_int "allocated" 65536 info.Pmm.allocated;
          check_int "regions" 1 info.Pmm.region_count;
          check_bool "healthy" false info.Pmm.degraded;
          check_bool "capacity positive" true (info.Pmm.capacity > 0);
          check_bool "generation advanced" true (info.Pmm.generation > 1)
      | _ -> Alcotest.fail "stat failed")

let test_close_unknown_region () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      match
        Msgsys.call (Pmm.server topo.pmm) ~from:(Node.cpu topo.node 2)
          (Pmm.Close { rname = "ghost"; client = 0 })
      with
      | Ok (Pmm.R_error Pm_types.No_such_region) -> ()
      | _ -> Alcotest.fail "expected No_such_region")

let test_list_after_delete () =
  let topo = make_topo () in
  Test_util.run_in topo.sim (fun () ->
      let c = client topo 2 in
      let h = Test_util.ok_or_fail ~msg:"a" (Pm_client.create_region c ~name:"a" ~size:4096) in
      let _ = Test_util.ok_or_fail ~msg:"b" (Pm_client.create_region c ~name:"b" ~size:4096) in
      Test_util.check_result_ok "close" (Pm_client.close_region c h);
      Test_util.check_result_ok "delete" (Pm_client.delete_region c ~name:"a");
      match Pm_client.list_regions c with
      | Ok [ r ] -> Alcotest.(check string) "only b" "b" r.Pm_types.region_name
      | _ -> Alcotest.fail "unexpected listing")

let pmm_edge_cases =
  [
    Alcotest.test_case "volume stat" `Quick test_pmm_stat;
    Alcotest.test_case "close unknown region" `Quick test_close_unknown_region;
    Alcotest.test_case "list after delete" `Quick test_list_after_delete;
  ]

let suite = suite @ [ ("pm.manager_edges", pmm_edge_cases) ]
