(* Benchmark executable.

   Part 1 (bechamel): wall-clock micro-benchmarks of the substrate — one
   Test.make per operation class, including one per paper figure (the
   cost of simulating a figure cell).

   Part 2 (figure harness): regenerates every figure/experiment series of
   the paper in simulated time and prints measured-vs-paper shape.  The
   per-driver record count defaults to 2000 (1/16 of the paper's 32000)
   so the full suite runs in minutes; set PMODS_BENCH_RECORDS=32000 for
   paper scale. *)

open Bechamel
open Toolkit

let records =
  match Sys.getenv_opt "PMODS_BENCH_RECORDS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2_000)
  | None -> 2_000

(* --- Part 1: micro-benchmarks --- *)

let bench_crc32 =
  let buf = Bytes.create 4096 in
  Test.make ~name:"crc32/4KiB" (Staged.stage (fun () -> Pm.Crc32.bytes buf))

let bench_audit_encode =
  let record =
    Tp.Audit.Update
      { txn = 1; file = 0; partition = 3; key = 42; payload_len = 4096; payload_crc = 7; before_len = 0 }
  in
  Test.make ~name:"audit/encode-4K-update" (Staged.stage (fun () -> Tp.Audit.encode_to_bytes record))

let bench_audit_decode =
  let bytes =
    Tp.Audit.encode_to_bytes
      (Tp.Audit.Update
         { txn = 1; file = 0; partition = 3; key = 42; payload_len = 4096; payload_crc = 7; before_len = 0 })
  in
  Test.make ~name:"audit/decode-4K-update" (Staged.stage (fun () -> Tp.Audit.decode bytes ~pos:0))

let bench_heap =
  Test.make ~name:"heap/push-pop-256"
    (Staged.stage (fun () ->
         let h = Simkit.Heap.create () in
         for i = 0 to 255 do
           Simkit.Heap.push h ~key:((i * 37) mod 97) ~seq:i i
         done;
         let rec drain () = match Simkit.Heap.pop h with Some _ -> drain () | None -> () in
         drain ()))

let bench_rng =
  let rng = Simkit.Rng.create 1L in
  Test.make ~name:"rng/int" (Staged.stage (fun () -> Simkit.Rng.int rng 1000))

let bench_event_loop =
  Test.make ~name:"sim/1000-sleep-wakeups"
    (Staged.stage (fun () ->
         let sim = Simkit.Sim.create () in
         let (_ : Simkit.Sim.pid) =
           Simkit.Sim.spawn sim ~name:"sleeper" (fun () ->
               for _ = 1 to 1000 do
                 Simkit.Sim.sleep 100
               done)
         in
         Simkit.Sim.run sim))

let bench_rdma =
  Test.make ~name:"fabric/setup+rdma-write-4K"
    (Staged.stage (fun () ->
         let sim = Simkit.Sim.create () in
         let fabric = Servernet.Fabric.create sim () in
         let host =
           Servernet.Fabric.attach fabric ~name:"h" ~store:(Servernet.Fabric.byte_store 64)
         in
         let dev =
           Servernet.Fabric.attach fabric ~name:"d" ~store:(Servernet.Fabric.byte_store 8192)
         in
         (match
            Servernet.Avt.map (Servernet.Fabric.avt dev) ~net_base:0 ~length:8192 ~phys_base:0
              ~access:(Servernet.Avt.read_write Servernet.Avt.Any_initiator)
          with
         | Ok () -> ()
         | Error e -> failwith e);
         let (_ : Simkit.Sim.pid) =
           Simkit.Sim.spawn sim ~name:"w" (fun () ->
               match
                 Servernet.Fabric.rdma_write fabric ~src:host ~dst:(Servernet.Fabric.id dev)
                   ~addr:0 ~data:(Bytes.create 4096)
               with
               | Ok () -> ()
               | Error _ -> failwith "rdma")
         in
         Simkit.Sim.run sim))

(* One Test.make per paper figure: the wall-clock cost of simulating a
   small cell of that figure. *)
let bench_figure1_cell =
  Test.make ~name:"FIGURE-1/cell-disk-1driver-64txn"
    (Staged.stage (fun () ->
         ignore
           (Workloads.Figures.run_cell ~mode:Tp.System.Disk_audit ~drivers:1 ~inserts_per_txn:8
              ~records_per_driver:64 ())))

let bench_figure2_cell =
  Test.make ~name:"FIGURE-2/cell-pm-1driver-64txn"
    (Staged.stage (fun () ->
         ignore
           (Workloads.Figures.run_cell ~mode:Tp.System.Pm_audit
              ~config:
                { Tp.System.pm_config with Tp.System.pm_capacity = 8 * 1024 * 1024; pm_region_bytes = 1024 * 1024 }
              ~drivers:1 ~inserts_per_txn:8 ~records_per_driver:64 ())))

let bench_btree =
  Test.make ~name:"btree/insert-find-1k"
    (Staged.stage (fun () ->
         let t = Tp.Btree.create ~degree:8 () in
         for i = 0 to 999 do
           ignore (Tp.Btree.insert t ~key:((i * 2654435761) land 0xFFFFF) i)
         done;
         for i = 0 to 999 do
           ignore (Tp.Btree.find t ~key:((i * 2654435761) land 0xFFFFF))
         done))

let micro_tests =
  Test.make_grouped ~name:"pmods"
    [
      bench_btree;
      bench_crc32;
      bench_audit_encode;
      bench_audit_decode;
      bench_heap;
      bench_rng;
      bench_event_loop;
      bench_rdma;
      bench_figure1_cell;
      bench_figure2_cell;
    ]

let run_micro () =
  print_endline "== micro-benchmarks (wall clock, bechamel OLS ns/run) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] micro_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
          if est > 1e6 then Printf.printf "  %-42s %12.3f ms/run\n" name (est /. 1e6)
          else if est > 1e3 then Printf.printf "  %-42s %12.3f us/run\n" name (est /. 1e3)
          else Printf.printf "  %-42s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    rows

(* --- Part 2: figure harness --- *)

let hr = String.make 74 '-'

let scale_note () =
  Printf.printf "records/driver = %d%s\n" records
    (if records = 32_000 then " (paper scale)"
     else Printf.sprintf " (paper: 32000; set PMODS_BENCH_RECORDS=32000 for full scale)")

let figure1 () =
  print_endline "";
  print_endline "== FIGURE 1: response-time speedup with PM vs transaction size ==";
  print_endline "paper shape: up to 3.5x, greatest with 1-2 drivers, declining with";
  print_endline "boxcar size and with 3-4 drivers";
  scale_note ();
  print_endline hr;
  Printf.printf "%8s %8s %12s %12s %10s %18s\n" "drivers" "txnsize" "disk RT(ms)" "PM RT(ms)"
    "speedup" "paper(approx)";
  let expected = function
    | 1, 8 -> "3.3" | 1, 16 -> "2.4" | 1, 32 -> "1.6"
    | 2, 8 -> "3.4" | 2, 16 -> "2.5" | 2, 32 -> "1.7"
    | 3, 8 -> "2.6" | 3, 16 -> "2.0" | 3, 32 -> "1.5"
    | 4, 8 -> "2.2" | 4, 16 -> "1.8" | 4, 32 -> "1.4"
    | _ -> "-"
  in
  List.iter
    (fun p ->
      Printf.printf "%8d %8s %12.2f %12.2f %10.2f %18s\n" p.Workloads.Figures.f1_drivers
        p.Workloads.Figures.txn_size
        (p.Workloads.Figures.rt_disk_us /. 1e3)
        (p.Workloads.Figures.rt_pm_us /. 1e3)
        p.Workloads.Figures.speedup
        (expected (p.Workloads.Figures.f1_drivers, p.Workloads.Figures.f1_boxcar)))
    (Workloads.Figures.figure1 ~records_per_driver:records ());
  print_endline hr

let figure2 () =
  print_endline "";
  print_endline "== FIGURE 2: elapsed time vs transaction size ==";
  print_endline "paper shape: no-PM elapsed rises sharply as boxcarring shrinks";
  print_endline "(~40s at 128k to ~120-140s at 32k); PM is nearly flat (~20-40s)";
  scale_note ();
  print_endline hr;
  Printf.printf "%8s %8s %16s %14s %8s\n" "drivers" "txnsize" "disk elapsed(s)" "PM elapsed(s)"
    "ratio";
  List.iter
    (fun p ->
      Printf.printf "%8d %8s %16.2f %14.2f %8.2f\n" p.Workloads.Figures.f2_drivers
        p.Workloads.Figures.f2_txn_size p.Workloads.Figures.elapsed_disk_s
        p.Workloads.Figures.elapsed_pm_s
        (p.Workloads.Figures.elapsed_disk_s /. p.Workloads.Figures.elapsed_pm_s))
    (Workloads.Figures.figure2 ~records_per_driver:records ());
  print_endline hr

let ablations () =
  let small = min records 4_000 in
  print_endline "";
  print_endline "== E3: PM write-latency sweep (where the advantage dies) ==";
  List.iter
    (fun p ->
      Printf.printf "  penalty %10s  RT %8.2f ms  speedup-vs-disk %6.2f\n"
        (Simkit.Time.to_string p.Workloads.Figures.penalty)
        (p.Workloads.Figures.rt_us /. 1e3)
        p.Workloads.Figures.speedup_vs_disk)
    (Workloads.Figures.latency_sweep ~records_per_driver:small ());
  print_endline "";
  print_endline "== E4: mirrored vs unmirrored PM writes ==";
  List.iter
    (fun p ->
      Printf.printf "  mirrored=%-5b RT %8.2f ms  elapsed %8.2f s\n" p.Workloads.Figures.mirrored
        (p.Workloads.Figures.rt_us /. 1e3)
        p.Workloads.Figures.elapsed_s)
    (Workloads.Figures.mirror_ablation ~records_per_driver:small ());
  print_endline "";
  print_endline "== E5: crash-recovery time (MTTR) ==";
  List.iter
    (fun p ->
      Printf.printf "  %-5s %s\n"
        (match p.Workloads.Figures.m_mode with
        | Tp.System.Disk_audit -> "disk"
        | Tp.System.Pm_audit -> "pm")
        (Format.asprintf "%a" Tp.Recovery.pp_report p.Workloads.Figures.report))
    (Workloads.Figures.mttr ~records_per_driver:(min records 2_000) ());
  print_endline "";
  print_endline "== E6: throughput vs ADPs per node ==";
  List.iter
    (fun p ->
      Printf.printf "  adps=%d %-5s %8.1f txn/s\n" p.Workloads.Figures.adps
        (match p.Workloads.Figures.a_mode with
        | Tp.System.Disk_audit -> "disk"
        | Tp.System.Pm_audit -> "pm")
        p.Workloads.Figures.tps)
    (Workloads.Figures.adp_scaling ~records_per_driver:small ());
  print_endline "";
  print_endline "== E9: process-pair checkpoint traffic (ADPs + MAT) ==";
  List.iter
    (fun p ->
      Printf.printf "  %-5s txns=%d audit=%d B, checkpoints=%d B (%0.0f B/txn)\n"
        (match p.Workloads.Figures.c_mode with
        | Tp.System.Disk_audit -> "disk"
        | Tp.System.Pm_audit -> "pm")
        p.Workloads.Figures.committed_txns p.Workloads.Figures.audit_bytes
        p.Workloads.Figures.checkpoint_bytes p.Workloads.Figures.ckpt_bytes_per_txn)
    (Workloads.Figures.checkpoint_traffic ~records_per_driver:(min records 2_000) ());
  print_endline "";
  print_endline "== E8: shared-nothing scale-out ==";
  List.iter
    (fun p ->
      Printf.printf "  nodes=%d %-5s aggregate %8.1f txn/s (per node %6.1f)\n"
        p.Workloads.Figures.s_nodes
        (match p.Workloads.Figures.s_mode with
        | Tp.System.Disk_audit -> "disk"
        | Tp.System.Pm_audit -> "pm")
        p.Workloads.Figures.aggregate_tps p.Workloads.Figures.per_node_tps)
    (Workloads.Figures.scaleout ~records_per_driver:(min records 1_000) ~nodes_list:[ 1; 2 ] ());
  print_endline "";
  print_endline "== E10: distributed transactions (two-phase commit, 2 nodes) ==";
  List.iter
    (fun p ->
      Printf.printf "  %-5s local %6.2f ms, 2PC %6.2f ms (protocol %6.2f ms)\n"
        (match p.Workloads.Figures.d_mode with
        | Tp.System.Disk_audit -> "disk"
        | Tp.System.Pm_audit -> "pm")
        p.Workloads.Figures.local_rt_ms p.Workloads.Figures.dtx_rt_ms
        p.Workloads.Figures.protocol_overhead_ms)
    (Workloads.Figures.dtx_latency ~transfers:10 ());
  print_endline "";
  print_endline "== E7: ADP process-pair failover under load ==";
  let r = Workloads.Figures.failover_under_load ~records_per_driver:400 () in
  Printf.printf "  committed before/total %d/%d, takeovers %d, lost transactions %d\n"
    r.Workloads.Figures.committed_before r.Workloads.Figures.committed_total
    r.Workloads.Figures.adp_takeovers r.Workloads.Figures.lost_transactions

let () =
  run_micro ();
  figure1 ();
  figure2 ();
  ablations ();
  print_endline "";
  print_endline "bench: done"
