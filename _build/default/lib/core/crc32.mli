(** CRC-32 (IEEE 802.3 polynomial), used to checksum persistent-memory
    metadata records and audit-trail records so that recovery can tell a
    torn or corrupt record from a valid one. *)

val bytes : Bytes.t -> int32

val sub : Bytes.t -> pos:int -> len:int -> int32

val string : string -> int32
