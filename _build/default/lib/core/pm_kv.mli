(** A durable key-value store on persistent memory — what a downstream
    user of this library would actually deploy (the modern shape of the
    paper's "durable information store completely integrated into the
    memory hierarchy", §3.4).

    Composition: a {!Pm_index} copy-on-write B-tree maps keys to packed
    (offset, length) locators inside a separate value-log region, where
    value bytes are bump-allocated.  A put appends the value, then
    commits by flipping the index root — so a crash at any instant leaves
    the previous consistent store.  Deletes write tombstones.  All costs
    are real RDMA traffic on the simulated devices.

    Single writer, many readers.  Space from overwritten and deleted
    values is not reclaimed (log-structured stores compact; documented
    simplification). *)

type t

type error = Pm_types.error

val create :
  Pm_client.t -> index:Pm_client.handle -> log:Pm_client.handle -> (t, error) result
(** Format both regions.  Process context only. *)

val open_existing :
  Pm_client.t -> index:Pm_client.handle -> log:Pm_client.handle -> (t, error) result

val put : t -> key:int -> Bytes.t -> (unit, error) result
(** Durable on return. *)

val get : t -> key:int -> (Bytes.t option, error) result

val delete : t -> key:int -> (unit, error) result
(** Idempotent. *)

val mem : t -> key:int -> (bool, error) result

val fold_range :
  t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> Bytes.t -> 'a) -> ('a, error) result
(** Fold over live bindings with [lo <= key <= hi], ascending. *)

val entries : t -> int
(** Live bindings (index count minus tombstones is not tracked; this is
    the index entry count including tombstones). *)

val log_bytes_used : t -> int

val refresh : t -> (unit, error) result
(** Reader-side: observe the writer's latest committed state. *)
