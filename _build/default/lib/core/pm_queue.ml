type error = Pm_types.error

let meta_magic = 0x504D5155 (* "PMQU" *)

let block_magic = 0x51424C4B (* "QBLK" *)

let meta_off = 0

let producer_off = 64

let consumer_off = 128

let data_off = 192

let block_bytes = 64

type t = { client : Pm_client.t; handle : Pm_client.handle; data_len : int }

(* --- control blocks: a single u64 logical position, CRC-stamped --- *)

let encode_block pos =
  let enc = Codec.Enc.create () in
  Codec.Enc.u32 enc block_magic;
  Codec.Enc.u64 enc pos;
  let body = Codec.Enc.to_bytes enc in
  let out = Bytes.make block_bytes '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = Crc32.sub out ~pos:0 ~len:(block_bytes - 4) in
  let tail = Codec.Enc.create () in
  Codec.Enc.u32 tail (Int32.to_int crc land 0xFFFFFFFF);
  Bytes.blit (Codec.Enc.to_bytes tail) 0 out (block_bytes - 4) 4;
  out

let decode_block buf =
  try
    let crc = Crc32.sub buf ~pos:0 ~len:(block_bytes - 4) in
    let cdec = Codec.Dec.of_sub buf ~pos:(block_bytes - 4) ~len:4 in
    if Codec.Dec.u32 cdec <> Int32.to_int crc land 0xFFFFFFFF then None
    else
      let dec = Codec.Dec.of_bytes buf in
      if Codec.Dec.u32 dec <> block_magic then None else Some (Codec.Dec.u64 dec)
  with Codec.Dec.Truncated -> None

let write_block t ~off pos = Pm_client.write t.client t.handle ~off ~data:(encode_block pos)

let read_block t ~off =
  match Pm_client.read t.client t.handle ~off ~len:block_bytes with
  | Error e -> Error e
  | Ok buf -> (
      match decode_block buf with
      | Some pos -> Ok pos
      | None -> Error (Pm_types.Bad_request "corrupt queue control block"))

(* --- the ring as a contiguous logical byte stream --- *)

let phys t pos = data_off + (pos mod t.data_len)

(* Write [data] at logical position [pos], splitting at the ring edge. *)
let write_stream t ~pos data =
  let len = Bytes.length data in
  let off = phys t pos in
  let first = min len (data_off + t.data_len - off) in
  match Pm_client.write t.client t.handle ~off ~data:(Bytes.sub data 0 first) with
  | Error e -> Error e
  | Ok () ->
      if first = len then Ok ()
      else
        Pm_client.write t.client t.handle ~off:data_off
          ~data:(Bytes.sub data first (len - first))

let read_stream t ~pos ~len =
  let off = phys t pos in
  let first = min len (data_off + t.data_len - off) in
  match Pm_client.read t.client t.handle ~off ~len:first with
  | Error e -> Error e
  | Ok a ->
      if first = len then Ok a
      else (
        match Pm_client.read t.client t.handle ~off:data_off ~len:(len - first) with
        | Error e -> Error e
        | Ok b ->
            let out = Bytes.create len in
            Bytes.blit a 0 out 0 first;
            Bytes.blit b 0 out first (len - first);
            Ok out)

(* --- construction --- *)

let encode_meta data_len =
  let enc = Codec.Enc.create () in
  Codec.Enc.u32 enc meta_magic;
  Codec.Enc.u32 enc data_len;
  let body = Codec.Enc.to_bytes enc in
  let out = Bytes.make block_bytes '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  out

let create client handle =
  let region_len = (Pm_client.info handle).Pm_types.length in
  if region_len < data_off + 256 then invalid_arg "Pm_queue.create: region too small";
  let data_len = region_len - data_off in
  let t = { client; handle; data_len } in
  match Pm_client.write client handle ~off:meta_off ~data:(encode_meta data_len) with
  | Error e -> Error e
  | Ok () -> (
      match write_block t ~off:producer_off 0 with
      | Error e -> Error e
      | Ok () -> (
          match write_block t ~off:consumer_off 0 with Error e -> Error e | Ok () -> Ok t))

let attach client handle =
  match Pm_client.read client handle ~off:meta_off ~len:block_bytes with
  | Error e -> Error e
  | Ok buf -> (
      try
        let dec = Codec.Dec.of_bytes buf in
        if Codec.Dec.u32 dec <> meta_magic then
          Error (Pm_types.Bad_request "no queue in this region")
        else
          let data_len = Codec.Dec.u32 dec in
          Ok { client; handle; data_len }
      with Codec.Dec.Truncated -> Error (Pm_types.Bad_request "no queue in this region"))

(* --- operations --- *)

let frame_overhead = 8 (* u32 length + u32 crc *)

let enqueue t data =
  let len = Bytes.length data in
  let need = frame_overhead + len in
  if need > t.data_len then Error Pm_types.Out_of_space
  else
    match read_block t ~off:producer_off with
    | Error e -> Error e
    | Ok tail -> (
        match read_block t ~off:consumer_off with
        | Error e -> Error e
        | Ok head ->
            if tail - head + need > t.data_len then Error Pm_types.Out_of_space
            else begin
              let enc = Codec.Enc.create () in
              Codec.Enc.u32 enc len;
              Codec.Enc.raw enc data;
              Codec.Enc.u32 enc (Int32.to_int (Crc32.bytes data) land 0xFFFFFFFF);
              match write_stream t ~pos:tail (Codec.Enc.to_bytes enc) with
              | Error e -> Error e
              | Ok () ->
                  (* The producer-block flip is the commit point. *)
                  write_block t ~off:producer_off (tail + need)
            end)

let read_head t ~consume =
  match read_block t ~off:consumer_off with
  | Error e -> Error e
  | Ok head -> (
      match read_block t ~off:producer_off with
      | Error e -> Error e
      | Ok tail ->
          if head = tail then Ok None
          else
            match read_stream t ~pos:head ~len:4 with
            | Error e -> Error e
            | Ok hdr -> (
                let len = Codec.Dec.u32 (Codec.Dec.of_bytes hdr) in
                match read_stream t ~pos:(head + 4) ~len:(len + 4) with
                | Error e -> Error e
                | Ok body ->
                    let data = Bytes.sub body 0 len in
                    let cdec = Codec.Dec.of_sub body ~pos:len ~len:4 in
                    let crc = Codec.Dec.u32 cdec in
                    if Int32.to_int (Crc32.bytes data) land 0xFFFFFFFF <> crc then
                      Error (Pm_types.Bad_request "corrupt queue record")
                    else if not consume then Ok (Some data)
                    else (
                      match write_block t ~off:consumer_off (head + frame_overhead + len) with
                      | Error e -> Error e
                      | Ok () -> Ok (Some data))))

let dequeue t = read_head t ~consume:true

let peek t = read_head t ~consume:false

let length t =
  match read_block t ~off:consumer_off with
  | Error e -> Error e
  | Ok head -> (
      match read_block t ~off:producer_off with
      | Error e -> Error e
      | Ok tail ->
          (* Walk the frames between head and tail. *)
          let rec count pos acc =
            if pos >= tail then Ok acc
            else
              match read_stream t ~pos ~len:4 with
              | Error e -> Error e
              | Ok hdr ->
                  let len = Codec.Dec.u32 (Codec.Dec.of_bytes hdr) in
                  count (pos + frame_overhead + len) (acc + 1)
          in
          count head 0)

let capacity_bytes t = t.data_len
