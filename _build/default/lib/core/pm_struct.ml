type node = { label : string; payload : Bytes.t; children : node list }

let leaf ?(payload = Bytes.empty) label = { label; payload; children = [] }

let branch ?(payload = Bytes.empty) label children = { label; payload; children }

let rec count_nodes n = 1 + List.fold_left (fun acc c -> acc + count_nodes c) 0 n.children

type stored = { root_off : int; bytes_used : int; nodes : int }

let node_magic = 0x4E4F (* "NO" *)

(* On-region layout of a node:
   u16 magic | u16 label_len | label | u32 payload_len | payload
   | u16 child_count | u32 child_offset...                        *)
let encode_node node ~child_offs =
  let enc = Codec.Enc.create () in
  Codec.Enc.u16 enc node_magic;
  Codec.Enc.str enc node.label;
  Codec.Enc.blob enc node.payload;
  Codec.Enc.u16 enc (List.length child_offs);
  List.iter (Codec.Enc.u32 enc) child_offs;
  Codec.Enc.to_bytes enc

let store client handle ?(base = 0) root =
  let region_len = (Pm_client.info handle).Pm_types.length in
  let cursor = ref base in
  let nodes = ref 0 in
  (* Children first, so every pointer written refers to an offset that is
     already durable: a crashed bulk write never leaves a dangling
     pointer reachable from a written node. *)
  let rec place n =
    let child_results = List.map place n.children in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | Ok off :: rest -> collect (off :: acc) rest
      | Error e :: _ -> Error e
    in
    match collect [] child_results with
    | Error e -> Error e
    | Ok child_offs -> (
        let bytes = encode_node n ~child_offs in
        let off = !cursor in
        if off + Bytes.length bytes > region_len then Error Pm_types.Out_of_space
        else
          match Pm_client.write client handle ~off ~data:bytes with
          | Ok () ->
              cursor := off + Bytes.length bytes;
              incr nodes;
              Ok off
          | Error e -> Error e)
  in
  match place root with
  | Error e -> Error e
  | Ok root_off -> Ok { root_off; bytes_used = !cursor - base; nodes = !nodes }

(* Read the node header at [off]; children as offsets. *)
let read_node client handle ~off =
  let region_len = (Pm_client.info handle).Pm_types.length in
  (* Two-step read: a fixed-size prefix tells us how much more to fetch. *)
  let prefix_len = min 512 (region_len - off) in
  match Pm_client.read client handle ~off ~len:prefix_len with
  | Error e -> Error e
  | Ok prefix -> (
      let parse buf =
        let dec = Codec.Dec.of_bytes buf in
        let magic = Codec.Dec.u16 dec in
        if magic <> node_magic then None
        else
          let label = Codec.Dec.str dec in
          let payload = Codec.Dec.blob dec in
          let count = Codec.Dec.u16 dec in
          let children = List.init count (fun _ -> Codec.Dec.u32 dec) in
          Some (label, payload, children)
      in
      match parse prefix with
      | Some v -> Ok v
      | None | (exception Codec.Dec.Truncated) -> (
          (* Node larger than the prefix: read a bigger window. *)
          let len = min 65536 (region_len - off) in
          match Pm_client.read client handle ~off ~len with
          | Error e -> Error e
          | Ok buf -> (
              match parse buf with
              | Some v -> Ok v
              | None | (exception Codec.Dec.Truncated) ->
                  Error (Pm_types.Bad_request "corrupt node"))))

let load client handle ~root =
  let rec build off =
    match read_node client handle ~off with
    | Error e -> Error e
    | Ok (label, payload, child_offs) -> (
        let rec children acc = function
          | [] -> Ok (List.rev acc)
          | o :: rest -> (
              match build o with Ok c -> children (c :: acc) rest | Error e -> Error e)
        in
        match children [] child_offs with
        | Ok cs -> Ok { label; payload; children = cs }
        | Error e -> Error e)
  in
  build root

let load_path client handle ~root ~path =
  let reads = ref 0 in
  let rec walk off = function
    | [] -> (
        match read_node client handle ~off with
        | Error e -> Error e
        | Ok (label, payload, _) ->
            incr reads;
            Ok (Some { label; payload; children = [] }))
    | idx :: rest -> (
        match read_node client handle ~off with
        | Error e -> Error e
        | Ok (_, _, child_offs) ->
            incr reads;
            if idx < 0 || idx >= List.length child_offs then Ok None
            else walk (List.nth child_offs idx) rest)
  in
  match walk root path with Ok n -> Ok (n, !reads) | Error e -> Error e
