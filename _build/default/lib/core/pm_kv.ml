type error = Pm_types.error

let log_magic = 0x504D4B56 (* "PMKV" *)

let log_header_bytes = 64

(* Locators pack a 34-bit offset and 24-bit length; the tombstone is 0
   (no real value can live at offset 0, the log header's home). *)
let tombstone = 0

let pack ~off ~len =
  if len >= 1 lsl 24 then invalid_arg "Pm_kv: value too large";
  (off lsl 24) lor len

let unpack v = (v lsr 24, v land 0xFFFFFF)

type t = {
  client : Pm_client.t;
  log : Pm_client.handle;
  index : Pm_index.t;
  mutable alloc : int;  (** next free byte in the value log *)
}

let encode_log_header alloc =
  let enc = Codec.Enc.create () in
  Codec.Enc.u32 enc log_magic;
  Codec.Enc.u64 enc alloc;
  let body = Codec.Enc.to_bytes enc in
  let out = Bytes.make log_header_bytes '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = Crc32.sub out ~pos:0 ~len:(log_header_bytes - 4) in
  let tl = Codec.Enc.create () in
  Codec.Enc.u32 tl (Int32.to_int crc land 0xFFFFFFFF);
  Bytes.blit (Codec.Enc.to_bytes tl) 0 out (log_header_bytes - 4) 4;
  out

let decode_log_header buf =
  try
    let crc = Crc32.sub buf ~pos:0 ~len:(log_header_bytes - 4) in
    let cdec = Codec.Dec.of_sub buf ~pos:(log_header_bytes - 4) ~len:4 in
    if Codec.Dec.u32 cdec <> Int32.to_int crc land 0xFFFFFFFF then None
    else
      let dec = Codec.Dec.of_bytes buf in
      if Codec.Dec.u32 dec <> log_magic then None else Some (Codec.Dec.u64 dec)
  with Codec.Dec.Truncated -> None

let write_log_header t =
  Pm_client.write t.client t.log ~off:0 ~data:(encode_log_header t.alloc)

let create client ~index ~log =
  match Pm_index.create client index () with
  | Error e -> Error e
  | Ok ix -> (
      let t = { client; log; index = ix; alloc = log_header_bytes } in
      match write_log_header t with Ok () -> Ok t | Error e -> Error e)

let open_existing client ~index ~log =
  match Pm_index.open_existing client index with
  | Error e -> Error e
  | Ok ix -> (
      match Pm_client.read client log ~off:0 ~len:log_header_bytes with
      | Error e -> Error e
      | Ok buf -> (
          match decode_log_header buf with
          | Some alloc -> Ok { client; log; index = ix; alloc }
          | None -> Error (Pm_types.Bad_request "no value log in this region")))

let put t ~key value =
  let len = Bytes.length value in
  let log_len = (Pm_client.info t.log).Pm_types.length in
  if t.alloc + len > log_len then Error Pm_types.Out_of_space
  else begin
    let off = t.alloc in
    (* Value first, then the allocation frontier, then the index commit:
       a crash leaves at worst an orphaned value. *)
    let write_value =
      if len = 0 then Ok () else Pm_client.write t.client t.log ~off ~data:value
    in
    match write_value with
    | Error e -> Error e
    | Ok () -> (
        t.alloc <- off + len;
        match write_log_header t with
        | Error e -> Error e
        | Ok () -> Pm_index.insert t.index ~key ~value:(pack ~off ~len))
  end

let get t ~key =
  match Pm_index.find t.index ~key with
  | Error e -> Error e
  | Ok None -> Ok None
  | Ok (Some locator) ->
      if locator = tombstone then Ok None
      else
        let off, len = unpack locator in
        if len = 0 then Ok (Some Bytes.empty)
        else (
          match Pm_client.read t.client t.log ~off ~len with
          | Ok v -> Ok (Some v)
          | Error e -> Error e)

let delete t ~key =
  match Pm_index.find t.index ~key with
  | Error e -> Error e
  | Ok None -> Ok ()
  | Ok (Some locator) ->
      if locator = tombstone then Ok ()
      else Pm_index.insert t.index ~key ~value:tombstone

let mem t ~key = match get t ~key with Ok v -> Ok (v <> None) | Error e -> Error e

let fold_range t ~lo ~hi ~init ~f =
  match Pm_index.range t.index ~lo ~hi with
  | Error e -> Error e
  | Ok bindings ->
      let rec go acc = function
        | [] -> Ok acc
        | (key, locator) :: rest ->
            if locator = tombstone then go acc rest
            else
              let off, len = unpack locator in
              if len = 0 then go (f acc key Bytes.empty) rest
              else (
                match Pm_client.read t.client t.log ~off ~len with
                | Error e -> Error e
                | Ok v -> go (f acc key v) rest)
      in
      go init bindings

let entries t = Pm_index.cardinal t.index

let log_bytes_used t = t.alloc

let refresh t =
  match Pm_index.refresh t.index with
  | Error e -> Error e
  | Ok () -> (
      match Pm_client.read t.client t.log ~off:0 ~len:log_header_bytes with
      | Error e -> Error e
      | Ok buf -> (
          match decode_log_header buf with
          | Some alloc ->
              t.alloc <- alloc;
              Ok ()
          | None -> Error (Pm_types.Bad_request "no value log in this region")))
