module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let u64 t v =
    u32 t v;
    u32 t (v lsr 32)

  let str t s =
    let n = String.length s in
    if n > 0xFFFF then invalid_arg "Codec.Enc.str: too long";
    u16 t n;
    Buffer.add_string t s

  let blob t b =
    u32 t (Bytes.length b);
    Buffer.add_bytes t b

  let raw t b = Buffer.add_bytes t b

  let pad t n = for _ = 1 to n do Buffer.add_char t '\000' done

  let length t = Buffer.length t

  let to_bytes t = Buffer.to_bytes t
end

module Dec = struct
  type t = { buf : Bytes.t; limit : int; mutable cursor : int }

  exception Truncated

  let of_sub buf ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length buf then raise Truncated;
    { buf; limit = pos + len; cursor = pos }

  let of_bytes buf = of_sub buf ~pos:0 ~len:(Bytes.length buf)

  let need t n = if t.cursor + n > t.limit then raise Truncated

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.get t.buf t.cursor) in
    t.cursor <- t.cursor + 1;
    v

  let u16 t =
    let lo = u8 t in
    let hi = u8 t in
    lo lor (hi lsl 8)

  let u32 t =
    let lo = u16 t in
    let hi = u16 t in
    lo lor (hi lsl 16)

  let u64 t =
    let lo = u32 t in
    let hi = u32 t in
    lo lor (hi lsl 32)

  let str t =
    let n = u16 t in
    need t n;
    let s = Bytes.sub_string t.buf t.cursor n in
    t.cursor <- t.cursor + n;
    s

  let blob t =
    let n = u32 t in
    need t n;
    let b = Bytes.sub t.buf t.cursor n in
    t.cursor <- t.cursor + n;
    b

  let remaining t = t.limit - t.cursor

  let pos t = t.cursor
end
