(** Little binary codec for durable structures (PMM metadata, audit-trail
    records).  Integers are little-endian; strings and byte blobs are
    length-prefixed. *)

module Enc : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val str : t -> string -> unit
  (** u16 length prefix *)

  val blob : t -> Bytes.t -> unit
  (** u32 length prefix *)

  val raw : t -> Bytes.t -> unit
  (** append bytes with no prefix *)

  val pad : t -> int -> unit
  (** append that many zero bytes *)

  val length : t -> int
  val to_bytes : t -> Bytes.t
end

module Dec : sig
  type t

  exception Truncated

  val of_bytes : Bytes.t -> t
  val of_sub : Bytes.t -> pos:int -> len:int -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val str : t -> string
  val blob : t -> Bytes.t
  val remaining : t -> int
  val pos : t -> int
end
