(** A durable single-producer/single-consumer queue in persistent memory.

    The paper's motivating ODS queues work before transacting it — "buy
    and sell orders arrive from brokerage systems and must be queued and
    matched" (§2) — and §3.4's fine-grained persistence makes it
    practical to keep such queues durable: an order acknowledged to the
    broker survives any crash, at microsecond cost.

    Layout: a byte ring with {e separate} producer and consumer control
    blocks, each written only by its side (so one writer per block, the
    NonStop discipline), each CRC-stamped.  An enqueue writes the framed
    record first and flips the producer block last; a crash in between
    leaves a torn record beyond the tail that no consumer will ever read.
    Producer and consumer may be different clients on different CPUs. *)

type t

type error = Pm_types.error

val create : Pm_client.t -> Pm_client.handle -> (t, error) result
(** Format the region as an empty queue.  Process context only. *)

val attach : Pm_client.t -> Pm_client.handle -> (t, error) result
(** Attach to an existing queue (other client, or after a power cycle). *)

val enqueue : t -> Bytes.t -> (unit, error) result
(** Durable once it returns.  [Error Out_of_space] when the ring cannot
    hold the record until the consumer drains. *)

val dequeue : t -> (Bytes.t option, error) result
(** [Ok None] when empty.  The pop is durable on return: after a crash
    the element is not redelivered. *)

val peek : t -> (Bytes.t option, error) result

val length : t -> (int, error) result
(** Elements currently queued (reads both control blocks). *)

val capacity_bytes : t -> int
(** Ring payload capacity. *)
