(** A persistent B-tree index living in a persistent-memory region
    (paper §3.4: PM lets "ODS data structures, such as database indices
    ... be efficiently stored to durable media", updated at fine grain).

    The tree is stored as fixed-slot nodes inside one PM region and
    updated copy-on-write: an insert writes the new leaf-to-root path
    into fresh slots and then flips the root pointer in the header with
    one small write.  A crash at any point leaves the previous,
    consistent tree reachable — shadow paging on persistent memory.
    Every operation's cost is real simulated RDMA traffic: reads walk the
    tree at ~25 µs per node, inserts add one node write per level plus
    the header flip.

    Single writer, many readers (the NonStop discipline: the owning
    process writes, others {!open_existing} and read). *)

type t

type error = Pm_types.error

val create :
  Pm_client.t -> Pm_client.handle -> ?degree:int -> unit -> (t, error) result
(** Format the region as an empty index.  [degree] (minimum B-tree
    degree, default 8) fixes the node layout; nodes occupy 1 KiB slots.
    Process context only. *)

val open_existing : Pm_client.t -> Pm_client.handle -> (t, error) result
(** Attach to an index someone already created — a different client CPU,
    or the same region after a power cycle. *)

val insert : t -> key:int -> value:int -> (unit, error) result
(** Insert or replace.  Durable (both mirrors) on return. *)

val find : t -> key:int -> (int option, error) result

val range : t -> lo:int -> hi:int -> ((int * int) list, error) result
(** Bindings with [lo <= key <= hi], ascending. *)

val cardinal : t -> int
(** Entry count (from the durable header). *)

val height : t -> int

val bytes_allocated : t -> int
(** Region bytes consumed so far.  Copy-on-write retires old slots
    without reclaiming them; a production version would keep a free map
    (documented simplification). *)

val refresh : t -> (unit, error) result
(** Re-read the header — how a reader observes the writer's updates. *)
