type error = Pm_types.error

let header_magic = 0x504D4958 (* "PMIX" *)

let header_bytes = 64

let node_bytes = 1024

type header = {
  mutable degree : int;
  mutable root_off : int;  (** 0 = empty tree *)
  mutable alloc_off : int;
  mutable count : int;
}

type t = { client : Pm_client.t; handle : Pm_client.handle; hdr : header }

(* In-memory image of one node, decoded from its slot. *)
type node = {
  leaf : bool;
  keys : int array;  (* length n *)
  vals : int array;
  children : int array;  (* offsets; length n+1 for internal, [||] for leaf *)
}

let max_keys d = (2 * d) - 1

(* --- header i/o --- *)

let encode_header hdr =
  let enc = Codec.Enc.create () in
  Codec.Enc.u32 enc header_magic;
  Codec.Enc.u16 enc hdr.degree;
  Codec.Enc.u32 enc hdr.root_off;
  Codec.Enc.u32 enc hdr.alloc_off;
  Codec.Enc.u64 enc hdr.count;
  let body = Codec.Enc.to_bytes enc in
  let out = Bytes.make header_bytes '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  let crc = Crc32.sub out ~pos:0 ~len:(header_bytes - 4) in
  let tail = Codec.Enc.create () in
  Codec.Enc.u32 tail (Int32.to_int crc land 0xFFFFFFFF);
  Bytes.blit (Codec.Enc.to_bytes tail) 0 out (header_bytes - 4) 4;
  out

let decode_header buf =
  try
    let crc = Crc32.sub buf ~pos:0 ~len:(header_bytes - 4) in
    let cdec = Codec.Dec.of_sub buf ~pos:(header_bytes - 4) ~len:4 in
    if Codec.Dec.u32 cdec <> Int32.to_int crc land 0xFFFFFFFF then None
    else begin
      let dec = Codec.Dec.of_bytes buf in
      if Codec.Dec.u32 dec <> header_magic then None
      else
        let degree = Codec.Dec.u16 dec in
        let root_off = Codec.Dec.u32 dec in
        let alloc_off = Codec.Dec.u32 dec in
        let count = Codec.Dec.u64 dec in
        Some { degree; root_off; alloc_off; count }
    end
  with Codec.Dec.Truncated -> None

let write_header t =
  Pm_client.write t.client t.handle ~off:0 ~data:(encode_header t.hdr)

(* --- node i/o --- *)

let encode_node node =
  let enc = Codec.Enc.create () in
  Codec.Enc.u8 enc (if node.leaf then 1 else 0);
  Codec.Enc.u16 enc (Array.length node.keys);
  Array.iter (Codec.Enc.u64 enc) node.keys;
  Array.iter (Codec.Enc.u64 enc) node.vals;
  if not node.leaf then Array.iter (Codec.Enc.u32 enc) node.children;
  let body = Codec.Enc.to_bytes enc in
  if Bytes.length body > node_bytes then invalid_arg "Pm_index: node overflows its slot";
  let out = Bytes.make node_bytes '\000' in
  Bytes.blit body 0 out 0 (Bytes.length body);
  out

let decode_node buf =
  let dec = Codec.Dec.of_bytes buf in
  let leaf = Codec.Dec.u8 dec = 1 in
  let n = Codec.Dec.u16 dec in
  let keys = Array.init n (fun _ -> Codec.Dec.u64 dec) in
  let vals = Array.init n (fun _ -> Codec.Dec.u64 dec) in
  let children = if leaf then [||] else Array.init (n + 1) (fun _ -> Codec.Dec.u32 dec) in
  { leaf; keys; vals; children }

let read_node t ~off =
  match Pm_client.read t.client t.handle ~off ~len:node_bytes with
  | Error e -> Error e
  | Ok buf -> ( try Ok (decode_node buf) with Codec.Dec.Truncated -> Error (Pm_types.Bad_request "corrupt index node"))

(* Allocate a slot and write the node into it (copy-on-write: slots are
   never overwritten while reachable from the old root). *)
let alloc_node t node =
  let region_len = (Pm_client.info t.handle).Pm_types.length in
  let off = t.hdr.alloc_off in
  if off + node_bytes > region_len then Error Pm_types.Out_of_space
  else
    match Pm_client.write t.client t.handle ~off ~data:(encode_node node) with
    | Ok () ->
        t.hdr.alloc_off <- off + node_bytes;
        Ok off
    | Error e -> Error e

(* --- construction --- *)

let create client handle ?(degree = 8) () =
  if degree < 2 then invalid_arg "Pm_index.create: degree must be >= 2";
  (* A degree-d node must fit its slot: 3 + d*(16) + (2d)*4 bytes approx. *)
  if 3 + (max_keys degree * 16) + ((2 * degree) * 4) > node_bytes then
    invalid_arg "Pm_index.create: degree too large for the node slot";
  let t =
    { client; handle; hdr = { degree; root_off = 0; alloc_off = header_bytes; count = 0 } }
  in
  match write_header t with Ok () -> Ok t | Error e -> Error e

let open_existing client handle =
  match Pm_client.read client handle ~off:0 ~len:header_bytes with
  | Error e -> Error e
  | Ok buf -> (
      match decode_header buf with
      | Some hdr -> Ok { client; handle; hdr }
      | None -> Error (Pm_types.Bad_request "no index in this region"))

let refresh t =
  match Pm_client.read t.client t.handle ~off:0 ~len:header_bytes with
  | Error e -> Error e
  | Ok buf -> (
      match decode_header buf with
      | Some hdr ->
          t.hdr.degree <- hdr.degree;
          t.hdr.root_off <- hdr.root_off;
          t.hdr.alloc_off <- hdr.alloc_off;
          t.hdr.count <- hdr.count;
          Ok ()
      | None -> Error (Pm_types.Bad_request "no index in this region"))

(* --- search --- *)

let lower_bound keys n k =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let find t ~key =
  let rec walk off =
    match read_node t ~off with
    | Error e -> Error e
    | Ok node ->
        let n = Array.length node.keys in
        let i = lower_bound node.keys n key in
        if i < n && node.keys.(i) = key then Ok (Some node.vals.(i))
        else if node.leaf then Ok None
        else walk node.children.(i)
  in
  if t.hdr.root_off = 0 then Ok None else walk t.hdr.root_off

(* --- copy-on-write insert --- *)

type push_up = No_split of int | Split of int * int * int * int
(* No_split new_off | Split (left_off, sep_key, sep_val, right_off) *)

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let maybe_split t node =
  let d = t.hdr.degree in
  let n = Array.length node.keys in
  if n <= max_keys d then
    match alloc_node t node with Ok off -> Ok (No_split off) | Error e -> Error e
  else begin
    (* n = 2d: split around index d. *)
    let mid = d in
    let left =
      {
        leaf = node.leaf;
        keys = Array.sub node.keys 0 mid;
        vals = Array.sub node.vals 0 mid;
        children = (if node.leaf then [||] else Array.sub node.children 0 (mid + 1));
      }
    in
    let right =
      {
        leaf = node.leaf;
        keys = Array.sub node.keys (mid + 1) (n - mid - 1);
        vals = Array.sub node.vals (mid + 1) (n - mid - 1);
        children = (if node.leaf then [||] else Array.sub node.children (mid + 1) (n - mid));
      }
    in
    match alloc_node t left with
    | Error e -> Error e
    | Ok left_off -> (
        match alloc_node t right with
        | Error e -> Error e
        | Ok right_off -> Ok (Split (left_off, node.keys.(mid), node.vals.(mid), right_off)))
  end

let insert t ~key ~value =
  let rec descend off =
    match read_node t ~off with
    | Error e -> Error e
    | Ok node -> (
        let n = Array.length node.keys in
        let i = lower_bound node.keys n key in
        if i < n && node.keys.(i) = key then begin
          (* Replace in place (CoW: a fresh copy of this node). *)
          let vals = Array.copy node.vals in
          vals.(i) <- value;
          match alloc_node t { node with vals } with
          | Ok off' -> Ok (No_split off', false)
          | Error e -> Error e
        end
        else if node.leaf then
          let grown =
            {
              node with
              keys = array_insert node.keys i key;
              vals = array_insert node.vals i value;
            }
          in
          match maybe_split t grown with Ok p -> Ok (p, true) | Error e -> Error e
        else
          match descend node.children.(i) with
          | Error e -> Error e
          | Ok (No_split child_off, added) -> (
              let children = Array.copy node.children in
              children.(i) <- child_off;
              match alloc_node t { node with children } with
              | Ok off' -> Ok (No_split off', added)
              | Error e -> Error e)
          | Ok (Split (l, sk, sv, r), added) -> (
              let keys = array_insert node.keys i sk in
              let vals = array_insert node.vals i sv in
              let children = Array.copy node.children in
              children.(i) <- l;
              let children = array_insert children (i + 1) r in
              match maybe_split t { node with keys; vals; children } with
              | Ok p -> Ok (p, added)
              | Error e -> Error e))
  in
  let finish root_off added =
    t.hdr.root_off <- root_off;
    if added then t.hdr.count <- t.hdr.count + 1;
    (* The header flip is the commit point. *)
    write_header t
  in
  if t.hdr.root_off = 0 then begin
    match alloc_node t { leaf = true; keys = [| key |]; vals = [| value |]; children = [||] } with
    | Error e -> Error e
    | Ok off -> finish off true
  end
  else
    match descend t.hdr.root_off with
    | Error e -> Error e
    | Ok (No_split off, added) -> finish off added
    | Ok (Split (l, sk, sv, r), added) -> (
        match
          alloc_node t { leaf = false; keys = [| sk |]; vals = [| sv |]; children = [| l; r |] }
        with
        | Error e -> Error e
        | Ok off -> finish off added)

let range t ~lo ~hi =
  let out = ref [] in
  let rec walk off =
    match read_node t ~off with
    | Error e -> Error e
    | Ok node ->
        let n = Array.length node.keys in
        if node.leaf then begin
          for i = 0 to n - 1 do
            if node.keys.(i) >= lo && node.keys.(i) <= hi then
              out := (node.keys.(i), node.vals.(i)) :: !out
          done;
          Ok ()
        end
        else begin
          let first = lower_bound node.keys n lo in
          let rec visit i =
            if i > n then Ok ()
            else
              match walk node.children.(i) with
              | Error e -> Error e
              | Ok () ->
                  if i < n && node.keys.(i) <= hi then begin
                    if node.keys.(i) >= lo then out := (node.keys.(i), node.vals.(i)) :: !out;
                    visit (i + 1)
                  end
                  else Ok ()
          in
          visit first
        end
  in
  if t.hdr.root_off = 0 then Ok []
  else match walk t.hdr.root_off with Ok () -> Ok (List.rev !out) | Error e -> Error e

let cardinal t = t.hdr.count

let height t =
  let rec walk off acc =
    match read_node t ~off with
    | Error _ -> acc
    | Ok node -> if node.leaf then acc else walk node.children.(0) (acc + 1)
  in
  if t.hdr.root_off = 0 then 0 else walk t.hdr.root_off 1

let bytes_allocated t = t.hdr.alloc_off
