lib/core/npmu.mli: Bytes Servernet Sim Simkit
