lib/core/pm_client.mli: Bytes Cpu Nsk Pm_types Pmm Servernet Simkit Stat Time
