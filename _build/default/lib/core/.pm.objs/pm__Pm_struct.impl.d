lib/core/pm_struct.ml: Bytes Codec List Pm_client Pm_types
