lib/core/pm_index.ml: Array Bytes Codec Crc32 Int32 List Pm_client Pm_types
