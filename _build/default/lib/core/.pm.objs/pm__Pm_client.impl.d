lib/core/pm_client.ml: Bytes Cpu Msgsys Nsk Pm_types Pmm Servernet Sim Simkit Stat Time
