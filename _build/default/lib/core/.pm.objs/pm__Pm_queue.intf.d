lib/core/pm_queue.mli: Bytes Pm_client Pm_types
