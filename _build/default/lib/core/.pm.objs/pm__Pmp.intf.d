lib/core/pmp.mli: Bytes Cpu Nsk Servernet
