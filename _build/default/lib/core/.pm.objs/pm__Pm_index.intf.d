lib/core/pm_index.mli: Pm_client Pm_types
