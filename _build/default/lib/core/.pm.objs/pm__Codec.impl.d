lib/core/codec.ml: Buffer Bytes Char String
