lib/core/pmp.ml: Bytes Cpu Mailbox Nsk Servernet Sim Simkit
