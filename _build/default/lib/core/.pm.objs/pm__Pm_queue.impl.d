lib/core/pm_queue.ml: Bytes Codec Crc32 Int32 Pm_client Pm_types
