lib/core/codec.mli: Bytes
