lib/core/pmm.mli: Bytes Cpu Msgsys Npmu Nsk Pm_types Pmp Servernet Simkit Time
