lib/core/pm_types.mli: Format
