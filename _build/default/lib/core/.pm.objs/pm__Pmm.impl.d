lib/core/pmm.ml: Bytes Codec Cpu Crc32 Int32 List Msgsys Npmu Nsk Pm_types Pmp Procpair Servernet Sim Simkit String Time
