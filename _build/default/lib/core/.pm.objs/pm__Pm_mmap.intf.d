lib/core/pm_mmap.mli: Bytes Pm_client Pm_types Simkit Stat
