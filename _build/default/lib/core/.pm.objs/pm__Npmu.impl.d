lib/core/npmu.ml: Bytes Servernet
