lib/core/pm_struct.mli: Bytes Pm_client Pm_types
