lib/core/pm_types.ml: Format
