lib/core/pm_kv.ml: Bytes Codec Crc32 Int32 Pm_client Pm_index Pm_types
