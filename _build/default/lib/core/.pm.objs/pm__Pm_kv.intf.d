lib/core/pm_kv.mli: Bytes Pm_client Pm_types
