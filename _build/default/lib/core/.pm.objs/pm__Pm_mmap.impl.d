lib/core/pm_mmap.ml: Array Bytes Pm_client Pm_types Sim Simkit Stat
